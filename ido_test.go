package ido_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/ido-nvm/ido"
)

// The facade test drives the full public workflow: create, FASE, crash,
// file round trip, recover, verify — the quickstart example as a test.

const (
	ridBody  = 0x801 // after lock: read the counter
	ridStore = 0x802 // antidep cut: write it back
	ridRel   = 0x803 // before the unlock
)

func register(db *ido.DB) {
	db.Registry.Register(ridBody, func(t ido.Thread, rf []uint64) {
		body(db, t, rf[0], rf[1])
	})
	db.Registry.Register(ridStore, func(t ido.Thread, rf []uint64) {
		store(db, t, rf[0], rf[1], rf[2])
	})
	db.Registry.Register(ridRel, func(t ido.Thread, rf []uint64) {
		t.Unlock(db.LockAt(rf[1]))
	})
}

func inc(db *ido.DB, t ido.Thread, ctr, holder uint64) {
	t.Lock(db.LockAt(holder))
	t.Boundary(ridBody, ido.RV(0, ctr), ido.RV(1, holder))
	body(db, t, ctr, holder)
}

func body(db *ido.DB, t ido.Thread, ctr, holder uint64) {
	v := t.Load64(ctr)
	t.Boundary(ridStore, ido.RV(2, v))
	store(db, t, ctr, holder, v)
}

func store(db *ido.DB, t ido.Thread, ctr, holder, v uint64) {
	t.Store64(ctr, v+1)
	t.Boundary(ridRel)
	t.Unlock(db.LockAt(holder))
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db, err := ido.Create(1<<20, ido.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	register(db)
	ctr, err := db.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	lock, err := db.NewLock()
	if err != nil {
		t.Fatal(err)
	}
	db.SetRoot(1, ctr)
	db.SetRoot(2, lock.Holder())

	th, err := db.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		inc(db, th, ctr, lock.Holder())
	}

	// Crash in place under the random adversary.
	db2, err := db.Crash(ido.CrashRandom, rand.New(rand.NewSource(2)), ido.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	register(db2)
	if _, err := db2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := db2.Region.Dev.Load64(db2.Root(1)); got != 25 {
		t.Fatalf("counter after crash = %d, want 25", got)
	}

	// File round trip.
	path := filepath.Join(t.TempDir(), "heap.img")
	if err := db2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	db3, err := ido.OpenFile(path, ido.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	register(db3)
	if _, err := db3.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := db3.Region.Dev.Load64(db3.Root(1)); got != 25 {
		t.Fatalf("counter after file round trip = %d", got)
	}
	// And the region is fully usable post-open.
	th3, err := db3.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	inc(db3, th3, db3.Root(1), db3.Root(2))
	if got := db3.Region.Dev.Load64(db3.Root(1)); got != 26 {
		t.Fatalf("counter after resume-use = %d", got)
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := ido.OpenFile(filepath.Join(t.TempDir(), "nope.img"), ido.DefaultConfig()); err == nil {
		t.Fatal("missing file accepted")
	}
}
