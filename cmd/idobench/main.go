// Command idobench regenerates the tables and figures of the iDO paper's
// evaluation on the simulated-NVM substrate.
//
// Usage:
//
//	idobench -exp all                 # everything, paper-scale parameters
//	idobench -exp fig5 -quick         # one experiment, smoke-scale
//	idobench -exp fig7 -duration 1s -threads 1,2,4,8,16
//
// Experiments: fig5, fig6, fig7, fig8, table1, fig9, ablations, vm,
// alloc, obs, gc, server, serverread, all. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-versus-measured notes.
//
// -workers N runs independent figure points through a bounded pool; -gc
// runs every device with the group-commit fence combiner (-gcwindow sets
// the leader's batching dwell in simulated ns). The gc experiment itself
// sweeps direct vs grouped across threads × window.
//
// -traceout FILE attaches a persist-event tracer to every device the run
// creates and writes a Chrome trace_event JSON file (load it at
// chrome://tracing or https://ui.perfetto.dev) when the run finishes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ido-nvm/ido/internal/bench"
	"github.com/ido-nvm/ido/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5|fig6|fig7|fig8|table1|fig9|ablations|vm|alloc|obs|gc|server|serverread|all")
	quick := flag.Bool("quick", false, "smoke-scale parameters")
	duration := flag.Duration("duration", 0, "override measurement interval per point")
	threads := flag.String("threads", "", "override thread sweep, e.g. 1,2,4,8")
	traceout := flag.String("traceout", "", "write a Chrome trace_event JSON file of all persist events")
	seed := flag.Int64("seed", 1, "seed for every adversarial crash settle (replay a failure with the seed it printed)")
	workers := flag.Int("workers", 1, "independent figure points run concurrently (1 = serial, the accurate-measurement default)")
	gc := flag.Bool("gc", false, "run every world's device with the group-commit fence combiner")
	gcwindow := flag.Int("gcwindow", 0, "group-commit leader batch window in simulated ns (with -gc)")
	flag.Parse()

	o := bench.DefaultOptions()
	if *quick {
		o = bench.QuickOptions()
	}
	o.Out = os.Stdout
	if *duration > 0 {
		o.Duration = *duration
	}
	if *threads != "" {
		var sweep []int
		for _, tok := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n < 1 {
				fatalf("bad -threads value %q", tok)
			}
			sweep = append(sweep, n)
		}
		o.Threads = sweep
	}
	if *traceout != "" {
		o.Tracer = obs.New(obs.DefaultConfig())
	}
	o.Seed = *seed
	o.Workers = *workers
	o.GroupCommit = *gc
	o.GroupWindowNS = *gcwindow

	start := time.Now()
	var err error
	switch *exp {
	case "all":
		err = bench.RunAll(o)
	case "fig5":
		_, err = bench.RunFig5(o)
	case "fig6":
		_, err = bench.RunFig6(o)
	case "fig7":
		_, err = bench.RunFig7(o)
	case "fig8":
		_, err = bench.RunFig8(o)
	case "table1":
		_, err = bench.RunTable1(o)
	case "fig9":
		_, err = bench.RunFig9(o)
	case "ablations":
		_, err = bench.RunAblations(o)
	case "vm":
		_, err = bench.RunVM(o)
	case "alloc":
		_, err = bench.RunAlloc(o)
	case "obs":
		_, err = bench.RunObs(o)
	case "gc":
		_, err = bench.RunGroupCommit(o)
	case "server":
		_, err = bench.RunServer(o)
	case "serverread":
		_, err = bench.RunServerReadPath(o)
	default:
		fatalf("unknown experiment %q", *exp)
	}
	if err != nil {
		fatalf("%v", err)
	}
	if o.Tracer != nil {
		n, err := o.Tracer.ExportChromeFile(*traceout)
		if err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Printf("trace: %s (%d events, %d dropped)\n", *traceout, n, o.Tracer.Dropped())
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "idobench: "+format+"\n", args...)
	os.Exit(1)
}
