// Command idoserve runs the networked KV front end: the memcache text
// protocol or RESP over the iDO failure-atomicity runtime, with requests
// hashed to per-shard commit pipelines that feed the device's
// group-commit fence combiner.
//
// Usage:
//
//	idoserve                                  # memcache on :11211
//	idoserve -proto resp -addr :6379 -gc -gcwindow 2000
//	idoserve -admin :8080                     # /metrics /healthz /readyz /debug/*
//	idoserve -replicate :11311                # primary: ship the iDO log to a standby
//	idoserve -standby -primary host:11311     # hot standby: apply, promote on primary death
//	idoserve -load -conns 16 -pipeline 8 -duration 2s   # in-process load run
//	idoserve -load -targets host1:11211,host2:11211     # fault-tolerant load over TCP
//
// The default mode listens on -addr and serves until SIGINT/SIGTERM,
// then drains gracefully: in-flight FASEs finish, their responses
// flush, the final group-commit epoch is fenced, and the process exits
// 0. With -load it instead drives the built-in load generator (the
// Fig. 5c GET/SET/DELETE mix) and prints client throughput, latency
// quantiles, and device fences per operation.
//
// With -replicate the server is a replication primary: every committed
// mutation is shipped, in commit order, to a standby attached on that
// port, and client completions ride the standby's receipt acks
// (semi-synchronous). With -standby the process applies the stream
// from -primary through its own FASE machinery, reports not-ready on
// /readyz while replicating, and on primary death promotes itself and
// starts serving on -addr.
//
// The admin plane (-admin) serves Prometheus text on /metrics, liveness
// and readiness on /healthz + /readyz, the full JSON snapshot on
// /debug/snapshot, and a windowed Chrome trace capture on
// /debug/trace?ms=N. The same counters answer the in-band memcache
// `stats` verb and RESP `INFO` command on the data port, including the
// replication role and lag block.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/kv/redis"
	"github.com/ido-nvm/ido/internal/loadgen"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/replica"
	"github.com/ido-nvm/ido/internal/server"
)

func main() {
	proto := flag.String("proto", "memcache", "wire protocol: memcache|resp")
	addr := flag.String("addr", ":11211", "listen address (serve mode)")
	admin := flag.String("admin", "", "admin listen address (/metrics, /healthz, /readyz, /debug/*); empty = off")
	statsevery := flag.Duration("statsevery", 0, "print a stats snapshot line this often (0 = off)")
	trace := flag.Bool("trace", true, "keep live event rings for /debug/trace (counters stay on regardless)")
	shards := flag.Int("shards", 16, "shard pipelines (rounded up to a power of two)")
	buckets := flag.Int("buckets", 64, "hash buckets per shard")
	size := flag.Int("size", 1<<26, "simulated NVM region bytes")
	gc := flag.Bool("gc", false, "enable the group-commit fence combiner")
	gcwindow := flag.Int("gcwindow", 2000, "combiner leader batch window, simulated ns (with -gc)")
	gcforce := flag.Bool("gcforce", false, "with -gc: route solo commits through the combiner ring too")
	maxitems := flag.Int("maxitems", 0, "per-shard live-item watermark; the pipeline evicts LRU items above it (0 = unbounded)")
	nofast := flag.Bool("nofastreads", false, "disable the lock-free GET fast lane (serve every read through its shard pipeline)")
	maxconns := flag.Int("maxconns", 0, "reject connections past this many with a busy error (0 = unbounded)")
	idletimeout := flag.Duration("idletimeout", 0, "close connections idle for this long (0 = never)")
	draintimeout := flag.Duration("draintimeout", 5*time.Second, "graceful-shutdown budget for in-flight requests on SIGINT/SIGTERM")
	replicate := flag.String("replicate", "", "primary: listen here for a standby and ship the iDO log to it (empty = no replication)")
	standby := flag.Bool("standby", false, "run as a hot standby: apply the stream from -primary, promote on primary death")
	primaryAddr := flag.String("primary", "", "with -standby: the primary's -replicate address")
	load := flag.Bool("load", false, "run the in-process load generator instead of listening")
	conns := flag.Int("conns", 16, "with -load: client connections")
	pipeline := flag.Int("pipeline", 8, "with -load: in-flight requests per connection")
	duration := flag.Duration("duration", 2*time.Second, "with -load: measurement interval")
	keys := flag.Uint64("keys", 4096, "with -load: key-space size")
	setpct := flag.Int("setpct", 40, "with -load: SET percentage of the mix")
	delpct := flag.Int("delpct", 20, "with -load: DELETE percentage of the mix")
	zipf := flag.Float64("zipf", 0, "with -load: key skew exponent (>1; 0 = uniform)")
	mget := flag.Int("mget", 1, "with -load: keys per GET request (multi-get batch)")
	rate := flag.Int("rate", 0, "with -load: open-loop aggregate request rate, ops/s (0 = closed loop)")
	seed := flag.Int64("seed", 1, "with -load: workload seed")
	targets := flag.String("targets", "", "with -load: comma-separated server addresses to drive over TCP with the fault-tolerant client (failover order; empty = in-process)")
	optimeout := flag.Duration("optimeout", 2*time.Second, "with -load -targets: per-operation timeout before the connection is declared lost")
	flag.Parse()

	if *standby && *primaryAddr == "" {
		fatalf("-standby requires -primary host:port")
	}
	if *standby && *load {
		fatalf("-standby and -load are mutually exclusive")
	}

	// The tracer is on by default: emit is lock-free and allocation-free,
	// and the admin plane's quantiles come from its histograms. Modest
	// ring caps bound memory; /debug/trace rotates them per capture, so a
	// long-lived process can still produce a fresh window any time.
	var tr *obs.Tracer
	if *trace {
		tr = obs.New(obs.Config{ThreadRingCap: 1 << 12, DeviceRingCap: 1 << 13})
	}

	cfg := nvm.Config{Size: *size, Tracer: tr}
	if *gc {
		cfg.GroupCommit = nvm.GroupCommitConfig{
			Enabled: true, ForceCombine: *gcforce, WindowNS: *gcwindow}
	}
	reg := region.Create(*size, cfg)

	// The admin plane comes up before the store attaches so /readyz
	// reports "attaching" (503) during boot and recovery, then flips
	// ready once the shards are serving — or, on a standby, once
	// promotion makes it the serving primary.
	coll := metrics.NewCollector(tr, reg.Dev)
	health := metrics.NewHealth("attaching store")
	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			fatalf("admin listen: %v", err)
		}
		fmt.Printf("idoserve: admin plane on http://%s\n", aln.Addr())
		go func() {
			if err := http.Serve(aln, metrics.NewAdmin(coll, health).Handler()); err != nil {
				fmt.Fprintf(os.Stderr, "idoserve: admin: %v\n", err)
			}
		}()
	}

	lm := locks.NewManager(reg)
	rt := core.New(core.DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		fatalf("attach runtime: %v", err)
	}

	var store server.Store
	var sproto server.Proto
	var lproto loadgen.Proto
	var err error
	switch *proto {
	case "memcache":
		sproto, lproto = server.ProtoMemcache, loadgen.ProtoMemcache
		store, err = server.NewMcStore(&memcache.Env{Reg: reg, LM: lm}, *shards, *buckets)
	case "resp":
		sproto, lproto = server.ProtoRESP, loadgen.ProtoRESP
		store, err = server.NewRespStore(&redis.Env{Reg: reg}, *shards, *buckets)
	default:
		fatalf("unknown protocol %q", *proto)
	}
	if err != nil {
		fatalf("create store: %v", err)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// Standby mode: replicate until the primary dies, then fall through
	// to the serve path as the promoted primary.
	if *standby {
		sb, err := replica.NewStandby(replica.StandbyConfig{
			Store: store, RT: rt, Reg: reg,
		})
		if err != nil {
			fatalf("create standby: %v", err)
		}
		coll.Repl = sb
		health.Set(false, "standby: replicating from "+*primaryAddr)
		fmt.Printf("idoserve: standby replicating from %s\n", *primaryAddr)
		stopped := make(chan struct{})
		go func() {
			select {
			case <-sig:
				fmt.Println("idoserve: interrupt, stopping standby")
				sb.Stop()
			case <-stopped:
			}
		}()
		err = sb.Run(func() (net.Conn, error) {
			return net.Dial("tcp", *primaryAddr)
		})
		close(stopped)
		switch err {
		case nil:
			var rs metrics.ReplStats
			sb.ReplSnapshot(&rs)
			fmt.Printf("idoserve: primary lost; promoted after applying %d records\n", rs.Records)
		case replica.ErrStandbyStopped:
			return
		default:
			fatalf("standby: %v", err)
		}
	}

	// Replication primary (or promoted standby chaining a new standby):
	// a shipper publishes every committed mutation; client completions
	// ride the standby's receipt acks (semi-synchronous).
	var sh *replica.Shipper
	if *replicate != "" {
		sh, err = replica.NewShipper(replica.ShipperConfig{Shards: store.NumShards()})
		if err != nil {
			fatalf("create shipper: %v", err)
		}
		rln, err := net.Listen("tcp", *replicate)
		if err != nil {
			fatalf("replication listen: %v", err)
		}
		fmt.Printf("idoserve: shipping replication log on %s\n", rln.Addr())
		go sh.Serve(rln)
		coll.Repl = sh
	}

	srv, err := server.New(rt, store, server.Config{
		Proto: sproto, Metrics: coll, Repl: sh,
		MaxItems: *maxitems, DisableFastReads: *nofast,
		MaxConns: *maxconns, IdleTimeout: *idletimeout}, tr)
	if err != nil {
		fatalf("create server: %v", err)
	}
	health.Set(true, "serving")
	health.NotReadyOn(srv.Crashed(), "device crash: restart for recovery")

	if *load {
		lcfg := loadgen.Config{
			Proto:       lproto,
			Conns:       *conns,
			Pipeline:    *pipeline,
			Keys:        *keys,
			SetPct:      *setpct,
			DelPct:      *delpct,
			Zipf:        *zipf,
			MGet:        *mget,
			OpenRateOPS: *rate,
			Duration:    *duration,
			Seed:        *seed,
			OpTimeout:   *optimeout,
		}
		if *statsevery > 0 {
			lcfg.ReportEvery = *statsevery
			lcfg.Report = loadgen.ReportPrinter(os.Stdout)
		}
		runLoad(srv, reg.Dev, lcfg, *targets)
		srv.Close()
		return
	}

	if *statsevery > 0 {
		go statsLogger(coll, *statsevery, srv.Crashed())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	fmt.Printf("idoserve: %s protocol on %s, %d shards, group commit %v\n",
		sproto, ln.Addr(), store.NumShards(), *gc)
	go func() {
		<-sig
		fmt.Println("idoserve: interrupt, draining")
		health.Set(false, "draining")
		err := srv.Drain(*draintimeout)
		st := srv.Stats()
		fmt.Printf("idoserve: served %d requests in %d write batches\n", st.Reqs, st.Batches)
		if err != nil {
			fmt.Fprintf(os.Stderr, "idoserve: drain: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()
	if err := srv.Serve(ln); err != nil && err != server.ErrServerClosed {
		fatalf("serve: %v", err)
	}
	st := srv.Stats()
	fmt.Printf("idoserve: served %d requests in %d write batches\n", st.Reqs, st.Batches)
}

// statsLogger prints one interval line per period: the -statsevery view
// of the same deltas /metrics exposes.
func statsLogger(coll *metrics.Collector, every time.Duration, stop <-chan struct{}) {
	prev := coll.Snapshot()
	tick := time.NewTicker(every)
	defer tick.Stop()
	var d metrics.Delta
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			cur := coll.Snapshot()
			metrics.Diff(prev, cur, &d)
			var depth int64
			for i := range cur.Srv.Shards {
				depth += cur.Srv.Shards[i].QueueDepth
			}
			fmt.Printf("stats: %8.0f req/s  fences/op %.2f  occupancy %.2f  p50 %v  p99 %v  depth %d  conns %d\n",
				d.OpsPerSec, d.FencesPerOp, d.BatchOccupancy,
				time.Duration(d.ReqP50NS), time.Duration(d.ReqP99NS),
				depth, cur.Srv.ConnsOpen)
			prev = cur
		}
	}
}

// runLoad drives either the in-process server over memory pipes or, with
// targets, remote servers over TCP with the fault-tolerant client, and
// prints the result.
func runLoad(srv *server.Server, dev *nvm.Device, cfg loadgen.Config, targets string) {
	dev.ResetStats()
	var res *loadgen.Result
	var err error
	if targets != "" {
		var dials []func() (net.Conn, error)
		for _, a := range strings.Split(targets, ",") {
			a := strings.TrimSpace(a)
			if a == "" {
				continue
			}
			dials = append(dials, func() (net.Conn, error) {
				return net.Dial("tcp", a)
			})
		}
		if len(dials) == 0 {
			fatalf("-targets has no addresses")
		}
		res, err = loadgen.RunFT(cfg, dials)
	} else {
		res, err = loadgen.Run(cfg, func() (net.Conn, error) {
			client, srvEnd := loadgen.MemPipe(64 << 10)
			if serr := srv.ServeConn(srvEnd); serr != nil {
				return nil, serr
			}
			return client, nil
		})
	}
	if err != nil {
		fatalf("loadgen: %v", err)
	}
	fences := dev.Stats().Fences
	fmt.Printf("ops %d (errs %d)  %.0f ops/s  hits %d misses %d\n",
		res.Ops, res.Errs, float64(res.Ops)/res.Elapsed.Seconds(), res.Hits, res.Misses)
	fmt.Printf("latency p50 %v  p99 %v  max %v  mean %v\n",
		time.Duration(res.P50), time.Duration(res.P99),
		time.Duration(res.Max), time.Duration(res.MeanNS))
	if res.Retries+res.Reconnects+res.Failovers+res.TimedOut > 0 {
		fmt.Printf("robustness: retries %d  reconnects %d  failovers %d  lost in flight %d\n",
			res.Retries, res.Reconnects, res.Failovers, res.TimedOut)
	}
	if res.Ops > 0 && targets == "" {
		fmt.Printf("fences %d  %.2f fences/op  combiner epochs %d\n",
			fences, float64(fences)/float64(res.Ops), dev.Epoch())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "idoserve: "+format+"\n", args...)
	os.Exit(1)
}
