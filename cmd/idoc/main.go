// Command idoc runs the iDO compiler pipeline (Fig. 4) on a mini-IR
// source file and prints the instrumented result: inferred FASEs,
// idempotent-region boundaries, and the per-boundary log sets.
//
// Usage:
//
//	idoc file.ir             # compile and print instrumented IR
//	idoc -stats file.ir      # also print static region statistics
//	idoc -per-store file.ir  # ablation: degenerate one-store regions
//	idoc -builtin            # compile the built-in benchmark kernels
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/irprog"
)

func main() {
	showStats := flag.Bool("stats", false, "print static region statistics")
	perStore := flag.Bool("per-store", false, "ablation: cut after every store")
	builtin := flag.Bool("builtin", false, "compile the built-in benchmark kernels")
	flag.Parse()

	var src string
	switch {
	case *builtin:
		src = irprog.Source
	case flag.NArg() == 1:
		raw, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		src = string(raw)
	default:
		fatalf("usage: idoc [-stats] [-per-store] file.ir | -builtin")
	}

	prog, err := ir.Parse(src)
	if err != nil {
		fatalf("parse: %v", err)
	}
	cfg := compile.Config{}
	if *perStore {
		cfg.Idem.MaxStoresPerRegion = 1
	}
	compiled, err := compile.Program(prog, cfg)
	if err != nil {
		fatalf("compile: %v", err)
	}

	names := make([]string, 0, len(compiled.Funcs))
	for n := range compiled.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	totalRegions := 0
	for _, n := range names {
		cf := compiled.Funcs[n]
		fmt.Print(cf.F.String())
		totalRegions += len(cf.Regions)
		if *showStats {
			fmt.Printf("// %s: %d regions", n, len(cf.Regions))
			if len(cf.Regions) > 0 {
				logSum := 0
				for _, r := range cf.Regions {
					logSum += len(r.Log)
				}
				fmt.Printf(", %.1f logged registers per boundary",
					float64(logSum)/float64(len(cf.Regions)))
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if *showStats {
		fmt.Printf("// program: %d functions, %d regions\n", len(names), totalRegions)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "idoc: "+format+"\n", args...)
	os.Exit(1)
}
