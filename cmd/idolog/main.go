// Command idolog inspects the iDO log list inside a persistent region
// image — the post-mortem view a recovery engineer wants: which threads
// were mid-FASE at the crash, their recovery_pc values, the staged
// boundary record, and the locks they held.
//
// Usage:
//
//	idolog heap.img            # inspect an image saved with SaveFile
//	idolog -demo               # build a crashed image in memory and dump it
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

func main() {
	demo := flag.Bool("demo", false, "build and dump a demo crashed image")
	flag.Parse()

	var reg *region.Region
	switch {
	case *demo:
		reg = buildDemo()
	case flag.NArg() == 1:
		var err error
		reg, err = region.OpenFile(flag.Arg(0), nvm.Config{})
		if err != nil {
			fatalf("%v", err)
		}
	default:
		fatalf("usage: idolog heap.img | idolog -demo")
	}

	entries := core.InspectLogs(reg)
	if len(entries) == 0 {
		fmt.Println("no iDO thread logs in this region")
		return
	}
	fmt.Printf("%d thread log(s):\n", len(entries))
	for _, e := range entries {
		state := "idle"
		if e.RegionID != 0 {
			state = fmt.Sprintf("MID-FASE at region %#x (%d staged registers)", e.RegionID, len(e.Staged))
		}
		fmt.Printf("  thread %d @ %#x: %s\n", e.ThreadID, e.LogAddr, state)
		for _, s := range e.Staged {
			fmt.Printf("    r%-3d = %d (%#x)\n", s.Reg, s.Val, s.Val)
		}
		if len(e.Locks) > 0 {
			fmt.Printf("    holds %d lock(s):", len(e.Locks))
			for _, h := range e.Locks {
				fmt.Printf(" holder@%#x", h)
			}
			fmt.Println()
		}
		// Audit preview: what a recovery pass would record for this log.
		if e.RegionID != 0 {
			fmt.Printf("    recovery would: %s at region %#x, re-acquiring %d lock(s), restoring %d staged register(s)\n",
				obs.AuditResumed, e.RegionID, len(e.Locks), len(e.Staged))
		} else if len(e.Locks) > 0 {
			fmt.Printf("    recovery would: %s stale lock slots\n", obs.AuditScrubbed)
		} else {
			fmt.Printf("    recovery would: %s\n", obs.AuditIdle)
		}
	}
}

// buildDemo creates a region, runs a FASE partway, and "crashes" it.
func buildDemo() *region.Region {
	reg := region.Create(1<<20, nvm.Config{})
	lm := locks.NewManager(reg)
	rt := core.New(core.DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		fatalf("%v", err)
	}
	l, err := lm.Create()
	if err != nil {
		fatalf("%v", err)
	}
	cell, err := reg.Alloc.Alloc(8)
	if err != nil {
		fatalf("%v", err)
	}
	t, err := rt.NewThread()
	if err != nil {
		fatalf("%v", err)
	}
	t.Lock(l)
	t.Boundary(0x1234, persist.RV(0, cell), persist.RV(1, 42))
	t.Store64(cell, 41)
	// Power fails here, mid-FASE.
	reg.Dev.Crash(nvm.CrashDiscard, nil)
	reg2, err := region.Attach(reg.Dev)
	if err != nil {
		fatalf("%v", err)
	}
	return reg2
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "idolog: "+format+"\n", args...)
	os.Exit(1)
}
