// Command idorecover demonstrates end-to-end crash recovery on the VM:
// it compiles the built-in benchmark kernels, runs a hash-map workload,
// injects a crash mid-FASE, settles the device under the chosen
// adversary, saves the surviving image to a file, reopens it in a fresh
// machine, runs §III-C recovery, and verifies the structure.
//
// Usage:
//
//	idorecover                       # random crash point, random adversary
//	idorecover -budget 500 -mode discard -image /tmp/heap.img
//	idorecover -traceout /tmp/rec.json   # Chrome trace of recovery's persist events
//
// After recovery it prints the audit report: which thread logs were found,
// what action recovery took on each (idle, scrubbed, resumed), the locks
// re-acquired, the recovery_pc resumed at, and the words restored.
//
// The -chaos flag switches to the deterministic crash-schedule harness
// (internal/chaos): forward crash points × nested recovery crash points
// for every runtime, each schedule verified against the CrashPersistAll
// oracle. Any failure prints a single replayable tuple:
//
//	idorecover -chaos                        # bounded sweep, all runtimes
//	idorecover -chaos -runtime vm-justdo     # one runtime, all adversaries
//	idorecover -chaos -runtime ido -workload cachemix   # delete-heavy cache mix
//	idorecover -chaos -replay 'ido:counter:random:7:12:3,0'
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"github.com/ido-nvm/ido/internal/chaos"
	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/irprog"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/vm"
)

func main() {
	budget := flag.Int64("budget", -2, "crash after N VM events (-2: random)")
	modeStr := flag.String("mode", "random", "crash adversary: discard|random|persist-all")
	image := flag.String("image", "", "save the post-crash image to this file and reopen it")
	seed := flag.Int64("seed", 1, "workload seed")
	ops := flag.Int("ops", 200, "operations before the crash window")
	traceout := flag.String("traceout", "", "write a Chrome trace_event JSON file of recovery's persist events")
	chaosFlag := flag.Bool("chaos", false, "run the deterministic crash-schedule sweep instead of the demo")
	replay := flag.String("replay", "", "with -chaos: replay one schedule tuple (runtime:workload:mode:seed:forward:r1,r2|-)")
	runtimeFlag := flag.String("runtime", "", "with -chaos: sweep only this runtime (default: all)")
	workloadFlag := flag.String("workload", "", "with -chaos: sweep this workload (counter|mapput|cachemix; default: per runtime)")
	points := flag.Int("points", 6, "with -chaos: crash points sampled per axis")
	flag.Parse()

	if *chaosFlag || *replay != "" {
		// -mode restricts the sweep only when given explicitly; its
		// demo-oriented default would otherwise hide two adversaries.
		sweepMode := ""
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "mode" {
				sweepMode = *modeStr
			}
		})
		runChaos(*replay, *runtimeFlag, *workloadFlag, sweepMode, *seed, *points)
		return
	}

	var mode nvm.CrashMode
	switch *modeStr {
	case "discard":
		mode = nvm.CrashDiscard
	case "random":
		mode = nvm.CrashRandom
	case "persist-all":
		mode = nvm.CrashPersistAll
	default:
		fatalf("unknown -mode %q", *modeStr)
	}
	rng := rand.New(rand.NewSource(*seed))
	if *budget == -2 {
		*budget = int64(rng.Intn(*ops * 60))
	}

	prog, err := irprog.Compile(compile.Config{})
	if err != nil {
		fatalf("compile: %v", err)
	}
	reg := region.Create(1<<24, nvm.Config{Size: 1 << 24})
	lm := locks.NewManager(reg)
	m := vm.New(reg, lm, prog, vm.ModeIDO)
	mp, err := irprog.NewMap(reg, lm, 8)
	if err != nil {
		fatalf("%v", err)
	}
	reg.SetRoot(1, mp)
	th, err := m.NewThread()
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("running map_put workload; crash budget %d events, adversary %s\n", *budget, mode)
	m.SetCrashBudget(*budget)
	completed := map[uint64]uint64{}
	crashed := false
	for i := 0; i < *ops; i++ {
		k := uint64(rng.Intn(64) + 1)
		if _, err := th.Call("map_put", mp, k, k*10); err != nil {
			crashed = true
			fmt.Printf("CRASH after %d completed operations (mid-FASE)\n", i)
			break
		}
		completed[k] = k * 10
	}
	m.SetCrashBudget(-1)
	if !crashed {
		fmt.Println("workload completed before the budget expired; nothing to recover")
	}

	// Power failure: volatile state dies under the adversary.
	reg.Dev.Crash(mode, rng)

	// Optionally round-trip the surviving bytes through a file, exactly
	// like a recovery process re-mapping the region.
	if *image != "" {
		if err := reg.SaveFile(*image); err != nil {
			fatalf("save: %v", err)
		}
		reg, err = region.OpenFile(*image, nvm.Config{})
		if err != nil {
			fatalf("reopen: %v", err)
		}
		fmt.Printf("image saved to %s and reopened\n", *image)
	} else {
		reg, err = region.Attach(reg.Dev)
		if err != nil {
			fatalf("attach: %v", err)
		}
	}

	var tr *obs.Tracer
	if *traceout != "" {
		tr = obs.New(obs.DefaultConfig())
		reg.Dev.SetTracer(tr)
	}
	lm2 := locks.NewManager(reg)
	m2 := vm.New(reg, lm2, prog, vm.ModeIDO)
	st, err := m2.Recover()
	if err != nil {
		fatalf("recover: %v", err)
	}
	fmt.Printf("recovery: %d thread logs examined, %d FASEs resumed in %s\n",
		st.Threads, st.Resumed, st.Elapsed)
	if st.Audit != nil {
		fmt.Print(st.Audit)
	}
	if tr != nil {
		n, err := tr.ExportChromeFile(*traceout)
		if err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Printf("trace: %s (%d events)\n", *traceout, n)
	}

	// Verify: every completed put survives, the map is well formed.
	mp2 := reg.Root(1)
	th2, err := m2.NewThread()
	if err != nil {
		fatalf("%v", err)
	}
	for k, v := range completed {
		r, err := th2.Call("map_get", mp2, k)
		if err != nil {
			fatalf("map_get: %v", err)
		}
		if r[0] != 1 || r[1] != v {
			fatalf("VERIFY FAILED: key %d = %v, want %d", k, r, v)
		}
	}
	fmt.Printf("verified: all %d completed puts durable and readable\n", len(completed))
}

// runChaos drives the internal/chaos harness: either one replayed
// schedule (printed attempt by attempt, with the recovery audit of every
// pass that completed) or a bounded sweep over the selected runtimes.
func runChaos(replay, runtimeF, workloadF, modeStr string, seed int64, points int) {
	if replay != "" {
		s, err := chaos.ParseSchedule(replay)
		if err != nil {
			fatalf("%v", err)
		}
		res, err := chaos.Run(s)
		if err != nil {
			fatalf("replay diverged: %v", err)
		}
		printChaosResult(res)
		fmt.Printf("schedule %s converged\n", s)
		return
	}

	var modes []nvm.CrashMode
	if modeStr != "" {
		m, err := chaos.ParseMode(modeStr)
		if err != nil {
			fatalf("%v", err)
		}
		modes = []nvm.CrashMode{m}
	}
	rts := chaos.Runtimes()
	if runtimeF != "" {
		rts = []string{runtimeF}
	}
	total := 0
	for _, rt := range rts {
		st, err := chaos.Sweep(chaos.SweepOptions{
			Runtime:        rt,
			Workload:       workloadF,
			Modes:          modes,
			Seed:           seed,
			ForwardPoints:  points,
			RecoveryPoints: points,
			DeepSamples:    2,
		})
		if err != nil {
			fatalf("%s: sweep diverged: %v\n(rerun in isolation with: idorecover -chaos -replay '<the schedule in the message above>')", rt, err)
		}
		fmt.Printf("%-10s %4d schedules converged; nesting-depth histogram %v\n", rt, st.Schedules, st.Depth)
		total += st.Schedules
	}
	fmt.Printf("chaos sweep: %d schedules converged across %d runtimes\n", total, len(rts))
}

func printChaosResult(res *chaos.Result) {
	for _, a := range res.Attempts {
		budget := fmt.Sprintf("budget %d", a.Budget)
		if a.Budget < 0 {
			budget = "clean"
		}
		switch {
		case a.Crashed:
			fmt.Printf("recovery pass %d (%s): crashed mid-recovery\n", a.Index, budget)
		case a.Err != "":
			fmt.Printf("recovery pass %d (%s): refused: %s\n", a.Index, budget, a.Err)
		default:
			fmt.Printf("recovery pass %d (%s): completed\n", a.Index, budget)
		}
		if a.Audit != nil {
			fmt.Print(a.Audit)
		}
	}
	keys := make([]string, 0, len(res.Final))
	for k := range res.Final {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("observable %-8s = %d (oracle %d, persist-all %d)\n",
			k, res.Final[k], res.Oracle[k], res.PersistAll[k])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "idorecover: "+format+"\n", args...)
	os.Exit(1)
}
