module github.com/ido-nvm/ido

go 1.23
