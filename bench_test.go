// Package-level benchmarks: one testing.B benchmark per paper table and
// figure, exercising the same code paths as the idobench drivers but
// under `go test -bench`. Throughput figures report ns/op per runtime;
// statistics figures report their headline numbers via b.ReportMetric.
// The full sweeps (thread counts, key ranges, kill times) live in
// cmd/idobench; see DESIGN.md's experiment index.
package ido_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/baselines/atlas"
	"github.com/ido-nvm/ido/internal/baselines/justdo"
	"github.com/ido-nvm/ido/internal/baselines/mnemosyne"
	"github.com/ido-nvm/ido/internal/baselines/nvml"
	"github.com/ido-nvm/ido/internal/baselines/nvthreads"
	"github.com/ido-nvm/ido/internal/baselines/origin"
	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/ds"
	"github.com/ido-nvm/ido/internal/irprog"
	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/kv/redis"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/vm"
	"github.com/ido-nvm/ido/internal/workload"
)

// benchConfig is the same cost model the idobench harness uses.
func benchConfig(size int) nvm.Config {
	return nvm.Config{Size: size, FlushNS: 50, FenceNS: 400, NTStoreNS: 150}
}

func mkRuntime(name string) persist.Runtime {
	switch name {
	case "origin":
		return origin.New()
	case "ido":
		return core.New(core.DefaultConfig())
	case "justdo":
		return justdo.New()
	case "atlas":
		return atlas.New(atlas.Config{})
	case "mnemosyne":
		return mnemosyne.New()
	case "nvthreads":
		return nvthreads.New()
	case "nvml":
		return nvml.New()
	}
	panic(name)
}

func newBenchWorld(b *testing.B, rtName string, size int) (*region.Region, *locks.Manager, persist.Runtime) {
	b.Helper()
	reg := region.Create(size, benchConfig(size))
	lm := locks.NewManager(reg)
	rt := mkRuntime(rtName)
	if err := rt.Attach(reg, lm); err != nil {
		b.Fatal(err)
	}
	return reg, lm, rt
}

// BenchmarkFig5Memcached measures the memaslap mixed workload per
// runtime (insertion-intensive mix; the search-intensive sub-benchmarks
// use 10% inserts).
func BenchmarkFig5Memcached(b *testing.B) {
	for _, mix := range []struct {
		name      string
		insertPct int
	}{{"insert50", 50}, {"search90", 10}} {
		for _, rtName := range []string{"origin", "ido", "justdo", "atlas", "mnemosyne", "nvthreads"} {
			b.Run(fmt.Sprintf("%s/%s", mix.name, rtName), func(b *testing.B) {
				reg, lm, rt := newBenchWorld(b, rtName, 1<<26)
				env := &memcache.Env{Reg: reg, LM: lm}
				cache, _, err := memcache.New(env, 1<<12)
				if err != nil {
					b.Fatal(err)
				}
				t, _ := rt.NewThread()
				gen := workload.NewUniform(1, 1<<12, mix.insertPct)
				for i := 0; i < 512; i++ {
					op := gen.Next()
					t.Exec(func() { cache.Set(t, op.Key, op.Key^3, op.Val) })
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op := gen.Next()
					t.Exec(func() {
						if op.Kind == workload.OpInsert {
							cache.Set(t, op.Key, op.Key^3, op.Val)
						} else {
							cache.Get(t, op.Key, op.Key^3)
						}
					})
				}
			})
		}
	}
}

// BenchmarkFig6Redis measures the lru_test 80/20 workload per runtime.
func BenchmarkFig6Redis(b *testing.B) {
	for _, rtName := range []string{"origin", "ido", "justdo", "atlas", "nvml"} {
		b.Run(rtName, func(b *testing.B) {
			reg, lm, rt := newBenchWorld(b, rtName, 1<<26)
			env := &redis.Env{Reg: reg}
			_ = lm
			db, _, err := redis.New(env, 1<<12)
			if err != nil {
				b.Fatal(err)
			}
			t, _ := rt.NewThread()
			gen := workload.NewPowerLaw(1, 1<<12, 20)
			for i := 0; i < 512; i++ {
				op := gen.Next()
				t.Exec(func() { db.Set(t, op.Key, op.Val) })
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				t.Exec(func() {
					if op.Kind == workload.OpInsert {
						db.Set(t, op.Key, op.Val)
					} else {
						db.Get(t, op.Key)
					}
				})
			}
		})
	}
}

// BenchmarkFig7Microbenchmarks measures the four data structures per
// runtime (single-threaded per-op cost; the thread sweep is idobench's).
func BenchmarkFig7Microbenchmarks(b *testing.B) {
	for _, structure := range []string{"stack", "queue", "orderedlist", "hashmap"} {
		for _, rtName := range []string{"ido", "justdo", "atlas", "mnemosyne"} {
			b.Run(fmt.Sprintf("%s/%s", structure, rtName), func(b *testing.B) {
				reg, lm, rt := newBenchWorld(b, rtName, 1<<26)
				env := &ds.Env{Reg: reg, LM: lm}
				t, _ := rt.NewThread()
				rng := rand.New(rand.NewSource(1))
				var op func()
				switch structure {
				case "stack":
					s, _, _ := ds.NewStack(env)
					op = func() {
						if rng.Intn(2) == 0 {
							s.Push(t, 1)
						} else {
							s.Pop(t)
						}
					}
				case "queue":
					q, _, _ := ds.NewQueue(env)
					op = func() {
						if rng.Intn(2) == 0 {
							q.Enqueue(t, 1)
						} else {
							q.Dequeue(t)
						}
					}
				case "orderedlist":
					l, _, _ := ds.NewList(env)
					for k := uint64(2); k <= 128; k += 2 {
						k := k
						t.Exec(func() { l.Put(t, k, k) })
					}
					op = func() {
						k := uint64(rng.Intn(128)) + 1
						if rng.Intn(2) == 0 {
							l.Put(t, k, k)
						} else {
							l.Get(t, k)
						}
					}
				case "hashmap":
					m, _, _ := ds.NewHashMap(env, 64)
					op = func() {
						k := uint64(rng.Intn(1024)) + 1
						if rng.Intn(2) == 0 {
							m.Put(t, k, k)
						} else {
							m.Get(t, k)
						}
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t.Exec(op)
				}
			})
		}
	}
}

// BenchmarkFig8RegionStats runs the compiled kernels in the VM and
// reports the Fig. 8 headline metrics alongside per-op cost.
func BenchmarkFig8RegionStats(b *testing.B) {
	prog, err := irprog.Compile(compile.Config{})
	if err != nil {
		b.Fatal(err)
	}
	reg := region.Create(1<<26, benchConfig(1<<26))
	lm := locks.NewManager(reg)
	m := vm.New(reg, lm, prog, vm.ModeIDO)
	stk, err := irprog.NewStack(reg, lm)
	if err != nil {
		b.Fatal(err)
	}
	th, _ := m.NewThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Call("stack_push", stk, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s := m.Stats()
	if s.Regions > 0 {
		var le1, le4, tot uint64
		for i, c := range s.StoresPerRegion {
			tot += c
			if i <= 1 {
				le1 += c
			}
		}
		for i, c := range s.OutputsPerRegion {
			if i < 5 {
				le4 += c
			}
		}
		b.ReportMetric(float64(le1)/float64(tot)*100, "%regions<=1store")
		b.ReportMetric(float64(le4)/float64(s.Regions)*100, "%regions<5regs")
	}
}

// BenchmarkTable1Recovery measures recovery time after a fixed amount of
// work, reporting the Atlas/iDO ratio as a metric.
func BenchmarkTable1Recovery(b *testing.B) {
	recoverOnce := func(rtName string) time.Duration {
		size := 1 << 26
		reg := region.Create(size, benchConfig(size))
		lm := locks.NewManager(reg)
		var rt persist.Runtime
		if rtName == "ido" {
			rt = core.New(core.DefaultConfig())
		} else {
			rt = atlas.New(atlas.Config{Retain: true})
		}
		if err := rt.Attach(reg, lm); err != nil {
			b.Fatal(err)
		}
		env := &ds.Env{Reg: reg, LM: lm}
		s, _, _ := ds.NewStack(env)
		t, _ := rt.NewThread()
		for i := 0; i < 3000; i++ {
			s.Push(t, uint64(i))
		}
		// Kill mid-FASE for realism: arm a tiny budget and push once.
		nvm.ArmCrash(25)
		func() {
			defer func() { recover() }()
			s.Push(t, 1)
		}()
		nvm.ArmCrash(-1)
		reg.Dev.Crash(nvm.CrashRandom, rand.New(rand.NewSource(1)))
		reg2, err := region.Attach(reg.Dev)
		if err != nil {
			b.Fatal(err)
		}
		lm2 := locks.NewManager(reg2)
		start := time.Now()
		if rtName == "ido" {
			rt2 := core.New(core.DefaultConfig())
			if err := rt2.Attach(reg2, lm2); err != nil {
				b.Fatal(err)
			}
			rr := persist.NewResumeRegistry()
			ds.RegisterAll(rr, &ds.Env{Reg: reg2, LM: lm2})
			if _, err := rt2.Recover(rr); err != nil {
				b.Fatal(err)
			}
		} else {
			rt2 := atlas.New(atlas.Config{Retain: true})
			if err := rt2.Attach(reg2, lm2); err != nil {
				b.Fatal(err)
			}
			if _, err := rt2.Recover(nil); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	b.Run("ratio", func(b *testing.B) {
		var atlasNS, idoNS int64
		for i := 0; i < b.N; i++ {
			idoNS += recoverOnce("ido").Nanoseconds()
			atlasNS += recoverOnce("atlas").Nanoseconds()
		}
		if idoNS > 0 {
			b.ReportMetric(float64(atlasNS)/float64(idoNS), "atlas/ido")
		}
	})
}

// BenchmarkFig9LatencySensitivity measures a persistent store+boundary
// path under added NVM latency for the three systems.
func BenchmarkFig9LatencySensitivity(b *testing.B) {
	for _, ns := range []int{0, 100, 1000} {
		for _, rtName := range []string{"ido", "justdo", "atlas"} {
			b.Run(fmt.Sprintf("%dns/%s", ns, rtName), func(b *testing.B) {
				size := 1 << 24
				cfg := benchConfig(size)
				cfg.ExtraNS = ns
				reg := region.Create(size, cfg)
				lm := locks.NewManager(reg)
				rt := mkRuntime(rtName)
				if err := rt.Attach(reg, lm); err != nil {
					b.Fatal(err)
				}
				env := &ds.Env{Reg: reg, LM: lm}
				s, _, _ := ds.NewStack(env)
				t, _ := rt.NewThread()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					t.Exec(func() { s.Push(t, uint64(i)) })
				}
			})
		}
	}
}

// BenchmarkAblationCoalescing measures the §IV-B optimization directly.
func BenchmarkAblationCoalescing(b *testing.B) {
	for _, coalesce := range []bool{true, false} {
		b.Run(fmt.Sprintf("coalesce=%v", coalesce), func(b *testing.B) {
			size := 1 << 24
			reg := region.Create(size, benchConfig(size))
			lm := locks.NewManager(reg)
			rt := core.New(core.Config{Coalesce: coalesce})
			if err := rt.Attach(reg, lm); err != nil {
				b.Fatal(err)
			}
			env := &ds.Env{Reg: reg, LM: lm}
			s, _, _ := ds.NewStack(env)
			t, _ := rt.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Push(t, uint64(i))
			}
		})
	}
}
