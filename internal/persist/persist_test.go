package persist

import (
	"testing"
	"testing/quick"
)

func TestResumeRegistry(t *testing.T) {
	rr := NewResumeRegistry()
	called := false
	rr.Register(5, func(Thread, []uint64) { called = true })
	fn, ok := rr.Lookup(5)
	if !ok {
		t.Fatal("lookup failed")
	}
	fn(nil, nil)
	if !called {
		t.Fatal("closure not invoked")
	}
	if _, ok := rr.Lookup(6); ok {
		t.Fatal("phantom entry")
	}
	if rr.Len() != 1 {
		t.Fatalf("len = %d", rr.Len())
	}
}

func TestRegistryRejectsZeroAndDuplicates(t *testing.T) {
	rr := NewResumeRegistry()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("region 0 accepted")
			}
		}()
		rr.Register(0, func(Thread, []uint64) {})
	}()
	rr.Register(1, func(Thread, []uint64) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate accepted")
		}
	}()
	rr.Register(1, func(Thread, []uint64) {})
}

func TestRuntimeStatsAdd(t *testing.T) {
	f := func(a, b RuntimeStats) bool {
		sum := a
		sum.Add(&b)
		if sum.FASEs != a.FASEs+b.FASEs || sum.Stores != a.Stores+b.Stores ||
			sum.Regions != a.Regions+b.Regions || sum.Aborts != a.Aborts+b.Aborts ||
			sum.LoggedEntries != a.LoggedEntries+b.LoggedEntries ||
			sum.LoggedBytes != a.LoggedBytes+b.LoggedBytes {
			return false
		}
		for i := range sum.StoresPerRegion {
			if sum.StoresPerRegion[i] != a.StoresPerRegion[i]+b.StoresPerRegion[i] {
				return false
			}
		}
		for i := range sum.OutputsPerRegion {
			if sum.OutputsPerRegion[i] != a.OutputsPerRegion[i]+b.OutputsPerRegion[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRV(t *testing.T) {
	rv := RV(3, 42)
	if rv.Reg != 3 || rv.Val != 42 {
		t.Fatalf("RV = %+v", rv)
	}
}
