// Package persist defines the failure-atomicity runtime API that iDO and
// every baseline system implement. Application code (the data structures
// and key-value stores in this repository) is written once against
// Runtime/Thread; swapping the runtime swaps the persistence mechanism,
// exactly as the paper swaps instrumentation back ends over the same
// FASE-annotated sources (§V).
package persist

import (
	"fmt"
	"time"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/region"
)

// MaxOutputs bounds the number of register outputs a single idempotent
// region may log (the iDO intRF has a fixed slot per register, Fig. 3).
const MaxOutputs = 16

// Runtime is one failure-atomicity system bound to a persistent region.
type Runtime interface {
	// Name identifies the system ("ido", "atlas", ...).
	Name() string

	// Attach binds the runtime to a region and lock manager. It is called
	// once before any thread is created, and again on a fresh runtime
	// value after a crash, before Recover.
	Attach(reg *region.Region, lm *locks.Manager) error

	// NewThread registers a worker thread with the runtime.
	NewThread() (Thread, error)

	// Recover completes (resumption systems) or rolls back (UNDO/REDO
	// systems) every FASE that a crash interrupted, leaving persistent
	// data consistent with no locks held. rr supplies the resume entry
	// points compiled into the application; runtimes that do not resume
	// ignore it.
	Recover(rr *ResumeRegistry) (RecoveryStats, error)

	// Stats aggregates counters across all threads of this runtime.
	Stats() RuntimeStats
}

// Thread is a worker's handle on a runtime. A Thread must be used from a
// single goroutine.
type Thread interface {
	// ID is the stable thread index assigned at registration.
	ID() int

	// Exec runs one complete operation (one or more whole FASEs).
	// Speculative runtimes may re-execute op on conflict, so op must
	// confine its side effects to Thread stores and local variables.
	Exec(op func())

	// Lock and Unlock delineate lock-inferred FASEs.
	Lock(l *locks.Lock)
	Unlock(l *locks.Lock)

	// BeginDurable and EndDurable delineate programmer-annotated FASEs
	// (durable code regions, §II-B), used by single-threaded code.
	BeginDurable()
	EndDurable()

	// Store64 and Load64 access persistent data. Inside a FASE they are
	// instrumented per the runtime's mechanism; outside they are plain.
	Store64(addr, val uint64)
	Load64(addr uint64) uint64

	// Boundary marks an idempotent-region boundary, logging the ending
	// region's OutputSet (iDO §III-A) as (register, value) pairs. Each
	// register has a fixed slot in the persistent log (Fig. 3), so a
	// boundary can never clobber a live-in that the current recovery_pc
	// still needs — the property §IV-A(c)'s live-range extension
	// guarantees in the real compiler. Non-iDO runtimes ignore it.
	Boundary(regionID uint64, outputs ...RegVal)
}

// RegVal is one logged register: a fixed slot index and its value.
type RegVal struct {
	Reg int
	Val uint64
}

// RV builds a RegVal.
func RV(reg int, val uint64) RegVal { return RegVal{Reg: reg, Val: val} }

// OutputScratcher is an optional Thread extension: a thread-owned
// reusable buffer for assembling a Boundary output set. Boundary must
// copy its outputs before returning (iDO's does — the log is persistent,
// the staged copy is its own slice), so the same buffer is safe to hand
// back on every call. Threads are single-goroutine by contract, which is
// what makes a single per-thread buffer sound.
type OutputScratcher interface {
	// OutputScratch returns a zero-length slice with at least MaxOutputs
	// capacity, valid until the next OutputScratch call on this thread.
	OutputScratch() []RegVal
}

// Outs returns a zero-length buffer for building t's next Boundary
// output set: t's reusable scratch when the runtime offers one, a fresh
// slice otherwise. Appending up to MaxOutputs RegVals and spreading the
// result into Boundary is then allocation-free on scratch-providing
// runtimes — variadic slices built at an interface call site otherwise
// defeat escape analysis and heap-allocate on every FASE.
func Outs(t Thread) []RegVal {
	if s, ok := t.(OutputScratcher); ok {
		return s.OutputScratch()
	}
	return make([]RegVal, 0, MaxOutputs)
}

// ResumeFunc re-executes an interrupted FASE from the entry of the
// idempotent region identified at registration, given the thread handle
// and the full logged register file (rf[i] is register slot i), and runs
// forward to the end of the FASE. It is the code the iDO compiler would
// emit for the recovery jump target.
type ResumeFunc func(t Thread, rf []uint64)

// ResumeRegistry maps region IDs to resume entry points. Applications
// register every region that can appear as a recovery_pc.
type ResumeRegistry struct {
	m map[uint64]ResumeFunc
}

// NewResumeRegistry returns an empty registry.
func NewResumeRegistry() *ResumeRegistry {
	return &ResumeRegistry{m: make(map[uint64]ResumeFunc)}
}

// Register installs the resume entry for a region ID. Registering the
// same ID twice panics: region IDs must be globally unique.
func (r *ResumeRegistry) Register(regionID uint64, fn ResumeFunc) {
	if regionID == 0 {
		panic("persist: region ID 0 is reserved for 'not in FASE'")
	}
	if _, dup := r.m[regionID]; dup {
		panic(fmt.Sprintf("persist: duplicate region ID %#x", regionID))
	}
	r.m[regionID] = fn
}

// Lookup returns the resume entry for a region ID.
func (r *ResumeRegistry) Lookup(regionID uint64) (ResumeFunc, bool) {
	fn, ok := r.m[regionID]
	return fn, ok
}

// Len reports the number of registered regions.
func (r *ResumeRegistry) Len() int { return len(r.m) }

// RecoveryStats describes one recovery pass.
type RecoveryStats struct {
	Threads    int           // per-thread logs examined
	Resumed    int           // FASEs completed by resumption
	RolledBack int           // FASEs undone by log replay
	LogEntries uint64        // log entries scanned
	Elapsed    time.Duration // wall time of the pass

	// Attempt is the recovery-attempt index of this pass (0 for the
	// first pass since nvm.ResetRecoveryPasses). A pass that runs after
	// an earlier pass crashed mid-recovery reports a higher Attempt —
	// the re-entrancy counter the chaos harness asserts on.
	Attempt int

	// Audit is the per-thread audit trail of what this pass did — which
	// locks were re-acquired, which region was resumed at which
	// recovery_pc, how many words were restored. Runtimes populate it
	// unconditionally (it is cheap); cmd/idorecover prints it.
	Audit *obs.RecoveryAudit
}

// HistStores is the bucket count for the stores-per-region histogram:
// buckets 0..HistStores-2 count exactly, the last bucket is "more".
const HistStores = 33

// HistOutputs is the bucket count for the live-in/output-registers
// histogram.
const HistOutputs = MaxOutputs + 1

// RuntimeStats aggregates execution counters for one runtime instance.
type RuntimeStats struct {
	FASEs         uint64 // failure-atomic sections completed
	Regions       uint64 // idempotent regions executed (iDO only)
	Stores        uint64 // persistent stores issued inside FASEs
	LoggedEntries uint64 // log records written (stores for UNDO/REDO/JUSTDO, regions for iDO)
	LoggedBytes   uint64 // bytes of log payload written
	Aborts        uint64 // speculative re-executions (transactional runtimes)

	// StoresPerRegion[i] counts dynamic regions with i persistent stores
	// (last bucket: >= HistStores-1). Populated by iDO and JUSTDO
	// (for JUSTDO every region is one store).
	StoresPerRegion [HistStores]uint64

	// OutputsPerRegion[i] counts dynamic regions that logged i register
	// outputs — the native-side proxy for Fig. 8's live-in registers.
	OutputsPerRegion [HistOutputs]uint64
}

// Add accumulates other into s.
func (s *RuntimeStats) Add(other *RuntimeStats) {
	s.FASEs += other.FASEs
	s.Regions += other.Regions
	s.Stores += other.Stores
	s.LoggedEntries += other.LoggedEntries
	s.LoggedBytes += other.LoggedBytes
	s.Aborts += other.Aborts
	for i := range s.StoresPerRegion {
		s.StoresPerRegion[i] += other.StoresPerRegion[i]
	}
	for i := range s.OutputsPerRegion {
		s.OutputsPerRegion[i] += other.OutputsPerRegion[i]
	}
}
