// Package workload generates the request streams of §V: memaslap-style
// uniform key workloads with configurable insert/search mixes for the
// Memcached experiments (Fig. 5), the lru_test-style 80/20 get/put
// power-law workload over fixed key ranges for Redis (Fig. 6), and the
// random operation mixes of the data-structure microbenchmarks (Fig. 7).
// Generators are deterministic per (seed, thread) so runs are repeatable
// and threads never contend on a shared RNG, matching the paper's
// thread-local generators.
package workload

import (
	"math"
	"math/rand"
)

// OpKind classifies a generated request.
type OpKind int

// Request kinds.
const (
	OpInsert OpKind = iota // set / put / push / enqueue
	OpSearch               // get / lookup
	OpDelete               // delete / remove / pop / dequeue
)

// Op is one generated request.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64
}

// Generator produces a deterministic request stream.
type Generator struct {
	rng       *rand.Rand
	insertPct int
	deletePct int
	keys      *keyDist
	seq       uint64
}

type keyDist struct {
	rangeSize uint64
	zipf      *rand.Zipf
}

// NewUniform builds a memaslap-style generator: uniformly distributed
// keys in [1, rangeSize], insertPct percent inserts (50 for the paper's
// insertion-intensive mix, 10 for search-intensive).
func NewUniform(seed int64, rangeSize uint64, insertPct int) *Generator {
	return NewUniformMix(seed, rangeSize, insertPct, 0)
}

// NewUniformMix is NewUniform with a three-way mix: insertPct percent
// inserts, deletePct percent deletes, searches for the rest (40/20 for
// the delete-heavy churn mix). For structures without keyed search
// (stack, queue) callers treat OpDelete as the removal op, so a
// zero-search mix degenerates to pure insert/remove churn.
func NewUniformMix(seed int64, rangeSize uint64, insertPct, deletePct int) *Generator {
	rng := rand.New(rand.NewSource(seed))
	return &Generator{rng: rng, insertPct: insertPct, deletePct: deletePct,
		keys: &keyDist{rangeSize: rangeSize}}
}

// NewPowerLaw builds an lru_test-style generator: zipfian keys over
// [1, rangeSize] with the given insert percentage (20 for the paper's
// 80% get / 20% put mix).
func NewPowerLaw(seed int64, rangeSize uint64, insertPct int) *Generator {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.01, 1, rangeSize-1)
	return &Generator{rng: rng, insertPct: insertPct, keys: &keyDist{rangeSize: rangeSize, zipf: z}}
}

// Next returns the next request.
func (g *Generator) Next() Op {
	g.seq++
	var key uint64
	if g.keys.zipf != nil {
		key = g.keys.zipf.Uint64() + 1
	} else {
		key = uint64(g.rng.Int63n(int64(g.keys.rangeSize))) + 1
	}
	kind := OpSearch
	if r := g.rng.Intn(100); r < g.insertPct {
		kind = OpInsert
	} else if r < g.insertPct+g.deletePct {
		kind = OpDelete
	}
	return Op{Kind: kind, Key: key, Val: g.seq}
}

// Key16 expands a numeric key into the paper's 16-byte key encoding.
func Key16(key uint64) []byte {
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(key >> (8 * i))
		b[8+i] = byte(0xA5 ^ b[i])
	}
	return b[:]
}

// Val8 expands a numeric value into the paper's 8-byte value encoding.
func Val8(v uint64) []byte {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b[:]
}

// ZipfSkewCheck measures the fraction of draws hitting the hottest 1% of
// the key space — used by tests to confirm the distribution is actually
// skewed.
func ZipfSkewCheck(seed int64, rangeSize uint64, draws int) float64 {
	g := NewPowerLaw(seed, rangeSize, 0)
	hot := rangeSize / 100
	if hot == 0 {
		hot = 1
	}
	hits := 0
	for i := 0; i < draws; i++ {
		if g.Next().Key <= hot {
			hits++
		}
	}
	return float64(hits) / float64(draws)
}

// Sweep describes a thread-count sweep like the paper's x axes.
func Sweep(max int) []int {
	out := []int{1}
	for n := 2; n <= max; n *= 2 {
		out = append(out, n)
	}
	if out[len(out)-1] != max && max > 1 {
		out = append(out, max)
	}
	return out
}

// LatencyPoints returns the Fig. 9 NVM-latency sweep in nanoseconds.
func LatencyPoints() []int { return []int{0, 20, 50, 100, 200, 500, 1000, 2000} }

// GeoMean computes the geometric mean of positive values (0 for empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
