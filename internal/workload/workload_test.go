package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformDeterministicPerSeed(t *testing.T) {
	a := NewUniform(7, 1000, 50)
	b := NewUniform(7, 1000, 50)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewUniform(8, 1000, 50)
	same := true
	a2 := NewUniform(7, 1000, 50)
	for i := 0; i < 20; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestUniformKeyRangeAndMix(t *testing.T) {
	g := NewUniform(1, 500, 30)
	inserts := 0
	const n = 20000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Key < 1 || op.Key > 500 {
			t.Fatalf("key %d out of range", op.Key)
		}
		if op.Kind == OpInsert {
			inserts++
		}
	}
	frac := float64(inserts) / n
	if math.Abs(frac-0.30) > 0.02 {
		t.Fatalf("insert fraction = %.3f, want ~0.30", frac)
	}
}

func TestPowerLawIsSkewed(t *testing.T) {
	frac := ZipfSkewCheck(3, 100_000, 50_000)
	// The hottest 1% of keys must draw far more than 1% of accesses.
	if frac < 0.10 {
		t.Fatalf("hot-1%% fraction = %.3f; distribution not skewed", frac)
	}
	// And a uniform generator must not be skewed.
	g := NewUniform(3, 100_000, 0)
	hot := 0
	for i := 0; i < 50_000; i++ {
		if g.Next().Key <= 1000 {
			hot++
		}
	}
	if f := float64(hot) / 50_000; f > 0.05 {
		t.Fatalf("uniform hot fraction = %.3f", f)
	}
}

func TestKeyEncodings(t *testing.T) {
	f := func(k uint64) bool {
		b := Key16(k)
		if len(b) != 16 {
			return false
		}
		// Decodable: first 8 bytes are little-endian k.
		var got uint64
		for i := 7; i >= 0; i-- {
			got = got<<8 | uint64(b[i])
		}
		v := Val8(k)
		var gv uint64
		for i := 7; i >= 0; i-- {
			gv = gv<<8 | uint64(v[i])
		}
		return got == k && gv == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSweep(t *testing.T) {
	if got := Sweep(16); len(got) != 5 || got[0] != 1 || got[4] != 16 {
		t.Fatalf("Sweep(16) = %v", got)
	}
	if got := Sweep(12); got[len(got)-1] != 12 {
		t.Fatalf("Sweep(12) = %v", got)
	}
	if got := Sweep(1); len(got) != 1 {
		t.Fatalf("Sweep(1) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("GeoMean = %f", g)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("GeoMean degenerate cases")
	}
}

func TestLatencyPointsMatchPaperRange(t *testing.T) {
	pts := LatencyPoints()
	if pts[0] != 0 || pts[len(pts)-1] != 2000 {
		t.Fatalf("latency sweep = %v", pts)
	}
}
