// Package region implements the persistent-region manager that iDO borrows
// from Atlas (§IV-C): a named region of NVM that a process maps into its
// address space, with a table of persistent root pointers (including the
// iDO_head slot that anchors the per-thread log list) and an nv_malloc
// heap. Regions can be persisted to files so that a "process restart" in
// another Device observes exactly the bytes that had reached the
// persistence domain.
package region

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"

	"github.com/ido-nvm/ido/internal/nvalloc"
	"github.com/ido-nvm/ido/internal/nvm"
)

const (
	magic    = 0x69444F5245470001 // "iDOREG" v1
	numRoots = 32
	// Layout (byte offsets).
	offMagic = 0
	offSize  = 8
	offRoots = 64
	// HeapStart is where the nv_malloc arena begins.
	HeapStart = offRoots + numRoots*8
)

// Reserved root slots. Application code may use slots 1–15; slots 16 and
// above belong to runtime implementations.
const (
	// RootIDOHead holds the head of the global linked list of per-thread
	// iDO logs (Fig. 3).
	RootIDOHead = 0
	// RootAtlasHead anchors the Atlas per-thread undo-log list.
	RootAtlasHead = 16
	// RootMnemosyneHead anchors the Mnemosyne per-thread redo-log list.
	RootMnemosyneHead = 17
	// RootNVThreadsHead anchors the NVThreads per-thread page-log list.
	RootNVThreadsHead = 18
	// RootNVMLHead anchors the NVML per-thread undo-log list.
	RootNVMLHead = 19
)

// Region is a mapped persistent region: a device plus its allocator and
// root table.
type Region struct {
	Dev   *nvm.Device
	Alloc *nvalloc.Allocator
	size  int
}

// Create formats a fresh region of the given size on a new device.
func Create(size int, cfg nvm.Config) *Region {
	if size < HeapStart+1024 {
		panic(fmt.Sprintf("region: size %d too small", size))
	}
	cfg.Size = size
	dev := nvm.New(cfg)
	dev.Store64(offMagic, magic)
	dev.Store64(offSize, uint64(size))
	for i := 0; i < numRoots; i++ {
		dev.Store64(offRoots+uint64(i)*8, 0)
	}
	dev.PersistRange(0, HeapStart)
	dev.Fence()
	alloc := nvalloc.New(dev, HeapStart, uint64(dev.Size()))
	return &Region{Dev: dev, Alloc: alloc, size: size}
}

// Attach reopens a region on a device whose persistence domain already
// holds a formatted region — the post-crash path. The allocator free lists
// are rebuilt from the persisted block headers.
func Attach(dev *nvm.Device) (*Region, error) {
	if dev.Load64(offMagic) != magic {
		return nil, fmt.Errorf("region: bad magic %#x", dev.Load64(offMagic))
	}
	size := int(dev.Load64(offSize))
	if size != dev.Size() {
		return nil, fmt.Errorf("region: recorded size %d != device size %d", size, dev.Size())
	}
	alloc, err := nvalloc.Attach(dev, HeapStart, uint64(dev.Size()))
	if err != nil {
		return nil, fmt.Errorf("region: heap scan: %w", err)
	}
	return &Region{Dev: dev, Alloc: alloc, size: size}, nil
}

// Size returns the region size in bytes.
func (r *Region) Size() int { return r.size }

// SetRoot durably stores a root pointer: the store is written back and
// fenced before SetRoot returns.
func (r *Region) SetRoot(slot int, addr uint64) {
	r.checkSlot(slot)
	a := uint64(offRoots + slot*8)
	r.Dev.Store64(a, addr)
	r.Dev.CLWB(a)
	r.Dev.Fence()
}

// Root reads a root pointer.
func (r *Region) Root(slot int) uint64 {
	r.checkSlot(slot)
	return r.Dev.Load64(uint64(offRoots + slot*8))
}

func (r *Region) checkSlot(slot int) {
	if slot < 0 || slot >= numRoots {
		panic(fmt.Sprintf("region: root slot %d out of range", slot))
	}
}

// Crash simulates process death: volatile cache state is destroyed per
// mode and a fresh Region is attached over the surviving bytes, exactly
// as a recovery process would re-map the region file.
func (r *Region) Crash(mode nvm.CrashMode, rng *rand.Rand) (*Region, error) {
	r.Dev.Crash(mode, rng)
	return Attach(r.Dev)
}

// SaveFile writes the persistence domain to path (volatile cache contents
// are excluded, as they would not survive the crash that precedes reading
// the file back).
func (r *Region) SaveFile(path string) error {
	img := r.Dev.SnapshotPersistent()
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr, magic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(img)))
	return os.WriteFile(path, append(hdr, img...), 0o644)
}

// OpenFile loads a region image saved by SaveFile into a new device and
// attaches to it.
func OpenFile(path string, cfg nvm.Config) (*Region, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 16 || binary.LittleEndian.Uint64(raw) != magic {
		return nil, fmt.Errorf("region: %s is not a region image", path)
	}
	size := int(binary.LittleEndian.Uint64(raw[8:]))
	if size != len(raw)-16 {
		return nil, fmt.Errorf("region: %s truncated (header says %d bytes, have %d)", path, size, len(raw)-16)
	}
	cfg.Size = size
	dev := nvm.New(cfg)
	dev.RestorePersistent(raw[16:])
	return Attach(dev)
}
