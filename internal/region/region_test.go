package region

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/ido-nvm/ido/internal/nvm"
)

func TestCreateAndRoots(t *testing.T) {
	r := Create(1<<16, nvm.Config{})
	if r.Root(RootIDOHead) != 0 {
		t.Fatal("fresh region has nonzero iDO head")
	}
	r.SetRoot(3, 0xDEAD0)
	if got := r.Root(3); got != 0xDEAD0 {
		t.Fatalf("Root(3) = %#x", got)
	}
}

func TestRootSlotRangePanics(t *testing.T) {
	r := Create(1<<16, nvm.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("bad slot did not panic")
		}
	}()
	r.Root(99)
}

func TestRootsSurviveCrash(t *testing.T) {
	r := Create(1<<16, nvm.Config{})
	r.SetRoot(1, 4096)
	r2, err := r.Crash(nvm.CrashDiscard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Root(1); got != 4096 {
		t.Fatalf("root lost across crash: %#x", got)
	}
}

func TestAllocationsSurviveCrashAttach(t *testing.T) {
	r := Create(1<<16, nvm.Config{})
	p, err := r.Alloc.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Persist payload explicitly, like a runtime would.
	r.Dev.Store64(p, 777)
	r.Dev.CLWB(p)
	r.Dev.Fence()
	r.SetRoot(2, p)
	r2, err := r.Crash(nvm.CrashRandom, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Dev.Load64(r2.Root(2)); got != 777 {
		t.Fatalf("payload lost: %d", got)
	}
	if err := r2.Alloc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveOpenFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "heap.img")
	r := Create(1<<15, nvm.Config{})
	p, _ := r.Alloc.Alloc(16)
	r.Dev.Store64(p, 31337)
	r.Dev.CLWB(p)
	r.Dev.Fence()
	r.SetRoot(5, p)
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenFile(path, nvm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Dev.Load64(r2.Root(5)); got != 31337 {
		t.Fatalf("payload after file round trip: %d", got)
	}
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.img")
	if err := writeFile(path, []byte("not a region")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, nvm.Config{}); err == nil {
		t.Fatal("OpenFile accepted garbage")
	}
}

func TestAttachRejectsUnformattedDevice(t *testing.T) {
	dev := nvm.New(nvm.Config{Size: 1 << 14})
	if _, err := Attach(dev); err == nil {
		t.Fatal("Attach accepted unformatted device")
	}
}

func TestUnpersistedRootWriteLostOnCrash(t *testing.T) {
	// Sanity check of the threat model: writing heap data without CLWB
	// then crashing with discard loses the data, while SetRoot (which
	// fences internally) survives.
	r := Create(1<<15, nvm.Config{})
	p, _ := r.Alloc.Alloc(16)
	r.Dev.Store64(p, 555) // not flushed
	r.SetRoot(4, p)
	r2, err := r.Crash(nvm.CrashDiscard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Root(4) != p {
		t.Fatal("fenced root lost")
	}
	if got := r2.Dev.Load64(p); got != 0 {
		t.Fatalf("unflushed heap write survived: %d", got)
	}
}

func writeFile(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
