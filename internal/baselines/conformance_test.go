package baselines_test

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/ido-nvm/ido/internal/baselines/atlas"
	"github.com/ido-nvm/ido/internal/baselines/justdo"
	"github.com/ido-nvm/ido/internal/baselines/mnemosyne"
	"github.com/ido-nvm/ido/internal/baselines/nvml"
	"github.com/ido-nvm/ido/internal/baselines/nvthreads"
	"github.com/ido-nvm/ido/internal/baselines/origin"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

func allRuntimes() map[string]func() persist.Runtime {
	return map[string]func() persist.Runtime{
		"ido":       func() persist.Runtime { return core.New(core.DefaultConfig()) },
		"justdo":    func() persist.Runtime { return justdo.New() },
		"atlas":     func() persist.Runtime { return atlas.New(atlas.Config{}) },
		"mnemosyne": func() persist.Runtime { return mnemosyne.New() },
		"nvthreads": func() persist.Runtime { return nvthreads.New() },
		"nvml":      func() persist.Runtime { return nvml.New() },
		"origin":    func() persist.Runtime { return origin.New() },
	}
}

func setup(t *testing.T, mk func() persist.Runtime) (*region.Region, *locks.Manager, persist.Runtime) {
	t.Helper()
	reg := region.Create(1<<22, nvm.Config{})
	lm := locks.NewManager(reg)
	rt := mk()
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	return reg, lm, rt
}

// TestConcurrentCounterAllRuntimes runs the same lock-based increment
// workload on every runtime: the persistence mechanisms differ but the
// observable result must be identical.
func TestConcurrentCounterAllRuntimes(t *testing.T) {
	for name, mk := range allRuntimes() {
		t.Run(name, func(t *testing.T) {
			reg, lm, rt := setup(t, mk)
			lock, err := lm.Create()
			if err != nil {
				t.Fatal(err)
			}
			ctr, _ := reg.Alloc.Alloc(8)
			const workers, each = 8, 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				th, err := rt.NewThread()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(th persist.Thread) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						th.Exec(func() {
							th.Lock(lock)
							th.Boundary(0x900)
							v := th.Load64(ctr)
							th.Boundary(0x901, persist.RV(0, v))
							th.Store64(ctr, v+1)
							th.Unlock(lock)
						})
					}
				}(th)
			}
			wg.Wait()
			if got := reg.Dev.Load64(ctr); got != workers*each {
				t.Fatalf("%s: counter = %d, want %d", name, got, workers*each)
			}
			s := rt.Stats()
			if s.FASEs != workers*each {
				t.Fatalf("%s: FASEs = %d, want %d", name, s.FASEs, workers*each)
			}
		})
	}
}

// TestJUSTDOStoreDurability: after a JUSTDO Store64 inside a FASE returns,
// the value has already been fenced durable.
func TestJUSTDOStoreDurability(t *testing.T) {
	reg, lm, rt := setup(t, func() persist.Runtime { return justdo.New() })
	lock, _ := lm.Create()
	cell, _ := reg.Alloc.Alloc(8)
	th, _ := rt.NewThread()
	th.Lock(lock)
	th.Store64(cell, 88)
	// Crash with the FASE still open: the store must survive.
	reg.Dev.Crash(nvm.CrashDiscard, nil)
	if got := reg.Dev.Load64(cell); got != 88 {
		t.Fatalf("JUSTDO store not durable before crash: %d", got)
	}
}

// TestAtlasRollbackIncompleteFASE: with retained logs, a crash mid-FASE
// rolls the FASE's stores back; a completed FASE survives.
func TestAtlasRollbackIncompleteFASE(t *testing.T) {
	reg, lm, _ := setup(t, func() persist.Runtime { return origin.New() }) // region only
	rt := atlas.New(atlas.Config{Retain: true})
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	lock, _ := lm.Create()
	a, _ := reg.Alloc.Alloc(8)
	b, _ := reg.Alloc.Alloc(8)

	// FASE 1 completes: a = 10.
	t1, _ := rt.NewThread()
	t1.Lock(lock)
	t1.Store64(a, 10)
	t1.Unlock(lock)

	// FASE 2 crashes mid-flight: b = 20 must be rolled back.
	t2, _ := rt.NewThread()
	t2.Lock(lock)
	t2.Store64(b, 20)
	// Simulate crash: volatile state dies; note Atlas defers data
	// write-back, but the adversary may have evicted the line, so use
	// the persist-all crash — rollback must still undo it.
	reg2, err := reg.Crash(nvm.CrashPersistAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := atlas.New(atlas.Config{Retain: true})
	if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
		t.Fatal(err)
	}
	stats, err := rt2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Dev.Load64(a); got != 10 {
		t.Fatalf("completed FASE lost: a = %d, want 10", got)
	}
	if got := reg2.Dev.Load64(b); got != 0 {
		t.Fatalf("incomplete FASE not rolled back: b = %d, want 0", got)
	}
	if stats.RolledBack != 1 {
		t.Fatalf("rolled back %d FASEs, want 1", stats.RolledBack)
	}
}

// TestAtlasDependentRollback reproduces the cross-FASE dependence case of
// §I: T1's hand-over-hand FASE releases a lock mid-FASE and crashes
// incomplete; T2 completed a FASE under that lock. Recovery must roll
// back T2's completed FASE as well.
func TestAtlasDependentRollback(t *testing.T) {
	reg, lm, _ := setup(t, func() persist.Runtime { return origin.New() })
	rt := atlas.New(atlas.Config{Retain: true})
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	lockA, _ := lm.Create()
	lockB, _ := lm.Create()
	x, _ := reg.Alloc.Alloc(8)
	y, _ := reg.Alloc.Alloc(8)

	t1, _ := rt.NewThread()
	t2, _ := rt.NewThread()

	t1.Lock(lockA)
	t1.Store64(x, 1) // uncommitted write, visible after A's release
	t1.Lock(lockB)
	t1.Unlock(lockA) // hand-over-hand: A released mid-FASE

	t2.Lock(lockA)
	v := t2.Load64(x) // reads T1's uncommitted 1
	t2.Store64(y, v+100)
	t2.Unlock(lockA) // T2's FASE completes

	// T1 crashes still holding B, FASE incomplete.
	reg2, err := reg.Crash(nvm.CrashPersistAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := atlas.New(atlas.Config{Retain: true})
	if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
		t.Fatal(err)
	}
	stats, err := rt2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RolledBack != 2 {
		t.Fatalf("rolled back %d FASEs, want 2 (incomplete + dependent)", stats.RolledBack)
	}
	if got := reg2.Dev.Load64(x); got != 0 {
		t.Fatalf("x = %d, want 0", got)
	}
	if got := reg2.Dev.Load64(y); got != 0 {
		t.Fatalf("dependent completed FASE survived: y = %d, want 0", got)
	}
}

// TestAtlasPrunedLogsStayBounded: in the default pruning mode the log is
// reset at each FASE end, so entries never accumulate.
func TestAtlasPrunedLogsStayBounded(t *testing.T) {
	reg, lm, _ := setup(t, func() persist.Runtime { return origin.New() })
	rt := atlas.New(atlas.Config{})
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	lock, _ := lm.Create()
	cell, _ := reg.Alloc.Alloc(8)
	th, _ := rt.NewThread()
	for i := 0; i < 5000; i++ {
		th.Lock(lock)
		th.Store64(cell, uint64(i))
		th.Unlock(lock)
	}
	// A crash now must find (nearly) empty logs: recovery scans few
	// entries even after 5000 FASEs.
	reg2, err := reg.Crash(nvm.CrashPersistAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := atlas.New(atlas.Config{})
	if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
		t.Fatal(err)
	}
	stats, err := rt2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.LogEntries > 16 {
		t.Fatalf("pruned-mode recovery scanned %d entries", stats.LogEntries)
	}
	if got := reg2.Dev.Load64(cell); got != 4999 {
		t.Fatalf("cell = %d, want 4999", got)
	}
}

// TestAtlasRetainedLogsGrow: retained logs accumulate with run length —
// the effect behind Table I.
func TestAtlasRetainedLogsGrow(t *testing.T) {
	count := func(fases int) uint64 {
		reg := region.Create(1<<24, nvm.Config{})
		lm := locks.NewManager(reg)
		rt := atlas.New(atlas.Config{Retain: true})
		if err := rt.Attach(reg, lm); err != nil {
			t.Fatal(err)
		}
		lock, _ := lm.Create()
		cell, _ := reg.Alloc.Alloc(8)
		th, _ := rt.NewThread()
		for i := 0; i < fases; i++ {
			th.Lock(lock)
			th.Store64(cell, uint64(i))
			th.Unlock(lock)
		}
		reg2, err := reg.Crash(nvm.CrashPersistAll, nil)
		if err != nil {
			t.Fatal(err)
		}
		rt2 := atlas.New(atlas.Config{Retain: true})
		if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
			t.Fatal(err)
		}
		stats, err := rt2.Recover(nil)
		if err != nil {
			t.Fatal(err)
		}
		return stats.LogEntries
	}
	small, large := count(100), count(1000)
	if large < small*5 {
		t.Fatalf("retained logs did not grow with run length: %d vs %d", small, large)
	}
}

// TestMnemosyneReplayCommittedLog: a commit record without truncation is
// replayed idempotently on recovery.
func TestMnemosyneReplayCommittedLog(t *testing.T) {
	reg, lm, rt := setup(t, func() persist.Runtime { return mnemosyne.New() })
	_ = lm
	th, _ := rt.NewThread()
	cell, _ := reg.Alloc.Alloc(8)
	// Run one committed tx so the thread log exists and is linked.
	th.Exec(func() {
		th.BeginDurable()
		th.Store64(cell, 5)
		th.EndDurable()
	})
	// Forge the crash window: rewrite the log as committed-but-unapplied.
	log := reg.Root(region.RootMnemosyneHead)
	dev := reg.Dev
	dev.StoreNT(log+64, cell)
	dev.StoreNT(log+72, 77)
	dev.StoreNT(log+8, 1) // count
	dev.StoreNT(log+0, 1) // state = committed
	dev.Fence()
	reg2, err := reg.Crash(nvm.CrashDiscard, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := mnemosyne.New()
	if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.Recover(nil); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Dev.Load64(cell); got != 77 {
		t.Fatalf("committed log not replayed: %d, want 77", got)
	}
	// Replay must have truncated; a second recovery is a no-op.
	if got := reg2.Dev.Load64(log + 0); got != 0 {
		t.Fatalf("log state = %d after replay, want 0", got)
	}
}

// TestMnemosyneIsolation: racing increments with aborted retries still
// produce an exact count, and conflicts actually occur.
func TestMnemosyneIsolation(t *testing.T) {
	reg, lm, rt := setup(t, func() persist.Runtime { return mnemosyne.New() })
	lock, _ := lm.Create()
	ctr, _ := reg.Alloc.Alloc(8)
	const workers, each = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th, _ := rt.NewThread()
		wg.Add(1)
		go func(th persist.Thread) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				th.Exec(func() {
					th.Lock(lock)
					th.Store64(ctr, th.Load64(ctr)+1)
					th.Unlock(lock)
				})
			}
		}(th)
	}
	wg.Wait()
	if got := reg.Dev.Load64(ctr); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

// TestNVMLRollback: a crash inside a programmer-delineated FASE restores
// the old values.
func TestNVMLRollback(t *testing.T) {
	reg, lm, rt := setup(t, func() persist.Runtime { return nvml.New() })
	_ = lm
	cell, _ := reg.Alloc.Alloc(16)
	th, _ := rt.NewThread()
	// Seed committed state.
	th.BeginDurable()
	th.Store64(cell, 1)
	th.Store64(cell+8, 2)
	th.EndDurable()
	// Crash mid-FASE.
	th.BeginDurable()
	th.Store64(cell, 100)
	th.Store64(cell+8, 200)
	reg2, err := reg.Crash(nvm.CrashPersistAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := nvml.New()
	if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
		t.Fatal(err)
	}
	stats, err := rt2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RolledBack != 1 {
		t.Fatalf("rolled back %d, want 1", stats.RolledBack)
	}
	if a, b := reg2.Dev.Load64(cell), reg2.Dev.Load64(cell+8); a != 1 || b != 2 {
		t.Fatalf("cells = %d,%d want 1,2", a, b)
	}
}

// TestNVThreadsCrashBeforeCommitLosesNothing: writes buffered in private
// pages never reach NVM before commit, so a pre-commit crash leaves old
// state intact without any rollback.
func TestNVThreadsCrashBeforeCommitLosesNothing(t *testing.T) {
	reg, lm, rt := setup(t, func() persist.Runtime { return nvthreads.New() })
	lock, _ := lm.Create()
	cell, _ := reg.Alloc.Alloc(8)
	th, _ := rt.NewThread()
	// Committed baseline.
	th.Lock(lock)
	th.Store64(cell, 7)
	th.Unlock(lock)
	// Crash mid-CS: buffered page writes must not leak even if the
	// adversary persists the whole cache (the buffer is program state,
	// not NVM).
	th2, _ := rt.NewThread()
	th2.Lock(lock)
	th2.Store64(cell, 999)
	if got := th2.Load64(cell); got != 999 {
		t.Fatalf("read-own-write failed: %d", got)
	}
	reg2, err := reg.Crash(nvm.CrashPersistAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := nvthreads.New()
	if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.Recover(nil); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Dev.Load64(cell); got != 7 {
		t.Fatalf("cell = %d, want 7", got)
	}
}

// TestRandomizedCrashConsistencyAtlasNVML fuzzes crash points across many
// FASEs for the two UNDO systems: after recovery the counter must reflect
// a whole number of completed FASEs.
func TestRandomizedCrashConsistencyAtlasNVML(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		reg := region.Create(1<<22, nvm.Config{})
		lm := locks.NewManager(reg)
		rt := atlas.New(atlas.Config{Retain: true})
		if err := rt.Attach(reg, lm); err != nil {
			t.Fatal(err)
		}
		lock, _ := lm.Create()
		ctr, _ := reg.Alloc.Alloc(8)
		th, _ := rt.NewThread()
		completed := uint64(0)
		crashAt := rng.Intn(40)
		for i := 0; i < 40; i++ {
			if i == crashAt {
				// Open a FASE and crash inside it.
				th.Lock(lock)
				th.Store64(ctr, th.Load64(ctr)+1)
				break
			}
			th.Lock(lock)
			th.Store64(ctr, th.Load64(ctr)+1)
			th.Unlock(lock)
			completed++
		}
		mode := nvm.CrashMode(rng.Intn(3))
		reg2, err := reg.Crash(mode, rng)
		if err != nil {
			t.Fatal(err)
		}
		rt2 := atlas.New(atlas.Config{Retain: true})
		if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
			t.Fatal(err)
		}
		if _, err := rt2.Recover(nil); err != nil {
			t.Fatal(err)
		}
		if got := reg2.Dev.Load64(ctr); got != completed {
			t.Fatalf("trial %d mode %v: counter = %d, want %d", trial, mode, got, completed)
		}
	}
}
