// Package justdo implements JUSTDO logging (Izraelevitz et al., ASPLOS
// 2016) as evaluated in the iDO paper: a recovery-via-resumption system
// that logs ⟨pc, address, value⟩ in persistent memory immediately before
// every store in a FASE. On a conventional machine with volatile caches,
// each store therefore costs two persist-fence sequences (log entry, then
// the store itself), and each lock operation costs two more (the lock
// intention log and the lock ownership log) — the expense that motivates
// iDO. Following §V, this implementation adopts iDO's improvement of
// keeping the program stack in NVM (our register outputs are simply not
// cached across stores, matching JUSTDO's no-register-caching rule).
//
// Native recovery at store granularity requires jumping to an arbitrary
// program counter, which the VM implementation (internal/vm) provides;
// this native runtime reproduces JUSTDO's normal-execution cost model and
// defers crash recovery to the VM, as documented in DESIGN.md.
package justdo

import (
	"fmt"
	"sync"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Per-thread JUSTDO log layout (64-aligned).
const (
	logPC        = 0  // site id of the in-flight store (0 = none)
	logAddr      = 8  // to-be-updated address
	logVal       = 16 // value to be written
	logIntention = 24 // lock intention slot (holder address)
	logOwnBits   = 32 // owned-lock count
	logShadow    = 40 // NVM home of the current FASE-local definition
	logOwnBase   = 64 // ownership array
	numOwned     = 16
	logSize      = logOwnBase + numOwned*8
)

// Runtime is the JUSTDO baseline runtime.
type Runtime struct {
	reg *region.Region

	mu      sync.Mutex
	threads []*thread
	nextID  int
}

// New creates a JUSTDO runtime.
func New() *Runtime { return &Runtime{} }

// Name implements persist.Runtime.
func (rt *Runtime) Name() string { return "justdo" }

// Attach implements persist.Runtime.
func (rt *Runtime) Attach(reg *region.Region, _ *locks.Manager) error {
	rt.reg = reg
	return nil
}

// NewThread implements persist.Runtime.
func (rt *Runtime) NewThread() (persist.Thread, error) {
	raw, err := rt.reg.Alloc.Alloc(logSize + nvm.LineSize)
	if err != nil {
		return nil, fmt.Errorf("justdo: allocating log: %w", err)
	}
	log := (raw + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	rt.reg.Dev.PersistRange(log, logSize)
	rt.reg.Dev.Fence()
	rt.mu.Lock()
	t := &thread{rt: rt, id: rt.nextID, log: log}
	t.initAddrs()
	t.rc = rt.reg.Dev.Tracer().ThreadRing(fmt.Sprintf("justdo/t%d", t.id))
	rt.nextID++
	rt.threads = append(rt.threads, t)
	rt.mu.Unlock()
	return t, nil
}

// Recover implements persist.Runtime. Store-granularity resumption needs
// the VM's ability to jump to an arbitrary instruction; see internal/vm.
// The pass is still bracketed as a recovery attempt so the chaos harness
// sees a consistent attempt count across runtimes.
func (rt *Runtime) Recover(*persist.ResumeRegistry) (persist.RecoveryStats, error) {
	attempt := nvm.EnterRecovery()
	defer nvm.ExitRecovery()
	return persist.RecoveryStats{Attempt: attempt}, fmt.Errorf(
		"justdo: native recovery is store-granularity and provided by the VM (internal/vm); see DESIGN.md")
}

// Stats implements persist.Runtime.
func (rt *Runtime) Stats() persist.RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out persist.RuntimeStats
	for _, t := range rt.threads {
		out.Add(&t.stats)
	}
	return out
}

type thread struct {
	rt    *Runtime
	id    int
	log   uint64
	depth int
	owned int
	site  uint64 // per-thread store-site counter standing in for the pc

	// Precomputed absolute addresses of the log fields and ownership
	// slots. The log base never moves after NewThread, so every
	// per-store base+offset addition is hoisted here once.
	aPC, aAddr, aVal, aIntention, aOwnBits, aShadow uint64
	aOwn                                            [numOwned]uint64

	rc           *obs.Ring // event ring; nil when tracing is off
	faseT0       int64     // tracer clock at FASE entry
	faseLogBytes uint64    // log payload written during the current FASE

	stats persist.RuntimeStats
}

func (t *thread) initAddrs() {
	t.aPC = t.log + logPC
	t.aAddr = t.log + logAddr
	t.aVal = t.log + logVal
	t.aIntention = t.log + logIntention
	t.aOwnBits = t.log + logOwnBits
	t.aShadow = t.log + logShadow
	for i := range t.aOwn {
		t.aOwn[i] = t.log + logOwnBase + uint64(i)*8
	}
}

func (t *thread) ID() int        { return t.id }
func (t *thread) Exec(op func()) { op() }

// Lock performs JUSTDO's two-fence protocol: persist the intention to
// acquire, take the lock, then persist ownership.
func (t *thread) Lock(l *locks.Lock) {
	dev := t.rt.reg.Dev
	if t.rc != nil && t.depth == 0 {
		t.faseT0 = t.rc.Clock()
		t.faseLogBytes = 0
	}
	dev.Store64(t.aIntention, l.Holder())
	dev.CLWB(t.aIntention)
	dev.Fence() // fence 1: intention
	l.Acquire()
	dev.Store64(t.aOwn[t.owned], l.Holder())
	dev.Store64(t.aOwnBits, uint64(t.owned+1))
	dev.Store64(t.aIntention, 0)
	dev.PersistRange(t.log, logOwnBase+uint64(t.owned+1)*8)
	dev.Fence() // fence 2: ownership
	t.rc.Emit(obs.KLockAcq, l.Holder(), 0)
	t.owned++
	t.depth++
}

// Unlock performs the symmetric two-fence release.
func (t *thread) Unlock(l *locks.Lock) {
	dev := t.rt.reg.Dev
	dev.Store64(t.aIntention, l.Holder())
	dev.CLWB(t.aIntention)
	dev.Fence() // fence 1: intention to release
	// Remove from the ownership array.
	idx := -1
	for i := 0; i < t.owned; i++ {
		if dev.Load64(t.aOwn[i]) == l.Holder() {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("justdo: unlocking a lock this thread does not hold")
	}
	lastSlot := t.owned - 1
	dev.Store64(t.aOwn[idx], dev.Load64(t.aOwn[lastSlot]))
	dev.Store64(t.aOwn[lastSlot], 0)
	dev.Store64(t.aOwnBits, uint64(lastSlot))
	dev.Store64(t.aIntention, 0)
	dev.PersistRange(t.log, logOwnBase+uint64(t.owned)*8)
	dev.Fence() // fence 2: ownership dropped
	t.owned--
	t.rc.Emit(obs.KLockRel, l.Holder(), 0)
	if t.depth == 1 {
		t.stats.FASEs++
		dev.Store64(t.aPC, 0)
		dev.CLWB(t.aPC)
		dev.Fence()
		if t.rc != nil {
			t.rc.Span(obs.KFASE, t.faseLogBytes, 0, t.faseT0)
			t.rc.Observe(obs.HLogBytesPerFASE, t.faseLogBytes)
		}
	}
	t.depth--
	l.Release()
}

func (t *thread) BeginDurable() {
	if t.rc != nil && t.depth == 0 {
		t.faseT0 = t.rc.Clock()
		t.faseLogBytes = 0
	}
	t.depth++
}

func (t *thread) EndDurable() {
	if t.depth == 1 {
		dev := t.rt.reg.Dev
		t.stats.FASEs++
		dev.Store64(t.aPC, 0)
		dev.CLWB(t.aPC)
		dev.Fence()
		if t.rc != nil {
			t.rc.Span(obs.KFASE, t.faseLogBytes, 0, t.faseT0)
			t.rc.Observe(obs.HLogBytesPerFASE, t.faseLogBytes)
		}
	}
	t.depth--
}

// Store64 logs ⟨pc, addr, value⟩, fences, performs the store, and fences
// again so the data is persistent before the next log entry overwrites
// this one — JUSTDO's per-store discipline on volatile-cache hardware.
func (t *thread) Store64(addr, val uint64) {
	if t.depth == 0 {
		t.rt.reg.Dev.Store64(addr, val)
		return
	}
	t.loggedStore(addr, val)
	t.stats.Stores++
}

// loggedStore is the per-mutation protocol: two persist fences.
func (t *thread) loggedStore(addr, val uint64) {
	dev := t.rt.reg.Dev
	t.site++
	dev.Store64(t.aPC, t.site)
	dev.Store64(t.aAddr, addr)
	dev.Store64(t.aVal, val)
	dev.CLWB(t.aPC) // pc/addr/val share the log's first line
	dev.Fence()             // log entry durable before the store
	dev.Store64(addr, val)
	dev.CLWB(addr)
	dev.Fence() // store durable before the next log entry
	t.stats.LoggedEntries++
	t.stats.LoggedBytes += 24
	t.faseLogBytes += 24
	t.rc.Emit(obs.KLogAppend, 24, t.site)
	// Under JUSTDO every inter-store span is a one-store "region".
	t.stats.StoresPerRegion[1]++
	t.stats.Regions++
}

// Load64 reads persistent data. Inside a FASE, JUSTDO's restricted
// programming model forbids caching values in registers (§I): every
// FASE-local definition — including the result of a load — lives in
// nonvolatile memory and is itself a logged store. We model that by
// writing each in-FASE load result through to the thread's NVM shadow
// slot with the full two-fence per-store protocol, exactly what the
// paper's JUSTDO pays for traversal state.
func (t *thread) Load64(addr uint64) uint64 {
	v := t.rt.reg.Dev.Load64(addr)
	if t.depth > 0 {
		t.loggedStore(t.aShadow, v)
	}
	return v
}

// Boundary is ignored: JUSTDO logs at store granularity.
func (t *thread) Boundary(uint64, ...persist.RegVal) {}

var (
	_ persist.Runtime = (*Runtime)(nil)
	_ persist.Thread  = (*thread)(nil)
)
