// Package mnemosyne implements the Mnemosyne baseline (Volos et al.,
// ASPLOS 2011) as evaluated in the iDO paper: REDO-logged durable
// transactions with a speculative (TinySTM/TL2-style) implementation.
// FASEs are treated as transactions — lock operations never take the lock;
// they only delimit the transaction, so hand-over-hand traversals execute
// as one large transaction (§V-B). Commits serialize through a global
// version clock and per-stripe versioned write locks, which is the runtime
// synchronization the paper observes saturating at high thread counts.
//
// Durability follows Mnemosyne's raw-word-log design: at commit the write
// set is streamed to a per-thread NVM redo log with non-temporal stores
// and fenced, a commit record is published, the values are applied in
// place and written back, and the log is truncated. Recovery replays any
// log whose commit record is set but whose truncation never made it.
package mnemosyne

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"sync"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

const (
	numStripes = 1 << 16 // versioned write-lock table
	// Per-thread redo log layout.
	logState = 0  // 1 = committed, replay on recovery
	logCount = 8  // number of entries
	logNext  = 16 // next thread log in the global list
	logBase  = 64 // entries: {addr, val} pairs
	maxWrite = 1024
	logSize  = logBase + maxWrite*16
)

// abortTx is the panic payload used to unwind an aborted transaction.
type abortTx struct{}

// Runtime is the Mnemosyne baseline runtime.
type Runtime struct {
	reg *region.Region

	clock   atomic.Uint64
	stripes []atomic.Uint64 // version<<1 | locked

	mu      sync.Mutex
	threads []*thread
	nextID  int
}

// New creates a Mnemosyne runtime.
func New() *Runtime {
	return &Runtime{stripes: make([]atomic.Uint64, numStripes)}
}

// Name implements persist.Runtime.
func (rt *Runtime) Name() string { return "mnemosyne" }

// Attach implements persist.Runtime.
func (rt *Runtime) Attach(reg *region.Region, _ *locks.Manager) error {
	rt.reg = reg
	return nil
}

func (rt *Runtime) stripe(addr uint64) *atomic.Uint64 {
	h := addr >> 3
	h ^= h >> 17
	h *= 0x9E3779B97F4A7C15
	return &rt.stripes[(h>>24)%numStripes]
}

// NewThread implements persist.Runtime.
func (rt *Runtime) NewThread() (persist.Thread, error) {
	raw, err := rt.reg.Alloc.Alloc(logSize + nvm.LineSize)
	if err != nil {
		return nil, fmt.Errorf("mnemosyne: allocating redo log: %w", err)
	}
	log := (raw + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	dev := rt.reg.Dev
	// Deferred unlock: the device calls below panic with nvm.CrashSignal
	// under armed injection, and the mutex must not survive the unwind.
	rt.mu.Lock()
	defer rt.mu.Unlock()
	dev.Store64(log+logState, 0)
	dev.Store64(log+logCount, 0)
	dev.Store64(log+logNext, rt.reg.Root(region.RootMnemosyneHead))
	dev.PersistRange(log, logBase)
	dev.Fence()
	rt.reg.SetRoot(region.RootMnemosyneHead, log)
	t := &thread{
		rt: rt, id: rt.nextID, log: log,
		writes: make(map[uint64]uint64),
	}
	t.rc = dev.Tracer().ThreadRing(fmt.Sprintf("mnemosyne/t%d", t.id))
	rt.nextID++
	rt.threads = append(rt.threads, t)
	return t, nil
}

// Stats implements persist.Runtime.
func (rt *Runtime) Stats() persist.RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out persist.RuntimeStats
	for _, t := range rt.threads {
		out.Add(&t.stats)
	}
	return out
}

// Recover replays any redo log whose commit record survived but whose
// in-place application may not have: REDO semantics make replay
// idempotent, so re-applying is always safe.
func (rt *Runtime) Recover(*persist.ResumeRegistry) (persist.RecoveryStats, error) {
	start := time.Now()
	dev := rt.reg.Dev
	attempt := nvm.EnterRecovery()
	defer nvm.ExitRecovery()
	var stats persist.RecoveryStats
	stats.Attempt = attempt
	stats.Audit = &obs.RecoveryAudit{Runtime: rt.Name(), Attempt: attempt}
	rc := dev.Tracer().ThreadRing("mnemosyne/recover")
	scanT0 := rc.Clock()
	for log := rt.reg.Root(region.RootMnemosyneHead); log != 0; log = dev.Load64(log + logNext) {
		// The log carries no thread id; number audits by scan position.
		audit := obs.ThreadAudit{ThreadID: stats.Threads, LogAddr: log, Action: obs.AuditIdle}
		stats.Threads++
		if dev.Load64(log+logState) != 1 {
			stats.Audit.Add(audit)
			continue
		}
		n := int(dev.Load64(log + logCount))
		if n > maxWrite {
			n = maxWrite
		}
		for i := 0; i < n; i++ {
			e := log + logBase + uint64(i)*16
			addr := dev.Load64(e)
			val := dev.Load64(e + 8)
			dev.Store64(addr, val)
			dev.CLWB(addr)
			stats.LogEntries++
		}
		dev.Fence()
		dev.StoreNT(log+logState, 0)
		dev.Fence()
		stats.RolledBack++ // replayed, in REDO terms
		audit.Action = obs.AuditReplayed
		audit.WordsRestored = n
		stats.Audit.Add(audit)
	}
	rc.Span(obs.KRecovery, obs.PhaseScan, stats.LogEntries, scanT0)
	stats.Elapsed = time.Since(start)
	return stats, nil
}

type readRec struct {
	s   *atomic.Uint64
	ver uint64
}

type thread struct {
	rt  *Runtime
	id  int
	log uint64

	depth      int
	rv         uint64
	reads      []readRec
	writes     map[uint64]uint64
	writeOrder []uint64

	rc     *obs.Ring // event ring; nil when tracing is off
	faseT0 int64     // tracer clock at transaction entry

	stats persist.RuntimeStats
}

func (t *thread) ID() int { return t.id }

// Exec retries op until its transactions commit. op must confine its side
// effects to Thread stores, which the STM buffers.
func (t *thread) Exec(op func()) {
	for {
		if t.try(op) {
			return
		}
		t.stats.Aborts++
	}
}

func (t *thread) try(op func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(abortTx); !is {
				panic(r)
			}
			t.resetTx()
			t.depth = 0
			ok = false
		}
	}()
	op()
	return true
}

func (t *thread) resetTx() {
	t.reads = t.reads[:0]
	for k := range t.writes {
		delete(t.writes, k)
	}
	t.writeOrder = t.writeOrder[:0]
}

func (t *thread) beginTx() {
	if t.rc != nil {
		t.faseT0 = t.rc.Clock()
	}
	t.rv = t.rt.clock.Load()
	t.resetTx()
}

// Lock begins (or extends) the transaction; the lock itself is never
// acquired — Mnemosyne's transactional API replaces locking.
func (t *thread) Lock(*locks.Lock) {
	if t.depth == 0 {
		t.beginTx()
	}
	t.depth++
}

// Unlock commits when the outermost FASE ends.
func (t *thread) Unlock(*locks.Lock) {
	if t.depth == 1 {
		t.commit()
	}
	t.depth--
}

func (t *thread) BeginDurable() {
	if t.depth == 0 {
		t.beginTx()
	}
	t.depth++
}

func (t *thread) EndDurable() {
	if t.depth == 1 {
		t.commit()
	}
	t.depth--
}

func (t *thread) abort() { panic(abortTx{}) }

// Load64 is a TL2 speculative read with pre/post stripe validation.
func (t *thread) Load64(addr uint64) uint64 {
	if t.depth == 0 {
		return t.rt.reg.Dev.Load64(addr)
	}
	if v, ok := t.writes[addr]; ok {
		return v
	}
	s := t.rt.stripe(addr)
	v1 := s.Load()
	if v1&1 != 0 || v1>>1 > t.rv {
		t.abort()
	}
	val := t.rt.reg.Dev.Load64(addr)
	if s.Load() != v1 {
		t.abort()
	}
	t.reads = append(t.reads, readRec{s: s, ver: v1})
	return val
}

// Store64 buffers the write in the transaction's write set.
func (t *thread) Store64(addr, val uint64) {
	if t.depth == 0 {
		t.rt.reg.Dev.Store64(addr, val)
		return
	}
	if _, seen := t.writes[addr]; !seen {
		t.writeOrder = append(t.writeOrder, addr)
	}
	t.writes[addr] = val
	t.stats.Stores++
}

// Boundary is ignored: Mnemosyne has no region concept.
func (t *thread) Boundary(uint64, ...persist.RegVal) {}

// commit performs TL2 lock-validate-log-apply-release. On any conflict it
// unwinds with abortTx and Exec re-runs the operation.
func (t *thread) commit() {
	dev := t.rt.reg.Dev
	if len(t.writeOrder) == 0 {
		// Read-only: every read was validated against rv at load time.
		t.resetTx()
		t.stats.FASEs++
		if t.rc != nil {
			t.rc.Span(obs.KFASE, 0, 0, t.faseT0)
			t.rc.Observe(obs.HLogBytesPerFASE, 0)
		}
		return
	}
	if len(t.writeOrder) > maxWrite {
		panic(fmt.Sprintf("mnemosyne: write set %d exceeds redo log capacity %d",
			len(t.writeOrder), maxWrite))
	}
	// Acquire stripe locks in address order (deduplicated).
	sort.Slice(t.writeOrder, func(i, j int) bool { return t.writeOrder[i] < t.writeOrder[j] })
	var lockedStripes []*atomic.Uint64
	locked := func(s *atomic.Uint64) bool {
		for _, x := range lockedStripes {
			if x == s {
				return true
			}
		}
		return false
	}
	release := func(restore bool) {
		for _, s := range lockedStripes {
			v := s.Load()
			if restore {
				s.Store(v &^ 1)
			}
		}
		lockedStripes = lockedStripes[:0]
	}
	for _, addr := range t.writeOrder {
		s := t.rt.stripe(addr)
		if locked(s) {
			continue
		}
		v := s.Load()
		if v&1 != 0 || v>>1 > t.rv || !s.CompareAndSwap(v, v|1) {
			release(true)
			t.abort()
		}
		lockedStripes = append(lockedStripes, s)
	}
	// Validate the read set.
	for _, r := range t.reads {
		cur := r.s.Load()
		if cur>>1 > t.rv || (cur&1 != 0 && !locked(r.s)) {
			release(true)
			t.abort()
		}
	}
	wv := t.rt.clock.Add(1)

	// Durability: stream the redo log with NT stores, fence, publish the
	// commit record, fence; then apply in place and truncate. All four
	// fences are batchable (FenceBatch): a conflicting committer aborts
	// rather than waiting on stripe locks, so a thread parked in the
	// fence combiner can never block another committer's progress.
	for i, addr := range t.writeOrder {
		e := t.log + logBase + uint64(i)*16
		dev.StoreNT(e, addr)
		dev.StoreNT(e+8, t.writes[addr])
	}
	dev.StoreNT(t.log+logCount, uint64(len(t.writeOrder)))
	dev.FenceBatch()
	dev.StoreNT(t.log+logState, 1)
	dev.FenceBatch()
	for _, addr := range t.writeOrder {
		dev.Store64(addr, t.writes[addr])
		dev.CLWB(addr)
	}
	dev.FenceBatch()
	dev.StoreNT(t.log+logState, 0)
	dev.FenceBatch()

	t.stats.FASEs++
	t.stats.LoggedEntries += uint64(len(t.writeOrder))
	t.stats.LoggedBytes += uint64(len(t.writeOrder)) * 16
	if t.rc != nil {
		logBytes := uint64(len(t.writeOrder)) * 16
		for range t.writeOrder {
			t.rc.Emit(obs.KLogAppend, 16, wv)
		}
		t.rc.Span(obs.KFASE, logBytes, 0, t.faseT0)
		t.rc.Observe(obs.HLogBytesPerFASE, logBytes)
	}

	// Release stripes at the new version.
	for _, s := range lockedStripes {
		s.Store(wv << 1)
	}
	lockedStripes = nil
	t.resetTx()
}

var (
	_ persist.Runtime = (*Runtime)(nil)
	_ persist.Thread  = (*thread)(nil)
)
