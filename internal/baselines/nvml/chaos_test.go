package nvml

import (
	"math/rand"
	"testing"

	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/region"
)

// TestTornCountDoesNotRevertCommittedData pins the generation-tag fix
// for NVML's torn-append window. Store64 writes the entry words and the
// log's count inside one unfenced window, and commit resets the count
// without erasing the entry area — so under nvm.CrashRandom the count
// can settle high while the exposed entry's words still hold a previous
// FASE's undo record. Pre-fix, recovery applied that stale record and
// reverted data a committed FASE had made durable. The per-entry tag
// hashed over the log generation makes the scan reject it.
//
// The torn state is forged by hand (count bumped past the one real
// entry) so the failure is deterministic rather than one CrashRandom
// settle among many.
func TestTornCountDoesNotRevertCommittedData(t *testing.T) {
	reg := region.Create(1<<20, nvm.Config{})
	rt := New()
	if err := rt.Attach(reg, nil); err != nil {
		t.Fatal(err)
	}
	dev := reg.Dev
	x, err := reg.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	y, err := reg.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	dev.Store64(x, 1)
	dev.CLWB(x)
	dev.Fence()

	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	// FASE 1 commits x = 2 via two stores, leaving two entry slots
	// populated; commit truncates the count but not the bytes.
	th.BeginDurable()
	th.Store64(x, 2)
	th.Store64(x, 3)
	th.EndDurable()
	// FASE 2 begins and writes one real entry (slot 0, for y).
	th.BeginDurable()
	th.Store64(y, 9)

	// Forge the CrashRandom outcome: count settles to 2, exposing slot 1
	// — FASE 1's stale undo record {x, old=2}.
	log := reg.Root(region.RootNVMLHead)
	dev.Store64(log+logCount, 2)
	dev.CLWB(log + logCount)
	dev.Fence()

	reg2, err := reg.Crash(nvm.CrashPersistAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := New()
	if err := rt2.Attach(reg2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.Recover(nil); err != nil {
		t.Fatal(err)
	}
	// FASE 2's real entry must roll y back; FASE 1's committed x = 3
	// must survive the stale slot.
	if got := reg2.Dev.Load64(x); got != 3 {
		t.Fatalf("stale undo entry reverted committed data: x = %d, want 3", got)
	}
	if got := reg2.Dev.Load64(y); got != 0 {
		t.Fatalf("incomplete FASE not rolled back: y = %d, want 0", got)
	}
}

// TestRecoverIsReentrant crashes nvml Recover at every device event of
// the pass and proves a second Recover converges to the uninterrupted
// outcome: the undo application is fenced durable before the truncation
// store, so the pass can die anywhere and be re-run.
func TestRecoverIsReentrant(t *testing.T) {
	defer nvm.ArmCrash(-1)
	for budget := int64(1); ; budget++ {
		reg := region.Create(1<<20, nvm.Config{})
		rt := New()
		if err := rt.Attach(reg, nil); err != nil {
			t.Fatal(err)
		}
		dev := reg.Dev
		x, err := reg.Alloc.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		dev.Store64(x, 5)
		dev.CLWB(x)
		dev.Fence()
		th, err := rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		th.BeginDurable()
		th.Store64(x, 6)
		th.EndDurable() // committed: x = 6
		th.BeginDurable()
		th.Store64(x, 7) // interrupted: must roll back to 6

		reg2, err := reg.Crash(nvm.CrashDiscard, nil)
		if err != nil {
			t.Fatal(err)
		}
		rt2 := New()
		if err := rt2.Attach(reg2, nil); err != nil {
			t.Fatal(err)
		}
		nvm.ArmRecoveryCrash(budget)
		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.CrashSignal); !ok {
						panic(r)
					}
					c = true
				}
			}()
			if _, err := rt2.Recover(nil); err != nil {
				t.Fatalf("budget %d: recover: %v", budget, err)
			}
			return false
		}()
		nvm.ArmCrash(-1)
		if !crashed {
			if budget == 1 {
				t.Fatal("budget 1 did not crash: recovery-scoped injection is not reaching nvml Recover")
			}
			break
		}
		seed := budget
		reg3, err := reg2.Crash(nvm.CrashRandom, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		rt3 := New()
		if err := rt3.Attach(reg3, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := rt3.Recover(nil); err != nil {
			t.Fatalf("budget %d seed %d: second recover: %v", budget, seed, err)
		}
		if got := reg3.Dev.Load64(x); got != 6 {
			t.Fatalf("budget %d seed %d: after crash-in-recovery + re-recover, x = %d, want 6", budget, seed, got)
		}
	}
}
