// Package nvml implements the NVML baseline (Intel's persistent-memory
// library, now PMDK) as characterized in the iDO paper: a library-based
// UNDO-logging system with programmer-delineated FASEs. There is no
// compiler integration and no synchronization support: the programmer
// annotates every persistent store inside a FASE (our Store64 inside a
// delineated section), locks are ordinary mutexes with no persistence
// bookkeeping, and no cross-FASE dependences are tracked. Each annotated
// store appends an undo record that is fenced durable before the store;
// commit flushes the FASE's data and truncates the log.
package nvml

import (
	"fmt"
	"sync"
	"time"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

const (
	// Per-thread undo log layout. Entries are {addr, old, tag, pad}: the
	// tag word hashes the log's generation with the entry payload, so a
	// recovery scan can reject a torn append (count word persisted before
	// the entry words) and — because the log area is reused across FASEs
	// without erasure — a stale entry from an earlier, committed FASE
	// that a torn count would otherwise expose as live. Rolling such an
	// entry back would revert committed data.
	logCount  = 0  // live entry count; 0 = no FASE in flight
	logNext   = 8
	logGen    = 16 // generation, bumped at every truncation
	logBase   = 64
	entrySize = 32
	maxUndo   = 2048
	logSize   = logBase + maxUndo*entrySize
)

// entryTag hashes (gen, addr, old) into the per-entry tag word.
func entryTag(gen, addr, old uint64) uint64 {
	x := gen + 0x632be59bd9b4e019
	for _, w := range [...]uint64{addr, old} {
		x ^= w
		x *= 0x9e3779b97f4a7c15
		x ^= x >> 29
	}
	return x
}

// Runtime is the NVML baseline runtime.
type Runtime struct {
	reg *region.Region

	mu      sync.Mutex
	threads []*thread
	nextID  int
}

// New creates an NVML runtime.
func New() *Runtime { return &Runtime{} }

// Name implements persist.Runtime.
func (rt *Runtime) Name() string { return "nvml" }

// Attach implements persist.Runtime.
func (rt *Runtime) Attach(reg *region.Region, _ *locks.Manager) error {
	rt.reg = reg
	return nil
}

// NewThread implements persist.Runtime.
func (rt *Runtime) NewThread() (persist.Thread, error) {
	raw, err := rt.reg.Alloc.Alloc(logSize + nvm.LineSize)
	if err != nil {
		return nil, fmt.Errorf("nvml: allocating undo log: %w", err)
	}
	log := (raw + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	dev := rt.reg.Dev
	// Deferred unlock: the device calls below panic with nvm.CrashSignal
	// under armed injection, and the mutex must not survive the unwind.
	rt.mu.Lock()
	defer rt.mu.Unlock()
	dev.Store64(log+logCount, 0)
	dev.Store64(log+logNext, rt.reg.Root(region.RootNVMLHead))
	dev.Store64(log+logGen, 1) // 1 so recycled heap bytes (gen 0) never match
	dev.PersistRange(log, logBase)
	dev.Fence()
	rt.reg.SetRoot(region.RootNVMLHead, log)
	t := &thread{rt: rt, id: rt.nextID, log: log, gen: 1}
	t.rc = dev.Tracer().ThreadRing(fmt.Sprintf("nvml/t%d", t.id))
	rt.nextID++
	rt.threads = append(rt.threads, t)
	return t, nil
}

// Stats implements persist.Runtime.
func (rt *Runtime) Stats() persist.RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out persist.RuntimeStats
	for _, t := range rt.threads {
		out.Add(&t.stats)
	}
	return out
}

// Recover rolls back any FASE whose undo log was never truncated,
// applying the records newest-first. With no dependence tracking this is
// sound only under NVML's programming model (FASEs on private or
// externally synchronized data).
func (rt *Runtime) Recover(*persist.ResumeRegistry) (persist.RecoveryStats, error) {
	start := time.Now()
	dev := rt.reg.Dev
	attempt := nvm.EnterRecovery()
	defer nvm.ExitRecovery()
	var stats persist.RecoveryStats
	stats.Attempt = attempt
	stats.Audit = &obs.RecoveryAudit{Runtime: rt.Name(), Attempt: attempt}
	rc := dev.Tracer().ThreadRing("nvml/recover")
	scanT0 := rc.Clock()
	for log := rt.reg.Root(region.RootNVMLHead); log != 0; log = dev.Load64(log + logNext) {
		// The log carries no thread id; number audits by scan position.
		audit := obs.ThreadAudit{ThreadID: stats.Threads, LogAddr: log, Action: obs.AuditIdle}
		stats.Threads++
		n := int(dev.Load64(log + logCount))
		if n == 0 {
			stats.Audit.Add(audit)
			continue
		}
		if n > maxUndo {
			n = maxUndo
		}
		// Undo application is fenced durable before the truncation store,
		// so a crash anywhere in this pass leaves the log either intact
		// (the next pass re-applies the same old values — idempotent) or
		// already truncated. Entries whose tag does not match the current
		// generation are torn or stale and are skipped.
		gen := dev.Load64(log + logGen)
		applied := 0
		for i := n - 1; i >= 0; i-- {
			e := log + logBase + uint64(i)*entrySize
			addr := dev.Load64(e)
			old := dev.Load64(e + 8)
			stats.LogEntries++
			if dev.Load64(e+16) != entryTag(gen, addr, old) {
				continue
			}
			dev.Store64(addr, old)
			dev.CLWB(addr)
			applied++
		}
		dev.Fence()
		dev.Store64(log+logGen, gen+1)
		dev.Store64(log+logCount, 0)
		dev.CLWB(log + logCount)
		dev.Fence()
		stats.RolledBack++
		audit.Action = obs.AuditRolledBack
		audit.WordsRestored = applied
		stats.Audit.Add(audit)
	}
	rc.Span(obs.KRecovery, obs.PhaseScan, stats.LogEntries, scanT0)
	stats.Elapsed = time.Since(start)
	return stats, nil
}

type thread struct {
	rt  *Runtime
	id  int
	log uint64
	gen uint64 // current log generation (cached from log+logGen)

	depth int
	used  int
	dirty []uint64

	rc           *obs.Ring // event ring; nil when tracing is off
	faseT0       int64     // tracer clock at FASE entry
	faseLogBytes uint64    // undo payload written during the current FASE

	stats persist.RuntimeStats
}

func (t *thread) ID() int        { return t.id }
func (t *thread) Exec(op func()) { op() }

// Lock takes the mutex with no persistence bookkeeping; the outermost
// lock still opens a FASE so lock-based callers get undo protection.
func (t *thread) Lock(l *locks.Lock) {
	l.Acquire()
	if t.rc != nil && t.depth == 0 {
		t.faseT0 = t.rc.Clock()
		t.faseLogBytes = 0
	}
	t.rc.Emit(obs.KLockAcq, l.Holder(), 0)
	t.depth++
}

func (t *thread) Unlock(l *locks.Lock) {
	if t.depth == 1 {
		t.commit()
	}
	t.rc.Emit(obs.KLockRel, l.Holder(), 0)
	t.depth--
	l.Release()
}

func (t *thread) BeginDurable() {
	if t.rc != nil && t.depth == 0 {
		t.faseT0 = t.rc.Clock()
		t.faseLogBytes = 0
	}
	t.depth++
}

func (t *thread) EndDurable() {
	if t.depth == 1 {
		t.commit()
	}
	t.depth--
}

// Store64 appends the undo record (fenced before the store can reach
// NVM), then stores in place.
func (t *thread) Store64(addr, val uint64) {
	dev := t.rt.reg.Dev
	if t.depth == 0 {
		dev.Store64(addr, val)
		return
	}
	if t.used == maxUndo {
		panic(fmt.Sprintf("nvml: FASE exceeded %d undo records", maxUndo))
	}
	old := dev.Load64(addr)
	e := t.log + logBase + uint64(t.used)*entrySize
	dev.Store64(e, addr)
	dev.Store64(e+8, old)
	dev.Store64(e+16, entryTag(t.gen, addr, old))
	t.used++
	dev.Store64(t.log+logCount, uint64(t.used))
	dev.CLWB(e)
	dev.CLWB(t.log + logCount)
	dev.Fence()
	dev.Store64(addr, val)
	t.trackLine(addr)
	t.stats.Stores++
	t.stats.LoggedEntries++
	t.stats.LoggedBytes += entrySize
	t.faseLogBytes += entrySize
	t.rc.Emit(obs.KLogAppend, entrySize, addr)
}

func (t *thread) trackLine(addr uint64) {
	line := addr &^ (nvm.LineSize - 1)
	for _, l := range t.dirty {
		if l == line {
			return
		}
	}
	t.dirty = append(t.dirty, line)
}

func (t *thread) Load64(addr uint64) uint64 { return t.rt.reg.Dev.Load64(addr) }

// Boundary is ignored: NVML has no region concept.
func (t *thread) Boundary(uint64, ...persist.RegVal) {}

// commit flushes the FASE's data, then truncates the undo log. The
// generation bump rides in the same header line as the count, so the
// surviving entry bytes stop matching whichever of the two words reaches
// NVM first.
func (t *thread) commit() {
	dev := t.rt.reg.Dev
	for _, line := range t.dirty {
		dev.CLWB(line)
	}
	t.dirty = t.dirty[:0]
	dev.Fence()
	t.gen++
	dev.Store64(t.log+logGen, t.gen)
	dev.Store64(t.log+logCount, 0)
	dev.CLWB(t.log + logCount)
	dev.Fence()
	t.used = 0
	t.stats.FASEs++
	if t.rc != nil {
		t.rc.Span(obs.KFASE, t.faseLogBytes, 0, t.faseT0)
		t.rc.Observe(obs.HLogBytesPerFASE, t.faseLogBytes)
	}
}

var (
	_ persist.Runtime = (*Runtime)(nil)
	_ persist.Thread  = (*thread)(nil)
)
