// Package atlas implements the Atlas baseline (Chakrabarti et al., OOPSLA
// 2014) as characterized in the iDO paper: an UNDO-logging, lock-based
// failure-atomicity system that equates FASEs with outermost critical
// sections. Every persistent store appends a 32-byte undo record that must
// be durable before the store itself can reach NVM (one persist fence per
// store); data writes-back are deferred to the end of the FASE. Lock
// acquires and releases are also logged so that recovery can track
// cross-FASE happens-before dependences and roll back incomplete FASEs —
// plus any completed FASEs that transitively observed their data.
//
// Two log-retention modes mirror Atlas's helper-thread pruning:
//
//   - pruned (default): a thread's log is discarded at each FASE end,
//     after the FASE's data is durable and before its locks are released
//     (the steady state a caught-up helper thread maintains);
//   - retained (Config.Retain): logs accumulate for the whole run — the
//     state an in-arrears helper leaves behind; recovery must scan and
//     order everything, which is what makes Atlas recovery time grow with
//     run length (Table I).
package atlas

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Log entry kinds.
const (
	kStore   = 1 // addr = store target, val = old value
	kAcquire = 2 // addr = holder, val = observed lock clock
	kRelease = 3 // addr = holder, val = new lock clock; aux = 1 ends the FASE
)

// Entry layout: {kind|tag<<8, addr, val, aux} — 32 bytes, two per cache
// line. The kind word's high 56 bits hold a tag hashed over the chunk's
// generation and the entry payload, so a scan can reject both torn
// appends (count word persisted, entry words not) and stale entries
// (chunks are reused after truncation without erasure, so a torn count
// can expose a valid-looking entry from an earlier, completed FASE —
// rolling one back would corrupt committed data).
const (
	entrySize = 32
	chunkHdr  = 64  // {next, used, gen}, padded to one line
	chunkCap  = 504 // entries per chunk
	chunkSize = chunkHdr + chunkCap*entrySize
	// Thread record layout.
	trNext  = 0
	trID    = 8
	trChunk = 16 // first log chunk
	trSize  = 64
)

// entryTag hashes a chunk generation and entry payload into the kind
// word's high 56 bits. Every truncation bumps the chunk's generation, so
// an entry surviving from a pre-truncation epoch mismatches even though
// its bytes parse.
func entryTag(gen, kind, addr, val, aux uint64) uint64 {
	x := gen + 0x632be59bd9b4e019
	for _, w := range [...]uint64{kind, addr, val, aux} {
		x ^= w
		x *= 0x9e3779b97f4a7c15
		x ^= x >> 29
	}
	return x >> 8
}

// Config selects the log-retention mode.
type Config struct {
	// Retain keeps all log entries for the lifetime of the run instead of
	// pruning at FASE completion. Required for Table I and for recovery
	// of cross-FASE dependences.
	Retain bool
}

// Runtime is the Atlas baseline runtime.
type Runtime struct {
	cfg Config
	reg *region.Region
	lm  *locks.Manager

	clockMu sync.Mutex
	clocks  map[uint64]uint64 // holder -> lock lamport clock

	mu      sync.Mutex
	threads []*thread
	nextID  int
}

// New creates an Atlas runtime.
func New(cfg Config) *Runtime {
	return &Runtime{cfg: cfg, clocks: make(map[uint64]uint64)}
}

// Name implements persist.Runtime.
func (rt *Runtime) Name() string { return "atlas" }

// Attach implements persist.Runtime.
func (rt *Runtime) Attach(reg *region.Region, lm *locks.Manager) error {
	rt.reg = reg
	rt.lm = lm
	return nil
}

// lockClock returns the stored clock of a lock holder. Callers must hold
// the corresponding lock, which serializes per-holder access; the mutex
// only protects the map itself.
func (rt *Runtime) lockClock(holder uint64) uint64 {
	rt.clockMu.Lock()
	defer rt.clockMu.Unlock()
	return rt.clocks[holder]
}

func (rt *Runtime) setLockClock(holder, v uint64) {
	rt.clockMu.Lock()
	defer rt.clockMu.Unlock()
	rt.clocks[holder] = v
}

// NewThread implements persist.Runtime: it allocates a persistent thread
// record plus a first log chunk and links the record into the global list.
func (rt *Runtime) NewThread() (persist.Thread, error) {
	dev := rt.reg.Dev
	raw, err := rt.reg.Alloc.Alloc(trSize + nvm.LineSize)
	if err != nil {
		return nil, fmt.Errorf("atlas: allocating thread record: %w", err)
	}
	rec := (raw + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	chunk, err := rt.newChunk()
	if err != nil {
		return nil, err
	}
	// Deferred unlock: the device calls below panic with nvm.CrashSignal
	// under armed injection, and the mutex must not survive the unwind.
	rt.mu.Lock()
	defer rt.mu.Unlock()
	id := rt.nextID
	rt.nextID++
	dev.Store64(rec+trID, uint64(id))
	dev.Store64(rec+trChunk, chunk)
	dev.Store64(rec+trNext, rt.reg.Root(region.RootAtlasHead))
	dev.PersistRange(rec, trSize)
	dev.Fence()
	rt.reg.SetRoot(region.RootAtlasHead, rec)
	t := &thread{rt: rt, id: id, rec: rec, firstChunk: chunk}
	t.setChunk(chunk, 0)
	t.rc = dev.Tracer().ThreadRing(fmt.Sprintf("atlas/t%d", id))
	rt.threads = append(rt.threads, t)
	return t, nil
}

func (rt *Runtime) newChunk() (uint64, error) {
	raw, err := rt.reg.Alloc.Alloc(chunkSize + nvm.LineSize)
	if err != nil {
		return 0, fmt.Errorf("atlas: allocating log chunk: %w", err)
	}
	c := (raw + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	dev := rt.reg.Dev
	dev.Store64(c+0, 0)  // next
	dev.Store64(c+8, 0)  // used
	dev.Store64(c+16, 1) // gen: 1 so recycled heap bytes (gen 0) never match
	dev.CLWB(c)
	dev.Fence()
	return c, nil
}

type thread struct {
	rt  *Runtime
	id  int
	rec uint64

	firstChunk uint64
	curChunk   uint64
	curUsed    int
	curGen     uint64   // current chunk's generation (cached from c+16)
	touched    []uint64 // chunks written since the last prune

	// Precomputed addresses for the current chunk, refilled by setChunk:
	// entry[i] is the address of entry i, aNext/aUsed the header words.
	// One refill per chunkCap appends hoists the base+offset math out of
	// the per-store path.
	entry [chunkCap]uint64
	aNext uint64
	aUsed uint64

	depth   int
	lamport uint64
	dirty   []uint64 // data lines to write back at FASE end

	rc           *obs.Ring // event ring; nil when tracing is off
	faseT0       int64     // tracer clock at FASE entry
	faseLogBytes uint64    // log payload written during the current FASE

	stats persist.RuntimeStats
}

func (t *thread) ID() int        { return t.id }
func (t *thread) Exec(op func()) { op() }

// setChunk makes c the active log chunk and refills the entry-address
// table, so append does no address arithmetic of its own.
func (t *thread) setChunk(c uint64, used int) {
	t.curChunk = c
	t.curUsed = used
	t.curGen = t.rt.reg.Dev.Load64(c + 16)
	t.aNext = c + 0
	t.aUsed = c + 8
	for i := range t.entry {
		t.entry[i] = c + chunkHdr + uint64(i)*entrySize
	}
}

// append writes one undo entry and fences it durable — the per-store
// persist cost the paper charges Atlas for.
func (t *thread) append(kind, addr, val, aux uint64) {
	dev := t.rt.reg.Dev
	if t.curUsed == chunkCap {
		next := dev.Load64(t.aNext)
		if next == 0 {
			var err error
			next, err = t.rt.newChunk()
			if err != nil {
				panic(err)
			}
			dev.Store64(t.aNext, next)
			dev.CLWB(t.aNext)
		}
		t.setChunk(next, int(dev.Load64(next+8)))
	}
	if len(t.touched) == 0 || t.touched[len(t.touched)-1] != t.curChunk {
		t.touched = append(t.touched, t.curChunk)
	}
	e := t.entry[t.curUsed]
	dev.Store64(e+0, kind|entryTag(t.curGen, kind, addr, val, aux)<<8)
	dev.Store64(e+8, addr)
	dev.Store64(e+16, val)
	dev.Store64(e+24, aux)
	t.curUsed++
	dev.Store64(t.aUsed, uint64(t.curUsed))
	dev.CLWB(e)
	dev.CLWB(t.aUsed)
	dev.FenceBatch()
	t.stats.LoggedEntries++
	t.stats.LoggedBytes += entrySize
	t.faseLogBytes += entrySize
	t.rc.Emit(obs.KLogAppend, entrySize, kind)
}

func (t *thread) trackLine(addr uint64) {
	line := addr &^ (nvm.LineSize - 1)
	for _, l := range t.dirty {
		if l == line {
			return
		}
	}
	t.dirty = append(t.dirty, line)
}

// Lock acquires l and logs ownership plus the observed lock clock — the
// happens-before edge recovery needs.
func (t *thread) Lock(l *locks.Lock) {
	l.Acquire()
	if t.rc != nil && t.depth == 0 {
		t.faseT0 = t.rc.Clock()
		t.faseLogBytes = 0
	}
	v := t.rt.lockClock(l.Holder())
	if v+1 > t.lamport {
		t.lamport = v + 1
	} else {
		t.lamport++
	}
	t.append(kAcquire, l.Holder(), v, 0)
	t.rc.Emit(obs.KLockAcq, l.Holder(), 0)
	t.depth++
}

// Unlock logs the release (bumping the lock clock) and, at FASE end,
// makes the FASE's data durable before either pruning or sealing the log.
func (t *thread) Unlock(l *locks.Lock) {
	dev := t.rt.reg.Dev
	last := t.depth == 1
	t.lamport++
	t.rt.setLockClock(l.Holder(), t.lamport)
	if last {
		// FASE end: data durable first (flush + fence, group-commit
		// batchable).
		dev.PersistBatch(t.dirty)
		t.dirty = t.dirty[:0]
		if t.rt.cfg.Retain {
			t.append(kRelease, l.Holder(), t.lamport, 1)
		} else {
			t.prune()
		}
		t.stats.FASEs++
		if t.rc != nil {
			t.rc.Span(obs.KFASE, t.faseLogBytes, 0, t.faseT0)
			t.rc.Observe(obs.HLogBytesPerFASE, t.faseLogBytes)
		}
	} else {
		t.append(kRelease, l.Holder(), t.lamport, 0)
	}
	t.rc.Emit(obs.KLockRel, l.Holder(), 0)
	t.depth--
	l.Release()
}

// prune discards the thread's log — legal only after the FASE's data has
// been fenced durable and before its last lock is released. Bumping each
// chunk's generation alongside the count invalidates the surviving entry
// bytes no matter which of the two words reaches NVM first.
func (t *thread) prune() {
	dev := t.rt.reg.Dev
	for _, c := range t.touched {
		dev.Store64(c+16, dev.Load64(c+16)+1)
		dev.Store64(c+8, 0)
		dev.CLWB(c + 8) // gen shares the header line
	}
	dev.FenceBatch()
	t.touched = t.touched[:0]
	t.setChunk(t.firstChunk, 0)
}

func (t *thread) BeginDurable() {
	if t.rc != nil && t.depth == 0 {
		t.faseT0 = t.rc.Clock()
		t.faseLogBytes = 0
	}
	t.lamport++
	t.append(kAcquire, 0, t.lamport, 0)
	t.depth++
}

func (t *thread) EndDurable() {
	dev := t.rt.reg.Dev
	if t.depth == 1 {
		dev.PersistBatch(t.dirty)
		t.dirty = t.dirty[:0]
		t.lamport++
		if t.rt.cfg.Retain {
			t.append(kRelease, 0, t.lamport, 1)
		} else {
			t.prune()
		}
		t.stats.FASEs++
		if t.rc != nil {
			t.rc.Span(obs.KFASE, t.faseLogBytes, 0, t.faseT0)
			t.rc.Observe(obs.HLogBytesPerFASE, t.faseLogBytes)
		}
	} else {
		t.lamport++
		t.append(kRelease, 0, t.lamport, 0)
	}
	t.depth--
}

// Store64 appends the undo record (durable before the store can leak to
// NVM) and performs the store into the cache; the data line is written
// back at FASE end.
func (t *thread) Store64(addr, val uint64) {
	dev := t.rt.reg.Dev
	if t.depth == 0 {
		dev.Store64(addr, val)
		return
	}
	old := dev.Load64(addr)
	t.append(kStore, addr, old, t.lamport)
	dev.Store64(addr, val)
	t.trackLine(addr)
	t.stats.Stores++
}

func (t *thread) Load64(addr uint64) uint64 { return t.rt.reg.Dev.Load64(addr) }

// Boundary is ignored: Atlas logs at store granularity.
func (t *thread) Boundary(uint64, ...persist.RegVal) {}

// Stats implements persist.Runtime.
func (rt *Runtime) Stats() persist.RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out persist.RuntimeStats
	for _, t := range rt.threads {
		out.Add(&t.stats)
	}
	return out
}

// ---- Recovery ----

type logEntry struct {
	kind, addr, val, aux uint64
	thread               int
	idx                  int // position within the thread's log
}

type fase struct {
	thread   int
	entries  []logEntry
	complete bool
	maxLam   uint64
}

// Recover scans every thread's retained undo log, reconstructs FASEs and
// their happens-before edges from the lock clocks, rolls back all
// incomplete FASEs plus every FASE that transitively acquired a lock
// released by a rolled-back FASE, and truncates the logs. Rollback applies
// undo records in reverse happens-before order.
func (rt *Runtime) Recover(*persist.ResumeRegistry) (persist.RecoveryStats, error) {
	start := time.Now()
	dev := rt.reg.Dev
	attempt := nvm.EnterRecovery()
	defer nvm.ExitRecovery()
	var stats persist.RecoveryStats
	stats.Attempt = attempt
	stats.Audit = &obs.RecoveryAudit{Runtime: rt.Name(), Attempt: attempt}
	rc := dev.Tracer().ThreadRing("atlas/recover")
	scanT0 := rc.Clock()

	// 1. Scan all logs.
	var fases []*fase
	releaseIndex := map[[2]uint64]*fase{} // (holder, clock) -> releasing FASE
	var logsToReset [][]uint64            // chunks per thread, for truncation
	auditIdx := map[int]int{}             // tid -> index into stats.Audit.Threads
	for rec := rt.reg.Root(region.RootAtlasHead); rec != 0; rec = dev.Load64(rec + trNext) {
		stats.Threads++
		tid := int(dev.Load64(rec + trID))
		auditIdx[tid] = len(stats.Audit.Threads)
		stats.Audit.Add(obs.ThreadAudit{ThreadID: tid, LogAddr: rec, Action: obs.AuditIdle})
		var cur *fase
		depth := 0
		idx := 0
		var chunks []uint64
		for c := dev.Load64(rec + trChunk); c != 0; c = dev.Load64(c + 0) {
			chunks = append(chunks, c)
			gen := dev.Load64(c + 16)
			used := int(dev.Load64(c + 8))
			if used > chunkCap {
				used = chunkCap // torn header: clamp
			}
			for i := 0; i < used; i++ {
				e := c + chunkHdr + uint64(i)*entrySize
				w := dev.Load64(e + 0)
				ent := logEntry{
					kind:   w & 0xff,
					addr:   dev.Load64(e + 8),
					val:    dev.Load64(e + 16),
					aux:    dev.Load64(e + 24),
					thread: tid,
					idx:    idx,
				}
				idx++
				stats.LogEntries++
				if ent.kind < kStore || ent.kind > kRelease {
					continue // torn trailing entry
				}
				if w>>8 != entryTag(gen, ent.kind, ent.addr, ent.val, ent.aux) {
					// Torn append (count persisted before the entry words)
					// or a stale pre-truncation entry exposed by chunk
					// reuse: either way not part of this epoch's log.
					continue
				}
				switch ent.kind {
				case kAcquire:
					if depth == 0 {
						cur = &fase{thread: tid}
						fases = append(fases, cur)
					}
					depth++
					cur.entries = append(cur.entries, ent)
				case kRelease:
					if cur == nil {
						continue
					}
					cur.entries = append(cur.entries, ent)
					if ent.val > cur.maxLam {
						cur.maxLam = ent.val
					}
					if ent.aux == 1 {
						cur.complete = true
						depth = 0
						releaseIndex[[2]uint64{ent.addr, ent.val}] = cur
						cur = nil
					} else {
						depth--
						releaseIndex[[2]uint64{ent.addr, ent.val}] = cur
					}
				case kStore:
					if cur == nil {
						continue // store outside any FASE span: torn log
					}
					cur.entries = append(cur.entries, ent)
					if ent.aux > cur.maxLam {
						cur.maxLam = ent.aux
					}
				}
			}
			if used < chunkCap {
				break
			}
		}
		logsToReset = append(logsToReset, chunks)
	}
	rc.Span(obs.KRecovery, obs.PhaseScan, stats.LogEntries, scanT0)

	// 2. Seed the rollback set with incomplete FASEs; propagate along
	// release->acquire edges (a FASE that acquired a lock at clock v
	// depends on the FASE that released it at clock v).
	rollback := map[*fase]bool{}
	var queue []*fase
	for _, f := range fases {
		if !f.complete {
			rollback[f] = true
			queue = append(queue, f)
		}
	}
	// Build acquire edges: for each FASE, which FASEs acquired after its
	// releases. Index acquires by (holder, clock).
	acquirers := map[[2]uint64][]*fase{}
	for _, f := range fases {
		for _, e := range f.entries {
			if e.kind == kAcquire && e.addr != 0 {
				acquirers[[2]uint64{e.addr, e.val}] = append(acquirers[[2]uint64{e.addr, e.val}], f)
			}
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, e := range f.entries {
			if e.kind != kRelease || e.addr == 0 {
				continue
			}
			for _, dep := range acquirers[[2]uint64{e.addr, e.val}] {
				if !rollback[dep] {
					rollback[dep] = true
					queue = append(queue, dep)
				}
			}
		}
	}

	// 3. Apply undo records of the rollback set in reverse happens-before
	// order (descending lamport, then descending per-thread index).
	rbT0 := rc.Clock()
	var undo []logEntry
	for f := range rollback {
		for _, e := range f.entries {
			if e.kind == kStore {
				undo = append(undo, e)
			}
		}
		stats.RolledBack++
		if i, ok := auditIdx[f.thread]; ok {
			stats.Audit.Threads[i].Action = obs.AuditRolledBack
		}
	}
	sort.Slice(undo, func(i, j int) bool {
		if undo[i].aux != undo[j].aux {
			return undo[i].aux > undo[j].aux
		}
		if undo[i].thread != undo[j].thread {
			return undo[i].thread > undo[j].thread
		}
		return undo[i].idx > undo[j].idx
	})
	for _, e := range undo {
		dev.Store64(e.addr, e.val)
		dev.CLWB(e.addr)
		if i, ok := auditIdx[e.thread]; ok {
			stats.Audit.Threads[i].WordsRestored++
		}
	}
	dev.Fence()
	rc.Span(obs.KRecovery, obs.PhaseRollback, uint64(len(undo)), rbT0)

	// 4. Truncate every log. The undo application above is fenced durable
	// before the first truncation store, so a crash anywhere in this
	// phase leaves a prefix of logs truncated and the rest intact — a
	// second Recover re-applies the surviving logs' undo (idempotent) and
	// finishes the truncation. Bumping gen alongside the count keeps the
	// surviving entry bytes unmatchable whichever word persists first.
	trT0 := rc.Clock()
	for _, chunks := range logsToReset {
		for _, c := range chunks {
			dev.Store64(c+16, dev.Load64(c+16)+1)
			dev.Store64(c+8, 0)
			dev.CLWB(c + 8)
		}
	}
	dev.Fence()
	rc.Span(obs.KRecovery, obs.PhaseTruncate, uint64(len(logsToReset)), trT0)

	stats.Elapsed = time.Since(start)
	return stats, nil
}

var (
	_ persist.Runtime = (*Runtime)(nil)
	_ persist.Thread  = (*thread)(nil)
)
