package atlas

import (
	"math/rand"
	"testing"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/region"
)

// TestTornCountDoesNotResurrectStaleEntry pins the generation-tag fix for
// the torn-append window. append writes the entry words and the chunk's
// count inside one unfenced window, and prune resets the count without
// erasing the entry bytes — so under nvm.CrashRandom the count can settle
// high while the entry words settle to a previous epoch's bytes, exposing
// a valid-looking undo record from an earlier, committed FASE. Pre-fix,
// recovery applied that stale record and reverted committed data (here:
// x back to 5 after a FASE that durably set it to 6). The generation tag
// in the kind word makes the scan reject it.
//
// The torn state is forged by hand (count bumped past the one real
// entry) so the failing schedule is deterministic rather than one
// CrashRandom settle among many.
func TestTornCountDoesNotResurrectStaleEntry(t *testing.T) {
	reg := region.Create(1<<20, nvm.Config{})
	lm := locks.NewManager(reg)
	rt := New(Config{})
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	lockA, err := lm.Create()
	if err != nil {
		t.Fatal(err)
	}
	lockB, err := lm.Create()
	if err != nil {
		t.Fatal(err)
	}
	dev := reg.Dev
	x, err := reg.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	dev.Store64(x, 5)
	dev.CLWB(x)
	dev.Fence()

	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	// FASE 1 commits x = 6. Its undo entry {kStore, x, old=5} stays in
	// the chunk after prune resets the count.
	th.Lock(lockA)
	th.Store64(x, 6)
	th.Unlock(lockA)
	// FASE 2 begins on another lock: one kAcquire lands in entry 0.
	th.Lock(lockB)

	// Forge the CrashRandom outcome: the count word settles to a value
	// covering a stale entry whose words never left the old epoch.
	rec := reg.Root(region.RootAtlasHead)
	chunk := dev.Load64(rec + trChunk)
	dev.Store64(chunk+8, 2)
	dev.CLWB(chunk + 8)
	dev.Fence()

	reg2, err := reg.Crash(nvm.CrashPersistAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := New(Config{})
	if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
		t.Fatal(err)
	}
	stats, err := rt2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg2.Dev.Load64(x); got != 6 {
		t.Fatalf("stale undo entry reverted committed data: x = %d, want 6 (stats %+v)", got, stats)
	}
}

// TestRecoverTruncationIsReentrant drives a crash at every device event
// inside atlas Recover itself and proves a second Recover converges: the
// undo application is fenced durable before the first truncation store,
// so whatever prefix of the pass survives, re-running it must leave the
// same final state and empty logs.
func TestRecoverTruncationIsReentrant(t *testing.T) {
	defer nvm.ArmCrash(-1)
	for budget := int64(1); ; budget++ {
		reg := region.Create(1<<20, nvm.Config{})
		lm := locks.NewManager(reg)
		rt := New(Config{Retain: true})
		if err := rt.Attach(reg, lm); err != nil {
			t.Fatal(err)
		}
		lock, err := lm.Create()
		if err != nil {
			t.Fatal(err)
		}
		dev := reg.Dev
		x, err := reg.Alloc.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		dev.Store64(x, 5)
		dev.CLWB(x)
		dev.Fence()
		th, err := rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		th.Lock(lock)
		th.Store64(x, 6)
		th.Unlock(lock) // FASE 1 complete: x = 6 durable
		th.Lock(lock)
		th.Store64(x, 7) // FASE 2 interrupted: must roll back to 6

		reg2, err := reg.Crash(nvm.CrashDiscard, nil)
		if err != nil {
			t.Fatal(err)
		}
		rt2 := New(Config{Retain: true})
		if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
			t.Fatal(err)
		}
		nvm.ArmRecoveryCrash(budget)
		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.CrashSignal); !ok {
						panic(r)
					}
					c = true
				}
			}()
			_, err := rt2.Recover(nil)
			if err != nil {
				t.Fatalf("budget %d: recover: %v", budget, err)
			}
			return false
		}()
		nvm.ArmCrash(-1)
		if !crashed {
			if budget == 1 {
				t.Fatal("budget 1 did not crash: recovery-scoped injection is not reaching atlas Recover")
			}
			break // budget outlasted the whole pass: every point swept
		}
		seed := budget
		reg3, err := reg2.Crash(nvm.CrashRandom, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		rt3 := New(Config{Retain: true})
		if err := rt3.Attach(reg3, locks.NewManager(reg3)); err != nil {
			t.Fatal(err)
		}
		if _, err := rt3.Recover(nil); err != nil {
			t.Fatalf("budget %d seed %d: second recover: %v", budget, seed, err)
		}
		if got := reg3.Dev.Load64(x); got != 6 {
			t.Fatalf("budget %d seed %d: after crash-in-recovery + re-recover, x = %d, want 6", budget, seed, got)
		}
	}
}
