// Package origin implements the uninstrumented baseline ("Origin" in §V):
// plain stores and loads with no logging, no write-backs, and no fences.
// It provides the performance ceiling and is, by construction, crash
// vulnerable — Recover is a no-op.
package origin

import (
	"sync"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Runtime is the crash-vulnerable baseline runtime.
type Runtime struct {
	reg *region.Region

	mu      sync.Mutex
	threads []*thread
	nextID  int
}

// New creates an origin runtime.
func New() *Runtime { return &Runtime{} }

// Name implements persist.Runtime.
func (rt *Runtime) Name() string { return "origin" }

// Attach implements persist.Runtime.
func (rt *Runtime) Attach(reg *region.Region, _ *locks.Manager) error {
	rt.reg = reg
	return nil
}

// NewThread implements persist.Runtime.
func (rt *Runtime) NewThread() (persist.Thread, error) {
	rt.mu.Lock()
	t := &thread{rt: rt, id: rt.nextID}
	rt.nextID++
	rt.threads = append(rt.threads, t)
	rt.mu.Unlock()
	return t, nil
}

// Recover implements persist.Runtime; origin cannot recover anything.
// The audit is present but empty, so callers can print it uniformly.
func (rt *Runtime) Recover(*persist.ResumeRegistry) (persist.RecoveryStats, error) {
	attempt := nvm.EnterRecovery()
	defer nvm.ExitRecovery()
	return persist.RecoveryStats{
		Attempt: attempt,
		Audit:   &obs.RecoveryAudit{Runtime: rt.Name(), Attempt: attempt},
	}, nil
}

// Stats implements persist.Runtime.
func (rt *Runtime) Stats() persist.RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out persist.RuntimeStats
	for _, t := range rt.threads {
		out.Add(&t.stats)
	}
	return out
}

type thread struct {
	rt    *Runtime
	id    int
	depth int
	stats persist.RuntimeStats
}

func (t *thread) ID() int        { return t.id }
func (t *thread) Exec(op func()) { op() }

func (t *thread) Lock(l *locks.Lock) {
	l.Acquire()
	t.depth++
}

func (t *thread) Unlock(l *locks.Lock) {
	if t.depth == 1 {
		t.stats.FASEs++
	}
	t.depth--
	l.Release()
}

func (t *thread) BeginDurable() { t.depth++ }
func (t *thread) EndDurable() {
	if t.depth == 1 {
		t.stats.FASEs++
	}
	t.depth--
}

func (t *thread) Store64(addr, val uint64) {
	t.rt.reg.Dev.Store64(addr, val)
	if t.depth > 0 {
		t.stats.Stores++
	}
}

func (t *thread) Load64(addr uint64) uint64 { return t.rt.reg.Dev.Load64(addr) }

// Boundary is ignored: origin logs nothing.
func (t *thread) Boundary(uint64, ...persist.RegVal) {}

var (
	_ persist.Runtime = (*Runtime)(nil)
	_ persist.Thread  = (*thread)(nil)
)
