// Package nvthreads implements the NVThreads baseline (Hsu et al., EuroSys
// 2017) as characterized in the iDO paper: a REDO-logging, lock-based
// system that operates at the granularity of OS pages. Inside a critical
// section every first store to a page takes a private copy-on-write copy;
// reads observe the private copies. At the outermost lock release the
// dirty pages are streamed to a per-thread NVM redo log, a commit record
// is published, and the pages are applied to their home locations and
// written back. The 4 KB granularity is what makes NVThreads pay the
// heaviest per-FASE persistence cost in Fig. 5.
//
// Limitation (inherent to the design, not this implementation): buffered
// pages publish only at the FASE's outermost release, so critical
// sections that release a lock mid-FASE — hand-over-hand traversals —
// would hide updates from the thread that next acquires the released
// lock. The paper accordingly evaluates NVThreads only on Memcached's
// properly nested coarse locking (Fig. 5), never on the hand-over-hand
// microbenchmarks of Fig. 7; this repository does the same.
package nvthreads

import (
	"fmt"
	"sync"
	"time"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

const (
	// PageSize is the protection granularity NVThreads tracks.
	PageSize  = 4096
	pageWords = PageSize / 8
	maxPages  = 16 // dirty pages per critical section

	// Per-thread redo log layout.
	logState = 0 // 1 = committed
	logCount = 8
	logNext  = 16
	logBase  = 64 // maxPages slots of {pageAddr, 512 words}
	slotSize = 8 + PageSize
	logSize  = logBase + maxPages*slotSize
	// logPages rounds the log up to whole pages. The log MUST occupy
	// pages of its own: commit applies whole dirty pages home, so if the
	// log shared a page with workload data, applying that page would
	// overwrite the log's own commit record with the COW snapshot taken
	// mid-FASE — a crash between two page applies would then find
	// logState=0 and skip the replay, losing the unapplied half of a
	// committed FASE (found by the chaos harness's delete-heavy cache
	// workload, where the table and the log both sat in page 0).
	logPages = (logSize + PageSize - 1) / PageSize
)

// Runtime is the NVThreads baseline runtime.
type Runtime struct {
	reg *region.Region

	mu      sync.Mutex
	threads []*thread
	nextID  int
}

// New creates an NVThreads runtime.
func New() *Runtime { return &Runtime{} }

// Name implements persist.Runtime.
func (rt *Runtime) Name() string { return "nvthreads" }

// Attach implements persist.Runtime.
func (rt *Runtime) Attach(reg *region.Region, _ *locks.Manager) error {
	rt.reg = reg
	return nil
}

// NewThread implements persist.Runtime.
func (rt *Runtime) NewThread() (persist.Thread, error) {
	// Page-align and pad so every log page is exclusively the log's (see
	// logPages above).
	raw, err := rt.reg.Alloc.Alloc(logPages*PageSize + PageSize)
	if err != nil {
		return nil, fmt.Errorf("nvthreads: allocating page log: %w", err)
	}
	log := (raw + PageSize - 1) &^ (PageSize - 1)
	dev := rt.reg.Dev
	// Deferred unlock: the device calls below panic with nvm.CrashSignal
	// under armed injection, and the mutex must not survive the unwind.
	rt.mu.Lock()
	defer rt.mu.Unlock()
	dev.Store64(log+logState, 0)
	dev.Store64(log+logCount, 0)
	dev.Store64(log+logNext, rt.reg.Root(region.RootNVThreadsHead))
	dev.PersistRange(log, logBase)
	dev.Fence()
	rt.reg.SetRoot(region.RootNVThreadsHead, log)
	t := &thread{rt: rt, id: rt.nextID, log: log, pages: make(map[uint64][]uint64)}
	t.rc = dev.Tracer().ThreadRing(fmt.Sprintf("nvthreads/t%d", t.id))
	rt.nextID++
	rt.threads = append(rt.threads, t)
	return t, nil
}

// Stats implements persist.Runtime.
func (rt *Runtime) Stats() persist.RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out persist.RuntimeStats
	for _, t := range rt.threads {
		out.Add(&t.stats)
	}
	return out
}

// Recover replays committed-but-unapplied page logs (REDO replay is
// idempotent); uncommitted private pages died with the volatile state.
func (rt *Runtime) Recover(*persist.ResumeRegistry) (persist.RecoveryStats, error) {
	start := time.Now()
	dev := rt.reg.Dev
	attempt := nvm.EnterRecovery()
	defer nvm.ExitRecovery()
	var stats persist.RecoveryStats
	stats.Attempt = attempt
	stats.Audit = &obs.RecoveryAudit{Runtime: rt.Name(), Attempt: attempt}
	rc := dev.Tracer().ThreadRing("nvthreads/recover")
	scanT0 := rc.Clock()
	buf := make([]uint64, pageWords)
	for log := rt.reg.Root(region.RootNVThreadsHead); log != 0; log = dev.Load64(log + logNext) {
		// The log carries no thread id; number audits by scan position.
		audit := obs.ThreadAudit{ThreadID: stats.Threads, LogAddr: log, Action: obs.AuditIdle}
		stats.Threads++
		if dev.Load64(log+logState) != 1 {
			stats.Audit.Add(audit)
			continue
		}
		n := int(dev.Load64(log + logCount))
		if n > maxPages {
			n = maxPages
		}
		for i := 0; i < n; i++ {
			slot := log + logBase + uint64(i)*slotSize
			page := dev.Load64(slot)
			dev.ReadWords(slot+8, buf)
			dev.WriteWords(page, buf)
			dev.PersistRange(page, PageSize)
			stats.LogEntries++
		}
		dev.Fence()
		dev.StoreNT(log+logState, 0)
		dev.Fence()
		stats.RolledBack++
		audit.Action = obs.AuditReplayed
		audit.WordsRestored = n * pageWords
		stats.Audit.Add(audit)
	}
	rc.Span(obs.KRecovery, obs.PhaseScan, stats.LogEntries, scanT0)
	stats.Elapsed = time.Since(start)
	return stats, nil
}

type thread struct {
	rt  *Runtime
	id  int
	log uint64

	depth     int
	pages     map[uint64][]uint64 // page base -> private copy
	pageOrder []uint64

	rc     *obs.Ring // event ring; nil when tracing is off
	faseT0 int64     // tracer clock at FASE entry

	stats persist.RuntimeStats
}

func (t *thread) ID() int        { return t.id }
func (t *thread) Exec(op func()) { op() }

func (t *thread) Lock(l *locks.Lock) {
	l.Acquire()
	if t.rc != nil && t.depth == 0 {
		t.faseT0 = t.rc.Clock()
	}
	t.rc.Emit(obs.KLockAcq, l.Holder(), 0)
	t.depth++
}

func (t *thread) Unlock(l *locks.Lock) {
	if t.depth == 1 {
		t.endFASE()
	}
	t.rc.Emit(obs.KLockRel, l.Holder(), 0)
	t.depth--
	l.Release()
}

func (t *thread) BeginDurable() {
	if t.rc != nil && t.depth == 0 {
		t.faseT0 = t.rc.Clock()
	}
	t.depth++
}

func (t *thread) EndDurable() {
	if t.depth == 1 {
		t.endFASE()
	}
	t.depth--
}

// endFASE commits the buffered pages and records the FASE's trace events.
func (t *thread) endFASE() {
	logBytes := uint64(len(t.pageOrder)) * PageSize
	t.commit()
	t.stats.FASEs++
	if t.rc != nil {
		t.rc.Span(obs.KFASE, logBytes, 0, t.faseT0)
		t.rc.Observe(obs.HLogBytesPerFASE, logBytes)
	}
}

func (t *thread) pageFor(addr uint64, create bool) ([]uint64, uint64) {
	base := addr &^ (PageSize - 1)
	if p, ok := t.pages[base]; ok {
		return p, base
	}
	if !create {
		return nil, base
	}
	if len(t.pageOrder) == maxPages {
		panic(fmt.Sprintf("nvthreads: critical section dirtied more than %d pages", maxPages))
	}
	p := make([]uint64, pageWords)
	t.rt.reg.Dev.ReadWords(base, p) // copy-on-write fault
	t.pages[base] = p
	t.pageOrder = append(t.pageOrder, base)
	return p, base
}

func (t *thread) Store64(addr, val uint64) {
	if t.depth == 0 {
		t.rt.reg.Dev.Store64(addr, val)
		return
	}
	p, base := t.pageFor(addr, true)
	p[(addr-base)/8] = val
	t.stats.Stores++
}

func (t *thread) Load64(addr uint64) uint64 {
	if t.depth > 0 {
		if p, base := t.pageFor(addr, false); p != nil {
			return p[(addr-base)/8]
		}
	}
	return t.rt.reg.Dev.Load64(addr)
}

// Boundary is ignored: NVThreads logs whole pages.
func (t *thread) Boundary(uint64, ...persist.RegVal) {}

// commit streams the dirty pages to the redo log, publishes the commit
// record, applies the pages home, and truncates.
func (t *thread) commit() {
	if len(t.pageOrder) == 0 {
		return
	}
	dev := t.rt.reg.Dev
	for i, base := range t.pageOrder {
		slot := t.log + logBase + uint64(i)*slotSize
		dev.StoreNT(slot, base)
		dev.WriteWordsNT(slot+8, t.pages[base])
		t.stats.LoggedEntries++
		t.stats.LoggedBytes += PageSize
		t.rc.Emit(obs.KLogAppend, PageSize, base)
	}
	dev.StoreNT(t.log+logCount, uint64(len(t.pageOrder)))
	dev.Fence()
	dev.StoreNT(t.log+logState, 1)
	dev.Fence()
	for _, base := range t.pageOrder {
		dev.WriteWords(base, t.pages[base])
		dev.PersistRange(base, PageSize)
	}
	dev.Fence()
	dev.StoreNT(t.log+logState, 0)
	dev.Fence()
	for _, base := range t.pageOrder {
		delete(t.pages, base)
	}
	t.pageOrder = t.pageOrder[:0]
}

var (
	_ persist.Runtime = (*Runtime)(nil)
	_ persist.Thread  = (*thread)(nil)
)
