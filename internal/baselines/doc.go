// Package baselines groups the failure-atomicity systems the iDO paper
// compares against (§V): Atlas (UNDO, lock-based), Mnemosyne (REDO,
// transactional), JUSTDO (per-store resumption), NVThreads (page-granular
// REDO), NVML (library UNDO), and the uninstrumented Origin baseline. Each
// subpackage implements persist.Runtime, so the data structures and
// key-value stores in this repository run unchanged on every system.
package baselines
