// Package fase infers failure-atomic sections on the mini-IR (§IV-A(a)):
// a FASE is a maximal region in which at least one lock is held (or a
// programmer-delineated durable region is open). The inference computes
// the lock/durable depth before every instruction and derives the
// boundary points the iDO compiler must honor — immediately after each
// lock acquire (and durable begin) and immediately before each lock
// release — matching §III-B.
package fase

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/ir"
)

// Info is the result of FASE inference for one function.
type Info struct {
	F *ir.Func
	// DepthBefore[b][i] is lockDepth+durableDepth before instruction i of
	// block b.
	DepthBefore [][]int
	// MandatoryCuts are the region-boundary points required by the FASE
	// structure: each is a location such that a boundary must be placed
	// immediately before the instruction at that location.
	MandatoryCuts []ir.Loc
}

// Infer computes FASE structure. The function must pass ir.Verify (depth
// consistency is assumed).
func Infer(f *ir.Func) (*Info, error) {
	info := &Info{F: f, DepthBefore: make([][]int, len(f.Blocks))}
	depthIn := make([]int, len(f.Blocks))
	seen := make([]bool, len(f.Blocks))
	seen[0] = true
	work := []int{0}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		b := f.Blocks[bi]
		d := depthIn[bi]
		info.DepthBefore[bi] = make([]int, len(b.Instrs))
		for i := range b.Instrs {
			info.DepthBefore[bi][i] = d
			switch b.Instrs[i].Op {
			case ir.OpLock, ir.OpBeginDur:
				d++
				// Boundary immediately after the acquire.
				info.addCutAfter(f, bi, i)
			case ir.OpUnlock, ir.OpEndDur:
				if d == 0 {
					return nil, fmt.Errorf("%s: %s.%d: release below depth 0", f.Name, b.Name, i)
				}
				// Boundary immediately before the release.
				info.MandatoryCuts = append(info.MandatoryCuts, ir.Loc{Block: bi, Index: i})
				d--
			}
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				depthIn[s] = d
				work = append(work, s)
			} else if depthIn[s] != d {
				return nil, fmt.Errorf("%s: block %s entered at depths %d and %d",
					f.Name, f.Blocks[s].Name, depthIn[s], d)
			}
		}
	}
	return info, nil
}

// addCutAfter requests a boundary after instruction (bi, i): before the
// next instruction in the block, or at the start of every successor when
// the instruction ends its block.
func (info *Info) addCutAfter(f *ir.Func, bi, i int) {
	b := f.Blocks[bi]
	if i+1 < len(b.Instrs) {
		info.MandatoryCuts = append(info.MandatoryCuts, ir.Loc{Block: bi, Index: i + 1})
		return
	}
	for _, s := range b.Succs {
		info.MandatoryCuts = append(info.MandatoryCuts, ir.Loc{Block: s, Index: 0})
	}
}

// InFASE reports whether the instruction at loc executes with at least
// one lock held or a durable region open. Lock/BeginDur instructions
// themselves report false: they belong to the code before the FASE's
// first boundary (the benign robbed-lock window of §III-B).
func (info *Info) InFASE(loc ir.Loc) bool {
	return info.DepthBefore[loc.Block][loc.Index] > 0
}

// HasFASEs reports whether the function contains any FASE.
func (info *Info) HasFASEs() bool {
	for _, blk := range info.DepthBefore {
		for _, d := range blk {
			if d > 0 {
				return true
			}
		}
	}
	// A lock as the very last instruction still opens a FASE, but such a
	// function fails ir.Verify (return inside FASE), so depth alone is
	// a faithful answer here.
	return false
}
