package fase

import (
	"testing"

	"github.com/ido-nvm/ido/internal/ir"
)

func infer(t *testing.T, src string) (*ir.Func, *Info) {
	t.Helper()
	f, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	fi, err := Infer(f)
	if err != nil {
		t.Fatal(err)
	}
	return f, fi
}

func TestNestedLocks(t *testing.T) {
	// Fig. 2(a): properly nested locks.
	_, fi := infer(t, `
func f 2 {
entry:
  lock r0
  lock r1
  store r0 0 1
  unlock r1
  store r0 8 2
  unlock r0
  ret
}
`)
	depths := fi.DepthBefore[0]
	want := []int{0, 1, 2, 2, 1, 1}
	for i, w := range want {
		if depths[i] != w {
			t.Fatalf("depth[%d] = %d, want %d (%v)", i, depths[i], w, depths)
		}
	}
	// Cuts: after each lock (2), before each unlock (2).
	if len(fi.MandatoryCuts) != 4 {
		t.Fatalf("mandatory cuts = %v", fi.MandatoryCuts)
	}
}

func TestCrossLocks(t *testing.T) {
	// Fig. 2(b): hand-over-hand. Depth never hits zero mid-FASE.
	_, fi := infer(t, `
func f 2 {
entry:
  lock r0
  store r0 0 1
  lock r1
  unlock r0
  store r1 0 2
  unlock r1
  ret
}
`)
	for i := 1; i < 6; i++ {
		if fi.DepthBefore[0][i] == 0 {
			t.Fatalf("FASE depth hit 0 mid-FASE at %d", i)
		}
	}
	if !fi.HasFASEs() {
		t.Fatal("HasFASEs = false")
	}
}

func TestDurableRegions(t *testing.T) {
	_, fi := infer(t, `
func f 1 {
entry:
  begin_durable
  store r0 0 1
  end_durable
  ret
}
`)
	if !fi.InFASE(ir.Loc{Block: 0, Index: 1}) {
		t.Fatal("durable store not in FASE")
	}
	if fi.InFASE(ir.Loc{Block: 0, Index: 3}) {
		t.Fatal("post-durable instruction in FASE")
	}
}

func TestLockAtBlockEndCutsSuccessors(t *testing.T) {
	_, fi := infer(t, `
func f 2 {
entry:
  lock r0
a:
  br r1 b c
b:
  unlock r0
  ret
c:
  unlock r0
  ret
}
`)
	// The lock ends its block: the post-acquire cut lands at the start
	// of the successor block.
	found := false
	for _, c := range fi.MandatoryCuts {
		if c.Block == 1 && c.Index == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no post-acquire cut at successor start: %v", fi.MandatoryCuts)
	}
}

func TestNoFASEs(t *testing.T) {
	_, fi := infer(t, `
func f 2 {
entry:
  x = add r0 r1
  ret x
}
`)
	if fi.HasFASEs() || len(fi.MandatoryCuts) != 0 {
		t.Fatal("phantom FASEs")
	}
}
