package ds

import (
	"github.com/ido-nvm/ido/internal/persist"
)

// HashMap is the §V-B fixed-size hash map: each bucket is a hand-over-hand
// ordered list, "obviating the need for per-bucket locks" — operations on
// different buckets never touch the same locks, and operations within a
// bucket pipeline down the list. It reuses the List region IDs and resume
// closures wholesale, since a list FASE's logged registers fully identify
// the bucket being operated on.
//
// Layout: header [0]=nbuckets, [8+i*8]=bucket sentinel address.
type HashMap struct {
	env     *Env
	hdr     uint64
	buckets []*List
}

// NewHashMap allocates a map with n ordered-list buckets.
func NewHashMap(env *Env, n int) (*HashMap, uint64, error) {
	hdr, err := env.Reg.Alloc.Alloc(8 + n*8)
	if err != nil {
		return nil, 0, err
	}
	dev := env.Reg.Dev
	dev.Store64(hdr, uint64(n))
	m := &HashMap{env: env, hdr: hdr}
	for i := 0; i < n; i++ {
		lst, baddr, err := NewList(env)
		if err != nil {
			return nil, 0, err
		}
		m.buckets = append(m.buckets, lst)
		dev.Store64(hdr+8+uint64(i)*8, baddr)
	}
	dev.PersistRange(hdr, uint64(8+n*8))
	dev.Fence()
	return m, hdr, nil
}

// AttachHashMap reopens a map at its header address.
func AttachHashMap(env *Env, hdr uint64) *HashMap {
	dev := env.Reg.Dev
	n := int(dev.Load64(hdr))
	m := &HashMap{env: env, hdr: hdr}
	for i := 0; i < n; i++ {
		m.buckets = append(m.buckets, AttachList(env, dev.Load64(hdr+8+uint64(i)*8)))
	}
	return m
}

func (m *HashMap) bucket(key uint64) *List {
	return m.buckets[key%uint64(len(m.buckets))]
}

// Put inserts or updates key in its bucket.
func (m *HashMap) Put(t persist.Thread, key, val uint64) { m.bucket(key).Put(t, key, val) }

// Get looks key up in its bucket.
func (m *HashMap) Get(t persist.Thread, key uint64) (uint64, bool) {
	return m.bucket(key).Get(t, key)
}

// Buckets returns the bucket count.
func (m *HashMap) Buckets() int { return len(m.buckets) }

// Walk visits every (key, value) without synchronization (tests only).
func (m *HashMap) Walk(f func(k, v uint64)) {
	for _, b := range m.buckets {
		b.Walk(f)
	}
}
