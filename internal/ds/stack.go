package ds

import (
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/persist"
)

// Stack is the locking variation on the Treiber stack (§V-B).
//
// Layout: header [0]=lock holder, [8]=top; node [0]=value, [8]=next.
//
// Register-slot plan for stack FASEs (fixed slots, like physical
// registers under §IV-A(c) live-range extension):
//
//	r0 = header address   r1 = pushed value   r2 = new node
//	r3 = successor (pop)  r4 = popped value
const (
	ridPushEntry = ridStackBase + 1 // after lock: read top, build node
	ridPushLink  = ridStackBase + 2 // antidep cut: publish top, release
	ridPopEntry  = ridStackBase + 4 // after lock: read top and next
	ridPopSwing  = ridStackBase + 5 // antidep cut: swing top, release
)

// No boundary precedes the FASE's final release: the final-unlock
// protocol fences the region's data and clears recovery_pc before the
// mutex is handed over, so resumption can only re-execute while the lock
// is still privately held.

// Stack is a persistent LIFO protected by one lock.
type Stack struct {
	env  *Env
	hdr  uint64
	lock *locks.Lock
}

// NewStack allocates and persists a fresh stack, returning it and the
// header address to store in an application root.
func NewStack(env *Env) (*Stack, uint64, error) {
	l, err := env.LM.Create()
	if err != nil {
		return nil, 0, err
	}
	hdr, err := env.Reg.Alloc.Alloc(16)
	if err != nil {
		return nil, 0, err
	}
	dev := env.Reg.Dev
	dev.Store64(hdr, l.Holder())
	dev.Store64(hdr+8, 0)
	dev.PersistRange(hdr, 16)
	dev.Fence()
	return &Stack{env: env, hdr: hdr, lock: l}, hdr, nil
}

// AttachStack reopens a stack at a header address (the recovery path).
func AttachStack(env *Env, hdr uint64) *Stack {
	return &Stack{env: env, hdr: hdr, lock: env.LM.ByHolder(env.Reg.Dev.Load64(hdr))}
}

// Push adds v on top of the stack as one FASE.
func (s *Stack) Push(t persist.Thread, v uint64) {
	t.Lock(s.lock)
	t.Boundary(ridPushEntry, persist.RV(0, s.hdr), persist.RV(1, v))
	pushEntry(s.env, t, s.hdr, v)
}

// pushEntry is region ridPushEntry: read top, allocate and fill the node.
func pushEntry(env *Env, t persist.Thread, hdr, v uint64) {
	top := t.Load64(hdr + 8)
	node := env.alloc(16)
	t.Store64(node, v)
	t.Store64(node+8, top)
	t.Boundary(ridPushLink, persist.RV(2, node))
	pushLink(env, t, hdr, node)
}

// pushLink is region ridPushLink: publish the node (the cut above it
// severs the antidependence on header word 8) and release.
func pushLink(env *Env, t persist.Thread, hdr, node uint64) {
	t.Store64(hdr+8, node)
	stackRel(env, t, hdr)
}

// stackRel is the single-release region shared by push and pop.
func stackRel(env *Env, t persist.Thread, hdr uint64) {
	t.Unlock(env.LM.ByHolder(env.Reg.Dev.Load64(hdr)))
}

// Pop removes and returns the top value; ok is false when empty.
func (s *Stack) Pop(t persist.Thread) (v uint64, ok bool) {
	t.Lock(s.lock)
	t.Boundary(ridPopEntry, persist.RV(0, s.hdr))
	return popEntry(s.env, t, s.hdr)
}

// popEntry is region ridPopEntry: read top and its successor.
func popEntry(env *Env, t persist.Thread, hdr uint64) (uint64, bool) {
	top := t.Load64(hdr + 8)
	if top == 0 {
		stackRel(env, t, hdr)
		return 0, false
	}
	v := t.Load64(top)
	nxt := t.Load64(top + 8)
	t.Boundary(ridPopSwing, persist.RV(3, nxt), persist.RV(4, v))
	popSwing(env, t, hdr, nxt)
	return v, true
}

// popSwing is region ridPopSwing: swing top to the successor (antidep cut
// for header word 8) and release.
func popSwing(env *Env, t persist.Thread, hdr, nxt uint64) {
	t.Store64(hdr+8, nxt)
	stackRel(env, t, hdr)
}

// Walk visits values top-down without synchronization (test/verification
// use only).
func (s *Stack) Walk(f func(v uint64)) {
	dev := s.env.Reg.Dev
	for cur := dev.Load64(s.hdr + 8); cur != 0; cur = dev.Load64(cur + 8) {
		f(dev.Load64(cur))
	}
}

func registerStack(rr *persist.ResumeRegistry, env *Env) {
	rr.Register(ridPushEntry, func(t persist.Thread, rf []uint64) {
		pushEntry(env, t, rf[0], rf[1])
	})
	rr.Register(ridPushLink, func(t persist.Thread, rf []uint64) {
		pushLink(env, t, rf[0], rf[2])
	})
	rr.Register(ridPopEntry, func(t persist.Thread, rf []uint64) {
		popEntry(env, t, rf[0])
	})
	rr.Register(ridPopSwing, func(t persist.Thread, rf []uint64) {
		popSwing(env, t, rf[0], rf[3])
	})
}
