package ds

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/ido-nvm/ido/internal/baselines/atlas"
	"github.com/ido-nvm/ido/internal/baselines/justdo"
	"github.com/ido-nvm/ido/internal/baselines/mnemosyne"
	"github.com/ido-nvm/ido/internal/baselines/nvthreads"
	"github.com/ido-nvm/ido/internal/baselines/origin"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

func runtimes() map[string]func() persist.Runtime {
	return map[string]func() persist.Runtime{
		"ido":       func() persist.Runtime { return core.New(core.DefaultConfig()) },
		"justdo":    func() persist.Runtime { return justdo.New() },
		"atlas":     func() persist.Runtime { return atlas.New(atlas.Config{}) },
		"mnemosyne": func() persist.Runtime { return mnemosyne.New() },
		"nvthreads": func() persist.Runtime { return nvthreads.New() },
		"origin":    func() persist.Runtime { return origin.New() },
	}
}

func newEnv(t *testing.T, size int) *Env {
	t.Helper()
	reg := region.Create(size, nvm.Config{})
	return &Env{Reg: reg, LM: locks.NewManager(reg)}
}

func newRT(t *testing.T, env *Env, mk func() persist.Runtime) persist.Runtime {
	t.Helper()
	rt := mk()
	if err := rt.Attach(env.Reg, env.LM); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestStackSemanticsAllRuntimes(t *testing.T) {
	for name, mk := range runtimes() {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 1<<22)
			rt := newRT(t, env, mk)
			s, _, err := NewStack(env)
			if err != nil {
				t.Fatal(err)
			}
			th, _ := rt.NewThread()
			for i := 1; i <= 20; i++ {
				i := i
				th.Exec(func() { s.Push(th, uint64(i)) })
			}
			for i := 20; i >= 1; i-- {
				var v uint64
				var ok bool
				th.Exec(func() { v, ok = s.Pop(th) })
				if !ok || v != uint64(i) {
					t.Fatalf("pop = %d,%v want %d", v, ok, i)
				}
			}
			var ok bool
			th.Exec(func() { _, ok = s.Pop(th) })
			if ok {
				t.Fatal("pop from empty succeeded")
			}
		})
	}
}

func TestQueueSemanticsAllRuntimes(t *testing.T) {
	for name, mk := range runtimes() {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 1<<22)
			rt := newRT(t, env, mk)
			q, _, err := NewQueue(env)
			if err != nil {
				t.Fatal(err)
			}
			th, _ := rt.NewThread()
			for i := 1; i <= 20; i++ {
				i := i
				th.Exec(func() { q.Enqueue(th, uint64(i)) })
			}
			for i := 1; i <= 20; i++ {
				var v uint64
				var ok bool
				th.Exec(func() { v, ok = q.Dequeue(th) })
				if !ok || v != uint64(i) {
					t.Fatalf("deq = %d,%v want %d", v, ok, i)
				}
			}
		})
	}
}

func TestListAndMapSemanticsAllRuntimes(t *testing.T) {
	for name, mk := range runtimes() {
		if name == "nvthreads" {
			// Page-granularity REDO cannot support hand-over-hand
			// locking (see the nvthreads package doc); the paper only
			// runs NVThreads on Memcached's nested coarse locking.
			continue
		}
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 1<<23)
			rt := newRT(t, env, mk)
			m, _, err := NewHashMap(env, 4)
			if err != nil {
				t.Fatal(err)
			}
			th, _ := rt.NewThread()
			for k := uint64(1); k <= 64; k++ {
				k := k
				th.Exec(func() { m.Put(th, k, k*10) })
			}
			th.Exec(func() { m.Put(th, 7, 777) })
			for k := uint64(1); k <= 64; k++ {
				var v uint64
				var ok bool
				k := k
				th.Exec(func() { v, ok = m.Get(th, k) })
				want := k * 10
				if k == 7 {
					want = 777
				}
				if !ok || v != want {
					t.Fatalf("get(%d) = %d,%v want %d", k, v, ok, want)
				}
			}
			var ok bool
			th.Exec(func() { _, ok = m.Get(th, 999) })
			if ok {
				t.Fatal("get(999) hit")
			}
			// Buckets stay sorted with unique keys.
			for _, b := range m.buckets {
				prev := uint64(0)
				first := true
				b.Walk(func(k, v uint64) {
					if !first && k <= prev {
						t.Fatalf("bucket unsorted: %d after %d", k, prev)
					}
					prev, first = k, false
				})
			}
		})
	}
}

func TestConcurrentMapAllRuntimes(t *testing.T) {
	for name, mk := range runtimes() {
		if name == "nvthreads" {
			continue // see TestListAndMapSemanticsAllRuntimes
		}
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 1<<24)
			rt := newRT(t, env, mk)
			m, _, err := NewHashMap(env, 8)
			if err != nil {
				t.Fatal(err)
			}
			const workers, each = 6, 60
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				th, err := rt.NewThread()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(g int, th persist.Thread) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						k := uint64(g*1000 + i + 1)
						th.Exec(func() { m.Put(th, k, k+5) })
					}
				}(g, th)
			}
			wg.Wait()
			th, _ := rt.NewThread()
			for g := 0; g < workers; g++ {
				for i := 0; i < each; i++ {
					k := uint64(g*1000 + i + 1)
					var v uint64
					var ok bool
					th.Exec(func() { v, ok = m.Get(th, k) })
					if !ok || v != k+5 {
						t.Fatalf("get(%d) = %d,%v", k, v, ok)
					}
				}
			}
		})
	}
}

// catchCrash runs fn, absorbing an injected crash.
func catchCrash(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nvm.CrashSignal); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	fn()
	return
}

// reopenIDO simulates process restart: settle the device, reattach, and
// run iDO recovery with the ds resume registry.
func reopenIDO(t *testing.T, env *Env, cm nvm.CrashMode, rng *rand.Rand) (*Env, persist.RecoveryStats) {
	t.Helper()
	nvm.ArmCrash(-1)
	env.Reg.Dev.Crash(cm, rng)
	reg2, err := region.Attach(env.Reg.Dev)
	if err != nil {
		t.Fatal(err)
	}
	env2 := &Env{Reg: reg2, LM: locks.NewManager(reg2)}
	rt2 := core.New(core.DefaultConfig())
	if err := rt2.Attach(reg2, env2.LM); err != nil {
		t.Fatal(err)
	}
	rr := persist.NewResumeRegistry()
	RegisterAll(rr, env2)
	st, err := rt2.Recover(rr)
	if err != nil {
		t.Fatal(err)
	}
	return env2, st
}

// TestIDOStackCrashRecoveryFuzz injects crashes at random device-event
// budgets during pushes and validates LIFO consistency after recovery.
func TestIDOStackCrashRecoveryFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		env := newEnv(t, 1<<22)
		rt := newRT(t, env, func() persist.Runtime { return core.New(core.DefaultConfig()) })
		s, hdr, err := NewStack(env)
		if err != nil {
			t.Fatal(err)
		}
		env.Reg.SetRoot(1, hdr)
		th, _ := rt.NewThread()
		pushed := 0
		nvm.ArmCrash(int64(rng.Intn(400)))
		crashed := catchCrash(func() {
			for i := 1; i <= 8; i++ {
				s.Push(th, uint64(i))
				pushed = i
			}
		})
		env2, st := reopenIDO(t, env, nvm.CrashMode(rng.Intn(3)), rng)
		s2 := AttachStack(env2, env2.Reg.Root(1))
		var vals []uint64
		s2.Walk(func(v uint64) { vals = append(vals, v) })
		// Stack must be k, k-1, ..., 1 with k >= pushed.
		k := len(vals)
		for i, v := range vals {
			if v != uint64(k-i) {
				t.Fatalf("trial %d: stack corrupt at %d: %v", trial, i, vals)
			}
		}
		if k < pushed {
			t.Fatalf("trial %d: completed pushes lost: %d < %d", trial, k, pushed)
		}
		if !crashed && k != 8 {
			t.Fatalf("trial %d: clean run depth %d", trial, k)
		}
		if st.Resumed > 0 && k != pushed+1 && k != pushed {
			t.Fatalf("trial %d: resumed push produced depth %d (pushed %d)", trial, k, pushed)
		}
	}
}

// TestIDOQueueCrashRecoveryFuzz validates FIFO prefix consistency.
func TestIDOQueueCrashRecoveryFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 80; trial++ {
		env := newEnv(t, 1<<22)
		rt := newRT(t, env, func() persist.Runtime { return core.New(core.DefaultConfig()) })
		q, hdr, err := NewQueue(env)
		if err != nil {
			t.Fatal(err)
		}
		env.Reg.SetRoot(1, hdr)
		th, _ := rt.NewThread()
		enq := 0
		nvm.ArmCrash(int64(rng.Intn(400)))
		catchCrash(func() {
			for i := 1; i <= 8; i++ {
				q.Enqueue(th, uint64(i))
				enq = i
			}
		})
		env2, _ := reopenIDO(t, env, nvm.CrashMode(rng.Intn(3)), rng)
		q2 := AttachQueue(env2, env2.Reg.Root(1))
		want := uint64(1)
		q2.Walk(func(v uint64) {
			if v != want {
				t.Fatalf("trial %d: FIFO broken: got %d want %d", trial, v, want)
			}
			want++
		})
		if int(want-1) < enq {
			t.Fatalf("trial %d: completed enqueues lost: %d < %d", trial, want-1, enq)
		}
	}
}

// TestIDOListCrashRecoveryFuzz validates sortedness and durability of
// completed hand-over-hand inserts.
func TestIDOListCrashRecoveryFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 80; trial++ {
		env := newEnv(t, 1<<22)
		rt := newRT(t, env, func() persist.Runtime { return core.New(core.DefaultConfig()) })
		l, hdr, err := NewList(env)
		if err != nil {
			t.Fatal(err)
		}
		env.Reg.SetRoot(1, hdr)
		th, _ := rt.NewThread()
		keys := []uint64{40, 10, 50, 20, 30, 15}
		done := map[uint64]bool{}
		nvm.ArmCrash(int64(rng.Intn(900)))
		catchCrash(func() {
			for _, k := range keys {
				l.Put(th, k, k+1)
				done[k] = true
			}
		})
		env2, _ := reopenIDO(t, env, nvm.CrashMode(rng.Intn(3)), rng)
		l2 := AttachList(env2, env2.Reg.Root(1))
		got := map[uint64]uint64{}
		prev := uint64(0)
		first := true
		l2.Walk(func(k, v uint64) {
			if !first && k <= prev {
				t.Fatalf("trial %d: unsorted: %d after %d", trial, k, prev)
			}
			prev, first = k, false
			got[k] = v
		})
		for k := range done {
			if got[k] != k+1 {
				t.Fatalf("trial %d: completed put(%d) lost: %v", trial, k, got)
			}
		}
		if len(got) > len(done)+1 {
			t.Fatalf("trial %d: %d keys present, %d completed", trial, len(got), len(done))
		}
	}
}

// TestIDOConcurrentMapCrashRecovery crashes several native threads at
// once and validates recovery of the hash map.
func TestIDOConcurrentMapCrashRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		env := newEnv(t, 1<<24)
		rt := newRT(t, env, func() persist.Runtime { return core.New(core.DefaultConfig()) })
		m, hdr, err := NewHashMap(env, 4)
		if err != nil {
			t.Fatal(err)
		}
		env.Reg.SetRoot(1, hdr)
		const workers = 4
		completed := make([][]uint64, workers)
		threads := make([]persist.Thread, workers)
		for g := 0; g < workers; g++ {
			th, err := rt.NewThread()
			if err != nil {
				t.Fatal(err)
			}
			threads[g] = th
		}
		var wg sync.WaitGroup
		nvm.ArmCrash(int64(500 + rng.Intn(4000)))
		for g := 0; g < workers; g++ {
			th := threads[g]
			wg.Add(1)
			go func(g int, th persist.Thread) {
				defer wg.Done()
				catchCrash(func() {
					for i := 0; i < 12; i++ {
						k := uint64(g*100 + i + 1)
						m.Put(th, k, k*2)
						completed[g] = append(completed[g], k)
					}
				})
			}(g, th)
		}
		wg.Wait()
		env2, _ := reopenIDO(t, env, nvm.CrashMode(rng.Intn(3)), rng)
		m2 := AttachHashMap(env2, env2.Reg.Root(1))
		// Every bucket sorted; every completed put present.
		for _, b := range m2.buckets {
			prev := uint64(0)
			first := true
			b.Walk(func(k, v uint64) {
				if !first && k <= prev {
					t.Fatalf("trial %d: bucket unsorted", trial)
				}
				prev, first = k, false
			})
		}
		dev := env2.Reg.Dev
		_ = dev
		rt2 := core.New(core.DefaultConfig())
		if err := rt2.Attach(env2.Reg, env2.LM); err != nil {
			t.Fatal(err)
		}
		th2, _ := rt2.NewThread()
		for g := 0; g < workers; g++ {
			for _, k := range completed[g] {
				v, ok := m2.Get(th2, k)
				if !ok || v != k*2 {
					t.Fatalf("trial %d: completed put(%d) lost (%d,%v)", trial, k, v, ok)
				}
			}
		}
	}
}

// TestIDORegionStatsOnStructures sanity-checks Fig. 8-style stats from
// the native runtime.
func TestIDORegionStatsOnStructures(t *testing.T) {
	env := newEnv(t, 1<<23)
	rt := core.New(core.DefaultConfig())
	if err := rt.Attach(env.Reg, env.LM); err != nil {
		t.Fatal(err)
	}
	s, _, _ := NewStack(env)
	th, _ := rt.NewThread()
	for i := 1; i <= 100; i++ {
		s.Push(th, uint64(i))
	}
	st := rt.Stats()
	if st.FASEs != 100 || st.Regions != 200 {
		t.Fatalf("FASEs=%d Regions=%d (want 100/200)", st.FASEs, st.Regions)
	}
	// Push regions: entry has 2 stores (node init); link has 1 (publish,
	// with the release folded in).
	if st.StoresPerRegion[1] != 100 || st.StoresPerRegion[2] != 100 {
		t.Fatalf("stores histogram: %v", st.StoresPerRegion[:4])
	}
}

// TestTransferTopAtomicity drives the composed cross-structure FASE with
// crash injection: the moved value must never be lost or duplicated.
func TestTransferTopAtomicity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		env := newEnv(t, 1<<22)
		rt := newRT(t, env, func() persist.Runtime { return core.New(core.DefaultConfig()) })
		s1, h1, err := NewStack(env)
		if err != nil {
			t.Fatal(err)
		}
		s2, h2, err := NewStack(env)
		if err != nil {
			t.Fatal(err)
		}
		env.Reg.SetRoot(1, h1)
		env.Reg.SetRoot(2, h2)
		th, _ := rt.NewThread()
		const N = 4
		for i := 1; i <= N; i++ {
			s1.Push(th, uint64(i))
		}
		nvm.ArmCrash(int64(rng.Intn(250)))
		moves := 0
		catchCrash(func() {
			for i := 0; i < 3; i++ {
				if _, ok := TransferTop(env, th, s1, s2); !ok {
					break
				}
				moves++
			}
		})
		env2, st := reopenIDO(t, env, nvm.CrashMode(rng.Intn(3)), rng)
		r1 := AttachStack(env2, env2.Reg.Root(1))
		r2 := AttachStack(env2, env2.Reg.Root(2))
		// Conservation: the union of both stacks is exactly {1..N}, each
		// value exactly once — a torn transfer would lose or duplicate.
		seen := map[uint64]int{}
		total := 0
		r1.Walk(func(v uint64) { seen[v]++; total++ })
		n2 := 0
		r2.Walk(func(v uint64) { seen[v]++; total++; n2++ })
		if total != N {
			t.Fatalf("trial %d: %d values total, want %d (moves=%d resumed=%d)",
				trial, total, N, moves, st.Resumed)
		}
		for v := uint64(1); v <= N; v++ {
			if seen[v] != 1 {
				t.Fatalf("trial %d: value %d appears %d times", trial, v, seen[v])
			}
		}
		if n2 < moves {
			t.Fatalf("trial %d: completed moves lost: %d < %d", trial, n2, moves)
		}
	}
}

// TestTransferTopBidirectionalNoDeadlock runs transfers in both
// directions concurrently: holder-ordered acquisition must not deadlock.
func TestTransferTopBidirectionalNoDeadlock(t *testing.T) {
	env := newEnv(t, 1<<22)
	rt := newRT(t, env, func() persist.Runtime { return core.New(core.DefaultConfig()) })
	s1, _, _ := NewStack(env)
	s2, _, _ := NewStack(env)
	tseed, _ := rt.NewThread()
	for i := 1; i <= 64; i++ {
		s1.Push(tseed, uint64(i))
		s2.Push(tseed, uint64(100+i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		th, _ := rt.NewThread()
		wg.Add(1)
		go func(g int, th persist.Thread) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g%2 == 0 {
					TransferTop(env, th, s1, s2)
				} else {
					TransferTop(env, th, s2, s1)
				}
			}
		}(g, th)
	}
	wg.Wait()
	// Conservation.
	total := 0
	s1.Walk(func(uint64) { total++ })
	s2.Walk(func(uint64) { total++ })
	if total != 128 {
		t.Fatalf("values total = %d, want 128", total)
	}
}

// TestIDOStackCrashFuzzWithEvictions repeats the stack fuzz on a device
// that spontaneously evicts dirty cache lines (EvictionRate), so data can
// become durable EARLIER than the protocol flushed it — the other half of
// the volatile-cache adversary. Crash consistency must be unaffected.
func TestIDOStackCrashFuzzWithEvictions(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		reg := region.Create(1<<22, nvm.Config{Size: 1 << 22, EvictionRate: 3})
		env := &Env{Reg: reg, LM: locks.NewManager(reg)}
		rt := newRT(t, env, func() persist.Runtime { return core.New(core.DefaultConfig()) })
		s, hdr, err := NewStack(env)
		if err != nil {
			t.Fatal(err)
		}
		env.Reg.SetRoot(1, hdr)
		th, _ := rt.NewThread()
		pushed := 0
		nvm.ArmCrash(int64(rng.Intn(400)))
		catchCrash(func() {
			for i := 1; i <= 8; i++ {
				s.Push(th, uint64(i))
				pushed = i
			}
		})
		env2, _ := reopenIDO(t, env, nvm.CrashMode(rng.Intn(3)), rng)
		s2 := AttachStack(env2, env2.Reg.Root(1))
		var vals []uint64
		s2.Walk(func(v uint64) { vals = append(vals, v) })
		k := len(vals)
		for i, v := range vals {
			if v != uint64(k-i) {
				t.Fatalf("trial %d: stack corrupt: %v", trial, vals)
			}
		}
		if k < pushed {
			t.Fatalf("trial %d: completed pushes lost: %d < %d", trial, k, pushed)
		}
	}
}
