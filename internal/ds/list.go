package ds

import (
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/persist"
)

// List is the sorted list traversed with hand-over-hand locking (§V-B):
// concurrent operations proceed down the list but cannot pass each other.
// Because the FASE state is carried entirely in the logged register
// slots, one set of resume entries serves every list — including the
// hash-map buckets.
//
// Layout: node [0]=key, [8]=value, [16]=next, [24]=lock holder. The list
// header is a sentinel node (key unused).
//
// Register-slot plan for list FASEs:
//
//	r0 = key   r1 = value   r2 = prev node   r3 = prev lock holder
//	r4 = cur node   r5 = cur lock holder
//
// A boundary logs only the slots (re)defined since the previous boundary;
// everything else is already durable in its fixed slot from an earlier
// boundary of the same FASE (the FASE entry logs the full live-in set).
const (
	ridInsScan  = ridListBase + 1 // loop header: read prev.next
	ridInsCheck = ridListBase + 2 // after locking cur: compare keys
	ridInsAdv   = ridListBase + 3 // before releasing prev: advance
	ridInsUpd   = ridListBase + 4 // key present: overwrite value
	ridInsLink  = ridListBase + 5 // splice a fresh node before cur
	ridInsApp   = ridListBase + 6 // append at the end (only prev locked)
	ridInsRel2  = ridListBase + 7 // release cur's then prev's lock
	ridGetScan  = ridListBase + 9
	ridGetCheck = ridListBase + 10
	ridGetAdv   = ridListBase + 11
	ridGetRel2  = ridListBase + 12 // release cur's then prev's lock
)

// A boundary precedes the FIRST release of the two-lock FASE ending —
// that is a mid-FASE release, and stores before it must never re-execute
// once another thread can take the lock — but not the FASE's FINAL
// release: the final-unlock protocol clears recovery_pc before handing
// the mutex over, so a resumed region still holds every lock it needs.

// List is a persistent sorted list with per-node locks.
type List struct {
	env *Env
	hdr uint64
}

// NewList allocates and persists a sentinel header node.
func NewList(env *Env) (*List, uint64, error) {
	l, err := env.LM.Create()
	if err != nil {
		return nil, 0, err
	}
	hdr, err := env.Reg.Alloc.Alloc(32)
	if err != nil {
		return nil, 0, err
	}
	dev := env.Reg.Dev
	dev.Store64(hdr, 0)
	dev.Store64(hdr+8, 0)
	dev.Store64(hdr+16, 0)
	dev.Store64(hdr+24, l.Holder())
	dev.PersistRange(hdr, 32)
	dev.Fence()
	return &List{env: env, hdr: hdr}, hdr, nil
}

// AttachList reopens a list at its sentinel address.
func AttachList(env *Env, hdr uint64) *List { return &List{env: env, hdr: hdr} }

func (e *Env) lockAt(holder uint64) *locks.Lock { return e.LM.ByHolder(holder) }

// Put inserts or updates key as one hand-over-hand FASE.
func (l *List) Put(t persist.Thread, key, val uint64) {
	plkH := l.env.Reg.Dev.Load64(l.hdr + 24)
	t.Lock(l.env.lockAt(plkH))
	t.Boundary(ridInsScan,
		persist.RV(0, key), persist.RV(1, val), persist.RV(2, l.hdr), persist.RV(3, plkH))
	insScan(l.env, t, key, val, l.hdr, plkH)
}

// insScan is the traversal loop. There is no boundary on the back edge:
// every cycle already carries the mandatory post-acquire (ridInsCheck)
// and pre-release (ridInsAdv) cuts, so an extra loop-header region would
// only add fences. The check and append boundaries re-log the advanced
// prev/plkH so their resumes always see current values.
func insScan(env *Env, t persist.Thread, key, val, prev, plkH uint64) {
	for {
		cur := t.Load64(prev + 16)
		if cur == 0 {
			t.Boundary(ridInsApp, persist.RV(2, prev), persist.RV(3, plkH))
			insAppend(env, t, key, val, prev, plkH)
			return
		}
		clkH := t.Load64(cur + 24)
		t.Lock(env.lockAt(clkH))
		t.Boundary(ridInsCheck, persist.RV(2, prev), persist.RV(3, plkH),
			persist.RV(4, cur), persist.RV(5, clkH))
		k := t.Load64(cur)
		if k >= key {
			if k == key {
				t.Boundary(ridInsUpd)
				insUpdate(env, t, val, cur, clkH, plkH)
				return
			}
			t.Boundary(ridInsLink)
			insLink(env, t, key, val, prev, plkH, cur, clkH)
			return
		}
		// Advance: release prev; current becomes previous.
		t.Boundary(ridInsAdv)
		t.Unlock(env.lockAt(plkH))
		prev, plkH = cur, clkH
	}
}

// insCheckResume re-enters the loop at the post-lock comparison.
func insCheckResume(env *Env, t persist.Thread, key, val, prev, plkH, cur, clkH uint64) {
	k := t.Load64(cur)
	if k >= key {
		if k == key {
			t.Boundary(ridInsUpd)
			insUpdate(env, t, val, cur, clkH, plkH)
			return
		}
		t.Boundary(ridInsLink)
		insLink(env, t, key, val, prev, plkH, cur, clkH)
		return
	}
	t.Boundary(ridInsAdv)
	t.Unlock(env.lockAt(plkH))
	insScan(env, t, key, val, cur, clkH)
}

// insAdvResume re-executes the release-and-advance region: release prev
// (a no-op if the crashed thread already had) and continue the scan from
// cur, whose lock is held.
func insAdvResume(env *Env, t persist.Thread, key, val, plkH, cur, clkH uint64) {
	t.Unlock(env.lockAt(plkH))
	insScan(env, t, key, val, cur, clkH)
}

// insUpdate is region ridInsUpd: overwrite the value, release both locks.
func insUpdate(env *Env, t persist.Thread, val, cur, clkH, plkH uint64) {
	t.Store64(cur+8, val)
	t.Boundary(ridInsRel2)
	insRel2(env, t, clkH, plkH)
}

// insLink is region ridInsLink: splice a fresh node between prev and cur.
func insLink(env *Env, t persist.Thread, key, val, prev, plkH, cur, clkH uint64) {
	node := newNode(env, t, key, val, cur)
	t.Store64(prev+16, node)
	t.Boundary(ridInsRel2)
	insRel2(env, t, clkH, plkH)
}

// insAppend is region ridInsApp: append at the tail (only prev locked)
// and release.
func insAppend(env *Env, t persist.Thread, key, val, prev, plkH uint64) {
	node := newNode(env, t, key, val, 0)
	t.Store64(prev+16, node)
	insRel1(env, t, plkH)
}

func newNode(env *Env, t persist.Thread, key, val, next uint64) uint64 {
	nl, err := env.LM.Create()
	if err != nil {
		panic(err)
	}
	node := env.alloc(32)
	t.Store64(node, key)
	t.Store64(node+8, val)
	t.Store64(node+16, next)
	t.Store64(node+24, nl.Holder())
	return node
}

// insRel2 is region ridInsRel2: release cur then prev — one store-free
// region covering both unlocks.
func insRel2(env *Env, t persist.Thread, clkH, plkH uint64) {
	t.Unlock(env.lockAt(clkH))
	insRel1(env, t, plkH)
}

// insRel1 performs the FASE's final release.
func insRel1(env *Env, t persist.Thread, plkH uint64) {
	t.Unlock(env.lockAt(plkH))
}

// Get looks key up with hand-over-hand locking.
func (l *List) Get(t persist.Thread, key uint64) (val uint64, ok bool) {
	plkH := l.env.Reg.Dev.Load64(l.hdr + 24)
	t.Lock(l.env.lockAt(plkH))
	t.Boundary(ridGetScan,
		persist.RV(0, key), persist.RV(2, l.hdr), persist.RV(3, plkH))
	return getScan(l.env, t, key, l.hdr, plkH)
}

// getScan is the read-only traversal loop; as in insScan, the cycle is
// cut by the mandatory lock boundaries and needs no loop-header region.
func getScan(env *Env, t persist.Thread, key, prev, plkH uint64) (uint64, bool) {
	for {
		cur := t.Load64(prev + 16)
		if cur == 0 {
			getRel1(env, t, plkH)
			return 0, false
		}
		clkH := t.Load64(cur + 24)
		t.Lock(env.lockAt(clkH))
		t.Boundary(ridGetCheck, persist.RV(2, prev), persist.RV(3, plkH),
			persist.RV(4, cur), persist.RV(5, clkH))
		k := t.Load64(cur)
		if k >= key {
			var v uint64
			hit := k == key
			if hit {
				v = t.Load64(cur + 8)
			}
			t.Boundary(ridGetRel2)
			getRel2(env, t, clkH, plkH)
			return v, hit
		}
		t.Boundary(ridGetAdv)
		t.Unlock(env.lockAt(plkH))
		prev, plkH = cur, clkH
	}
}

func getCheckResume(env *Env, t persist.Thread, key, plkH, cur, clkH uint64) {
	k := t.Load64(cur)
	if k >= key {
		t.Boundary(ridGetRel2)
		getRel2(env, t, clkH, plkH)
		return
	}
	t.Boundary(ridGetAdv)
	t.Unlock(env.lockAt(plkH))
	getScan(env, t, key, cur, clkH)
}

func getRel2(env *Env, t persist.Thread, clkH, plkH uint64) {
	t.Unlock(env.lockAt(clkH))
	getRel1(env, t, plkH)
}

func getRel1(env *Env, t persist.Thread, plkH uint64) {
	t.Unlock(env.lockAt(plkH))
}

// Walk visits (key, value) in order without synchronization (tests only).
func (l *List) Walk(f func(k, v uint64)) {
	dev := l.env.Reg.Dev
	for cur := dev.Load64(l.hdr + 16); cur != 0; cur = dev.Load64(cur + 16) {
		f(dev.Load64(cur), dev.Load64(cur+8))
	}
}

func registerList(rr *persist.ResumeRegistry, env *Env) {
	rr.Register(ridInsScan, func(t persist.Thread, rf []uint64) {
		insScan(env, t, rf[0], rf[1], rf[2], rf[3])
	})
	rr.Register(ridInsCheck, func(t persist.Thread, rf []uint64) {
		insCheckResume(env, t, rf[0], rf[1], rf[2], rf[3], rf[4], rf[5])
	})
	rr.Register(ridInsAdv, func(t persist.Thread, rf []uint64) {
		insAdvResume(env, t, rf[0], rf[1], rf[3], rf[4], rf[5])
	})
	rr.Register(ridInsUpd, func(t persist.Thread, rf []uint64) {
		insUpdate(env, t, rf[1], rf[4], rf[5], rf[3])
	})
	rr.Register(ridInsLink, func(t persist.Thread, rf []uint64) {
		insLink(env, t, rf[0], rf[1], rf[2], rf[3], rf[4], rf[5])
	})
	rr.Register(ridInsApp, func(t persist.Thread, rf []uint64) {
		insAppend(env, t, rf[0], rf[1], rf[2], rf[3])
	})
	rr.Register(ridInsRel2, func(t persist.Thread, rf []uint64) {
		insRel2(env, t, rf[5], rf[3])
	})
	rr.Register(ridGetScan, func(t persist.Thread, rf []uint64) {
		getScan(env, t, rf[0], rf[2], rf[3])
	})
	rr.Register(ridGetCheck, func(t persist.Thread, rf []uint64) {
		getCheckResume(env, t, rf[0], rf[3], rf[4], rf[5])
	})
	rr.Register(ridGetAdv, func(t persist.Thread, rf []uint64) {
		t.Unlock(env.lockAt(rf[3]))
		getScan(env, t, rf[0], rf[4], rf[5])
	})
	rr.Register(ridGetRel2, func(t persist.Thread, rf []uint64) {
		getRel2(env, t, rf[5], rf[3])
	})
}
