// Package ds implements the §V-B microbenchmark data structures natively
// against the persist.Runtime API: a locking Treiber-style stack, the
// two-lock Michael–Scott queue, a hand-over-hand ordered list, and a
// fixed-size hash map whose buckets are ordered lists. The same code runs
// on every runtime (iDO, JUSTDO, Atlas, Mnemosyne, NVThreads, NVML,
// Origin); only iDO interprets the Boundary annotations.
//
// Each operation is written exactly as the iDO compiler would emit it: a
// Boundary immediately after each lock acquire and before each release,
// plus a cut at every memory antidependence, with each boundary logging
// the live-in values ("registers") of the region it opens. The
// corresponding resume closures — the native stand-in for jumping to
// recovery_pc — are registered per TYPE, not per instance: a region's
// logged registers carry every address the resumed code needs, so one
// registry entry serves all instances of a structure.
package ds

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Region ID spaces (48-bit budget; one block per structure type).
const (
	ridStackBase = 0x21 << 16
	ridQueueBase = 0x22 << 16
	ridListBase  = 0x23 << 16
)

// Env bundles what resume closures need: the region and its lock manager.
type Env struct {
	Reg *region.Region
	LM  *locks.Manager
}

// RegisterAll installs the resume entries for every structure type in
// this package. Call once per process before Recover.
func RegisterAll(rr *persist.ResumeRegistry, env *Env) {
	registerStack(rr, env)
	registerQueue(rr, env)
	registerList(rr, env)
	registerTransfer(rr, env)
}

// alloc allocates persistent memory or panics; data-structure operations
// treat heap exhaustion as fatal, like the paper's nv_malloc users.
func (e *Env) alloc(n int) uint64 {
	p, err := e.Reg.Alloc.Alloc(n)
	if err != nil {
		panic(fmt.Sprintf("ds: %v", err))
	}
	return p
}
