package ds

import (
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/persist"
)

// Queue is the two-lock Michael–Scott queue (§V-B): enqueuers serialize
// on the tail lock, dequeuers on the head lock, and the dummy node keeps
// the two sides disjoint.
//
// Layout: header [0]=head lock holder, [8]=tail lock holder, [16]=head
// (dummy), [24]=tail; node [0]=value, [8]=next.
//
// Register-slot plan: r0 = header, r1 = value, r2 = new node,
// r3 = dequeued node, r4 = dequeued value.
const (
	ridEnqEntry = ridQueueBase + 1 // after tail lock: build node, link
	ridEnqSwing = ridQueueBase + 2 // antidep cut: swing tail, release
	ridDeqEntry = ridQueueBase + 4 // after head lock: read dummy/first
	ridDeqSwing = ridQueueBase + 5 // antidep cut: advance head, release
)

// As in the stack, no boundary precedes the FASE's final release (the
// final-unlock protocol makes that cut redundant).

// Queue is a persistent FIFO with separate head and tail locks.
type Queue struct {
	env            *Env
	hdr            uint64
	headLk, tailLk *locks.Lock
}

// NewQueue allocates and persists a fresh queue (with its dummy node).
func NewQueue(env *Env) (*Queue, uint64, error) {
	hl, err := env.LM.Create()
	if err != nil {
		return nil, 0, err
	}
	tl, err := env.LM.Create()
	if err != nil {
		return nil, 0, err
	}
	hdr, err := env.Reg.Alloc.Alloc(32)
	if err != nil {
		return nil, 0, err
	}
	dummy, err := env.Reg.Alloc.Alloc(16)
	if err != nil {
		return nil, 0, err
	}
	dev := env.Reg.Dev
	dev.Store64(dummy, 0)
	dev.Store64(dummy+8, 0)
	dev.Store64(hdr, hl.Holder())
	dev.Store64(hdr+8, tl.Holder())
	dev.Store64(hdr+16, dummy)
	dev.Store64(hdr+24, dummy)
	dev.PersistRange(dummy, 16)
	dev.PersistRange(hdr, 32)
	dev.Fence()
	return &Queue{env: env, hdr: hdr, headLk: hl, tailLk: tl}, hdr, nil
}

// AttachQueue reopens a queue at a header address.
func AttachQueue(env *Env, hdr uint64) *Queue {
	dev := env.Reg.Dev
	return &Queue{
		env: env, hdr: hdr,
		headLk: env.LM.ByHolder(dev.Load64(hdr)),
		tailLk: env.LM.ByHolder(dev.Load64(hdr + 8)),
	}
}

// Enqueue appends v as one FASE under the tail lock.
func (q *Queue) Enqueue(t persist.Thread, v uint64) {
	t.Lock(q.tailLk)
	t.Boundary(ridEnqEntry, persist.RV(0, q.hdr), persist.RV(1, v))
	enqEntry(q.env, t, q.hdr, v)
}

// enqEntry is region ridEnqEntry: allocate the node and link it behind
// the current tail.
func enqEntry(env *Env, t persist.Thread, hdr, v uint64) {
	node := env.alloc(16)
	t.Store64(node, v)
	t.Store64(node+8, 0)
	tail := t.Load64(hdr + 24)
	t.Store64(tail+8, node)
	t.Boundary(ridEnqSwing, persist.RV(2, node))
	enqSwing(env, t, hdr, node)
}

// enqSwing is region ridEnqSwing: publish the new tail (cut severs the
// antidependence on header word 24) and release.
func enqSwing(env *Env, t persist.Thread, hdr, node uint64) {
	t.Store64(hdr+24, node)
	enqRel(env, t, hdr)
}

func enqRel(env *Env, t persist.Thread, hdr uint64) {
	t.Unlock(env.LM.ByHolder(env.Reg.Dev.Load64(hdr + 8)))
}

// Dequeue removes the oldest value; ok is false when empty.
func (q *Queue) Dequeue(t persist.Thread) (v uint64, ok bool) {
	t.Lock(q.headLk)
	t.Boundary(ridDeqEntry, persist.RV(0, q.hdr))
	return deqEntry(q.env, t, q.hdr)
}

// deqEntry is region ridDeqEntry: read the dummy and its successor.
func deqEntry(env *Env, t persist.Thread, hdr uint64) (uint64, bool) {
	dummy := t.Load64(hdr + 16)
	first := t.Load64(dummy + 8)
	if first == 0 {
		deqRel(env, t, hdr)
		return 0, false
	}
	v := t.Load64(first)
	t.Boundary(ridDeqSwing, persist.RV(3, first), persist.RV(4, v))
	deqSwing(env, t, hdr, first)
	return v, true
}

// deqSwing is region ridDeqSwing: the dequeued node becomes the new
// dummy (cut severs the antidependence on header word 16), then release.
func deqSwing(env *Env, t persist.Thread, hdr, first uint64) {
	t.Store64(hdr+16, first)
	deqRel(env, t, hdr)
}

func deqRel(env *Env, t persist.Thread, hdr uint64) {
	t.Unlock(env.LM.ByHolder(env.Reg.Dev.Load64(hdr)))
}

// Walk visits values head-to-tail without synchronization (tests only).
func (q *Queue) Walk(f func(v uint64)) {
	dev := q.env.Reg.Dev
	dummy := dev.Load64(q.hdr + 16)
	for cur := dev.Load64(dummy + 8); cur != 0; cur = dev.Load64(cur + 8) {
		f(dev.Load64(cur))
	}
}

func registerQueue(rr *persist.ResumeRegistry, env *Env) {
	rr.Register(ridEnqEntry, func(t persist.Thread, rf []uint64) {
		enqEntry(env, t, rf[0], rf[1])
	})
	rr.Register(ridEnqSwing, func(t persist.Thread, rf []uint64) {
		enqSwing(env, t, rf[0], rf[2])
	})
	rr.Register(ridDeqEntry, func(t persist.Thread, rf []uint64) {
		deqEntry(env, t, rf[0])
	})
	rr.Register(ridDeqSwing, func(t persist.Thread, rf []uint64) {
		deqSwing(env, t, rf[0], rf[3])
	})
}
