package ds

import (
	"github.com/ido-nvm/ido/internal/persist"
)

// TransferTop atomically moves the top value from one stack to another —
// a composed FASE spanning two persistent structures, the optimization
// the paper's related-work section anticipates ("similar optimizations
// could work in iDO logging", §VI-A): both locks join one FASE, so a
// crash anywhere inside either completes the whole transfer on recovery
// or leaves both stacks untouched. No per-structure write tracking is
// needed beyond the ordinary region boundaries.
//
// Register-slot plan: r0 = source header, r1 = destination header,
// r2 = moved value, r3 = source successor, r4 = new destination node.
const (
	ridXferEntry = ridStackBase + 8  // both locks held: read source top
	ridXferMove  = ridStackBase + 9  // antidep cut: swing source, build node
	ridXferLink  = ridStackBase + 10 // antidep cut: publish destination
	ridXferRel   = ridStackBase + 11 // release both locks (store-free)
)

// TransferTop moves src's top to dst as one FASE; ok reports whether a
// value was present. Locks are acquired in holder-address order so
// concurrent transfers in both directions cannot deadlock.
func TransferTop(env *Env, t persist.Thread, src, dst *Stack) (moved uint64, ok bool) {
	a, b := src.lock, dst.lock
	if a.Holder() > b.Holder() {
		a, b = b, a
	}
	t.Lock(a)
	t.Lock(b)
	t.Boundary(ridXferEntry, persist.RV(0, src.hdr), persist.RV(1, dst.hdr))
	return xferEntry(env, t, src.hdr, dst.hdr)
}

// xferEntry is region ridXferEntry: read the source top and its value.
func xferEntry(env *Env, t persist.Thread, srcH, dstH uint64) (uint64, bool) {
	top := t.Load64(srcH + 8)
	if top == 0 {
		t.Boundary(ridXferRel)
		xferRel(env, t, srcH, dstH)
		return 0, false
	}
	v := t.Load64(top)
	nxt := t.Load64(top + 8)
	t.Boundary(ridXferMove, persist.RV(2, v), persist.RV(3, nxt))
	xferMove(env, t, srcH, dstH, v, nxt)
	return v, true
}

// xferMove is region ridXferMove: swing the source top (the cut severed
// its antidependence) and build the destination node, reading the
// destination top.
func xferMove(env *Env, t persist.Thread, srcH, dstH, v, nxt uint64) {
	t.Store64(srcH+8, nxt)
	node := env.alloc(16)
	t.Store64(node, v)
	t.Store64(node+8, t.Load64(dstH+8))
	t.Boundary(ridXferLink, persist.RV(4, node))
	xferLink(env, t, srcH, dstH, node)
}

// xferLink is region ridXferLink: publish the destination top (antidep
// cut), then hand off to the store-free release region — the cut before
// the first unlock is mandatory, because once either lock is handed over,
// nothing from before it may re-execute.
func xferLink(env *Env, t persist.Thread, srcH, dstH, node uint64) {
	t.Store64(dstH+8, node)
	t.Boundary(ridXferRel)
	xferRel(env, t, srcH, dstH)
}

// xferRel is region ridXferRel: release both locks in reverse acquisition
// order. The region is store-free and load-only on immutable holder
// words, so re-executing it after a crash between the two unlocks is
// harmless (the already-released lock no-ops).
func xferRel(env *Env, t persist.Thread, srcH, dstH uint64) {
	a := env.Reg.Dev.Load64(srcH)
	b := env.Reg.Dev.Load64(dstH)
	if a > b {
		a, b = b, a
	}
	t.Unlock(env.lockAt(b))
	t.Unlock(env.lockAt(a))
}

func registerTransfer(rr *persist.ResumeRegistry, env *Env) {
	rr.Register(ridXferEntry, func(t persist.Thread, rf []uint64) {
		xferEntry(env, t, rf[0], rf[1])
	})
	rr.Register(ridXferMove, func(t persist.Thread, rf []uint64) {
		xferMove(env, t, rf[0], rf[1], rf[2], rf[3])
	})
	rr.Register(ridXferLink, func(t persist.Thread, rf []uint64) {
		xferLink(env, t, rf[0], rf[1], rf[4])
	})
	rr.Register(ridXferRel, func(t persist.Thread, rf []uint64) {
		xferRel(env, t, rf[0], rf[1])
	})
}
