package nvalloc

import (
	"fmt"
	"testing"

	"github.com/ido-nvm/ido/internal/nvm"
)

// allocAPI is what the benchmarks need from either allocator; the
// sharded Allocator and the single-lock MutexAllocator both satisfy it,
// so every benchmark runs as an A/B pair over the same workload.
type allocAPI interface {
	Alloc(int) (uint64, error)
	Free(uint64)
}

const benchArena = 1 << 26

func benchPair(b *testing.B, run func(b *testing.B, mk func(d *nvm.Device) allocAPI)) {
	b.Run("sharded", func(b *testing.B) {
		run(b, func(d *nvm.Device) allocAPI { return New(d, 0, benchArena) })
	})
	b.Run("mutex", func(b *testing.B) {
		run(b, func(d *nvm.Device) allocAPI { return NewMutex(d, 0, benchArena) })
	})
}

// BenchmarkAllocSingle is the uncontended steady state: one goroutine
// alternating Alloc/Free of one size. For the sharded allocator this is
// the magazine fast path — free parks the block in a ring slot, the
// next alloc claims it back with one atomic swap — and it must not
// regress against the seed's single-mutex path.
func BenchmarkAllocSingle(b *testing.B) {
	benchPair(b, func(b *testing.B, mk func(d *nvm.Device) allocAPI) {
		d := nvm.New(nvm.Config{Size: benchArena})
		a := mk(d)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := a.Alloc(64)
			if err != nil {
				b.Fatal(err)
			}
			a.Free(p)
		}
	})
}

// BenchmarkAllocSizes cycles through every small size class plus a
// bounded live set, exercising carves and shard traffic, still single
// threaded.
func BenchmarkAllocSizes(b *testing.B) {
	benchPair(b, func(b *testing.B, mk func(d *nvm.Device) allocAPI) {
		d := nvm.New(nvm.Config{Size: benchArena})
		a := mk(d)
		sizes := [...]int{16, 24, 48, 64, 96, 128, 192, 256}
		var ring [64]uint64 // user addresses start at headerSize, so 0 = empty
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i & 63
			if ring[j] != 0 {
				a.Free(ring[j])
			}
			p, err := a.Alloc(sizes[i&7])
			if err != nil {
				b.Fatal(err)
			}
			ring[j] = p
		}
	})
}

// BenchmarkAllocMixed16 is the acceptance workload: 16 goroutines of
// mixed Alloc/Free over sizes 16..256 with bounded per-goroutine live
// rings. The sharded allocator must beat the single mutex by >=2x here.
func BenchmarkAllocMixed16(b *testing.B) {
	benchPair(b, func(b *testing.B, mk func(d *nvm.Device) allocAPI) {
		d := nvm.New(nvm.Config{Size: benchArena})
		a := mk(d)
		b.SetParallelism(16)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			sizes := [...]int{16, 32, 48, 64, 96, 128, 192, 256}
			ring := make([]uint64, 0, 32)
			i := 0
			for pb.Next() {
				if len(ring) == cap(ring) {
					for _, p := range ring {
						a.Free(p)
					}
					ring = ring[:0]
				}
				p, err := a.Alloc(sizes[i&7])
				if err != nil {
					b.Error(err)
					return
				}
				ring = append(ring, p)
				i++
			}
			for _, p := range ring {
				a.Free(p)
			}
		})
	})
}

// BenchmarkAttach measures the recovery-path header scan on a heap
// populated with live and free blocks.
func BenchmarkAttach(b *testing.B) {
	for _, blocks := range []int{1 << 10, 1 << 13} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			d := nvm.New(nvm.Config{Size: benchArena})
			a := New(d, 0, benchArena)
			live := make([]uint64, 0, blocks)
			for i := 0; i < blocks; i++ {
				p, err := a.Alloc(16 + (i%8)*24)
				if err != nil {
					b.Fatal(err)
				}
				live = append(live, p)
			}
			for i := 0; i < len(live); i += 2 {
				a.Free(live[i])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Attach(d, 0, benchArena); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
