package nvalloc

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/ido-nvm/ido/internal/nvm"
)

// sweepState tracks the blocks the workload has committed: an address is
// added once Alloc has returned it and removed before Free is called, so
// at any crash point the set holds exactly the blocks whose allocated
// headers were fenced durable and that no Free has begun to release.
// (The op in flight at the crash is deliberately absent: a published but
// never-returned block is a crash-time leak, and a block whose free
// header just landed may legitimately be reused after recovery.)
type sweepState struct {
	live map[uint64]int // user addr -> requested bytes
}

// sweepWork drives every allocator path that touches the device: carves
// (magazine refills), magazine hits, shard traffic, the large first-fit
// path, and frees of each.
func sweepWork(a *Allocator, st *sweepState) {
	var order []uint64
	for i := 0; i < 12; i++ {
		n := 16 + i*24 // spans several size classes
		p, err := a.Alloc(n)
		if err != nil {
			panic(err)
		}
		st.live[p] = n
		order = append(order, p)
	}
	for i := 0; i < len(order); i += 2 {
		delete(st.live, order[i])
		a.Free(order[i])
	}
	for i := 0; i < 6; i++ { // magazine round-trips
		p, err := a.Alloc(40)
		if err != nil {
			panic(err)
		}
		st.live[p] = 40
		delete(st.live, p)
		a.Free(p)
	}
	p, err := a.Alloc(5000) // above maxSmall: large path
	if err != nil {
		panic(err)
	}
	st.live[p] = 5000
	delete(st.live, p)
	a.Free(p)
	for i := 1; i < len(order); i += 2 {
		delete(st.live, order[i])
		a.Free(order[i])
	}
}

// TestAllocCrashSweepRecovers kills the device at every event inside the
// workload — each header write, flush, fence, and zeroing store in
// Alloc, Free, and the magazine-refill carve — then settles the
// persistence domain and proves recovery: Attach succeeds, the header
// chain is consistent, every committed-live block survived, and nothing
// the recovered allocator hands out overlaps one. A MutexAllocator
// attach of the same heap cross-checks that the sharded allocator never
// bent the shared persistent format.
func TestAllocCrashSweepRecovers(t *testing.T) {
	defer nvm.ArmCrash(-1)
	const arena = 1 << 16
	crashes := 0
	for budget := int64(1); ; budget++ {
		d := nvm.New(nvm.Config{Size: arena})
		a := New(d, 0, arena)
		st := &sweepState{live: map[uint64]int{}}
		nvm.ArmCrash(budget)
		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.CrashSignal); !ok {
						panic(r)
					}
					c = true
				}
			}()
			sweepWork(a, st)
			return false
		}()
		nvm.ArmCrash(-1)
		if !crashed {
			if budget == 1 {
				t.Fatal("budget 1 did not crash: injection is not reaching the allocator")
			}
			break // budget outlasted the whole workload: every point swept
		}
		crashes++
		d.Crash(nvm.CrashDiscard, nil)

		a2, err := Attach(d, 0, arena)
		if err != nil {
			t.Fatalf("budget %d: Attach after crash: %v", budget, err)
		}
		if err := a2.CheckInvariants(); err != nil {
			t.Fatalf("budget %d: invariants after crash: %v", budget, err)
		}
		for p, n := range st.live {
			h := d.Load64(p - headerSize)
			if h&allocBit == 0 {
				t.Fatalf("budget %d: committed block %#x lost its allocated header", budget, p)
			}
			if got := int(h>>1) - headerSize; got < n {
				t.Fatalf("budget %d: committed block %#x shrank: %d < %d", budget, p, got, n)
			}
		}
		// The recovered allocator must never double-own a committed block.
		for i := 0; i < 64; i++ {
			p, err := a2.Alloc(32)
			if err != nil {
				break
			}
			end := p + uint64(a2.BlockSize(p))
			for q, n := range st.live {
				if p < q+uint64(n) && q < end {
					t.Fatalf("budget %d: recovered Alloc returned [%#x,%#x) overlapping live block %#x",
						budget, p, end, q)
				}
			}
		}
		if m, err := AttachMutex(d, 0, arena); err != nil {
			t.Fatalf("budget %d: AttachMutex cross-check: %v", budget, err)
		} else if err := m.CheckInvariants(); err != nil {
			t.Fatalf("budget %d: MutexAllocator sees a different heap: %v", budget, err)
		}
	}
	if crashes == 0 {
		t.Fatal("sweep never crashed")
	}
	t.Logf("swept %d crash points", crashes)
}

// TestCarveRetiresSpanningHeader pins the two-phase carve discipline:
// once a carved piece is visible in a magazine or shard, no durable
// free header may span it. It drives the race window by hand — carve
// an extent but never publish block 0 (the carver "stalls"), let a
// second allocation claim a carved piece and publish it, then crash.
// If the carve had exposed pieces while the extent's spanning free
// header was still authoritative, the scan would re-adopt the whole
// extent and hand the committed block out again.
func TestCarveRetiresSpanningHeader(t *testing.T) {
	const arena = 1 << 16
	d := nvm.New(nvm.Config{Size: arena})
	a := New(d, 0, arena)
	// The carver: takes the whole-arena extent, parks the interior
	// blocks, returns block 0 — whose allocated header is deliberately
	// never published.
	if _, ok := a.carve(0); !ok {
		t.Fatal("carve failed on a fresh heap")
	}
	// The racing thread: claims a carved interior block and commits it
	// (allocated header fenced durable), exactly what Alloc does.
	vb, ok := a.magPop(0)
	if !ok {
		t.Fatal("carve parked nothing in the magazine")
	}
	a.writeHeader(vb.addr, vb.size, true)
	d.Fence()
	d.Crash(nvm.CrashDiscard, nil)

	a2, err := Attach(d, 0, arena)
	if err != nil {
		t.Fatalf("Attach after mid-carve crash: %v", err)
	}
	if err := a2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after mid-carve crash: %v", err)
	}
	if h := d.Load64(vb.addr); h&allocBit == 0 {
		t.Fatalf("committed block %#x lost its allocated header", vb.addr)
	}
	for i := 0; i < arena/minBlock; i++ {
		p, err := a2.Alloc(16)
		if err != nil {
			break
		}
		end := p - headerSize + uint64(a2.BlockSize(p)) + headerSize
		if p-headerSize < vb.addr+vb.size && vb.addr < end {
			t.Fatalf("recovered Alloc returned [%#x,%#x) overlapping committed block [%#x,%#x)",
				p-headerSize, end, vb.addr, vb.addr+vb.size)
		}
	}
}

// TestLargeSplitRetiresSpanningHeader is the same pin for the large
// path's tail split: the remainder pushed back by allocLarge must not
// be covered by the head's old spanning free header once another
// thread can allocate (and commit) out of it.
func TestLargeSplitRetiresSpanningHeader(t *testing.T) {
	const arena = 1 << 16
	d := nvm.New(nvm.Config{Size: arena})
	a := New(d, 0, arena)
	// The splitter: takes the whole-arena extent, files the remainder,
	// stalls before publishing the head's allocated header.
	if _, ok := a.allocLarge(8192); !ok {
		t.Fatal("allocLarge failed on a fresh heap")
	}
	// The racing thread: a full Alloc out of the remainder, committed.
	p, err := a.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc from remainder: %v", err)
	}
	blk := p - headerSize
	blkEnd := blk + uint64(a.BlockSize(p)) + headerSize
	d.Crash(nvm.CrashDiscard, nil)

	a2, err := Attach(d, 0, arena)
	if err != nil {
		t.Fatalf("Attach after mid-split crash: %v", err)
	}
	if err := a2.CheckInvariants(); err != nil {
		t.Fatalf("invariants after mid-split crash: %v", err)
	}
	if h := d.Load64(blk); h&allocBit == 0 {
		t.Fatalf("committed block %#x lost its allocated header", blk)
	}
	for i := 0; i < arena/minBlock; i++ {
		q, err := a2.Alloc(16)
		if err != nil {
			break
		}
		qEnd := q - headerSize + uint64(a2.BlockSize(q)) + headerSize
		if q-headerSize < blkEnd && blk < qEnd {
			t.Fatalf("recovered Alloc returned [%#x,%#x) overlapping committed block [%#x,%#x)",
				q-headerSize, qEnd, blk, blkEnd)
		}
	}
}

// TestAllocHammer16 runs 16 goroutines of mixed Alloc/Free against one
// heap — the contention profile the sharded design exists for — then
// checks the header chain and counters balance exactly. Run with -race
// this doubles as the allocator's data-race certification.
func TestAllocHammer16(t *testing.T) {
	const (
		arena   = 1 << 22
		workers = 16
		ops     = 3000
	)
	d := nvm.New(nvm.Config{Size: arena})
	a := New(d, 0, arena)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) + 1))
			ring := make([]uint64, 0, 32)
			for i := 0; i < ops; i++ {
				if len(ring) == cap(ring) || (len(ring) > 0 && r.Intn(3) == 0) {
					j := r.Intn(len(ring))
					a.Free(ring[j])
					ring[j] = ring[len(ring)-1]
					ring = ring[:len(ring)-1]
				} else {
					p, err := a.Alloc(16 + r.Intn(240))
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					ring = append(ring, p)
				}
			}
			for _, p := range ring {
				a.Free(p)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.Allocs != s.Frees || s.AllocatedBytes != 0 {
		t.Fatalf("unbalanced after hammer: %+v", s)
	}
}

// TestAllocNoTransientOOM reproduces the failure mode the idobench fig5
// capture hit: between takeLarge and the push-back at the end of a
// carve, the heap's only free extent is held privately by one thread,
// and with many goroutines on few cores every other allocator caller
// used to scan an apparently empty heap and report out-of-memory with
// almost nothing allocated. Alloc must never fail while total live
// bytes are far below capacity, no matter how the carver is preempted.
func TestAllocNoTransientOOM(t *testing.T) {
	const (
		arena   = 1 << 22
		workers = 16
		perW    = 2048 // 64 B blocks each: 16*2048*64 = half the arena
	)
	// Pure allocation keeps every worker leaning on the carve path at
	// once (frees would restock the magazines and hide the window), and
	// the persistence cost model's spin delays stretch the carve's
	// header writes, so a preempted carver holds the extent across many
	// scheduler slices — the same shape as the figure sweeps.
	d := nvm.New(nvm.Config{Size: arena, FlushNS: 50, FenceNS: 400})
	a := New(d, 0, arena)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			live := make([]uint64, 0, perW)
			for i := 0; i < perW; i++ {
				p, err := a.Alloc(56)
				if err != nil {
					t.Errorf("worker %d alloc %d: %v", w, i, err)
					break
				}
				live = append(live, p)
			}
			for _, p := range live {
				a.Free(p)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAttachCrashSweepReattaches crashes the recovery path itself: the
// Attach header scan is killed at a stride of event offsets mid-adoption,
// then run again on the same image. The scan only reads the device, so a
// crashed scan must be invisible — the re-Attach must succeed, see the
// identical heap, and agree byte-for-byte on allocated bytes with a
// MutexAllocator attach of the same image (the differential oracle for
// the shared persistent format).
func TestAttachCrashSweepReattaches(t *testing.T) {
	defer nvm.ArmCrash(-1)
	const arena = 1 << 16
	d := nvm.New(nvm.Config{Size: arena})
	a := New(d, 0, arena)
	st := &sweepState{live: map[uint64]int{}}

	// Probe the workload's event count, then rebuild and crash it
	// mid-flight so the image Attach scans carries in-flight state.
	nvm.ArmCrash(1 << 40)
	sweepWork(a, st)
	workEvents := int64(1)<<40 - nvm.CrashBudgetRemaining()
	nvm.ArmCrash(-1)

	d = nvm.New(nvm.Config{Size: arena})
	a = New(d, 0, arena)
	st = &sweepState{live: map[uint64]int{}}
	nvm.ArmCrash(workEvents * 3 / 5)
	crashed := func() (c bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(nvm.CrashSignal); !ok {
					panic(r)
				}
				c = true
			}
		}()
		sweepWork(a, st)
		return false
	}()
	nvm.ArmCrash(-1)
	if !crashed {
		t.Fatal("mid-workload budget did not fire")
	}
	d.Crash(nvm.CrashDiscard, nil)

	// Probe the scan's own event count on the settled image.
	nvm.ArmCrash(1 << 40)
	ref, err := Attach(d, 0, arena)
	if err != nil {
		t.Fatalf("reference Attach: %v", err)
	}
	scanEvents := int64(1)<<40 - nvm.CrashBudgetRemaining()
	nvm.ArmCrash(-1)
	if scanEvents < 2 {
		t.Fatalf("scan performed only %d device events", scanEvents)
	}
	refAllocated := ref.Stats().AllocatedBytes

	stride := scanEvents / 16
	if stride < 1 {
		stride = 1
	}
	points := 0
	for off := int64(1); off < scanEvents; off += stride {
		nvm.ArmCrash(off)
		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.CrashSignal); !ok {
						panic(r)
					}
					c = true
				}
			}()
			_, aerr := Attach(d, 0, arena)
			if aerr != nil {
				t.Errorf("offset %d: Attach errored instead of crashing: %v", off, aerr)
			}
			return false
		}()
		nvm.ArmCrash(-1)
		if t.Failed() {
			return
		}
		if !crashed {
			t.Fatalf("offset %d of %d did not crash the scan", off, scanEvents)
		}
		d.Crash(nvm.CrashDiscard, nil)

		a2, err := Attach(d, 0, arena)
		if err != nil {
			t.Fatalf("offset %d: re-Attach after crashed scan: %v", off, err)
		}
		if err := a2.CheckInvariants(); err != nil {
			t.Fatalf("offset %d: invariants after crashed scan: %v", off, err)
		}
		if got := a2.Stats().AllocatedBytes; got != refAllocated {
			t.Fatalf("offset %d: re-Attach sees %d allocated bytes, reference saw %d", off, got, refAllocated)
		}
		for p, n := range st.live {
			h := d.Load64(p - headerSize)
			if h&allocBit == 0 {
				t.Fatalf("offset %d: committed block %#x lost its allocated header", off, p)
			}
			if got := int(h>>1) - headerSize; got < n {
				t.Fatalf("offset %d: committed block %#x shrank: %d < %d", off, p, got, n)
			}
		}
		m, err := AttachMutex(d, 0, arena)
		if err != nil {
			t.Fatalf("offset %d: AttachMutex cross-check: %v", off, err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("offset %d: MutexAllocator sees a different heap: %v", off, err)
		}
		if got := m.Stats().AllocatedBytes; got != refAllocated {
			t.Fatalf("offset %d: MutexAllocator sees %d allocated bytes, sharded scan saw %d", off, got, refAllocated)
		}
		points++
	}
	if points == 0 {
		t.Fatal("sweep crashed the scan at no offsets")
	}
	t.Logf("crashed the Attach scan at %d offsets (of %d scan events)", points, scanEvents)
}
