package nvalloc

import (
	"fmt"
	"sync"

	"github.com/ido-nvm/ido/internal/nvm"
)

// MutexAllocator is the original single-lock allocator: one sync.Mutex
// over one set of size-bucketed first-fit free lists. It shares the
// Allocator's persistent block-header format exactly — the two can attach
// to each other's heaps — and is kept as the benchmark baseline and
// differential-testing oracle for the lock-light rewrite, the same way
// internal/vm keeps the legacy tree-walker.
type MutexAllocator struct {
	dev        *nvm.Device
	start, end uint64

	mu   sync.Mutex
	free map[int][]uint64 // size class (log2 bucket) -> block addrs

	allocated uint64
	nAlloc    uint64
	nFree     uint64
}

// NewMutex formats [start, end) of dev as a fresh heap: one big free
// block. start and end must be 8-aligned with end-start >= minBlock.
func NewMutex(dev *nvm.Device, start, end uint64) *MutexAllocator {
	if start%8 != 0 || end%8 != 0 || end-start < minBlock {
		panic(fmt.Sprintf("nvalloc: bad arena [%#x,%#x)", start, end))
	}
	a := &MutexAllocator{dev: dev, start: start, end: end, free: map[int][]uint64{}}
	a.writeHeader(start, end-start, false)
	dev.Fence()
	a.pushFree(start, end-start)
	return a
}

// AttachMutex reconstructs a MutexAllocator over an existing heap after a
// crash by scanning block headers.
func AttachMutex(dev *nvm.Device, start, end uint64) (*MutexAllocator, error) {
	if start%8 != 0 || end%8 != 0 || end-start < minBlock {
		return nil, fmt.Errorf("nvalloc: bad arena [%#x,%#x)", start, end)
	}
	a := &MutexAllocator{dev: dev, start: start, end: end, free: map[int][]uint64{}}
	for p := start; p < end; {
		h := dev.Load64(p)
		size := h >> 1
		if size < minBlock || p+size > end || size%8 != 0 {
			return nil, fmt.Errorf("nvalloc: corrupt header at %#x: %#x", p, h)
		}
		if h&allocBit == 0 {
			a.pushFree(p, size)
		} else {
			a.allocated += size
		}
		p += size
	}
	return a, nil
}

func (a *MutexAllocator) pushFree(addr, size uint64) {
	c := sizeClassFloor(size)
	a.free[c] = append(a.free[c], addr)
}

// sizeClassFloor buckets a free block by the largest request it can serve.
func sizeClassFloor(size uint64) int {
	c := 0
	for s := uint64(minBlock); s*2 <= size; s <<= 1 {
		c++
	}
	return c
}

func (a *MutexAllocator) writeHeader(addr, size uint64, allocated bool) {
	h := size << 1
	if allocated {
		h |= allocBit
	}
	a.dev.Store64(addr, h)
	a.dev.CLWB(addr)
}

// Alloc returns the byte address of a zeroed block with at least n usable
// bytes, or an error when the heap is exhausted.
func (a *MutexAllocator) Alloc(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("nvalloc: invalid size %d", n)
	}
	need := uint64(headerSize) + uint64((n+7)&^7)
	if need < minBlock {
		need = minBlock
	}
	addr, size, err := a.allocBlock(need)
	if err != nil {
		return 0, err
	}
	user := addr + headerSize
	a.dev.Memset64(user, 0, int(size-headerSize)/8)
	return user, nil
}

// allocBlock carves an allocated block of at least need bytes under the
// heap lock. The unlock must be deferred: the device accesses inside the
// critical section panic with nvm.CrashSignal when an armed injection
// budget fires, and the mutex cannot stay held across that unwind.
func (a *MutexAllocator) allocBlock(need uint64) (addr, size uint64, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var ok bool
	addr, size, ok = a.takeLocked(need)
	if !ok {
		return 0, 0, fmt.Errorf("nvalloc: out of memory (want %d bytes, %d allocated of %d)",
			need, a.allocated, a.end-a.start)
	}
	// Split when the remainder can hold a block.
	if size-need >= minBlock {
		rest := addr + need
		a.writeHeader(rest, size-need, false)
		a.pushFree(rest, size-need)
		size = need
	}
	a.writeHeader(addr, size, true)
	a.dev.Fence()
	a.allocated += size
	a.nAlloc++
	return addr, size, nil
}

func (a *MutexAllocator) takeLocked(need uint64) (addr, size uint64, ok bool) {
	// A block of size s lives in class sizeClassFloor(s); any block with
	// s >= need therefore lives in class >= sizeClassFloor(need), so
	// starting at the floor class visits every candidate, smallest
	// classes (and exact fits) first.
	for c := sizeClassFloor(need); c < 64; c++ {
		list := a.free[c]
		for i := len(list) - 1; i >= 0; i-- {
			p := list[i]
			s := a.dev.Load64(p) >> 1
			if s >= need {
				a.free[c] = append(list[:i], list[i+1:]...)
				return p, s, true
			}
		}
	}
	return 0, 0, false
}

// Free returns the block whose user address is addr to the heap.
func (a *MutexAllocator) Free(addr uint64) {
	blk := addr - headerSize
	if blk < a.start || blk >= a.end {
		panic(fmt.Sprintf("nvalloc: Free(%#x) outside arena", addr))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	h := a.dev.Load64(blk)
	if h&allocBit == 0 {
		panic(fmt.Sprintf("nvalloc: double free at %#x", addr))
	}
	size := h >> 1
	a.writeHeader(blk, size, false)
	a.dev.Fence()
	a.allocated -= size
	a.nFree++
	a.pushFree(blk, size)
}

// BlockSize reports the usable byte count of the block at user address addr.
func (a *MutexAllocator) BlockSize(addr uint64) int {
	h := a.dev.Load64(addr - headerSize)
	return int(h>>1) - headerSize
}

// Stats returns a snapshot of allocation counters.
func (a *MutexAllocator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		AllocatedBytes: a.allocated,
		ArenaBytes:     a.end - a.start,
		Allocs:         a.nAlloc,
		Frees:          a.nFree,
	}
}

// CheckInvariants walks the heap verifying header chaining; it returns an
// error describing the first inconsistency found.
func (a *MutexAllocator) CheckInvariants() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total uint64
	for p := a.start; p < a.end; {
		h := a.dev.Load64(p)
		size := h >> 1
		if size < minBlock || size%8 != 0 || p+size > a.end {
			return fmt.Errorf("bad header at %#x: %#x", p, h)
		}
		if h&allocBit != 0 {
			total += size
		}
		p += size
	}
	if total != a.allocated {
		return fmt.Errorf("allocated bytes drifted: walked %d, counted %d", total, a.allocated)
	}
	return nil
}
