// Package nvalloc implements an nv_malloc/nv_free style allocator over a
// range of a simulated NVM device, in the spirit of the Atlas region
// manager that iDO reuses (§IV-C). Block headers live in NVM and are
// persisted eagerly, so a post-crash scan can always rebuild the volatile
// free lists; the free lists themselves are transient.
//
// The volatile side is segregated and lock-light, mirroring the device's
// striped hot path: power-of-two size classes (16 B .. 4 KiB), each
// fronted by a magazine — a lock-free ring of atomic words caching
// pre-carved blocks — so a steady-state Alloc/Free claims or parks a
// block with one atomic swap and touches no lock at all. Behind the
// magazines sit lock-striped per-class free-list shards, and requests
// above the largest class fall back to striped first-fit buckets.
//
// Determinism contract: a single-threaded sequence of Alloc/Free calls
// against identical heaps produces identical addresses and identical
// device traffic. Every placement decision is a function of block
// addresses and the call sequence (magazine rings and shard scans go in
// fixed index order, shard homes hash the block address) — never of
// goroutine identity or stack layout. The engine-equivalence suites
// (decoded VM vs tree-walker, native vs VM) rely on this to compare
// runs word-for-word.
//
// None of this changes the persistent layout: the heap is still a run
// of size<<1|alloc headers, written and flushed before any block
// changes ownership, and Attach rebuilds every volatile structure —
// magazines included — from a header scan.
package nvalloc

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
)

const (
	headerSize = 8 // one word: size<<1 | allocated
	minBlock   = headerSize + 8
	allocBit   = 1

	// Size classes: classSize(c) = minBlock << c, c in [0, nClasses).
	// The largest class (4 KiB) bounds the magazine path; bigger blocks
	// take the striped first-fit path.
	nClasses = 9
	maxSmall = minBlock << (nClasses - 1)

	// Volatile layout: per-class magazine depth, lock stripes per class,
	// large-path stripes, counter lanes, and blocks carved per refill.
	magDepth  = 16
	nShards   = 8
	nLarge    = 8
	nStripes  = 16
	magRefill = 16

	// A failed full scan re-runs while other threads hold free extents
	// privately (see Alloc): the first spinRetries rescans just yield,
	// after which the waiter sleeps with an escalating (capped) backoff
	// so a holder starved of CPU on an oversubscribed box still gets to
	// finish its carve. oomRetries bounds the total so a pathological
	// every-thread-failing churn becomes an error instead of a livelock;
	// a real carve window clears in a few yields.
	spinRetries = 32
	oomRetries  = 512
)

func classSize(c int) uint64 { return minBlock << c }

// classFor returns the smallest class whose blocks satisfy a request of
// need bytes (header included). need must be <= maxSmall.
func classFor(need uint64) int {
	c := bits.Len64(need-1) - 4
	if c < 0 {
		c = 0
	}
	return c
}

// classOfBlock maps an existing block size back to the class list that
// can store it. Carving folds an 8-byte tail sliver into the last block,
// so class lists hold blocks of exactly classSize(c) or classSize(c)+8;
// anything else (legacy splits, odd attach-time remainders) goes to the
// large buckets instead.
func classOfBlock(size uint64) (int, bool) {
	c := bits.Len64(size) - 5
	if c < 0 || c >= nClasses {
		return 0, false
	}
	if s := classSize(c); size == s || size == s+8 {
		return c, true
	}
	return 0, false
}

// block is a free extent: device address of its header plus total size.
// Sizes ride along in the volatile lists so the hot path never re-reads
// a header it already knows.
type block struct {
	addr, size uint64
}

// magazine is one size class's lock-free cache of pre-carved blocks: a
// fixed ring of atomic words, each either 0 (empty) or a packed free
// block. Alloc claims a slot with a single Swap, Free parks with a
// CompareAndSwap; both scan the ring in fixed index order, so a
// single-threaded run is deterministic while concurrent threads simply
// skip slots another thread just won. A word packs its block as
// addr | presentBit | extraBit: addresses are 8-aligned so the low
// three bits are spare; extraBit marks a classSize+8 block (the folded
// tail sliver), and presentBit distinguishes a block at address 0 from
// an empty slot.
type magazine struct {
	w [magDepth]atomic.Uint64
}

const (
	hotPresent = 2
	hotExtra   = 1
)

func packHot(c int, b block) uint64 {
	w := b.addr | hotPresent
	if b.size != classSize(c) {
		w |= hotExtra
	}
	return w
}

func unpackHot(c int, w uint64) block {
	b := block{addr: w &^ 7, size: classSize(c)}
	if w&hotExtra != 0 {
		b.size += 8
	}
	return b
}

// classShard is one stripe of a size class's shared free list.
type classShard struct {
	mu  sync.Mutex
	blk []block
	_   [32]byte
}

// largeShard is one stripe of the first-fit path, bucketed like the
// legacy allocator: floor-class -> candidate blocks.
type largeShard struct {
	mu   sync.Mutex
	free map[int][]block
}

// stripe is one lane of the allocator's counters, padded to a cache
// line. allocated is signed: a lane may see more frees than allocs.
type stripe struct {
	allocated atomic.Int64
	allocs    atomic.Uint64
	frees     atomic.Uint64
	refills   atomic.Uint64
	magHits   atomic.Uint64
	_         [24]byte
}

// lane picks a counter stripe by hashing the caller's stack position —
// the same goroutine-affine trick as the device's striped stat
// counters. Counters are the one place this hash is safe: which lane a
// delta lands in never changes any allocation decision, only where the
// addition happens, and Stats sums all lanes.
func lane() uint64 {
	var probe byte
	return (uint64(uintptr(unsafe.Pointer(&probe))) * 0x9E3779B97F4A7C15) >> (64 - 4)
}

// Allocator hands out word-aligned blocks from [start, end) on a device.
// All methods are safe for concurrent use. Every internal lock is
// released by defer: device accesses panic with nvm.CrashSignal when an
// injection budget fires, and no lock may be leaked across that unwind.
type Allocator struct {
	dev        *nvm.Device
	start, end uint64

	mags   [nClasses]magazine
	shards [nClasses][nShards]classShard
	large  [nLarge]largeShard
	stat   [nStripes]stripe

	// held counts threads that have removed a free extent from the
	// shared lists and not yet pushed the pieces back (mid-carve,
	// mid-split, mid-large-fit); heldGen ticks each time such memory
	// becomes visible again. Together they let Alloc distinguish a
	// genuinely exhausted heap from one whose only free extent is
	// briefly in another thread's hands.
	held    atomic.Int64
	heldGen atomic.Uint64
}

// New formats [start, end) of dev as a fresh heap: one big free block.
// start and end must be 8-aligned with end-start >= minBlock.
func New(dev *nvm.Device, start, end uint64) *Allocator {
	if start%8 != 0 || end%8 != 0 || end-start < minBlock {
		panic(fmt.Sprintf("nvalloc: bad arena [%#x,%#x)", start, end))
	}
	a := newAllocator(dev, start, end)
	a.writeHeader(start, end-start, false)
	dev.Fence()
	a.pushLarge(block{start, end - start})
	return a
}

// Attach reconstructs an allocator over an existing heap after a crash by
// scanning block headers, the recovery path of the region manager. The
// scan is the sole source of truth: blocks that were sitting in a
// magazine or shard at crash time carry free headers and are re-adopted
// here, so nothing a crash strands in volatile caches is ever lost.
func Attach(dev *nvm.Device, start, end uint64) (*Allocator, error) {
	if start%8 != 0 || end%8 != 0 || end-start < minBlock {
		return nil, fmt.Errorf("nvalloc: bad arena [%#x,%#x)", start, end)
	}
	a := newAllocator(dev, start, end)
	var allocated uint64
	for p := start; p < end; {
		h := dev.Load64(p)
		size := h >> 1
		if size < minBlock || p+size > end || size%8 != 0 {
			return nil, fmt.Errorf("nvalloc: corrupt header at %#x: %#x", p, h)
		}
		if h&allocBit == 0 {
			if c, ok := classOfBlock(size); ok {
				a.classPush(c, block{p, size})
			} else {
				a.pushLarge(block{p, size})
			}
		} else {
			allocated += size
		}
		p += size
	}
	a.stat[0].allocated.Add(int64(allocated))
	return a, nil
}

func newAllocator(dev *nvm.Device, start, end uint64) *Allocator {
	a := &Allocator{dev: dev, start: start, end: end}
	for i := range a.large {
		a.large[i].free = map[int][]block{}
	}
	return a
}

func (a *Allocator) writeHeader(addr, size uint64, allocated bool) {
	h := size << 1
	if allocated {
		h |= allocBit
	}
	a.dev.Store64(addr, h)
	a.dev.CLWB(addr)
}

// Alloc returns the byte address of a block with at least n usable
// bytes, the first n of them zeroed, or an error when the heap is
// exhausted. The returned address points just past the block header.
func (a *Allocator) Alloc(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("nvalloc: invalid size %d", n)
	}
	need := uint64(headerSize) + uint64((n+7)&^7)
	if need < minBlock {
		need = minBlock
	}
	// A failed scan is not proof of exhaustion: between takeLarge and
	// the push-back at the end of a carve or split, the heap's only free
	// extent can be privately held by another thread, and a scan that
	// overlaps that window sees an empty allocator. Accept the
	// out-of-memory verdict only when no private hold overlapped the
	// scan (held was zero after it and heldGen never moved across it);
	// otherwise yield and rescan. held must be read before heldGen:
	// release bumps the generation before dropping the hold count, so a
	// hold that ends between the two loads is always caught by one of
	// them. Single-threaded runs take one pass, keeping placement
	// deterministic.
	var b block
	var ok bool
	for attempt := 0; ; attempt++ {
		gen := a.heldGen.Load()
		if need <= maxSmall {
			b, ok = a.allocSmall(classFor(need))
		} else {
			b, ok = a.allocLarge(need)
		}
		if ok {
			break
		}
		if (a.held.Load() == 0 && a.heldGen.Load() == gen) || attempt >= oomRetries {
			return 0, fmt.Errorf("nvalloc: out of memory (want %d bytes, %d allocated of %d)",
				need, a.allocatedBytes(), a.end-a.start)
		}
		if attempt < spinRetries {
			runtime.Gosched()
		} else {
			d := time.Duration(attempt-spinRetries+1) * time.Microsecond
			if d > time.Millisecond {
				d = time.Millisecond
			}
			time.Sleep(d)
		}
	}
	// Publish: the allocated header must be persistent before the block
	// is handed out. Until this CLWB lands, the block's previous free
	// header — covering exactly this block, the carve/split phases
	// having already retired any wider spanning header — is what a crash
	// scan sees, so a crash here merely forgets an unreturned block.
	a.writeHeader(b.addr, b.size, true)
	a.dev.Fence()
	st := &a.stat[lane()]
	st.allocated.Add(int64(b.size))
	st.allocs.Add(1)
	user := b.addr + headerSize
	// Zero the requested bytes, not the whole block: class rounding can
	// hand a 64-byte request a 128-byte block, and zeroing the rounding
	// slack would double the device traffic of small allocations. Bytes
	// past n are unspecified (no caller reads beyond its request).
	a.dev.Memset64(user, 0, (n+7)/8)
	if tr := a.dev.Tracer(); tr != nil {
		tr.DevEmit(obs.KAlloc, b.addr, b.size)
	}
	return user, nil
}

// allocSmall satisfies a class-sized request: magazine, then shards,
// then a fresh carve. Only when all of those fail does it scavenge the
// magazines back into the shards, retry, and finally split a block
// cached in a higher class — so like the legacy first-fit, a request
// fails only when no free block anywhere can hold it.
func (a *Allocator) allocSmall(c int) (block, bool) {
	if b, ok := a.magPop(c); ok {
		a.stat[lane()].magHits.Add(1)
		return b, true
	}
	if b, ok := a.classPop(c); ok {
		return b, true
	}
	if b, ok := a.carve(c); ok {
		return b, true
	}
	a.scavenge()
	if b, ok := a.classPop(c); ok {
		return b, true
	}
	if b, ok := a.carve(c); ok {
		return b, true
	}
	return a.splitHigher(c)
}

// magPop claims a cached block from the class's magazine ring: the
// first non-empty slot in index order, taken with a single Swap.
func (a *Allocator) magPop(c int) (block, bool) {
	m := &a.mags[c]
	for i := range m.w {
		if m.w[i].Load() == 0 {
			continue
		}
		if w := m.w[i].Swap(0); w != 0 {
			return unpackHot(c, w), true
		}
	}
	return block{}, false
}

// magPush parks a free block in the class's magazine ring: the first
// empty slot in index order, won by CompareAndSwap. Returns false when
// the ring is full so the caller falls back to the shards.
func (a *Allocator) magPush(c int, b block) bool {
	m := &a.mags[c]
	packed := packHot(c, b)
	for i := range m.w {
		if m.w[i].Load() != 0 {
			continue
		}
		if m.w[i].CompareAndSwap(0, packed) {
			return true
		}
	}
	return false
}

// classPop takes a block from the class's shard stripes in fixed index
// order: a TryLock pass first (deterministic when uncontended, skips
// stripes another thread holds), then a blocking pass so a block is
// never missed just because its stripe was busy.
func (a *Allocator) classPop(c int) (block, bool) {
	for i := 0; i < nShards; i++ {
		if b, ok, locked := a.shards[c][i].tryPop(); locked {
			if ok {
				return b, true
			}
		}
	}
	for i := 0; i < nShards; i++ {
		if b, ok := a.shards[c][i].pop(); ok {
			return b, true
		}
	}
	return block{}, false
}

// classPush returns a block to its class's stripes; the home stripe is
// a pure function of the block address, keeping placement deterministic
// and spreading load across locks.
func (a *Allocator) classPush(c int, b block) {
	a.shards[c][(b.addr/minBlock)%nShards].push(b)
}

func (s *classShard) tryPop() (b block, ok, locked bool) {
	if !s.mu.TryLock() {
		return block{}, false, false
	}
	defer s.mu.Unlock()
	if len(s.blk) == 0 {
		return block{}, false, true
	}
	b = s.blk[len(s.blk)-1]
	s.blk = s.blk[:len(s.blk)-1]
	return b, true, true
}

func (s *classShard) pop() (block, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.blk) == 0 {
		return block{}, false
	}
	b := s.blk[len(s.blk)-1]
	s.blk = s.blk[:len(s.blk)-1]
	return b, true
}

func (s *classShard) push(b block) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blk = append(s.blk, b)
}

// carve refills a size class from the large path: it takes one free
// extent and cuts up to magRefill class blocks out of it. Persistence
// discipline (two fence phases): every interior header — the
// remainder's, then the carved blocks' from back to front — is written
// and fenced while the extent's original spanning free header still
// covers them; then block 0's header is shrunk to its own free block
// and fenced, retiring the spanning header, and only after that fence
// does any carved piece enter a globally visible list. A crash inside
// the carve therefore leaves either the untouched spanning free block
// or a fully chained run — and once another thread can see (and
// allocate, and commit into) an interior block, no durable header
// spans it anymore, so a crash can never re-adopt it as free.
func (a *Allocator) carve(c int) (block, bool) {
	a.held.Add(1)
	defer a.held.Add(-1)
	lb, ok := a.takeLarge(classSize(c))
	if !ok {
		return block{}, false
	}
	b := a.carveExtent(c, lb)
	a.heldGen.Add(1)
	return b, true
}

// carveExtent cuts the free extent lb (header persistent, owned by the
// caller) into class-c blocks; see carve for the persistence argument.
func (a *Allocator) carveExtent(c int, lb block) block {
	csize := classSize(c)
	k := lb.size / csize
	if k > magRefill {
		k = magRefill
	}
	rest := lb.size - k*csize
	lastExtra := uint64(0)
	if rest > 0 && rest < minBlock {
		// An 8-byte sliver cannot hold a header; fold it into the
		// last carved block, which is why class lists may carry
		// classSize(c)+8 blocks.
		lastExtra = rest
		rest = 0
	}
	sz0 := csize
	if k == 1 {
		sz0 += lastExtra
	}
	if rest > 0 || k > 1 {
		// Phase 1: interior headers, durable under the spanning header.
		if rest > 0 {
			a.writeHeader(lb.addr+k*csize, rest, false)
		}
		for i := k - 1; i >= 1; i-- {
			sz := csize
			if i == k-1 {
				sz += lastExtra
			}
			a.writeHeader(lb.addr+uint64(i)*csize, sz, false)
		}
		a.dev.Fence()
		// Phase 2: retire the spanning header. Block 0 shrinks to its own
		// free header, so from here on no durable header covers more than
		// one carved piece — a prerequisite for exposing the pieces below,
		// since a concurrent thread may allocate and commit into one
		// before this carver's caller publishes block 0 as allocated.
		a.writeHeader(lb.addr, sz0, false)
		a.dev.Fence()
	}
	if rest > 0 {
		a.pushLarge(block{lb.addr + k*csize, rest})
	}
	for i := k - 1; i >= 1; i-- {
		sz := csize
		if i == k-1 {
			sz += lastExtra
		}
		b := block{lb.addr + uint64(i)*csize, sz}
		if !a.magPush(c, b) {
			a.classPush(c, b)
		}
	}
	a.stat[lane()].refills.Add(1)
	if tr := a.dev.Tracer(); tr != nil {
		tr.DevEmit(obs.KRefill, csize, k)
	}
	return block{lb.addr, sz0}
}

// splitHigher serves class c from a block cached by a bigger class,
// cutting it up exactly like a carve from the large path. Without this,
// memory parked in one class's lists would be unreachable by smaller
// classes and the allocator could report out-of-memory while most of
// the heap sits free.
func (a *Allocator) splitHigher(c int) (block, bool) {
	a.held.Add(1)
	defer a.held.Add(-1)
	for cc := c + 1; cc < nClasses; cc++ {
		if lb, ok := a.magPop(cc); ok {
			b := a.carveExtent(c, lb)
			a.heldGen.Add(1)
			return b, true
		}
		if lb, ok := a.classPop(cc); ok {
			b := a.carveExtent(c, lb)
			a.heldGen.Add(1)
			return b, true
		}
	}
	return block{}, false
}

// scavenge drains every magazine ring back into the shards. Only the
// out-of-memory path calls it; it makes cached blocks visible to the
// splitHigher and large-fallback scans, which only look at shards.
func (a *Allocator) scavenge() {
	for c := range a.mags {
		m := &a.mags[c]
		for i := range m.w {
			if w := m.w[i].Swap(0); w != 0 {
				a.classPush(c, unpackHot(c, w))
			}
		}
	}
}

// allocLarge satisfies a request above maxSmall by first fit over the
// large buckets, splitting off the tail. The split follows the same
// two-phase discipline as carveExtent: the remainder's free header is
// fenced durable, then the head's header is shrunk (free) and fenced to
// retire the spanning header, and only then does the remainder enter
// the shared buckets — so a block another thread allocates out of the
// remainder can never be re-adopted by a crash scan that still sees
// the original extent-spanning free header.
func (a *Allocator) allocLarge(need uint64) (block, bool) {
	a.held.Add(1)
	defer a.held.Add(-1)
	lb, ok := a.takeLarge(need)
	if !ok && need <= maxSmall+8 {
		// A top-class block with a folded sliver (maxSmall+8 bytes) can
		// still cover a request just past the small cutoff; pull the
		// class caches into the shards and check there.
		a.scavenge()
		if b, ok2 := a.classPop(nClasses - 1); ok2 {
			if b.size >= need {
				lb, ok = b, true
			} else {
				a.classPush(nClasses-1, b)
				a.heldGen.Add(1)
			}
		}
	}
	if !ok {
		return block{}, false
	}
	if lb.size-need >= minBlock {
		rest := block{lb.addr + need, lb.size - need}
		a.writeHeader(rest.addr, rest.size, false)
		a.dev.Fence()
		a.writeHeader(lb.addr, need, false)
		a.dev.Fence()
		a.pushLarge(rest)
		lb.size = need
	}
	a.heldGen.Add(1)
	return lb, true
}

// takeLarge removes any free extent of at least need bytes from the
// large buckets, scanning stripes in fixed index order.
func (a *Allocator) takeLarge(need uint64) (block, bool) {
	for i := 0; i < nLarge; i++ {
		if b, ok := a.large[i].take(need); ok {
			return b, true
		}
	}
	return block{}, false
}

// pushLarge files a free extent under the stripe its address hashes to,
// a deterministic spread like classPush.
func (a *Allocator) pushLarge(b block) {
	s := &a.large[(b.addr/minBlock)%nLarge]
	s.mu.Lock()
	defer s.mu.Unlock()
	c := sizeClassFloor(b.size)
	s.free[c] = append(s.free[c], b)
}

func (s *largeShard) take(need uint64) (block, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A block of size sz lives in bucket sizeClassFloor(sz); any block
	// with sz >= need lives in bucket >= sizeClassFloor(need), so
	// starting at the floor bucket visits every candidate, smallest
	// buckets (and tightest fits) first.
	for c := sizeClassFloor(need); c < 64; c++ {
		list := s.free[c]
		for i := len(list) - 1; i >= 0; i-- {
			if b := list[i]; b.size >= need {
				s.free[c] = append(list[:i], list[i+1:]...)
				return b, true
			}
		}
	}
	return block{}, false
}

// Free returns the block whose user address is addr to the heap. The
// free header is persistent before the block re-enters any volatile
// list, so a crash cannot leave a reused block claiming two owners.
// Freeing the same block twice panics (the second call reads a free
// header), as does freeing an address outside the arena; concurrent
// double frees of one block are a data race and undetected.
func (a *Allocator) Free(addr uint64) {
	blk := addr - headerSize
	if blk < a.start || blk >= a.end {
		panic(fmt.Sprintf("nvalloc: Free(%#x) outside arena", addr))
	}
	h := a.dev.Load64(blk)
	if h&allocBit == 0 {
		panic(fmt.Sprintf("nvalloc: double free at %#x", addr))
	}
	size := h >> 1
	a.writeHeader(blk, size, false)
	a.dev.Fence()
	st := &a.stat[lane()]
	st.allocated.Add(-int64(size))
	st.frees.Add(1)
	b := block{blk, size}
	if c, ok := classOfBlock(size); ok {
		if !a.magPush(c, b) {
			a.classPush(c, b)
		}
	} else {
		a.pushLarge(b)
	}
	if tr := a.dev.Tracer(); tr != nil {
		tr.DevEmit(obs.KFree, blk, size)
	}
}

// BlockSize reports the usable byte count of the block at user address addr.
func (a *Allocator) BlockSize(addr uint64) int {
	h := a.dev.Load64(addr - headerSize)
	return int(h>>1) - headerSize
}

// Stats reports allocator counters.
type Stats struct {
	AllocatedBytes uint64
	ArenaBytes     uint64
	Allocs, Frees  uint64
	// Refills counts magazine refill carves from the large path; MagHits
	// counts Allocs served straight from a magazine ring. MagHits/Allocs
	// is the fraction of allocations that touched no lock.
	Refills, MagHits uint64
}

func (a *Allocator) allocatedBytes() uint64 {
	var total int64
	for i := range a.stat {
		total += a.stat[i].allocated.Load()
	}
	return uint64(total)
}

// Stats returns a snapshot of allocation counters. The lanes are summed
// without a lock; concurrent callers get a consistent view only of a
// quiescent heap.
func (a *Allocator) Stats() Stats {
	s := Stats{ArenaBytes: a.end - a.start, AllocatedBytes: a.allocatedBytes()}
	for i := range a.stat {
		s.Allocs += a.stat[i].allocs.Load()
		s.Frees += a.stat[i].frees.Load()
		s.Refills += a.stat[i].refills.Load()
		s.MagHits += a.stat[i].magHits.Load()
	}
	return s
}

// CheckInvariants walks the heap verifying header chaining; used by tests
// and the recovery path. It returns an error describing the first
// inconsistency found. Call it on a quiescent heap that has not unwound
// from an injected crash — after a crash the recovery path is Attach,
// which rebuilds counters from the scan.
func (a *Allocator) CheckInvariants() error {
	var total uint64
	for p := a.start; p < a.end; {
		h := a.dev.Load64(p)
		size := h >> 1
		if size < minBlock || size%8 != 0 || p+size > a.end {
			return fmt.Errorf("bad header at %#x: %#x", p, h)
		}
		if h&allocBit != 0 {
			total += size
		}
		p += size
	}
	if counted := a.allocatedBytes(); total != counted {
		return fmt.Errorf("allocated bytes drifted: walked %d, counted %d", total, counted)
	}
	return nil
}
