package nvalloc

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ido-nvm/ido/internal/nvm"
)

func newHeap(t testing.TB, size int) (*nvm.Device, *Allocator) {
	t.Helper()
	d := nvm.New(nvm.Config{Size: size})
	return d, New(d, 0, uint64(size))
}

func TestAllocZeroedAndAligned(t *testing.T) {
	d, a := newHeap(t, 1<<16)
	p, err := a.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if p%8 != 0 {
		t.Fatalf("unaligned block %#x", p)
	}
	for i := uint64(0); i < 24; i += 8 {
		if d.Load64(p+i) != 0 {
			t.Fatalf("block not zeroed at +%d", i)
		}
	}
	if a.BlockSize(p) < 24 {
		t.Fatalf("BlockSize = %d, want >= 24", a.BlockSize(p))
	}
}

func TestAllocFreeReuse(t *testing.T) {
	_, a := newHeap(t, 1<<12)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		p, err := a.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		seen[p] = true
		a.Free(p)
	}
	if len(seen) > 4 {
		t.Fatalf("free blocks not reused: %d distinct addrs", len(seen))
	}
}

func TestOutOfMemory(t *testing.T) {
	_, a := newHeap(t, 1<<10)
	var held []uint64
	for {
		p, err := a.Alloc(64)
		if err != nil {
			break
		}
		held = append(held, p)
	}
	if len(held) == 0 {
		t.Fatal("no allocations succeeded")
	}
	// After freeing, allocation works again.
	for _, p := range held {
		a.Free(p)
	}
	if _, err := a.Alloc(64); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	_, a := newHeap(t, 1<<12)
	p, _ := a.Alloc(16)
	a.Free(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(p)
}

func TestInvalidSize(t *testing.T) {
	_, a := newHeap(t, 1<<12)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Fatal("Alloc(-5) succeeded")
	}
}

func TestAttachAfterCrashSeesPersistedBlocks(t *testing.T) {
	d, a := newHeap(t, 1<<14)
	p1, _ := a.Alloc(40)
	p2, _ := a.Alloc(40)
	a.Free(p1)
	// Headers are persisted eagerly, so a discard crash keeps them.
	d.Crash(nvm.CrashDiscard, nil)
	a2, err := Attach(d, 0, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// p2's block must still be allocated; allocating must not return it.
	for i := 0; i < 50; i++ {
		p, err := a2.Alloc(40)
		if err != nil {
			break
		}
		if p == p2 {
			t.Fatal("recovered allocator handed out a live block")
		}
	}
}

func TestAttachRejectsCorruptHeap(t *testing.T) {
	d, a := newHeap(t, 1<<12)
	if _, err := a.Alloc(16); err != nil {
		t.Fatal(err)
	}
	d.Store64(0, 3) // nonsense header: size 1, allocated
	d.CLWB(0)
	d.Fence()
	if _, err := Attach(d, 0, 1<<12); err == nil {
		t.Fatal("Attach accepted a corrupt heap")
	}
}

func TestStats(t *testing.T) {
	_, a := newHeap(t, 1<<12)
	p, _ := a.Alloc(16)
	s := a.Stats()
	if s.Allocs != 1 || s.Frees != 0 || s.AllocatedBytes == 0 {
		t.Fatalf("stats = %+v", s)
	}
	a.Free(p)
	s = a.Stats()
	if s.Frees != 1 || s.AllocatedBytes != 0 {
		t.Fatalf("stats after free = %+v", s)
	}
}

func TestRandomAllocFreeInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := nvm.New(nvm.Config{Size: 1 << 14})
		a := New(d, 0, 1<<14)
		r := rand.New(rand.NewSource(seed))
		var live []uint64
		for op := 0; op < 300; op++ {
			if len(live) > 0 && r.Intn(2) == 0 {
				i := r.Intn(len(live))
				a.Free(live[i])
				live = append(live[:i], live[i+1:]...)
			} else {
				p, err := a.Alloc(8 + r.Intn(200))
				if err == nil {
					live = append(live, p)
				}
			}
			if op%50 == 0 {
				if err := a.CheckInvariants(); err != nil {
					return false
				}
			}
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointBlocksProperty(t *testing.T) {
	// Allocated blocks never overlap.
	d := nvm.New(nvm.Config{Size: 1 << 15})
	a := New(d, 0, 1<<15)
	type blk struct {
		p uint64
		n int
	}
	var live []blk
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := 8 + r.Intn(128)
		p, err := a.Alloc(n)
		if err != nil {
			break
		}
		for _, b := range live {
			if p < b.p+uint64(b.n) && b.p < p+uint64(n) {
				t.Fatalf("overlap: [%#x,+%d) vs [%#x,+%d)", p, n, b.p, b.n)
			}
		}
		live = append(live, blk{p, n})
	}
}

// leakedLock try-locks every internal mutex — class shards and large
// buckets; magazines are lock-free — and names the first one still
// held. Used after a CrashSignal unwind: a leaked lock turns an
// injected crash into a process-wide deadlock (the table1 harness hit
// exactly that: one worker killed mid-Alloc, the rest asleep in Lock).
func leakedLock(a *Allocator) string {
	for c := range a.shards {
		for i := range a.shards[c] {
			if !a.shards[c][i].mu.TryLock() {
				return fmt.Sprintf("class %d shard %d", c, i)
			}
			a.shards[c][i].mu.Unlock()
		}
	}
	for i := range a.large {
		if !a.large[i].mu.TryLock() {
			return fmt.Sprintf("large shard %d", i)
		}
		a.large[i].mu.Unlock()
	}
	return ""
}

// TestAllocCrashReleasesLock sweeps the injection budget so CrashSignal
// fires at every device event inside Alloc and Free — including the
// ones under magazine, shard, and large-bucket locks — and asserts no
// lock is leaked by the unwind.
func TestAllocCrashReleasesLock(t *testing.T) {
	defer nvm.ArmCrash(-1)
	crashed := 0
	for budget := int64(1); budget < 96; budget++ {
		_, a := newHeap(t, 1<<16)
		if _, err := a.Alloc(24); err != nil { // populate free lists
			t.Fatal(err)
		}
		nvm.ArmCrash(budget)
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.CrashSignal); !ok {
						panic(r)
					}
					crashed++
				}
			}()
			var live []uint64
			for i := 0; i < 8; i++ {
				p, err := a.Alloc(24 + i*8)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, p)
			}
			for _, p := range live {
				a.Free(p)
			}
		}()
		nvm.ArmCrash(-1)
		if name := leakedLock(a); name != "" {
			t.Fatalf("budget %d: %s lock leaked by crash unwind", budget, name)
		}
	}
	if crashed == 0 {
		t.Fatal("sweep never fired a crash inside Alloc/Free")
	}
}
