package replica

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/loadgen"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// ---- wire ----

func TestWireRoundtrip(t *testing.T) {
	r := rec{shard: 3, seq: 0xDEADBEEF01, op: recDel, k0: 1, k1: ^uint64(0), val: 42}
	b := appendRecord(nil, r)
	if len(b) != 1+recordSize {
		t.Fatalf("record frame is %d bytes, want %d", len(b), 1+recordSize)
	}
	if b[0] != frameRecord {
		t.Fatalf("record frame type %#x", b[0])
	}
	if got := decodeRecord(b[1:]); got != r {
		t.Fatalf("record roundtrip: got %+v, want %+v", got, r)
	}

	b = appendAck(nil, 7, 100, 90)
	if len(b) != 1+ackSize || b[0] != frameAck {
		t.Fatalf("ack frame %d bytes type %#x", len(b), b[0])
	}
	if sh, recv, dur := decodeAck(b[1:]); sh != 7 || recv != 100 || dur != 90 {
		t.Fatalf("ack roundtrip: %d %d %d", sh, recv, dur)
	}

	var buf bytes.Buffer
	wm := []uint64{5, 0, 12}
	if err := writeHello(&buf, wm); err != nil {
		t.Fatalf("writeHello: %v", err)
	}
	got, err := readHello(&buf, 3)
	if err != nil {
		t.Fatalf("readHello: %v", err)
	}
	for i := range wm {
		if got[i] != wm[i] {
			t.Fatalf("hello watermark %d: got %d, want %d", i, got[i], wm[i])
		}
	}
}

func TestHelloRejectsMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHello(&buf, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := readHello(&buf, 3); err == nil {
		t.Fatal("hello with 2 shards accepted by a 3-shard primary")
	}
	// Corrupt the magic.
	buf.Reset()
	writeHello(&buf, []uint64{1})
	raw := buf.Bytes()
	raw[1] ^= 0xFF
	if _, err := readHello(bytes.NewReader(raw), 1); err == nil {
		t.Fatal("corrupted hello magic accepted")
	}
}

// ---- fake store ----

// fakeStore is an Applier applying into plain maps: the FASE machinery
// still runs (Exec wraps every apply), but the state under test is the
// replication protocol, not the KV store.
type fakeStore struct {
	mu sync.Mutex
	m  []map[[2]uint64]uint64
}

func newFakeStore(shards int) *fakeStore {
	f := &fakeStore{m: make([]map[[2]uint64]uint64, shards)}
	for i := range f.m {
		f.m[i] = map[[2]uint64]uint64{}
	}
	return f
}

func (f *fakeStore) NumShards() int { return len(f.m) }

func (f *fakeStore) Set(_ persist.Thread, shard int, k0, k1, val uint64) {
	f.mu.Lock()
	f.m[shard][[2]uint64{k0, k1}] = val
	f.mu.Unlock()
}

func (f *fakeStore) Del(_ persist.Thread, shard int, k0, k1 uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := [2]uint64{k0, k1}
	_, ok := f.m[shard][k]
	delete(f.m[shard], k)
	return ok
}

func (f *fakeStore) get(shard int, k0, k1 uint64) (uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.m[shard][[2]uint64{k0, k1}]
	return v, ok
}

// standbyWorld is a full standby stack over its own device.
type standbyWorld struct {
	reg   *region.Region
	rt    persist.Runtime
	store *fakeStore
	sb    *Standby
}

func newStandbyWorld(t *testing.T, shards int, mut func(*StandbyConfig)) *standbyWorld {
	t.Helper()
	w := &standbyWorld{}
	w.reg = region.Create(1<<22, nvm.Config{Size: 1 << 22})
	lm := locks.NewManager(w.reg)
	w.rt = core.New(core.DefaultConfig())
	if err := w.rt.Attach(w.reg, lm); err != nil {
		t.Fatalf("attach: %v", err)
	}
	w.store = newFakeStore(shards)
	cfg := StandbyConfig{
		Store:            w.store,
		RT:               w.rt,
		Reg:              w.reg,
		HeartbeatTimeout: 250 * time.Millisecond,
		ReconnectBudget:  3,
		ReconnectBackoff: 2 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	var err error
	w.sb, err = NewStandby(cfg)
	if err != nil {
		t.Fatalf("NewStandby: %v", err)
	}
	return w
}

// dialer returns a dial function connecting to sh over a MemPipe; it
// fails fast once the shipper is killed, the way a TCP dial to a dead
// primary gets connection-refused.
func dialer(sh *Shipper) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		if sh.Killed() {
			return nil, fmt.Errorf("primary down")
		}
		c, s := loadgen.MemPipe(1 << 16)
		go func() {
			if err := sh.AttachConn(s); err != nil {
				s.Close()
			}
		}()
		return c, nil
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// ---- ship / apply / ack ----

func TestShipApplyAckTrim(t *testing.T) {
	const shards = 2
	sh, err := NewShipper(ShipperConfig{Shards: shards, Heartbeat: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var completions atomic.Uint64
	sh.SetComplete(func(any) { completions.Add(1) })

	w := newStandbyWorld(t, shards, nil)
	runDone := make(chan error, 1)
	go func() { runDone <- w.sb.Run(dialer(sh)) }()
	waitFor(t, "stream", func() bool { return sh.Attached() })

	const n = 100
	for i := 0; i < n; i++ {
		shard := i % shards
		if i%10 == 9 {
			sh.Publish(shard, OpDel, uint64(i/10), 0, 0, i)
		} else {
			sh.Publish(shard, OpSet, uint64(i), 1, uint64(1000+i), i)
		}
	}
	waitFor(t, "completions", func() bool { return completions.Load() == n })
	waitFor(t, "durable acks trim the rings", func() bool {
		var st, dummy int
		_ = dummy
		for i := range sh.shards {
			s := &sh.shards[i]
			s.mu.Lock()
			st += len(s.recs)
			s.mu.Unlock()
		}
		return st == 0
	})
	// Applied state: sets present except the deleted keys.
	for i := 0; i < n; i++ {
		shard := i % shards
		if i%10 == 9 {
			continue
		}
		v, ok := w.store.get(shard, uint64(i), 1)
		deleted := i < n/10*10 && i%10 == 9
		if deleted {
			continue
		}
		if !ok || v != uint64(1000+i) {
			t.Fatalf("shard %d key %d: got (%d,%v), want (%d,true)", shard, i, v, ok, 1000+i)
		}
	}
	if got := sh.pendingToks(); got != 0 {
		t.Fatalf("pendingToks = %d after full ack", got)
	}

	w.sb.Stop()
	if err := <-runDone; err != ErrStandbyStopped {
		t.Fatalf("Run returned %v, want ErrStandbyStopped", err)
	}
	sh.Close()
}

// TestDegradedThenCatchUp: publishing with no standby completes inline
// (degraded) but buffers history; a standby attaching later backfills.
func TestDegradedThenCatchUp(t *testing.T) {
	sh, err := NewShipper(ShipperConfig{Shards: 1, Heartbeat: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var completions atomic.Uint64
	sh.SetComplete(func(any) { completions.Add(1) })

	for i := 0; i < 10; i++ {
		sh.Publish(0, OpSet, uint64(i), 0, uint64(100+i), i)
	}
	if completions.Load() != 10 {
		t.Fatalf("degraded publishes completed %d/10 inline", completions.Load())
	}
	var snap metrics.ReplStats
	sh.ReplSnapshot(&snap)
	if snap.Degraded != 10 {
		t.Fatalf("degraded counter = %d, want 10", snap.Degraded)
	}

	w := newStandbyWorld(t, 1, nil)
	runDone := make(chan error, 1)
	go func() { runDone <- w.sb.Run(dialer(sh)) }()
	waitFor(t, "backfill", func() bool {
		v, ok := w.store.get(0, 9, 0)
		return ok && v == 109
	})
	// New publishes ride the live stream with deferred completion.
	sh.Publish(0, OpSet, 99, 0, 999, 99)
	waitFor(t, "live completion", func() bool { return completions.Load() == 11 })
	waitFor(t, "live apply", func() bool {
		v, ok := w.store.get(0, 99, 0)
		return ok && v == 999
	})

	w.sb.Stop()
	<-runDone
	sh.Close()
}

// TestPromotionOnPrimaryDeath: a streaming standby whose primary dies
// exhausts its reconnect budget, drains, persists watermarks, and
// promotes.
func TestPromotionOnPrimaryDeath(t *testing.T) {
	sh, err := NewShipper(ShipperConfig{Shards: 1, Heartbeat: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sh.SetComplete(func(any) {})

	w := newStandbyWorld(t, 1, nil)
	runDone := make(chan error, 1)
	go func() { runDone <- w.sb.Run(dialer(sh)) }()
	waitFor(t, "stream", func() bool { return sh.Attached() })
	for i := 0; i < 20; i++ {
		sh.Publish(0, OpSet, uint64(i), 0, uint64(i), i)
	}
	waitFor(t, "apply", func() bool {
		v, ok := w.store.get(0, 19, 0)
		return ok && v == 19
	})

	sh.Kill() // primary process death: no completions, stream severed

	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v, want nil (promotion)", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("standby did not promote")
	}
	select {
	case <-w.sb.Promoted():
	default:
		t.Fatal("Promoted channel not closed")
	}
	if got := w.sb.State(); got != StatePromoted {
		t.Fatalf("state = %d, want StatePromoted", got)
	}
	// The watermark table is durable: a rebuilt standby resumes at 20.
	sb2, err := NewStandby(StandbyConfig{Store: w.store, RT: w.rt, Reg: w.reg})
	if err != nil {
		t.Fatalf("NewStandby reopen: %v", err)
	}
	if got := sb2.durSeq[0].Load(); got != 20 {
		t.Fatalf("reopened watermark = %d, want 20", got)
	}
}

// TestStandbyNeverPromotesBeforeStreaming: a standby that has never
// reached its primary must keep retrying, not promote an empty store.
func TestStandbyNeverPromotesBeforeStreaming(t *testing.T) {
	w := newStandbyWorld(t, 1, func(c *StandbyConfig) {
		c.ReconnectBudget = 1
		c.ReconnectBackoff = time.Millisecond
	})
	runDone := make(chan error, 1)
	go func() {
		runDone <- w.sb.Run(func() (net.Conn, error) {
			return nil, fmt.Errorf("nothing listening")
		})
	}()
	select {
	case err := <-runDone:
		t.Fatalf("standby promoted/exited (%v) without ever streaming", err)
	case <-time.After(300 * time.Millisecond):
	}
	w.sb.Stop()
	if err := <-runDone; err != ErrStandbyStopped {
		t.Fatalf("Run returned %v, want ErrStandbyStopped", err)
	}
}

// TestApplySkipsDuplicates drives the apply loop directly with a
// redelivered record — the reconnect-replay case — and checks exactly
// one application.
func TestApplySkipsDuplicates(t *testing.T) {
	w := newStandbyWorld(t, 1, nil)
	applyErr := make(chan error, 1)
	go w.sb.applyLoop(applyErr)
	r := rec{shard: 0, seq: 1, op: recSet, k0: 7, k1: 0, val: 70}
	w.sb.queue <- r
	w.sb.queue <- r // redelivery
	w.sb.queue <- rec{shard: 0, seq: 2, op: recSet, k0: 7, k1: 0, val: 71}
	waitFor(t, "applies", func() bool { return w.sb.applied.Load() == 2 })
	if got := w.sb.skipped.Load(); got != 1 {
		t.Fatalf("skipped = %d, want 1", got)
	}
	if v, ok := w.store.get(0, 7, 0); !ok || v != 71 {
		t.Fatalf("state after dup replay: (%d,%v), want (71,true)", v, ok)
	}
	w.sb.Stop()
	if err := <-applyErr; err != nil {
		t.Fatalf("applyLoop exit: %v", err)
	}
	// The drain path persisted watermarks durably.
	if got := w.sb.durSeq[0].Load(); got != 2 {
		t.Fatalf("durable watermark = %d, want 2", got)
	}
}

// TestAttachRejectsStaleStandby: a standby whose watermark is below the
// shipper's buffered history base needs a full resync and is refused.
func TestAttachRejectsStaleStandby(t *testing.T) {
	sh, err := NewShipper(ShipperConfig{Shards: 1, Buffer: 4, Heartbeat: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sh.SetComplete(func(any) {})
	// Overflow while detached: history below the ring is lost.
	for i := 0; i < 10; i++ {
		sh.Publish(0, OpSet, uint64(i), 0, uint64(i), nil)
	}
	c, s := loadgen.MemPipe(1 << 14)
	go writeHello(c, []uint64{0}) // claims nothing applied — below the lost base
	if err := sh.AttachConn(s); err == nil {
		t.Fatal("stale standby accepted after history loss")
	}
	c.Close()
	s.Close()
}
