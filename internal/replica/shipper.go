package replica

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ido-nvm/ido/internal/metrics"
)

// ShipperConfig sizes the primary-side log shipper.
type ShipperConfig struct {
	// Shards is the number of shard pipelines feeding the shipper; must
	// equal the store's shard count.
	Shards int
	// Buffer is the per-shard unacked record ring capacity (default
	// 8192). Overflow detaches the standby: availability over
	// replication, counted and logged rather than stalling a pipeline.
	Buffer int
	// AckTimeout bounds how long a deferred client completion may wait
	// for the standby's receipt ack before the shipper declares the
	// standby dead, completes everything pending, and degrades to async
	// (default 2s).
	AckTimeout time.Duration
	// Heartbeat is the idle-stream heartbeat period (default 100ms); it
	// also paces the ack-timeout scan.
	Heartbeat time.Duration
	// Complete is the deferred-completion callback: the shipper calls it
	// exactly once per published token, from its own goroutines (or
	// inline from Publish when degraded). Must be non-blocking.
	Complete func(tok any)
}

func (c *ShipperConfig) fill() {
	if c.Buffer <= 0 {
		c.Buffer = 8192
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 100 * time.Millisecond
	}
}

// pendRec is one buffered record: the wire fields plus the deferred
// completion token (nil once receipt-acked) and its publish time.
type pendRec struct {
	rec
	tok   any
	pubNS int64
}

// shipShard is one shard's replication state. recs holds every record
// not yet durably applied on the standby, in seq order; entries below
// the receipt ack have nil tokens.
type shipShard struct {
	mu      sync.Mutex
	recs    []pendRec
	nextSeq uint64 // next seq to assign (last published + 1)
	sentSeq uint64 // highest seq handed to the current stream
	recvAck uint64 // standby's highest receipt ack
	durAck  uint64 // standby's highest durable-apply ack
	lost    bool   // overflow while detached: buffered history incomplete
}

// Shipper is the primary-side half: shard pipelines Publish committed
// mutations, a sender goroutine streams them to the attached standby,
// and an ack reader releases deferred client completions.
type Shipper struct {
	cfg ShipperConfig

	shards []shipShard

	mu       sync.Mutex
	nc       net.Conn // current standby stream, nil when detached
	ln       net.Listener
	gen      uint64 // bumps on every attach/detach; stream goroutines check it
	attached atomic.Bool
	killed   atomic.Bool
	wg       sync.WaitGroup

	doorbell chan struct{} // rung by Publish; sender drains

	// Counters for ReplSnapshot.
	shippedRecs atomic.Uint64
	shippedByte atomic.Uint64
	ackedRecs   atomic.Uint64
	degraded    atomic.Uint64
	detaches    atomic.Uint64
	attaches    atomic.Uint64
}

// NewShipper builds a shipper for cfg.Shards pipelines. Complete must be
// set before the first Publish.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.Shards <= 0 {
		return nil, errors.New("replica: ShipperConfig.Shards must be positive")
	}
	cfg.fill()
	p := &Shipper{
		cfg:      cfg,
		shards:   make([]shipShard, cfg.Shards),
		doorbell: make(chan struct{}, 1),
	}
	return p, nil
}

// Shards reports the configured shard count.
func (p *Shipper) Shards() int { return len(p.shards) }

// SetComplete installs the deferred-completion callback (the server
// binds it at construction, after the shipper exists).
func (p *Shipper) SetComplete(fn func(tok any)) { p.cfg.Complete = fn }

// Publish enqueues one committed mutation for shipping. Called by a
// shard pipeline after the FASE's commit fence; tok is completed when
// the standby's receipt ack covers the record (or immediately when no
// standby is attached). op is OpSet or OpDel; val is the key's
// resulting value for sets.
func (p *Shipper) Publish(shard int, op byte, k0, k1, val uint64, tok any) {
	s := &p.shards[shard]
	s.mu.Lock()
	if p.killed.Load() {
		s.mu.Unlock()
		return // dying abruptly: tokens die with the server
	}
	att := p.attached.Load()
	if len(s.recs) >= p.cfg.Buffer {
		// Ring full: the standby (or its absence) has fallen too far
		// behind to buffer for. Shed the oldest durably-unconfirmed
		// history rather than stall the pipeline.
		s.mu.Unlock()
		if att {
			p.detach("buffer overflow")
			s.mu.Lock()
		} else {
			s.mu.Lock()
			s.lost = true
			s.recs = s.recs[:0]
		}
	}
	seq := s.nextSeq
	if seq == 0 {
		seq = 1
	}
	s.nextSeq = seq + 1
	s.recs = append(s.recs, pendRec{
		rec:   rec{shard: uint32(shard), seq: seq, op: op, k0: k0, k1: k1, val: val},
		tok:   tok,
		pubNS: time.Now().UnixNano(),
	})
	att = p.attached.Load()
	if !att {
		// Degraded (async) mode: complete now; the record stays buffered
		// so a standby attaching later can still catch up.
		s.recs[len(s.recs)-1].tok = nil
		s.mu.Unlock()
		p.degraded.Add(1)
		if tok != nil {
			p.cfg.Complete(tok)
		}
		return
	}
	s.mu.Unlock()
	select {
	case p.doorbell <- struct{}{}:
	default:
	}
}

// Record ops exposed to the server integration.
const (
	OpSet = recSet
	OpDel = recDel
)

// Serve accepts standby connections from l, one at a time, until Kill
// or Close. A second standby connecting while one is attached replaces
// it (the old stream is detached).
func (p *Shipper) Serve(l net.Listener) {
	p.mu.Lock()
	p.ln = l
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			if err := p.AttachConn(nc); err != nil {
				nc.Close()
			}
		}
	}()
}

// AttachConn adopts nc as the standby stream: it performs the HELLO
// handshake, schedules backfill from the standby's durable watermarks,
// and starts the sender and ack-reader goroutines.
func (p *Shipper) AttachConn(nc net.Conn) error {
	if p.killed.Load() {
		return errors.New("replica: shipper killed")
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	wm, err := readHello(nc, len(p.shards))
	if err != nil {
		return err
	}
	nc.SetReadDeadline(time.Time{})

	// Validate the watermarks against the buffered history and schedule
	// the resend cursors before publishing the stream.
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		base := s.durAck // everything <= durAck has been trimmed
		if len(s.recs) > 0 {
			base = s.recs[0].seq - 1
		} else if s.nextSeq > 0 {
			base = s.nextSeq - 1
		}
		if wm[i] < base {
			s.mu.Unlock()
			return fmt.Errorf("replica: standby shard %d watermark %d below buffered history (base %d): full resync required", i, wm[i], base)
		}
		s.sentSeq = wm[i]
		completed := s.trimLocked(wm[i], wm[i])
		s.mu.Unlock()
		for _, tok := range completed {
			p.cfg.Complete(tok)
		}
	}

	p.mu.Lock()
	if p.nc != nil {
		p.nc.Close()
	}
	p.nc = nc
	p.gen++
	gen := p.gen
	p.mu.Unlock()
	p.attached.Store(true)
	p.attaches.Add(1)

	p.wg.Add(2)
	go p.sendLoop(nc, gen)
	go p.ackLoop(nc, gen)
	return nil
}

// trimLocked completes tokens receipt-acked up to recv and drops
// records durably acked up to dur. Caller holds s.mu; completions run
// with it held — Complete is non-blocking by contract.
func (s *shipShard) trimLocked(recv, dur uint64) (completed []any) {
	for i := range s.recs {
		r := &s.recs[i]
		if r.seq <= recv && r.tok != nil {
			completed = append(completed, r.tok)
			r.tok = nil
		}
	}
	if recv > s.recvAck {
		s.recvAck = recv
	}
	if dur > s.durAck {
		s.durAck = dur
	}
	drop := 0
	for drop < len(s.recs) && s.recs[drop].seq <= s.durAck {
		drop++
	}
	if drop > 0 {
		s.recs = append(s.recs[:0], s.recs[drop:]...)
	}
	return completed
}

// sendLoop streams unsent records (and heartbeats) to the standby.
func (p *Shipper) sendLoop(nc net.Conn, gen uint64) {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.Heartbeat)
	defer tick.Stop()
	buf := make([]byte, 0, 64<<10)
	for {
		idle := false
		select {
		case <-p.doorbell:
		case <-tick.C:
			idle = true
		}
		if p.stale(gen) {
			return
		}
		sent := false
		for {
			buf = buf[:0]
			for i := range p.shards {
				s := &p.shards[i]
				s.mu.Lock()
				for s.sentSeq+1 < s.nextSeq && len(buf) < 60<<10 {
					// Find the pending entry for sentSeq+1; entries are
					// seq-ordered and contiguous from recs[0].
					want := s.sentSeq + 1
					if len(s.recs) == 0 || want < s.recs[0].seq {
						// Already durably acked (trim passed it): skip.
						s.sentSeq = want
						continue
					}
					idx := int(want - s.recs[0].seq)
					if idx >= len(s.recs) {
						break
					}
					buf = appendRecord(buf, s.recs[idx].rec)
					s.sentSeq = want
				}
				s.mu.Unlock()
			}
			if len(buf) == 0 {
				break
			}
			if _, err := nc.Write(buf); err != nil {
				p.detachGen(gen, "send error")
				return
			}
			p.shippedRecs.Add(uint64(len(buf) / (1 + recordSize)))
			p.shippedByte.Add(uint64(len(buf)))
			sent = true
		}
		if idle {
			if !sent {
				if _, err := nc.Write([]byte{frameHeart}); err != nil {
					p.detachGen(gen, "heartbeat error")
					return
				}
			}
			if p.ackOverdue() {
				p.detachGen(gen, "ack timeout")
				return
			}
		}
	}
}

// ackOverdue reports whether the oldest receipt-pending record has
// waited longer than AckTimeout.
func (p *Shipper) ackOverdue() bool {
	cut := time.Now().UnixNano() - p.cfg.AckTimeout.Nanoseconds()
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for j := range s.recs {
			if s.recs[j].tok != nil {
				if s.recs[j].pubNS < cut {
					s.mu.Unlock()
					return true
				}
				break
			}
		}
		s.mu.Unlock()
	}
	return false
}

// ackLoop consumes the standby's ACK frames, releasing deferred client
// completions and trimming durably-applied records.
func (p *Shipper) ackLoop(nc net.Conn, gen uint64) {
	defer p.wg.Done()
	var hdr [1 + ackSize]byte
	for {
		if _, err := io.ReadFull(nc, hdr[:1]); err != nil {
			p.detachGen(gen, "ack stream closed")
			return
		}
		if hdr[0] != frameAck {
			p.detachGen(gen, "bad frame from standby")
			return
		}
		if _, err := io.ReadFull(nc, hdr[1:]); err != nil {
			p.detachGen(gen, "ack stream closed")
			return
		}
		shard, recv, dur := decodeAck(hdr[1:])
		if int(shard) >= len(p.shards) {
			p.detachGen(gen, "ack for unknown shard")
			return
		}
		s := &p.shards[shard]
		s.mu.Lock()
		prevDur := s.durAck
		completed := s.trimLocked(recv, dur)
		newDur := s.durAck
		s.mu.Unlock()
		if newDur > prevDur {
			p.ackedRecs.Add(newDur - prevDur)
		}
		for _, tok := range completed {
			p.cfg.Complete(tok)
		}
	}
}

// stale reports whether gen is no longer the live stream generation.
func (p *Shipper) stale(gen uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen != gen
}

// detachGen detaches only if gen is still the live stream (so a dead
// stream's goroutines cannot detach its replacement).
func (p *Shipper) detachGen(gen uint64, reason string) {
	p.mu.Lock()
	if p.gen != gen {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.detach(reason)
}

// detach closes the standby stream and completes every pending token:
// the shipper degrades to async until the next attach.
func (p *Shipper) detach(string) {
	p.mu.Lock()
	if p.nc != nil {
		p.nc.Close()
		p.nc = nil
	}
	p.gen++
	p.mu.Unlock()
	p.attached.Store(false)
	p.detaches.Add(1)
	p.completeAll()
}

// completeAll releases every deferred completion (detach path: the
// client ack contract degrades to local-durability only).
func (p *Shipper) completeAll() {
	var toks []any
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for j := range s.recs {
			if s.recs[j].tok != nil {
				toks = append(toks, s.recs[j].tok)
				s.recs[j].tok = nil
			}
		}
		s.mu.Unlock()
	}
	for _, tok := range toks {
		p.degraded.Add(1)
		p.cfg.Complete(tok)
	}
}

// Kill stops the shipper abruptly — the primary is dying as a crashed
// process would, so pending completions are NOT released (their slots
// die with the server) and nothing further is shipped.
func (p *Shipper) Kill() {
	p.killed.Store(true)
	p.attached.Store(false)
	p.mu.Lock()
	if p.nc != nil {
		p.nc.Close()
		p.nc = nil
	}
	if p.ln != nil {
		p.ln.Close()
		p.ln = nil
	}
	p.gen++
	p.mu.Unlock()
}

// Close stops the shipper gracefully: it waits up to AckTimeout for
// in-flight receipt acks, then completes anything still pending and
// closes the stream and listener.
func (p *Shipper) Close() {
	deadline := time.Now().Add(p.cfg.AckTimeout)
	for p.attached.Load() && p.pendingToks() > 0 && time.Now().Before(deadline) {
		select {
		case p.doorbell <- struct{}{}:
		default:
		}
		time.Sleep(time.Millisecond)
	}
	p.killed.Store(true)
	p.attached.Store(false)
	p.mu.Lock()
	if p.nc != nil {
		p.nc.Close()
		p.nc = nil
	}
	if p.ln != nil {
		p.ln.Close()
		p.ln = nil
	}
	p.gen++
	p.mu.Unlock()
	p.completeAll()
	p.wg.Wait()
}

// pendingToks counts records whose client completion is still deferred.
func (p *Shipper) pendingToks() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for j := range s.recs {
			if s.recs[j].tok != nil {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Attached reports whether a standby stream is live.
func (p *Shipper) Attached() bool { return p.attached.Load() }

// Killed reports whether the shipper was torn down (Kill or Close). A
// standby dial function can use it to fail fast instead of handing the
// standby a stream that dies on first read.
func (p *Shipper) Killed() bool { return p.killed.Load() }

// ReplSnapshot fills dst with the primary-side replication gauges — the
// metrics.ReplSource contract.
func (p *Shipper) ReplSnapshot(dst *metrics.ReplStats) {
	dst.Role = metrics.ReplRolePrimary
	dst.Attached = 0
	if p.attached.Load() {
		dst.Attached = 1
	}
	dst.Records = p.shippedRecs.Load()
	dst.Bytes = p.shippedByte.Load()
	dst.AckedRecs = p.ackedRecs.Load()
	dst.Degraded = p.degraded.Load()
	dst.Reconnects = p.attaches.Load()
	dst.Failovers = 0
	var lagRecs uint64
	oldest := int64(0)
	now := time.Now().UnixNano()
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		if s.nextSeq > 0 {
			lagRecs += (s.nextSeq - 1) - s.durAck
		}
		for j := range s.recs {
			if s.recs[j].tok != nil {
				if age := now - s.recs[j].pubNS; age > oldest {
					oldest = age
				}
				break
			}
		}
		s.mu.Unlock()
	}
	dst.LagRecs = lagRecs
	dst.LagBytes = lagRecs * (1 + recordSize)
	dst.LagNS = oldest
}
