// Package replica is the hot-standby availability layer over the iDO
// durability core: a primary-side log shipper that taps every committed
// mutating FASE into a bounded, per-shard-sequenced replication stream,
// and a standby that applies those records through the same FASE
// machinery against its own device, tracking durable per-shard
// watermarks so replay after a standby crash is idempotent.
//
// The wire protocol is four frame kinds over one full-duplex byte
// stream (TCP or loadgen.MemPipe), all little-endian:
//
//	HELLO  'H' magic u32, version u8, nshards u32, nshards x u64
//	       — standby -> primary at connect: the standby's durable
//	       applied watermark per shard. The primary resends every
//	       buffered record above each watermark.
//	RECORD 'R' shard u32, seq u64, op u8, k0 u64, k1 u64, val u64
//	       — primary -> standby: one committed mutation. seq is
//	       per-shard and contiguous; op is recSet or recDel. Records
//	       are state-based (an INCR ships its resulting value as a
//	       set), so in-order replay from any watermark converges.
//	ACK    'A' shard u32, recv u64, durable u64
//	       — standby -> primary: recv is the highest contiguous seq
//	       received into the apply queue, durable the highest seq whose
//	       apply is persisted under the standby's watermark table.
//	HEART  'B'
//	       — primary -> standby on an idle stream; the standby's read
//	       deadline detects primary death by its absence.
//
// Durability contract (DESIGN.md §11): the primary defers a mutating
// request's client completion until the standby's receipt ack covers
// its record — acked therefore implies on-standby while a standby is
// attached (semi-synchronous). With no standby attached the shipper
// degrades to immediate completion and counts it.
package replica

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame type bytes.
const (
	frameHello  = 'H'
	frameRecord = 'R'
	frameAck    = 'A'
	frameHeart  = 'B'
)

// Record ops.
const (
	recSet = 1
	recDel = 2
)

// helloMagic tags a HELLO frame; the version byte lets the protocol
// evolve without silent misparses.
const (
	helloMagic   = 0x1D0AB1E5
	helloVersion = 1
)

// Frame sizes (after the type byte).
const (
	recordSize = 4 + 8 + 1 + 8 + 8 + 8 // 37
	ackSize    = 4 + 8 + 8             // 20
)

// rec is one replication record in memory.
type rec struct {
	shard uint32
	seq   uint64
	op    byte
	k0    uint64
	k1    uint64
	val   uint64
}

// appendRecord encodes r as a RECORD frame.
func appendRecord(b []byte, r rec) []byte {
	b = append(b, frameRecord)
	b = binary.LittleEndian.AppendUint32(b, r.shard)
	b = binary.LittleEndian.AppendUint64(b, r.seq)
	b = append(b, r.op)
	b = binary.LittleEndian.AppendUint64(b, r.k0)
	b = binary.LittleEndian.AppendUint64(b, r.k1)
	b = binary.LittleEndian.AppendUint64(b, r.val)
	return b
}

// decodeRecord decodes a RECORD frame body (the bytes after 'R').
func decodeRecord(b []byte) rec {
	return rec{
		shard: binary.LittleEndian.Uint32(b[0:4]),
		seq:   binary.LittleEndian.Uint64(b[4:12]),
		op:    b[12],
		k0:    binary.LittleEndian.Uint64(b[13:21]),
		k1:    binary.LittleEndian.Uint64(b[21:29]),
		val:   binary.LittleEndian.Uint64(b[29:37]),
	}
}

// appendAck encodes an ACK frame.
func appendAck(b []byte, shard uint32, recv, durable uint64) []byte {
	b = append(b, frameAck)
	b = binary.LittleEndian.AppendUint32(b, shard)
	b = binary.LittleEndian.AppendUint64(b, recv)
	b = binary.LittleEndian.AppendUint64(b, durable)
	return b
}

// decodeAck decodes an ACK frame body.
func decodeAck(b []byte) (shard uint32, recv, durable uint64) {
	return binary.LittleEndian.Uint32(b[0:4]),
		binary.LittleEndian.Uint64(b[4:12]),
		binary.LittleEndian.Uint64(b[12:20])
}

// writeHello sends the standby's HELLO with its durable watermarks.
func writeHello(w io.Writer, wm []uint64) error {
	b := make([]byte, 0, 10+8*len(wm))
	b = append(b, frameHello)
	b = binary.LittleEndian.AppendUint32(b, helloMagic)
	b = append(b, helloVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(wm)))
	for _, w := range wm {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	_, err := w.Write(b)
	return err
}

// readHello reads and validates a HELLO, returning the watermarks.
func readHello(r io.Reader, wantShards int) ([]uint64, error) {
	var hdr [10]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("replica: reading hello: %w", err)
	}
	if hdr[0] != frameHello {
		return nil, fmt.Errorf("replica: expected hello frame, got %#x", hdr[0])
	}
	if m := binary.LittleEndian.Uint32(hdr[1:5]); m != helloMagic {
		return nil, fmt.Errorf("replica: hello magic %#x", m)
	}
	if v := hdr[5]; v != helloVersion {
		return nil, fmt.Errorf("replica: hello version %d, want %d", v, helloVersion)
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:10]))
	if n != wantShards {
		return nil, fmt.Errorf("replica: hello declares %d shards, primary has %d", n, wantShards)
	}
	wm := make([]uint64, n)
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("replica: reading hello watermarks: %w", err)
	}
	for i := range wm {
		wm[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return wm, nil
}
