package replica

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Applier is the store surface the standby needs to replay records —
// a structural subset of the server's Store interface, so McStore and
// RespStore satisfy it without this package importing the server.
type Applier interface {
	NumShards() int
	Set(t persist.Thread, shard int, k0, k1, val uint64)
	Del(t persist.Thread, shard int, k0, k1 uint64) bool
}

// RootReplWatermarks is the region root slot anchoring the standby's
// durable per-shard applied-watermark table (the server's shard
// directories hold 26 and 27).
const RootReplWatermarks = 28

// wmMagic tags the watermark table header: magic<<32 | nshards.
const wmMagic = 0x1D0AB

// Standby states, exported for readiness and metrics.
const (
	StateConnecting = iota
	StateStreaming
	StateReconnecting
	StateDraining
	StatePromoted
	StateStopped
	StateCrashed
)

// StandbyConfig wires a standby applier.
type StandbyConfig struct {
	// Store is the standby's own attached store (same shard count as
	// the primary's).
	Store Applier
	// RT supplies one persist.Thread per shard for the apply FASEs.
	RT persist.Runtime
	// Reg is the standby's region; the durable watermark table lives
	// under RootReplWatermarks.
	Reg *region.Region
	// QueueLen bounds the received-but-unapplied record queue (default
	// 8192).
	QueueLen int
	// HeartbeatTimeout is the stream read deadline: a stream silent for
	// this long (no records, no heartbeats) counts as a lost primary
	// (default 1s).
	HeartbeatTimeout time.Duration
	// ReconnectBudget is how many consecutive failed dials declare the
	// primary dead and begin promotion (default 3).
	ReconnectBudget int
	// ReconnectBackoff is the base reconnect delay, doubled per attempt
	// with jitter (default 25ms).
	ReconnectBackoff time.Duration
	// WatermarkEvery persists the applied-watermark table every K
	// applied records (default 64); it is also persisted whenever the
	// apply queue drains and at promotion.
	WatermarkEvery int
}

func (c *StandbyConfig) fill() {
	if c.QueueLen <= 0 {
		c.QueueLen = 8192
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = time.Second
	}
	if c.ReconnectBudget <= 0 {
		c.ReconnectBudget = 3
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 25 * time.Millisecond
	}
	if c.WatermarkEvery <= 0 {
		c.WatermarkEvery = 64
	}
}

// ErrStandbyCrashed is returned by Run when an apply FASE died on an
// injected device crash; the caller recovers the region and rebuilds.
var ErrStandbyCrashed = errors.New("replica: standby crashed mid-apply")

// ErrStandbyStopped is returned by Run after Stop.
var ErrStandbyStopped = errors.New("replica: standby stopped")

// Standby receives the replication stream, applies records through the
// FASE machinery, and promotes itself when the primary dies.
type Standby struct {
	cfg StandbyConfig
	dev *nvm.Device

	wmAddr uint64   // watermark table base (header word + nshards words)
	ths    []persist.Thread

	// Per-shard sequences. applySeq is pipeline-goroutine-owned between
	// watermark persists; durSeq/recvSeq are read by the acker and
	// metrics.
	applySeq []uint64
	durSeq   []atomic.Uint64
	recvSeq  []atomic.Uint64

	queue chan rec

	state   atomic.Int32
	stopc   chan struct{}
	stopOnce sync.Once
	promc   chan struct{} // closed when promotion completes

	// Apply closure scratch (apply goroutine only).
	cur   rec
	fns   []func()

	mu sync.Mutex
	nc net.Conn

	sinceWM int

	// Counters for ReplSnapshot.
	applied    atomic.Uint64
	skipped    atomic.Uint64
	recvRecs   atomic.Uint64
	recvBytes  atomic.Uint64
	reconnects atomic.Uint64
	promotions atomic.Uint64
}

// NewStandby builds a standby over an attached (and already recovered)
// store. It creates or reopens the durable watermark table at
// RootReplWatermarks and one apply thread per shard.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.Store == nil || cfg.RT == nil || cfg.Reg == nil {
		return nil, errors.New("replica: StandbyConfig needs Store, RT, and Reg")
	}
	cfg.fill()
	n := cfg.Store.NumShards()
	sb := &Standby{
		cfg:      cfg,
		dev:      cfg.Reg.Dev,
		applySeq: make([]uint64, n),
		durSeq:   make([]atomic.Uint64, n),
		recvSeq:  make([]atomic.Uint64, n),
		queue:    make(chan rec, cfg.QueueLen),
		stopc:    make(chan struct{}),
		promc:    make(chan struct{}),
	}
	if err := sb.openWatermarks(n); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		th, err := cfg.RT.NewThread()
		if err != nil {
			return nil, fmt.Errorf("replica: apply thread %d: %w", i, err)
		}
		sb.ths = append(sb.ths, th)
		shard, t := i, th
		sb.fns = append(sb.fns, func() {
			if sb.cur.op == recDel {
				sb.cfg.Store.Del(t, shard, sb.cur.k0, sb.cur.k1)
			} else {
				sb.cfg.Store.Set(t, shard, sb.cur.k0, sb.cur.k1, sb.cur.val)
			}
		})
	}
	sb.state.Store(StateConnecting)
	return sb, nil
}

// openWatermarks creates (first boot) or reopens the durable watermark
// table and loads the applied sequences from it.
func (sb *Standby) openWatermarks(n int) error {
	reg := sb.cfg.Reg
	if addr := reg.Root(RootReplWatermarks); addr != 0 {
		hdr := sb.dev.Load64(addr)
		if hdr>>32 != wmMagic || int(hdr&0xFFFFFFFF) != n {
			return fmt.Errorf("replica: watermark table header %#x does not match %d shards", hdr, n)
		}
		sb.wmAddr = addr
		for i := 0; i < n; i++ {
			w := sb.dev.Load64(addr + 8 + uint64(i)*8)
			sb.applySeq[i] = w
			sb.durSeq[i].Store(w)
			sb.recvSeq[i].Store(w)
		}
		return nil
	}
	addr, err := reg.Alloc.Alloc(8 * (1 + n))
	if err != nil {
		return fmt.Errorf("replica: allocating watermark table: %w", err)
	}
	sb.dev.Store64(addr, wmMagic<<32|uint64(n))
	for i := 0; i < n; i++ {
		sb.dev.Store64(addr+8+uint64(i)*8, 0)
	}
	sb.dev.PersistRange(addr, uint64(8*(1+n)))
	sb.dev.Fence()
	reg.SetRoot(RootReplWatermarks, addr)
	sb.wmAddr = addr
	return nil
}

// persistWatermarks publishes the applied sequences durably. Each word
// is 8-byte-atomic and monotonic, so a crash mid-persist only leaves
// some shards at an older (lower) watermark — replay re-applies a
// suffix, which record idempotence absorbs.
func (sb *Standby) persistWatermarks() {
	for i, w := range sb.applySeq {
		if sb.durSeq[i].Load() != w {
			sb.dev.Store64(sb.wmAddr+8+uint64(i)*8, w)
		}
	}
	sb.dev.PersistRange(sb.wmAddr, uint64(8*(1+len(sb.applySeq))))
	sb.dev.Fence()
	for i, w := range sb.applySeq {
		sb.durSeq[i].Store(w)
	}
	sb.sinceWM = 0
}

// State reports the standby's lifecycle state.
func (sb *Standby) State() int { return int(sb.state.Load()) }

// Promoted is closed when promotion completes: the queue is drained,
// watermarks are durable, and the caller may recover and serve.
func (sb *Standby) Promoted() <-chan struct{} { return sb.promc }

// Stop halts the standby without promoting (graceful shutdown).
func (sb *Standby) Stop() {
	sb.stopOnce.Do(func() { close(sb.stopc) })
	sb.mu.Lock()
	if sb.nc != nil {
		sb.nc.Close()
	}
	sb.mu.Unlock()
}

// Run connects to the primary via dial and processes the replication
// stream until the primary dies — at which point it drains, persists
// watermarks, and returns nil with the standby Promoted — or until
// Stop (ErrStandbyStopped) or an injected crash (ErrStandbyCrashed).
//
// The promotion state machine:
//
//	Connecting -> Streaming -> (stream lost) Reconnecting
//	Reconnecting -> Streaming (dial succeeded; budget resets)
//	Reconnecting -> Draining (budget exhausted: primary is dead)
//	Draining -> Promoted (queue empty, watermarks durable)
func (sb *Standby) Run(dial func() (net.Conn, error)) error {
	applyErr := make(chan error, 1)
	go sb.applyLoop(applyErr)

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	attempts := 0
	everStreamed := false
	for {
		select {
		case <-sb.stopc:
			sb.finishApply(applyErr)
			sb.state.Store(StateStopped)
			return ErrStandbyStopped
		case err := <-applyErr:
			return sb.noteApplyDeath(err)
		default:
		}
		if attempts > 0 {
			if everStreamed && attempts > sb.cfg.ReconnectBudget {
				break // primary declared dead
			}
			// Exponential backoff with jitter before the retry. Before
			// the first successful stream the budget never exhausts: a
			// standby that has not yet replicated anything must not
			// promote an empty store just because the primary is slow
			// to boot.
			shift := uint(attempts - 1)
			if shift > 8 {
				shift = 8
			}
			d := sb.cfg.ReconnectBackoff << shift
			d += time.Duration(rng.Int63n(int64(d)/2 + 1))
			select {
			case <-time.After(d):
			case <-sb.stopc:
				continue
			}
		}
		nc, err := dial()
		if err != nil {
			attempts++
			sb.state.Store(StateReconnecting)
			sb.reconnects.Add(1)
			continue
		}
		streamed := false
		err = sb.stream(nc, applyErr, &streamed)
		if streamed {
			everStreamed = true
		}
		if errors.Is(err, errApplyDied) {
			return sb.noteApplyDeath(<-applyErr)
		}
		select {
		case <-sb.stopc:
			continue
		default:
		}
		attempts = 1
		sb.state.Store(StateReconnecting)
		sb.reconnects.Add(1)
	}

	// Promotion: drain everything received, persist watermarks, flip.
	sb.state.Store(StateDraining)
	if err := sb.finishApply(applyErr); err != nil {
		return sb.noteApplyDeath(err)
	}
	sb.promotions.Add(1)
	sb.state.Store(StatePromoted)
	close(sb.promc)
	return nil
}

// errApplyDied distinguishes "stream ended because the applier died"
// from stream transport errors.
var errApplyDied = errors.New("replica: apply goroutine died")

// stream sends HELLO on nc and consumes records until the stream
// breaks or the standby stops. *streamed is set once the HELLO has
// been written (the standby has been a live replica of this primary).
func (sb *Standby) stream(nc net.Conn, applyErr chan error, streamed *bool) error {
	sb.mu.Lock()
	sb.nc = nc
	sb.mu.Unlock()
	defer func() {
		sb.mu.Lock()
		sb.nc = nil
		sb.mu.Unlock()
		nc.Close()
	}()

	wm := make([]uint64, len(sb.applySeq))
	for i := range wm {
		wm[i] = sb.durSeq[i].Load()
	}
	if err := writeHello(nc, wm); err != nil {
		return err
	}
	*streamed = true
	sb.state.Store(StateStreaming)

	br := bufio.NewReaderSize(nc, 64<<10)
	var buf [1 + recordSize]byte
	ackBuf := make([]byte, 0, 256)
	// Last acked positions, so every batch boundary (including a bare
	// heartbeat) reports any receipt or durability progress — the
	// durable watermark advances asynchronously in the apply loop, and
	// the primary cannot trim until it hears about it.
	sentRecv := make([]uint64, len(sb.applySeq))
	sentDur := make([]uint64, len(sb.applySeq))
	for i := range sentRecv {
		sentRecv[i] = sb.recvSeq[i].Load()
		sentDur[i] = sb.durSeq[i].Load()
	}
	for {
		// Notice an apply death promptly even when the queue never
		// fills: a crashed applier must surface as errApplyDied, not be
		// masked by a healthy stream.
		select {
		case err := <-applyErr:
			applyErr <- err
			return errApplyDied
		default:
		}
		nc.SetReadDeadline(time.Now().Add(sb.cfg.HeartbeatTimeout))
		if _, err := io.ReadFull(br, buf[:1]); err != nil {
			return err
		}
		switch buf[0] {
		case frameHeart:
			sb.recvBytes.Add(1)
		case frameRecord:
			if _, err := io.ReadFull(br, buf[1:]); err != nil {
				return err
			}
			r := decodeRecord(buf[1:])
			if int(r.shard) >= len(sb.applySeq) {
				return fmt.Errorf("replica: record for unknown shard %d", r.shard)
			}
			sb.recvRecs.Add(1)
			sb.recvBytes.Add(1 + recordSize)
			select {
			case sb.queue <- r:
			case err := <-applyErr:
				applyErr <- err
				return errApplyDied
			case <-sb.stopc:
				return ErrStandbyStopped
			}
			sb.recvSeq[r.shard].Store(r.seq)
		default:
			return fmt.Errorf("replica: unexpected frame %#x from primary", buf[0])
		}
		// Ack at batch boundaries: while further frames are already
		// buffered, keep consuming; when the reader drains, flush one
		// ack per shard whose receipt or durable position moved.
		if br.Buffered() == 0 {
			ackBuf = ackBuf[:0]
			for i := range sentRecv {
				rcv, dur := sb.recvSeq[i].Load(), sb.durSeq[i].Load()
				if rcv != sentRecv[i] || dur != sentDur[i] {
					ackBuf = appendAck(ackBuf, uint32(i), rcv, dur)
					sentRecv[i], sentDur[i] = rcv, dur
				}
			}
			if len(ackBuf) > 0 {
				if _, err := nc.Write(ackBuf); err != nil {
					return err
				}
			}
		}
	}
}

// applyLoop replays records through the FASE machinery, one goroutine
// owning every shard's apply thread (records arrive in one stream, so
// total order is free and per-shard order preserved). Watermarks
// persist every WatermarkEvery applies and whenever the queue drains.
func (sb *Standby) applyLoop(applyErr chan error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nvm.CrashSignal); ok {
				applyErr <- ErrStandbyCrashed
				return
			}
			panic(r)
		}
	}()
	for {
		var r rec
		select {
		case r = <-sb.queue:
		case <-sb.stopc:
			// Drain what was received before stopping: promotion and
			// graceful shutdown both want receipt implies applied.
			select {
			case r = <-sb.queue:
			default:
				sb.persistWatermarks()
				applyErr <- nil
				return
			}
		}
		if r.seq <= sb.applySeq[r.shard] {
			// Replay duplicate (redelivery after reconnect): skip.
			sb.skipped.Add(1)
			continue
		}
		sb.cur = r
		sb.ths[r.shard].Exec(sb.fns[r.shard])
		sb.applySeq[r.shard] = r.seq
		sb.applied.Add(1)
		sb.sinceWM++
		if sb.sinceWM >= sb.cfg.WatermarkEvery || len(sb.queue) == 0 {
			sb.persistWatermarks()
		}
	}
}

// finishApply stops the apply goroutine after the queue drains and
// returns its exit error (nil on a clean drain).
func (sb *Standby) finishApply(applyErr chan error) error {
	sb.stopOnce.Do(func() { close(sb.stopc) })
	return <-applyErr
}

func (sb *Standby) noteApplyDeath(err error) error {
	if errors.Is(err, ErrStandbyCrashed) {
		sb.state.Store(StateCrashed)
	} else {
		sb.state.Store(StateStopped)
	}
	if err == nil {
		err = ErrStandbyStopped
	}
	return err
}

// ReplSnapshot fills dst with the standby-side replication gauges.
func (sb *Standby) ReplSnapshot(dst *metrics.ReplStats) {
	dst.Role = metrics.ReplRoleStandby
	dst.Attached = 0
	if sb.state.Load() == StateStreaming {
		dst.Attached = 1
	}
	dst.Records = sb.applied.Load()
	dst.Bytes = sb.recvBytes.Load()
	dst.AckedRecs = sb.applied.Load()
	dst.Degraded = sb.skipped.Load()
	dst.Reconnects = sb.reconnects.Load()
	dst.Failovers = sb.promotions.Load()
	var lag uint64
	for i := range sb.recvSeq {
		lag += sb.recvSeq[i].Load() - sb.durSeq[i].Load()
	}
	dst.LagRecs = lag
	dst.LagBytes = lag * (1 + recordSize)
	dst.LagNS = 0
}
