package core

// lineSet tracks the distinct cache lines a region dirties, preserving
// insertion order for the boundary write-back. Most regions touch a
// handful of lines (Fig. 8: the vast majority of dynamic regions perform
// ≤2 stores), so membership starts as a linear scan of a short list; a
// region that keeps dirtying new lines upgrades to an open-addressed hash
// table, keeping per-store tracking O(1) instead of the O(dirty) scan
// that made wide regions quadratic.

// lineSetSmall is the list length beyond which the set engages the hash
// table. Scanning up to this many entries is cheaper than hashing.
const lineSetSmall = 16

type lineSet struct {
	list []uint64 // every tracked line, insertion order
	tab  []uint64 // open-addressed table, entries are line|1; nil while small
	mask uint64   // len(tab)-1
}

// lineHash mixes a 64-aligned line address into a table slot.
func lineHash(line uint64) uint64 {
	return (line >> 6) * 0x9E3779B97F4A7C15
}

// add inserts line (a LineSize-aligned address) if not already present.
func (s *lineSet) add(line uint64) {
	if s.tab == nil {
		for _, l := range s.list {
			if l == line {
				return
			}
		}
		s.list = append(s.list, line)
		if len(s.list) > lineSetSmall {
			s.grow()
		}
		return
	}
	e := line | 1 // tagged so the zero slot means empty even for line 0
	i := lineHash(line) & s.mask
	for {
		switch s.tab[i] {
		case 0:
			s.tab[i] = e
			s.list = append(s.list, line)
			if uint64(len(s.list))*4 > (s.mask+1)*3 {
				s.grow()
			}
			return
		case e:
			return
		}
		i = (i + 1) & s.mask
	}
}

// grow (re)builds the table at double capacity (or engages it at the
// initial size) and rehashes the list.
func (s *lineSet) grow() {
	n := uint64(64)
	if s.tab != nil {
		n = (s.mask + 1) * 2
	}
	s.tab = make([]uint64, n)
	s.mask = n - 1
	for _, line := range s.list {
		i := lineHash(line) & s.mask
		for s.tab[i] != 0 {
			i = (i + 1) & s.mask
		}
		s.tab[i] = line | 1
	}
}

// lines returns the tracked lines in insertion order. The slice aliases
// internal storage and is invalidated by reset.
func (s *lineSet) lines() []uint64 { return s.list }

// reset empties the set, keeping the list's capacity. A modest table is
// cleared in place; an unusually wide region's table is dropped so one
// huge region does not tax every later boundary.
func (s *lineSet) reset() {
	s.list = s.list[:0]
	if s.tab == nil {
		return
	}
	if len(s.tab) <= 1024 {
		clear(s.tab)
	} else {
		s.tab, s.mask = nil, 0
	}
}
