// Package core implements the iDO runtime (the paper's primary
// contribution): failure atomicity for lock-delineated FASEs via
// idempotent-region logging and recovery-by-resumption.
//
// Per-thread state lives in an iDO_Log in NVM (Fig. 3): a packed
// recovery_pc identifying the current idempotent region, a register file
// (intRF) holding the region's logged inputs, and a lock_array of indirect
// lock holder addresses. At each region boundary the runtime executes the
// three-step protocol of §III-A with exactly two persist fences:
//
//  1. write back the ending region's outputs (register slots, plus any
//     heap/stack lines the region dirtied) — fence;
//  2. update recovery_pc to the new region — fence;
//  3. execute the new region.
//
// Lock acquire and release each take a single persist fence thanks to
// indirect locking (§III-B). Recovery (§III-C) re-acquires each crashed
// thread's locks, restores its register file, jumps to the interrupted
// region's entry (a registered resume closure standing in for the
// compiler's recovery_pc), and runs forward to the end of the FASE.
//
// Crash-ordering invariants maintained by this implementation:
//
//   - recovery_pc != 0  ⇔  the thread is mid-FASE and must be resumed.
//   - The FASE's data lines are fenced durable before recovery_pc is
//     cleared, and recovery_pc is fenced clear before lock_array slots
//     are cleared at the final release; so a nonzero recovery_pc always
//     finds its locks still recorded.
//   - Lock-array slots are zeroed on release and fenced before the mutex
//     is handed to another thread, so one holder address never appears
//     live in two logs.
//   - Resumption may re-execute the lock acquire that ends a region or
//     the release that begins one; Lock and Unlock detect this from the
//     lock_array mirror and skip the duplicate operation (the paper's
//     instrumented lock library behaves the same way — this is also what
//     makes the "robbed lock" window of §III-B benign).
package core

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ido-nvm/ido/internal/lineset"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// iDO_Log layout (byte offsets within the 64-aligned per-thread log).
// The first cache line holds the list link, thread id, recovery_pc, and
// the lock-slot bitmap, so step 2 of the boundary protocol is one CLWB.
const (
	logNext     = 0  // next log in the global list
	logThreadID = 8  // registering thread's id
	logPC       = 16 // recovery_pc packed with nOutputs (0 => not in a FASE)
	logLockBits = 24 // live-slot bitmask for the lock array
	rfBase      = 64 // intRF: MaxOutputs register slots
	numSlots    = 16 // lock_array capacity
)

// The boundary record ("stage") holds the most recent boundary's
// (register, value) pairs. It is published atomically with recovery_pc
// (the pair count rides in the packed pc word) and folded into the fixed
// intRF slots by the NEXT boundary's step 1 — so a crash between a
// boundary's two fences can never leave a live-in slot clobbered while
// recovery_pc still points at the region that needs it. The real compiler
// obtains the same guarantee by extending live ranges so a region never
// redefines its own register inputs (§IV-A(c)); lacking a register
// allocator, we double-buffer the last record instead, at the same fence
// count.

// pcPack packs a region ID, an output count, and the active boundary-
// record buffer into one 8-byte word so a single atomic NVM write
// publishes all three (region IDs must fit 48 bits). The two record
// buffers ping-pong: a boundary writes the inactive buffer, so the record
// the current recovery_pc points at is never mutated — a crash (or a
// spontaneous cache write-back) mid-boundary cannot tear it.
func pcPack(regionID uint64, n, buf int) uint64 {
	return regionID | uint64(n)<<48 | uint64(buf)<<56
}

func pcUnpack(w uint64) (regionID uint64, n, buf int) {
	return w & (1<<48 - 1), int(w >> 48 & 0xFF), int(w >> 56 & 1)
}

// Config tunes the runtime.
type Config struct {
	// Coalesce enables persist coalescing (§IV-B): register outputs are
	// packed eight to a cache line so one write-back covers them all.
	// When false each register slot sits on its own line — the ablation
	// configuration.
	Coalesce bool
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config { return Config{Coalesce: true} }

// Runtime is the iDO failure-atomicity runtime.
type Runtime struct {
	cfg Config
	reg *region.Region
	lm  *locks.Manager

	rfStride uint64 // 8 when coalescing, 64 when not
	logSize  int

	mu      sync.Mutex
	threads []*Thread
	nextID  int
}

// New creates an iDO runtime with the given configuration.
func New(cfg Config) *Runtime {
	rt := &Runtime{cfg: cfg}
	rt.rfStride = 8
	if !cfg.Coalesce {
		rt.rfStride = nvm.LineSize
	}
	rt.logSize = int(rt.stageBase(1)) + persist.MaxOutputs*16
	return rt
}

// stageBase returns the offset of boundary-record buffer buf (0 or 1).
func (rt *Runtime) stageBase(buf int) uint64 {
	return rt.laBase() + numSlots*8 + uint64(buf)*persist.MaxOutputs*16
}

// Name implements persist.Runtime.
func (rt *Runtime) Name() string { return "ido" }

func (rt *Runtime) laBase() uint64 {
	return rfBase + persist.MaxOutputs*rt.rfStride
}

// Attach implements persist.Runtime.
func (rt *Runtime) Attach(reg *region.Region, lm *locks.Manager) error {
	rt.reg = reg
	rt.lm = lm
	return nil
}

// NewThread registers a worker: it allocates and persists an iDO_Log and
// links it onto the global log list anchored at the region's iDO_head
// root (Fig. 3).
func (rt *Runtime) NewThread() (persist.Thread, error) {
	rt.mu.Lock()
	id := rt.nextID
	rt.nextID++
	rt.mu.Unlock()

	raw, err := rt.reg.Alloc.Alloc(rt.logSize + nvm.LineSize)
	if err != nil {
		return nil, fmt.Errorf("ido: allocating log: %w", err)
	}
	addr := (raw + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	dev := rt.reg.Dev
	dev.Store64(addr+logThreadID, uint64(id))
	dev.Store64(addr+logPC, 0)
	dev.Store64(addr+logLockBits, 0)

	// Deferred unlock: the device calls below panic with nvm.CrashSignal
	// under armed injection, and the mutex must not survive the unwind.
	rt.mu.Lock()
	defer rt.mu.Unlock()
	head := rt.reg.Root(region.RootIDOHead)
	dev.Store64(addr+logNext, head)
	dev.PersistRange(addr, uint64(rt.logSize))
	dev.Fence()
	rt.reg.SetRoot(region.RootIDOHead, addr) // fenced internally
	t := &Thread{rt: rt, id: id, log: addr}
	t.rc = dev.Tracer().ThreadRing(fmt.Sprintf("ido/t%d", id))
	t.initAddrTables()
	rt.threads = append(rt.threads, t)
	return t, nil
}

// Thread is a worker's iDO handle. It must be used from one goroutine.
type Thread struct {
	rt  *Runtime
	id  int
	log uint64

	lockDepth    int
	durableDepth int
	slots        [numSlots]uint64 // volatile mirror of the lock_array
	bits         uint64           // volatile mirror of logLockBits
	recovering   bool             // set on recovery threads

	dirty          lineset.Set      // heap lines dirtied in the current region
	staged         []persist.RegVal // pairs in the current boundary record
	outScratch     [persist.MaxOutputs]persist.RegVal
	curBuf         int // active boundary-record buffer
	storesInRegion int
	inRegion       bool

	// rc is this thread's event ring; nil when tracing is off (every
	// method on a nil *obs.Ring is a one-compare no-op).
	rc           *obs.Ring
	curRegion    uint64 // region ID of the open region, for trace labels
	regionT0     int64  // tracer clock at the open of the current region
	faseT0       int64  // tracer clock at FASE entry
	faseLogBytes uint64 // log payload written during the current FASE

	// Precomputed NVM addresses for the boundary hot path: the fixed
	// intRF slot per register, and the pair base per stage-record slot in
	// each ping-pong buffer. Both are fully determined by the log address
	// and the configured stride, so Boundary writes through a table
	// lookup instead of re-deriving the stride math per output.
	rfAddr   [persist.MaxOutputs]uint64
	pairAddr [2][persist.MaxOutputs]uint64

	stats persist.RuntimeStats
}

// initAddrTables fills the per-slot address tables once the log address
// is known (thread registration and recovery both construct Threads).
func (t *Thread) initAddrTables() {
	for r := 0; r < persist.MaxOutputs; r++ {
		t.rfAddr[r] = t.log + rfBase + uint64(r)*t.rt.rfStride
	}
	for buf := 0; buf < 2; buf++ {
		sb := t.log + t.rt.stageBase(buf)
		for i := 0; i < persist.MaxOutputs; i++ {
			t.pairAddr[buf][i] = sb + uint64(i)*16
		}
	}
}

var _ persist.Thread = (*Thread)(nil)

// ID implements persist.Thread.
func (t *Thread) ID() int { return t.id }

// Exec implements persist.Thread; iDO never re-executes speculatively.
func (t *Thread) Exec(op func()) { op() }

func (t *Thread) inFASE() bool { return t.lockDepth > 0 || t.durableDepth > 0 }

func (t *Thread) trackLine(addr uint64) {
	t.dirty.Add(addr &^ (nvm.LineSize - 1))
}

// Store64 performs a persistent store. Inside a FASE the dirtied line is
// tracked so the enclosing region's boundary can write it back (§III-A:
// "writes-back of variables accessed via pointers are tracked at run time
// and then written back at the end of the region"). No per-store log is
// written — that is the point of iDO.
func (t *Thread) Store64(addr, val uint64) {
	t.rt.reg.Dev.Store64(addr, val)
	if t.inFASE() {
		t.trackLine(addr)
		t.storesInRegion++
		t.stats.Stores++
	}
}

// Load64 reads persistent data.
func (t *Thread) Load64(addr uint64) uint64 { return t.rt.reg.Dev.Load64(addr) }

// closeRegion accounts for the region that just ended.
func (t *Thread) closeRegion() {
	if !t.inRegion {
		return
	}
	b := t.storesInRegion
	if b >= persist.HistStores {
		b = persist.HistStores - 1
	}
	t.stats.StoresPerRegion[b]++
	t.stats.Regions++
	if t.rc != nil {
		now := t.rc.Clock()
		t.rc.Span(obs.KRegion, t.curRegion, uint64(t.storesInRegion), t.regionT0)
		t.rc.Observe(obs.HRegionNS, uint64(now-t.regionT0))
		t.rc.Observe(obs.HRegionStores, uint64(t.storesInRegion))
	}
	t.inRegion = false
	t.storesInRegion = 0
}

// persistDirty writes back every line the current region dirtied in one
// bulk call and orders the write-backs with a persist fence (§III-A
// step 1; same write-back, fence, and crash-injection event counts as
// per-line CLWB plus Fence). With group commit enabled the flush+fence
// may be performed by an elected leader merging several threads'
// commits into a single fence drain.
func (t *Thread) persistDirty() {
	t.rt.reg.Dev.PersistBatch(t.dirty.Lines())
	t.dirty.Reset()
}

// OutputScratch implements persist.OutputScratcher: callers assemble
// each Boundary output set in this thread-owned buffer, so spreading it
// into the variadic Boundary never heap-allocates. Boundary itself only
// reads the slice (it copies into t.staged), so reuse across calls is
// safe.
func (t *Thread) OutputScratch() []persist.RegVal { return t.outScratch[:0] }

// Boundary ends the current idempotent region and opens the one
// identified by regionID, logging the ending region's OutputSet into the
// intRF. Each register has a fixed slot, so live-ins of the still-current
// region are never clobbered before recovery_pc advances. This is the
// three-step protocol of §III-A; it costs exactly two persist fences.
func (t *Thread) Boundary(regionID uint64, outputs ...persist.RegVal) {
	if len(outputs) > persist.MaxOutputs {
		panic(fmt.Sprintf("ido: region %#x logs %d outputs (max %d)",
			regionID, len(outputs), persist.MaxOutputs))
	}
	if regionID == 0 || regionID >= 1<<48 {
		panic(fmt.Sprintf("ido: region ID %#x out of range", regionID))
	}
	dev := t.rt.reg.Dev
	t.closeRegion()

	// Step 1a: fold the previous boundary record into the fixed intRF
	// slots (their lines are flushed below, under this boundary's fence).
	for _, o := range t.staged {
		sa := t.rfAddr[o.Reg]
		dev.Store64(sa, o.Val)
		t.trackLine(sa)
	}
	// Step 1b: write this boundary's record into the INACTIVE buffer —
	// with persist coalescing the pairs pack two to a cache line, so up
	// to eight registers cost a handful of contiguous write-backs
	// (§IV-B) — plus any heap lines the ending region dirtied; fence.
	// Pair addresses come from the precomputed per-slot table.
	buf := 1 - t.curBuf
	for i, o := range outputs {
		if o.Reg < 0 || o.Reg >= persist.MaxOutputs {
			panic(fmt.Sprintf("ido: register slot %d out of range", o.Reg))
		}
		pa := t.pairAddr[buf][i]
		dev.Store64(pa, uint64(o.Reg))
		dev.Store64(pa+8, o.Val)
	}
	if n := len(outputs); n > 0 {
		if t.rt.cfg.Coalesce {
			dev.PersistRange(t.pairAddr[buf][0], uint64(n)*16)
		} else {
			for i := 0; i < n; i++ {
				dev.CLWB(t.pairAddr[buf][i])
				dev.CLWB(t.pairAddr[buf][i] + 8)
			}
		}
	}
	t.persistDirty() // flush + fence, group-commit batchable

	// Step 2: publish the new recovery_pc (record count and buffer ride
	// in the packed word, so record and pc switch atomically), fence.
	// From here on a crash resumes at regionID's entry. The publish is a
	// non-temporal store: a cached store plus write-back would leave a
	// window where the crash adversary decides whether the pc reached the
	// persistence domain — at a FASE's entry boundary that would let the
	// adversary pick between "FASE never started" and "FASE resumes",
	// breaking the adversary-independence of recovery (§III-C) that the
	// chaos harness's persist-all oracle checks exactly.
	dev.StoreNT(t.log+logPC, pcPack(regionID, len(outputs), buf))
	dev.FenceBatch()
	t.curBuf = buf
	t.staged = append(t.staged[:0], outputs...)

	t.stats.LoggedEntries++
	logBytes := uint64(len(outputs))*8 + 8
	t.stats.LoggedBytes += logBytes
	t.faseLogBytes += logBytes
	t.stats.OutputsPerRegion[len(outputs)]++
	if t.rc != nil {
		t.rc.Emit(obs.KBoundary, regionID, uint64(len(outputs)))
		t.rc.Observe(obs.HOutputsPerRegion, uint64(len(outputs)))
		t.regionT0 = t.rc.Clock()
	}
	t.curRegion = regionID
	t.inRegion = true
	// Step 3 is the caller executing the region's code.
}

// slotOf probes only the slots the bits mask marks live (slots[i] != 0
// exactly when bit i is set), instead of scanning all numSlots entries.
func (t *Thread) slotOf(holder uint64) int {
	for m := t.bits; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if t.slots[i] == holder {
			return i
		}
	}
	return -1
}

// freeSlot returns the lowest empty lock_array slot, or -1 when full.
func (t *Thread) freeSlot() int {
	if i := bits.TrailingZeros64(^t.bits); i < numSlots {
		return i
	}
	return -1
}

// Lock acquires l and records its indirect holder in the lock_array with
// a single persist fence (§III-B). When resumption re-executes an acquire
// the thread already performed (the lock is already in the mirror), the
// call is a no-op.
func (t *Thread) Lock(l *locks.Lock) {
	if t.slotOf(l.Holder()) >= 0 {
		if !t.recovering {
			panic("ido: recursive Lock outside recovery")
		}
		return // resumption re-executing an already-held acquire
	}
	l.Acquire()
	slot := t.freeSlot()
	if slot < 0 {
		panic("ido: lock_array overflow (more than 16 locks held)")
	}
	dev := t.rt.reg.Dev
	t.slots[slot] = l.Holder()
	t.bits |= 1 << uint(slot)
	slotAddr := t.log + t.rt.laBase() + uint64(slot)*8
	dev.Store64(slotAddr, l.Holder())
	dev.Store64(t.log+logLockBits, t.bits)
	dev.CLWB(slotAddr)
	dev.CLWB(t.log + logLockBits)
	dev.Fence() // the single fence
	if t.rc != nil {
		if t.lockDepth == 0 && t.durableDepth == 0 {
			t.faseT0 = t.rc.Clock()
			t.faseLogBytes = 0
		}
		t.rc.Emit(obs.KLockAcq, l.Holder(), 0)
	}
	t.lockDepth++
}

// Unlock releases l. For an inner release (other locks remain held) it
// clears the lock_array entry with a single fence. For the FASE's final
// release it first makes the FASE's effects durable, then clears
// recovery_pc (fence), and only then clears the slot and releases — so
// recovery_pc != 0 always implies the locks are still recorded.
//
// When resumption re-executes a release the crashed thread had already
// completed (the lock is absent from the mirror), the call is a no-op.
func (t *Thread) Unlock(l *locks.Lock) {
	slot := t.slotOf(l.Holder())
	if slot < 0 {
		if t.recovering {
			return // release already completed before the crash
		}
		panic("ido: unlocking a lock this thread does not hold")
	}
	dev := t.rt.reg.Dev
	last := t.lockDepth == 1 && t.durableDepth == 0
	if last {
		t.closeRegion()
		t.persistDirty()
		// Single-event clear, matching the Boundary publish (see Step 2
		// there): the pc transition must not depend on the adversary.
		dev.StoreNT(t.log+logPC, 0)
		dev.FenceBatch()
		t.stats.FASEs++
		if t.rc != nil {
			t.rc.Span(obs.KFASE, t.faseLogBytes, 0, t.faseT0)
			t.rc.Observe(obs.HLogBytesPerFASE, t.faseLogBytes)
		}
	}
	t.slots[slot] = 0
	t.bits &^= 1 << uint(slot)
	slotAddr := t.log + t.rt.laBase() + uint64(slot)*8
	dev.Store64(slotAddr, 0)
	dev.Store64(t.log+logLockBits, t.bits)
	dev.CLWB(slotAddr)
	dev.CLWB(t.log + logLockBits)
	if !last {
		dev.Fence() // the single fence; the final release already fenced
	}
	t.rc.Emit(obs.KLockRel, l.Holder(), 0)
	t.lockDepth--
	l.Release()
}

// BeginDurable opens a programmer-delineated FASE (§II-B). The caller
// must issue a Boundary immediately after, exactly as the compiler
// inserts one after each lock acquire.
func (t *Thread) BeginDurable() {
	if t.rc != nil && t.durableDepth == 0 && t.lockDepth == 0 {
		t.faseT0 = t.rc.Clock()
		t.faseLogBytes = 0
	}
	t.durableDepth++
}

// EndDurable closes a programmer-delineated FASE, persisting its effects
// and clearing recovery_pc.
func (t *Thread) EndDurable() {
	if t.durableDepth == 0 {
		panic("ido: EndDurable without BeginDurable")
	}
	last := t.durableDepth == 1 && t.lockDepth == 0
	if last {
		dev := t.rt.reg.Dev
		t.closeRegion()
		t.persistDirty()
		dev.StoreNT(t.log+logPC, 0)
		dev.FenceBatch()
		t.stats.FASEs++
		if t.rc != nil {
			t.rc.Span(obs.KFASE, t.faseLogBytes, 0, t.faseT0)
			t.rc.Observe(obs.HLogBytesPerFASE, t.faseLogBytes)
		}
	}
	t.durableDepth--
}

// Stats implements persist.Runtime. Call only while worker threads are
// quiescent.
func (rt *Runtime) Stats() persist.RuntimeStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out persist.RuntimeStats
	for _, t := range rt.threads {
		out.Add(&t.stats)
	}
	return out
}

// Recover implements §III-C: walk the persistent log list, spawn a
// recovery thread per interrupted log, re-acquire locks, barrier, restore
// each thread's register file, and resume each interrupted region forward
// to the end of its FASE. Logs that show no interrupted FASE but have
// stale lock slots (the benign robbed-lock window: a crash between mutex
// acquisition and the post-acquire boundary) are scrubbed.
func (rt *Runtime) Recover(rr *persist.ResumeRegistry) (persist.RecoveryStats, error) {
	start := time.Now()
	dev := rt.reg.Dev
	attempt := nvm.EnterRecovery()
	defer nvm.ExitRecovery()
	// With a recovery-scoped crash budget armed, run the single-goroutine
	// restore path: goroutine interleaving would make "the Nth device
	// event of recovery" a different event on every run, and the chaos
	// harness needs schedules to replay bit-for-bit. The serial path
	// preserves the §III-C barrier by finishing every restore/re-acquire
	// before the first resume.
	serial := nvm.RecoveryCrashArmed()
	var stats persist.RecoveryStats
	stats.Attempt = attempt
	stats.Audit = &obs.RecoveryAudit{Runtime: rt.Name(), Attempt: attempt}
	rc := dev.Tracer().ThreadRing("ido/recover")
	scanT0 := rc.Clock()

	type pending struct {
		t        *Thread
		regionID uint64
		n, buf   int
		bits     uint64
		ai       int // index into stats.Audit.Threads
		rf       []uint64
		locks    []uint64
		acquired int // locks actually re-acquired (slot order)
		err      error
	}
	var work []*pending

	// The restore/re-acquire phase of each interrupted thread overlaps
	// the serial log walk: as soon as a log entry is decoded, a goroutine
	// reads that thread's lock slots and register file and re-acquires
	// its locks while the walk moves on to the next entry. The acq group
	// is the §III-C barrier — every lock re-acquired before any thread
	// resumes — and the gate additionally holds resumption until the walk
	// has seen every log, preserving the all-threads-recovered-together
	// contract. Each lock was held by at most one crashed thread, so the
	// acquisitions cannot deadlock.
	var acq, done sync.WaitGroup
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	var abort atomic.Bool

	// A crash injected while this frame is driving the walk (or the
	// serial restore) must not strand launched goroutines: they block on
	// <-gate after their acq phase, and a panic that unwinds past this
	// frame would leak them — and the locks they re-acquired — forever.
	// Flag the abort, open the gate so they drain down the release path,
	// and re-raise.
	defer func() {
		if r := recover(); r != nil {
			abort.Store(true)
			openGate()
			done.Wait()
			panic(r)
		}
	}()

	// restore reads one interrupted thread's lock slots and register file
	// from its log and re-acquires its locks. Panics propagate to the
	// caller (each call path wraps it per its own death semantics).
	restore := func(w *pending) {
		t, p := w.t, w.t.log
		held := 0
		for i := 0; i < numSlots; i++ {
			if w.bits&(1<<uint(i)) != 0 {
				h := dev.Load64(p + rt.laBase() + uint64(i)*8)
				if h == 0 {
					continue
				}
				t.slots[i] = h
				t.bits |= 1 << uint(i)
				w.locks = append(w.locks, h)
				held++
			}
		}
		// Restore the register file: fixed slots overlaid with the
		// current boundary record (whose count rides in the pc word).
		w.rf = make([]uint64, persist.MaxOutputs)
		for i := range w.rf {
			w.rf[i] = dev.Load64(p + rfBase + uint64(i)*rt.rfStride)
		}
		for i := 0; i < w.n && i < persist.MaxOutputs; i++ {
			reg := dev.Load64(p + rt.stageBase(w.buf) + uint64(i)*16)
			val := dev.Load64(p + rt.stageBase(w.buf) + uint64(i)*16 + 8)
			if reg < persist.MaxOutputs {
				w.rf[reg] = val
				t.staged = append(t.staged, persist.RegVal{Reg: int(reg), Val: val})
			}
		}
		t.curBuf = w.buf
		t.lockDepth = held
		if held == 0 {
			t.durableDepth = 1 // a programmer-delineated FASE was active
		}
		t.inRegion = true
		for s := 0; s < numSlots; s++ {
			if t.slots[s] != 0 {
				rt.lm.ByHolder(t.slots[s]).Acquire()
				w.acquired++
				t.rc.Emit(obs.KLockAcq, t.slots[s], 0)
			}
		}
	}
	// release drops the locks a failed/aborted thread actually grabbed so
	// the manager is not left poisoned for the caller's next attempt.
	// Only the first w.acquired held slots were locked — a panic can land
	// after t.slots is filled but before (or mid) the acquisition loop,
	// and releasing a never-acquired lock would be a fatal
	// unlock-of-unlocked-mutex.
	release := func(w *pending) {
		rel := w.acquired
		for s := 0; s < numSlots && rel > 0; s++ {
			if w.t.slots[s] != 0 {
				rt.lm.ByHolder(w.t.slots[s]).Release()
				rel--
			}
		}
	}
	resume := func(w *pending) {
		fn, _ := rr.Lookup(w.regionID)
		fn(w.t, w.rf)
	}

	launch := func(w *pending) {
		defer done.Done()
		func() {
			defer acq.Done()
			defer func() {
				if r := recover(); r != nil {
					w.err = fmt.Errorf("ido: restore of log %#x panicked: %v", w.t.log, r)
				}
			}()
			restore(w)
		}()
		<-gate
		if abort.Load() || w.err != nil {
			// The walk failed (or this restore did): nothing resumes.
			release(w)
			return
		}
		defer func() {
			if r := recover(); r != nil {
				w.err = fmt.Errorf("ido: resume of region %#x panicked: %v", w.regionID, r)
			}
		}()
		resume(w)
	}

	var walkErr error
	for p := rt.reg.Root(region.RootIDOHead); p != 0; p = dev.Load64(p + logNext) {
		stats.Threads++
		stats.LogEntries++
		pcWord := dev.Load64(p + logPC)
		regionID, n, buf := pcUnpack(pcWord)
		bits := dev.Load64(p + logLockBits)

		t := &Thread{rt: rt, id: int(dev.Load64(p + logThreadID)), log: p, recovering: true}
		t.rc = dev.Tracer().ThreadRing(fmt.Sprintf("ido/t%d-rec", t.id))
		t.initAddrTables()
		audit := obs.ThreadAudit{ThreadID: t.id, LogAddr: p, Action: obs.AuditIdle, RecoveryPC: pcWord}
		rt.mu.Lock()
		rt.threads = append(rt.threads, t)
		if t.id >= rt.nextID {
			rt.nextID = t.id + 1
		}
		rt.mu.Unlock()

		if regionID == 0 {
			// Not mid-FASE. Scrub any stale slots (robbed-lock window).
			if bits != 0 {
				for i := 0; i < numSlots; i++ {
					dev.Store64(p+rt.laBase()+uint64(i)*8, 0)
				}
				dev.Store64(p+logLockBits, 0)
				dev.PersistRange(p+rt.laBase(), numSlots*8)
				dev.CLWB(p + logLockBits)
				dev.Fence()
				audit.Action = obs.AuditScrubbed
			}
			stats.Audit.Add(audit)
			continue
		}

		if _, ok := rr.Lookup(regionID); !ok {
			walkErr = fmt.Errorf("ido: no resume entry registered for region %#x (thread %d)", regionID, t.id)
			stats.Audit.Add(audit)
			break
		}
		audit.Action = obs.AuditResumed
		audit.RegionID = regionID
		audit.WordsRestored = persist.MaxOutputs + n // intRF + staged overlay
		stats.Audit.Add(audit)
		w := &pending{
			t: t, regionID: regionID, n: n, buf: buf, bits: bits,
			ai: len(stats.Audit.Threads) - 1,
		}
		work = append(work, w)
		if !serial {
			acq.Add(1)
			done.Add(1)
			go launch(w)
		}
	}
	rc.Span(obs.KRecovery, obs.PhaseScan, stats.LogEntries, scanT0)

	if serial {
		// Deterministic path: restore every thread, then resume every
		// thread, on this goroutine in walk order. An injected CrashSignal
		// propagates — the crash kills recovery mid-flight and the chaos
		// harness settles and re-recovers; any other panic becomes an
		// error after the acquired locks are dropped.
		guard := func(label string, w *pending, f func()) (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, crash := r.(nvm.CrashSignal); crash {
						panic(r)
					}
					w.err = fmt.Errorf("ido: %s panicked: %v", label, r)
				}
			}()
			f()
			return w.err == nil
		}
		var firstErr error
		if walkErr == nil {
			for _, w := range work {
				if !guard(fmt.Sprintf("restore of log %#x", w.t.log), w, func() { restore(w) }) {
					firstErr = w.err
					break
				}
			}
		}
		var locksTotal uint64
		for _, w := range work {
			stats.Audit.Threads[w.ai].Locks = w.locks
			locksTotal += uint64(len(w.locks))
		}
		rc.Span(obs.KRecovery, obs.PhaseReacquire, locksTotal, scanT0)
		if walkErr != nil || firstErr != nil {
			for _, w := range work {
				release(w)
			}
			if walkErr != nil {
				return stats, walkErr
			}
			return stats, firstErr
		}
		resumeT0 := rc.Clock()
		for _, w := range work {
			if !guard(fmt.Sprintf("resume of region %#x", w.regionID), w, func() { resume(w) }) {
				return stats, w.err
			}
		}
		rc.Span(obs.KRecovery, obs.PhaseResume, uint64(len(work)), resumeT0)
		stats.Resumed = len(work)
		stats.Elapsed = time.Since(start)
		return stats, nil
	}

	acq.Wait()
	// Fold what the restore goroutines found into the audit, in walk
	// order; the slice is stable now that the walk has finished, and the
	// locks are final once the acq barrier has passed.
	var locksTotal uint64
	for _, w := range work {
		stats.Audit.Threads[w.ai].Locks = w.locks
		locksTotal += uint64(len(w.locks))
	}
	// The re-acquire span starts at scanT0 deliberately: it runs
	// concurrently with the walk, which is the point of the overlap.
	rc.Span(obs.KRecovery, obs.PhaseReacquire, locksTotal, scanT0)
	if walkErr != nil {
		abort.Store(true)
	}
	resumeT0 := rc.Clock()
	openGate()
	done.Wait()
	if walkErr != nil {
		return stats, walkErr
	}
	for _, w := range work {
		if w.err != nil {
			return stats, w.err
		}
	}
	rc.Span(obs.KRecovery, obs.PhaseResume, uint64(len(work)), resumeT0)
	stats.Resumed = len(work)
	stats.Elapsed = time.Since(start)
	return stats, nil
}

var _ persist.Runtime = (*Runtime)(nil)

// LogEntryInfo is a read-only view of one per-thread iDO log, for
// post-mortem inspection (cmd/idolog).
type LogEntryInfo struct {
	LogAddr  uint64
	ThreadID int
	RegionID uint64           // 0 when the thread was not mid-FASE
	Staged   []persist.RegVal // the boundary record published with the pc
	Locks    []uint64         // holder addresses recorded in the lock array
}

// InspectLogs walks a region's iDO log list without mutating anything.
// It uses the default log layout (the one New(DefaultConfig()) produces).
func InspectLogs(reg *region.Region) []LogEntryInfo {
	rt := New(DefaultConfig())
	dev := reg.Dev
	var out []LogEntryInfo
	for p := reg.Root(region.RootIDOHead); p != 0; p = dev.Load64(p + logNext) {
		e := LogEntryInfo{LogAddr: p, ThreadID: int(dev.Load64(p + logThreadID))}
		regionID, n, buf := pcUnpack(dev.Load64(p + logPC))
		e.RegionID = regionID
		if regionID != 0 {
			for i := 0; i < n && i < persist.MaxOutputs; i++ {
				reg := dev.Load64(p + rt.stageBase(buf) + uint64(i)*16)
				val := dev.Load64(p + rt.stageBase(buf) + uint64(i)*16 + 8)
				e.Staged = append(e.Staged, persist.RegVal{Reg: int(reg), Val: val})
			}
		}
		bits := dev.Load64(p + logLockBits)
		for i := 0; i < numSlots; i++ {
			if bits&(1<<uint(i)) != 0 {
				if h := dev.Load64(p + rt.laBase() + uint64(i)*8); h != 0 {
					e.Locks = append(e.Locks, h)
				}
			}
		}
		out = append(out, e)
	}
	return out
}
