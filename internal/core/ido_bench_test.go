package core

import (
	"fmt"
	"testing"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/region"
)

// benchWorld builds a runtime and one registered thread over a device
// large enough for wide regions.
func benchWorld(b *testing.B, bytes int) (*region.Region, *Thread) {
	b.Helper()
	reg := region.Create(bytes, nvm.Config{})
	lm := locks.NewManager(reg)
	rt := New(DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		b.Fatal(err)
	}
	pt, err := rt.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	return reg, pt.(*Thread)
}

// BenchmarkRegionTrackStores measures per-store cost of dirty-line
// tracking for regions that touch many distinct lines. The seed
// implementation scanned the whole dirty list on every store (O(n) per
// store, O(n²) per region), which is what this regression benchmark
// pins down: ns/op here is per store inside one region of the given
// width, and must stay flat as the width grows.
func BenchmarkRegionTrackStores(b *testing.B) {
	for _, width := range []int{8, 256, 10000} {
		b.Run(fmt.Sprintf("lines=%d", width), func(b *testing.B) {
			reg, t := benchWorld(b, 1<<24)
			base, err := reg.Alloc.Alloc(width * nvm.LineSize)
			if err != nil {
				b.Fatal(err)
			}
			base = (base + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
			t.BeginDurable()
			t.Boundary(0x1001)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// one store per distinct line, cycling over the region's
				// working set so the dirty set holds `width` lines
				off := uint64(i%width) * nvm.LineSize
				t.Store64(base+off, uint64(i))
			}
			b.StopTimer()
			t.EndDurable()
		})
	}
}

// BenchmarkRegionBoundary measures a full small-region boundary (two
// fences, a handful of dirty lines) — the steady-state iDO hot path.
func BenchmarkRegionBoundary(b *testing.B) {
	reg, t := benchWorld(b, 1<<22)
	base, err := reg.Alloc.Alloc(64 * nvm.LineSize)
	if err != nil {
		b.Fatal(err)
	}
	base = (base + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	t.BeginDurable()
	t.Boundary(0x2001)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i%32) * nvm.LineSize
		t.Store64(base+off, uint64(i))
		t.Store64(base+off+8, uint64(i)+1)
		t.Boundary(0x2002)
	}
	b.StopTimer()
	t.EndDurable()
}
