package core

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Region IDs for the two-thread chaos fixtures.
const (
	ridChA0 = 0x141
	ridChB0 = 0x142
	ridChA1 = 0x151
	ridChB1 = 0x152
)

// duoFixture holds two locks and two counters so two threads can each be
// interrupted mid-FASE independently.
type duoFixture struct {
	reg  *region.Region
	lm   *locks.Manager
	rt   *Runtime
	lock [2]*locks.Lock
	ctr  [2]uint64
}

const (
	rootDuoCtr0  = 3
	rootDuoCtr1  = 4
	rootDuoLock0 = 5
	rootDuoLock1 = 6
)

func newDuoFixture(t *testing.T) *duoFixture {
	t.Helper()
	reg := region.Create(1<<18, nvm.Config{})
	lm := locks.NewManager(reg)
	rt := New(DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	f := &duoFixture{reg: reg, lm: lm, rt: rt}
	for i := 0; i < 2; i++ {
		lock, err := lm.Create()
		if err != nil {
			t.Fatal(err)
		}
		ctr, err := reg.Alloc.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		reg.Dev.Store64(ctr, 5)
		reg.Dev.CLWB(ctr)
		reg.Dev.Fence()
		f.lock[i] = lock
		f.ctr[i] = ctr
	}
	reg.SetRoot(rootDuoCtr0, f.ctr[0])
	reg.SetRoot(rootDuoCtr1, f.ctr[1])
	reg.SetRoot(rootDuoLock0, f.lock[0].Holder())
	reg.SetRoot(rootDuoLock1, f.lock[1].Holder())
	return f
}

func (f *duoFixture) reopen(t *testing.T, mode nvm.CrashMode, rng *rand.Rand) *duoFixture {
	t.Helper()
	reg2, err := f.reg.Crash(mode, rng)
	if err != nil {
		t.Fatal(err)
	}
	lm2 := locks.NewManager(reg2)
	rt2 := New(DefaultConfig())
	if err := rt2.Attach(reg2, lm2); err != nil {
		t.Fatal(err)
	}
	return &duoFixture{
		reg:  reg2,
		lm:   lm2,
		rt:   rt2,
		lock: [2]*locks.Lock{lm2.ByHolder(reg2.Root(rootDuoLock0)), lm2.ByHolder(reg2.Root(rootDuoLock1))},
		ctr:  [2]uint64{reg2.Root(rootDuoCtr0), reg2.Root(rootDuoCtr1)},
	}
}

// incrementFASE runs one counter-i increment with crash points.
func (f *duoFixture) incrementFASE(th persist.Thread, i int, c *crasher) {
	ridA, ridB := uint64(ridChA0), uint64(ridChB0)
	if i == 1 {
		ridA, ridB = ridChA1, ridChB1
	}
	c.point()
	th.Lock(f.lock[i])
	c.point()
	th.Boundary(ridA)
	c.point()
	v := th.Load64(f.ctr[i])
	c.point()
	th.Boundary(ridB, persist.RV(0, v))
	c.point()
	th.Store64(f.ctr[i], v+1)
	c.point()
	th.Unlock(f.lock[i])
	c.point()
}

func (f *duoFixture) registry() *persist.ResumeRegistry {
	rr := persist.NewResumeRegistry()
	for i := 0; i < 2; i++ {
		i := i
		ridA, ridB := uint64(ridChA0), uint64(ridChB0)
		if i == 1 {
			ridA, ridB = ridChA1, ridChB1
		}
		rr.Register(ridA, func(th persist.Thread, rf []uint64) {
			v := th.Load64(f.ctr[i])
			th.Boundary(ridB, persist.RV(0, v))
			th.Store64(f.ctr[i], v+1)
			th.Unlock(f.lock[i])
		})
		rr.Register(ridB, func(th persist.Thread, rf []uint64) {
			th.Store64(f.ctr[i], rf[0]+1)
			th.Unlock(f.lock[i])
		})
	}
	return rr
}

// interruptBoth leaves both threads mid-FASE (past the first post-acquire
// boundary, locks recorded in their logs).
func (f *duoFixture) interruptBoth(t *testing.T) {
	t.Helper()
	for i := 0; i < 2; i++ {
		th, err := f.rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		if !runWithCrash(func() { f.incrementFASE(th, i, &crasher{k: 3}) }) {
			t.Fatalf("thread %d: crash point did not fire", i)
		}
	}
}

// TestRecoverCrashMidPassLeaksNoGoroutines sweeps an all-events crash
// budget across the whole parallel Recover pass. Pre-fix, a CrashSignal
// that unwound the log walk left the already-launched restore goroutines
// parked forever on the resume gate (and holding the re-acquired locks):
// this sweep's goroutine count climbed by one per crashed pass. Recover
// must instead drain every launched goroutine before re-raising the
// crash.
func TestRecoverCrashMidPassLeaksNoGoroutines(t *testing.T) {
	defer nvm.ArmCrash(-1)
	base := runtime.NumGoroutine()
	crashes := 0
	for budget := int64(1); ; budget++ {
		f := newDuoFixture(t)
		f.interruptBoth(t)
		f2 := f.reopen(t, nvm.CrashDiscard, nil)
		rr := f2.registry()
		nvm.ArmCrash(budget)
		var recErr error
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.CrashSignal); !ok {
						panic(r)
					}
				}
			}()
			_, recErr = f2.rt.Recover(rr)
		}()
		fired := nvm.CrashFired()
		nvm.ArmCrash(-1)
		if !fired {
			if recErr != nil {
				t.Fatalf("budget %d: recover failed without an injected crash: %v", budget, recErr)
			}
			if budget == 1 {
				t.Fatal("budget 1 did not crash: injection is not reaching Recover")
			}
			break // budget outlasted the pass: every point swept
		}
		crashes++
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > base+2 {
			if time.Now().After(deadline) {
				t.Fatalf("budget %d: %d goroutines above baseline %d after a crash during Recover — restore goroutines leaked on the gate",
					budget, runtime.NumGoroutine()-base, base)
			}
			time.Sleep(time.Millisecond)
		}
	}
	if crashes == 0 {
		t.Fatal("sweep never crashed")
	}
	t.Logf("swept %d crash points through Recover", crashes)
}

// TestRecoverSerialPathCrashSweepConverges arms a recovery-scoped budget
// (which switches Recover to its deterministic serial path), crashes the
// pass at every recovery event, re-settles, and proves a second Recover
// converges to the uninterrupted outcome: both counters incremented,
// both locks free.
func TestRecoverSerialPathCrashSweepConverges(t *testing.T) {
	defer nvm.ArmCrash(-1)
	crashes := 0
	for budget := int64(1); ; budget++ {
		f := newDuoFixture(t)
		f.interruptBoth(t)
		f2 := f.reopen(t, nvm.CrashDiscard, nil)
		nvm.ResetRecoveryPasses()
		nvm.ArmRecoveryCrash(budget)
		crashed := func() (c bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.CrashSignal); !ok {
						panic(r)
					}
					c = true
				}
			}()
			if _, err := f2.rt.Recover(f2.registry()); err != nil {
				t.Fatalf("budget %d: recover: %v", budget, err)
			}
			return false
		}()
		nvm.ArmCrash(-1)
		if !crashed {
			if budget == 1 {
				t.Fatal("budget 1 did not crash: recovery-scoped injection is not reaching Recover")
			}
			break
		}
		crashes++
		seed := budget
		f3 := f2.reopen(t, nvm.CrashRandom, rand.New(rand.NewSource(seed)))
		st, err := f3.rt.Recover(f3.registry())
		if err != nil {
			t.Fatalf("budget %d seed %d: second recover: %v", budget, seed, err)
		}
		if st.Attempt == 0 {
			t.Fatalf("budget %d: second recover reports attempt 0", budget)
		}
		for i := 0; i < 2; i++ {
			if got := f3.reg.Dev.Load64(f3.ctr[i]); got != 6 {
				t.Fatalf("budget %d seed %d: counter %d = %d, want 6", budget, seed, i, got)
			}
			if !f3.lock[i].TryAcquire() {
				t.Fatalf("budget %d seed %d: lock %d still held after re-recovery", budget, seed, i)
			}
			f3.lock[i].Release()
		}
	}
	if crashes == 0 {
		t.Fatal("sweep never crashed")
	}
	t.Logf("swept %d recovery crash points", crashes)
}
