package core

import (
	"math/rand"
	"testing"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Region IDs for the test FASEs.
const (
	ridIncA = 0x101 // after lock acquire: read the counter
	ridIncB = 0x102 // store the incremented counter
	ridHoH1 = 0x111 // hand-over-hand chain, step 1
	ridHoH2 = 0x112
	ridDur  = 0x121 // durable-region FASE
)

// errCrash simulates the power failing at an injected point.
type errCrash struct{}

// crasher panics with errCrash at the k-th crash point.
type crasher struct{ k, n int }

func (c *crasher) point() {
	if c.n == c.k {
		panic(errCrash{})
	}
	c.n++
}

// fixture wires a region, lock manager, runtime, and a persistent counter
// at a root-published address, with one lock whose holder is also rooted.
type fixture struct {
	reg  *region.Region
	lm   *locks.Manager
	rt   *Runtime
	lock *locks.Lock
	ctr  uint64 // NVM address of the counter
}

const (
	rootCtr  = 1
	rootLock = 2
)

func newFixture(t *testing.T) *fixture {
	t.Helper()
	reg := region.Create(1<<18, nvm.Config{})
	lm := locks.NewManager(reg)
	rt := New(DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	lock, err := lm.Create()
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := reg.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	reg.Dev.Store64(ctr, 5)
	reg.Dev.CLWB(ctr)
	reg.Dev.Fence()
	reg.SetRoot(rootCtr, ctr)
	reg.SetRoot(rootLock, lock.Holder())
	return &fixture{reg: reg, lm: lm, rt: rt, lock: lock, ctr: ctr}
}

// reopen simulates process death + restart: crash the device, reattach,
// and build a fresh runtime + lock manager over the surviving bytes.
func (f *fixture) reopen(t *testing.T, mode nvm.CrashMode, rng *rand.Rand) *fixture {
	t.Helper()
	reg2, err := f.reg.Crash(mode, rng)
	if err != nil {
		t.Fatal(err)
	}
	lm2 := locks.NewManager(reg2)
	rt2 := New(DefaultConfig())
	if err := rt2.Attach(reg2, lm2); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		reg:  reg2,
		lm:   lm2,
		rt:   rt2,
		lock: lm2.ByHolder(reg2.Root(rootLock)),
		ctr:  reg2.Root(rootCtr),
	}
}

// registry returns resume entries for the increment FASE against this
// (post-recovery) fixture.
func (f *fixture) registry() *persist.ResumeRegistry {
	rr := persist.NewResumeRegistry()
	rr.Register(ridIncA, func(t persist.Thread, rf []uint64) {
		v := t.Load64(f.ctr)
		t.Boundary(ridIncB, persist.RV(0, v))
		t.Store64(f.ctr, v+1)
		t.Unlock(f.lock)
	})
	rr.Register(ridIncB, func(t persist.Thread, rf []uint64) {
		v := rf[0]
		t.Store64(f.ctr, v+1)
		t.Unlock(f.lock)
	})
	return rr
}

// incrementFASE performs one counter increment with crash points between
// every instrumented step.
func (f *fixture) incrementFASE(t persist.Thread, c *crasher) {
	c.point()
	t.Lock(f.lock)
	c.point()
	t.Boundary(ridIncA)
	c.point()
	v := t.Load64(f.ctr)
	c.point()
	t.Boundary(ridIncB, persist.RV(0, v))
	c.point()
	t.Store64(f.ctr, v+1)
	c.point()
	t.Unlock(f.lock)
	c.point()
}

func TestIncrementNoCrash(t *testing.T) {
	f := newFixture(t)
	th, err := f.rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	f.incrementFASE(th, &crasher{k: -1})
	if got := f.reg.Dev.Load64(f.ctr); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	s := f.rt.Stats()
	if s.FASEs != 1 {
		t.Fatalf("FASEs = %d, want 1", s.FASEs)
	}
	if s.Regions == 0 || s.Stores != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCrashAtEveryPointThenRecover(t *testing.T) {
	// At every injected crash point, post-recovery state must be
	// consistent: counter is 5 (FASE never took effect: crash before the
	// first post-acquire boundary published) or 6 (FASE completed,
	// possibly by resumption). Any other value breaks atomicity.
	for k := 0; k < 7; k++ {
		for _, mode := range []nvm.CrashMode{nvm.CrashDiscard, nvm.CrashRandom, nvm.CrashPersistAll} {
			f := newFixture(t)
			th, err := f.rt.NewThread()
			if err != nil {
				t.Fatal(err)
			}
			crashed := runWithCrash(func() { f.incrementFASE(th, &crasher{k: k}) })
			if !crashed && k < 7 && k != 6 {
				// point 6 is after the FASE; earlier points must fire.
				if k < 6 {
					t.Fatalf("k=%d: crash point did not fire", k)
				}
			}
			f2 := f.reopen(t, mode, rand.New(rand.NewSource(int64(k))))
			stats, err := f2.rt.Recover(f2.registry())
			if err != nil {
				t.Fatalf("k=%d mode=%v: recover: %v", k, mode, err)
			}
			got := f2.reg.Dev.Load64(f2.ctr)
			if got != 5 && got != 6 {
				t.Fatalf("k=%d mode=%v: counter = %d, want 5 or 6", k, mode, got)
			}
			// Once the first boundary inside the FASE has been published
			// (k >= 2 means Boundary(ridIncA) completed), resumption must
			// finish the FASE: counter must be 6.
			if k >= 2 && got != 6 {
				t.Fatalf("k=%d mode=%v: interrupted FASE not completed: counter = %d", k, mode, got)
			}
			// After recovery the lock must be free.
			if !f2.lock.TryAcquire() {
				t.Fatalf("k=%d: lock still held after recovery", k)
			}
			f2.lock.Release()
			_ = stats
		}
	}
}

func runWithCrash(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(errCrash); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	fn()
	return false
}

func TestRepeatedCrashesDuringRecovery(t *testing.T) {
	// Crash, partially recover is not modeled (recovery here runs to
	// completion), but repeated crash/recover cycles over many FASEs must
	// keep the counter consistent with the number of completed FASEs.
	f := newFixture(t)
	rng := rand.New(rand.NewSource(99))
	completed := uint64(0)
	for round := 0; round < 25; round++ {
		th, err := f.rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		k := rng.Intn(8) // sometimes no crash (k=7 beyond last point)
		crashed := runWithCrash(func() { f.incrementFASE(th, &crasher{k: k}) })
		if !crashed {
			completed++
			// Clean run; no recovery needed, but run it anyway: it must
			// be a no-op.
		}
		f = f.reopen(t, nvm.CrashRandom, rng)
		if _, err := f.rt.Recover(f.registry()); err != nil {
			t.Fatal(err)
		}
		got := f.reg.Dev.Load64(f.ctr)
		if crashed {
			// Crash may or may not have reached the first boundary.
			if got != 5+completed && got != 5+completed+1 {
				t.Fatalf("round %d: counter = %d, completed = %d", round, got, completed)
			}
			completed = got - 5
		} else if got != 5+completed {
			t.Fatalf("round %d: counter = %d, want %d", round, got, 5+completed)
		}
	}
}

func TestHandOverHandCrashRecovery(t *testing.T) {
	// A FASE that holds lock1, acquires lock2, releases lock1, writes,
	// releases lock2 (Fig. 2b). Crash after the cross-over; recovery must
	// reacquire only lock2 and complete the FASE.
	reg := region.Create(1<<18, nvm.Config{})
	lm := locks.NewManager(reg)
	rt := New(DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	l1, _ := lm.Create()
	l2, _ := lm.Create()
	cell, _ := reg.Alloc.Alloc(8)
	reg.SetRoot(1, cell)
	reg.SetRoot(2, l1.Holder())
	reg.SetRoot(3, l2.Holder())

	th, _ := rt.NewThread()
	crashed := runWithCrash(func() {
		th.Lock(l1)
		th.Boundary(ridHoH1)
		th.Lock(l2)
		th.Boundary(ridHoH2)
		th.Unlock(l1)
		panic(errCrash{}) // crash holding only l2, mid-region ridHoH2
	})
	if !crashed {
		t.Fatal("crash did not fire")
	}

	reg2, err := reg.Crash(nvm.CrashRandom, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	lm2 := locks.NewManager(reg2)
	rt2 := New(DefaultConfig())
	if err := rt2.Attach(reg2, lm2); err != nil {
		t.Fatal(err)
	}
	nl1 := lm2.ByHolder(reg2.Root(2))
	nl2 := lm2.ByHolder(reg2.Root(3))
	ncell := reg2.Root(1)

	rr := persist.NewResumeRegistry()
	rr.Register(ridHoH1, func(t persist.Thread, rf []uint64) {
		t.Lock(nl2)
		t.Boundary(ridHoH2)
		t.Unlock(nl1)
		t.Store64(ncell, 42)
		t.Unlock(nl2)
	})
	rr.Register(ridHoH2, func(t persist.Thread, rf []uint64) {
		t.Unlock(nl1) // already released before the crash: must be a no-op
		t.Store64(ncell, 42)
		t.Unlock(nl2)
	})
	stats, err := rt2.Recover(rr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 1 {
		t.Fatalf("resumed = %d, want 1", stats.Resumed)
	}
	if got := reg2.Dev.Load64(ncell); got != 42 {
		t.Fatalf("cell = %d, want 42", got)
	}
	if !nl1.TryAcquire() || !nl2.TryAcquire() {
		t.Fatal("locks not free after recovery")
	}
}

func TestDurableRegionCrashRecovery(t *testing.T) {
	reg := region.Create(1<<18, nvm.Config{})
	lm := locks.NewManager(reg)
	rt := New(DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	cell, _ := reg.Alloc.Alloc(16)
	reg.SetRoot(1, cell)
	th, _ := rt.NewThread()
	crashed := runWithCrash(func() {
		th.BeginDurable()
		th.Boundary(ridDur, persist.RV(0, 7))
		th.Store64(cell, 7)
		panic(errCrash{}) // crash before the second store
	})
	if !crashed {
		t.Fatal("no crash")
	}
	reg2, err := reg.Crash(nvm.CrashDiscard, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2 := New(DefaultConfig())
	if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
		t.Fatal(err)
	}
	ncell := reg2.Root(1)
	rr := persist.NewResumeRegistry()
	rr.Register(ridDur, func(t persist.Thread, rf []uint64) {
		t.Store64(ncell, rf[0])
		t.Store64(ncell+8, rf[0]*2)
		t.EndDurable()
	})
	if _, err := rt2.Recover(rr); err != nil {
		t.Fatal(err)
	}
	if a, b := reg2.Dev.Load64(ncell), reg2.Dev.Load64(ncell+8); a != 7 || b != 14 {
		t.Fatalf("cells = %d,%d want 7,14", a, b)
	}
}

func TestRobbedLockWindowIsScrubbed(t *testing.T) {
	// Crash after Lock() persisted the slot but before the post-acquire
	// boundary: recovery must not resume anything and must scrub the
	// stale slot so a second recovery is clean.
	f := newFixture(t)
	th, _ := f.rt.NewThread()
	crashed := runWithCrash(func() { f.incrementFASE(th, &crasher{k: 1}) })
	if !crashed {
		t.Fatal("no crash")
	}
	f2 := f.reopen(t, nvm.CrashPersistAll, nil)
	stats, err := f2.rt.Recover(f2.registry())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 0 {
		t.Fatalf("resumed = %d, want 0", stats.Resumed)
	}
	// The scrub must itself be durable.
	f3 := f2.reopen(t, nvm.CrashDiscard, nil)
	if got := f3.reg.Dev.Load64(f3.ctr); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if _, err := f3.rt.Recover(f3.registry()); err != nil {
		t.Fatal(err)
	}
}

func TestMissingResumeEntryIsAnError(t *testing.T) {
	f := newFixture(t)
	th, _ := f.rt.NewThread()
	runWithCrash(func() { f.incrementFASE(th, &crasher{k: 3}) })
	f2 := f.reopen(t, nvm.CrashPersistAll, nil)
	empty := persist.NewResumeRegistry()
	if _, err := f2.rt.Recover(empty); err == nil {
		t.Fatal("Recover succeeded with no resume entries")
	}
}

func TestBoundaryValidation(t *testing.T) {
	f := newFixture(t)
	th, _ := f.rt.NewThread()
	for _, bad := range []uint64{0, 1 << 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Boundary(%#x) did not panic", bad)
				}
			}()
			th.Boundary(bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("too many outputs did not panic")
			}
		}()
		th.Boundary(ridIncA, tooMany()...)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range register slot did not panic")
			}
		}()
		th.Boundary(ridIncA, persist.RV(persist.MaxOutputs, 1))
	}()
}

// tooMany builds one more output than a region may log.
func tooMany() []persist.RegVal {
	out := make([]persist.RegVal, persist.MaxOutputs+1)
	for i := range out {
		out[i] = persist.RV(i%persist.MaxOutputs, uint64(i))
	}
	return out
}

func TestUnlockNotHeldPanics(t *testing.T) {
	f := newFixture(t)
	th, _ := f.rt.NewThread()
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unheld lock did not panic")
		}
	}()
	th.Unlock(f.lock)
}

func TestPersistCoalescingFlushCounts(t *testing.T) {
	// With coalescing, 8 outputs fit one line: the boundary should issue
	// far fewer flushes than the no-coalescing configuration.
	count := func(cfg Config) uint64 {
		reg := region.Create(1<<18, nvm.Config{})
		lm := locks.NewManager(reg)
		rt := New(cfg)
		if err := rt.Attach(reg, lm); err != nil {
			t.Fatal(err)
		}
		th, _ := rt.NewThread()
		th.BeginDurable()
		reg.Dev.ResetStats()
		out := make([]persist.RegVal, 8)
		for i := range out {
			out[i] = persist.RV(i, uint64(i))
		}
		for i := 0; i < 100; i++ {
			th.Boundary(ridDur, out...)
		}
		flushes := reg.Dev.Stats().Flushes
		th.EndDurable()
		return flushes
	}
	with := count(Config{Coalesce: true})
	without := count(Config{Coalesce: false})
	if with*4 > without {
		t.Fatalf("coalescing saved too little: with=%d without=%d", with, without)
	}
}

func TestMultiThreadFASEs(t *testing.T) {
	f := newFixture(t)
	const workers = 8
	const each = 50
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		th, err := f.rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		go func(th persist.Thread) {
			for i := 0; i < each; i++ {
				f.incrementFASE(th, &crasher{k: -1})
			}
			done <- nil
		}(th)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := f.reg.Dev.Load64(f.ctr); got != 5+workers*each {
		t.Fatalf("counter = %d, want %d", got, 5+workers*each)
	}
	s := f.rt.Stats()
	if s.FASEs != workers*each {
		t.Fatalf("FASEs = %d, want %d", s.FASEs, workers*each)
	}
}

func TestStatsHistograms(t *testing.T) {
	f := newFixture(t)
	th, _ := f.rt.NewThread()
	f.incrementFASE(th, &crasher{k: -1})
	s := f.rt.Stats()
	// Two regions: ridIncA (0 stores, 0 outputs) and ridIncB (1 store, 1
	// output).
	if s.StoresPerRegion[0] != 1 || s.StoresPerRegion[1] != 1 {
		t.Fatalf("stores histogram = %v", s.StoresPerRegion[:4])
	}
	if s.OutputsPerRegion[0] != 1 || s.OutputsPerRegion[1] != 1 {
		t.Fatalf("outputs histogram = %v", s.OutputsPerRegion[:4])
	}
}

// TestSlotProbe drives the bit-guided lock_array probe through fill,
// out-of-order release, and reuse: slotOf must find every held holder,
// freeSlot must always hand out the lowest empty index, and the
// slots/bits mirrors must stay consistent throughout.
func TestSlotProbe(t *testing.T) {
	reg := region.Create(1<<20, nvm.Config{})
	lm := locks.NewManager(reg)
	rt := New(DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	pt, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	th := pt.(*Thread)

	var ls []*locks.Lock
	for i := 0; i < numSlots; i++ {
		l, err := lm.Create()
		if err != nil {
			t.Fatal(err)
		}
		ls = append(ls, l)
	}

	check := func() {
		t.Helper()
		for i := 0; i < numSlots; i++ {
			live := th.bits&(1<<uint(i)) != 0
			if live != (th.slots[i] != 0) {
				t.Fatalf("slot %d: bits=%v slots=%#x disagree", i, live, th.slots[i])
			}
			if th.slots[i] != 0 && th.slotOf(th.slots[i]) != i {
				t.Fatalf("slotOf(%#x) = %d, want %d", th.slots[i], th.slotOf(th.slots[i]), i)
			}
		}
	}

	// Fill all 16 slots.
	for i, l := range ls {
		if got := th.freeSlot(); got != i {
			t.Fatalf("freeSlot before lock %d = %d", i, got)
		}
		th.Lock(l)
		check()
	}
	if th.freeSlot() != -1 {
		t.Fatal("freeSlot on a full array should be -1")
	}
	for _, l := range ls {
		if th.slotOf(l.Holder()) < 0 {
			t.Fatalf("held lock %#x not found", l.Holder())
		}
	}
	if th.slotOf(0xdeadbeef) != -1 {
		t.Fatal("slotOf of an unheld holder should be -1")
	}

	// Release the even slots; freeSlot must reuse the lowest hole.
	for i := 0; i < numSlots; i += 2 {
		th.Unlock(ls[i])
		check()
	}
	if got := th.freeSlot(); got != 0 {
		t.Fatalf("freeSlot after releasing slot 0 = %d", got)
	}
	th.Lock(ls[0])
	check()
	if th.slotOf(ls[0].Holder()) != 0 {
		t.Fatal("relock should land in slot 0")
	}
	if got := th.freeSlot(); got != 2 {
		t.Fatalf("next freeSlot = %d, want 2", got)
	}

	// Drain completely.
	th.Unlock(ls[0])
	for i := 1; i < numSlots; i += 2 {
		th.Unlock(ls[i])
		check()
	}
	if th.bits != 0 {
		t.Fatalf("bits = %#x after releasing everything", th.bits)
	}
}
