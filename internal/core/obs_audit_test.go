package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/region"
)

// newTracedFixture is newFixture with a tracer attached at device birth.
func newTracedFixture(t *testing.T, tr *obs.Tracer) *fixture {
	t.Helper()
	reg := region.Create(1<<18, nvm.Config{Tracer: tr})
	lm := locks.NewManager(reg)
	rt := New(DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatal(err)
	}
	lock, err := lm.Create()
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := reg.Alloc.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	reg.Dev.Store64(ctr, 5)
	reg.Dev.CLWB(ctr)
	reg.Dev.Fence()
	reg.SetRoot(rootCtr, ctr)
	reg.SetRoot(rootLock, lock.Holder())
	return &fixture{reg: reg, lm: lm, rt: rt, lock: lock, ctr: ctr}
}

// TestTracedFASECountsMatchDevice runs increments on a traced native
// runtime and checks the per-kind event counts equal the device stats,
// and that the FASE-level events landed.
func TestTracedFASECountsMatchDevice(t *testing.T) {
	tr := obs.New(obs.DefaultConfig())
	f := newTracedFixture(t, tr)
	th, err := f.rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f.incrementFASE(th, &crasher{k: -1})
	}
	ds := f.reg.Dev.Stats()
	for _, c := range []struct {
		kind obs.Kind
		want uint64
	}{
		{obs.KFlush, ds.Flushes},
		{obs.KFence, ds.Fences},
		{obs.KNTStore, ds.NTStores},
		{obs.KEvict, ds.Evictions},
	} {
		if got := tr.Count(c.kind); got != c.want {
			t.Errorf("traced %s count %d != device count %d", c.kind, got, c.want)
		}
	}
	if got := tr.Count(obs.KFASE); got != 10 {
		t.Errorf("traced %d FASE spans, want 10", got)
	}
	if got := tr.Count(obs.KLockAcq); got != 10 {
		t.Errorf("traced %d lock acquisitions, want 10", got)
	}
	if s := tr.Hist(obs.HLogBytesPerFASE); s.Count != 10 {
		t.Errorf("log-bytes histogram has %d samples, want 10", s.Count)
	}
}

// TestRecoveryAuditAtEveryPoint replays the crash sweep and checks the
// audit trail agrees with what recovery actually did at each point.
func TestRecoveryAuditAtEveryPoint(t *testing.T) {
	for k := 0; k < 7; k++ {
		f := newFixture(t)
		th, err := f.rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		runWithCrash(func() { f.incrementFASE(th, &crasher{k: k}) })
		f2 := f.reopen(t, nvm.CrashDiscard, rand.New(rand.NewSource(int64(k))))
		st, err := f2.rt.Recover(f2.registry())
		if err != nil {
			t.Fatalf("k=%d: recover: %v", k, err)
		}
		if st.Audit == nil {
			t.Fatalf("k=%d: recovery returned no audit", k)
		}
		if st.Audit.Runtime != "ido" {
			t.Fatalf("k=%d: audit runtime = %q, want ido", k, st.Audit.Runtime)
		}
		if got := len(st.Audit.Threads); got != int(st.Threads) {
			t.Fatalf("k=%d: audit has %d threads, stats counted %d", k, got, st.Threads)
		}
		if got := st.Audit.Resumed(); got != st.Resumed {
			t.Fatalf("k=%d: audit counts %d resumed, stats %d", k, got, st.Resumed)
		}
		for _, ta := range st.Audit.Threads {
			switch ta.Action {
			case obs.AuditResumed:
				if ta.RegionID != ridIncA && ta.RegionID != ridIncB {
					t.Fatalf("k=%d: resumed unknown region %#x", k, ta.RegionID)
				}
				if len(ta.Locks) != 1 {
					t.Fatalf("k=%d: resumed with %d locks, want 1", k, len(ta.Locks))
				}
				if ta.WordsRestored == 0 {
					t.Fatalf("k=%d: resumed but restored no words", k)
				}
			case obs.AuditIdle, obs.AuditScrubbed:
				if ta.RegionID != 0 {
					t.Fatalf("k=%d: %s log carries region %#x", k, ta.Action, ta.RegionID)
				}
			default:
				t.Fatalf("k=%d: unexpected audit action %q", k, ta.Action)
			}
		}
		// Crash points 2..5 are after Boundary(ridIncA) published: the log
		// must show a mid-FASE region and recovery must resume it.
		if k >= 2 && k <= 5 && st.Audit.Resumed() != 1 {
			t.Fatalf("k=%d: crash mid-FASE but audit shows %d resumed", k, st.Audit.Resumed())
		}
		// Before the first boundary (k=0,1) or after unlock (k=6) nothing
		// can be resumed.
		if (k < 2 || k > 5) && st.Audit.Resumed() != 0 {
			t.Fatalf("k=%d: nothing mid-FASE but audit shows %d resumed", k, st.Audit.Resumed())
		}
		// The report must render and name the runtime.
		if rpt := st.Audit.String(); !strings.Contains(rpt, "recovery audit (ido") {
			t.Fatalf("k=%d: audit report missing header: %q", k, rpt)
		}
	}
}

// TestRecoveryIsTracedWhenTracerAttached attaches a tracer to the
// surviving device before recovery and checks the recovery phases and
// lock re-acquisitions show up in the trace.
func TestRecoveryIsTracedWhenTracerAttached(t *testing.T) {
	f := newFixture(t)
	th, err := f.rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	runWithCrash(func() { f.incrementFASE(th, &crasher{k: 3}) }) // mid-FASE
	f2 := f.reopen(t, nvm.CrashDiscard, rand.New(rand.NewSource(3)))
	tr := obs.New(obs.DefaultConfig())
	f2.reg.Dev.SetTracer(tr)
	st, err := f2.rt.Recover(f2.registry())
	if err != nil {
		t.Fatal(err)
	}
	if st.Resumed != 1 {
		t.Fatalf("resumed %d FASEs, want 1", st.Resumed)
	}
	if got := tr.Count(obs.KRecovery); got < 2 {
		t.Fatalf("traced %d recovery phase spans, want >= 2 (scan + resume)", got)
	}
	if got := tr.Count(obs.KLockAcq); got == 0 {
		t.Fatal("recovery re-acquired a lock but traced no lock-acquire event")
	}
}
