package bench

import "fmt"

// RunAll regenerates every experiment in DESIGN.md's index in order.
func RunAll(o Options) error {
	type step struct {
		name string
		run  func() error
	}
	steps := []step{
		{"fig5", func() error { _, err := RunFig5(o); return err }},
		{"fig6", func() error { _, err := RunFig6(o); return err }},
		{"fig7", func() error { _, err := RunFig7(o); return err }},
		{"fig8", func() error { _, err := RunFig8(o); return err }},
		{"table1", func() error { _, err := RunTable1(o); return err }},
		{"fig9", func() error { _, err := RunFig9(o); return err }},
		{"ablations", func() error { _, err := RunAblations(o); return err }},
		{"vm", func() error { _, err := RunVM(o); return err }},
		{"alloc", func() error { _, err := RunAlloc(o); return err }},
		{"gc", func() error { _, err := RunGroupCommit(o); return err }},
		{"server", func() error { _, err := RunServer(o); return err }},
		{"serverread", func() error { _, err := RunServerReadPath(o); return err }},
	}
	for _, s := range steps {
		fprintf(o.out(), "==== %s ====\n", s.name)
		if err := s.run(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}
