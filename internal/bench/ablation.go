package bench

import (
	"fmt"
	"math/rand"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ds"
	"github.com/ido-nvm/ido/internal/idem"
	"github.com/ido-nvm/ido/internal/irprog"
	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/stats"
	"github.com/ido-nvm/ido/internal/vm"
)

// AblationResult summarizes one design-choice experiment from DESIGN.md.
type AblationResult struct {
	Name   string
	Labels []string
	Values []float64
	Unit   string
}

// RunAblations measures the three design choices DESIGN.md calls out:
// persist coalescing (§IV-B), the single-fence indirect-lock protocol
// (§III-B) versus JUSTDO's two-fence protocol, and idempotent-region
// granularity versus degenerate per-store regions.
func RunAblations(o Options) ([]AblationResult, error) {
	var out []AblationResult

	// 1. Persist coalescing: write-backs per Memcached set with and
	// without packing register slots into shared cache lines (§IV-B).
	// Measured as a deterministic event count rather than throughput.
	coal := AblationResult{Name: "persist-coalescing (write-backs per memcached set)", Unit: "clwb/op"}
	for _, name := range []string{"ido", "ido-nocoalesce"} {
		fpo, err := flushesPerSet(o, mkSpec(name))
		if err != nil {
			return nil, err
		}
		coal.Labels = append(coal.Labels, name)
		coal.Values = append(coal.Values, fpo)
	}
	out = append(out, coal)

	// 2. Lock protocol: persist fences per lock-dominated operation
	// (ordered-list get) under iDO's single-fence indirect locking vs
	// JUSTDO's two-fence intention/ownership protocol.
	lockAbl := AblationResult{Name: "lock protocol (fences per list get)", Unit: "fences/op"}
	for _, name := range []string{"ido", "justdo"} {
		fpo, err := fencesPerListGet(o, mkSpec(name))
		if err != nil {
			return nil, err
		}
		lockAbl.Labels = append(lockAbl.Labels, name)
		lockAbl.Values = append(lockAbl.Values, fpo)
	}
	out = append(out, lockAbl)

	// 3. Region granularity: the VM runs mc_set traffic with normal
	// hitting-set regions vs forced per-store cuts (a JUSTDO-shaped
	// degenerate partition) and reports log operations per op.
	gran := AblationResult{Name: "region granularity (log ops per mc_set)", Unit: "log-ops/op"}
	for _, cfg := range []struct {
		label string
		c     compile.Config
	}{
		{"hitting-set", compile.Config{}},
		{"per-store", compile.Config{Idem: idem.Config{MaxStoresPerRegion: 1}}},
	} {
		lpo, err := logOpsPerSet(o, cfg.c)
		if err != nil {
			return nil, err
		}
		gran.Labels = append(gran.Labels, cfg.label)
		gran.Values = append(gran.Values, lpo)
	}
	out = append(out, gran)

	printAblations(o, out)
	return out, nil
}

func flushesPerSet(o Options, sp spec) (float64, error) {
	w, err := newWorld(o, sp.mk, 0, o.Tracer)
	if err != nil {
		return 0, err
	}
	env := &memcache.Env{Reg: w.reg, LM: w.lm}
	c, _, err := memcache.New(env, 1<<10)
	if err != nil {
		return 0, err
	}
	th, err := w.rt.NewThread()
	if err != nil {
		return 0, err
	}
	for k := uint64(1); k <= 512; k++ {
		c.Set(th, k, k^3, k)
	}
	w.reg.Dev.ResetStats()
	const ops = 500
	for k := uint64(1); k <= ops; k++ {
		c.Set(th, k, k^3, k*2)
	}
	return float64(w.reg.Dev.Stats().Flushes) / ops, nil
}

func fencesPerListGet(o Options, sp spec) (float64, error) {
	w, err := newWorld(o, sp.mk, 0, o.Tracer)
	if err != nil {
		return 0, err
	}
	env := &ds.Env{Reg: w.reg, LM: w.lm}
	l, _, err := ds.NewList(env)
	if err != nil {
		return 0, err
	}
	pre, err := w.rt.NewThread()
	if err != nil {
		return 0, err
	}
	for k := uint64(1); k <= 64; k++ {
		k := k
		pre.Exec(func() { l.Put(pre, k, k) })
	}
	th, err := w.rt.NewThread()
	if err != nil {
		return 0, err
	}
	w.reg.Dev.ResetStats()
	rng := rand.New(rand.NewSource(5))
	const ops = 500
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(64)) + 1
		th.Exec(func() { l.Get(th, k) })
	}
	return float64(w.reg.Dev.Stats().Fences) / ops, nil
}

func logOpsPerSet(o Options, cfg compile.Config) (float64, error) {
	prog, err := irprog.Compile(cfg)
	if err != nil {
		return 0, err
	}
	reg := region.Create(1<<25, nvmConfig(1<<25, 0))
	lm := locks.NewManager(reg)
	m := vm.New(reg, lm, prog, vm.ModeIDO)
	tb, err := irprog.NewKVTable(reg, lm, 64, true)
	if err != nil {
		return 0, err
	}
	th, err := m.NewThread()
	if err != nil {
		return 0, err
	}
	const ops = 500
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(256)) + 1
		if _, err := th.Call("mc_set", tb, k, k); err != nil {
			return 0, err
		}
	}
	return float64(m.Stats().LoggedEntries) / ops, nil
}

func printAblations(o Options, rows []AblationResult) {
	out := o.out()
	for _, r := range rows {
		fprintf(out, "Ablation: %s\n", r.Name)
		var tb stats.Table
		for i, l := range r.Labels {
			tb.AddRow(l, fmt.Sprintf("%.3f %s", r.Values[i], r.Unit))
		}
		fprintf(out, "%s\n", tb.String())
	}
}
