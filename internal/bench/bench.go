// Package bench regenerates every table and figure of the iDO paper's
// evaluation (§V): Memcached throughput (Fig. 5), Redis throughput
// (Fig. 6), the data-structure microbenchmarks (Fig. 7), region
// characteristics (Fig. 8), recovery-time ratios (Table I), NVM-latency
// sensitivity (Fig. 9), and the ablations called out in DESIGN.md. Each
// driver prints the same rows/series the paper reports; absolute numbers
// depend on the simulated NVM substrate, but the shapes — who wins, by
// roughly what factor, where the crossovers fall — are the reproduction
// target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ido-nvm/ido/internal/baselines/atlas"
	"github.com/ido-nvm/ido/internal/baselines/justdo"
	"github.com/ido-nvm/ido/internal/baselines/mnemosyne"
	"github.com/ido-nvm/ido/internal/baselines/nvml"
	"github.com/ido-nvm/ido/internal/baselines/nvthreads"
	"github.com/ido-nvm/ido/internal/baselines/origin"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Options configures a benchmark run.
type Options struct {
	// Duration is the measurement interval per data point.
	Duration time.Duration
	// Threads is the worker-count sweep (Fig. 5/7 x axis).
	Threads []int
	// DeviceBytes sizes the simulated NVM per data point.
	DeviceBytes int
	// Out receives the printed rows; nil discards them.
	Out io.Writer
	// Quick shrinks every parameter for smoke tests.
	Quick bool
	// Tracer, when non-nil, is attached to every device the run creates,
	// so persist events from all data points land in one trace.
	Tracer *obs.Tracer
	// Seed drives every nvm.CrashRandom settle the run performs (Table
	// I's post-kill crash), so a failure can be replayed with the seed
	// its error message names. Zero means 1.
	Seed int64
	// Workers bounds how many independent figure points run concurrently
	// (each point owns its own world, so points share nothing). 0 or 1
	// runs points serially — the accurate-measurement default, since a
	// co-scheduled point steals cycles from the one being timed; raise it
	// to overlap construction and warm-up when sweeping a large grid.
	// Crash-injection experiments (Table I, recovery ablations) ignore it
	// and stay serial: the injection arming is process-global.
	Workers int
	// WorldTracer, when non-nil, supplies the tracer for each world from
	// the point's label (e.g. "fig5a/ido/t4"), so a parallel sweep can
	// give every world its own trace instead of interleaving one shared
	// Tracer. When nil, the shared Tracer is used.
	WorldTracer func(label string) *obs.Tracer
	// GroupCommit runs every world's device with the cross-thread
	// flush/fence combiner enabled, and GroupWindowNS sets the elected
	// leader's batching dwell (0 = serve only what is already published).
	GroupCommit   bool
	GroupWindowNS int
}

// seed returns the run seed with the zero-value default applied.
func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// workers returns the point-level concurrency bound (at least 1).
func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// tracer resolves the device tracer for the point labelled label.
func (o Options) tracer(label string) *obs.Tracer {
	if o.WorldTracer != nil {
		return o.WorldTracer(label)
	}
	return o.Tracer
}

// DefaultOptions mirrors the paper's setup, scaled to a simulator: the
// paper sweeps 1-64 threads on a 64-core machine; we sweep to
// min(64, 4*GOMAXPROCS) and note oversubscription in EXPERIMENTS.md.
func DefaultOptions() Options {
	maxT := 4 * runtime.GOMAXPROCS(0)
	if maxT > 64 {
		maxT = 64
	}
	var sweep []int
	for n := 1; n <= maxT; n *= 2 {
		sweep = append(sweep, n)
	}
	return Options{
		Duration:    300 * time.Millisecond,
		Threads:     sweep,
		DeviceBytes: 1 << 28,
		Quick:       false,
	}
}

// QuickOptions returns a seconds-scale smoke configuration used by the
// test suite and `idobench -quick`.
func QuickOptions() Options {
	return Options{
		Duration:    60 * time.Millisecond,
		Threads:     []int{1, 2, 4},
		DeviceBytes: 1 << 24,
		Quick:       true,
	}
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// nvmConfig is the baseline persistence cost model, following §V's
// clflush+sfence ADR approximation: issuing a write-back is cheap (~50 ns
// to hand the line to the controller), the persist fence pays the
// round-trip wait that drains outstanding write-backs (~400 ns, within
// the measured fence-to-persistence range of Optane-era parts), and a
// non-temporal store costs ~150 ns. These deliberately sit well above the
// simulator's per-access bookkeeping (~60 ns) so that modeled persistence
// costs — fence and flush counts — dominate relative results, as they do
// on hardware; see EXPERIMENTS.md. extraNS is the Fig. 9 knob: an added
// delay charged at each write-back and NT store, exactly where the paper
// inserts its nop loops.
func nvmConfig(bytes, extraNS int) nvm.Config {
	return nvm.Config{
		Size:      bytes,
		FlushNS:   50,
		FenceNS:   400,
		NTStoreNS: 150,
		ExtraNS:   extraNS,
	}
}

// world is one benchmark universe: a region, lock manager, and runtime.
type world struct {
	reg *region.Region
	lm  *locks.Manager
	rt  persist.Runtime
}

func newWorld(o Options, mk func() persist.Runtime, extraNS int, tr *obs.Tracer) (*world, error) {
	cfg := nvmConfig(o.DeviceBytes, extraNS)
	cfg.Tracer = tr // attach at birth so trace counts equal device stats
	if o.GroupCommit {
		cfg.GroupCommit = nvm.GroupCommitConfig{Enabled: true, WindowNS: o.GroupWindowNS}
	}
	return newWorldCfg(mk, o.DeviceBytes, cfg)
}

// newWorldCfg builds a world over an explicit device configuration, for
// experiments that vary the cost model itself.
func newWorldCfg(mk func() persist.Runtime, bytes int, cfg nvm.Config) (*world, error) {
	reg := region.Create(bytes, cfg)
	lm := locks.NewManager(reg)
	rt := mk()
	if err := rt.Attach(reg, lm); err != nil {
		return nil, err
	}
	return &world{reg: reg, lm: lm, rt: rt}, nil
}

// spec names one runtime configuration under benchmark.
type spec struct {
	name string
	mk   func() persist.Runtime
}

func mkSpec(name string) spec {
	switch name {
	case "origin":
		return spec{name, func() persist.Runtime { return origin.New() }}
	case "ido":
		return spec{name, func() persist.Runtime { return core.New(core.DefaultConfig()) }}
	case "ido-nocoalesce":
		return spec{name, func() persist.Runtime { return core.New(core.Config{Coalesce: false}) }}
	case "justdo":
		return spec{name, func() persist.Runtime { return justdo.New() }}
	case "atlas":
		return spec{name, func() persist.Runtime { return atlas.New(atlas.Config{}) }}
	case "atlas-retain":
		return spec{name, func() persist.Runtime { return atlas.New(atlas.Config{Retain: true}) }}
	case "mnemosyne":
		return spec{name, func() persist.Runtime { return mnemosyne.New() }}
	case "nvthreads":
		return spec{name, func() persist.Runtime { return nvthreads.New() }}
	case "nvml":
		return spec{name, func() persist.Runtime { return nvml.New() }}
	}
	panic("bench: unknown runtime " + name)
}

func specs(names ...string) []spec {
	out := make([]spec, len(names))
	for i, n := range names {
		out[i] = mkSpec(n)
	}
	return out
}

// measure runs nThreads workers for d against per-thread op closures and
// returns total completed operations. setup(i) builds worker i's op
// function (bound to its persist.Thread); every op is wrapped in Exec so
// speculative runtimes can retry.
func measure(w *world, nThreads int, d time.Duration,
	setup func(i int, t persist.Thread) func()) (uint64, error) {
	// Collect garbage from the previous point's device before timing:
	// a GC pause inside a short measurement window would otherwise swamp
	// the signal.
	runtime.GC()
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	threads := make([]persist.Thread, nThreads)
	ops := make([]func(), nThreads)
	for i := 0; i < nThreads; i++ {
		t, err := w.rt.NewThread()
		if err != nil {
			return 0, err
		}
		threads[i] = t
		ops[i] = setup(i, t)
	}
	for i := 0; i < nThreads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t := threads[i]
			op := ops[i]
			n := uint64(0)
			for !stop.Load() {
				t.Exec(op)
				n++
			}
			total.Add(n)
		}(i)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return total.Load(), nil
}

// runPoints executes jobs 0..n-1 through a bounded pool of o.workers()
// goroutines and returns the first error encountered (remaining queued
// jobs are skipped once a worker fails). Each job owns its own world, so
// jobs are independent; callers capture per-job results by index inside
// run and fold them into figures afterwards, in deterministic job order —
// stats.Figure.Add is not safe for concurrent use and series order is
// part of the printed output.
func runPoints(o Options, n int, run func(i int) error) error {
	workers := o.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if err := run(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

func fprintf(out io.Writer, format string, args ...any) {
	fmt.Fprintf(out, format, args...)
}
