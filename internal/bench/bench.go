// Package bench regenerates every table and figure of the iDO paper's
// evaluation (§V): Memcached throughput (Fig. 5), Redis throughput
// (Fig. 6), the data-structure microbenchmarks (Fig. 7), region
// characteristics (Fig. 8), recovery-time ratios (Table I), NVM-latency
// sensitivity (Fig. 9), and the ablations called out in DESIGN.md. Each
// driver prints the same rows/series the paper reports; absolute numbers
// depend on the simulated NVM substrate, but the shapes — who wins, by
// roughly what factor, where the crossovers fall — are the reproduction
// target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ido-nvm/ido/internal/baselines/atlas"
	"github.com/ido-nvm/ido/internal/baselines/justdo"
	"github.com/ido-nvm/ido/internal/baselines/mnemosyne"
	"github.com/ido-nvm/ido/internal/baselines/nvml"
	"github.com/ido-nvm/ido/internal/baselines/nvthreads"
	"github.com/ido-nvm/ido/internal/baselines/origin"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Options configures a benchmark run.
type Options struct {
	// Duration is the measurement interval per data point.
	Duration time.Duration
	// Threads is the worker-count sweep (Fig. 5/7 x axis).
	Threads []int
	// DeviceBytes sizes the simulated NVM per data point.
	DeviceBytes int
	// Out receives the printed rows; nil discards them.
	Out io.Writer
	// Quick shrinks every parameter for smoke tests.
	Quick bool
	// Tracer, when non-nil, is attached to every device the run creates,
	// so persist events from all data points land in one trace.
	Tracer *obs.Tracer
	// Seed drives every nvm.CrashRandom settle the run performs (Table
	// I's post-kill crash), so a failure can be replayed with the seed
	// its error message names. Zero means 1.
	Seed int64
}

// seed returns the run seed with the zero-value default applied.
func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// DefaultOptions mirrors the paper's setup, scaled to a simulator: the
// paper sweeps 1-64 threads on a 64-core machine; we sweep to
// min(64, 4*GOMAXPROCS) and note oversubscription in EXPERIMENTS.md.
func DefaultOptions() Options {
	maxT := 4 * runtime.GOMAXPROCS(0)
	if maxT > 64 {
		maxT = 64
	}
	var sweep []int
	for n := 1; n <= maxT; n *= 2 {
		sweep = append(sweep, n)
	}
	return Options{
		Duration:    300 * time.Millisecond,
		Threads:     sweep,
		DeviceBytes: 1 << 28,
		Quick:       false,
	}
}

// QuickOptions returns a seconds-scale smoke configuration used by the
// test suite and `idobench -quick`.
func QuickOptions() Options {
	return Options{
		Duration:    60 * time.Millisecond,
		Threads:     []int{1, 2, 4},
		DeviceBytes: 1 << 24,
		Quick:       true,
	}
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// nvmConfig is the baseline persistence cost model, following §V's
// clflush+sfence ADR approximation: issuing a write-back is cheap (~50 ns
// to hand the line to the controller), the persist fence pays the
// round-trip wait that drains outstanding write-backs (~400 ns, within
// the measured fence-to-persistence range of Optane-era parts), and a
// non-temporal store costs ~150 ns. These deliberately sit well above the
// simulator's per-access bookkeeping (~60 ns) so that modeled persistence
// costs — fence and flush counts — dominate relative results, as they do
// on hardware; see EXPERIMENTS.md. extraNS is the Fig. 9 knob: an added
// delay charged at each write-back and NT store, exactly where the paper
// inserts its nop loops.
func nvmConfig(bytes, extraNS int) nvm.Config {
	return nvm.Config{
		Size:      bytes,
		FlushNS:   50,
		FenceNS:   400,
		NTStoreNS: 150,
		ExtraNS:   extraNS,
	}
}

// world is one benchmark universe: a region, lock manager, and runtime.
type world struct {
	reg *region.Region
	lm  *locks.Manager
	rt  persist.Runtime
}

func newWorld(mk func() persist.Runtime, bytes, extraNS int, tr *obs.Tracer) (*world, error) {
	cfg := nvmConfig(bytes, extraNS)
	cfg.Tracer = tr // attach at birth so trace counts equal device stats
	reg := region.Create(bytes, cfg)
	lm := locks.NewManager(reg)
	rt := mk()
	if err := rt.Attach(reg, lm); err != nil {
		return nil, err
	}
	return &world{reg: reg, lm: lm, rt: rt}, nil
}

// spec names one runtime configuration under benchmark.
type spec struct {
	name string
	mk   func() persist.Runtime
}

func mkSpec(name string) spec {
	switch name {
	case "origin":
		return spec{name, func() persist.Runtime { return origin.New() }}
	case "ido":
		return spec{name, func() persist.Runtime { return core.New(core.DefaultConfig()) }}
	case "ido-nocoalesce":
		return spec{name, func() persist.Runtime { return core.New(core.Config{Coalesce: false}) }}
	case "justdo":
		return spec{name, func() persist.Runtime { return justdo.New() }}
	case "atlas":
		return spec{name, func() persist.Runtime { return atlas.New(atlas.Config{}) }}
	case "atlas-retain":
		return spec{name, func() persist.Runtime { return atlas.New(atlas.Config{Retain: true}) }}
	case "mnemosyne":
		return spec{name, func() persist.Runtime { return mnemosyne.New() }}
	case "nvthreads":
		return spec{name, func() persist.Runtime { return nvthreads.New() }}
	case "nvml":
		return spec{name, func() persist.Runtime { return nvml.New() }}
	}
	panic("bench: unknown runtime " + name)
}

func specs(names ...string) []spec {
	out := make([]spec, len(names))
	for i, n := range names {
		out[i] = mkSpec(n)
	}
	return out
}

// measure runs nThreads workers for d against per-thread op closures and
// returns total completed operations. setup(i) builds worker i's op
// function (bound to its persist.Thread); every op is wrapped in Exec so
// speculative runtimes can retry.
func measure(w *world, nThreads int, d time.Duration,
	setup func(i int, t persist.Thread) func()) (uint64, error) {
	// Collect garbage from the previous point's device before timing:
	// a GC pause inside a short measurement window would otherwise swamp
	// the signal.
	runtime.GC()
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	threads := make([]persist.Thread, nThreads)
	ops := make([]func(), nThreads)
	for i := 0; i < nThreads; i++ {
		t, err := w.rt.NewThread()
		if err != nil {
			return 0, err
		}
		threads[i] = t
		ops[i] = setup(i, t)
	}
	for i := 0; i < nThreads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t := threads[i]
			op := ops[i]
			n := uint64(0)
			for !stop.Load() {
				t.Exec(op)
				n++
			}
			total.Add(n)
		}(i)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return total.Load(), nil
}

func fprintf(out io.Writer, format string, args ...any) {
	fmt.Fprintf(out, format, args...)
}
