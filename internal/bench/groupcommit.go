package bench

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/nvm"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/stats"
)

// Resume-region IDs for the commit-pipeline microbenchmark's boundaries
// (bench runs never crash, but Boundary still persists them).
const (
	ridGCBenchA = 0x170
	ridGCBenchB = 0x171
)

// gcCostScale multiplies the baseline device cost model for this
// experiment. Combining trades host-side synchronization (parking a
// waiter and waking it costs on the order of a microsecond of scheduler
// time here) for modeled fence drains; at the baseline 400 ns fence the
// two are comparable on this oversubscribed host, which would measure
// the host's futex latency rather than the protocol. Scaling every
// modeled cost ×10 (flush 500 ns, fence 4 µs, NT store 1.5 µs) keeps the
// modeled persistence dominant — the regime the experiment is about, and
// the cost ratio a slow flush-based NVM part actually exhibits — without
// changing any relative ordering. Direct and grouped series run under
// the identical scaled model, so the speedups and the single-thread
// parity bar are unaffected by the scale itself.
const gcCostScale = 10

// GCResult is one cell of the group-commit sweep.
type GCResult struct {
	Series      string // "direct" or "gc-w<windowNS>"
	Threads     int
	Ops         uint64
	MopsPS      float64
	NsPerOp     float64 // average per-thread commit latency
	Fences      uint64  // device fences in the measured interval (a merged fence counts once)
	FencesPerOp float64
}

// RunGroupCommit regenerates the group-commit pipeline experiment: iDO
// commit throughput on per-thread private counter FASEs, direct persists
// versus the cross-thread flush/fence combiner, sweeping thread count ×
// leader batch window. Each thread owns its own lock and counter line, so
// the persist fences are the only cross-thread serialization — the
// combiner's best case, and the direct path's worst (every fence queues
// on the device's write-queue drain). The acceptance bars: grouped
// commit throughput at 16 threads ≥ 1.5x direct, and single-thread
// latency within 5% of direct (the solo fast path skips combining).
func RunGroupCommit(o Options) ([]GCResult, error) {
	threads := []int{1, 2, 4, 8, 16}
	windows := []int{0, 2000, 8000}
	if o.Quick {
		threads = []int{1, 4, 16}
		windows = []int{0, 4000}
	}
	type job struct {
		series string
		gc     bool
		window int
		nt     int
	}
	var jobs []job
	for _, nt := range threads {
		jobs = append(jobs, job{"direct", false, 0, nt})
	}
	for _, wnd := range windows {
		for _, nt := range threads {
			jobs = append(jobs, job{fmt.Sprintf("gc-w%d", wnd), true, wnd, nt})
		}
	}
	out := make([]GCResult, len(jobs))
	err := runPoints(o, len(jobs), func(i int) error {
		j := jobs[i]
		po := o
		po.GroupCommit, po.GroupWindowNS = j.gc, j.window
		ops, fences, err := runGroupCommitPoint(po, fmt.Sprintf("gc/%s/t%d", j.series, j.nt), j.nt)
		if err != nil {
			return fmt.Errorf("groupcommit %s/t%d: %w", j.series, j.nt, err)
		}
		r := GCResult{Series: j.series, Threads: j.nt, Ops: ops, Fences: fences}
		r.MopsPS = stats.Throughput(ops, o.Duration)
		if ops > 0 {
			r.NsPerOp = float64(o.Duration.Nanoseconds()) * float64(j.nt) / float64(ops)
			r.FencesPerOp = float64(fences) / float64(ops)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := &stats.Figure{Title: "GroupCommit iDO commit throughput (private-lock counter FASEs)",
		XLabel: "threads", YLabel: "Mops/s"}
	for i, j := range jobs {
		fig.Add(j.series, float64(j.nt), out[i].MopsPS)
	}
	fprintf(o.out(), "%s\n", fig)
	for _, r := range out {
		fprintf(o.out(), "  %-8s t=%-2d %8.3f Mops/s %8.0f ns/op %6.2f fences/op\n",
			r.Series, r.Threads, r.MopsPS, r.NsPerOp, r.FencesPerOp)
	}
	return out, nil
}

// runGroupCommitPoint measures one cell: nThreads workers each running
// lock → boundary → load → boundary → store → unlock over a private
// counter. Returns completed commits and the device fence count for the
// measured interval.
func runGroupCommitPoint(o Options, label string, nThreads int) (uint64, uint64, error) {
	cfg := nvmConfig(o.DeviceBytes, 0)
	cfg.FlushNS *= gcCostScale
	cfg.FenceNS *= gcCostScale
	cfg.NTStoreNS *= gcCostScale
	cfg.Tracer = o.tracer(label)
	if o.GroupCommit {
		cfg.GroupCommit = nvm.GroupCommitConfig{Enabled: true, WindowNS: o.GroupWindowNS}
	}
	w, err := newWorldCfg(mkSpec("ido").mk, o.DeviceBytes, cfg)
	if err != nil {
		return 0, 0, err
	}
	dev := w.reg.Dev
	lk := make([]*locks.Lock, nThreads)
	ctr := make([]uint64, nThreads)
	for i := range lk {
		l, err := w.lm.Create()
		if err != nil {
			return 0, 0, err
		}
		// A full line per counter: disjoint dirty sets, so merged batches
		// never share write-backs either.
		c, err := w.reg.Alloc.Alloc(64)
		if err != nil {
			return 0, 0, err
		}
		dev.Store64(c, 0)
		dev.CLWB(c)
		lk[i], ctr[i] = l, c
	}
	dev.Fence()
	dev.ResetStats()
	ops, err := measure(w, nThreads, o.Duration, func(i int, t persist.Thread) func() {
		l, c := lk[i], ctr[i]
		return func() {
			t.Lock(l)
			t.Boundary(ridGCBenchA)
			v := t.Load64(c)
			t.Boundary(ridGCBenchB, persist.RV(0, v))
			t.Store64(c, v+1)
			t.Unlock(l)
		}
	})
	if err != nil {
		return 0, 0, err
	}
	return ops, dev.Stats().Fences, nil
}
