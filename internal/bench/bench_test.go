package bench

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"github.com/ido-nvm/ido/internal/ds"
	"github.com/ido-nvm/ido/internal/obs"
)

// The bench tests run every experiment driver end to end at smoke scale
// and assert the qualitative shapes the paper reports. Throughput
// assertions use generous margins: the point is ordering, not magnitude.

func quick(t *testing.T) Options {
	t.Helper()
	o := QuickOptions()
	return o
}

func TestFig5ShapesQuick(t *testing.T) {
	o := quick(t)
	figs, err := RunFig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("figures = %d", len(figs))
	}
	insert := figs[0]
	maxT := float64(o.Threads[len(o.Threads)-1])
	// The delete-heavy mix must actually run its FASEs for every system.
	deleteHeavy := figs[2]
	if !strings.Contains(deleteHeavy.Title, "delete-heavy") {
		t.Fatalf("third figure is %q, want the delete-heavy mix", deleteHeavy.Title)
	}
	for _, name := range Fig5Runtimes {
		if v, ok := deleteHeavy.Get(name, maxT); !ok || v <= 0 {
			t.Fatalf("delete-heavy mix: %s series missing or zero at %v threads", name, maxT)
		}
	}
	origin, _ := insert.Get("origin", maxT)
	ido, _ := insert.Get("ido", maxT)
	justdo, _ := insert.Get("justdo", maxT)
	nvthreads, _ := insert.Get("nvthreads", maxT)
	if origin <= ido {
		t.Fatalf("origin (%f) should beat ido (%f)", origin, ido)
	}
	if ido <= justdo {
		t.Fatalf("ido (%f) should beat justdo (%f) on memcached", ido, justdo)
	}
	if ido <= nvthreads {
		t.Fatalf("ido (%f) should beat nvthreads (%f)", ido, nvthreads)
	}
}

func TestFig6ShapesQuick(t *testing.T) {
	o := quick(t)
	fig, err := RunFig6(o)
	if err != nil {
		t.Fatal(err)
	}
	// iDO beats JUSTDO at every database size, and keeps a healthy
	// fraction of origin's throughput.
	for _, kr := range []float64{1_000, 10_000} {
		ido, ok1 := fig.Get("ido", kr)
		jd, ok2 := fig.Get("justdo", kr)
		origin, ok3 := fig.Get("origin", kr)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("missing series at %v", kr)
		}
		// GETs (80%% of the mix) are uninstrumented under BOTH systems,
		// so the SET-side gap compresses under simulator overhead; allow
		// a near-tie but never a real loss.
		if ido < jd*0.9 {
			t.Fatalf("kr=%v: ido %f well below justdo %f", kr, ido, jd)
		}
		if ido < origin/10 {
			t.Fatalf("kr=%v: ido overhead too extreme: %f vs %f", kr, ido, origin)
		}
	}
}

func TestFig7ShapesQuick(t *testing.T) {
	o := quick(t)
	figs, err := RunFig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("figures = %d (4 balanced + 2 pop-heavy churn)", len(figs))
	}
	// The throughput gap on the hash map is ~1.35x, which 60 ms windows
	// on a 1-core host cannot resolve reliably; assert the deterministic
	// mechanism instead: per-op persist events (fences + write-backs)
	// under iDO must be below JUSTDO's.
	events := func(name string) float64 {
		w, err := newWorld(o, mkSpec(name).mk, 0, o.Tracer)
		if err != nil {
			t.Fatal(err)
		}
		env := &ds.Env{Reg: w.reg, LM: w.lm}
		m, _, err := ds.NewHashMap(env, mapBuckets)
		if err != nil {
			t.Fatal(err)
		}
		th, _ := w.rt.NewThread()
		rng := rand.New(rand.NewSource(3))
		for k := 0; k < 256; k++ {
			kk := uint64(rng.Intn(mapKeyRange)) + 1
			th.Exec(func() { m.Put(th, kk, kk) })
		}
		w.reg.Dev.ResetStats()
		const ops = 400
		for i := 0; i < ops; i++ {
			kk := uint64(rng.Intn(mapKeyRange)) + 1
			if i%2 == 0 {
				th.Exec(func() { m.Put(th, kk, kk) })
			} else {
				th.Exec(func() { m.Get(th, kk) })
			}
		}
		st := w.reg.Dev.Stats()
		return float64(st.Fences+st.Flushes) / ops
	}
	idoEv, jdEv := events("ido"), events("justdo")
	if idoEv >= jdEv {
		t.Fatalf("hashmap persist events: ido %.1f/op >= justdo %.1f/op", idoEv, jdEv)
	}
	// And the series exist at the top thread count.
	maxT := float64(o.Threads[len(o.Threads)-1])
	churn := 0
	for _, f := range figs {
		if strings.Contains(f.Title, "hashmap") {
			if _, ok := f.Get("ido", maxT); !ok {
				t.Fatal("hashmap figure missing ido series")
			}
		}
		if strings.Contains(f.Title, "churn") {
			churn++
			if v, ok := f.Get("ido", maxT); !ok || v <= 0 {
				t.Fatalf("%s: ido series missing or zero", f.Title)
			}
		}
	}
	if churn != 2 {
		t.Fatalf("churn figures = %d, want 2 (stack, queue)", churn)
	}
}

func TestFig8ShapesQuick(t *testing.T) {
	o := quick(t)
	results, err := RunFig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Fig8Benchmarks) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Regions == 0 {
			t.Fatalf("%s: no regions", r.Name)
		}
		// Paper: >99%% of regions log <5 live-in registers; allow 90%%
		// at smoke scale.
		if r.LiveInCDF[4] < 0.90 {
			t.Fatalf("%s: only %.1f%%%% of regions log <5 registers", r.Name, r.LiveInCDF[4]*100)
		}
	}
	// Microbenchmarks: most regions have 0-1 stores.
	for _, r := range results[:4] {
		if r.StoresCDF[1] < 0.7 {
			t.Fatalf("%s: only %.1f%%%% of regions have <=1 store", r.Name, r.StoresCDF[1]*100)
		}
	}
}

func TestTable1ShapesQuick(t *testing.T) {
	o := quick(t)
	rows, err := RunTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	// For each structure the Atlas/iDO ratio must grow with kill time
	// (Atlas scans retained logs; iDO does constant work).
	byStruct := map[string][]Table1Result{}
	for _, r := range rows {
		byStruct[r.Structure] = append(byStruct[r.Structure], r)
	}
	for s, rs := range byStruct {
		if len(rs) < 2 {
			t.Fatalf("%s: %d kill times", s, len(rs))
		}
		if rs[len(rs)-1].AtlasNS <= rs[0].AtlasNS {
			t.Logf("%s: atlas recovery did not grow (%d -> %d ns) at smoke scale",
				s, rs[0].AtlasNS, rs[len(rs)-1].AtlasNS)
		}
		if rs[len(rs)-1].Ratio <= 0 {
			t.Fatalf("%s: bad ratio", s)
		}
	}
}

func TestFig9ShapesQuick(t *testing.T) {
	o := quick(t)
	figs, err := RunFig9(o)
	if err != nil {
		t.Fatal(err)
	}
	// Every system slows down at the largest added latency, and iDO stays
	// ahead of JUSTDO in absolute throughput at every point (it issues
	// roughly half the write-backs the added delay taxes).
	for _, f := range figs {
		strict := strings.Contains(f.Title, "Memcached")
		for _, ns := range []float64{0, 2000} {
			jd, ok := f.Get("justdo", ns)
			idov, ok2 := f.Get("ido", ns)
			if !ok || !ok2 {
				t.Fatalf("%s: missing %vns points", f.Title, ns)
			}
			if strict && idov <= jd {
				t.Fatalf("%s@%v: ido %f <= justdo %f", f.Title, ns, idov, jd)
			}
			if !strict && idov < jd*0.9 {
				// Redis: the 80%%-GET side is uninstrumented for both
				// systems; tolerate a tie.
				t.Fatalf("%s@%v: ido %f well below justdo %f", f.Title, ns, idov, jd)
			}
		}
		for _, name := range []string{"ido", "justdo", "atlas"} {
			base, _ := f.Get(name, 0)
			slow, _ := f.Get(name, 2000)
			if slow >= base {
				t.Fatalf("%s: %s unaffected by +2000ns (%f -> %f)", f.Title, name, base, slow)
			}
		}
	}
}

func TestAllocBenchQuick(t *testing.T) {
	o := quick(t)
	results, err := RunAlloc(o)
	if err != nil {
		t.Fatal(err)
	}
	byT := map[int]map[string]AllocResult{}
	maxT := 0
	for _, r := range results {
		if byT[r.Threads] == nil {
			byT[r.Threads] = map[string]AllocResult{}
		}
		byT[r.Threads][r.Alloc] = r
		if r.Threads > maxT {
			maxT = r.Threads
		}
	}
	if maxT < 16 {
		t.Fatalf("sweep missing the 16-worker acceptance point: max %d", maxT)
	}
	// Uncontended, the magazine path must hold parity with the seed's
	// single mutex (generous margin: short smoke windows are noisy).
	one := byT[1]
	if one["sharded"].OpsPS < one["mutex"].OpsPS*0.6 {
		t.Fatalf("single-thread regression: sharded %.0f vs mutex %.0f ops/s",
			one["sharded"].OpsPS, one["mutex"].OpsPS)
	}
	if one["sharded"].MagHit < 0.5 {
		t.Fatalf("magazine hit rate %.0f%% — fast path not engaged", one["sharded"].MagHit*100)
	}
	// Contended, sharding must win outright. Full scale shows >10x and
	// the ≥2x acceptance bar is gated on the captured benchmark suite;
	// this smoke window on one core measures ~1.9-3x run to run, so the
	// canary asserts 1.5x to stay outside its own noise band. Under the
	// race detector the bar drops to rough parity — its serialization
	// erases most of the contention gap — so the assertion survives the
	// whole suite running with -race in parallel.
	want := 1.5
	if raceEnabled {
		want = 0.8
	}
	top := byT[maxT]
	if top["sharded"].OpsPS < top["mutex"].OpsPS*want {
		t.Fatalf("16-worker speedup below %.1fx: sharded %.0f vs mutex %.0f ops/s",
			want, top["sharded"].OpsPS, top["mutex"].OpsPS)
	}
}

func TestGroupCommitBenchQuick(t *testing.T) {
	o := quick(t)
	o.Workers = 4 // exercise the bounded pool; each point still owns its world
	var mu sync.Mutex
	labels := map[string]int{}
	o.WorldTracer = func(label string) *obs.Tracer {
		mu.Lock()
		labels[label]++
		mu.Unlock()
		return nil
	}
	results, err := RunGroupCommit(o)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[int]GCResult{}
	for _, r := range results {
		if byKey[r.Series] == nil {
			byKey[r.Series] = map[int]GCResult{}
		}
		byKey[r.Series][r.Threads] = r
		if r.Ops == 0 {
			t.Fatalf("%s/t%d: zero commits", r.Series, r.Threads)
		}
	}
	if len(labels) != len(results) {
		t.Fatalf("world labels = %d, want one per point (%d)", len(labels), len(results))
	}
	for l, n := range labels {
		if n != 1 {
			t.Fatalf("label %q used for %d worlds", l, n)
		}
	}
	// Solo commits take the fast path: the fence schedule is identical to
	// direct, so per-commit fence counts must match (small tolerance for
	// the partial op in flight when the measurement window closes).
	d1, g1 := byKey["direct"][1], byKey["gc-w0"][1]
	if g1.FencesPerOp < d1.FencesPerOp*0.98 || g1.FencesPerOp > d1.FencesPerOp*1.02 {
		t.Fatalf("solo fence parity: direct %.2f vs gc-w0 %.2f fences/op", d1.FencesPerOp, g1.FencesPerOp)
	}
	// At 16 threads the combiner must never add fences. How much it merges
	// in a 60 ms window on one core is scheduler-dependent, so the ≥1.5x
	// throughput bar is gated on the captured BENCH_group_commit.json run,
	// not this smoke canary.
	d16, g16 := byKey["direct"][16], byKey["gc-w0"][16]
	if g16.FencesPerOp > d16.FencesPerOp*1.05 {
		t.Fatalf("grouped fences/op %.2f exceed direct %.2f at 16 threads", g16.FencesPerOp, d16.FencesPerOp)
	}
	t.Logf("16T: direct %.3f Mops/s %.2f fences/op; gc-w0 %.3f Mops/s %.2f fences/op",
		d16.MopsPS, d16.FencesPerOp, g16.MopsPS, g16.FencesPerOp)
}

func TestAblationsQuick(t *testing.T) {
	o := quick(t)
	rows, err := RunAblations(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("ablations = %d", len(rows))
	}
	// Coalescing on issues fewer write-backs than off.
	if rows[0].Values[0] >= rows[0].Values[1] {
		t.Fatalf("coalescing did not reduce write-backs: %v", rows[0].Values)
	}
	// iDO's lock protocol fences less than JUSTDO's per list get.
	if rows[1].Values[0] >= rows[1].Values[1] {
		t.Fatalf("indirect locking did not save fences: %v", rows[1].Values)
	}
	// Hitting-set regions log less than per-store regions.
	if rows[2].Values[0] >= rows[2].Values[1] {
		t.Fatalf("region formation did not reduce log ops: %v", rows[2].Values)
	}
}
