package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ido-nvm/ido/internal/nvalloc"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/stats"
)

// AllocResult is one allocator/thread-count point of the allocator
// contention experiment.
type AllocResult struct {
	Alloc   string // "sharded" or "mutex"
	Threads int
	OpsPS   float64
	// MagHit is the fraction of allocations served lock-free from a
	// magazine ring (sharded allocator only).
	MagHit float64
}

// allocIface is the A/B surface shared by the sharded allocator and the
// single-mutex seed allocator it replaced.
type allocIface interface {
	Alloc(int) (uint64, error)
	Free(uint64)
}

// RunAlloc compares the size-class/magazine allocator against the
// retained single-mutex MutexAllocator under mixed Alloc/Free of
// 16-256 byte blocks with bounded per-worker live rings — the region
// manager's allocation profile. The sweep always includes a 16-worker
// point, the acceptance workload for the lock-light rewrite. The device
// runs without the persistence cost model: the experiment isolates
// allocator synchronization, not NVM latency.
func RunAlloc(o Options) ([]AllocResult, error) {
	sweep := append([]int(nil), o.Threads...)
	if len(sweep) == 0 || sweep[len(sweep)-1] < 16 {
		sweep = append(sweep, 16)
	}
	var out []AllocResult
	for _, nt := range sweep {
		for _, kind := range []string{"sharded", "mutex"} {
			r, err := runAllocPoint(o, kind, nt)
			if err != nil {
				return nil, fmt.Errorf("alloc %s t=%d: %w", kind, nt, err)
			}
			out = append(out, r)
		}
	}
	printAlloc(o, out)
	return out, nil
}

func runAllocPoint(o Options, kind string, nt int) (AllocResult, error) {
	cfg := nvm.Config{Size: o.DeviceBytes}
	cfg.Tracer = o.Tracer
	dev := nvm.New(cfg)
	var a allocIface
	var snap func() nvalloc.Stats
	if kind == "sharded" {
		sa := nvalloc.New(dev, 0, uint64(o.DeviceBytes))
		a, snap = sa, sa.Stats
	} else {
		ma := nvalloc.NewMutex(dev, 0, uint64(o.DeviceBytes))
		a, snap = ma, ma.Stats
	}
	runtime.GC()
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, nt)
	for i := 0; i < nt; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sizes := [...]int{16, 32, 48, 64, 96, 128, 192, 256}
			ring := make([]uint64, 0, 32)
			n := uint64(0)
			for j := i; !stop.Load(); j++ {
				if len(ring) == cap(ring) {
					for _, p := range ring {
						a.Free(p)
					}
					ring = ring[:0]
				}
				p, err := a.Alloc(sizes[j&7])
				if err != nil {
					errs <- err
					return
				}
				ring = append(ring, p)
				n++
			}
			for _, p := range ring {
				a.Free(p)
			}
			total.Add(n)
		}(i)
	}
	time.Sleep(o.Duration)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		return AllocResult{}, err
	default:
	}
	r := AllocResult{Alloc: kind, Threads: nt,
		OpsPS: float64(total.Load()) / o.Duration.Seconds()}
	if s := snap(); kind == "sharded" && s.Allocs > 0 {
		r.MagHit = float64(s.MagHits) / float64(s.Allocs)
	}
	return r, nil
}

func printAlloc(o Options, results []AllocResult) {
	out := o.out()
	fprintf(out, "NVM allocator: size-class shards + magazines vs single mutex (allocs/s)\n")
	var tb stats.Table
	tb.AddRow("threads", "sharded", "mutex", "speedup", "mag-hit")
	byT := map[int][2]AllocResult{}
	var order []int
	for _, r := range results {
		e, seen := byT[r.Threads]
		if !seen {
			order = append(order, r.Threads)
		}
		if r.Alloc == "sharded" {
			e[0] = r
		} else {
			e[1] = r
		}
		byT[r.Threads] = e
	}
	for _, nt := range order {
		e := byT[nt]
		ratio := 0.0
		if e[1].OpsPS > 0 {
			ratio = e[0].OpsPS / e[1].OpsPS
		}
		tb.AddRow(fmt.Sprintf("%d", nt),
			fmt.Sprintf("%10.0f", e[0].OpsPS), fmt.Sprintf("%10.0f", e[1].OpsPS),
			fmt.Sprintf("%.2fx", ratio), fmt.Sprintf("%.0f%%", e[0].MagHit*100))
	}
	fprintf(out, "%s\n", tb.String())
}
