package bench

import "testing"

// TestServerBenchQuick runs the end-to-end server sweep at smoke scale
// and asserts its qualitative shape: every cell serves traffic without
// client-visible errors, and at 16 connections the group-commit series
// never pays more device fences per request than direct persists. The
// ≥1.5x throughput bar is gated on the captured BENCH_server_e2e.json
// run, not this canary — a 60 ms window on an oversubscribed CI core
// measures the scheduler as much as the protocol.
func TestServerBenchQuick(t *testing.T) {
	o := quick(t)
	results, err := RunServer(o)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[int]ServerResult{}
	for _, r := range results {
		if byKey[r.Series] == nil {
			byKey[r.Series] = map[int]ServerResult{}
		}
		byKey[r.Series][r.Conns] = r
		if r.Ops == 0 {
			t.Fatalf("%s/c%d: zero ops", r.Series, r.Conns)
		}
		if r.Errs != 0 {
			t.Fatalf("%s/c%d: %d client-visible errors", r.Series, r.Conns, r.Errs)
		}
		if r.P50NS == 0 || r.P99NS < r.P50NS {
			t.Fatalf("%s/c%d: implausible latency p50=%d p99=%d", r.Series, r.Conns, r.P50NS, r.P99NS)
		}
	}
	d16, g16 := byKey["direct"][16], byKey["gc-w2000"][16]
	if g16.FencesPerOp > d16.FencesPerOp*1.05 {
		t.Fatalf("grouped fences/op %.2f exceed direct %.2f at 16 conns",
			g16.FencesPerOp, d16.FencesPerOp)
	}
	t.Logf("c16: direct %.3f Mops/s %.2f fences/op; gc-w2000 %.3f Mops/s %.2f fences/op",
		d16.MopsPS, d16.FencesPerOp, g16.MopsPS, g16.FencesPerOp)
}

// TestServerReadPathQuick runs the read-path sweep at smoke scale and
// asserts its qualitative shape: every cell serves error-free, the fast
// series actually uses the lock-free lane, and at 16 connections the
// fast lane never pays more fences per request than the slot path. The
// ≥2x throughput bar is gated on the captured BENCH_server_readpath.json
// run, not this canary.
func TestServerReadPathQuick(t *testing.T) {
	o := quick(t)
	results, err := RunServerReadPath(o)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[int]ServerReadResult{}
	for _, r := range results {
		if byKey[r.Series] == nil {
			byKey[r.Series] = map[int]ServerReadResult{}
		}
		byKey[r.Series][r.Conns] = r
		if r.Ops == 0 {
			t.Fatalf("%s/c%d: zero ops", r.Series, r.Conns)
		}
		if r.Errs != 0 {
			t.Fatalf("%s/c%d: %d client-visible errors", r.Series, r.Conns, r.Errs)
		}
		if r.Series == "slot" && r.FastGets != 0 {
			t.Fatalf("slot/c%d: %d fast gets with the lane disabled", r.Conns, r.FastGets)
		}
		if r.Series != "slot" && r.FastGets == 0 {
			t.Fatalf("%s/c%d: fast lane never taken", r.Series, r.Conns)
		}
	}
	s16, f16 := byKey["slot"][16], byKey["fast"][16]
	if f16.FencesPerOp > s16.FencesPerOp*1.05 {
		t.Fatalf("fast fences/op %.2f exceed slot %.2f at 16 conns",
			f16.FencesPerOp, s16.FencesPerOp)
	}
	t.Logf("c16: slot %.3f Mops/s %.2f fences/op; fast %.3f Mops/s %.2f fences/op (%d fast gets, %d fallbacks)",
		s16.MopsPS, s16.FencesPerOp, f16.MopsPS, f16.FencesPerOp, f16.FastGets, f16.Fallbacks)
}
