package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/ido-nvm/ido/internal/baselines/atlas"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/ds"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/stats"
)

// Table1Result is one cell of Table I: the ratio of Atlas recovery time
// to iDO recovery time after killing the microbenchmark at a given time.
type Table1Result struct {
	Structure string
	KillTime  time.Duration
	AtlasNS   int64
	IDONS     int64
	Ratio     float64
}

// Table1KillTimes returns the kill-time sweep. The paper kills after
// 1-50 s; the simulator runs ~100x slower per op, so the default sweep is
// scaled down while preserving the growth trend (EXPERIMENTS.md).
func Table1KillTimes(quick bool) []time.Duration {
	if quick {
		return []time.Duration{20 * time.Millisecond, 60 * time.Millisecond}
	}
	return []time.Duration{
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		750 * time.Millisecond, 1000 * time.Millisecond, 1250 * time.Millisecond,
	}
}

// RunTable1 regenerates Table I: run each microbenchmark for the kill
// time under (a) iDO and (b) Atlas with retained logs, SIGKILL the run
// via crash injection, crash the device, reattach, and time each system's
// recovery. Atlas must scan and order every retained log record; iDO
// re-acquires a handful of locks and resumes a handful of regions, so the
// ratio grows with run length.
func RunTable1(o Options) ([]Table1Result, error) {
	structures := Fig7Structures
	threads := 8
	if o.Quick {
		threads = 4
	}
	var out []Table1Result
	for _, structure := range structures {
		for _, kill := range Table1KillTimes(o.Quick) {
			idoNS, err := recoveryTime(o, "ido", structure, threads, kill)
			if err != nil {
				return nil, fmt.Errorf("table1 ido/%s (seed %d): %w", structure, o.seed(), err)
			}
			atlasNS, err := recoveryTime(o, "atlas-retain", structure, threads, kill)
			if err != nil {
				return nil, fmt.Errorf("table1 atlas/%s (seed %d): %w", structure, o.seed(), err)
			}
			r := Table1Result{
				Structure: structure,
				KillTime:  kill,
				AtlasNS:   atlasNS,
				IDONS:     idoNS,
			}
			if idoNS > 0 {
				r.Ratio = float64(atlasNS) / float64(idoNS)
			}
			out = append(out, r)
		}
	}
	printTable1(o, out)
	return out, nil
}

// crashSeedFor derives a distinct, replayable settle seed for one data
// point from the run seed (splitmix-style finalizer): the Table I error
// messages name the run seed, and the same Options replay the same
// adversarial settle at every data point.
func crashSeedFor(seed int64, rtName, structure string, kill time.Duration) int64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15
	for _, s := range []string{rtName, structure} {
		for _, b := range []byte(s) {
			x = (x ^ uint64(b)) * 0x9e3779b97f4a7c15
		}
	}
	x ^= uint64(kill.Nanoseconds())
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return int64(x)
}

// recoveryTime runs the workload, kills it, and times recovery.
func recoveryTime(o Options, rtName, structure string, threads int, kill time.Duration) (int64, error) {
	sp := mkSpec(rtName)
	w, err := newWorld(o, sp.mk, 0, o.Tracer)
	if err != nil {
		return 0, err
	}
	env := &ds.Env{Reg: w.reg, LM: w.lm}

	var op func(t persist.Thread, rng *rand.Rand)
	switch structure {
	case "stack":
		s, _, err := ds.NewStack(env)
		if err != nil {
			return 0, err
		}
		op = func(t persist.Thread, rng *rand.Rand) {
			if rng.Intn(2) == 0 {
				s.Push(t, rng.Uint64()|1)
			} else {
				s.Pop(t)
			}
		}
	case "queue":
		q, _, err := ds.NewQueue(env)
		if err != nil {
			return 0, err
		}
		op = func(t persist.Thread, rng *rand.Rand) {
			if rng.Intn(2) == 0 {
				q.Enqueue(t, rng.Uint64()|1)
			} else {
				q.Dequeue(t)
			}
		}
	case "orderedlist":
		l, _, err := ds.NewList(env)
		if err != nil {
			return 0, err
		}
		op = func(t persist.Thread, rng *rand.Rand) {
			k := uint64(rng.Intn(listKeyRange)) + 1
			if rng.Intn(2) == 0 {
				l.Put(t, k, k)
			} else {
				l.Get(t, k)
			}
		}
	case "hashmap":
		m, _, err := ds.NewHashMap(env, mapBuckets)
		if err != nil {
			return 0, err
		}
		op = func(t persist.Thread, rng *rand.Rand) {
			k := uint64(rng.Intn(mapKeyRange)) + 1
			if rng.Intn(2) == 0 {
				m.Put(t, k, k)
			} else {
				m.Get(t, k)
			}
		}
	default:
		return 0, fmt.Errorf("unknown structure %q", structure)
	}

	// Run workers until the kill time, then pull the plug. Injection is
	// armed (with an unreachable budget) BEFORE the workers start so lock
	// waiters use the crash-aware spin path; TriggerCrash then kills
	// every thread at its next memory access or lock-spin check.
	done := make(chan struct{}, threads)
	ths := make([]persist.Thread, threads)
	for i := range ths {
		t, err := w.rt.NewThread()
		if err != nil {
			return 0, err
		}
		ths[i] = t
	}
	nvm.ArmCrash(1 << 62)
	for i := 0; i < threads; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.CrashSignal); !ok {
						panic(r)
					}
				}
			}()
			rng := rand.New(rand.NewSource(int64(i + 1)))
			t := ths[i]
			for {
				t.Exec(func() { op(t, rng) })
			}
		}(i)
	}
	time.Sleep(kill)
	nvm.TriggerCrash() // SIGKILL
	for i := 0; i < threads; i++ {
		<-done
	}
	nvm.ArmCrash(-1)
	w.reg.Dev.Crash(nvm.CrashRandom, rand.New(rand.NewSource(crashSeedFor(o.seed(), rtName, structure, kill))))

	// Process restart: reattach and recover under the same system.
	reg2, err := region.Attach(w.reg.Dev)
	if err != nil {
		return 0, err
	}
	lm2 := locks.NewManager(reg2)
	start := time.Now()
	switch rtName {
	case "ido":
		rt2 := core.New(core.DefaultConfig())
		if err := rt2.Attach(reg2, lm2); err != nil {
			return 0, err
		}
		rr := persist.NewResumeRegistry()
		ds.RegisterAll(rr, &ds.Env{Reg: reg2, LM: lm2})
		if _, err := rt2.Recover(rr); err != nil {
			return 0, err
		}
	case "atlas-retain":
		rt2 := atlas.New(atlas.Config{Retain: true})
		if err := rt2.Attach(reg2, lm2); err != nil {
			return 0, err
		}
		if _, err := rt2.Recover(nil); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("table1 does not time %q", rtName)
	}
	return time.Since(start).Nanoseconds(), nil
}

func printTable1(o Options, rows []Table1Result) {
	out := o.out()
	fprintf(out, "Table I: recovery time ratio (Atlas / iDO) by kill time\n")
	var tb stats.Table
	tb.AddRow("structure", "kill", "atlas(ms)", "ido(ms)", "ratio")
	for _, r := range rows {
		tb.AddRow(r.Structure, r.KillTime.String(),
			fmt.Sprintf("%.3f", float64(r.AtlasNS)/1e6),
			fmt.Sprintf("%.3f", float64(r.IDONS)/1e6),
			fmt.Sprintf("%.1f", r.Ratio))
	}
	fprintf(out, "%s\n", tb.String())
}
