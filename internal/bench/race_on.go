//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. Perf
// assertions in the bench smoke tests relax under it: the detector's
// global synchronization serializes every allocator and flattens the
// contention gaps those assertions measure.
const raceEnabled = true
