package bench

import (
	"fmt"
	"math/rand"

	"github.com/ido-nvm/ido/internal/ds"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/stats"
	"github.com/ido-nvm/ido/internal/workload"
)

// Fig7Runtimes are the systems compared on the microbenchmarks (§V-B).
// NVThreads is absent, as in the paper (its page-granularity REDO cannot
// express hand-over-hand locking).
var Fig7Runtimes = []string{"ido", "justdo", "atlas", "mnemosyne"}

// Fig7Structures names the four microbenchmark data structures.
var Fig7Structures = []string{"stack", "queue", "orderedlist", "hashmap"}

// fig7Mixes are the operation mixes per figure: the paper's balanced
// 50/50 mix for all four structures, plus a pop-heavy churn variant
// (30% push / 70% pop) for the two structures whose removal op actually
// unlinks (stack and queue) — it drives the free-list and empty-pop
// paths the balanced mix rarely reaches.
var fig7Mixes = []struct {
	suffix     string
	insertPct  int
	structures []string
}{
	{"", 50, Fig7Structures},
	{" churn (30/70 pop-heavy)", 30, []string{"stack", "queue"}},
}

// RunFig7 regenerates Fig. 7: microbenchmark throughput (Mops/s) as a
// function of thread count for the four shared data structures, with each
// thread repeatedly choosing a random operation (insert/remove for stack
// and queue; get/put on a random key for list and map), plus the
// pop-heavy churn variants.
func RunFig7(o Options) ([]*stats.Figure, error) {
	var out []*stats.Figure
	for _, mix := range fig7Mixes {
		for _, structure := range mix.structures {
			fig := &stats.Figure{
				Title:  "Fig7 " + structure + mix.suffix,
				XLabel: "threads", YLabel: "Mops/s",
			}
			type job struct {
				sp spec
				nt int
			}
			var jobs []job
			for _, sp := range specs(Fig7Runtimes...) {
				for _, nt := range o.Threads {
					jobs = append(jobs, job{sp, nt})
				}
			}
			ops := make([]uint64, len(jobs))
			structure := structure
			err := runPoints(o, len(jobs), func(i int) error {
				j := jobs[i]
				label := fmt.Sprintf("fig7/%s/%s/t%d", structure, j.sp.name, j.nt)
				n, err := runMicroPoint(o, j.sp, label, structure, j.nt, mix.insertPct)
				if err != nil {
					return fmt.Errorf("fig7 %s/%s/%d: %w", structure, j.sp.name, j.nt, err)
				}
				ops[i] = n
				return nil
			})
			if err != nil {
				return nil, err
			}
			for i, j := range jobs {
				fig.Add(j.sp.name, float64(j.nt), stats.Throughput(ops[i], o.Duration))
			}
			fprintf(o.out(), "%s\n", fig)
			out = append(out, fig)
		}
	}
	return out, nil
}

// Microbenchmark parameters: the ordered list uses a small key range so
// traversals stay reasonably long (the paper's hand-over-hand stress),
// the hash map spreads a larger range over many buckets so bucket lists
// stay short and parallelism is high.
const (
	listKeyRange = 256
	mapKeyRange  = 1 << 12
	mapBuckets   = 1 << 8
)

func runMicroPoint(o Options, sp spec, label, structure string, nThreads, insertPct int) (uint64, error) {
	w, err := newWorld(o, sp.mk, 0, o.tracer(label))
	if err != nil {
		return 0, err
	}
	env := &ds.Env{Reg: w.reg, LM: w.lm}
	switch structure {
	case "stack":
		s, _, err := ds.NewStack(env)
		if err != nil {
			return 0, err
		}
		// Prefill so removes usually succeed.
		pre, _ := w.rt.NewThread()
		for i := 0; i < 256; i++ {
			i := i
			pre.Exec(func() { s.Push(pre, uint64(i+1)) })
		}
		return measure(w, nThreads, o.Duration, func(i int, t persist.Thread) func() {
			// Insert/remove only: the non-insert share is all pops.
			gen := workload.NewUniformMix(int64(100+i), 1<<30, insertPct, 100-insertPct)
			return func() {
				if op := gen.Next(); op.Kind == workload.OpInsert {
					s.Push(t, op.Key|1)
				} else {
					s.Pop(t)
				}
			}
		})
	case "queue":
		q, _, err := ds.NewQueue(env)
		if err != nil {
			return 0, err
		}
		pre, _ := w.rt.NewThread()
		for i := 0; i < 256; i++ {
			i := i
			pre.Exec(func() { q.Enqueue(pre, uint64(i+1)) })
		}
		return measure(w, nThreads, o.Duration, func(i int, t persist.Thread) func() {
			gen := workload.NewUniformMix(int64(200+i), 1<<30, insertPct, 100-insertPct)
			return func() {
				if op := gen.Next(); op.Kind == workload.OpInsert {
					q.Enqueue(t, op.Key|1)
				} else {
					q.Dequeue(t)
				}
			}
		})
	case "orderedlist":
		l, _, err := ds.NewList(env)
		if err != nil {
			return 0, err
		}
		pre, _ := w.rt.NewThread()
		for k := uint64(2); k <= listKeyRange; k += 2 {
			k := k
			pre.Exec(func() { l.Put(pre, k, k) })
		}
		return measure(w, nThreads, o.Duration, func(i int, t persist.Thread) func() {
			rng := rand.New(rand.NewSource(int64(300 + i)))
			return func() {
				k := uint64(rng.Intn(listKeyRange)) + 1
				if rng.Intn(2) == 0 {
					l.Put(t, k, k*2)
				} else {
					l.Get(t, k)
				}
			}
		})
	case "hashmap":
		m, _, err := ds.NewHashMap(env, mapBuckets)
		if err != nil {
			return 0, err
		}
		pre, _ := w.rt.NewThread()
		for k := uint64(1); k <= mapKeyRange; k += 2 {
			k := k
			pre.Exec(func() { m.Put(pre, k, k) })
		}
		return measure(w, nThreads, o.Duration, func(i int, t persist.Thread) func() {
			rng := rand.New(rand.NewSource(int64(400 + i)))
			return func() {
				k := uint64(rng.Intn(mapKeyRange)) + 1
				if rng.Intn(2) == 0 {
					m.Put(t, k, k*2)
				} else {
					m.Get(t, k)
				}
			}
		})
	}
	return 0, fmt.Errorf("unknown structure %q", structure)
}
