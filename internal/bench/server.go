package bench

import (
	"fmt"
	"net"

	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/loadgen"
	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/server"
	"github.com/ido-nvm/ido/internal/stats"
)

// ServerResult is one cell of the end-to-end server sweep.
type ServerResult struct {
	Series      string // "direct" or "gc-w<windowNS>"
	Conns       int
	Pipeline    int
	Ops         uint64
	Errs        uint64
	MopsPS      float64
	P50NS       uint64 // client-observed request latency
	P99NS       uint64
	Fences      uint64 // device fences in the measured interval
	FencesPerOp float64
}

// RunServer regenerates the end-to-end networked-KV experiment: the
// memcache front end over the iDO runtime, driven by the closed-loop
// generator on in-memory connections, sweeping client connections ×
// pipelining depth for direct persists versus the group-commit combiner.
// The workload is Fig. 5c's mix (40% SET, 20% DELETE, 40% GET) over a
// prefilled key space. Concurrency reaches the persistence domain
// through the shard pipelines — 16 shard threads committing FASEs
// back-to-back — so at high connection counts the combiner merges
// cross-shard fence drains exactly as it merges worker threads in the
// commit microbenchmark, and the client sees the win as ops/s. The
// acceptance bars: grouped throughput at 16 conns ≥ 1.5x direct with
// fewer device fences per operation, and 1-conn latency within parity
// (a solo committer skips combining).
func RunServer(o Options) ([]ServerResult, error) {
	conns := []int{1, 2, 4, 8, 16}
	pipelines := []int{1, 8}
	windows := []int{2000, 8000}
	if o.Quick {
		conns = []int{1, 16}
		pipelines = []int{4}
		windows = []int{2000}
	}
	type job struct {
		series   string
		gc       bool
		window   int
		conns    int
		pipeline int
	}
	var jobs []job
	for _, p := range pipelines {
		for _, nc := range conns {
			jobs = append(jobs, job{"direct", false, 0, nc, p})
		}
	}
	for _, wnd := range windows {
		for _, p := range pipelines {
			for _, nc := range conns {
				jobs = append(jobs, job{fmt.Sprintf("gc-w%d", wnd), true, wnd, nc, p})
			}
		}
	}
	out := make([]ServerResult, len(jobs))
	err := runPoints(o, len(jobs), func(i int) error {
		j := jobs[i]
		label := fmt.Sprintf("server/%s/c%d/p%d", j.series, j.conns, j.pipeline)
		res, fences, err := runServerPoint(o, label, j.gc, j.window, j.conns, j.pipeline)
		if err != nil {
			return fmt.Errorf("server %s/c%d/p%d: %w", j.series, j.conns, j.pipeline, err)
		}
		r := ServerResult{Series: j.series, Conns: j.conns, Pipeline: j.pipeline,
			Ops: res.Ops, Errs: res.Errs, P50NS: res.P50, P99NS: res.P99, Fences: fences}
		r.MopsPS = stats.Throughput(res.Ops, res.Elapsed)
		if res.Ops > 0 {
			r.FencesPerOp = float64(fences) / float64(res.Ops)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, p := range pipelines {
		fig := &stats.Figure{Title: fmt.Sprintf("Server end-to-end throughput, pipeline depth %d (memcache/iDO, Fig. 5c mix)", p),
			XLabel: "connections", YLabel: "Mops/s"}
		for i, j := range jobs {
			if j.pipeline == p {
				fig.Add(j.series, float64(j.conns), out[i].MopsPS)
			}
		}
		fprintf(o.out(), "%s\n", fig)
	}
	for _, r := range out {
		fprintf(o.out(), "  %-8s c=%-2d p=%-2d %8.3f Mops/s  p50 %7d ns  p99 %7d ns %6.2f fences/op\n",
			r.Series, r.Conns, r.Pipeline, r.MopsPS, r.P50NS, r.P99NS, r.FencesPerOp)
	}
	return out, nil
}

// ServerReadResult is one cell of the read-path sweep.
type ServerReadResult struct {
	Series      string // "slot", "fast", or "fast-mget8"
	Conns       int
	Ops         uint64
	Errs        uint64
	MopsPS      float64
	P50NS       uint64
	P99NS       uint64
	Fences      uint64
	FencesPerOp float64
	FastGets    uint64 // gets served on the lock-free lane
	Fallbacks   uint64 // fast attempts that fell back to the slot path
}

// RunServerReadPath regenerates the read-path experiment: a GET-heavy
// mix (90% GET, 10% SET, Zipf-skewed keys — the memcached-in-production
// shape) over the memcache front end, sweeping connections for the
// slot-path baseline ("slot", every get dispatched through its shard
// pipeline) against the lock-free fast lane ("fast") and the fast lane
// with 8-key multi-get batches ("fast-mget8", one scatter-gather request
// per 8 keys). The acceptance bars: fast ≥ 2x slot served ops/s at 16
// connections, and the residual fences/op tracking the 10% write leg
// alone — reads on the fast lane never fence.
func RunServerReadPath(o Options) ([]ServerReadResult, error) {
	conns := []int{1, 4, 16}
	if o.Quick {
		conns = []int{1, 16}
	}
	type job struct {
		series      string
		disableFast bool
		mget        int
		conns       int
	}
	var jobs []job
	for _, series := range []struct {
		name        string
		disableFast bool
		mget        int
	}{{"slot", true, 1}, {"fast", false, 1}, {"fast-mget8", false, 8}} {
		for _, nc := range conns {
			jobs = append(jobs, job{series.name, series.disableFast, series.mget, nc})
		}
	}
	out := make([]ServerReadResult, len(jobs))
	err := runPoints(o, len(jobs), func(i int) error {
		j := jobs[i]
		label := fmt.Sprintf("serverread/%s/c%d", j.series, j.conns)
		res, fences, st, err := runServerPointCfg(o, serverPoint{
			label: label, conns: j.conns, pipeline: 8,
			setPct: 10, delPct: 0, zipf: 1.1,
			mget: j.mget, disableFast: j.disableFast,
		})
		if err != nil {
			return fmt.Errorf("serverread %s/c%d: %w", j.series, j.conns, err)
		}
		r := ServerReadResult{Series: j.series, Conns: j.conns,
			Ops: res.Ops, Errs: res.Errs, P50NS: res.P50, P99NS: res.P99, Fences: fences}
		r.MopsPS = stats.Throughput(res.Ops, res.Elapsed)
		if res.Ops > 0 {
			r.FencesPerOp = float64(fences) / float64(res.Ops)
		}
		for _, sh := range st.Shards {
			r.FastGets += sh.FastGets
			r.Fallbacks += sh.FastFallbacks
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := &stats.Figure{Title: "Server read-path throughput, 90% GET Zipf mix, pipeline depth 8 (memcache/iDO)",
		XLabel: "connections", YLabel: "Mops/s"}
	for i, j := range jobs {
		fig.Add(j.series, float64(j.conns), out[i].MopsPS)
	}
	fprintf(o.out(), "%s\n", fig)
	for _, r := range out {
		fprintf(o.out(), "  %-10s c=%-2d %8.3f Mops/s  p50 %7d ns  p99 %7d ns %6.2f fences/op  fast %d  fallback %d\n",
			r.Series, r.Conns, r.MopsPS, r.P50NS, r.P99NS, r.FencesPerOp, r.FastGets, r.Fallbacks)
	}
	return out, nil
}

// serverPoint parameterizes one end-to-end measurement cell shared by
// the mixed-workload sweep and the read-path sweep.
type serverPoint struct {
	label       string
	gc          bool
	windowNS    int
	conns       int
	pipeline    int
	setPct      int
	delPct      int
	zipf        float64 // key skew exponent when > 1
	mget        int     // keys per GET batch (<= 1: single-key gets)
	disableFast bool    // force every GET through the slot path
}

// runServerPoint measures one cell of the Fig. 5c-mix sweep; the
// parameterized core is runServerPointCfg.
func runServerPoint(o Options, label string, gc bool, windowNS, nconns, pipeline int) (*loadgen.Result, uint64, error) {
	res, fences, _, err := runServerPointCfg(o, serverPoint{
		label: label, gc: gc, windowNS: windowNS,
		conns: nconns, pipeline: pipeline, setPct: 40, delPct: 20,
	})
	return res, fences, err
}

// runServerPointCfg measures one cell: a fresh world and server, the
// key space prefilled through a direct thread (so the GET leg of the
// mix hits), then the load generator over in-memory pipes for
// o.Duration. Returns the client-side result, the device fence count
// for the measured interval, and the server's shard counters (fast-lane
// gets, fallbacks) at the end of the run.
func runServerPointCfg(o Options, pt serverPoint) (*loadgen.Result, uint64, metrics.ServerStats, error) {
	var none metrics.ServerStats
	cfg := nvmConfig(o.DeviceBytes, 0)
	cfg.FlushNS *= gcCostScale
	cfg.FenceNS *= gcCostScale
	cfg.NTStoreNS *= gcCostScale
	cfg.Tracer = o.tracer(pt.label)
	if pt.gc {
		// ForceCombine routes every commit through the slot ring. The solo
		// fast path would otherwise defeat the experiment on a small host:
		// shard threads block on their queues between requests, so the
		// scheduler switches between them at channel boundaries — never
		// inside a commit — and each arrival sees itself alone and fences
		// directly. Forcing the ring makes the first committer the leader,
		// and its batch-window dwell yields the processor to the other
		// shard pipelines until they reach their publish points: the
		// rendezvous a multicore host gets from true concurrency.
		cfg.GroupCommit = nvm.GroupCommitConfig{
			Enabled: true, ForceCombine: true, WindowNS: pt.windowNS}
	}
	w, err := newWorldCfg(mkSpec("ido").mk, o.DeviceBytes, cfg)
	if err != nil {
		return nil, 0, none, err
	}
	shards, buckets := 16, 64
	keys := uint64(4096)
	if o.Quick {
		shards, keys = 8, 1024
	}
	store, err := server.NewMcStore(&memcache.Env{Reg: w.reg, LM: w.lm}, shards, buckets)
	if err != nil {
		return nil, 0, none, err
	}
	srv, err := server.New(w.rt, store, server.Config{
		Proto: server.ProtoMemcache, DisableFastReads: pt.disableFast}, nil)
	if err != nil {
		return nil, 0, none, err
	}
	defer srv.Close()

	th, err := w.rt.NewThread()
	if err != nil {
		return nil, 0, none, err
	}
	var kb [8]byte
	for k := uint64(0); k < keys; k++ {
		k0, k1, ok := server.McKeyWords(loadgen.AppendKey(kb[:0], k))
		if !ok {
			return nil, 0, none, fmt.Errorf("unstorable warm key %d", k)
		}
		shard := store.ShardOf(k0, k1)
		v := k
		th.Exec(func() { store.Set(th, shard, k0, k1, v) })
	}

	dev := w.reg.Dev
	dev.ResetStats()
	res, err := loadgen.Run(loadgen.Config{
		Proto:    loadgen.ProtoMemcache,
		Conns:    pt.conns,
		Pipeline: pt.pipeline,
		Keys:     keys,
		SetPct:   pt.setPct,
		DelPct:   pt.delPct,
		Zipf:     pt.zipf,
		MGet:     pt.mget,
		Duration: o.Duration,
		Seed:     o.seed(),
	}, func() (net.Conn, error) {
		client, srvEnd := loadgen.MemPipe(64 << 10)
		if serr := srv.ServeConn(srvEnd); serr != nil {
			return nil, serr
		}
		return client, nil
	})
	if err != nil {
		return nil, 0, none, err
	}
	fences := dev.Stats().Fences
	var st metrics.ServerStats
	srv.MetricsSnapshot(&st)
	return res, fences, st, nil
}
