package bench

import (
	"fmt"
	"net"

	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/loadgen"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/server"
	"github.com/ido-nvm/ido/internal/stats"
)

// ServerResult is one cell of the end-to-end server sweep.
type ServerResult struct {
	Series      string // "direct" or "gc-w<windowNS>"
	Conns       int
	Pipeline    int
	Ops         uint64
	Errs        uint64
	MopsPS      float64
	P50NS       uint64 // client-observed request latency
	P99NS       uint64
	Fences      uint64 // device fences in the measured interval
	FencesPerOp float64
}

// RunServer regenerates the end-to-end networked-KV experiment: the
// memcache front end over the iDO runtime, driven by the closed-loop
// generator on in-memory connections, sweeping client connections ×
// pipelining depth for direct persists versus the group-commit combiner.
// The workload is Fig. 5c's mix (40% SET, 20% DELETE, 40% GET) over a
// prefilled key space. Concurrency reaches the persistence domain
// through the shard pipelines — 16 shard threads committing FASEs
// back-to-back — so at high connection counts the combiner merges
// cross-shard fence drains exactly as it merges worker threads in the
// commit microbenchmark, and the client sees the win as ops/s. The
// acceptance bars: grouped throughput at 16 conns ≥ 1.5x direct with
// fewer device fences per operation, and 1-conn latency within parity
// (a solo committer skips combining).
func RunServer(o Options) ([]ServerResult, error) {
	conns := []int{1, 2, 4, 8, 16}
	pipelines := []int{1, 8}
	windows := []int{2000, 8000}
	if o.Quick {
		conns = []int{1, 16}
		pipelines = []int{4}
		windows = []int{2000}
	}
	type job struct {
		series   string
		gc       bool
		window   int
		conns    int
		pipeline int
	}
	var jobs []job
	for _, p := range pipelines {
		for _, nc := range conns {
			jobs = append(jobs, job{"direct", false, 0, nc, p})
		}
	}
	for _, wnd := range windows {
		for _, p := range pipelines {
			for _, nc := range conns {
				jobs = append(jobs, job{fmt.Sprintf("gc-w%d", wnd), true, wnd, nc, p})
			}
		}
	}
	out := make([]ServerResult, len(jobs))
	err := runPoints(o, len(jobs), func(i int) error {
		j := jobs[i]
		label := fmt.Sprintf("server/%s/c%d/p%d", j.series, j.conns, j.pipeline)
		res, fences, err := runServerPoint(o, label, j.gc, j.window, j.conns, j.pipeline)
		if err != nil {
			return fmt.Errorf("server %s/c%d/p%d: %w", j.series, j.conns, j.pipeline, err)
		}
		r := ServerResult{Series: j.series, Conns: j.conns, Pipeline: j.pipeline,
			Ops: res.Ops, Errs: res.Errs, P50NS: res.P50, P99NS: res.P99, Fences: fences}
		r.MopsPS = stats.Throughput(res.Ops, res.Elapsed)
		if res.Ops > 0 {
			r.FencesPerOp = float64(fences) / float64(res.Ops)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, p := range pipelines {
		fig := &stats.Figure{Title: fmt.Sprintf("Server end-to-end throughput, pipeline depth %d (memcache/iDO, Fig. 5c mix)", p),
			XLabel: "connections", YLabel: "Mops/s"}
		for i, j := range jobs {
			if j.pipeline == p {
				fig.Add(j.series, float64(j.conns), out[i].MopsPS)
			}
		}
		fprintf(o.out(), "%s\n", fig)
	}
	for _, r := range out {
		fprintf(o.out(), "  %-8s c=%-2d p=%-2d %8.3f Mops/s  p50 %7d ns  p99 %7d ns %6.2f fences/op\n",
			r.Series, r.Conns, r.Pipeline, r.MopsPS, r.P50NS, r.P99NS, r.FencesPerOp)
	}
	return out, nil
}

// runServerPoint measures one cell: a fresh world and server, the key
// space prefilled through a direct thread (so the GET leg of the mix
// hits), then the load generator over in-memory pipes for o.Duration.
// Returns the client-side result and the device fence count for the
// measured interval.
func runServerPoint(o Options, label string, gc bool, windowNS, nconns, pipeline int) (*loadgen.Result, uint64, error) {
	cfg := nvmConfig(o.DeviceBytes, 0)
	cfg.FlushNS *= gcCostScale
	cfg.FenceNS *= gcCostScale
	cfg.NTStoreNS *= gcCostScale
	cfg.Tracer = o.tracer(label)
	if gc {
		// ForceCombine routes every commit through the slot ring. The solo
		// fast path would otherwise defeat the experiment on a small host:
		// shard threads block on their queues between requests, so the
		// scheduler switches between them at channel boundaries — never
		// inside a commit — and each arrival sees itself alone and fences
		// directly. Forcing the ring makes the first committer the leader,
		// and its batch-window dwell yields the processor to the other
		// shard pipelines until they reach their publish points: the
		// rendezvous a multicore host gets from true concurrency.
		cfg.GroupCommit = nvm.GroupCommitConfig{
			Enabled: true, ForceCombine: true, WindowNS: windowNS}
	}
	w, err := newWorldCfg(mkSpec("ido").mk, o.DeviceBytes, cfg)
	if err != nil {
		return nil, 0, err
	}
	shards, buckets := 16, 64
	keys := uint64(4096)
	if o.Quick {
		shards, keys = 8, 1024
	}
	store, err := server.NewMcStore(&memcache.Env{Reg: w.reg, LM: w.lm}, shards, buckets)
	if err != nil {
		return nil, 0, err
	}
	srv, err := server.New(w.rt, store, server.Config{Proto: server.ProtoMemcache}, nil)
	if err != nil {
		return nil, 0, err
	}
	defer srv.Close()

	th, err := w.rt.NewThread()
	if err != nil {
		return nil, 0, err
	}
	var kb [8]byte
	for k := uint64(0); k < keys; k++ {
		k0, k1, ok := server.McKeyWords(loadgen.AppendKey(kb[:0], k))
		if !ok {
			return nil, 0, fmt.Errorf("unstorable warm key %d", k)
		}
		shard := store.ShardOf(k0, k1)
		v := k
		th.Exec(func() { store.Set(th, shard, k0, k1, v) })
	}

	dev := w.reg.Dev
	dev.ResetStats()
	res, err := loadgen.Run(loadgen.Config{
		Proto:    loadgen.ProtoMemcache,
		Conns:    nconns,
		Pipeline: pipeline,
		Keys:     keys,
		SetPct:   40,
		DelPct:   20,
		Duration: o.Duration,
		Seed:     o.seed(),
	}, func() (net.Conn, error) {
		client, srvEnd := loadgen.MemPipe(64 << 10)
		if serr := srv.ServeConn(srvEnd); serr != nil {
			return nil, serr
		}
		return client, nil
	})
	if err != nil {
		return nil, 0, err
	}
	fences := dev.Stats().Fences
	return res, fences, nil
}
