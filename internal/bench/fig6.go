package bench

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/kv/redis"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/stats"
	"github.com/ido-nvm/ido/internal/workload"
)

// Fig6Runtimes are the systems compared on Redis in the paper.
var Fig6Runtimes = []string{"origin", "ido", "justdo", "atlas", "nvml"}

// Fig6Ranges are the paper's key-range sizes: 10K, 100K, and 1M.
var Fig6Ranges = []uint64{10_000, 100_000, 1_000_000}

// RunFig6 regenerates Fig. 6: single-threaded Redis throughput under the
// lru_test-style workload (80% GET / 20% SET, power-law keys) for the
// three database sizes.
func RunFig6(o Options) (*stats.Figure, error) {
	ranges := Fig6Ranges
	if o.Quick {
		ranges = []uint64{1_000, 10_000}
	}
	fig := &stats.Figure{Title: "Fig6 Redis throughput by key range", XLabel: "key range", YLabel: "Mops/s"}
	type job struct {
		sp spec
		kr uint64
	}
	var jobs []job
	for _, sp := range specs(Fig6Runtimes...) {
		for _, kr := range ranges {
			jobs = append(jobs, job{sp, kr})
		}
	}
	ops := make([]uint64, len(jobs))
	err := runPoints(o, len(jobs), func(i int) error {
		j := jobs[i]
		n, err := runRedisPoint(o, j.sp, fmt.Sprintf("fig6/%s/k%d", j.sp.name, j.kr), j.kr, 0)
		if err != nil {
			return fmt.Errorf("fig6 %s/%d: %w", j.sp.name, j.kr, err)
		}
		ops[i] = n
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		fig.Add(j.sp.name, float64(j.kr), stats.Throughput(ops[i], o.Duration))
	}
	fprintf(o.out(), "%s\n", fig)
	return fig, nil
}

func runRedisPoint(o Options, sp spec, label string, keyRange uint64, extraNS int) (uint64, error) {
	// Warm with zero added latency; the Fig. 9 knob applies to the
	// measured interval only.
	w, err := newWorld(o, sp.mk, 0, o.tracer(label))
	if err != nil {
		return 0, err
	}
	env := &redis.Env{Reg: w.reg}
	// Redis keeps its dict load factor near one.
	buckets := int(keyRange)
	if buckets < 64 {
		buckets = 64
	}
	db, _, err := redis.New(env, buckets)
	if err != nil {
		return 0, err
	}
	// Preload half the key range so gets mostly hit, as lru_test does.
	warm, err := w.rt.NewThread()
	if err != nil {
		return 0, err
	}
	warmN := keyRange / 2
	if o.Quick {
		warmN = keyRange / 8
	}
	for k := uint64(1); k <= warmN; k++ {
		k := k
		warm.Exec(func() { db.Set(warm, k, k) })
	}
	w.reg.Dev.SetExtraLatency(extraNS)
	// Redis is single threaded: one server worker.
	return measure(w, 1, o.Duration, func(i int, t persist.Thread) func() {
		gen := workload.NewPowerLaw(int64(7+i), keyRange, 20)
		return func() {
			op := gen.Next()
			if op.Kind == workload.OpInsert {
				db.Set(t, op.Key, op.Val)
			} else {
				db.Get(t, op.Key)
			}
		}
	})
}
