package bench

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/stats"
	"github.com/ido-nvm/ido/internal/workload"
)

// Fig5Runtimes are the systems compared on Memcached in the paper.
var Fig5Runtimes = []string{"origin", "ido", "justdo", "atlas", "mnemosyne", "nvthreads"}

// RunFig5 regenerates Fig. 5: Memcached throughput (Mops/s) as a function
// of thread count, for the insertion-intensive (50% set / 50% get) and
// search-intensive (10% set / 90% get) memaslap-style workloads, with
// uniformly distributed 16-byte keys and 8-byte values. A third,
// delete-heavy mix (40% set / 40% get / 20% delete) exercises the
// unchain + LRU-unlink + count FASEs that the paper's two mixes never
// reach.
func RunFig5(o Options) ([]*stats.Figure, error) {
	mixes := []struct {
		title     string
		insertPct int
		deletePct int
	}{
		{"Fig5a Memcached insertion-intensive (50/50)", 50, 0},
		{"Fig5b Memcached search-intensive (10/90)", 10, 0},
		{"Fig5c Memcached delete-heavy (40/40/20)", 40, 20},
	}
	// memcached grows its hash power to keep the load factor near one;
	// size the table to the key range accordingly.
	keyRange := uint64(1 << 15)
	buckets := 1 << 15
	if o.Quick {
		keyRange = 1 << 10
		buckets = 1 << 10
	}
	var out []*stats.Figure
	sps := specs(Fig5Runtimes...)
	for mi, mix := range mixes {
		fig := &stats.Figure{Title: mix.title, XLabel: "threads", YLabel: "Mops/s"}
		type job struct {
			sp spec
			nt int
		}
		var jobs []job
		for _, sp := range sps {
			for _, nt := range o.Threads {
				jobs = append(jobs, job{sp, nt})
			}
		}
		ops := make([]uint64, len(jobs))
		mi := mi
		err := runPoints(o, len(jobs), func(i int) error {
			j := jobs[i]
			label := fmt.Sprintf("fig5%c/%s/t%d", 'a'+mi, j.sp.name, j.nt)
			n, err := runMemcachedPoint(o, j.sp, label, j.nt, mix.insertPct, mix.deletePct, keyRange, buckets)
			if err != nil {
				return fmt.Errorf("fig5 %s/%d: %w", j.sp.name, j.nt, err)
			}
			ops[i] = n
			return nil
		})
		if err != nil {
			return nil, err
		}
		for i, j := range jobs {
			fig.Add(j.sp.name, float64(j.nt), stats.Throughput(ops[i], o.Duration))
		}
		fprintf(o.out(), "%s\n", fig)
		out = append(out, fig)
	}
	return out, nil
}

func runMemcachedPoint(o Options, sp spec, label string, nThreads, insertPct, deletePct int, keyRange uint64, buckets int) (uint64, error) {
	w, err := newWorld(o, sp.mk, 0, o.tracer(label))
	if err != nil {
		return 0, err
	}
	return measureMemcached(o, w, nThreads, insertPct, deletePct, keyRange, buckets, 0)
}

// measureMemcached builds a warmed cache in w and measures the memaslap
// mix; shared by Fig. 5 and Fig. 9 (extraNS is applied after the warm-up).
func measureMemcached(o Options, w *world, nThreads, insertPct, deletePct int, keyRange uint64, buckets, extraNS int) (uint64, error) {
	env := &memcache.Env{Reg: w.reg, LM: w.lm}
	cache, _, err := memcache.New(env, buckets)
	if err != nil {
		return 0, err
	}
	// Warm the cache so searches mostly hit, as memaslap does.
	warm, err := w.rt.NewThread()
	if err != nil {
		return 0, err
	}
	warmN := keyRange / 2
	if o.Quick {
		warmN = keyRange / 4
	}
	for k := uint64(1); k <= warmN; k++ {
		k := k
		warm.Exec(func() { cache.Set(warm, k, k^0x5A5A, k) })
	}
	w.reg.Dev.SetExtraLatency(extraNS)
	return measure(w, nThreads, o.Duration, func(i int, t persist.Thread) func() {
		gen := workload.NewUniformMix(int64(1000+i), keyRange, insertPct, deletePct)
		return func() {
			op := gen.Next()
			k0, k1 := op.Key, op.Key^0x5A5A
			switch op.Kind {
			case workload.OpInsert:
				cache.Set(t, k0, k1, op.Val)
			case workload.OpDelete:
				cache.Delete(t, k0, k1)
			default:
				cache.Get(t, k0, k1)
			}
		}
	})
}
