package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ds"
	"github.com/ido-nvm/ido/internal/irprog"
	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/stats"
	"github.com/ido-nvm/ido/internal/vm"
)

// ObsRuntimes are the systems whose persist-event profiles the obs
// experiment reports (every native runtime plus the two VM modes).
var ObsRuntimes = []string{"origin", "ido", "justdo", "atlas", "mnemosyne", "nvthreads", "nvml"}

// obsKinds are the event kinds worth a column in the summary table.
var obsKinds = []obs.Kind{
	obs.KFlush, obs.KFence, obs.KNTStore, obs.KLogAppend,
	obs.KBoundary, obs.KRegion, obs.KFASE, obs.KLockAcq,
}

// ObsResult is one runtime's traced-run profile: exact per-kind event
// counts, ring drops, and the metric-histogram summaries.
type ObsResult struct {
	Runtime string
	Counts  map[string]uint64
	Dropped uint64
	Hists   map[string]obs.Summary
}

// RunObs runs a fixed stack workload under every runtime with tracing
// enabled and reports each runtime's persist-event profile. It also
// enforces the tracer's core invariant — the traced flush/fence/nt-store/
// evict counts must exactly equal the device's counters — and fails the
// experiment on any divergence.
func RunObs(o Options) ([]ObsResult, error) {
	iters := 4000
	if o.Quick {
		iters = 400
	}
	var out []ObsResult
	var lastTr *obs.Tracer
	var lastDev *nvm.Device
	for _, sp := range specs(ObsRuntimes...) {
		tr := obs.New(obs.DefaultConfig())
		w, err := newWorld(o, sp.mk, 0, tr)
		if err != nil {
			return nil, fmt.Errorf("obs %s: %w", sp.name, err)
		}
		env := &ds.Env{Reg: w.reg, LM: w.lm}
		s, _, err := ds.NewStack(env)
		if err != nil {
			return nil, fmt.Errorf("obs %s: %w", sp.name, err)
		}
		th, err := w.rt.NewThread()
		if err != nil {
			return nil, fmt.Errorf("obs %s: %w", sp.name, err)
		}
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < iters; i++ {
			if rng.Intn(2) == 0 {
				th.Exec(func() { s.Push(th, rng.Uint64()|1) })
			} else {
				th.Exec(func() { s.Pop(th) })
			}
		}
		if err := checkTraceMatchesDevice(sp.name, tr, w.reg.Dev.Stats()); err != nil {
			return nil, err
		}
		out = append(out, summarize(sp.name, tr))
		lastTr, lastDev = tr, w.reg.Dev
	}
	vmOut, err := runObsVM(o, iters)
	if err != nil {
		return nil, err
	}
	out = append(out, vmOut...)
	printObs(o, out)
	printObsOverhead(o, measureObsOverhead(lastTr, lastDev))
	return out, nil
}

// ObsOverhead is the snapshot-plane cost row: wall time and heap
// allocations per cumulative Collector.Read and per interval Diff, both
// measured against a tracer left warm by a full traced workload.
type ObsOverhead struct {
	ReadNS, DiffNS         float64
	ReadAllocs, DiffAllocs uint64
}

// measureObsOverhead times the two snapshot-plane operations the admin
// scrape path performs. Allocations are a per-iteration malloc delta on
// one OS thread, so the reported counts are exact for the steady state:
// Read fills in place and Diff is pure arithmetic, so both must be 0
// (the strict gate lives in the metrics package benchmarks and CI).
func measureObsOverhead(tr *obs.Tracer, dev *nvm.Device) ObsOverhead {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	coll := metrics.NewCollector(tr, dev)
	var prev, cur metrics.Snapshot
	var d metrics.Delta
	coll.Read(&prev)
	coll.Read(&cur)
	metrics.Diff(&prev, &cur, &d)
	const iters = 2000
	var oh ObsOverhead
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		coll.Read(&cur)
	}
	oh.ReadNS = float64(time.Since(t0).Nanoseconds()) / iters
	runtime.ReadMemStats(&ms1)
	oh.ReadAllocs = (ms1.Mallocs - ms0.Mallocs) / iters
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		metrics.Diff(&prev, &cur, &d)
	}
	oh.DiffNS = float64(time.Since(t0).Nanoseconds()) / iters
	runtime.ReadMemStats(&ms1)
	oh.DiffAllocs = (ms1.Mallocs - ms0.Mallocs) / iters
	return oh
}

func printObsOverhead(o Options, oh ObsOverhead) {
	out := o.out()
	fprintf(out, "Obs: snapshot plane overhead (per scrape, warm tracer)\n")
	var tb stats.Table
	tb.AddRow("op", "ns", "allocs")
	tb.AddRow("collector-read", fmt.Sprintf("%.0f", oh.ReadNS), fmt.Sprintf("%d", oh.ReadAllocs))
	tb.AddRow("interval-diff", fmt.Sprintf("%.0f", oh.DiffNS), fmt.Sprintf("%d", oh.DiffAllocs))
	fprintf(out, "%s\n", tb.String())
}

// runObsVM profiles the VM engines on the irprog stack kernel.
func runObsVM(o Options, iters int) ([]ObsResult, error) {
	prog, err := irprog.Compile(compile.Config{})
	if err != nil {
		return nil, err
	}
	var out []ObsResult
	for _, mode := range []vm.Mode{vm.ModeIDO, vm.ModeJUSTDO} {
		tr := obs.New(obs.DefaultConfig())
		m, reg, lm := newVMWorld(prog, mode, false, tr)
		stk, err := irprog.NewStack(reg, lm)
		if err != nil {
			return nil, err
		}
		th, err := m.NewThread()
		if err != nil {
			return nil, err
		}
		name := "vm-" + mode.String()
		for i := 0; i < iters; i++ {
			if i%2 == 0 {
				_, err = th.Call("stack_push", stk, uint64(i+1))
			} else {
				_, err = th.Call("stack_pop", stk)
			}
			if err != nil {
				return nil, fmt.Errorf("obs %s: %w", name, err)
			}
		}
		if err := checkTraceMatchesDevice(name, tr, reg.Dev.Stats()); err != nil {
			return nil, err
		}
		out = append(out, summarize(name, tr))
	}
	return out, nil
}

// checkTraceMatchesDevice enforces the 1:1 pairing of device stat counts
// and trace events (the property the conformance tests assert).
func checkTraceMatchesDevice(name string, tr *obs.Tracer, ds nvm.Stats) error {
	for _, c := range []struct {
		kind obs.Kind
		want uint64
	}{
		{obs.KFlush, ds.Flushes},
		{obs.KFence, ds.Fences},
		{obs.KNTStore, ds.NTStores},
		{obs.KEvict, ds.Evictions},
	} {
		if got := tr.Count(c.kind); got != c.want {
			return fmt.Errorf("obs %s: traced %s count %d != device count %d",
				name, c.kind, got, c.want)
		}
	}
	return nil
}

func summarize(name string, tr *obs.Tracer) ObsResult {
	r := ObsResult{
		Runtime: name,
		Counts:  map[string]uint64{},
		Dropped: tr.Dropped(),
		Hists:   map[string]obs.Summary{},
	}
	for k := obs.Kind(0); int(k) < obs.NumKinds; k++ {
		r.Counts[k.String()] = tr.Count(k)
	}
	for h := obs.HistKind(0); int(h) < obs.NumHists; h++ {
		r.Hists[h.String()] = tr.Hist(h)
	}
	return r
}

func printObs(o Options, results []ObsResult) {
	out := o.out()
	fprintf(out, "Obs: persist-event counts per runtime (stack workload; traced == device counters)\n")
	var tb stats.Table
	hdr := []string{"runtime"}
	for _, k := range obsKinds {
		hdr = append(hdr, k.String())
	}
	hdr = append(hdr, "dropped")
	tb.AddRow(hdr...)
	for _, r := range results {
		row := []string{r.Runtime}
		for _, k := range obsKinds {
			row = append(row, fmt.Sprintf("%d", r.Counts[k.String()]))
		}
		row = append(row, fmt.Sprintf("%d", r.Dropped))
		tb.AddRow(row...)
	}
	fprintf(out, "%s\n", tb.String())

	fprintf(out, "Obs: metric histograms per runtime (mean/p50/p99)\n")
	var tb2 stats.Table
	tb2.AddRow("runtime", "flush-ns", "fence-ns", "log-bytes/fase", "outputs/region", "stores/region")
	cell := func(s obs.Summary) string {
		if s.Count == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f/%d/%d", s.Mean, s.P50, s.P99)
	}
	for _, r := range results {
		tb2.AddRow(r.Runtime,
			cell(r.Hists[obs.HFlushNS.String()]),
			cell(r.Hists[obs.HFenceNS.String()]),
			cell(r.Hists[obs.HLogBytesPerFASE.String()]),
			cell(r.Hists[obs.HOutputsPerRegion.String()]),
			cell(r.Hists[obs.HRegionStores.String()]))
	}
	fprintf(out, "%s\n", tb2.String())
}
