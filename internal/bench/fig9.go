package bench

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/stats"
	"github.com/ido-nvm/ido/internal/workload"
)

// Fig9Runtimes are the systems whose latency sensitivity the paper plots.
var Fig9Runtimes = []string{"ido", "justdo", "atlas"}

// RunFig9 regenerates Fig. 9: absolute throughput as a function of added
// NVM write latency (a configurable delay after each write-back and
// non-temporal store, §V-E), for the Memcached 32-thread
// insertion-intensive point and the Redis "large" (1M-key) point.
//
// Reproduction note: the paper's knee — iDO/Atlas flat to ~100 ns, JUSTDO
// collapsing at +20 ns — appears here at proportionally higher added
// latency because this simulator's baseline fence cost is several times
// the paper's hardware sfence; the orderings (JUSTDO slowest everywhere,
// losing the most absolute throughput per added nanosecond because it
// issues ~2x the write-backs) are the reproduction targets. See
// EXPERIMENTS.md.
func RunFig9(o Options) ([]*stats.Figure, error) {
	latencies := workload.LatencyPoints()
	if o.Quick {
		latencies = []int{0, 100, 2000}
	}
	mcThreads := 32
	if max := o.Threads[len(o.Threads)-1]; mcThreads > max {
		mcThreads = max
	}
	keyRange := uint64(1 << 15)
	buckets := 1 << 15
	redisRange := uint64(1_000_000)
	if o.Quick {
		keyRange, buckets, redisRange = 1<<10, 1<<10, 10_000
	}

	figMC := &stats.Figure{Title: "Fig9a Memcached (insert-intensive) vs NVM latency",
		XLabel: "added ns", YLabel: "Mops/s"}
	figRD := &stats.Figure{Title: "Fig9b Redis (large) vs NVM latency",
		XLabel: "added ns", YLabel: "Mops/s"}

	type job struct {
		sp spec
		ns int
	}
	var jobs []job
	for _, sp := range specs(Fig9Runtimes...) {
		for _, ns := range latencies {
			jobs = append(jobs, job{sp, ns})
		}
	}
	// Each grid cell measures two worlds (Memcached and Redis).
	opsMC := make([]uint64, len(jobs))
	opsRD := make([]uint64, len(jobs))
	err := runPoints(o, len(jobs), func(i int) error {
		j := jobs[i]
		n, err := runMemcachedPointLat(o, j.sp, fmt.Sprintf("fig9a/%s/ns%d", j.sp.name, j.ns),
			mcThreads, keyRange, buckets, j.ns)
		if err != nil {
			return fmt.Errorf("fig9 mc %s/%d: %w", j.sp.name, j.ns, err)
		}
		opsMC[i] = n
		n, err = runRedisPoint(o, j.sp, fmt.Sprintf("fig9b/%s/ns%d", j.sp.name, j.ns), redisRange, j.ns)
		if err != nil {
			return fmt.Errorf("fig9 redis %s/%d: %w", j.sp.name, j.ns, err)
		}
		opsRD[i] = n
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		figMC.Add(j.sp.name, float64(j.ns), stats.Throughput(opsMC[i], o.Duration))
		figRD.Add(j.sp.name, float64(j.ns), stats.Throughput(opsRD[i], o.Duration))
	}
	fprintf(o.out(), "%s\n%s\n", figMC, figRD)
	return []*stats.Figure{figMC, figRD}, nil
}

func runMemcachedPointLat(o Options, sp spec, label string, nThreads int, keyRange uint64, buckets, extraNS int) (uint64, error) {
	// Same workload as Fig. 5's insertion-intensive mix with the latency
	// knob turned on after the warm-up.
	w, err := newWorld(o, sp.mk, 0, o.tracer(label))
	if err != nil {
		return 0, err
	}
	return measureMemcached(o, w, nThreads, 50, 0, keyRange, buckets, extraNS)
}
