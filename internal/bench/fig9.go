package bench

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/stats"
	"github.com/ido-nvm/ido/internal/workload"
)

// Fig9Runtimes are the systems whose latency sensitivity the paper plots.
var Fig9Runtimes = []string{"ido", "justdo", "atlas"}

// RunFig9 regenerates Fig. 9: absolute throughput as a function of added
// NVM write latency (a configurable delay after each write-back and
// non-temporal store, §V-E), for the Memcached 32-thread
// insertion-intensive point and the Redis "large" (1M-key) point.
//
// Reproduction note: the paper's knee — iDO/Atlas flat to ~100 ns, JUSTDO
// collapsing at +20 ns — appears here at proportionally higher added
// latency because this simulator's baseline fence cost is several times
// the paper's hardware sfence; the orderings (JUSTDO slowest everywhere,
// losing the most absolute throughput per added nanosecond because it
// issues ~2x the write-backs) are the reproduction targets. See
// EXPERIMENTS.md.
func RunFig9(o Options) ([]*stats.Figure, error) {
	latencies := workload.LatencyPoints()
	if o.Quick {
		latencies = []int{0, 100, 2000}
	}
	mcThreads := 32
	if max := o.Threads[len(o.Threads)-1]; mcThreads > max {
		mcThreads = max
	}
	keyRange := uint64(1 << 15)
	buckets := 1 << 15
	redisRange := uint64(1_000_000)
	if o.Quick {
		keyRange, buckets, redisRange = 1<<10, 1<<10, 10_000
	}

	figMC := &stats.Figure{Title: "Fig9a Memcached (insert-intensive) vs NVM latency",
		XLabel: "added ns", YLabel: "Mops/s"}
	figRD := &stats.Figure{Title: "Fig9b Redis (large) vs NVM latency",
		XLabel: "added ns", YLabel: "Mops/s"}

	for _, sp := range specs(Fig9Runtimes...) {
		for _, ns := range latencies {
			ops, err := runMemcachedPointLat(o, sp, mcThreads, keyRange, buckets, ns)
			if err != nil {
				return nil, fmt.Errorf("fig9 mc %s/%d: %w", sp.name, ns, err)
			}
			figMC.Add(sp.name, float64(ns), stats.Throughput(ops, o.Duration))

			ops, err = runRedisPoint(o, sp, redisRange, ns)
			if err != nil {
				return nil, fmt.Errorf("fig9 redis %s/%d: %w", sp.name, ns, err)
			}
			figRD.Add(sp.name, float64(ns), stats.Throughput(ops, o.Duration))
		}
	}
	fprintf(o.out(), "%s\n%s\n", figMC, figRD)
	return []*stats.Figure{figMC, figRD}, nil
}

func runMemcachedPointLat(o Options, sp spec, nThreads int, keyRange uint64, buckets, extraNS int) (uint64, error) {
	// Same workload as Fig. 5's insertion-intensive mix with the latency
	// knob turned on after the warm-up.
	w, err := newWorld(sp.mk, o.DeviceBytes, 0, o.Tracer)
	if err != nil {
		return 0, err
	}
	return measureMemcached(o, w, nThreads, 50, 0, keyRange, buckets, extraNS)
}
