package bench

import (
	"fmt"
	"time"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/irprog"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/stats"
	"github.com/ido-nvm/ido/internal/vm"
)

// VMResult is one workload/mode/engine point of the VM dispatch
// experiment.
type VMResult struct {
	Workload string
	Mode     vm.Mode
	Legacy   bool
	CallsPS  float64
}

// vmSpinSrc is a pure register loop: no loads, stores, or locks, so every
// cycle is dispatch (operand decode, PC packing, crash-budget tick). This
// is the workload where engine overhead is the whole cost.
const vmSpinSrc = `
func spin 1 {
entry:
  i = const 0
  acc = const 0
  jmp loop
loop:
  acc = add acc i
  acc = xor acc 11
  i = add i 1
  c = lt i r0
  br c loop done
done:
  ret acc
}
`

// RunVM compares the threaded-code engine against the legacy tree-walker
// per mode on two workloads: "spin" (interpreter-bound, isolates pure
// dispatch cost) and "stack" (irprog push/pop, where FASE protocol and
// device events dilute dispatch). Both engines execute the identical
// instruction stream and emit the identical device events, so the ratio
// is engine overhead only.
func RunVM(o Options) ([]VMResult, error) {
	spinIR, err := ir.Parse(vmSpinSrc)
	if err != nil {
		return nil, err
	}
	spinProg, err := compile.Program(spinIR, compile.Config{})
	if err != nil {
		return nil, err
	}
	stackProg, err := irprog.Compile(compile.Config{})
	if err != nil {
		return nil, err
	}
	modes := []vm.Mode{vm.ModeOrigin, vm.ModeIDO, vm.ModeJUSTDO}
	var out []VMResult
	for _, wl := range []string{"spin", "stack"} {
		for _, mode := range modes {
			for _, legacy := range []bool{false, true} {
				var cps float64
				var err error
				if wl == "spin" {
					cps, err = runVMSpinPoint(o, spinProg, mode, legacy)
				} else {
					cps, err = runVMStackPoint(o, stackProg, mode, legacy)
				}
				if err != nil {
					return nil, fmt.Errorf("vm %s %v legacy=%v: %w", wl, mode, legacy, err)
				}
				out = append(out, VMResult{Workload: wl, Mode: mode, Legacy: legacy, CallsPS: cps})
			}
		}
	}
	printVM(o, out)
	return out, nil
}

func newVMWorld(prog *compile.Compiled, mode vm.Mode, legacy bool, tr *obs.Tracer) (*vm.Machine, *region.Region, *locks.Manager) {
	cfg := nvmConfig(1<<24, 0)
	cfg.Tracer = tr // attach at birth so trace counts equal device stats
	reg := region.Create(1<<24, cfg)
	lm := locks.NewManager(reg)
	m := vm.New(reg, lm, prog, mode)
	m.Legacy = legacy
	m.SetCrashBudget(1 << 62)
	return m, reg, lm
}

// runVMSpinPoint counts spin(256) calls per second: ~1286 dispatched
// instructions per call, zero device events.
func runVMSpinPoint(o Options, prog *compile.Compiled, mode vm.Mode, legacy bool) (float64, error) {
	m, _, _ := newVMWorld(prog, mode, legacy, o.Tracer)
	th, err := m.NewThread()
	if err != nil {
		return 0, err
	}
	const iters = 256
	for i := 0; i < 8; i++ {
		if _, err := th.Call("spin", iters); err != nil {
			return 0, err
		}
	}
	var calls uint64
	start := time.Now()
	deadline := start.Add(o.Duration)
	for time.Now().Before(deadline) {
		for i := 0; i < 16; i++ {
			if _, err := th.Call("spin", iters); err != nil {
				return 0, err
			}
		}
		calls += 16
	}
	return float64(calls) / time.Since(start).Seconds(), nil
}

func runVMStackPoint(o Options, prog *compile.Compiled, mode vm.Mode, legacy bool) (float64, error) {
	m, reg, lm := newVMWorld(prog, mode, legacy, o.Tracer)
	stk, err := irprog.NewStack(reg, lm)
	if err != nil {
		return 0, err
	}
	th, err := m.NewThread()
	if err != nil {
		return 0, err
	}
	// Warm up, then run push/pop pairs (stack depth stays bounded) until
	// the deadline, counting completed calls.
	for i := uint64(0); i < 64; i++ {
		if _, err := th.Call("stack_push", stk, i); err != nil {
			return 0, err
		}
		if _, err := th.Call("stack_pop", stk); err != nil {
			return 0, err
		}
	}
	var calls uint64
	start := time.Now()
	deadline := start.Add(o.Duration)
	for time.Now().Before(deadline) {
		for i := 0; i < 32; i++ {
			if _, err := th.Call("stack_push", stk, uint64(i)); err != nil {
				return 0, err
			}
			if _, err := th.Call("stack_pop", stk); err != nil {
				return 0, err
			}
		}
		calls += 64
	}
	return float64(calls) / time.Since(start).Seconds(), nil
}

func printVM(o Options, results []VMResult) {
	out := o.out()
	fprintf(out, "VM dispatch: threaded-code engine vs legacy tree-walker (calls/s)\n")
	var tb stats.Table
	tb.AddRow("workload", "mode", "decoded", "legacy", "speedup")
	type key struct {
		wl   string
		mode vm.Mode
	}
	byKey := map[key][2]float64{}
	for _, r := range results {
		k := key{r.Workload, r.Mode}
		e := byKey[k]
		if r.Legacy {
			e[1] = r.CallsPS
		} else {
			e[0] = r.CallsPS
		}
		byKey[k] = e
	}
	for _, wl := range []string{"spin", "stack"} {
		for _, mode := range []vm.Mode{vm.ModeOrigin, vm.ModeIDO, vm.ModeJUSTDO} {
			e := byKey[key{wl, mode}]
			ratio := 0.0
			if e[1] > 0 {
				ratio = e[0] / e[1]
			}
			tb.AddRow(wl, mode.String(),
				fmt.Sprintf("%10.0f", e[0]), fmt.Sprintf("%10.0f", e[1]),
				fmt.Sprintf("%.2fx", ratio))
		}
	}
	fprintf(out, "%s\n", tb.String())
}
