package bench

import (
	"fmt"
	"math/rand"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/irprog"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/stats"
	"github.com/ido-nvm/ido/internal/vm"
)

// Fig8Benchmarks are the six benchmarks whose region characteristics the
// paper reports.
var Fig8Benchmarks = []string{"stack", "queue", "orderedlist", "hashmap", "memcached", "redis"}

// Fig8Result carries one benchmark's dynamic region statistics.
type Fig8Result struct {
	Name string
	// StoresCDF[i] is the fraction of dynamic regions with <= i stores.
	StoresCDF []float64
	// LiveInCDF[i] is the fraction of dynamic regions logging <= i
	// registers.
	LiveInCDF []float64
	Regions   uint64
}

// RunFig8 regenerates Fig. 8: the benchmark kernels are compiled by the
// iDO compiler pipeline and executed in the VM (the simulation's Pin),
// which counts stores and logged live-in registers per dynamic
// idempotent region.
func RunFig8(o Options) ([]Fig8Result, error) {
	prog, err := irprog.Compile(compile.Config{})
	if err != nil {
		return nil, err
	}
	iters := 4000
	if o.Quick {
		iters = 400
	}
	var out []Fig8Result
	for _, name := range Fig8Benchmarks {
		cfg := nvmConfig(1<<26, 0)
		cfg.Tracer = o.Tracer
		reg := region.Create(1<<26, cfg)
		lm := locks.NewManager(reg)
		m := vm.New(reg, lm, prog, vm.ModeIDO)
		if err := runFig8Workload(m, reg, lm, name, iters); err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", name, err)
		}
		s := m.Stats()
		r := Fig8Result{
			Name:      name,
			StoresCDF: stats.CDF(s.StoresPerRegion[:]),
			LiveInCDF: stats.CDF(s.OutputsPerRegion[:]),
			Regions:   s.Regions,
		}
		out = append(out, r)
	}
	printFig8(o, out)
	return out, nil
}

func runFig8Workload(m *vm.Machine, reg *region.Region, lm *locks.Manager, name string, iters int) error {
	th, err := m.NewThread()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(99))
	call := func(fn string, args ...uint64) error {
		_, err := th.Call(fn, args...)
		return err
	}
	switch name {
	case "stack":
		stk, err := irprog.NewStack(reg, lm)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if rng.Intn(2) == 0 {
				if err := call("stack_push", stk, uint64(i+1)); err != nil {
					return err
				}
			} else if err := call("stack_pop", stk); err != nil {
				return err
			}
		}
	case "queue":
		q, err := irprog.NewQueue(reg, lm)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if rng.Intn(2) == 0 {
				if err := call("queue_enq", q, uint64(i+1)); err != nil {
					return err
				}
			} else if err := call("queue_deq", q); err != nil {
				return err
			}
		}
	case "orderedlist":
		l, err := irprog.NewList(reg, lm)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			k := uint64(rng.Intn(64)) + 1
			if rng.Intn(2) == 0 {
				if err := call("list_insert", l, k, k); err != nil {
					return err
				}
			} else if err := call("list_get", l, k); err != nil {
				return err
			}
		}
	case "hashmap":
		mp, err := irprog.NewMap(reg, lm, 16)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			k := uint64(rng.Intn(512)) + 1
			if rng.Intn(2) == 0 {
				if err := call("map_put", mp, k, k); err != nil {
					return err
				}
			} else if err := call("map_get", mp, k); err != nil {
				return err
			}
		}
	case "memcached":
		tb, err := irprog.NewKVTable(reg, lm, 64, true)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			k := uint64(rng.Intn(512)) + 1
			if rng.Intn(2) == 0 {
				if err := call("mc_set", tb, k, k); err != nil {
					return err
				}
			} else if err := call("mc_get", tb, k); err != nil {
				return err
			}
		}
	case "redis":
		tb, err := irprog.NewKVTable(reg, lm, 64, false)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			k := uint64(rng.Intn(512)) + 1
			if rng.Intn(5) == 0 {
				if err := call("redis_set", tb, k, k); err != nil {
					return err
				}
			} else if err := call("redis_get", tb, k); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown benchmark %q", name)
	}
	return nil
}

func printFig8(o Options, results []Fig8Result) {
	out := o.out()
	fprintf(out, "Fig8 (top): cumulative %% of dynamic regions with <= N stores\n")
	var tb stats.Table
	tb.AddRow("benchmark", "N=0", "N=1", "N=2", "N=4", "N=8", "regions")
	for _, r := range results {
		tb.AddRow(r.Name,
			pct(r.StoresCDF, 0), pct(r.StoresCDF, 1), pct(r.StoresCDF, 2),
			pct(r.StoresCDF, 4), pct(r.StoresCDF, 8), fmt.Sprintf("%d", r.Regions))
	}
	fprintf(out, "%s\n", tb.String())
	fprintf(out, "Fig8 (bottom): cumulative %% of dynamic regions logging <= N live-in registers\n")
	var tb2 stats.Table
	tb2.AddRow("benchmark", "N=0", "N=1", "N=2", "N=4", "N=8")
	for _, r := range results {
		tb2.AddRow(r.Name,
			pct(r.LiveInCDF, 0), pct(r.LiveInCDF, 1), pct(r.LiveInCDF, 2),
			pct(r.LiveInCDF, 4), pct(r.LiveInCDF, 8))
	}
	fprintf(out, "%s\n", tb2.String())
}

func pct(cdf []float64, i int) string {
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return fmt.Sprintf("%5.1f%%", cdf[i]*100)
}
