package vm

import (
	"math/rand"
	"testing"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/idem"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/region"
)

// Test kernels. Structure layouts:
//
//	counter/stack header: [0]=lock holder, [8]=value / top pointer
//	stack node:           [0]=value, [8]=next
const kernels = `
func inc 1 {
entry:
  lk = load r0 0
  lock lk
  v = load r0 8
  w = add v 1
  store r0 8 w
  unlock lk
  ret w
}

func push 2 {
entry:
  lk = load r0 0
  lock lk
  top = load r0 8
  node = alloc 16
  store node 0 r1
  store node 8 top
  store r0 8 node
  unlock lk
  ret
}

func pop 1 {
entry:
  lk = load r0 0
  lock lk
  top = load r0 8
  c = ne top 0
  br c take out
take:
  nxt = load top 8
  store r0 8 nxt
  jmp out
out:
  unlock lk
  ret top
}

func sum 1 {
entry:
  lk = load r0 0
  lock lk
  cur = load r0 8
  acc = const 0
  jmp loop
loop:
  c = ne cur 0
  br c body done
body:
  v = load cur 0
  acc = add acc v
  cur = load cur 8
  jmp loop
done:
  store r0 16 acc
  unlock lk
  ret acc
}
`

type world struct {
	reg  *region.Region
	lm   *locks.Manager
	m    *Machine
	prog *compile.Compiled
	stk  uint64 // counter/stack header address
}

func build(t *testing.T, mode Mode, idemCfg compile.Config) *world {
	t.Helper()
	prog, err := ir.Parse(kernels)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compile.Program(prog, idemCfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := region.Create(1<<22, nvm.Config{})
	lm := locks.NewManager(reg)
	m := New(reg, lm, c, mode)
	hdr, err := reg.Alloc.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lm.Create()
	if err != nil {
		t.Fatal(err)
	}
	reg.Dev.Store64(hdr, l.Holder())
	reg.Dev.Store64(hdr+8, 0)
	reg.Dev.PersistRange(hdr, 24)
	reg.Dev.Fence()
	reg.SetRoot(1, hdr)
	return &world{reg: reg, lm: lm, m: m, prog: c, stk: hdr}
}

// reopen simulates process death: crash the device, reattach, rebuild the
// machine over the surviving persistent bytes.
func (w *world) reopen(t *testing.T, mode nvm.CrashMode, rng *rand.Rand, vmMode Mode) *world {
	t.Helper()
	reg2, err := w.reg.Crash(mode, rng)
	if err != nil {
		t.Fatal(err)
	}
	lm2 := locks.NewManager(reg2)
	m2 := New(reg2, lm2, w.prog, vmMode)
	return &world{reg: reg2, lm: lm2, m: m2, prog: w.prog, stk: reg2.Root(1)}
}

func TestIncNoCrashAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeOrigin, ModeIDO, ModeJUSTDO} {
		w := build(t, mode, compile.Config{})
		th, err := w.m.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			rets, err := th.Call("inc", w.stk)
			if err != nil {
				t.Fatalf("%v: %v", mode, err)
			}
			if rets[0] != uint64(i+1) {
				t.Fatalf("%v: inc returned %d, want %d", mode, rets[0], i+1)
			}
		}
		if got := w.reg.Dev.Load64(w.stk + 8); got != 10 {
			t.Fatalf("%v: counter = %d", mode, got)
		}
	}
}

// TestIDOIncCrashEverywhere injects a crash at every possible event
// offset and verifies that recovery restores exact atomicity under all
// three crash adversaries.
func TestIDOIncCrashEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cm := range []nvm.CrashMode{nvm.CrashDiscard, nvm.CrashRandom, nvm.CrashPersistAll} {
		for budget := int64(0); ; budget++ {
			w := build(t, ModeIDO, compile.Config{})
			th, _ := w.m.NewThread()
			w.m.SetCrashBudget(budget)
			_, err := th.Call("inc", w.stk)
			if err == nil {
				// Budget exceeded the op length: done with this mode.
				if got := w.reg.Dev.Load64(w.stk + 8); got != 1 {
					t.Fatalf("clean run counter = %d", got)
				}
				break
			}
			if err != ErrCrashed {
				t.Fatal(err)
			}
			w2 := w.reopen(t, cm, rng, ModeIDO)
			stats, err := w2.m.Recover()
			if err != nil {
				t.Fatalf("mode %v budget %d: %v", cm, budget, err)
			}
			got := w2.reg.Dev.Load64(w2.stk + 8)
			if got != 0 && got != 1 {
				t.Fatalf("mode %v budget %d: counter = %d (atomicity broken)", cm, budget, got)
			}
			if stats.Resumed > 0 && got != 1 {
				t.Fatalf("mode %v budget %d: resumed but counter = %d", cm, budget, got)
			}
			// The lock must be free after recovery.
			if !w2.lm.ByHolder(w2.reg.Dev.Load64(w2.stk)).TryAcquire() {
				t.Fatalf("budget %d: lock still held after recovery", budget)
			}
		}
	}
}

// TestJUSTDOIncCrashEverywhere does the same under the persistent-cache
// model JUSTDO was designed for.
func TestJUSTDOIncCrashEverywhere(t *testing.T) {
	for budget := int64(0); ; budget++ {
		w := build(t, ModeJUSTDO, compile.Config{})
		th, _ := w.m.NewThread()
		w.m.SetCrashBudget(budget)
		_, err := th.Call("inc", w.stk)
		if err == nil {
			break
		}
		w2 := w.reopen(t, nvm.CrashPersistAll, nil, ModeJUSTDO)
		if _, err := w2.m.Recover(); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		got := w2.reg.Dev.Load64(w2.stk + 8)
		if got != 0 && got != 1 {
			t.Fatalf("budget %d: counter = %d", budget, got)
		}
	}
}

// checkStack walks the stack and verifies it is a clean suffix of the
// push sequence: values k, k-1, ..., 1 for some k <= pushed.
func checkStack(t *testing.T, w *world, pushed int) int {
	t.Helper()
	top := w.reg.Dev.Load64(w.stk + 8)
	if top == 0 {
		return 0
	}
	k := int(w.reg.Dev.Load64(top))
	if k > pushed {
		t.Fatalf("top value %d exceeds pushes %d", k, pushed)
	}
	want := k
	for cur := top; cur != 0; cur = w.reg.Dev.Load64(cur + 8) {
		if got := int(w.reg.Dev.Load64(cur)); got != want {
			t.Fatalf("stack corrupt: node value %d, want %d", got, want)
		}
		want--
	}
	if want != 0 {
		t.Fatalf("stack bottom reached at %d, want 0", want)
	}
	return k
}

// TestIDOStackCrashFuzz pushes values 1..N with a random crash and
// verifies the stack is a consistent prefix after recovery, repeatedly.
func TestIDOStackCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		w := build(t, ModeIDO, compile.Config{})
		th, _ := w.m.NewThread()
		const N = 6
		budget := int64(rng.Intn(160))
		w.m.SetCrashBudget(budget)
		pushed := 0
		crashed := false
		for i := 1; i <= N; i++ {
			if _, err := th.Call("push", w.stk, uint64(i)); err != nil {
				crashed = true
				break
			}
			pushed = i
		}
		w.m.SetCrashBudget(-1)
		mode := nvm.CrashMode(rng.Intn(3))
		w2 := w.reopen(t, mode, rng, ModeIDO)
		stats, err := w2.m.Recover()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		depth := checkStack(t, w2, pushed+1)
		if !crashed && depth != N {
			t.Fatalf("trial %d: clean run depth %d", trial, depth)
		}
		if crashed && depth < pushed {
			t.Fatalf("trial %d: completed pushes lost: depth %d < %d", trial, depth, pushed)
		}
		if stats.Resumed > 0 && depth != pushed+1 {
			t.Fatalf("trial %d: resumed push not completed: depth %d, pushed %d", trial, depth, pushed)
		}
	}
}

// TestIDOPopCrashFuzz pops from a prepared stack with crash injection.
func TestIDOPopCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		w := build(t, ModeIDO, compile.Config{})
		th, _ := w.m.NewThread()
		const N = 5
		for i := 1; i <= N; i++ {
			if _, err := th.Call("push", w.stk, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		w.m.SetCrashBudget(int64(rng.Intn(120)))
		pops := 0
		for i := 0; i < 3; i++ {
			if _, err := th.Call("pop", w.stk); err != nil {
				break
			}
			pops++
		}
		w.m.SetCrashBudget(-1)
		w2 := w.reopen(t, nvm.CrashRandom, rng, ModeIDO)
		if _, err := w2.m.Recover(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		depth := checkStack(t, w2, N)
		if depth < N-pops-1 || depth > N-pops {
			t.Fatalf("trial %d: depth %d after %d(+1?) pops from %d", trial, depth, pops, N)
		}
	}
}

// TestIDOLoopKernel exercises the loop-header cut path (sum) including a
// crash inside the loop.
func TestIDOLoopKernel(t *testing.T) {
	w := build(t, ModeIDO, compile.Config{})
	th, _ := w.m.NewThread()
	for i := 1; i <= 8; i++ {
		if _, err := th.Call("push", w.stk, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	rets, err := th.Call("sum", w.stk)
	if err != nil {
		t.Fatal(err)
	}
	if rets[0] != 36 {
		t.Fatalf("sum = %d, want 36", rets[0])
	}
	// Now crash mid-sum at many points; the recovered sum must be stored.
	rng := rand.New(rand.NewSource(3))
	for budget := int64(5); budget < 200; budget += 7 {
		w2 := build(t, ModeIDO, compile.Config{})
		th2, _ := w2.m.NewThread()
		for i := 1; i <= 8; i++ {
			if _, err := th2.Call("push", w2.stk, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		w2.m.SetCrashBudget(budget)
		_, err := th2.Call("sum", w2.stk)
		w2.m.SetCrashBudget(-1)
		w3 := w2.reopen(t, nvm.CrashRandom, rng, ModeIDO)
		stats, rerr := w3.m.Recover()
		if rerr != nil {
			t.Fatalf("budget %d: %v", budget, rerr)
		}
		if err != nil && stats.Resumed > 0 {
			if got := w3.reg.Dev.Load64(w3.stk + 16); got != 36 {
				t.Fatalf("budget %d: recovered sum = %d, want 36", budget, got)
			}
		}
	}
}

func TestVMStatsHistograms(t *testing.T) {
	w := build(t, ModeIDO, compile.Config{})
	th, _ := w.m.NewThread()
	for i := 1; i <= 20; i++ {
		if _, err := th.Call("push", w.stk, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := w.m.Stats()
	if s.FASEs != 20 {
		t.Fatalf("FASEs = %d", s.FASEs)
	}
	if s.Regions == 0 || s.Stores != 60 {
		t.Fatalf("regions=%d stores=%d", s.Regions, s.Stores)
	}
	var hist uint64
	for _, c := range s.StoresPerRegion {
		hist += c
	}
	if hist != s.Regions {
		t.Fatalf("histogram mass %d != regions %d", hist, s.Regions)
	}
}

func TestPerStoreAblationProducesMoreRegions(t *testing.T) {
	run := func(cfg compile.Config) uint64 {
		w := build(t, ModeIDO, cfg)
		th, _ := w.m.NewThread()
		for i := 1; i <= 10; i++ {
			if _, err := th.Call("push", w.stk, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return w.m.Stats().LoggedEntries
	}
	normal := run(compile.Config{})
	perStore := run(compile.Config{Idem: idem.Config{MaxStoresPerRegion: 1}})
	if perStore <= normal {
		t.Fatalf("per-store ablation logged %d <= %d", perStore, normal)
	}
}

func TestJUSTDOCostsMoreFencesThanIDO(t *testing.T) {
	fences := func(mode Mode, fn string) uint64 {
		w := build(t, mode, compile.Config{})
		th, _ := w.m.NewThread()
		w.reg.Dev.ResetStats()
		for i := 1; i <= 50; i++ {
			args := []uint64{w.stk}
			if fn == "push" {
				args = append(args, uint64(i))
			}
			if _, err := th.Call(fn, args...); err != nil {
				t.Fatal(err)
			}
		}
		return w.reg.Dev.Stats().Fences
	}
	ido := fences(ModeIDO, "push")
	jd := fences(ModeJUSTDO, "push")
	if jd <= ido {
		t.Fatalf("JUSTDO fences %d <= iDO fences %d", jd, ido)
	}
	// inc allocates nothing, so origin's fence count isolates the runtime:
	// it must be zero (the push variant pays only allocator-metadata
	// fences, which every mode pays equally).
	if origin := fences(ModeOrigin, "inc"); origin != 0 {
		t.Fatalf("origin issued %d fences", origin)
	}
}

func TestUnknownFunction(t *testing.T) {
	w := build(t, ModeIDO, compile.Config{})
	th, _ := w.m.NewThread()
	if _, err := th.Call("nope"); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := th.Call("inc"); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

// TestSAllocAndTrace exercises the NVM stack allocator and the OpPrint
// trace channel, including crash recovery across a salloc'd frame.
func TestSAllocAndTrace(t *testing.T) {
	src := `
func scratch 1 {
entry:
  lk = load r0 0
  lock lk
  buf = salloc 16
  store buf 0 7
  store buf 8 8
  a = load buf 0
  b = load buf 8
  s = add a b
  store r0 8 s
  print s
  unlock lk
  ret s
}
`
	prog, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compile.Program(prog, compile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := region.Create(1<<20, nvm.Config{})
	lm := locks.NewManager(reg)
	m := New(reg, lm, c, ModeIDO)
	hdr, _ := reg.Alloc.Alloc(16)
	l, _ := lm.Create()
	reg.Dev.Store64(hdr, l.Holder())
	reg.Dev.PersistRange(hdr, 16)
	reg.Dev.Fence()
	th, _ := m.NewThread()
	rets, err := th.Call("scratch", hdr)
	if err != nil {
		t.Fatal(err)
	}
	if rets[0] != 15 {
		t.Fatalf("ret = %d", rets[0])
	}
	if tr := m.Trace(); len(tr) != 1 || tr[0] != 15 {
		t.Fatalf("trace = %v", tr)
	}
	// Repeated calls reset the frame: no stack creep.
	for i := 0; i < 300; i++ {
		if _, err := th.Call("scratch", hdr); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

// TestSAllocCrashRecovery crashes inside a FASE that uses stack slots and
// verifies resumption completes it.
func TestSAllocCrashRecovery(t *testing.T) {
	src := `
func scratch 1 {
entry:
  lk = load r0 0
  lock lk
  buf = salloc 16
  store buf 0 41
  v = load buf 0
  w = add v 1
  store r0 8 w
  unlock lk
  ret
}
`
	prog, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compile.Program(prog, compile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for budget := int64(0); budget < 60; budget++ {
		reg := region.Create(1<<20, nvm.Config{})
		lm := locks.NewManager(reg)
		m := New(reg, lm, c, ModeIDO)
		hdr, _ := reg.Alloc.Alloc(16)
		l, _ := lm.Create()
		reg.Dev.Store64(hdr, l.Holder())
		reg.Dev.PersistRange(hdr, 16)
		reg.Dev.Fence()
		reg.SetRoot(1, hdr)
		th, _ := m.NewThread()
		m.SetCrashBudget(budget)
		_, callErr := th.Call("scratch", hdr)
		m.SetCrashBudget(-1)
		reg2, err := reg.Crash(nvm.CrashRandom, rng)
		if err != nil {
			t.Fatal(err)
		}
		m2 := New(reg2, locks.NewManager(reg2), c, ModeIDO)
		st, err := m2.Recover()
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		got := reg2.Dev.Load64(reg2.Root(1) + 8)
		if got != 0 && got != 42 {
			t.Fatalf("budget %d: cell = %d", budget, got)
		}
		if (callErr == nil || st.Resumed > 0) && got != 42 {
			t.Fatalf("budget %d: FASE completed/resumed but cell = %d", budget, got)
		}
	}
}

func TestVMErrorPaths(t *testing.T) {
	prog, _ := ir.Parse("func f 0 {\nentry:\n  ret\n}\n")
	c, err := compile.Program(prog, compile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := region.Create(1<<18, nvm.Config{})
	m := New(reg, locks.NewManager(reg), c, ModeOrigin)
	th, _ := m.NewThread()
	if _, err := th.Call("f", 1, 2); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := th.Call("ghost"); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := th.Call("f"); err != nil {
		t.Fatal(err)
	}
}
