package vm

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/irprog"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Event-count equivalence: the threaded-code engine and the legacy
// tree-walker must be indistinguishable at the device boundary. The
// observation below captures everything the paper's figures are computed
// from — return values, trace output, runtime statistics, the device's
// store/write-back/fence counters, the number of crash-budget ticks
// consumed, and a prefix of the persistent image itself.
type observed struct {
	rets   [][]uint64
	trace  []uint64
	rstats persist.RuntimeStats
	dstats nvm.Stats
	ticks  int64
	mem    []uint64
}

// equivBudget arms injection without ever firing, so tick consumption is
// part of the observation (a tick miscount would shift every
// crash-injection point).
const equivBudget = int64(1) << 40

// consumedTicks is the number of crash-budget events actually consumed:
// the shared-budget drawdown minus the allotments still parked on
// threads (batch refills reserve tickBatch events at a time).
func consumedTicks(m *Machine, budget int64) int64 {
	c := budget - m.crashBudget.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := m.crashGen.Load()
	for _, t := range m.threads {
		if t.tickGen == gen {
			c -= t.ticks
		}
	}
	return c
}

func observe(m *Machine, reg *region.Region, rets [][]uint64) observed {
	o := observed{
		rets:   rets,
		trace:  m.Trace(),
		rstats: m.Stats(),
		dstats: reg.Dev.Stats(),
		ticks:  consumedTicks(m, equivBudget),
	}
	o.mem = make([]uint64, 1<<15)
	reg.Dev.ReadWords(0, o.mem)
	return o
}

func diffObserved(t *testing.T, label string, dec, leg observed) {
	t.Helper()
	if !reflect.DeepEqual(dec.rets, leg.rets) {
		t.Errorf("%s: return values diverge\ndecoded: %v\nlegacy:  %v", label, dec.rets, leg.rets)
	}
	if !reflect.DeepEqual(dec.trace, leg.trace) {
		t.Errorf("%s: traces diverge\ndecoded: %v\nlegacy:  %v", label, dec.trace, leg.trace)
	}
	if !reflect.DeepEqual(dec.rstats, leg.rstats) {
		t.Errorf("%s: RuntimeStats diverge\ndecoded: %+v\nlegacy:  %+v", label, dec.rstats, leg.rstats)
	}
	if dec.dstats != leg.dstats {
		t.Errorf("%s: device event counts diverge\ndecoded: %+v\nlegacy:  %+v", label, dec.dstats, leg.dstats)
	}
	if dec.ticks != leg.ticks {
		t.Errorf("%s: crash ticks diverge: decoded %d, legacy %d", label, dec.ticks, leg.ticks)
	}
	if !reflect.DeepEqual(dec.mem, leg.mem) {
		for i := range dec.mem {
			if dec.mem[i] != leg.mem[i] {
				t.Errorf("%s: persistent image diverges at word %d (byte %#x): decoded %#x, legacy %#x",
					label, i, i*8, dec.mem[i], leg.mem[i])
				break
			}
		}
	}
}

// runIrprogConformance executes a fixed deterministic workload over all
// six irprog data-structure kernel families on one engine.
func runIrprogConformance(t *testing.T, mode Mode, legacy bool) observed {
	t.Helper()
	prog, err := irprog.Compile(compile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := region.Create(1<<24, nvm.Config{})
	lm := locks.NewManager(reg)
	m := New(reg, lm, prog, mode)
	m.Legacy = legacy
	m.SetCrashBudget(equivBudget)

	stk, err := irprog.NewStack(reg, lm)
	if err != nil {
		t.Fatal(err)
	}
	q, err := irprog.NewQueue(reg, lm)
	if err != nil {
		t.Fatal(err)
	}
	lst, err := irprog.NewList(reg, lm)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := irprog.NewMap(reg, lm, 4)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := irprog.NewKVTable(reg, lm, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := irprog.NewKVTable(reg, lm, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	th, err := m.NewThread()
	if err != nil {
		t.Fatal(err)
	}

	var rets [][]uint64
	call := func(fn string, args ...uint64) {
		t.Helper()
		r, err := th.Call(fn, args...)
		if err != nil {
			t.Fatalf("%s(%v): %v", fn, args, err)
		}
		// Call's result aliases the thread's scratch buffer; copy to keep.
		rets = append(rets, append([]uint64(nil), r...))
	}
	for i := uint64(0); i < 24; i++ {
		call("stack_push", stk, i*3+1)
		if i%3 == 2 {
			call("stack_pop", stk)
		}
		call("queue_enq", q, i*7+1)
		if i%4 == 3 {
			call("queue_deq", q)
		}
		call("list_insert", lst, (i*13)%32, i+100)
		call("map_put", mp, (i*11)%64, i+200)
		call("mc_set", mc, (i*5)%48, i+300)
		call("redis_set", rd, (i*9)%48, i+400)
	}
	for k := uint64(0); k < 32; k++ {
		call("list_get", lst, k)
		call("map_get", mp, k*2)
		call("mc_get", mc, k)
		call("redis_get", rd, k)
	}
	return observe(m, reg, rets)
}

func TestEquivIrprogConformance(t *testing.T) {
	for _, mode := range []Mode{ModeOrigin, ModeIDO, ModeJUSTDO} {
		dec := runIrprogConformance(t, mode, false)
		leg := runIrprogConformance(t, mode, true)
		diffObserved(t, "irprog/"+mode.String(), dec, leg)
	}
}

// A trace-heavy kernel: prints inside and outside the FASE, a loop, and
// a tracked store, so trace ordering is checked against FASE protocol
// events under every mode.
const equivTraceSrc = `
func chat 2 {
entry:
  lk = load r0 0
  lock lk
  i = const 0
  jmp loop
loop:
  v = load r0 8
  w = add v i
  store r0 8 w
  print w
  i = add i 1
  c = lt i r1
  br c loop done
done:
  unlock lk
  print i
  ret w
}
`

func runTraceConformance(t *testing.T, mode Mode, legacy bool) observed {
	t.Helper()
	prog, err := ir.Parse(equivTraceSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compile.Program(prog, compile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := region.Create(1<<22, nvm.Config{})
	lm := locks.NewManager(reg)
	m := New(reg, lm, c, mode)
	m.Legacy = legacy
	m.SetCrashBudget(equivBudget)
	hdr, err := reg.Alloc.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lm.Create()
	if err != nil {
		t.Fatal(err)
	}
	reg.Dev.Store64(hdr, l.Holder())
	reg.Dev.PersistRange(hdr, 16)
	reg.Dev.Fence()
	th, err := m.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	var rets [][]uint64
	for i := uint64(1); i <= 8; i++ {
		r, err := th.Call("chat", hdr, i)
		if err != nil {
			t.Fatal(err)
		}
		rets = append(rets, append([]uint64(nil), r...))
	}
	return observe(m, reg, rets)
}

func TestEquivTraceConformance(t *testing.T) {
	for _, mode := range []Mode{ModeOrigin, ModeIDO, ModeJUSTDO} {
		dec := runTraceConformance(t, mode, false)
		leg := runTraceConformance(t, mode, true)
		diffObserved(t, "trace/"+mode.String(), dec, leg)
	}
}

// TestEquivCrashRecoverSweep proves crash-injection points line up: for
// every budget the two engines must crash in the same call, leave the
// device with identical event counts, and recover to the same counter
// value. Crash modes are the deterministic ones (CrashDiscard for iDO,
// CrashPersistAll for JUSTDO — its fidelity model) so the comparison is
// exact.
func TestEquivCrashRecoverSweep(t *testing.T) {
	const calls = 4
	for _, tc := range []struct {
		mode Mode
		cm   nvm.CrashMode
	}{
		{ModeIDO, nvm.CrashDiscard},
		{ModeJUSTDO, nvm.CrashPersistAll},
	} {
		run := func(legacy bool, budget int64) (crashedAt int, atCrash nvm.Stats, final uint64) {
			w := build(t, tc.mode, compile.Config{})
			w.m.Legacy = legacy
			th, err := w.m.NewThread()
			if err != nil {
				t.Fatal(err)
			}
			w.m.SetCrashBudget(budget)
			crashedAt = -1
			for i := 0; i < calls; i++ {
				_, err := th.Call("inc", w.stk)
				if err == ErrCrashed {
					crashedAt = i
					break
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			atCrash = w.reg.Dev.Stats()
			w2 := w.reopen(t, tc.cm, rand.New(rand.NewSource(1)), tc.mode)
			w2.m.Legacy = legacy
			if _, err := w2.m.Recover(); err != nil {
				t.Fatalf("mode %v budget %d: recover: %v", tc.mode, budget, err)
			}
			return crashedAt, atCrash, w2.reg.Dev.Load64(w2.stk + 8)
		}
		sawCrash, sawClean := false, false
		for b := int64(0); b <= 120; b += 1 {
			c1, s1, f1 := run(false, b)
			c2, s2, f2 := run(true, b)
			if c1 != c2 {
				t.Fatalf("mode %v budget %d: decoded crashed in call %d, legacy in %d", tc.mode, b, c1, c2)
			}
			if s1 != s2 {
				t.Fatalf("mode %v budget %d: device stats at crash diverge\ndecoded: %+v\nlegacy:  %+v", tc.mode, b, s1, s2)
			}
			if f1 != f2 {
				t.Fatalf("mode %v budget %d: recovered counter diverges: decoded %d, legacy %d", tc.mode, b, f1, f2)
			}
			if c1 >= 0 {
				sawCrash = true
			} else {
				sawClean = true
			}
		}
		if !sawCrash || !sawClean {
			t.Fatalf("mode %v: sweep did not cover both crashing and clean runs", tc.mode)
		}
	}
}
