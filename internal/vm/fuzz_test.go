package vm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/region"
)

// The differential fuzzer generates random deterministic FASE programs,
// compiles them through the full pipeline, and checks that
//
//  1. executing under ModeIDO produces exactly the persistent state that
//     the uninstrumented ModeOrigin execution produces (instrumentation
//     must be semantics-preserving), and
//  2. crashing a ModeIDO execution at a random point and recovering
//     yields the reference state after either k or k+1 complete calls
//     (FASE atomicity).
//
// Programs operate on a table: word 0 holds the lock holder, words
// 1..nSlots are data slots.

const fuzzSlots = 12

// genProgram emits a random single-FASE function over the table in r0.
// All control flow and arithmetic is deterministic, so repeated calls
// have identical effects given identical starting states.
func genProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("func f 1 {\nentry:\n")
	b.WriteString("  lk = load r0 0\n")
	b.WriteString("  lock lk\n")

	vars := []string{}
	newVar := func() string {
		v := fmt.Sprintf("v%d", len(vars))
		vars = append(vars, v)
		return v
	}
	anyVar := func() string {
		if len(vars) == 0 || rng.Intn(4) == 0 {
			return fmt.Sprintf("%d", rng.Intn(50))
		}
		return vars[rng.Intn(len(vars))]
	}
	slotOff := func() int { return 8 * (1 + rng.Intn(fuzzSlots)) }

	emitStmt := func() {
		switch rng.Intn(4) {
		case 0: // load a slot
			fmt.Fprintf(&b, "  %s = load r0 %d\n", newVar(), slotOff())
		case 1: // store a slot
			fmt.Fprintf(&b, "  store r0 %d %s\n", slotOff(), anyVar())
		case 2: // arithmetic (operands chosen before the new def exists)
			op := []string{"add", "sub", "mul", "xor", "and", "or"}[rng.Intn(6)]
			a, c := anyVar(), anyVar()
			fmt.Fprintf(&b, "  %s = %s %s %s\n", newVar(), op, a, c)
		case 3: // read-modify-write (a guaranteed antidependence)
			off := slotOff()
			v := newVar()
			fmt.Fprintf(&b, "  %s = load r0 %d\n", v, off)
			w := newVar()
			fmt.Fprintf(&b, "  %s = add %s %d\n", w, v, 1+rng.Intn(9))
			fmt.Fprintf(&b, "  store r0 %d %s\n", off, w)
		}
	}

	nStmt := 4 + rng.Intn(10)
	for i := 0; i < nStmt; i++ {
		emitStmt()
	}

	// Optionally a deterministic branch on a slot value: both arms do
	// slot work, then control rejoins. Exercises join cuts and
	// region-per-path recovery.
	if rng.Intn(2) == 0 {
		c := newVar()
		fmt.Fprintf(&b, "  %s = load r0 %d\n", c, slotOff())
		g := newVar()
		fmt.Fprintf(&b, "  %s = and %s 1\n", g, c)
		fmt.Fprintf(&b, "  br %s then else\nthen:\n", g)
		fmt.Fprintf(&b, "  store r0 %d %s\n", slotOff(), anyVar())
		fmt.Fprintf(&b, "  jmp merge\nelse:\n")
		to := slotOff()
		tv := newVar()
		fmt.Fprintf(&b, "  %s = load r0 %d\n", tv, to)
		w := newVar()
		fmt.Fprintf(&b, "  %s = add %s 3\n", w, tv)
		fmt.Fprintf(&b, "  store r0 %d %s\n", to, w)
		fmt.Fprintf(&b, "  jmp merge\nmerge:\n")
		vars = vars[:0] // defs above are not defined on all paths
	}

	// Optionally a bounded loop accumulating over slots.
	if rng.Intn(2) == 0 {
		iters := 2 + rng.Intn(3)
		off := slotOff()
		fmt.Fprintf(&b, "  i = const 0\n  acc = const 0\n  jmp loop\nloop:\n")
		fmt.Fprintf(&b, "  x = load r0 %d\n", slotOff())
		fmt.Fprintf(&b, "  acc = add acc x\n")
		fmt.Fprintf(&b, "  i = add i 1\n")
		fmt.Fprintf(&b, "  c = lt i %d\n", iters)
		fmt.Fprintf(&b, "  br c loop after\nafter:\n")
		fmt.Fprintf(&b, "  store r0 %d acc\n", off)
	}

	b.WriteString("  unlock lk\n  ret\n}\n")
	return b.String()
}

// fuzzWorld builds a machine with a table whose slots hold seeded values.
func fuzzWorld(t *testing.T, prog *compile.Compiled, mode Mode, seed int64) (*Machine, *region.Region, uint64) {
	t.Helper()
	reg := region.Create(1<<20, nvm.Config{})
	lm := locks.NewManager(reg)
	m := New(reg, lm, prog, mode)
	tbl, err := reg.Alloc.Alloc(8 * (fuzzSlots + 1))
	if err != nil {
		t.Fatal(err)
	}
	l, err := lm.Create()
	if err != nil {
		t.Fatal(err)
	}
	reg.Dev.Store64(tbl, l.Holder())
	vr := rand.New(rand.NewSource(seed))
	for s := 1; s <= fuzzSlots; s++ {
		reg.Dev.Store64(tbl+uint64(s)*8, uint64(vr.Intn(100)))
	}
	reg.Dev.PersistRange(tbl, 8*(fuzzSlots+1))
	reg.Dev.Fence()
	reg.SetRoot(1, tbl)
	return m, reg, tbl
}

func slotsOf(reg *region.Region, tbl uint64) [fuzzSlots]uint64 {
	var out [fuzzSlots]uint64
	for s := 1; s <= fuzzSlots; s++ {
		out[s-1] = reg.Dev.Load64(tbl + uint64(s)*8)
	}
	return out
}

// referenceStates runs the program under ModeOrigin for up to n calls and
// records the slot state after each call count 0..n.
func referenceStates(t *testing.T, prog *compile.Compiled, seed int64, n int) [][fuzzSlots]uint64 {
	t.Helper()
	m, reg, tbl := fuzzWorld(t, prog, ModeOrigin, seed)
	th, err := m.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	states := [][fuzzSlots]uint64{slotsOf(reg, tbl)}
	for i := 0; i < n; i++ {
		if _, err := th.Call("f", tbl); err != nil {
			t.Fatal(err)
		}
		states = append(states, slotsOf(reg, tbl))
	}
	return states
}

func TestFuzzCompiledSemanticsMatchOrigin(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		src := genProgram(rng)
		p, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse: %v\n%s", trial, err, src)
		}
		prog, err := compile.Program(p, compile.Config{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		ref := referenceStates(t, prog, int64(trial), 3)

		m, reg, tbl := fuzzWorld(t, prog, ModeIDO, int64(trial))
		th, err := m.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		for call := 1; call <= 3; call++ {
			if _, err := th.Call("f", tbl); err != nil {
				t.Fatalf("trial %d call %d: %v", trial, call, err)
			}
			if got := slotsOf(reg, tbl); got != ref[call] {
				t.Fatalf("trial %d: iDO state after call %d diverges\nprogram:\n%s\ngot:  %v\nwant: %v",
					trial, call, src, got, ref[call])
			}
		}
	}
}

func TestFuzzCrashRecoveryMatchesPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		prng := rand.New(rand.NewSource(int64(2000 + trial)))
		src := genProgram(prng)
		p, err := ir.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := compile.Program(p, compile.Config{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		ref := referenceStates(t, prog, int64(trial), 3)

		m, reg, tbl := fuzzWorld(t, prog, ModeIDO, int64(trial))
		th, err := m.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		// Two clean calls, then a crash somewhere inside the third.
		for i := 0; i < 2; i++ {
			if _, err := th.Call("f", tbl); err != nil {
				t.Fatal(err)
			}
		}
		m.SetCrashBudget(int64(rng.Intn(300)))
		_, callErr := th.Call("f", tbl)
		m.SetCrashBudget(-1)

		mode := nvm.CrashMode(rng.Intn(3))
		reg2, err := reg.Crash(mode, rng)
		if err != nil {
			t.Fatal(err)
		}
		m2 := New(reg2, locks.NewManager(reg2), prog, ModeIDO)
		st, err := m2.Recover()
		if err != nil {
			t.Fatalf("trial %d: recover: %v\n%s", trial, err, src)
		}
		got := slotsOf(reg2, reg2.Root(1))
		if got != ref[2] && got != ref[3] {
			t.Fatalf("trial %d (crash=%v, resumed=%d): state matches neither prefix\nprogram:\n%s\ngot: %v\nafter2: %v\nafter3: %v",
				trial, callErr != nil, st.Resumed, src, got, ref[2], ref[3])
		}
		// If the third call completed or was resumed, it must be ref[3].
		if (callErr == nil || st.Resumed > 0) && got != ref[3] {
			t.Fatalf("trial %d: completed/resumed call not reflected\n%s", trial, src)
		}
	}
}

// TestFuzzDecodedVsLegacy is the engine differential over random
// programs: the threaded-code engine and the legacy tree-walker must
// produce identical slot states, device event counts, and consumed
// crash ticks — and when a random budget fires, they must crash at the
// same point and recover to the same state.
func TestFuzzDecodedVsLegacy(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		prng := rand.New(rand.NewSource(int64(3000 + trial)))
		src := genProgram(prng)
		p, err := ir.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := compile.Program(p, compile.Config{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		for _, mode := range []Mode{ModeOrigin, ModeIDO, ModeJUSTDO} {
			run := func(legacy bool) ([fuzzSlots]uint64, nvm.Stats, int64) {
				m, reg, tbl := fuzzWorld(t, prog, mode, int64(trial))
				m.Legacy = legacy
				m.SetCrashBudget(equivBudget)
				th, err := m.NewThread()
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 3; i++ {
					if _, err := th.Call("f", tbl); err != nil {
						t.Fatalf("trial %d mode %v: %v\n%s", trial, mode, err, src)
					}
				}
				return slotsOf(reg, tbl), reg.Dev.Stats(), consumedTicks(m, equivBudget)
			}
			ds, dd, dt := run(false)
			ls, ld, lt := run(true)
			if ds != ls {
				t.Fatalf("trial %d mode %v: slot states diverge\n%s\ndecoded: %v\nlegacy:  %v", trial, mode, src, ds, ls)
			}
			if dd != ld {
				t.Fatalf("trial %d mode %v: device stats diverge\n%s\ndecoded: %+v\nlegacy:  %+v", trial, mode, src, dd, ld)
			}
			if dt != lt {
				t.Fatalf("trial %d mode %v: ticks diverge: decoded %d, legacy %d\n%s", trial, mode, dt, lt, src)
			}
		}
	}
}

// TestFuzzDecodedCrashRecoverDifferential crashes both engines at the
// same random budget and recovers each with its own engine; the
// post-recovery slot states must be identical word for word (a stronger
// claim than matching a reference prefix: resumption itself must follow
// the same path through the flat stream as through the block tree).
func TestFuzzDecodedCrashRecoverDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		prng := rand.New(rand.NewSource(int64(4000 + trial)))
		src := genProgram(prng)
		p, err := ir.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := compile.Program(p, compile.Config{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		budget := int64(rng.Intn(300))
		run := func(legacy bool) (bool, [fuzzSlots]uint64, int) {
			m, reg, tbl := fuzzWorld(t, prog, ModeIDO, int64(trial))
			m.Legacy = legacy
			th, err := m.NewThread()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if _, err := th.Call("f", tbl); err != nil {
					t.Fatal(err)
				}
			}
			m.SetCrashBudget(budget)
			_, callErr := th.Call("f", tbl)
			m.SetCrashBudget(-1)
			reg2, err := reg.Crash(nvm.CrashDiscard, nil)
			if err != nil {
				t.Fatal(err)
			}
			m2 := New(reg2, locks.NewManager(reg2), prog, ModeIDO)
			m2.Legacy = legacy
			st, err := m2.Recover()
			if err != nil {
				t.Fatalf("trial %d: recover: %v\n%s", trial, err, src)
			}
			return callErr != nil, slotsOf(reg2, reg2.Root(1)), st.Resumed
		}
		dCrashed, dState, dRes := run(false)
		lCrashed, lState, lRes := run(true)
		if dCrashed != lCrashed || dRes != lRes {
			t.Fatalf("trial %d budget %d: crash/resume behavior diverges (decoded crashed=%v resumed=%d, legacy crashed=%v resumed=%d)\n%s",
				trial, budget, dCrashed, dRes, lCrashed, lRes, src)
		}
		if dState != lState {
			t.Fatalf("trial %d budget %d: recovered states diverge\n%s\ndecoded: %v\nlegacy:  %v",
				trial, budget, src, dState, lState)
		}
	}
}
