package vm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Recover completes every FASE a crash interrupted, per the machine's
// mode (§III-C for iDO; the analogous store-granularity resumption for
// JUSTDO). It walks the persistent log list, re-creates a thread per
// interrupted log, re-acquires locks via the indirect holders, restores
// the register file from the per-register NVM slots, jumps to the logged
// location, and executes to the end of the FASE.
//
// Fidelity note: JUSTDO was designed for machines with nonvolatile
// caches (§I); its single-slot ⟨pc, addr, value⟩ log can tear under the
// volatile-cache crash adversary. JUSTDO recovery is therefore exact
// under nvm.CrashPersistAll (the persistent-cache model the original
// paper assumes) — which is how the tests exercise it — while iDO
// recovery is exact under every crash mode.
func (m *Machine) Recover() (persist.RecoveryStats, error) {
	start := time.Now()
	dev := m.Reg.Dev
	attempt := nvm.EnterRecovery()
	defer nvm.ExitRecovery()
	// With a recovery-scoped crash budget armed, run the deterministic
	// single-goroutine restore path (see core.Runtime.Recover): the Nth
	// recovery event must be the same event on every replay, and the
	// §III-C barrier is preserved by finishing every restore/re-acquire
	// before the first resume.
	serial := nvm.RecoveryCrashArmed()
	var stats persist.RecoveryStats
	stats.Attempt = attempt
	stats.Audit = &obs.RecoveryAudit{Runtime: "vm-" + m.Mode.String(), Attempt: attempt}
	if m.Mode == ModeOrigin {
		return stats, nil
	}
	rc := dev.Tracer().ThreadRing("vm-" + m.Mode.String() + "/recover")
	scanT0 := rc.Clock()

	type pending struct {
		t        *Thread
		pc       uint64
		bits     uint64
		ai       int // index into stats.Audit.Threads
		locks    []uint64
		acquired int // locks actually re-acquired (slot order)
		err      error
	}
	var work []*pending

	// Each interrupted thread's lock-slot restore and re-acquisition runs
	// in a goroutine launched mid-walk, overlapping the serial log-list
	// scan. The acq group is the recovery barrier — every lock
	// re-acquired before any thread resumes — and the gate holds
	// resumption until the walk has seen every log. Each lock was held by
	// at most one crashed thread, so the acquisitions cannot deadlock.
	var acq, done sync.WaitGroup
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	var abort atomic.Bool

	// A crash injected while this frame is driving the walk must not
	// strand launched goroutines at <-gate: flag the abort, open the gate
	// so they drain down the release path, and re-raise.
	defer func() {
		if r := recover(); r != nil {
			abort.Store(true)
			openGate()
			done.Wait()
			panic(r)
		}
	}()

	restore := func(w *pending) {
		t, p := w.t, w.t.log
		held := 0
		for i := 0; i < numLk; i++ {
			if w.bits&(1<<uint(i)) != 0 {
				h := dev.Load64(p + lLocks + uint64(i)*8)
				if h == 0 {
					continue
				}
				t.slots[i] = h
				t.bits |= 1 << uint(i)
				w.locks = append(w.locks, h)
				held++
			}
		}
		t.lockDepth = held
		if held == 0 {
			t.durDepth = 1
		}
		for s := 0; s < numLk; s++ {
			if t.slots[s] != 0 {
				m.LM.ByHolder(t.slots[s]).Acquire()
				w.acquired++
				t.rc.Emit(obs.KLockAcq, t.slots[s], 0)
			}
		}
	}
	// release drops only the first w.acquired held slots: a panic can
	// land after t.slots is filled but before (or mid) the acquisition
	// loop, and releasing a never-acquired lock would be a fatal
	// unlock-of-unlocked-mutex.
	release := func(w *pending) {
		rel := w.acquired
		for s := 0; s < numLk && rel > 0; s++ {
			if w.t.slots[s] != 0 {
				m.LM.ByHolder(w.t.slots[s]).Release()
				rel--
			}
		}
	}

	launch := func(w *pending) {
		defer done.Done()
		func() {
			defer acq.Done()
			defer func() {
				if r := recover(); r != nil {
					w.err = fmt.Errorf("vm: restore of log %#x panicked: %v", w.t.log, r)
				}
			}()
			restore(w)
		}()
		<-gate
		if abort.Load() || w.err != nil {
			release(w)
			return
		}
		defer func() {
			if r := recover(); r != nil {
				w.err = fmt.Errorf("vm: resume at pc %#x panicked: %v", w.pc, r)
			}
		}()
		w.err = m.resume(w.t, w.pc, &stats.Audit.Threads[w.ai])
	}

	for p := m.Reg.Root(region.RootIDOHead); p != 0; p = dev.Load64(p + lNext) {
		stats.Threads++
		stats.LogEntries++
		pc := dev.Load64(p + lPC)
		bits := dev.Load64(p + lBits)
		t := &Thread{
			m: m, id: int(dev.Load64(p + lThread)), log: p,
			frame: dev.Load64(p + lFrame), recovering: true,
		}
		t.rc = dev.Tracer().ThreadRing(fmt.Sprintf("vm-%s/t%d-rec", m.Mode, t.id))
		m.mu.Lock()
		m.threads = append(m.threads, t)
		if t.id >= m.nextID {
			m.nextID = t.id + 1
		}
		m.mu.Unlock()
		audit := obs.ThreadAudit{ThreadID: t.id, LogAddr: p, Action: obs.AuditIdle, RecoveryPC: pc}

		if pc == 0 {
			if bits != 0 {
				// Robbed-lock window: scrub stale slots.
				for i := 0; i < numLk; i++ {
					dev.Store64(p+lLocks+uint64(i)*8, 0)
				}
				dev.Store64(p+lBits, 0)
				dev.PersistRange(p+lLocks, numLk*8)
				dev.CLWB(p + lBits)
				dev.Fence()
				audit.Action = obs.AuditScrubbed
			}
			stats.Audit.Add(audit)
			continue
		}

		audit.Action = obs.AuditResumed
		if m.Mode == ModeIDO {
			audit.RegionID, _, _ = vmUnpack(pc)
		} else {
			audit.Action = obs.AuditReplayed
		}
		stats.Audit.Add(audit)
		w := &pending{t: t, pc: pc, bits: bits, ai: len(stats.Audit.Threads) - 1}
		work = append(work, w)
		if !serial {
			acq.Add(1)
			done.Add(1)
			go launch(w)
		}
	}
	rc.Span(obs.KRecovery, obs.PhaseScan, stats.LogEntries, scanT0)

	if serial {
		// Deterministic path: restore every thread, then resume every
		// thread, on this goroutine in walk order. An injected
		// CrashSignal propagates (the crash kills recovery mid-flight);
		// any other panic becomes an error after acquired locks drop.
		guard := func(label string, w *pending, f func()) (ok bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, crash := r.(nvm.CrashSignal); crash {
						panic(r)
					}
					w.err = fmt.Errorf("vm: %s panicked: %v", label, r)
				}
			}()
			f()
			return w.err == nil
		}
		var firstErr error
		for _, w := range work {
			if !guard(fmt.Sprintf("restore of log %#x", w.t.log), w, func() { restore(w) }) {
				firstErr = w.err
				break
			}
		}
		var locksTotal uint64
		for _, w := range work {
			stats.Audit.Threads[w.ai].Locks = w.locks
			locksTotal += uint64(len(w.locks))
		}
		rc.Span(obs.KRecovery, obs.PhaseReacquire, locksTotal, scanT0)
		if firstErr != nil {
			for _, w := range work {
				release(w)
			}
			return stats, firstErr
		}
		resumeT0 := rc.Clock()
		for _, w := range work {
			if !guard(fmt.Sprintf("resume at pc %#x", w.pc), w, func() {
				w.err = m.resume(w.t, w.pc, &stats.Audit.Threads[w.ai])
			}) {
				return stats, w.err
			}
		}
		rc.Span(obs.KRecovery, obs.PhaseResume, uint64(len(work)), resumeT0)
		stats.Resumed = len(work)
		stats.Elapsed = time.Since(start)
		return stats, nil
	}

	acq.Wait()
	// Fold the re-acquired locks into the audit in walk order; the slice
	// is stable now that the walk has finished.
	var locksTotal uint64
	for _, w := range work {
		stats.Audit.Threads[w.ai].Locks = w.locks
		locksTotal += uint64(len(w.locks))
	}
	// The re-acquire span starts at scanT0 deliberately: it runs
	// concurrently with the walk, which is the point of the overlap.
	rc.Span(obs.KRecovery, obs.PhaseReacquire, locksTotal, scanT0)
	resumeT0 := rc.Clock()
	openGate()
	done.Wait()
	for _, w := range work {
		if w.err != nil {
			return stats, w.err
		}
	}
	rc.Span(obs.KRecovery, obs.PhaseResume, uint64(len(work)), resumeT0)
	stats.Resumed = len(work)
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// resume restores thread state from its log and executes forward to the
// end of the interrupted FASE, recording what it restored into audit.
func (m *Machine) resume(t *Thread, pc uint64, audit *obs.ThreadAudit) error {
	dev := m.Reg.Dev
	switch m.Mode {
	case ModeIDO:
		regionID, n, buf := vmUnpack(pc)
		target, ok := m.Prog.Resolve[regionID]
		if !ok {
			return fmt.Errorf("vm: recovery_pc %#x resolves to no region", regionID)
		}
		f := m.Prog.Funcs[target.Func].F
		for r := 0; r < f.NumRegs; r++ {
			t.rf[r] = dev.Load64(t.log + lSlots + uint64(r)*8)
		}
		// Overlay the staged boundary record (published with the pc).
		sb := stageAt(t.log, buf)
		for i := 0; i < n && i < stageCap; i++ {
			reg := dev.Load64(sb + uint64(i)*16)
			val := dev.Load64(sb + uint64(i)*16 + 8)
			if reg < MaxRegs {
				t.rf[reg] = val
				t.staged = append(t.staged, persist.RegVal{Reg: int(reg), Val: val})
			}
		}
		t.curBuf = buf
		t.sp = dev.Load64(t.log + lSP)
		t.inRegion = true
		audit.WordsRestored = f.NumRegs + n // register slots + staged overlay
		t.runFrom(target.Func, f, target.Entry.Block, target.Entry.Index)
		return nil
	case ModeJUSTDO:
		// Re-perform the logged store from the record buffer the pc
		// names, then continue at the next instruction with the
		// slot-backed register file.
		buf := int(pc >> 63)
		pc &^= jdBufBit
		rec := jdRecAt(t.log, buf)
		addr := dev.Load64(rec)
		val := dev.Load64(rec + 8)
		dev.Store64(addr, val)
		dev.CLWB(addr)
		dev.Fence()
		t.jdBuf = buf
		fnIdx, blk, idx := compile.UnpackPC(pc)
		if fnIdx >= len(m.funcNames) {
			return fmt.Errorf("vm: JUSTDO pc %#x names function %d of %d", pc, fnIdx, len(m.funcNames))
		}
		name := m.funcNames[fnIdx]
		f := m.Prog.Funcs[name].F
		for r := 0; r < f.NumRegs; r++ {
			t.rf[r] = dev.Load64(t.log + lSlots + uint64(r)*8)
		}
		t.sp = dev.Load64(t.log + lSP)
		audit.WordsRestored = f.NumRegs + 1 // register slots + replayed store
		if blk >= len(f.Blocks) || idx >= len(f.Blocks[blk].Instrs) {
			return fmt.Errorf("vm: JUSTDO pc %#x out of range in %s", pc, f.Name)
		}
		// idx+1 may point one past a fall-through block's last
		// instruction; both engines continue into the next block
		// (FlatIndex lands on its first decoded instruction).
		t.runFrom(name, f, blk, idx+1)
		return nil
	}
	return fmt.Errorf("vm: mode %v cannot resume", m.Mode)
}

// runFrom resumes execution at (block, idx) on the engine the machine is
// configured for, stopping when the interrupted FASE closes (depth 0).
func (t *Thread) runFrom(name string, f *ir.Func, block, idx int) {
	if t.m.Legacy {
		t.runLegacy(f, block, idx, 0)
		return
	}
	d := t.m.code[name]
	t.exec(d, d.FlatIndex(block, idx), 0)
}
