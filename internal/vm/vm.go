// Package vm interprets compiled mini-IR programs against simulated NVM,
// providing what the paper gets from native execution on real hardware:
// the ability to crash at any instruction boundary and to resume — jump to
// a logged program counter with a restored register file — during
// recovery.
//
// Three runtime modes are implemented:
//
//   - ModeOrigin: no instrumentation (crash vulnerable);
//   - ModeIDO: the iDO protocol — OpBoundary instructions log the region's
//     input registers into fixed per-register NVM slots and advance the
//     persistent recovery_pc with two fences; stores inside FASEs are
//     tracked and written back at the next boundary; locks use indirect
//     holders with a single fence (§III);
//   - ModeJUSTDO: JUSTDO logging — every mutation of program state inside
//     a FASE (user stores and register definitions, since JUSTDO forbids
//     register caching) writes a ⟨pc, addr, value⟩ record that is fenced
//     durable before the mutation, costing two fences per mutation, plus
//     two fences per lock operation.
//
// Per-thread logs live in NVM; recovery walks the log list, re-acquires
// locks through the indirect holders, restores the register file, jumps
// to the logged location, and executes forward to the end of the FASE.
package vm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Mode selects the persistence runtime the VM applies.
type Mode int

// VM runtime modes.
const (
	ModeOrigin Mode = iota
	ModeIDO
	ModeJUSTDO
)

func (m Mode) String() string {
	switch m {
	case ModeOrigin:
		return "origin"
	case ModeIDO:
		return "ido"
	case ModeJUSTDO:
		return "justdo"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MaxRegs bounds virtual registers per function (slot array size).
const MaxRegs = 120

// Per-thread VM log layout (64-aligned, byte offsets).
const (
	lNext    = 0
	lThread  = 8
	lPC      = 16 // iDO: region ID; JUSTDO: encoded instruction pc. 0 = idle
	lBits    = 24 // lock_array live bitmask
	lSP      = 32 // logged stack pointer
	lFrame   = 40 // stack frame base
	lJDAddr  = 48 // JUSTDO: logged store target
	lJDVal   = 56 // JUSTDO: logged store value
	lIntent  = 64 // JUSTDO: lock intention slot
	lSlots   = 128
	lLocks   = lSlots + MaxRegs*8
	numLk    = 16
	lStage   = lLocks + numLk*8 // two ping-pong boundary records
	stageCap = 32
	logSize  = lStage + 2*stageCap*16
)

// stageAt returns the base of boundary-record buffer buf (0 or 1).
func stageAt(log uint64, buf int) uint64 { return log + lStage + uint64(buf)*stageCap*16 }

// vmPack packs an iDO region ID, its boundary-record pair count, and the
// active record buffer so one atomic pc write publishes all three
// (compile keeps region IDs < 2^48). Records ping-pong between two
// buffers so the record the current pc points at is never mutated.
func vmPack(regionID uint64, n, buf int) uint64 {
	return regionID | uint64(n)<<48 | uint64(buf)<<56
}

func vmUnpack(pc uint64) (regionID uint64, n, buf int) {
	return pc & (1<<48 - 1), int(pc >> 48 & 0xFF), int(pc >> 56 & 1)
}

// encodePC packs an instruction location (JUSTDO pc). Bit 62 marks
// validity so location (0,0,0) is distinguishable from "idle".
func encodePC(fn, block, idx int) uint64 {
	return 1<<62 | uint64(fn)<<40 | uint64(block)<<20 | uint64(idx)
}

func decodePC(pc uint64) (fn, block, idx int) {
	return int(pc >> 40 & 0x3FFFFF), int(pc >> 20 & 0xFFFFF), int(pc & 0xFFFFF)
}

// errCrash unwinds execution when the crash budget hits zero.
type errCrash struct{}

// ErrCrashed is returned by Call and Resume when the injected crash fired.
var ErrCrashed = fmt.Errorf("vm: injected crash")

// Machine executes one compiled program on one region.
type Machine struct {
	Reg  *region.Region
	LM   *locks.Manager
	Prog *compile.Compiled
	Mode Mode

	funcNames []string
	funcIdx   map[string]int

	crashArmed  atomic.Bool
	crashed     atomic.Bool
	crashBudget atomic.Int64

	mu      sync.Mutex
	threads []*Thread
	nextID  int

	stats persist.RuntimeStats

	// Trace collects OpPrint output for the demo tools.
	TraceMu sync.Mutex
	Trace   []uint64
}

// New creates a machine. The program must come from compile.Program so
// region IDs resolve.
func New(reg *region.Region, lm *locks.Manager, prog *compile.Compiled, mode Mode) *Machine {
	m := &Machine{Reg: reg, LM: lm, Prog: prog, Mode: mode, funcIdx: map[string]int{}}
	for name := range prog.Funcs {
		m.funcNames = append(m.funcNames, name)
	}
	// Deterministic function numbering.
	for i := 0; i < len(m.funcNames); i++ {
		for j := i + 1; j < len(m.funcNames); j++ {
			if m.funcNames[j] < m.funcNames[i] {
				m.funcNames[i], m.funcNames[j] = m.funcNames[j], m.funcNames[i]
			}
		}
	}
	for i, n := range m.funcNames {
		m.funcIdx[n] = i
	}
	m.crashBudget.Store(-1)
	return m
}

// SetCrashBudget arms crash injection: execution aborts with ErrCrashed
// after n more VM events (instructions and persistence protocol phases)
// across ALL threads — once the budget is spent the whole machine is
// "powered off" and every thread dies at its next event, including
// threads blocked on locks. Negative disables injection.
func (m *Machine) SetCrashBudget(n int64) {
	if n < 0 {
		m.crashArmed.Store(false)
		m.crashed.Store(false)
		return
	}
	m.crashed.Store(false)
	m.crashBudget.Store(n)
	m.crashArmed.Store(true)
}

// tick consumes one crash-budget event.
func (m *Machine) tick() {
	if !m.crashArmed.Load() {
		return
	}
	if m.crashed.Load() || m.crashBudget.Add(-1) < 0 {
		m.crashed.Store(true)
		panic(errCrash{})
	}
}

// Stats returns aggregated execution statistics (call while quiescent).
func (m *Machine) Stats() persist.RuntimeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.stats
	for _, t := range m.threads {
		out.Add(&t.stats)
	}
	return out
}

// Thread is one VM execution context with its persistent log and NVM
// stack frame.
type Thread struct {
	m   *Machine
	id  int
	log uint64

	frame, sp uint64
	rf        [MaxRegs]uint64

	lockDepth  int
	durDepth   int
	slots      [numLk]uint64
	bits       uint64
	recovering bool

	dirty          []uint64
	dirtySlots     []uint64         // JUSTDO: slot lines written outside FASEs
	staged         []persist.RegVal // iDO: current boundary record
	curBuf         int              // iDO: active record buffer
	storesInRegion int
	inRegion       bool

	stats persist.RuntimeStats
}

const frameSize = 4096

// NewThread registers an execution context, allocating its NVM log and
// stack frame and linking the log into the persistent list.
func (m *Machine) NewThread() (*Thread, error) {
	raw, err := m.Reg.Alloc.Alloc(logSize + nvm.LineSize)
	if err != nil {
		return nil, fmt.Errorf("vm: allocating log: %w", err)
	}
	log := (raw + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	frame, err := m.Reg.Alloc.Alloc(frameSize)
	if err != nil {
		return nil, fmt.Errorf("vm: allocating stack frame: %w", err)
	}
	dev := m.Reg.Dev
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	dev.Store64(log+lThread, uint64(id))
	dev.Store64(log+lPC, 0)
	dev.Store64(log+lBits, 0)
	dev.Store64(log+lFrame, frame)
	dev.Store64(log+lNext, m.Reg.Root(region.RootIDOHead))
	dev.PersistRange(log, logSize)
	dev.Fence()
	m.Reg.SetRoot(region.RootIDOHead, log)
	t := &Thread{m: m, id: id, log: log, frame: frame, sp: frame}
	m.threads = append(m.threads, t)
	m.mu.Unlock()
	return t, nil
}

// Call executes fn with the given arguments. It returns the values of a
// ret instruction, or ErrCrashed if the injected crash fired mid-run.
func (t *Thread) Call(fn string, args ...uint64) (rets []uint64, err error) {
	cf, ok := t.m.Prog.Funcs[fn]
	if !ok {
		return nil, fmt.Errorf("vm: no function %q", fn)
	}
	f := cf.F
	if f.NumRegs > MaxRegs {
		return nil, fmt.Errorf("vm: %s uses %d registers (max %d)", fn, f.NumRegs, MaxRegs)
	}
	if len(args) != f.NumParams {
		return nil, fmt.Errorf("vm: %s wants %d args, got %d", fn, f.NumParams, len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(errCrash); is {
				err = ErrCrashed
				return
			}
			panic(r)
		}
	}()
	for i, a := range args {
		t.rf[i] = a
	}
	t.sp = t.frame
	rets = t.run(f, 0, 0, -1)
	return rets, nil
}

// run interprets f starting at (block, idx). If stopAtDepth >= 0,
// execution stops once the FASE depth drops to stopAtDepth (the recovery
// path: "execute to the end of the current FASE"). Returns ret values.
func (t *Thread) run(f *ir.Func, block, idx, stopAtDepth int) []uint64 {
	dev := t.m.Reg.Dev
	fnIdx := t.m.funcIdx[f.Name]
	val := func(v ir.Value) uint64 {
		if v.IsImm {
			return v.Imm
		}
		return t.rf[v.Reg]
	}
	for {
		b := f.Blocks[block]
		if idx >= len(b.Instrs) {
			// Fall through.
			if len(b.Succs) != 1 {
				panic(fmt.Sprintf("vm: %s: block %s ends without terminator", f.Name, b.Name))
			}
			block, idx = b.Succs[0], 0
			continue
		}
		in := &b.Instrs[idx]
		t.m.tick()
		switch in.Op {
		case ir.OpConst:
			t.def(f, fnIdx, block, idx, in.Dest, in.Imm)
		case ir.OpMov:
			t.def(f, fnIdx, block, idx, in.Dest, val(in.Args[0]))
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd,
			ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpEq, ir.OpNe,
			ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			t.def(f, fnIdx, block, idx, in.Dest, arith(in.Op, val(in.Args[0]), val(in.Args[1])))
		case ir.OpLoad:
			t.def(f, fnIdx, block, idx, in.Dest, dev.Load64(t.rf[in.Args[0].Reg]+in.Imm))
		case ir.OpStore:
			t.store(fnIdx, block, idx, t.rf[in.Args[0].Reg]+in.Imm, val(in.Args[1]))
		case ir.OpAlloc:
			p, err := t.m.Reg.Alloc.Alloc(int(val(in.Args[0])))
			if err != nil {
				panic(fmt.Sprintf("vm: %s: %v", f.Name, err))
			}
			t.def(f, fnIdx, block, idx, in.Dest, p)
		case ir.OpNewLock:
			l, err := t.m.LM.Create()
			if err != nil {
				panic(fmt.Sprintf("vm: %s: %v", f.Name, err))
			}
			t.def(f, fnIdx, block, idx, in.Dest, l.Holder())
		case ir.OpSAlloc:
			n := (val(in.Args[0]) + 7) &^ 7
			if t.sp+n > t.frame+frameSize {
				panic(fmt.Sprintf("vm: %s: stack overflow", f.Name))
			}
			p := t.sp
			t.setSP(fnIdx, block, idx, t.sp+n)
			t.def(f, fnIdx, block, idx, in.Dest, p)
		case ir.OpLock:
			t.lock(t.m.LM.ByHolder(val(in.Args[0])))
		case ir.OpUnlock:
			t.unlock(t.m.LM.ByHolder(val(in.Args[0])))
			if t.depth() == stopAtDepth {
				return nil
			}
		case ir.OpBeginDur:
			if t.m.Mode == ModeJUSTDO && !t.inFASE() {
				for _, line := range t.dirtySlots {
					dev.CLWB(line)
				}
				t.dirtySlots = t.dirtySlots[:0]
				dev.Fence()
			}
			t.durDepth++
		case ir.OpEndDur:
			t.endDurable()
			if t.depth() == stopAtDepth {
				return nil
			}
		case ir.OpBoundary:
			t.boundary(in)
		case ir.OpPrint:
			t.m.TraceMu.Lock()
			t.m.Trace = append(t.m.Trace, val(in.Args[0]))
			t.m.TraceMu.Unlock()
		case ir.OpBr:
			if val(in.Args[0]) != 0 {
				block, idx = in.Targets[0], 0
			} else {
				block, idx = in.Targets[1], 0
			}
			continue
		case ir.OpJmp:
			block, idx = in.Targets[0], 0
			continue
		case ir.OpRet:
			out := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				out[i] = val(a)
			}
			return out
		default:
			panic(fmt.Sprintf("vm: unhandled op %v", in.Op))
		}
		idx++
	}
}

func arith(op ir.Op, a, b uint64) uint64 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpDiv:
		if b == 0 {
			panic("vm: division by zero")
		}
		return a / b
	case ir.OpMod:
		if b == 0 {
			panic("vm: division by zero")
		}
		return a % b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		return a << (b & 63)
	case ir.OpShr:
		return a >> (b & 63)
	case ir.OpEq:
		return b2i(a == b)
	case ir.OpNe:
		return b2i(a != b)
	case ir.OpLt:
		return b2i(a < b)
	case ir.OpLe:
		return b2i(a <= b)
	case ir.OpGt:
		return b2i(a > b)
	case ir.OpGe:
		return b2i(a >= b)
	}
	panic("vm: not arithmetic")
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (t *Thread) depth() int { return t.lockDepth + t.durDepth }

func (t *Thread) inFASE() bool { return t.depth() > 0 }

// def assigns a register. Under JUSTDO inside a FASE, the definition is
// itself a logged, fenced store to the register's NVM slot — the paper's
// "no caching of values in registers" discipline. Outside a FASE the
// slot is still written through (unfenced); the FASE-entry lock operation
// flushes the accumulated dirty slots inside its existing intention
// fence, so everything a FASE reads from pre-FASE registers is already
// in NVM when execution enters the FASE.
func (t *Thread) def(f *ir.Func, fnIdx, block, idx int, r ir.Reg, v uint64) {
	t.rf[r] = v
	if t.m.Mode == ModeJUSTDO {
		slot := t.log + lSlots + uint64(r)*8
		if t.inFASE() {
			t.justdoLoggedStore(encodePC(fnIdx, block, idx), slot, v)
		} else {
			t.m.Reg.Dev.Store64(slot, v)
			t.trackSlot(slot)
		}
	}
	_ = f
}

func (t *Thread) trackSlot(slot uint64) {
	line := slot &^ (nvm.LineSize - 1)
	for _, l := range t.dirtySlots {
		if l == line {
			return
		}
	}
	t.dirtySlots = append(t.dirtySlots, line)
}

func (t *Thread) setSP(fnIdx, block, idx int, sp uint64) {
	t.sp = sp
	if t.m.Mode == ModeJUSTDO {
		if t.inFASE() {
			t.justdoLoggedStore(encodePC(fnIdx, block, idx), t.log+lSP, sp)
		} else {
			t.m.Reg.Dev.Store64(t.log+lSP, sp)
			t.trackSlot(t.log + lSP)
		}
	}
}

// store writes persistent data under the active mode's discipline.
func (t *Thread) store(fnIdx, block, idx int, addr, v uint64) {
	dev := t.m.Reg.Dev
	switch {
	case t.m.Mode == ModeJUSTDO && t.inFASE():
		t.justdoLoggedStore(encodePC(fnIdx, block, idx), addr, v)
	case t.m.Mode == ModeIDO && t.inFASE():
		dev.Store64(addr, v)
		line := addr &^ (nvm.LineSize - 1)
		found := false
		for _, l := range t.dirty {
			if l == line {
				found = true
				break
			}
		}
		if !found {
			t.dirty = append(t.dirty, line)
		}
		t.storesInRegion++
		t.stats.Stores++
	default:
		dev.Store64(addr, v)
		if t.inFASE() {
			t.stats.Stores++
		}
	}
}

// justdoLoggedStore implements JUSTDO's per-mutation protocol: persist
// ⟨pc, addr, value⟩, fence, perform the mutation, fence.
func (t *Thread) justdoLoggedStore(pc, addr, v uint64) {
	dev := t.m.Reg.Dev
	dev.Store64(t.log+lPC, pc)
	dev.Store64(t.log+lJDAddr, addr)
	dev.Store64(t.log+lJDVal, v)
	dev.CLWB(t.log + lPC) // pc/addr/val share the first log line
	dev.Fence()
	t.m.tick()
	dev.Store64(addr, v)
	dev.CLWB(addr)
	dev.Fence()
	t.stats.Stores++
	t.stats.LoggedEntries++
	t.stats.LoggedBytes += 24
	t.stats.Regions++
	t.stats.StoresPerRegion[1]++
}

// boundary implements the iDO three-step protocol for an OpBoundary.
// Like the native runtime, the new pairs go into a staged record that is
// published atomically with recovery_pc and folded into the fixed
// per-register slots by the NEXT boundary, so a crash between the two
// fences can never clobber a live-in of the still-current region.
// (The stack pointer is staged alongside; restoring a slightly-later sp
// merely wastes frame space, since a resumed region re-allocates its
// stack slots afresh.)
func (t *Thread) boundary(in *ir.Instr) {
	if t.m.Mode != ModeIDO {
		return
	}
	if len(in.Args) > stageCap {
		panic(fmt.Sprintf("vm: boundary %#x logs %d registers (max %d)", in.Imm, len(in.Args), stageCap))
	}
	dev := t.m.Reg.Dev
	// Close the ending region's statistics.
	if t.inRegion {
		b := t.storesInRegion
		if b >= persist.HistStores {
			b = persist.HistStores - 1
		}
		t.stats.StoresPerRegion[b]++
		t.stats.Regions++
	}
	// Step 1a: fold the previous record into the fixed slots.
	for _, s := range t.staged {
		sa := t.log + lSlots + uint64(s.Reg)*8
		dev.Store64(sa, s.Val)
		dev.CLWB(sa)
	}
	t.staged = t.staged[:0]
	// Step 1b: write this boundary's record into the inactive buffer
	// (persist coalescing: pairs pack two to a line), the stack pointer,
	// and the ending region's dirty data lines; fence.
	buf := 1 - t.curBuf
	sb := stageAt(t.log, buf)
	for i, a := range in.Args {
		dev.Store64(sb+uint64(i)*16, uint64(a.Reg))
		dev.Store64(sb+uint64(i)*16+8, t.rf[a.Reg])
		t.staged = append(t.staged, persist.RegVal{Reg: int(a.Reg), Val: t.rf[a.Reg]})
	}
	if len(in.Args) > 0 {
		dev.PersistRange(sb, uint64(len(in.Args))*16)
	}
	// A single sp word suffices: within a FASE the stack pointer only
	// grows, and resuming with a slightly-later sp merely wastes frame.
	dev.Store64(t.log+lSP, t.sp)
	dev.CLWB(t.log + lSP)
	for _, line := range t.dirty {
		dev.CLWB(line)
	}
	t.dirty = t.dirty[:0]
	dev.Fence()
	t.m.tick()
	// Step 2: publish recovery_pc packed with record size and buffer.
	dev.Store64(t.log+lPC, vmPack(in.Imm, len(in.Args), buf))
	dev.CLWB(t.log + lPC)
	dev.Fence()
	t.curBuf = buf
	t.stats.LoggedEntries++
	t.stats.LoggedBytes += uint64(len(in.Args))*8 + 8
	n := len(in.Args)
	if n >= persist.HistOutputs {
		n = persist.HistOutputs - 1
	}
	t.stats.OutputsPerRegion[n]++
	t.storesInRegion = 0
	t.inRegion = true
}

// acquire takes the mutex; with crash injection armed it spins so a
// machine-wide crash also kills threads waiting on locks.
func (t *Thread) acquire(l *locks.Lock) {
	if !t.m.crashArmed.Load() {
		l.Acquire()
		return
	}
	for !l.TryAcquire() {
		if t.m.crashed.Load() {
			panic(errCrash{})
		}
		runtime.Gosched()
	}
}

func (t *Thread) slotOf(holder uint64) int {
	for i := 0; i < numLk; i++ {
		if t.slots[i] == holder {
			return i
		}
	}
	return -1
}

// lock implements the per-mode acquire protocol.
func (t *Thread) lock(l *locks.Lock) {
	if t.slotOf(l.Holder()) >= 0 {
		if !t.recovering {
			panic("vm: recursive lock outside recovery")
		}
		return
	}
	dev := t.m.Reg.Dev
	if t.m.Mode == ModeJUSTDO {
		dev.Store64(t.log+lIntent, l.Holder())
		dev.CLWB(t.log + lIntent)
		for _, line := range t.dirtySlots {
			dev.CLWB(line)
		}
		t.dirtySlots = t.dirtySlots[:0]
		dev.Fence()
		t.m.tick()
	}
	t.acquire(l)
	slot := t.slotOf(0)
	if slot < 0 {
		panic("vm: lock array overflow")
	}
	t.slots[slot] = l.Holder()
	t.bits |= 1 << uint(slot)
	if t.m.Mode != ModeOrigin {
		sa := t.log + lLocks + uint64(slot)*8
		dev.Store64(sa, l.Holder())
		dev.Store64(t.log+lBits, t.bits)
		if t.m.Mode == ModeJUSTDO {
			dev.Store64(t.log+lIntent, 0)
		}
		dev.CLWB(sa)
		dev.CLWB(t.log + lBits)
		dev.Fence()
	}
	t.lockDepth++
}

// unlock implements the per-mode release protocol, with the same
// crash-ordering rules as the native runtime: at the FASE's final release
// the data is fenced durable and recovery_pc cleared before the slot is
// dropped and the mutex released.
func (t *Thread) unlock(l *locks.Lock) {
	slot := t.slotOf(l.Holder())
	if slot < 0 {
		if t.recovering {
			return
		}
		panic("vm: unlocking a lock not held")
	}
	dev := t.m.Reg.Dev
	last := t.lockDepth == 1 && t.durDepth == 0
	if t.m.Mode == ModeJUSTDO {
		dev.Store64(t.log+lIntent, l.Holder())
		dev.CLWB(t.log + lIntent)
		dev.Fence()
		t.m.tick()
	}
	if last && t.m.Mode != ModeOrigin {
		if t.m.Mode == ModeIDO {
			if t.inRegion {
				b := t.storesInRegion
				if b >= persist.HistStores {
					b = persist.HistStores - 1
				}
				t.stats.StoresPerRegion[b]++
				t.stats.Regions++
				t.inRegion = false
				t.storesInRegion = 0
			}
			for _, line := range t.dirty {
				dev.CLWB(line)
			}
			t.dirty = t.dirty[:0]
			dev.Fence()
			t.m.tick()
		}
		dev.Store64(t.log+lPC, 0)
		dev.CLWB(t.log + lPC)
		dev.Fence()
	}
	t.slots[slot] = 0
	t.bits &^= 1 << uint(slot)
	if t.m.Mode != ModeOrigin {
		sa := t.log + lLocks + uint64(slot)*8
		dev.Store64(sa, 0)
		dev.Store64(t.log+lBits, t.bits)
		if t.m.Mode == ModeJUSTDO {
			dev.Store64(t.log+lIntent, 0)
		}
		dev.CLWB(sa)
		dev.CLWB(t.log + lBits)
		dev.Fence()
	}
	t.lockDepth--
	if last {
		t.stats.FASEs++
	}
	l.Release()
}

func (t *Thread) endDurable() {
	if t.durDepth == 0 {
		panic("vm: end_durable below depth 0")
	}
	dev := t.m.Reg.Dev
	last := t.durDepth == 1 && t.lockDepth == 0
	if last && t.m.Mode != ModeOrigin {
		if t.m.Mode == ModeIDO {
			if t.inRegion {
				b := t.storesInRegion
				if b >= persist.HistStores {
					b = persist.HistStores - 1
				}
				t.stats.StoresPerRegion[b]++
				t.stats.Regions++
				t.inRegion = false
				t.storesInRegion = 0
			}
			for _, line := range t.dirty {
				dev.CLWB(line)
			}
			t.dirty = t.dirty[:0]
			dev.Fence()
			t.m.tick()
		}
		dev.Store64(t.log+lPC, 0)
		dev.CLWB(t.log + lPC)
		dev.Fence()
		t.stats.FASEs++
	}
	t.durDepth--
}
