// Package vm executes compiled mini-IR programs against simulated NVM,
// providing what the paper gets from native execution on real hardware:
// the ability to crash at any instruction boundary and to resume — jump to
// a logged program counter with a restored register file — during
// recovery.
//
// Execution is threaded code: compile pre-decodes each function into one
// flat instruction array (resolved jump offsets, pre-classified operands,
// pre-packed recovery pcs — see internal/compile/decode.go), and the
// engine in exec() walks it with a single dense-switch dispatch. The
// original tree-walking interpreter survives in legacy.go, selected by
// Machine.Legacy, as the differential oracle: both engines execute the
// same instructions in the same order, so their device event counts and
// crash-injection points are identical (asserted by equiv_test.go).
//
// Three runtime modes are implemented:
//
//   - ModeOrigin: no instrumentation (crash vulnerable);
//   - ModeIDO: the iDO protocol — OpBoundary instructions log the region's
//     input registers into fixed per-register NVM slots and advance the
//     persistent recovery_pc with two fences; stores inside FASEs are
//     tracked and written back at the next boundary; locks use indirect
//     holders with a single fence (§III);
//   - ModeJUSTDO: JUSTDO logging — every mutation of program state inside
//     a FASE (user stores and register definitions, since JUSTDO forbids
//     register caching) writes a ⟨pc, addr, value⟩ record that is fenced
//     durable before the mutation, costing two fences per mutation, plus
//     two fences per lock operation.
//
// Per-thread logs live in NVM; recovery walks the log list, re-acquires
// locks through the indirect holders, restores the register file, jumps
// to the logged location, and executes forward to the end of the FASE.
package vm

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/lineset"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Mode selects the persistence runtime the VM applies.
type Mode int

// VM runtime modes.
const (
	ModeOrigin Mode = iota
	ModeIDO
	ModeJUSTDO
)

func (m Mode) String() string {
	switch m {
	case ModeOrigin:
		return "origin"
	case ModeIDO:
		return "ido"
	case ModeJUSTDO:
		return "justdo"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// MaxRegs bounds virtual registers per function (slot array size).
const MaxRegs = 120

// Per-thread VM log layout (64-aligned, byte offsets).
const (
	lNext    = 0
	lThread  = 8
	lPC      = 16 // iDO: region ID; JUSTDO: encoded instruction pc. 0 = idle
	lBits    = 24 // lock_array live bitmask
	lSP      = 32 // logged stack pointer
	lFrame   = 40 // stack frame base
	lJDAddr  = 48 // JUSTDO: logged store target (record buffer 0)
	lJDVal   = 56 // JUSTDO: logged store value (record buffer 0)
	lIntent  = 64 // JUSTDO: lock intention slot
	lJDAddr1 = 72 // JUSTDO: record buffer 1 (ping-pong with buffer 0)
	lJDVal1  = 80
	lSlots   = 128
	lLocks   = lSlots + MaxRegs*8
	numLk    = 16
	lStage   = lLocks + numLk*8 // two ping-pong boundary records
	stageCap = 32
	logSize  = lStage + 2*stageCap*16
)

// stageAt returns the base of boundary-record buffer buf (0 or 1).
func stageAt(log uint64, buf int) uint64 { return log + lStage + uint64(buf)*stageCap*16 }

// vmPack packs an iDO region ID, its boundary-record pair count, and the
// active record buffer so one atomic pc write publishes all three
// (compile keeps region IDs < 2^48). Records ping-pong between two
// buffers so the record the current pc points at is never mutated.
func vmPack(regionID uint64, n, buf int) uint64 {
	return regionID | uint64(n)<<48 | uint64(buf)<<56
}

func vmUnpack(pc uint64) (regionID uint64, n, buf int) {
	return pc & (1<<48 - 1), int(pc >> 48 & 0xFF), int(pc >> 56 & 1)
}

// jdBufBit rides in the published JUSTDO pc word (compile.PackPC only
// uses bits 0..62), naming the record buffer the pc refers to.
const jdBufBit = uint64(1) << 63

// jdRecAt returns the base of JUSTDO record buffer buf (0 or 1): the
// ⟨addr, val⟩ pair the published pc's logged store lives in.
func jdRecAt(log uint64, buf int) uint64 {
	if buf == 0 {
		return log + lJDAddr
	}
	return log + lJDAddr1
}

// errCrash unwinds execution when the crash budget hits zero.
type errCrash struct{}

// ErrCrashed is returned by Call and Resume when the injected crash fired.
var ErrCrashed = fmt.Errorf("vm: injected crash")

// Machine executes one compiled program on one region.
type Machine struct {
	Reg  *region.Region
	LM   *locks.Manager
	Prog *compile.Compiled
	Mode Mode
	// Legacy selects the retained tree-walking interpreter instead of
	// the threaded-code engine. Both execute the same instruction
	// sequence with identical device events; legacy exists as the
	// differential-testing oracle and is not optimized.
	Legacy bool

	funcNames []string
	funcIdx   map[string]int
	code      map[string]*compile.DecodedFunc

	crashArmed  atomic.Bool
	crashed     atomic.Bool
	crashBudget atomic.Int64
	crashGen    atomic.Uint64 // bumped by SetCrashBudget to invalidate per-thread allotments

	mu      sync.Mutex
	threads []*Thread
	nextID  int

	stats persist.RuntimeStats
}

// New creates a machine. The program must come from compile.Program so
// region IDs resolve. Functions are numbered in sorted name order — the
// same order compile.Program uses — so the pre-decoded code it attached
// can be used as-is; a program assembled by hand (or through compile.Func
// directly) is decoded here.
func New(reg *region.Region, lm *locks.Manager, prog *compile.Compiled, mode Mode) *Machine {
	m := &Machine{
		Reg: reg, LM: lm, Prog: prog, Mode: mode,
		funcIdx: map[string]int{},
		code:    map[string]*compile.DecodedFunc{},
	}
	for name := range prog.Funcs {
		m.funcNames = append(m.funcNames, name)
	}
	sort.Strings(m.funcNames)
	for i, n := range m.funcNames {
		m.funcIdx[n] = i
		cf := prog.Funcs[n]
		if cf.Code != nil && cf.Code.FnIdx == i {
			m.code[n] = cf.Code
			continue
		}
		d, err := compile.DecodeFunc(cf.F, i)
		if err != nil {
			panic(fmt.Sprintf("vm: %v", err))
		}
		m.code[n] = d
	}
	m.crashBudget.Store(-1)
	return m
}

// SetCrashBudget arms crash injection: execution aborts with ErrCrashed
// after n more VM events (instructions and persistence protocol phases)
// across ALL threads — once the budget is spent the whole machine is
// "powered off" and every thread dies at its next event, including
// threads blocked on locks. Negative disables injection.
//
// Threads draw down the shared budget in batches of tickBatch events
// (see Thread.tick); bumping crashGen here discards every outstanding
// per-thread allotment so a fresh budget is exact from its first event.
func (m *Machine) SetCrashBudget(n int64) {
	m.crashGen.Add(1)
	if n < 0 {
		m.crashArmed.Store(false)
		m.crashed.Store(false)
		return
	}
	m.crashed.Store(false)
	m.crashBudget.Store(n)
	m.crashArmed.Store(true)
}

// tickBatch is the crash-budget refill granularity: a thread reserves up
// to this many events from the shared budget in one atomic operation.
// The total number of events before the crash fires is unchanged — with
// one thread the crash lands on exactly the same event as a per-event
// counter would — but a thread that stops running (or the power-off
// itself) can strand up to tickBatch-1 reserved events per other thread.
const tickBatch = 32

// tick consumes one crash-budget event. With injection disarmed this is
// a single atomic load; armed, it spends the thread-local allotment and
// refills from the shared budget every tickBatch events.
func (t *Thread) tick() {
	if !t.m.crashArmed.Load() {
		return
	}
	t.tickSlow()
}

func (t *Thread) tickSlow() {
	m := t.m
	if m.crashed.Load() {
		panic(errCrash{})
	}
	if g := m.crashGen.Load(); g != t.tickGen {
		t.tickGen, t.ticks = g, 0
	}
	if t.ticks > 0 {
		t.ticks--
		return
	}
	got := m.crashBudget.Add(-tickBatch) + tickBatch // budget before this refill
	if got > tickBatch {
		got = tickBatch
	}
	if got <= 0 {
		m.crashed.Store(true)
		t.rc.Emit(obs.KCrashInject, uint64(t.id), 0)
		panic(errCrash{})
	}
	t.ticks = got - 1 // this event consumes one of the reserved batch
}

// Stats returns aggregated execution statistics (call while quiescent).
func (m *Machine) Stats() persist.RuntimeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.stats
	for _, t := range m.threads {
		out.Add(&t.stats)
	}
	return out
}

// Trace returns the collected OpPrint output: threads in registration
// order, program order within each thread. Each thread appends to its
// own buffer during execution — there is no global trace lock — so like
// Stats this merge is meaningful only while the machine is quiescent.
func (m *Machine) Trace() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []uint64
	for _, t := range m.threads {
		out = append(out, t.trace...)
	}
	return out
}

// Thread is one VM execution context with its persistent log and NVM
// stack frame.
type Thread struct {
	m   *Machine
	id  int
	log uint64

	frame, sp uint64
	rf        [MaxRegs]uint64

	lockDepth  int
	durDepth   int
	slots      [numLk]uint64
	bits       uint64
	recovering bool

	ticks   int64  // remaining crash-budget allotment
	tickGen uint64 // crashGen the allotment belongs to

	dirty          lineset.Set      // iDO: lines dirtied in the current region
	dirtySlots     []uint64         // JUSTDO: slot lines written outside FASEs
	staged         []persist.RegVal // iDO: current boundary record
	curBuf         int              // iDO: active record buffer
	jdBuf          int              // JUSTDO: active ⟨addr, val⟩ record buffer
	storesInRegion int
	inRegion       bool

	// retBuf is the reusable return-value buffer DRet fills; the slice
	// Call hands back aliases it and is valid until the thread's next
	// Call. Sized to the largest ret arity at first use, it removes the
	// one allocation the dispatch loop had.
	retBuf []uint64

	// rc is this thread's event ring; nil when tracing is off (nil-ring
	// methods are one-compare no-ops).
	rc           *obs.Ring
	curRegion    uint64 // open region's ID, for trace labels
	regionT0     int64  // tracer clock at the open of the current region
	faseT0       int64  // tracer clock at FASE entry
	faseLogBytes uint64 // log payload written during the current FASE

	trace []uint64 // OpPrint output, merged by Machine.Trace

	stats persist.RuntimeStats
}

const frameSize = 4096

// NewThread registers an execution context, allocating its NVM log and
// stack frame and linking the log into the persistent list.
func (m *Machine) NewThread() (*Thread, error) {
	raw, err := m.Reg.Alloc.Alloc(logSize + nvm.LineSize)
	if err != nil {
		return nil, fmt.Errorf("vm: allocating log: %w", err)
	}
	log := (raw + nvm.LineSize - 1) &^ (nvm.LineSize - 1)
	frame, err := m.Reg.Alloc.Alloc(frameSize)
	if err != nil {
		return nil, fmt.Errorf("vm: allocating stack frame: %w", err)
	}
	dev := m.Reg.Dev
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	dev.Store64(log+lThread, uint64(id))
	dev.Store64(log+lPC, 0)
	dev.Store64(log+lBits, 0)
	dev.Store64(log+lFrame, frame)
	dev.Store64(log+lNext, m.Reg.Root(region.RootIDOHead))
	dev.PersistRange(log, logSize)
	dev.Fence()
	m.Reg.SetRoot(region.RootIDOHead, log)
	t := &Thread{m: m, id: id, log: log, frame: frame, sp: frame}
	t.rc = dev.Tracer().ThreadRing(fmt.Sprintf("vm-%s/t%d", m.Mode, id))
	m.threads = append(m.threads, t)
	m.mu.Unlock()
	return t, nil
}

// Call executes fn with the given arguments. It returns the values of a
// ret instruction, or ErrCrashed if the injected crash fired mid-run.
// The returned slice aliases a per-thread buffer and is valid until this
// thread's next Call or Resume; copy it to retain values longer.
func (t *Thread) Call(fn string, args ...uint64) (rets []uint64, err error) {
	d, ok := t.m.code[fn]
	if !ok {
		return nil, fmt.Errorf("vm: no function %q", fn)
	}
	if d.NumRegs > MaxRegs {
		return nil, fmt.Errorf("vm: %s uses %d registers (max %d)", fn, d.NumRegs, MaxRegs)
	}
	if len(args) != d.NumParams {
		return nil, fmt.Errorf("vm: %s wants %d args, got %d", fn, d.NumParams, len(args))
	}
	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(errCrash); is {
				err = ErrCrashed
				return
			}
			panic(r)
		}
	}()
	// Parameters and the stack pointer go through def/setSP, not raw rf
	// writes: under JUSTDO they are FASE-live state that replay restores
	// from the NVM register slots, and a param only ever assigned here
	// would otherwise replay as the slot's stale (or zero) value.
	for i, a := range args {
		t.def(0, ir.Reg(i), a)
	}
	t.setSP(0, t.frame)
	if t.m.Legacy {
		rets = t.runLegacy(t.m.Prog.Funcs[fn].F, 0, 0, -1)
	} else {
		rets = t.exec(d, 0, -1)
	}
	return rets, nil
}

// valA and valB read a pre-classified operand: the decoded field is the
// value itself for immediates, a register index otherwise.
func (t *Thread) valA(in *compile.DInstr) uint64 {
	if in.AImm {
		return in.A
	}
	return t.rf[in.A]
}

func (t *Thread) valB(in *compile.DInstr) uint64 {
	if in.BImm {
		return in.B
	}
	return t.rf[in.B]
}

// exec runs the threaded-code stream from flat offset pc. If stopAtDepth
// >= 0, execution stops once the FASE depth drops to stopAtDepth (the
// recovery path: "execute to the end of the current FASE"). Returns ret
// values.
//
// Event equivalence with the legacy interpreter: one DInstr per ir
// instruction, one tick before each handler, and the handlers call the
// same protocol helpers — fall-through edges, which execute no
// instruction in either engine, are the only control transfers that
// differ in mechanism (stream adjacency here, Succs[0] there).
func (t *Thread) exec(d *compile.DecodedFunc, pc int, stopAtDepth int) []uint64 {
	dev := t.m.Reg.Dev
	code := d.Code
	for {
		in := &code[pc]
		t.tick()
		switch in.Op {
		case compile.DConst:
			t.def(in.PC, ir.Reg(in.Dest), in.Imm)
		case compile.DMov:
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in))
		case compile.DAdd:
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in)+t.valB(in))
		case compile.DSub:
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in)-t.valB(in))
		case compile.DMul:
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in)*t.valB(in))
		case compile.DDiv:
			b := t.valB(in)
			if b == 0 {
				panic("vm: division by zero")
			}
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in)/b)
		case compile.DMod:
			b := t.valB(in)
			if b == 0 {
				panic("vm: division by zero")
			}
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in)%b)
		case compile.DAnd:
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in)&t.valB(in))
		case compile.DOr:
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in)|t.valB(in))
		case compile.DXor:
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in)^t.valB(in))
		case compile.DShl:
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in)<<(t.valB(in)&63))
		case compile.DShr:
			t.def(in.PC, ir.Reg(in.Dest), t.valA(in)>>(t.valB(in)&63))
		case compile.DEq:
			t.def(in.PC, ir.Reg(in.Dest), b2i(t.valA(in) == t.valB(in)))
		case compile.DNe:
			t.def(in.PC, ir.Reg(in.Dest), b2i(t.valA(in) != t.valB(in)))
		case compile.DLt:
			t.def(in.PC, ir.Reg(in.Dest), b2i(t.valA(in) < t.valB(in)))
		case compile.DLe:
			t.def(in.PC, ir.Reg(in.Dest), b2i(t.valA(in) <= t.valB(in)))
		case compile.DGt:
			t.def(in.PC, ir.Reg(in.Dest), b2i(t.valA(in) > t.valB(in)))
		case compile.DGe:
			t.def(in.PC, ir.Reg(in.Dest), b2i(t.valA(in) >= t.valB(in)))
		case compile.DLoad:
			t.def(in.PC, ir.Reg(in.Dest), dev.Load64(t.rf[in.A]+in.Imm))
		case compile.DStore:
			t.store(in.PC, t.rf[in.A]+in.Imm, t.valB(in))
		case compile.DBr:
			if t.valA(in) != 0 {
				pc = int(in.T0)
			} else {
				pc = int(in.T1)
			}
			continue
		case compile.DJmp:
			pc = int(in.T0)
			continue
		case compile.DRet:
			if cap(t.retBuf) < len(in.Vals) {
				t.retBuf = make([]uint64, len(in.Vals))
			}
			out := t.retBuf[:len(in.Vals)]
			for i, a := range in.Vals {
				if a.IsImm {
					out[i] = a.Imm
				} else {
					out[i] = t.rf[a.Reg]
				}
			}
			return out
		case compile.DAlloc:
			p, err := t.m.Reg.Alloc.Alloc(int(t.valA(in)))
			if err != nil {
				panic(fmt.Sprintf("vm: %s: %v", d.Name, err))
			}
			t.def(in.PC, ir.Reg(in.Dest), p)
		case compile.DSAlloc:
			n := (t.valA(in) + 7) &^ 7
			if t.sp+n > t.frame+frameSize {
				panic(fmt.Sprintf("vm: %s: stack overflow", d.Name))
			}
			p := t.sp
			t.setSP(in.PC, t.sp+n)
			t.def(in.PC, ir.Reg(in.Dest), p)
		case compile.DNewLock:
			l, err := t.m.LM.Create()
			if err != nil {
				panic(fmt.Sprintf("vm: %s: %v", d.Name, err))
			}
			t.def(in.PC, ir.Reg(in.Dest), l.Holder())
		case compile.DLock:
			t.lock(t.m.LM.ByHolder(t.valA(in)))
		case compile.DUnlock:
			t.unlock(t.m.LM.ByHolder(t.valA(in)))
			if t.depth() == stopAtDepth {
				return nil
			}
		case compile.DBeginDur:
			t.beginDurable()
		case compile.DEndDur:
			t.endDurable()
			if t.depth() == stopAtDepth {
				return nil
			}
		case compile.DBoundary:
			t.boundary(in.Imm, in.Regs)
		case compile.DPrint:
			t.trace = append(t.trace, t.valA(in))
		default:
			panic(fmt.Sprintf("vm: unhandled decoded op %d", in.Op))
		}
		pc++
	}
}

func b2i(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (t *Thread) depth() int { return t.lockDepth + t.durDepth }

func (t *Thread) inFASE() bool { return t.depth() > 0 }

// def assigns a register. Under JUSTDO inside a FASE, the definition is
// itself a logged, fenced store to the register's NVM slot — the paper's
// "no caching of values in registers" discipline. Outside a FASE the
// slot is still written through (unfenced); the FASE-entry lock operation
// flushes the accumulated dirty slots inside its existing intention
// fence, so everything a FASE reads from pre-FASE registers is already
// in NVM when execution enters the FASE.
func (t *Thread) def(pc uint64, r ir.Reg, v uint64) {
	t.rf[r] = v
	if t.m.Mode == ModeJUSTDO {
		t.defSlot(pc, r, v)
	}
}

func (t *Thread) defSlot(pc uint64, r ir.Reg, v uint64) {
	slot := t.log + lSlots + uint64(r)*8
	if t.inFASE() {
		t.justdoLoggedStore(pc, slot, v)
	} else {
		t.m.Reg.Dev.Store64(slot, v)
		t.trackSlot(slot)
	}
}

func (t *Thread) trackSlot(slot uint64) {
	line := slot &^ (nvm.LineSize - 1)
	for _, l := range t.dirtySlots {
		if l == line {
			return
		}
	}
	t.dirtySlots = append(t.dirtySlots, line)
}

func (t *Thread) setSP(pc uint64, sp uint64) {
	t.sp = sp
	if t.m.Mode == ModeJUSTDO {
		if t.inFASE() {
			t.justdoLoggedStore(pc, t.log+lSP, sp)
		} else {
			t.m.Reg.Dev.Store64(t.log+lSP, sp)
			t.trackSlot(t.log + lSP)
		}
	}
}

// store writes persistent data under the active mode's discipline.
func (t *Thread) store(pc uint64, addr, v uint64) {
	dev := t.m.Reg.Dev
	switch {
	case t.m.Mode == ModeJUSTDO && t.inFASE():
		t.justdoLoggedStore(pc, addr, v)
	case t.m.Mode == ModeIDO && t.inFASE():
		dev.Store64(addr, v)
		t.dirty.Add(addr &^ (nvm.LineSize - 1))
		t.storesInRegion++
		t.stats.Stores++
	default:
		dev.Store64(addr, v)
		if t.inFASE() {
			t.stats.Stores++
		}
	}
}

// justdoLoggedStore implements JUSTDO's per-mutation protocol: persist
// ⟨pc, addr, value⟩, fence, perform the mutation, fence. The ⟨addr, val⟩
// pair goes into the inactive record buffer and is fenced durable before
// a single pc store (carrying the buffer index in jdBufBit) publishes
// it, so a crash at any point exposes either the previous complete
// record or this one — never a torn mix of the two. Replay of the old
// record is idempotent (its mutation already ran) and resuming after its
// pc deterministically re-executes up to this instruction, because every
// register definition is itself a logged store: nothing state-changing
// lies between two records, and re-executed lock/unlock ops are absorbed
// by the recovery guards.
func (t *Thread) justdoLoggedStore(pc, addr, v uint64) {
	dev := t.m.Reg.Dev
	buf := 1 - t.jdBuf
	rec := jdRecAt(t.log, buf)
	dev.Store64(rec, addr)
	dev.Store64(rec+8, v)
	dev.CLWB(rec)
	dev.Fence()
	// Single-event pc publish, for the same adversary-independence reason
	// as the iDO boundary (see Thread.boundary): the record in the
	// inactive buffer is already durable, so the NT store alone decides
	// whether this logged store exists.
	dev.StoreNT(t.log+lPC, pc|uint64(buf)<<63)
	dev.Fence()
	t.jdBuf = buf
	t.tick()
	dev.Store64(addr, v)
	dev.CLWB(addr)
	dev.Fence()
	t.stats.Stores++
	t.stats.LoggedEntries++
	t.stats.LoggedBytes += 24
	t.faseLogBytes += 24
	t.stats.Regions++
	t.stats.StoresPerRegion[1]++
	t.rc.Emit(obs.KLogAppend, 24, pc)
}

// beginDurable enters a durable section. JUSTDO's FASE entry must find
// every pre-FASE register slot already persistent, so the accumulated
// dirty slot lines are flushed here (the lock path does the same inside
// its intention fence).
func (t *Thread) beginDurable() {
	if t.m.Mode == ModeJUSTDO && !t.inFASE() {
		dev := t.m.Reg.Dev
		for _, line := range t.dirtySlots {
			dev.CLWB(line)
		}
		t.dirtySlots = t.dirtySlots[:0]
		dev.Fence()
	}
	if t.rc != nil && t.durDepth == 0 && t.lockDepth == 0 {
		t.faseT0 = t.rc.Clock()
		t.faseLogBytes = 0
	}
	t.durDepth++
}

// closeRegion accounts for the iDO region that just ended and emits its
// trace span.
func (t *Thread) closeRegion() {
	if !t.inRegion {
		return
	}
	b := t.storesInRegion
	if b >= persist.HistStores {
		b = persist.HistStores - 1
	}
	t.stats.StoresPerRegion[b]++
	t.stats.Regions++
	if t.rc != nil {
		now := t.rc.Clock()
		t.rc.Span(obs.KRegion, t.curRegion, uint64(t.storesInRegion), t.regionT0)
		t.rc.Observe(obs.HRegionNS, uint64(now-t.regionT0))
		t.rc.Observe(obs.HRegionStores, uint64(t.storesInRegion))
	}
	t.inRegion = false
	t.storesInRegion = 0
}

// persistDirty writes back the region's dirty lines (FlushLines charges
// the same per-line event sequence the legacy per-line-CLWB oracle
// produces), orders them with a persist fence, and empties the set.
// With group commit enabled on the device the flush+fence may be merged
// into another thread's batch.
func (t *Thread) persistDirty() {
	t.m.Reg.Dev.PersistBatch(t.dirty.Lines())
	t.dirty.Reset()
}

// boundary implements the iDO three-step protocol for an OpBoundary.
// Like the native runtime, the new pairs go into a staged record that is
// published atomically with recovery_pc and folded into the fixed
// per-register slots by the NEXT boundary, so a crash between the two
// fences can never clobber a live-in of the still-current region.
// (The stack pointer is staged alongside; restoring a slightly-later sp
// merely wastes frame space, since a resumed region re-allocates its
// stack slots afresh.)
func (t *Thread) boundary(id uint64, regs []ir.Reg) {
	if t.m.Mode != ModeIDO {
		return
	}
	if len(regs) > stageCap {
		panic(fmt.Sprintf("vm: boundary %#x logs %d registers (max %d)", id, len(regs), stageCap))
	}
	dev := t.m.Reg.Dev
	// Close the ending region's statistics.
	t.closeRegion()
	// Step 1a: fold the previous record into the fixed slots.
	for _, s := range t.staged {
		sa := t.log + lSlots + uint64(s.Reg)*8
		dev.Store64(sa, s.Val)
		dev.CLWB(sa)
	}
	t.staged = t.staged[:0]
	// Step 1b: write this boundary's record into the inactive buffer
	// (persist coalescing: pairs pack two to a line), the stack pointer,
	// and the ending region's dirty data lines; fence.
	buf := 1 - t.curBuf
	sb := stageAt(t.log, buf)
	pa := sb
	for _, r := range regs {
		dev.Store64(pa, uint64(r))
		dev.Store64(pa+8, t.rf[r])
		t.staged = append(t.staged, persist.RegVal{Reg: int(r), Val: t.rf[r]})
		pa += 16
	}
	if len(regs) > 0 {
		dev.PersistRange(sb, uint64(len(regs))*16)
	}
	// A single sp word suffices: within a FASE the stack pointer only
	// grows, and resuming with a slightly-later sp merely wastes frame.
	dev.Store64(t.log+lSP, t.sp)
	dev.CLWB(t.log + lSP)
	t.persistDirty() // flush + fence, group-commit batchable
	t.tick()
	// Step 2: publish recovery_pc packed with record size and buffer. A
	// non-temporal store makes the publish a single durable event — a
	// cached store plus write-back would leave a window where the crash
	// adversary decides whether the pc landed, and at a FASE's entry
	// boundary that choice is "FASE never started" vs "FASE resumes",
	// which would break recovery's adversary-independence (§III-C).
	dev.StoreNT(t.log+lPC, vmPack(id, len(regs), buf))
	dev.FenceBatch()
	t.curBuf = buf
	t.stats.LoggedEntries++
	logBytes := uint64(len(regs))*8 + 8
	t.stats.LoggedBytes += logBytes
	t.faseLogBytes += logBytes
	n := len(regs)
	if n >= persist.HistOutputs {
		n = persist.HistOutputs - 1
	}
	t.stats.OutputsPerRegion[n]++
	if t.rc != nil {
		t.rc.Emit(obs.KBoundary, id, uint64(len(regs)))
		t.rc.Observe(obs.HOutputsPerRegion, uint64(len(regs)))
		t.regionT0 = t.rc.Clock()
	}
	t.curRegion = id
	t.storesInRegion = 0
	t.inRegion = true
}

// acquire takes the mutex; with crash injection armed it spins so a
// machine-wide crash also kills threads waiting on locks.
func (t *Thread) acquire(l *locks.Lock) {
	if !t.m.crashArmed.Load() {
		l.Acquire()
		return
	}
	for !l.TryAcquire() {
		if t.m.crashed.Load() {
			panic(errCrash{})
		}
		runtime.Gosched()
	}
}

// slotOf probes only the live holder slots, guided by the bits mask
// (slots[i] != 0 exactly when bit i is set).
func (t *Thread) slotOf(holder uint64) int {
	for m := t.bits; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if t.slots[i] == holder {
			return i
		}
	}
	return -1
}

// freeSlot returns the lowest empty holder slot, or -1 when full.
func (t *Thread) freeSlot() int {
	if i := bits.TrailingZeros64(^t.bits); i < numLk {
		return i
	}
	return -1
}

// lock implements the per-mode acquire protocol.
func (t *Thread) lock(l *locks.Lock) {
	if t.slotOf(l.Holder()) >= 0 {
		if !t.recovering {
			panic("vm: recursive lock outside recovery")
		}
		return
	}
	dev := t.m.Reg.Dev
	if t.m.Mode == ModeJUSTDO {
		dev.Store64(t.log+lIntent, l.Holder())
		dev.CLWB(t.log + lIntent)
		for _, line := range t.dirtySlots {
			dev.CLWB(line)
		}
		t.dirtySlots = t.dirtySlots[:0]
		dev.Fence()
		t.tick()
	}
	t.acquire(l)
	slot := t.freeSlot()
	if slot < 0 {
		panic("vm: lock array overflow")
	}
	t.slots[slot] = l.Holder()
	t.bits |= 1 << uint(slot)
	if t.m.Mode != ModeOrigin {
		sa := t.log + lLocks + uint64(slot)*8
		dev.Store64(sa, l.Holder())
		dev.Store64(t.log+lBits, t.bits)
		if t.m.Mode == ModeJUSTDO {
			dev.Store64(t.log+lIntent, 0)
		}
		dev.CLWB(sa)
		dev.CLWB(t.log + lBits)
		dev.Fence()
	}
	if t.rc != nil {
		if t.lockDepth == 0 && t.durDepth == 0 {
			t.faseT0 = t.rc.Clock()
			t.faseLogBytes = 0
		}
		t.rc.Emit(obs.KLockAcq, l.Holder(), 0)
	}
	t.lockDepth++
}

// unlock implements the per-mode release protocol, with the same
// crash-ordering rules as the native runtime: at the FASE's final release
// the data is fenced durable and recovery_pc cleared before the slot is
// dropped and the mutex released.
func (t *Thread) unlock(l *locks.Lock) {
	slot := t.slotOf(l.Holder())
	if slot < 0 {
		if t.recovering {
			return
		}
		panic("vm: unlocking a lock not held")
	}
	dev := t.m.Reg.Dev
	last := t.lockDepth == 1 && t.durDepth == 0
	if t.m.Mode == ModeJUSTDO {
		dev.Store64(t.log+lIntent, l.Holder())
		dev.CLWB(t.log + lIntent)
		dev.Fence()
		t.tick()
	}
	if last && t.m.Mode != ModeOrigin {
		if t.m.Mode == ModeIDO {
			t.closeRegion()
			t.persistDirty()
			t.tick()
		}
		dev.StoreNT(t.log+lPC, 0)
		dev.FenceBatch()
	}
	t.slots[slot] = 0
	t.bits &^= 1 << uint(slot)
	if t.m.Mode != ModeOrigin {
		sa := t.log + lLocks + uint64(slot)*8
		dev.Store64(sa, 0)
		dev.Store64(t.log+lBits, t.bits)
		if t.m.Mode == ModeJUSTDO {
			dev.Store64(t.log+lIntent, 0)
		}
		dev.CLWB(sa)
		dev.CLWB(t.log + lBits)
		dev.Fence()
	}
	t.rc.Emit(obs.KLockRel, l.Holder(), 0)
	t.lockDepth--
	if last {
		t.stats.FASEs++
		if t.rc != nil {
			t.rc.Span(obs.KFASE, t.faseLogBytes, 0, t.faseT0)
			t.rc.Observe(obs.HLogBytesPerFASE, t.faseLogBytes)
		}
	}
	l.Release()
}

func (t *Thread) endDurable() {
	if t.durDepth == 0 {
		panic("vm: end_durable below depth 0")
	}
	dev := t.m.Reg.Dev
	last := t.durDepth == 1 && t.lockDepth == 0
	if last && t.m.Mode != ModeOrigin {
		if t.m.Mode == ModeIDO {
			t.closeRegion()
			t.persistDirty()
			t.tick()
		}
		dev.StoreNT(t.log+lPC, 0)
		dev.FenceBatch()
		t.stats.FASEs++
	}
	if last && t.rc != nil {
		t.rc.Span(obs.KFASE, t.faseLogBytes, 0, t.faseT0)
		t.rc.Observe(obs.HLogBytesPerFASE, t.faseLogBytes)
	}
	t.durDepth--
}
