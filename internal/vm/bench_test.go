package vm

import (
	"testing"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/irprog"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/region"
)

// Dispatch microbenchmarks. The spin kernel is pure register arithmetic
// and branching — no locks, no persistent protocol — so ModeOrigin over
// it measures the interpreter's per-instruction dispatch cost and
// nothing else (4 instructions per loop iteration). The inc kernel is
// the steady-state iDO hot path: one FASE, two boundaries, one tracked
// store, the lock protocol.
const benchSpinSrc = `
func spin 1 {
entry:
  i = const 0
  acc = const 0
  jmp loop
loop:
  acc = add acc i
  i = add i 1
  c = lt i r0
  br c loop done
done:
  ret acc
}
`

const benchSpinIters = 256

func benchMachine(b *testing.B, src string, mode Mode) (*Machine, *region.Region, *locks.Manager) {
	b.Helper()
	prog, err := ir.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	c, err := compile.Program(prog, compile.Config{})
	if err != nil {
		b.Fatal(err)
	}
	reg := region.Create(1<<26, nvm.Config{})
	lm := locks.NewManager(reg)
	return New(reg, lm, c, mode), reg, lm
}

// BenchmarkVMDispatchOrigin measures raw decode/dispatch throughput:
// ns/op divided by ~4*benchSpinIters is the per-instruction cost.
func BenchmarkVMDispatchOrigin(b *testing.B) {
	m, _, _ := benchMachine(b, benchSpinSrc, ModeOrigin)
	th, err := m.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Call("spin", benchSpinIters); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(4*benchSpinIters+5), "ns/instr")
}

// BenchmarkVMDispatchIDOInc measures one full iDO FASE (lock, boundary,
// load, add, tracked store, boundary fold, unlock) per op.
func BenchmarkVMDispatchIDOInc(b *testing.B) {
	benchInc(b, ModeIDO)
}

// BenchmarkVMDispatchJUSTDOInc is the same FASE under JUSTDO's
// per-mutation logging.
func BenchmarkVMDispatchJUSTDOInc(b *testing.B) {
	benchInc(b, ModeJUSTDO)
}

func benchInc(b *testing.B, mode Mode) {
	m, reg, lm := benchMachine(b, kernels, mode)
	hdr, err := reg.Alloc.Alloc(24)
	if err != nil {
		b.Fatal(err)
	}
	l, err := lm.Create()
	if err != nil {
		b.Fatal(err)
	}
	reg.Dev.Store64(hdr, l.Holder())
	reg.Dev.PersistRange(hdr, 24)
	reg.Dev.Fence()
	th, err := m.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Call("inc", hdr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMDispatchFig8Push is the Fig. 8 instrumentation workload:
// compiled irprog stack_push in ModeIDO, paired with a pop to keep the
// structure (and the allocator) in steady state.
func BenchmarkVMDispatchFig8Push(b *testing.B) {
	prog, err := irprog.Compile(compile.Config{})
	if err != nil {
		b.Fatal(err)
	}
	reg := region.Create(1<<26, nvm.Config{})
	lm := locks.NewManager(reg)
	m := New(reg, lm, prog, ModeIDO)
	stk, err := irprog.NewStack(reg, lm)
	if err != nil {
		b.Fatal(err)
	}
	th, err := m.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Call("stack_push", stk, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := th.Call("stack_pop", stk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMTickArmed measures dispatch with crash injection armed (a
// huge budget that never fires): every instruction pays the crash-budget
// tick. Before the threaded-code rewrite this was one contended atomic
// add per event; after, it is a per-thread counter refilled in batches.
func BenchmarkVMTickArmed(b *testing.B) {
	m, _, _ := benchMachine(b, benchSpinSrc, ModeOrigin)
	th, err := m.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	m.SetCrashBudget(1 << 62)
	defer m.SetCrashBudget(-1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Call("spin", benchSpinIters); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMTickArmed16 runs the armed spin kernel on 16 VM threads at
// once: the shared-budget implementation serializes on one cache line,
// the batched implementation does not.
func BenchmarkVMTickArmed16(b *testing.B) {
	m, _, _ := benchMachine(b, benchSpinSrc, ModeOrigin)
	m.SetCrashBudget(1 << 62)
	defer m.SetCrashBudget(-1)
	b.SetParallelism(16)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		th, err := m.NewThread()
		if err != nil {
			b.Fatal(err)
		}
		for pb.Next() {
			if _, err := th.Call("spin", benchSpinIters); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVMTrace16 hammers OpPrint from 16 VM threads. Before the
// rewrite every print took the machine-global trace mutex; after, each
// thread appends to its own buffer.
func BenchmarkVMTrace16(b *testing.B) {
	const src = `
func chatty 1 {
entry:
  i = const 0
  jmp loop
loop:
  print i
  i = add i 1
  c = lt i r0
  br c loop done
done:
  ret
}
`
	m, _, _ := benchMachine(b, src, ModeOrigin)
	b.SetParallelism(16)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		th, err := m.NewThread()
		if err != nil {
			b.Fatal(err)
		}
		for pb.Next() {
			if _, err := th.Call("chatty", 64); err != nil {
				b.Fatal(err)
			}
		}
	})
}
