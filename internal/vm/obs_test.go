package vm

import (
	"math/rand"
	"path/filepath"
	"testing"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/region"
)

// buildTraced is build() with a tracer attached at device birth, so the
// traced event counts equal the device's counters exactly (region
// formatting included).
func buildTraced(t *testing.T, mode Mode, tr *obs.Tracer) *world {
	t.Helper()
	prog, err := ir.Parse(kernels)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compile.Program(prog, compile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := region.Create(1<<22, nvm.Config{Tracer: tr})
	lm := locks.NewManager(reg)
	m := New(reg, lm, c, mode)
	hdr, err := reg.Alloc.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	l, err := lm.Create()
	if err != nil {
		t.Fatal(err)
	}
	reg.Dev.Store64(hdr, l.Holder())
	reg.Dev.Store64(hdr+8, 0)
	reg.Dev.PersistRange(hdr, 24)
	reg.Dev.Fence()
	reg.SetRoot(1, hdr)
	return &world{reg: reg, lm: lm, m: m, prog: c, stk: hdr}
}

// runObsWorkload performs a deterministic inc+push+pop mix.
func runObsWorkload(t *testing.T, w *world) {
	t.Helper()
	th, err := w.m.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := th.Call("inc", w.stk); err != nil {
			t.Fatal(err)
		}
		if _, err := th.Call("push", w.stk, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if _, err := th.Call("pop", w.stk); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// assertCountsMatch checks the tracer invariant: every device stat count
// is paired with exactly one trace event.
func assertCountsMatch(t *testing.T, label string, tr *obs.Tracer, ds nvm.Stats) {
	t.Helper()
	for _, c := range []struct {
		kind obs.Kind
		want uint64
	}{
		{obs.KFlush, ds.Flushes},
		{obs.KFence, ds.Fences},
		{obs.KNTStore, ds.NTStores},
		{obs.KEvict, ds.Evictions},
		{obs.KCrash, ds.Crashes},
	} {
		if got := tr.Count(c.kind); got != c.want {
			t.Errorf("%s: traced %s count %d != device count %d", label, c.kind, got, c.want)
		}
	}
}

// TestTracingPreservesDeviceCounts runs the same workload with tracing
// off and on: the device must emit the identical event counts (tracing is
// observation, not perturbation), and the trace must count them exactly.
func TestTracingPreservesDeviceCounts(t *testing.T) {
	for _, mode := range []Mode{ModeOrigin, ModeIDO, ModeJUSTDO} {
		plain := build(t, mode, compile.Config{})
		runObsWorkload(t, plain)

		tr := obs.New(obs.DefaultConfig())
		traced := buildTraced(t, mode, tr)
		runObsWorkload(t, traced)

		if p, q := plain.reg.Dev.Stats(), traced.reg.Dev.Stats(); p != q {
			t.Errorf("%v: device stats diverge with tracing on\nplain:  %+v\ntraced: %+v", mode, p, q)
		}
		assertCountsMatch(t, mode.String(), tr, traced.reg.Dev.Stats())
	}
}

// TestExportedTraceCountsMatchStats exports a traced run to a Chrome
// trace file and proves the per-kind event counts inside the file equal
// the device's counters — the end-to-end acceptance invariant.
func TestExportedTraceCountsMatchStats(t *testing.T) {
	tr := obs.New(obs.DefaultConfig())
	w := buildTraced(t, ModeIDO, tr)
	runObsWorkload(t, w)
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("workload overflowed the rings (%d dropped); shrink it or grow the caps", d)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if _, err := tr.ExportChromeFile(path); err != nil {
		t.Fatal(err)
	}
	ds := w.reg.Dev.Stats()
	for _, c := range []struct {
		kind obs.Kind
		want uint64
	}{
		{obs.KFlush, ds.Flushes},
		{obs.KFence, ds.Fences},
	} {
		n, err := obs.CountInFile(path, c.kind)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(n) != c.want {
			t.Errorf("file has %d %s events, device counted %d", n, c.kind, c.want)
		}
	}
}

// TestTracedCrashRecoverSweep injects a crash at every budget with
// tracing live through both the crash and the recovery, and checks that
// (a) the recovered state matches the untraced oracle, (b) the audit
// trail is present and consistent, and (c) every event is well-formed.
func TestTracedCrashRecoverSweep(t *testing.T) {
	run := func(tr *obs.Tracer, budget int64) (uint64, *obs.RecoveryAudit) {
		var w *world
		if tr != nil {
			w = buildTraced(t, ModeIDO, tr)
		} else {
			w = build(t, ModeIDO, compile.Config{})
		}
		th, err := w.m.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		w.m.SetCrashBudget(budget)
		for i := 0; i < 4; i++ {
			if _, err := th.Call("inc", w.stk); err == ErrCrashed {
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		w2 := w.reopen(t, nvm.CrashDiscard, rand.New(rand.NewSource(1)), ModeIDO)
		if tr != nil {
			w2.reg.Dev.SetTracer(tr)
		}
		st, err := w2.m.Recover()
		if err != nil {
			t.Fatalf("budget %d: recover: %v", budget, err)
		}
		return w2.reg.Dev.Load64(w2.stk + 8), st.Audit
	}
	for budget := int64(0); budget <= 80; budget++ {
		tr := obs.New(obs.DefaultConfig())
		got, audit := run(tr, budget)
		want, _ := run(nil, budget)
		if got != want {
			t.Fatalf("budget %d: traced run recovered counter %d, untraced %d", budget, got, want)
		}
		if audit == nil {
			t.Fatalf("budget %d: recovery returned no audit", budget)
		}
		for _, ta := range audit.Threads {
			if ta.Action == obs.AuditResumed && ta.RegionID == 0 {
				t.Fatalf("budget %d: resumed thread %d has no region id", budget, ta.ThreadID)
			}
		}
		for _, e := range tr.Events() {
			if int(e.Kind) >= obs.NumKinds || e.TS < 0 || e.Dur < 0 {
				t.Fatalf("budget %d: malformed event %+v", budget, e)
			}
		}
	}
}

// TestRecoveryAuditResumed pins a mid-FASE crash and checks the audit
// records the full story: the lock re-acquired, the region resumed, and
// the words restored.
func TestRecoveryAuditResumed(t *testing.T) {
	// Find a budget where the crash lands mid-FASE with the pc published.
	for budget := int64(1); budget <= 120; budget++ {
		w := build(t, ModeIDO, compile.Config{})
		th, err := w.m.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		w.m.SetCrashBudget(budget)
		crashed := false
		for i := 0; i < 4; i++ {
			if _, err := th.Call("inc", w.stk); err == ErrCrashed {
				crashed = true
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		if !crashed {
			continue
		}
		w2 := w.reopen(t, nvm.CrashDiscard, rand.New(rand.NewSource(1)), ModeIDO)
		st, err := w2.m.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if st.Audit == nil || st.Audit.Resumed() == 0 {
			continue // crash landed outside a published region
		}
		if st.Audit.Runtime != "vm-ido" {
			t.Fatalf("audit runtime = %q, want vm-ido", st.Audit.Runtime)
		}
		var res *obs.ThreadAudit
		for i := range st.Audit.Threads {
			if st.Audit.Threads[i].Action == obs.AuditResumed {
				res = &st.Audit.Threads[i]
			}
		}
		if res == nil {
			t.Fatal("Resumed() > 0 but no resumed thread record")
		}
		if res.RegionID == 0 || res.RecoveryPC == 0 {
			t.Fatalf("resumed record missing region/pc: %+v", res)
		}
		if len(res.Locks) != 1 {
			t.Fatalf("resumed record re-acquired %d locks, want 1", len(res.Locks))
		}
		if res.WordsRestored == 0 {
			t.Fatal("resumed record restored no words")
		}
		return // one fully-audited resumption is the test
	}
	t.Fatal("no budget in [1,120] produced an audited resumption")
}

// TestDisabledTracerZeroAllocCall proves the disabled-tracer fast path
// and the per-thread return buffer together make Call allocation-free.
func TestDisabledTracerZeroAllocCall(t *testing.T) {
	w := build(t, ModeIDO, compile.Config{})
	th, err := w.m.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := th.Call("inc", w.stk); err != nil { // warm caches, retBuf
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := th.Call("inc", w.stk); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Call allocates %.1f times per op with tracing disabled, want 0", avg)
	}
}
