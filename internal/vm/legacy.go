// The legacy tree-walking interpreter, kept as the differential oracle
// for the threaded-code engine (Machine.Legacy selects it). It walks
// ir.Func blocks directly, re-deriving per instruction everything the
// decoder precomputes — operand classification, jump resolution, packed
// recovery pcs — but calls the same protocol helpers in the same order,
// so its device event stream and crash-injection points are identical to
// exec()'s. equiv_test.go and the fuzz differentials hold the two
// engines to that.
package vm

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
)

// runLegacy interprets f starting at (block, idx) by walking the block
// structure. Semantics of stopAtDepth match exec.
func (t *Thread) runLegacy(f *ir.Func, block, idx, stopAtDepth int) []uint64 {
	dev := t.m.Reg.Dev
	fnIdx := t.m.funcIdx[f.Name]
	val := func(v ir.Value) uint64 {
		if v.IsImm {
			return v.Imm
		}
		return t.rf[v.Reg]
	}
	for {
		b := f.Blocks[block]
		if idx >= len(b.Instrs) {
			// Fall through.
			if len(b.Succs) != 1 {
				panic(fmt.Sprintf("vm: %s: block %s ends without terminator", f.Name, b.Name))
			}
			block, idx = b.Succs[0], 0
			continue
		}
		in := &b.Instrs[idx]
		pc := compile.PackPC(fnIdx, block, idx)
		t.tick()
		switch in.Op {
		case ir.OpConst:
			t.def(pc, in.Dest, in.Imm)
		case ir.OpMov:
			t.def(pc, in.Dest, val(in.Args[0]))
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod, ir.OpAnd,
			ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpEq, ir.OpNe,
			ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			t.def(pc, in.Dest, arith(in.Op, val(in.Args[0]), val(in.Args[1])))
		case ir.OpLoad:
			t.def(pc, in.Dest, dev.Load64(t.rf[in.Args[0].Reg]+in.Imm))
		case ir.OpStore:
			t.store(pc, t.rf[in.Args[0].Reg]+in.Imm, val(in.Args[1]))
		case ir.OpAlloc:
			p, err := t.m.Reg.Alloc.Alloc(int(val(in.Args[0])))
			if err != nil {
				panic(fmt.Sprintf("vm: %s: %v", f.Name, err))
			}
			t.def(pc, in.Dest, p)
		case ir.OpNewLock:
			l, err := t.m.LM.Create()
			if err != nil {
				panic(fmt.Sprintf("vm: %s: %v", f.Name, err))
			}
			t.def(pc, in.Dest, l.Holder())
		case ir.OpSAlloc:
			n := (val(in.Args[0]) + 7) &^ 7
			if t.sp+n > t.frame+frameSize {
				panic(fmt.Sprintf("vm: %s: stack overflow", f.Name))
			}
			p := t.sp
			t.setSP(pc, t.sp+n)
			t.def(pc, in.Dest, p)
		case ir.OpLock:
			t.lock(t.m.LM.ByHolder(val(in.Args[0])))
		case ir.OpUnlock:
			t.unlock(t.m.LM.ByHolder(val(in.Args[0])))
			if t.depth() == stopAtDepth {
				return nil
			}
		case ir.OpBeginDur:
			t.beginDurable()
		case ir.OpEndDur:
			t.endDurable()
			if t.depth() == stopAtDepth {
				return nil
			}
		case ir.OpBoundary:
			regs := make([]ir.Reg, len(in.Args))
			for i, a := range in.Args {
				regs[i] = a.Reg
			}
			t.boundary(in.Imm, regs)
		case ir.OpPrint:
			t.trace = append(t.trace, val(in.Args[0]))
		case ir.OpBr:
			if val(in.Args[0]) != 0 {
				block, idx = in.Targets[0], 0
			} else {
				block, idx = in.Targets[1], 0
			}
			continue
		case ir.OpJmp:
			block, idx = in.Targets[0], 0
			continue
		case ir.OpRet:
			out := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				out[i] = val(a)
			}
			return out
		default:
			panic(fmt.Sprintf("vm: unhandled op %v", in.Op))
		}
		idx++
	}
}

func arith(op ir.Op, a, b uint64) uint64 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	case ir.OpDiv:
		if b == 0 {
			panic("vm: division by zero")
		}
		return a / b
	case ir.OpMod:
		if b == 0 {
			panic("vm: division by zero")
		}
		return a % b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		return a << (b & 63)
	case ir.OpShr:
		return a >> (b & 63)
	case ir.OpEq:
		return b2i(a == b)
	case ir.OpNe:
		return b2i(a != b)
	case ir.OpLt:
		return b2i(a < b)
	case ir.OpLe:
		return b2i(a <= b)
	case ir.OpGt:
		return b2i(a > b)
	case ir.OpGe:
		return b2i(a >= b)
	}
	panic("vm: not arithmetic")
}
