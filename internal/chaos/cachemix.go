package chaos

import (
	"fmt"
	"math/rand"

	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

const cacheBuckets = 4

// cacheOps is the forward script: the delete-heavy churn of Fig. 5c as
// a fixed, deterministic sequence (no rng: the schedule must replay
// bit-for-bit). It covers every Set/Get/Delete region at least once —
// miss insert, found update (with its LRU move), hit and miss Gets, and
// found and miss Deletes with their unchain / LRU-unlink / count FASEs.
var cacheOps = []struct {
	kind byte // 's'et, 'g'et, 'd'elete
	k    uint64
	v    uint64
}{
	{'s', 1, 100}, // miss insert
	{'s', 2, 200}, // miss insert
	{'s', 1, 101}, // found update: overwrite + LRU move to front
	{'g', 2, 0},   // hit
	{'d', 1, 0},   // delete found: unchain + LRU unlink + count
	{'g', 1, 0},   // miss
	{'s', 3, 300}, // insert
	{'d', 4, 0},   // delete miss: pure-scan release path
	{'d', 2, 0},   // delete found
	{'s', 4, 400}, // insert
}

// cacheKey1 derives the second key word, matching the Fig. 5 encoding.
func cacheKey1(k0 uint64) uint64 { return k0 ^ 0x5A5A }

// cacheDriver runs the Fig. 5 memcached application under the harness
// with the delete-heavy mix, so the delete FASEs' unchain, LRU-unlink,
// and count-decrement regions get the same crash-point coverage as the
// counter and map workloads. Restricted to the runtimes whose recovery
// reconstructs (or wholly replays) the in-flight FASE — a half-applied
// unlink is a structural violation here, not a bounded counter deficit.
type cacheDriver struct {
	s  Schedule
	mk func() persist.Runtime
	gc bool // run the device with the forced group-commit combiner

	reg   *region.Region
	lm    *locks.Manager
	rt    persist.Runtime
	th    persist.Thread
	env   *memcache.Env
	cache *memcache.Cache
	tbl   uint64
}

func (d *cacheDriver) prepare(seed int64) error {
	d.reg = region.Create(1<<20, chaosNVMConfig(d.gc))
	d.lm = locks.NewManager(d.reg)
	d.rt = d.mk()
	if err := d.rt.Attach(d.reg, d.lm); err != nil {
		return err
	}
	d.env = &memcache.Env{Reg: d.reg, LM: d.lm}
	cache, tbl, err := memcache.New(d.env, cacheBuckets)
	if err != nil {
		return err
	}
	d.cache = cache
	d.tbl = tbl
	d.reg.SetRoot(rootChaosCache, tbl)
	th, err := d.rt.NewThread()
	if err != nil {
		return err
	}
	d.th = th
	return nil
}

func (d *cacheDriver) forward() error {
	for _, op := range cacheOps {
		k0, k1 := op.k, cacheKey1(op.k)
		switch op.kind {
		case 's':
			d.cache.Set(d.th, k0, k1, op.v)
		case 'g':
			d.cache.Get(d.th, k0, k1)
		case 'd':
			d.cache.Delete(d.th, k0, k1)
		}
	}
	return nil
}

func (d *cacheDriver) reopen(mode nvm.CrashMode, rng *rand.Rand) error {
	reg2, err := d.reg.Crash(mode, rng)
	if err != nil {
		return err
	}
	d.reg = reg2
	d.lm = locks.NewManager(reg2)
	d.rt = d.mk()
	if err := d.rt.Attach(reg2, d.lm); err != nil {
		return err
	}
	d.env = &memcache.Env{Reg: reg2, LM: d.lm}
	d.tbl = reg2.Root(rootChaosCache)
	d.cache = memcache.Attach(d.env, d.tbl)
	d.th = nil // recovery and observation never execute workload FASEs
	return nil
}

func (d *cacheDriver) recover() (persist.RecoveryStats, error) {
	rr := persist.NewResumeRegistry()
	memcache.Register(rr, d.env)
	return d.rt.Recover(rr)
}

// Table/item field offsets, mirrored from the memcache layout for the
// raw-device walks below (the driver inspects the image directly, like
// a recovery auditor, rather than through cache FASEs).
const (
	cTLRUHead = 16
	cTLRUTail = 24
	cTCount   = 32
	cTCmdGet  = 40
	cTCmdSet  = 48
	cTHits    = 56
	cTArray   = 64
	cIK0      = 0
	cIK1      = 8
	cIVal     = 16
	cIHNext   = 24
	cILPrev   = 32
	cILNext   = 40
)

// walkChains visits every item of every bucket chain, first pinning the
// bucket count to the driver's known geometry (the exported walker only
// bounds-checks it).
func (d *cacheDriver) walkChains(fn func(item uint64) error) error {
	if n := d.reg.Dev.Load64(d.tbl + 8); n != cacheBuckets {
		return fmt.Errorf("cache header: %d buckets, want %d", n, cacheBuckets)
	}
	return WalkCacheChains(d.reg.Dev, d.tbl, fn)
}

func (d *cacheDriver) observe() (map[string]uint64, error) {
	dev := d.reg.Dev
	out := map[string]uint64{
		"count": dev.Load64(d.tbl + cTCount),
		"sets":  dev.Load64(d.tbl + cTCmdSet),
		"gets":  dev.Load64(d.tbl + cTCmdGet),
		"hits":  dev.Load64(d.tbl + cTHits),
	}
	err := d.walkChains(func(item uint64) error {
		out[fmt.Sprintf("k%d", dev.Load64(item+cIK0))] = dev.Load64(item + cIVal)
		return nil
	})
	return out, err
}

// invariants checks the structural contract every completed recovery
// must restore (see CheckCacheImage), after pinning the geometry.
func (d *cacheDriver) invariants() error {
	if n := d.reg.Dev.Load64(d.tbl + 8); n != cacheBuckets {
		return fmt.Errorf("cache header: %d buckets, want %d", n, cacheBuckets)
	}
	return CheckCacheImage(d.reg.Dev, d.tbl)
}

func (d *cacheDriver) locksFree() error {
	return CheckCacheLockFree(d.reg.Dev, d.lm, d.tbl)
}
