// Package chaos drives deterministic, replayable crash schedules across
// every persistence runtime. A schedule crashes the forward workload at
// its Nth injectable device event, then crashes each nested recovery
// pass at the Mth event of that pass (nesting depth ≤ 3: crash the
// recovery of the recovery), re-settles the device under the schedule's
// adversary, and finally runs one clean recovery. The surviving state is
// verified three ways, plus workload invariants and lock-table freedom:
//
//  1. Convergence: the final state must equal a reference run that
//     settles the same forward crash under the same adversary and seed
//     but recovers once, cleanly — nested recovery crashes must be
//     invisible.
//  2. CrashPersistAll oracle, exact: for recovery-via-resumption
//     runtimes (iDO native and VM, and the baselines whose commit point
//     is a single unambiguous durable store) the outcome must also match
//     the same crash settled under nvm.CrashPersistAll, the adversary
//     under which nothing in flight is lost. This is §III-C's claim that
//     the adversary cannot change what recovery reconstructs.
//  3. CrashPersistAll oracle, bounded: the UNDO baselines (Atlas, NVML)
//     truncate their logs through the volatile cache, so a crash landing
//     between a FASE's data fence and its truncation fence is genuinely
//     ambiguous — persist-all resolves it as committed, discard as
//     rolled back, and both are linearizable. For them each observable
//     may trail the persist-all oracle by at most the one in-flight
//     FASE.
//
// A Schedule is the single replayable tuple. Its String form round-trips
// through ParseSchedule and is accepted by `idorecover -chaos -replay`,
// so any failure a sweep prints can be reproduced in isolation.
//
// Crash injection is process-global (internal/nvm/inject.go), so Run,
// the probes, and Sweep must not be called concurrently.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
)

// MaxDepth is the deepest supported recovery nesting: a schedule may
// crash the first recovery, the recovery of that recovery, and the
// recovery of *that* recovery before the final clean pass.
const MaxDepth = 3

// Schedule is a fully deterministic crash scenario: which runtime and
// workload to run, which adversary settles the device at every crash,
// the forward crash point, and the crash point of each nested recovery
// pass. Seed feeds both the nvm.CrashRandom settles and any randomness
// the workload wants; two runs of the same Schedule observe identical
// event sequences.
type Schedule struct {
	Runtime  string
	Workload string
	Mode     nvm.CrashMode
	Seed     int64
	Forward  int64   // crash after this many forward device events (≥ 1)
	Recovery []int64 // per nesting level: crash after this many recovery events
}

// String renders the single replayable tuple, e.g.
// "ido:counter:random:7:12:3,5".
func (s Schedule) String() string {
	rec := "-"
	if len(s.Recovery) > 0 {
		parts := make([]string, len(s.Recovery))
		for i, r := range s.Recovery {
			parts[i] = strconv.FormatInt(r, 10)
		}
		rec = strings.Join(parts, ",")
	}
	return fmt.Sprintf("%s:%s:%s:%d:%d:%s",
		s.Runtime, s.Workload, ModeName(s.Mode), s.Seed, s.Forward, rec)
}

// ModeName is the canonical flag spelling of a crash adversary, shared
// with idorecover's -mode flag.
func ModeName(m nvm.CrashMode) string {
	switch m {
	case nvm.CrashDiscard:
		return "discard"
	case nvm.CrashRandom:
		return "random"
	case nvm.CrashPersistAll:
		return "persist-all"
	}
	return fmt.Sprintf("mode-%d", int(m))
}

// ParseMode inverts ModeName.
func ParseMode(s string) (nvm.CrashMode, error) {
	switch s {
	case "discard":
		return nvm.CrashDiscard, nil
	case "random":
		return nvm.CrashRandom, nil
	case "persist-all":
		return nvm.CrashPersistAll, nil
	}
	return 0, fmt.Errorf("chaos: unknown crash mode %q (want discard|random|persist-all)", s)
}

// ParseSchedule inverts Schedule.String.
func ParseSchedule(s string) (Schedule, error) {
	f := strings.Split(s, ":")
	if len(f) != 6 {
		return Schedule{}, fmt.Errorf("chaos: schedule %q: want 6 colon-separated fields, got %d", s, len(f))
	}
	mode, err := ParseMode(f[2])
	if err != nil {
		return Schedule{}, err
	}
	seed, err := strconv.ParseInt(f[3], 10, 64)
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: schedule %q: seed: %v", s, err)
	}
	fwd, err := strconv.ParseInt(f[4], 10, 64)
	if err != nil {
		return Schedule{}, fmt.Errorf("chaos: schedule %q: forward budget: %v", s, err)
	}
	var rec []int64
	if f[5] != "-" && f[5] != "" {
		for _, p := range strings.Split(f[5], ",") {
			r, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("chaos: schedule %q: recovery budget %q: %v", s, p, err)
			}
			rec = append(rec, r)
		}
	}
	sc := Schedule{Runtime: f[0], Workload: f[1], Mode: mode, Seed: seed, Forward: fwd, Recovery: rec}
	if len(sc.Recovery) > MaxDepth {
		return Schedule{}, fmt.Errorf("chaos: schedule %q: %d recovery budgets exceeds max nesting depth %d", s, len(sc.Recovery), MaxDepth)
	}
	if _, _, err := newDriver(sc); err != nil {
		return Schedule{}, err
	}
	return sc, nil
}

// Attempt records one recovery pass of a schedule run, including the
// passes a nested crash cut short (their audit is lost with the pass;
// the index and budget still attribute the crash point).
type Attempt struct {
	Index   int   // process recovery-pass index since the run started, 0-based
	Budget  int64 // armed recovery crash budget; -1 for the final clean pass
	Crashed bool  // the armed budget fired inside this pass
	Err     string
	Audit   *obs.RecoveryAudit // nil when the pass crashed
}

// Result is a converged schedule run: the per-nesting-level recovery
// attempts, the final observable state, and the two reference
// observations it was verified against.
type Result struct {
	Schedule Schedule
	Attempts []Attempt
	// Oracle is the convergence reference: same forward crash, same
	// adversary and seed, one clean recovery.
	Oracle map[string]uint64
	// PersistAll is the CrashPersistAll oracle (equals Oracle when the
	// schedule's adversary is persist-all).
	PersistAll map[string]uint64
	Final      map[string]uint64
}

// caps declares what a runtime promises under this harness.
type caps struct {
	// recoverErr: Recover refuses by contract (native JUSTDO needs the
	// VM replay); the run verifies that the refusal is returned and
	// skips nested recovery crashes (there is no pass to crash).
	recoverErr bool
	// modes lists the adversaries this runtime's recovery contract
	// covers. Runtimes with no recovery at all (origin) are only
	// meaningful under persist-all, where the settle itself is the
	// oracle's settle.
	modes []nvm.CrashMode
	// exactPA: post-recovery observables are adversary-independent, so
	// the CrashPersistAll oracle must match exactly under every
	// supported mode. False for the UNDO baselines whose cached
	// truncation leaves a genuinely ambiguous commit window (the
	// persist-all oracle then only bounds the outcome).
	exactPA bool
}

func (c caps) supports(m nvm.CrashMode) bool {
	for _, x := range c.modes {
		if x == m {
			return true
		}
	}
	return false
}

var allModes = []nvm.CrashMode{nvm.CrashDiscard, nvm.CrashRandom, nvm.CrashPersistAll}

// driver runs one runtime+workload pair through the schedule's phases.
// Crash injection is armed and caught by the harness, never the driver.
type driver interface {
	prepare(seed int64) error
	forward() error
	// reopen settles the device under mode and attaches a fresh runtime,
	// exactly like a restarted process re-mapping the region.
	reopen(mode nvm.CrashMode, rng *rand.Rand) error
	recover() (persist.RecoveryStats, error)
	// observe reads the workload's observables from the device image.
	observe() (map[string]uint64, error)
	// invariants checks structural well-formedness beyond the oracle
	// compare (chain ordering, value ranges, cycle freedom).
	invariants() error
	// locksFree verifies every workload lock is acquirable.
	locksFree() error
}

// Runtimes lists the runtime names Run accepts, native first. The
// "-gc" variants run the same runtime with the device's group-commit
// fence combiner enabled and forced (every batchable commit goes
// through the combiner's publish/merge/fence protocol, so the
// single-threaded schedules cover its crash points deterministically).
func Runtimes() []string {
	return []string{
		"ido", "atlas", "mnemosyne", "nvthreads", "nvml", "justdo", "origin",
		"ido-gc", "atlas-gc", "mnemosyne-gc",
		"vm-ido", "vm-justdo", "vm-origin", "vm-ido-gc",
	}
}

// gcSuffix selects group-commit mode on a runtime name.
const gcSuffix = "-gc"

// chaosNVMConfig builds the device config for a schedule. Group-commit
// schedules force combining so the combiner path (slot publish, leader
// election, merged fence) is on every commit's event sequence, not just
// when threads happen to overlap.
func chaosNVMConfig(gc bool) nvm.Config {
	if !gc {
		return nvm.Config{}
	}
	return nvm.Config{GroupCommit: nvm.GroupCommitConfig{Enabled: true, ForceCombine: true}}
}

func newDriver(s Schedule) (driver, caps, error) {
	if strings.HasPrefix(s.Runtime, "vm-") {
		return newVMDriver(s)
	}
	return newNativeDriver(s)
}

// catchCrash runs fn, converting an injected nvm.CrashSignal panic into
// crashed=true. Any other panic propagates.
func catchCrash(fn func() error) (crashed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nvm.CrashSignal); !ok {
				panic(r)
			}
			crashed = true
			err = nil
		}
	}()
	return false, fn()
}

// Run executes one schedule end to end and verifies convergence.
// Failures wrap the schedule string so they can be replayed with
// `idorecover -chaos -replay '<schedule>'`.
func Run(s Schedule) (*Result, error) {
	d, c, err := newDriver(s)
	if err != nil {
		return nil, err
	}
	if !c.supports(s.Mode) {
		return nil, fmt.Errorf("chaos: schedule %s: runtime %s has no recovery under the %s adversary (supported: %s)",
			s, s.Runtime, ModeName(s.Mode), modeNames(c.modes))
	}
	if s.Forward < 1 {
		return nil, fmt.Errorf("chaos: schedule %s: forward budget must be ≥ 1", s)
	}
	if len(s.Recovery) > MaxDepth {
		return nil, fmt.Errorf("chaos: schedule %s: nesting depth %d exceeds %d", s, len(s.Recovery), MaxDepth)
	}

	// References: the CrashPersistAll oracle, and (when the schedule's
	// adversary differs) the same-adversary clean-recovery run the chaos
	// run must converge to. Both replay the identical forward crash; the
	// same-adversary reference also replays the identical first settle
	// (same seed, same rng draw sequence).
	oraclePA, err := runOracle(s, c, nvm.CrashPersistAll)
	if err != nil {
		return nil, err
	}
	oracle := oraclePA
	if s.Mode != nvm.CrashPersistAll {
		oracle, err = runOracle(s, c, s.Mode)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Schedule: s, Oracle: oracle, PersistAll: oraclePA}
	defer nvm.ArmCrash(-1)
	nvm.ResetRecoveryPasses()

	if err := d.prepare(s.Seed); err != nil {
		return nil, fmt.Errorf("chaos: schedule %s: prepare: %w", s, err)
	}
	nvm.ArmCrash(s.Forward)
	crashed, ferr := catchCrash(d.forward)
	nvm.ArmCrash(-1)
	if ferr != nil {
		return nil, fmt.Errorf("chaos: schedule %s: forward workload: %w", s, ferr)
	}
	if !crashed {
		return nil, fmt.Errorf("chaos: schedule %s: forward budget %d outlasted the workload; probe ForwardEvents for the bound", s, s.Forward)
	}

	rng := rand.New(rand.NewSource(s.Seed))
	for _, r := range s.Recovery {
		if err := d.reopen(s.Mode, rng); err != nil {
			return nil, fmt.Errorf("chaos: schedule %s: reopen: %w", s, err)
		}
		var st persist.RecoveryStats
		var rerr error
		nvm.ArmRecoveryCrash(r)
		crashed, _ := catchCrash(func() error { st, rerr = d.recover(); return nil })
		nvm.ArmCrash(-1)
		at := Attempt{Index: nvm.RecoveryPasses() - 1, Budget: r, Crashed: crashed}
		if !crashed {
			at.Audit = st.Audit
			if rerr != nil {
				at.Err = rerr.Error()
				if !c.recoverErr {
					return nil, fmt.Errorf("chaos: schedule %s: recovery pass %d (budget %d): %w", s, at.Index, r, rerr)
				}
			} else if c.recoverErr {
				return nil, fmt.Errorf("chaos: schedule %s: runtime %s must refuse recovery, pass %d succeeded", s, s.Runtime, at.Index)
			}
		}
		res.Attempts = append(res.Attempts, at)
		if !crashed {
			// The pass completed: deeper nesting levels have no pass to
			// crash. The budgets were probed against a live pass, so
			// this only happens when recovery legitimately got shorter
			// (e.g. an earlier pass already finished the work).
			break
		}
	}

	// Final clean pass.
	if err := d.reopen(s.Mode, rng); err != nil {
		return nil, fmt.Errorf("chaos: schedule %s: final reopen: %w", s, err)
	}
	st, rerr := d.recover()
	at := Attempt{Index: nvm.RecoveryPasses() - 1, Budget: -1}
	if rerr != nil {
		at.Err = rerr.Error()
		if !c.recoverErr {
			return nil, fmt.Errorf("chaos: schedule %s: final recovery: %w", s, rerr)
		}
	} else {
		at.Audit = st.Audit
		if c.recoverErr {
			return nil, fmt.Errorf("chaos: schedule %s: runtime %s must refuse recovery, final pass succeeded", s, s.Runtime)
		}
	}
	res.Attempts = append(res.Attempts, at)

	if err := d.locksFree(); err != nil {
		return nil, fmt.Errorf("chaos: schedule %s: lock table not free after recovery: %w", s, err)
	}
	if err := d.invariants(); err != nil {
		return nil, fmt.Errorf("chaos: schedule %s: invariant violated: %w", s, err)
	}
	final, err := d.observe()
	if err != nil {
		return nil, fmt.Errorf("chaos: schedule %s: observe: %w", s, err)
	}
	res.Final = final
	if err := compareObservations(oracle, final); err != nil {
		return nil, fmt.Errorf("chaos: schedule %s: diverged from the clean-recovery reference: %w", s, err)
	}
	if c.exactPA {
		if err := compareObservations(oraclePA, final); err != nil {
			return nil, fmt.Errorf("chaos: schedule %s: diverged from the CrashPersistAll oracle: %w", s, err)
		}
	} else if err := boundObservations(oraclePA, final); err != nil {
		return nil, fmt.Errorf("chaos: schedule %s: outside the CrashPersistAll oracle's bound: %w", s, err)
	}
	return res, nil
}

func runOracle(s Schedule, c caps, mode nvm.CrashMode) (map[string]uint64, error) {
	d, _, err := newDriver(s)
	if err != nil {
		return nil, err
	}
	defer nvm.ArmCrash(-1)
	if err := d.prepare(s.Seed); err != nil {
		return nil, fmt.Errorf("chaos: schedule %s: oracle prepare: %w", s, err)
	}
	nvm.ArmCrash(s.Forward)
	crashed, ferr := catchCrash(d.forward)
	nvm.ArmCrash(-1)
	if ferr != nil {
		return nil, fmt.Errorf("chaos: schedule %s: oracle workload: %w", s, ferr)
	}
	if !crashed {
		return nil, fmt.Errorf("chaos: schedule %s: forward budget %d outlasted the workload; probe ForwardEvents for the bound", s, s.Forward)
	}
	var rng *rand.Rand
	if mode == nvm.CrashRandom {
		rng = rand.New(rand.NewSource(s.Seed))
	}
	if err := d.reopen(mode, rng); err != nil {
		return nil, fmt.Errorf("chaos: schedule %s: oracle reopen: %w", s, err)
	}
	if _, err := d.recover(); err != nil && !c.recoverErr {
		return nil, fmt.Errorf("chaos: schedule %s: oracle recovery: %w", s, err)
	}
	if err := d.invariants(); err != nil {
		return nil, fmt.Errorf("chaos: schedule %s: oracle invariant violated: %w", s, err)
	}
	return d.observe()
}

func compareObservations(oracle, final map[string]uint64) error {
	for k, want := range oracle {
		got, ok := final[k]
		if !ok {
			return fmt.Errorf("observable %s missing (oracle has %d)", k, want)
		}
		if got != want {
			return fmt.Errorf("observable %s = %d, want %d", k, got, want)
		}
	}
	for k, got := range final {
		if _, ok := oracle[k]; !ok {
			return fmt.Errorf("spurious observable %s = %d (absent from oracle)", k, got)
		}
	}
	return nil
}

// boundObservations is the weakened persist-all check for the UNDO
// baselines: the workload is single-threaded, so at most the one
// in-flight FASE can resolve differently under different adversaries —
// exactly one observable may trail the persist-all oracle, by exactly
// one step. Anything beyond that is lost committed work (or resurrected
// rolled-back work, which exceeding the oracle would reveal).
func boundObservations(pa, final map[string]uint64) error {
	deficits := 0
	for k, want := range pa {
		got, ok := final[k]
		if !ok {
			return fmt.Errorf("observable %s missing (persist-all oracle has %d)", k, want)
		}
		switch {
		case got == want:
		case got+1 == want:
			deficits++
		default:
			return fmt.Errorf("observable %s = %d, persist-all oracle has %d", k, got, want)
		}
	}
	for k, got := range final {
		if _, ok := pa[k]; !ok {
			return fmt.Errorf("spurious observable %s = %d (absent from persist-all oracle)", k, got)
		}
	}
	if deficits > 1 {
		return fmt.Errorf("%d observables trail the persist-all oracle; only the single in-flight FASE may", deficits)
	}
	return nil
}

func modeNames(ms []nvm.CrashMode) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = ModeName(m)
	}
	return strings.Join(parts, "|")
}

// probeBudget is an effectively infinite event budget used to count
// events: arm it, run, and the events consumed are probeBudget minus the
// remaining budget.
const probeBudget = int64(1) << 40

// ForwardEvents counts the injectable device events the schedule's
// forward workload executes to completion — the exclusive upper bound K
// for Schedule.Forward (every budget in 1..K-1 crashes mid-workload; at
// K or beyond the workload finishes first).
func ForwardEvents(s Schedule) (int64, error) {
	d, _, err := newDriver(s)
	if err != nil {
		return 0, err
	}
	defer nvm.ArmCrash(-1)
	if err := d.prepare(s.Seed); err != nil {
		return 0, err
	}
	nvm.ArmCrash(probeBudget)
	crashed, ferr := catchCrash(d.forward)
	n := probeBudget - nvm.CrashBudgetRemaining()
	nvm.ArmCrash(-1)
	if ferr != nil {
		return 0, ferr
	}
	if crashed {
		return 0, fmt.Errorf("chaos: probe budget fired after %d events", n)
	}
	return n, nil
}

// RecoveryEvents counts the injectable events of the schedule's first
// recovery pass (forward crash at s.Forward, settle under s.Mode, one
// recovery) — the bound M for the first Recovery budget. Returns 0 for
// runtimes whose Recover refuses or performs no device events.
func RecoveryEvents(s Schedule) (int64, error) {
	d, c, err := newDriver(s)
	if err != nil {
		return 0, err
	}
	defer nvm.ArmCrash(-1)
	if err := d.prepare(s.Seed); err != nil {
		return 0, err
	}
	nvm.ArmCrash(s.Forward)
	crashed, ferr := catchCrash(d.forward)
	nvm.ArmCrash(-1)
	if ferr != nil {
		return 0, ferr
	}
	if !crashed {
		return 0, fmt.Errorf("chaos: schedule %s: forward budget %d outlasted the workload", s, s.Forward)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	if err := d.reopen(s.Mode, rng); err != nil {
		return 0, err
	}
	nvm.ArmRecoveryCrash(probeBudget)
	var rerr error
	crashed, _ = catchCrash(func() error { _, rerr = d.recover(); return nil })
	n := probeBudget - nvm.CrashBudgetRemaining()
	nvm.ArmCrash(-1)
	if crashed {
		return 0, fmt.Errorf("chaos: probe budget fired after %d recovery events", n)
	}
	if rerr != nil && !c.recoverErr {
		return 0, rerr
	}
	return n, nil
}
