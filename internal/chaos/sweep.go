package chaos

import (
	"fmt"
	"math/rand"

	"github.com/ido-nvm/ido/internal/nvm"
)

// SweepOptions bounds a systematic sweep for one runtime. Zero values
// pick the defaults noted on each field.
type SweepOptions struct {
	Runtime  string
	Workload string          // default: DefaultWorkload(Runtime)
	Modes    []nvm.CrashMode // default: every adversary the runtime supports
	Seed     int64           // settle seed for every schedule (default 1)

	// ForwardPoints and RecoveryPoints cap how many crash points are
	// sampled per axis; the sweep strides evenly across the probed event
	// counts, always including the first point. Defaults 12 and 8.
	ForwardPoints  int
	RecoveryPoints int

	// DeepSamples is how many depth-2 and depth-3 schedules to sample
	// per mode (budgets drawn from a rand.Rand seeded with Seed, so the
	// sample set is itself replayable). Default 4 of each.
	DeepSamples int

	// Progress, when non-nil, is called after each converged schedule.
	Progress func(*Result)
}

// SweepStats summarizes a converged sweep.
type SweepStats struct {
	Schedules int
	// Depth[d] counts schedules whose injected recovery crashes actually
	// fired d levels deep (Depth[0]: forward crash only).
	Depth [MaxDepth + 1]int
}

// DefaultWorkload maps a runtime name to its sweep workload.
func DefaultWorkload(runtime string) string {
	if len(runtime) > 3 && runtime[:3] == "vm-" {
		return "mapput"
	}
	return "counter"
}

// Sweep enumerates forward crash points × recovery crash points ×
// sampled nesting depths for one runtime, running every schedule
// through Run. The first non-converging schedule aborts the sweep; the
// returned error carries the replayable schedule string.
func Sweep(o SweepOptions) (SweepStats, error) {
	var st SweepStats
	if o.Workload == "" {
		o.Workload = DefaultWorkload(o.Runtime)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ForwardPoints <= 0 {
		o.ForwardPoints = 12
	}
	if o.RecoveryPoints <= 0 {
		o.RecoveryPoints = 8
	}
	if o.DeepSamples < 0 {
		o.DeepSamples = 0
	} else if o.DeepSamples == 0 {
		o.DeepSamples = 4
	}
	base := Schedule{Runtime: o.Runtime, Workload: o.Workload, Mode: nvm.CrashPersistAll, Seed: o.Seed, Forward: 1}
	_, c, err := newDriver(base)
	if err != nil {
		return st, err
	}
	modes := o.Modes
	if modes == nil {
		modes = c.modes
	}

	// K: total forward events. Budgets 1..K-1 crash mid-workload.
	k, err := ForwardEvents(base)
	if err != nil {
		return st, fmt.Errorf("chaos: sweep %s/%s: probing forward events: %w", o.Runtime, o.Workload, err)
	}
	if k < 2 {
		return st, fmt.Errorf("chaos: sweep %s/%s: workload has only %d injectable events", o.Runtime, o.Workload, k)
	}

	run := func(s Schedule) error {
		res, err := Run(s)
		if err != nil {
			return err
		}
		st.Schedules++
		depth := 0
		for _, a := range res.Attempts {
			if a.Crashed {
				depth++
			}
		}
		st.Depth[depth]++
		if o.Progress != nil {
			o.Progress(res)
		}
		return nil
	}

	for _, mode := range modes {
		if !c.supports(mode) {
			return st, fmt.Errorf("chaos: sweep %s: adversary %s not supported (supported: %s)", o.Runtime, ModeName(mode), modeNames(c.modes))
		}
		fstride := (k - 1 + int64(o.ForwardPoints) - 1) / int64(o.ForwardPoints)
		if fstride < 1 {
			fstride = 1
		}
		for f := int64(1); f < k; f += fstride {
			s := Schedule{Runtime: o.Runtime, Workload: o.Workload, Mode: mode, Seed: o.Seed, Forward: f}
			// M: events in the first recovery pass at this crash point.
			// Budgets 0..M-1 crash the pass.
			m, err := RecoveryEvents(s)
			if err != nil {
				return st, fmt.Errorf("chaos: sweep %s: probing recovery events at forward %d: %w", o.Runtime, f, err)
			}
			if m == 0 {
				// Nothing to crash inside recovery (refusing or no-op
				// runtimes): still verify the plain crash/recover cycle.
				if err := run(s); err != nil {
					return st, err
				}
				continue
			}
			rstride := (m + int64(o.RecoveryPoints) - 1) / int64(o.RecoveryPoints)
			if rstride < 1 {
				rstride = 1
			}
			for r := int64(0); r < m; r += rstride {
				s.Recovery = []int64{r}
				if err := run(s); err != nil {
					return st, err
				}
			}
		}

		// Sampled deeper nesting: crash the recovery of the recovery
		// (and once more at depth 3). Budgets past the end of a shorter
		// nested pass simply let that pass complete, so sampling from
		// the first pass's bound stays valid.
		rng := rand.New(rand.NewSource(o.Seed))
		for depth := 2; depth <= MaxDepth; depth++ {
			for i := 0; i < o.DeepSamples; i++ {
				f := 1 + rng.Int63n(k-1)
				s := Schedule{Runtime: o.Runtime, Workload: o.Workload, Mode: mode, Seed: o.Seed, Forward: f}
				m, err := RecoveryEvents(s)
				if err != nil {
					return st, fmt.Errorf("chaos: sweep %s: probing recovery events at forward %d: %w", o.Runtime, f, err)
				}
				if m == 0 {
					continue
				}
				for l := 0; l < depth; l++ {
					s.Recovery = append(s.Recovery, rng.Int63n(m))
				}
				if err := run(s); err != nil {
					return st, err
				}
			}
		}
	}
	return st, nil
}
