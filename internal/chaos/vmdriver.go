package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/irprog"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/vm"
)

const (
	mapBuckets = 4
	mapOps     = 6
	// walkBound caps structure traversals so a corrupted next pointer
	// surfaces as an invariant error instead of an infinite loop.
	walkBound = 1 << 12
)

var (
	progOnce sync.Once
	progVal  *compile.Compiled
	progErr  error
)

func compiledProg() (*compile.Compiled, error) {
	progOnce.Do(func() { progVal, progErr = irprog.Compile(compile.Config{}) })
	return progVal, progErr
}

// vmDriver runs the compiled IR kernels on the VM in one of its three
// modes, over the map_put workload.
type vmDriver struct {
	s    Schedule
	mode vm.Mode
	gc   bool // run the device with the forced group-commit combiner

	reg *region.Region
	lm  *locks.Manager
	m   *vm.Machine
	th  *vm.Thread
	mp  uint64
}

func newVMDriver(s Schedule) (driver, caps, error) {
	var mode vm.Mode
	c := caps{modes: allModes, exactPA: true}
	base, gc := strings.CutSuffix(s.Runtime, gcSuffix)
	if gc && base != "vm-ido" {
		return nil, caps{}, fmt.Errorf("chaos: runtime %q has no group-commit variant", base)
	}
	switch base {
	case "vm-ido":
		mode = vm.ModeIDO
	case "vm-justdo":
		// JUSTDO assumes nonvolatile caches (§I), but the VM's
		// implementation fences each ⟨addr, val⟩ record durable before
		// the single pc store that publishes it, so replay is exact
		// under the volatile-cache adversaries too.
		mode = vm.ModeJUSTDO
	case "vm-origin":
		mode = vm.ModeOrigin
		c.modes = []nvm.CrashMode{nvm.CrashPersistAll}
	default:
		return nil, caps{}, fmt.Errorf("chaos: unknown runtime %q (want one of %v)", s.Runtime, Runtimes())
	}
	if s.Workload != "mapput" {
		return nil, caps{}, fmt.Errorf("chaos: runtime %s: unknown workload %q (VM runtimes run \"mapput\")", s.Runtime, s.Workload)
	}
	return &vmDriver{s: s, mode: mode, gc: gc}, c, nil
}

func (d *vmDriver) prepare(seed int64) error {
	prog, err := compiledProg()
	if err != nil {
		return err
	}
	d.reg = region.Create(1<<22, chaosNVMConfig(d.gc))
	d.lm = locks.NewManager(d.reg)
	d.m = vm.New(d.reg, d.lm, prog, d.mode)
	mp, err := irprog.NewMap(d.reg, d.lm, mapBuckets)
	if err != nil {
		return err
	}
	d.mp = mp
	d.reg.SetRoot(rootChaosMap, mp)
	th, err := d.m.NewThread()
	if err != nil {
		return err
	}
	d.th = th
	return nil
}

// forward performs mapOps puts with a deterministic key sequence (the
// schedule replays bit-for-bit; no clock or rng involved).
func (d *vmDriver) forward() error {
	for i := 0; i < mapOps; i++ {
		k := uint64((i*5)%7 + 1)
		if _, err := d.th.Call("map_put", d.mp, k, k*100+uint64(i)); err != nil {
			return err
		}
	}
	return nil
}

func (d *vmDriver) reopen(mode nvm.CrashMode, rng *rand.Rand) error {
	prog, err := compiledProg()
	if err != nil {
		return err
	}
	reg2, err := d.reg.Crash(mode, rng)
	if err != nil {
		return err
	}
	d.reg = reg2
	d.lm = locks.NewManager(reg2)
	d.m = vm.New(reg2, d.lm, prog, d.mode)
	d.mp = reg2.Root(rootChaosMap)
	d.th = nil
	return nil
}

func (d *vmDriver) recover() (persist.RecoveryStats, error) {
	return d.m.Recover()
}

// walk visits every node of every bucket chain: fn(bucket, key, val,
// lockHolder) for the nodes, and the bucket-header lock holders via
// fn(bucket, 0, 0, holder) with node=false.
func (d *vmDriver) walk(fn func(bucket int, node bool, key, val, holder uint64) error) error {
	dev := d.reg.Dev
	n := int(dev.Load64(d.mp))
	if n != mapBuckets {
		return fmt.Errorf("map header: %d buckets, want %d", n, mapBuckets)
	}
	for b := 0; b < n; b++ {
		hdr := dev.Load64(d.mp + 8 + uint64(b)*8)
		if hdr == 0 {
			return fmt.Errorf("bucket %d: nil list header", b)
		}
		if err := fn(b, false, 0, 0, dev.Load64(hdr+24)); err != nil {
			return err
		}
		steps := 0
		for node := dev.Load64(hdr + 16); node != 0; node = dev.Load64(node + 16) {
			if steps++; steps > walkBound {
				return fmt.Errorf("bucket %d: chain exceeds %d nodes (cycle?)", b, walkBound)
			}
			if err := fn(b, true, dev.Load64(node), dev.Load64(node+8), dev.Load64(node+24)); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *vmDriver) observe() (map[string]uint64, error) {
	out := map[string]uint64{}
	err := d.walk(func(b int, node bool, key, val, holder uint64) error {
		if node {
			out[fmt.Sprintf("k%d", key)] = val
		}
		return nil
	})
	return out, err
}

// invariants checks the structural contract map_put maintains: every
// chain strictly ascending (so no duplicate keys) and every key hashed
// to its own bucket.
func (d *vmDriver) invariants() error {
	last := make([]uint64, mapBuckets)
	seen := make([]bool, mapBuckets)
	return d.walk(func(b int, node bool, key, val, holder uint64) error {
		if !node {
			return nil
		}
		if int(key%mapBuckets) != b {
			return fmt.Errorf("key %d in bucket %d, want bucket %d", key, b, key%mapBuckets)
		}
		if seen[b] && key <= last[b] {
			return fmt.Errorf("bucket %d: keys out of order (%d after %d)", b, key, last[b])
		}
		seen[b], last[b] = true, key
		return nil
	})
}

func (d *vmDriver) locksFree() error {
	return d.walk(func(b int, node bool, key, val, holder uint64) error {
		if holder == 0 {
			return fmt.Errorf("bucket %d: zero lock holder", b)
		}
		l := d.lm.ByHolder(holder)
		if !l.TryAcquire() {
			return fmt.Errorf("bucket %d: lock (holder %#x) still held", b, holder)
		}
		l.Release()
		return nil
	})
}
