package chaos

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/nvm"
)

// Crash injection is process-global, so no test here may call
// t.Parallel.

func pick(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

func TestScheduleStringRoundTrip(t *testing.T) {
	for _, s := range []Schedule{
		{Runtime: "ido", Workload: "counter", Mode: nvm.CrashRandom, Seed: 7, Forward: 12, Recovery: []int64{3, 5}},
		{Runtime: "vm-ido", Workload: "mapput", Mode: nvm.CrashDiscard, Seed: 1, Forward: 99},
		{Runtime: "nvml", Workload: "counter", Mode: nvm.CrashPersistAll, Seed: -3, Forward: 1, Recovery: []int64{0, 0, 0}},
	} {
		got, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip: %s -> %+v, want %+v", s, got, s)
		}
	}
}

func TestParseScheduleRejects(t *testing.T) {
	for _, bad := range []string{
		"ido:counter:random:7:12",           // missing field
		"ido:counter:sideways:7:12:-",       // unknown mode
		"ido:counter:random:7:12:1,2,3,4",   // nesting too deep
		"warp9:counter:random:7:12:-",       // unknown runtime
		"ido:towersofhanoi:random:7:12:-",   // unknown workload
		"ido:counter:random:seven:12:-",     // bad seed
		"vm-ido:counter:persist-all:1:5:-",  // native workload on the VM
		"origin:mapput:persist-all:1:5:-",   // VM workload on a native runtime
		"atlas:cachemix:random:1:5:-",       // cachemix needs FASE-exact recovery
		"origin:cachemix:persist-all:1:5:-", // ditto
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", bad)
		}
	}
}

// TestSweepAllRuntimes is the tentpole matrix: for every runtime,
// forward crash points × first-pass recovery crash points under every
// supported adversary, plus sampled depth-2/3 nesting, each schedule
// verified against the CrashPersistAll oracle.
func TestSweepAllRuntimes(t *testing.T) {
	for _, rt := range Runtimes() {
		t.Run(rt, func(t *testing.T) {
			st, err := Sweep(SweepOptions{
				Runtime:        rt,
				ForwardPoints:  pick(10, 4),
				RecoveryPoints: pick(6, 3),
				DeepSamples:    pick(2, 1),
			})
			if err != nil {
				t.Fatalf("sweep diverged (the error carries the replayable tuple; rerun with idorecover -chaos -replay '<tuple>'): %v", err)
			}
			if st.Schedules == 0 {
				t.Fatal("sweep ran no schedules")
			}
			switch rt {
			case "justdo", "origin", "vm-origin":
				// Recovery refuses or is a no-op: no pass to crash.
				if st.Depth[1]+st.Depth[2]+st.Depth[3] != 0 {
					t.Fatalf("recovery-less runtime reported nested crashes: %v", st.Depth)
				}
			default:
				if st.Depth[1] == 0 {
					t.Fatalf("no schedule crashed inside recovery: %v", st.Depth)
				}
			}
			t.Logf("%d schedules converged; nesting-depth histogram %v", st.Schedules, st.Depth)
		})
	}
}

// TestNestedDepth3Converges pins the deepest contract directly: crash
// the first recovery at its first event, the recovery of that recovery
// at its first event, and once more at depth 3, then prove the final
// clean pass converges. Budget 0 always fires (every pass reads the
// log list), so the depth is deterministic, and the per-nesting-level
// attempt indices must come out 0,1,2,3.
func TestNestedDepth3Converges(t *testing.T) {
	for _, rt := range []string{"ido", "atlas", "mnemosyne", "nvthreads", "nvml", "vm-ido", "vm-justdo"} {
		t.Run(rt, func(t *testing.T) {
			base := Schedule{Runtime: rt, Workload: DefaultWorkload(rt), Mode: nvm.CrashRandom, Seed: 42, Forward: 1}
			k, err := ForwardEvents(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range []int64{1, k / 2, k - 1} {
				if f < 1 {
					continue
				}
				s := base
				s.Forward = f
				s.Recovery = []int64{0, 0, 0}
				res, err := Run(s)
				if err != nil {
					t.Fatalf("replay with: idorecover -chaos -replay '%s': %v", s, err)
				}
				if len(res.Attempts) != 4 {
					t.Fatalf("%s: %d attempts, want 4 (3 crashed + final)", s, len(res.Attempts))
				}
				for i, a := range res.Attempts {
					if a.Index != i {
						t.Fatalf("%s: attempt %d has recovery-pass index %d", s, i, a.Index)
					}
					if crashed := i < 3; a.Crashed != crashed {
						t.Fatalf("%s: attempt %d crashed=%v, want %v", s, i, a.Crashed, crashed)
					}
				}
				last := res.Attempts[3]
				if last.Audit == nil {
					t.Fatalf("%s: final pass has no audit", s)
				}
				if last.Audit.Attempt != last.Index {
					t.Fatalf("%s: final audit attempt %d, want %d", s, last.Audit.Attempt, last.Index)
				}
			}
		})
	}
}

// TestNestedCrashLeaksNoGoroutines covers the drained-gate fix in both
// parallel-restore runtimes (core and the VM) at the harness level:
// repeated nested recovery crashes must not strand restore goroutines.
func TestNestedCrashLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, rt := range []string{"ido", "vm-ido"} {
		s := Schedule{Runtime: rt, Workload: DefaultWorkload(rt), Mode: nvm.CrashDiscard, Seed: 3, Forward: 5, Recovery: []int64{0, 0, 0}}
		for i := 0; i < pick(8, 3); i++ {
			s.Seed = int64(i + 1)
			if _, err := Run(s); err != nil {
				t.Fatalf("replay with: idorecover -chaos -replay '%s': %v", s, err)
			}
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines above baseline %d after nested-crash schedules", runtime.NumGoroutine()-base, base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJUSTDOParamRegisterReplay pins two bugs this harness found in the
// VM's JUSTDO mode. First, Thread.Call used to write parameter registers
// (and the stack pointer) straight into the volatile register file,
// bypassing the JUSTDO register-slot discipline, so a replay resuming
// inside map_put restored the key parameter as the slot's stale value —
// typically 0 — and linked a key-0 node into whatever bucket the
// pre-crash key had hashed to. Second, the single ⟨pc, addr, val⟩ log
// record was rewritten in place with three unordered stores, so a crash
// mid-rewrite (e.g. at vm-justdo:mapput:persist-all:1:208) left a mixed
// record — new pc and addr with the previous store's value — and replay
// wrote that stale value into the named register slot, turning a node's
// lock-holder field into the node's own address. Both windows open at
// crash points all through a put's FASE, so the test strides the whole
// forward range; pre-fix it fails the bucket/chain invariants or the
// lock-table check.
func TestJUSTDOParamRegisterReplay(t *testing.T) {
	base := Schedule{Runtime: "vm-justdo", Workload: "mapput", Mode: nvm.CrashPersistAll, Seed: 1}
	k, err := ForwardEvents(base)
	if err != nil {
		t.Fatal(err)
	}
	// Stride the whole forward range: the stale-parameter window opens
	// at every crash point inside a put's FASE.
	stride := k / int64(pick(40, 10))
	if stride < 1 {
		stride = 1
	}
	for f := int64(1); f < k; f += stride {
		s := base
		s.Forward = f
		if _, err := Run(s); err != nil {
			t.Fatalf("replay with: idorecover -chaos -replay '%s': %v", s, err)
		}
	}
}

// TestCacheMixSweep drives the delete-heavy memcache workload (the
// Fig. 5c satellite) through the harness: a bounded sweep on iDO — the
// delete FASEs' unchain / LRU-unlink / count regions crash-tested under
// every adversary, including nested recovery crashes — plus one
// deterministic depth-1 schedule per other supported runtime.
func TestCacheMixSweep(t *testing.T) {
	st, err := Sweep(SweepOptions{
		Runtime:        "ido",
		Workload:       "cachemix",
		ForwardPoints:  pick(8, 3),
		RecoveryPoints: pick(4, 2),
		DeepSamples:    1,
	})
	if err != nil {
		t.Fatalf("sweep diverged (rerun with idorecover -chaos -replay '<tuple>'): %v", err)
	}
	if st.Schedules == 0 || st.Depth[1] == 0 {
		t.Fatalf("sweep too shallow: %d schedules, depth histogram %v", st.Schedules, st.Depth)
	}
	t.Logf("ido/cachemix: %d schedules converged; depth histogram %v", st.Schedules, st.Depth)

	for _, rt := range []string{"mnemosyne", "nvthreads"} {
		base := Schedule{Runtime: rt, Workload: "cachemix", Mode: nvm.CrashRandom, Seed: 7, Forward: 1}
		k, err := ForwardEvents(base)
		if err != nil {
			t.Fatal(err)
		}
		s := base
		s.Forward = k / 2
		s.Recovery = []int64{0}
		if _, err := Run(s); err != nil {
			t.Fatalf("replay with: idorecover -chaos -replay '%s': %v", s, err)
		}
	}
}

// TestPCPublishSingleEvent pins a bug the sweep found in the iDO
// runtimes (native and VM) and in the VM's JUSTDO mode: recovery_pc was
// published with a cached store followed by a CLWB, leaving a one-event
// window where the crash adversary decided whether the pc reached the
// persistence domain. At a FASE's entry boundary that choice was "FASE
// never started" (discard) versus "FASE resumes and completes"
// (persist-all) — e.g. vm-ido:mapput:discard:1:409:0 against the old
// code — violating the adversary-independence the persist-all oracle
// checks exactly. The pc is now published with a single non-temporal
// store. The window was one event wide, so this walks EVERY forward
// event under the discard adversary (the sweep's coarser stride can
// miss it).
func TestPCPublishSingleEvent(t *testing.T) {
	for _, base := range []Schedule{
		{Runtime: "ido", Workload: "counter", Mode: nvm.CrashDiscard, Seed: 1},
		{Runtime: "vm-ido", Workload: "mapput", Mode: nvm.CrashDiscard, Seed: 1},
		{Runtime: "vm-justdo", Workload: "mapput", Mode: nvm.CrashDiscard, Seed: 1},
	} {
		k, err := ForwardEvents(base)
		if err != nil {
			t.Fatal(err)
		}
		for f, stride := int64(1), int64(pick(1, 7)); f < k; f += stride {
			s := base
			s.Forward = f
			if _, err := Run(s); err != nil {
				t.Fatalf("replay with: idorecover -chaos -replay '%s': %v", s, err)
			}
		}
	}
}

// TestNVThreadsCommitSelfClobber pins a bug this workload found in the
// NVThreads baseline: its per-thread page log used to share page 0 with
// the workload data, so a multi-page commit that dirtied page 0 would,
// while applying that page home, overwrite its own published commit
// record with the mid-FASE COW snapshot (logState=0). A crash between
// the two page applies — e.g. nvthreads:cachemix:random:7:654:0 against
// the old layout — then skipped the replay and lost the unapplied half
// of a committed delete FASE (the victim's LRU neighbor kept a dangling
// back link). The log now gets pages of its own; this strides crash
// points across the whole forward range to keep the window covered.
func TestNVThreadsCommitSelfClobber(t *testing.T) {
	base := Schedule{Runtime: "nvthreads", Workload: "cachemix", Mode: nvm.CrashPersistAll, Seed: 7}
	k, err := ForwardEvents(base)
	if err != nil {
		t.Fatal(err)
	}
	stride := k / int64(pick(40, 10))
	if stride < 1 {
		stride = 1
	}
	for f := int64(1); f < k; f += stride {
		s := base
		s.Forward = f
		if _, err := Run(s); err != nil {
			t.Fatalf("replay with: idorecover -chaos -replay '%s': %v", s, err)
		}
	}
}

// TestGroupCommitDenseDiscard pins the combiner's batch-atomicity
// argument densely: with group commit forced, walk EVERY forward event
// of the counter workload under the discard adversary (the strongest —
// anything not covered by a completed merged fence is lost). A crash at
// any event — including the combiner's publish tick, mid-batch
// write-backs, and the merged fence itself — must resolve every FASE in
// the batch to either durably-committed or recoverable-via-its-own-log;
// a divergence from the persist-all oracle or a counter outside the
// bounded deficit fails the Run. The VM variant strides (its forward
// range is ~7x longer); -short strides both.
func TestGroupCommitDenseDiscard(t *testing.T) {
	for _, tc := range []struct {
		base   Schedule
		stride int64
	}{
		{Schedule{Runtime: "ido-gc", Workload: "counter", Mode: nvm.CrashDiscard, Seed: 1}, int64(pick(1, 11))},
		{Schedule{Runtime: "vm-ido-gc", Workload: "mapput", Mode: nvm.CrashDiscard, Seed: 1}, int64(pick(3, 29))},
	} {
		t.Run(tc.base.Runtime, func(t *testing.T) {
			k, err := ForwardEvents(tc.base)
			if err != nil {
				t.Fatal(err)
			}
			for f := int64(1); f < k; f += tc.stride {
				s := tc.base
				s.Forward = f
				if _, err := Run(s); err != nil {
					t.Fatalf("replay with: idorecover -chaos -replay '%s': %v", s, err)
				}
			}
			t.Logf("covered forward 1..%d stride %d", k-1, tc.stride)
		})
	}
}

// TestGroupCommitMatchesDirectObservables: for every crash point, the
// gc runtime and its direct twin must reach the same recovered
// observables under the exact persist-all oracle — group commit changes
// fence scheduling, never outcomes. Forward budgets count different
// event streams (gc adds a publish tick per commit and merges fences),
// so the comparison anchors on the final converged state of full
// sweeps, which the Sweep calls inside TestSweepAllRuntimes already
// verify per-schedule; here we pin the cheap end-to-end identity: a
// crash-free run's observables are identical.
func TestGroupCommitMatchesDirectObservables(t *testing.T) {
	for _, pair := range [][2]string{
		{"ido", "ido-gc"},
		{"mnemosyne", "mnemosyne-gc"},
		{"atlas", "atlas-gc"},
		{"vm-ido", "vm-ido-gc"},
	} {
		direct := Schedule{Runtime: pair[0], Workload: DefaultWorkload(pair[0]), Mode: nvm.CrashPersistAll, Seed: 1}
		gc := Schedule{Runtime: pair[1], Workload: DefaultWorkload(pair[1]), Mode: nvm.CrashPersistAll, Seed: 1}
		kd, err := ForwardEvents(direct)
		if err != nil {
			t.Fatal(err)
		}
		kg, err := ForwardEvents(gc)
		if err != nil {
			t.Fatal(err)
		}
		// Crash at the workload's final device event: every FASE's
		// effects and log state are settled by persist-all, so both
		// variants must recover to the identical fully-completed state.
		direct.Forward, gc.Forward = kd-1, kg-1
		rd, err := Run(direct)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := Run(gc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rd.Final, rg.Final) {
			t.Fatalf("%s vs %s: completed-run observables differ: %v vs %v",
				pair[0], pair[1], rd.Final, rg.Final)
		}
	}
}

// TestRunRejectsUnsupportedMode: runtimes without recovery are only
// comparable to the oracle under persist-all.
func TestRunRejectsUnsupportedMode(t *testing.T) {
	for _, rt := range []string{"origin", "vm-origin"} {
		s := Schedule{Runtime: rt, Workload: DefaultWorkload(rt), Mode: nvm.CrashDiscard, Seed: 1, Forward: 3}
		if _, err := Run(s); err == nil {
			t.Errorf("%s: Run accepted the discard adversary", rt)
		}
	}
}

// TestReplayIsDeterministic: the String form replays to the identical
// observation, which is what makes a printed failing tuple actionable.
func TestReplayIsDeterministic(t *testing.T) {
	s := Schedule{Runtime: "ido", Workload: "counter", Mode: nvm.CrashRandom, Seed: 99, Forward: 17, Recovery: []int64{4, 2}}
	first, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Final, second.Final) {
		t.Fatalf("replay diverged: %v vs %v", first.Final, second.Final)
	}
	if len(first.Attempts) != len(second.Attempts) {
		t.Fatalf("replay attempt counts differ: %d vs %d", len(first.Attempts), len(second.Attempts))
	}
	for i := range first.Attempts {
		if first.Attempts[i].Crashed != second.Attempts[i].Crashed {
			t.Fatalf("replay attempt %d crash outcome differs", i)
		}
	}
}
