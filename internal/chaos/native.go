package chaos

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/ido-nvm/ido/internal/baselines/atlas"
	"github.com/ido-nvm/ido/internal/baselines/justdo"
	"github.com/ido-nvm/ido/internal/baselines/mnemosyne"
	"github.com/ido-nvm/ido/internal/baselines/nvml"
	"github.com/ido-nvm/ido/internal/baselines/nvthreads"
	"github.com/ido-nvm/ido/internal/baselines/origin"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Root slots the chaos workloads own (20..25; the runtimes use 0 and
// 16..19, examples and tests use 1..6).
const (
	rootChaosCtr0  = 20
	rootChaosCtr1  = 21
	rootChaosLock0 = 22
	rootChaosLock1 = 23
	rootChaosMap   = 24
	rootChaosCache = 25
)

// Resume-region IDs for the counter workload's boundaries.
const (
	ridChaosA0 = 0x160
	ridChaosB0 = 0x161
	ridChaosA1 = 0x162
	ridChaosB1 = 0x163
)

const (
	counterInit  = 5 // initial value of both counters
	counterFASEs = 8 // total increments, alternating between the two counters
)

// nativeDriver runs a persist.Runtime implementation directly (no VM)
// over one of the native workloads.
type nativeDriver struct {
	s  Schedule
	mk func() persist.Runtime
	gc bool // run the device with the forced group-commit combiner

	reg  *region.Region
	lm   *locks.Manager
	rt   persist.Runtime
	th   persist.Thread
	lock [2]*locks.Lock
	ctr  [2]uint64
}

func newNativeDriver(s Schedule) (driver, caps, error) {
	// A "-gc" suffix selects the same runtime over a group-commit
	// device. Only the runtimes whose commit epilogues issue batchable
	// persists (PersistBatch/FenceBatch) have a gc variant.
	base, gc := strings.CutSuffix(s.Runtime, gcSuffix)
	if gc {
		switch base {
		case "ido", "atlas", "mnemosyne":
		default:
			return nil, caps{}, fmt.Errorf("chaos: runtime %q has no group-commit variant", base)
		}
	}
	mk, c, err := nativeRuntime(base)
	if err != nil {
		return nil, caps{}, err
	}
	switch s.Workload {
	case "counter":
		return &nativeDriver{s: s, mk: mk, gc: gc}, c, nil
	case "cachemix":
		// The delete-heavy memcache script needs recovery that completes
		// (or wholly discards) the in-flight FASE: a torn chain unlink is
		// a structural invariant violation, not a bounded counter deficit,
		// so the no-recovery and cached-truncation runtimes are out.
		switch base {
		case "ido", "mnemosyne", "nvthreads":
		default:
			return nil, caps{}, fmt.Errorf("chaos: runtime %s: workload \"cachemix\" needs FASE-exact recovery (supported on ido|mnemosyne|nvthreads)", s.Runtime)
		}
		return &cacheDriver{s: s, mk: mk, gc: gc}, c, nil
	}
	return nil, caps{}, fmt.Errorf("chaos: runtime %s: unknown workload %q (native runtimes run \"counter\" or \"cachemix\")", s.Runtime, s.Workload)
}

// nativeRuntime maps a native runtime name to its constructor and the
// capabilities it promises under this harness.
func nativeRuntime(name string) (func() persist.Runtime, caps, error) {
	var mk func() persist.Runtime
	c := caps{modes: allModes, exactPA: true}
	switch name {
	case "ido":
		mk = func() persist.Runtime { return core.New(core.DefaultConfig()) }
	case "atlas":
		// UNDO with cached truncation: the data-fence..truncation-fence
		// window commits under persist-all and rolls back under discard,
		// so the persist-all oracle only bounds the outcome.
		mk = func() persist.Runtime { return atlas.New(atlas.Config{Retain: true}) }
		c.exactPA = false
	case "mnemosyne":
		mk = func() persist.Runtime { return mnemosyne.New() }
	case "nvthreads":
		mk = func() persist.Runtime { return nvthreads.New() }
	case "nvml":
		// Same cached-truncation commit window as atlas.
		mk = func() persist.Runtime { return nvml.New() }
		c.exactPA = false
	case "justdo":
		// Native JUSTDO stores are fenced durable in place as they
		// execute, so the observables are adversary-independent, but
		// resumption needs the VM replay: Recover must refuse.
		mk = func() persist.Runtime { return justdo.New() }
		c.recoverErr = true
	case "origin":
		// No logging and no recovery: exact only under persist-all,
		// where the settle itself is the oracle's settle.
		mk = func() persist.Runtime { return origin.New() }
		c.modes = []nvm.CrashMode{nvm.CrashPersistAll}
	default:
		return nil, caps{}, fmt.Errorf("chaos: unknown runtime %q (want one of %v)", name, Runtimes())
	}
	return mk, c, nil
}

func (d *nativeDriver) prepare(seed int64) error {
	d.reg = region.Create(1<<20, chaosNVMConfig(d.gc))
	d.lm = locks.NewManager(d.reg)
	d.rt = d.mk()
	if err := d.rt.Attach(d.reg, d.lm); err != nil {
		return err
	}
	dev := d.reg.Dev
	for i := 0; i < 2; i++ {
		lock, err := d.lm.Create()
		if err != nil {
			return err
		}
		ctr, err := d.reg.Alloc.Alloc(8)
		if err != nil {
			return err
		}
		dev.Store64(ctr, counterInit)
		dev.CLWB(ctr)
		dev.Fence()
		d.lock[i] = lock
		d.ctr[i] = ctr
	}
	d.reg.SetRoot(rootChaosCtr0, d.ctr[0])
	d.reg.SetRoot(rootChaosCtr1, d.ctr[1])
	d.reg.SetRoot(rootChaosLock0, d.lock[0].Holder())
	d.reg.SetRoot(rootChaosLock1, d.lock[1].Holder())
	th, err := d.rt.NewThread()
	if err != nil {
		return err
	}
	d.th = th
	return nil
}

// forward alternates increment FASEs over the two counters. The crash
// budget is armed by the harness after prepare, so event counting starts
// at the first Lock of the first FASE.
func (d *nativeDriver) forward() error {
	for i := 0; i < counterFASEs; i++ {
		d.increment(i % 2)
	}
	return nil
}

func (d *nativeDriver) increment(i int) {
	ridA, ridB := uint64(ridChaosA0), uint64(ridChaosB0)
	if i == 1 {
		ridA, ridB = ridChaosA1, ridChaosB1
	}
	th := d.th
	th.Lock(d.lock[i])
	th.Boundary(ridA)
	v := th.Load64(d.ctr[i])
	th.Boundary(ridB, persist.RV(0, v))
	th.Store64(d.ctr[i], v+1)
	th.Unlock(d.lock[i])
}

func (d *nativeDriver) reopen(mode nvm.CrashMode, rng *rand.Rand) error {
	reg2, err := d.reg.Crash(mode, rng)
	if err != nil {
		return err
	}
	d.reg = reg2
	d.lm = locks.NewManager(reg2)
	d.rt = d.mk()
	if err := d.rt.Attach(reg2, d.lm); err != nil {
		return err
	}
	d.ctr = [2]uint64{reg2.Root(rootChaosCtr0), reg2.Root(rootChaosCtr1)}
	d.lock = [2]*locks.Lock{
		d.lm.ByHolder(reg2.Root(rootChaosLock0)),
		d.lm.ByHolder(reg2.Root(rootChaosLock1)),
	}
	d.th = nil // recovery and observation never execute workload FASEs
	return nil
}

// registry rebuilds the resume registry against the current incarnation
// of the locks and counters (they change at every reopen).
func (d *nativeDriver) registry() *persist.ResumeRegistry {
	rr := persist.NewResumeRegistry()
	for i := 0; i < 2; i++ {
		i := i
		ridA, ridB := uint64(ridChaosA0), uint64(ridChaosB0)
		if i == 1 {
			ridA, ridB = ridChaosA1, ridChaosB1
		}
		rr.Register(ridA, func(th persist.Thread, rf []uint64) {
			v := th.Load64(d.ctr[i])
			th.Boundary(ridB, persist.RV(0, v))
			th.Store64(d.ctr[i], v+1)
			th.Unlock(d.lock[i])
		})
		rr.Register(ridB, func(th persist.Thread, rf []uint64) {
			th.Store64(d.ctr[i], rf[0]+1)
			th.Unlock(d.lock[i])
		})
	}
	return rr
}

func (d *nativeDriver) recover() (persist.RecoveryStats, error) {
	return d.rt.Recover(d.registry())
}

func (d *nativeDriver) observe() (map[string]uint64, error) {
	return map[string]uint64{
		"ctr0": d.reg.Dev.Load64(d.ctr[0]),
		"ctr1": d.reg.Dev.Load64(d.ctr[1]),
	}, nil
}

func (d *nativeDriver) invariants() error {
	for i := 0; i < 2; i++ {
		v := d.reg.Dev.Load64(d.ctr[i])
		if v < counterInit || v > counterInit+counterFASEs/2 {
			return fmt.Errorf("counter %d = %d, outside [%d, %d]", i, v, counterInit, counterInit+counterFASEs/2)
		}
	}
	return nil
}

func (d *nativeDriver) locksFree() error {
	for i := 0; i < 2; i++ {
		if !d.lock[i].TryAcquire() {
			return fmt.Errorf("workload lock %d (holder %#x) still held", i, d.lock[i].Holder())
		}
		d.lock[i].Release()
	}
	return nil
}
