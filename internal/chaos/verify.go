package chaos

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
)

// Exported post-recovery image checkers. The cachemix driver grew these
// as unexported methods; the networked server's crash-mid-serve smoke
// (internal/server) needs the same structural verification over every
// shard of a recovered store, so they live here as standalone functions
// over the raw device image. They deliberately bypass FASE accessors —
// they audit what recovery actually left in the persistence domain, the
// way the recovery passes themselves read it.

// WalkCacheChains visits every item of every bucket chain of a
// kv/memcache table image rooted at tbl.
func WalkCacheChains(dev *nvm.Device, tbl uint64, fn func(item uint64) error) error {
	n := dev.Load64(tbl + 8)
	if n == 0 || n > walkBound || n&(n-1) != 0 {
		return fmt.Errorf("cache header: implausible bucket count %d", n)
	}
	for b := uint64(0); b < n; b++ {
		steps := 0
		for item := dev.Load64(tbl + cTArray + b*8); item != 0; item = dev.Load64(item + cIHNext) {
			if steps++; steps > walkBound {
				return fmt.Errorf("bucket %d: chain exceeds %d items (cycle?)", b, walkBound)
			}
			if err := fn(item); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckCacheImage verifies the structural contract every completed
// recovery must restore on a kv/memcache table: no duplicate keys, an
// item count matching the chains, and an LRU list that is a consistent
// double-linking of exactly the chained items.
func CheckCacheImage(dev *nvm.Device, tbl uint64) error {
	chained := map[uint64]bool{}
	// Cache keys are two words; dedupe on the full (k0,k1) identity the
	// store itself uses, or distinct keys sharing k0 would be reported
	// as duplicates.
	seen := map[[2]uint64]bool{}
	err := WalkCacheChains(dev, tbl, func(item uint64) error {
		k := [2]uint64{dev.Load64(item + cIK0), dev.Load64(item + cIK1)}
		if seen[k] {
			return fmt.Errorf("duplicate key (%d,%d)", k[0], k[1])
		}
		seen[k] = true
		chained[item] = true
		return nil
	})
	if err != nil {
		return err
	}
	if cnt := dev.Load64(tbl + cTCount); cnt != uint64(len(chained)) {
		return fmt.Errorf("count = %d, chains hold %d items", cnt, len(chained))
	}
	// LRU: head-to-tail walk must visit each chained item exactly once,
	// with consistent back links, ending at the recorded tail.
	var last uint64
	visited := 0
	for item := dev.Load64(tbl + cTLRUHead); item != 0; item = dev.Load64(item + cILNext) {
		if visited++; visited > walkBound {
			return fmt.Errorf("LRU list exceeds %d items (cycle?)", walkBound)
		}
		if !chained[item] {
			return fmt.Errorf("LRU item %#x not on any chain", item)
		}
		if p := dev.Load64(item + cILPrev); p != last {
			return fmt.Errorf("LRU item %#x: prev = %#x, want %#x", item, p, last)
		}
		last = item
	}
	if tail := dev.Load64(tbl + cTLRUTail); tail != last {
		return fmt.Errorf("LRU tail = %#x, walk ended at %#x", tail, last)
	}
	if visited != len(chained) {
		return fmt.Errorf("LRU lists %d items, chains hold %d", visited, len(chained))
	}
	return nil
}

// CheckCacheLockFree verifies that the cache lock at the head of a
// kv/memcache table is free after recovery (recovery must release every
// FASE lock it reacquired).
func CheckCacheLockFree(dev *nvm.Device, lm *locks.Manager, tbl uint64) error {
	holder := dev.Load64(tbl)
	if holder == 0 {
		return fmt.Errorf("cache lock holder is zero")
	}
	l := lm.ByHolder(holder)
	if !l.TryAcquire() {
		return fmt.Errorf("cache lock (holder %#x) still held", holder)
	}
	l.Release()
	return nil
}

// Redis table/entry field offsets, mirrored from the kv/redis layout for
// the raw-device walk (same auditing stance as the cache offsets above).
const (
	rTBuckets = 0
	rTCount   = 8
	rTArray   = 64
	rEKey     = 0
	rENext    = 16
)

// CheckRedisImage verifies a kv/redis dictionary image rooted at tbl: a
// plausible header, acyclic chains, no duplicate keys, and an entry
// count matching the chains.
func CheckRedisImage(dev *nvm.Device, tbl uint64) error {
	n := dev.Load64(tbl + rTBuckets)
	if n == 0 || n > walkBound || n&(n-1) != 0 {
		return fmt.Errorf("redis header: implausible bucket count %d", n)
	}
	seen := map[uint64]bool{}
	entries := 0
	for b := uint64(0); b < n; b++ {
		steps := 0
		for e := dev.Load64(tbl + rTArray + b*8); e != 0; e = dev.Load64(e + rENext) {
			if steps++; steps > walkBound {
				return fmt.Errorf("bucket %d: chain exceeds %d entries (cycle?)", b, walkBound)
			}
			k := dev.Load64(e + rEKey)
			if seen[k] {
				return fmt.Errorf("duplicate key %d", k)
			}
			seen[k] = true
			entries++
		}
	}
	if cnt := dev.Load64(tbl + rTCount); cnt != uint64(entries) {
		return fmt.Errorf("count = %d, chains hold %d entries", cnt, entries)
	}
	return nil
}
