// Package compile implements the three-phase iDO compiler of Fig. 4 on
// the mini-IR:
//
//  1. FASE inference (package fase) finds lock-delineated failure-atomic
//     sections and the mandatory boundary points around lock operations;
//  2. idempotent region formation (package idem, using the basicAA-style
//     analysis in package alias) cuts each FASE into regions with no
//     memory antidependence on their inputs;
//  3. input preservation and output persistence: each boundary is
//     materialized as an OpBoundary instruction carrying the region's ID
//     and the registers whose persistent log slots must be refreshed —
//     the live-ins of the region that the predecessor regions (re)defined,
//     which is exactly OutputSet_{pred} ∩ LiveIn_{region} (Eq. 1), or the
//     full live-in set at a FASE entry where nothing has been logged yet.
//
// The instrumented function is executable by internal/vm under any of its
// runtime modes; the region map gives recovery its resume targets.
package compile

import (
	"fmt"
	"sort"

	"github.com/ido-nvm/ido/internal/alias"
	"github.com/ido-nvm/ido/internal/dataflow"
	"github.com/ido-nvm/ido/internal/fase"
	"github.com/ido-nvm/ido/internal/idem"
	"github.com/ido-nvm/ido/internal/ir"
)

// Config tunes compilation.
type Config struct {
	// Idem passes options to region formation (ablation knobs).
	Idem idem.Config
}

// RegionInfo describes one compiled idempotent region.
type RegionInfo struct {
	ID    uint64
	Entry ir.Loc   // boundary instruction location in the compiled func
	Log   []ir.Reg // registers the boundary logs
}

// CompiledFunc is the instrumentation result for one function.
type CompiledFunc struct {
	F       *ir.Func // the instrumented function
	Orig    *ir.Func
	Regions []RegionInfo
	// ByID maps region IDs to indices in Regions.
	ByID map[uint64]int
	// HasFASEs reports whether any instrumentation was necessary.
	HasFASEs bool
	// Index is the program-wide function number (sorted name order) and
	// Code the pre-decoded threaded-code form, both set by Program. A
	// CompiledFunc built directly through Func has Index -1 and no Code;
	// the VM decodes it on load.
	Index int
	Code  *DecodedFunc
}

// Func compiles a single function; idBase makes its region IDs globally
// unique (region r gets ID idBase+r+1; IDs must stay below 2^48).
func Func(f *ir.Func, idBase uint64, cfg Config) (*CompiledFunc, error) {
	if err := ir.Verify(f); err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpBoundary {
				return nil, fmt.Errorf("compile: %s already instrumented (boundary at %s.%d)", f.Name, b.Name, i)
			}
		}
	}
	fi, err := fase.Infer(f)
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	if !fi.HasFASEs() {
		return &CompiledFunc{F: f, Orig: f, ByID: map[uint64]int{}, Index: -1}, nil
	}
	aa := alias.Analyze(f)
	res, err := idem.Form(f, aa, fi, cfg.Idem)
	if err != nil {
		return nil, err
	}
	if err := idem.Check(f, aa, fi, res); err != nil {
		return nil, err
	}
	lv := dataflow.ComputeLiveness(f)

	// Per-region defined registers.
	defs := make([]dataflow.RegSet, res.NumRegions())
	for i := range defs {
		defs[i] = dataflow.NewRegSet(f.NumRegs)
	}
	for bi, b := range f.Blocks {
		for i := range b.Instrs {
			if r := res.RegionOf[bi][i]; r >= 0 && b.Instrs[i].Dest != ir.NoReg {
				defs[r].Add(b.Instrs[i].Dest)
			}
		}
	}

	// Predecessor regions of each cut, and whether the cut is a FASE
	// entry (reached from non-region code such as the lock acquire).
	predRegions := make([]map[int]bool, res.NumRegions())
	faseEntry := make([]bool, res.NumRegions())
	for i := range predRegions {
		predRegions[i] = map[int]bool{}
	}
	notePred := func(region int, predRegion int) {
		if predRegion < 0 {
			faseEntry[region] = true
		} else if predRegion != region {
			predRegions[region][predRegion] = true
		}
	}
	for _, c := range res.Cuts {
		region := res.CutRegion[c]
		if c.Index > 0 {
			notePred(region, res.RegionOf[c.Block][c.Index-1])
			continue
		}
		for _, p := range f.Blocks[c.Block].Preds {
			pb := f.Blocks[p]
			if len(pb.Instrs) == 0 {
				notePred(region, -1)
				continue
			}
			notePred(region, res.RegionOf[p][len(pb.Instrs)-1])
		}
	}
	// A region whose predecessors include the region itself (loop header
	// cut) must also count its own defs as needing re-logging.
	for _, c := range res.Cuts {
		region := res.CutRegion[c]
		if c.Index == 0 {
			for _, p := range f.Blocks[c.Block].Preds {
				pb := f.Blocks[p]
				if len(pb.Instrs) > 0 && res.RegionOf[p][len(pb.Instrs)-1] == region {
					predRegions[region][region] = true
				}
			}
		}
	}

	// Log set per region.
	logSets := make([][]ir.Reg, res.NumRegions())
	for _, c := range res.Cuts {
		region := res.CutRegion[c]
		liveIn := lv.LiveBefore(c.Block, c.Index)
		var set []ir.Reg
		if faseEntry[region] {
			set = liveIn.Regs()
		} else {
			combined := dataflow.NewRegSet(f.NumRegs)
			for pr := range predRegions[region] {
				combined.Union(defs[pr])
			}
			for _, r := range liveIn.Regs() {
				if combined.Has(r) {
					set = append(set, r)
				}
			}
		}
		logSets[region] = set
	}

	// Materialize: insert OpBoundary before each cut instruction.
	out := &ir.Func{
		Name:      f.Name,
		NumParams: f.NumParams,
		NumRegs:   f.NumRegs,
		RegNames:  f.RegNames,
	}
	cf := &CompiledFunc{F: out, Orig: f, ByID: map[uint64]int{}, HasFASEs: true, Index: -1}
	cutsInBlock := map[int][]ir.Loc{}
	for _, c := range res.Cuts {
		cutsInBlock[c.Block] = append(cutsInBlock[c.Block], c)
	}
	for bi, b := range f.Blocks {
		nb := &ir.Block{Index: bi, Name: b.Name}
		cuts := cutsInBlock[bi]
		sort.Slice(cuts, func(i, j int) bool { return cuts[i].Less(cuts[j]) })
		ci := 0
		for i := range b.Instrs {
			if ci < len(cuts) && cuts[ci].Index == i {
				region := res.CutRegion[cuts[ci]]
				id := idBase + uint64(region) + 1
				args := make([]ir.Value, 0, len(logSets[region]))
				for _, r := range logSets[region] {
					args = append(args, ir.R(r))
				}
				entry := ir.Loc{Block: bi, Index: len(nb.Instrs)}
				nb.Instrs = append(nb.Instrs, ir.Instr{
					Op: ir.OpBoundary, Dest: ir.NoReg, Imm: id, Args: args,
				})
				cf.ByID[id] = len(cf.Regions)
				cf.Regions = append(cf.Regions, RegionInfo{ID: id, Entry: entry, Log: logSets[region]})
				ci++
			}
			nb.Instrs = append(nb.Instrs, b.Instrs[i])
		}
		out.Blocks = append(out.Blocks, nb)
	}
	out.BuildCFG()
	if err := ir.Verify(out); err != nil {
		return nil, fmt.Errorf("compile: instrumented %s fails verification: %w", f.Name, err)
	}
	if id := idBase + uint64(res.NumRegions()); id >= 1<<48 {
		return nil, fmt.Errorf("compile: region IDs exceed 48 bits")
	}
	return cf, nil
}

// Compiled is a whole-program compilation result.
type Compiled struct {
	Funcs map[string]*CompiledFunc
	// Resolve maps a region ID to its function and boundary location.
	Resolve map[uint64]Target
}

// Target locates a region entry.
type Target struct {
	Func  string
	Entry ir.Loc
}

// Program compiles every function in prog, assigning non-overlapping
// region ID ranges (4096 per function, in sorted name order).
func Program(prog *ir.Program, cfg Config) (*Compiled, error) {
	names := make([]string, 0, len(prog.Funcs))
	for n := range prog.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := &Compiled{Funcs: map[string]*CompiledFunc{}, Resolve: map[uint64]Target{}}
	for i, n := range names {
		base := uint64(i+1) << 12
		cf, err := Func(prog.Funcs[n], base, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", n, err)
		}
		if len(cf.Regions) > 4095 {
			return nil, fmt.Errorf("%s: %d regions exceed the per-function ID budget", n, len(cf.Regions))
		}
		cf.Index = i
		if cf.Code, err = DecodeFunc(cf.F, i); err != nil {
			return nil, fmt.Errorf("%s: %w", n, err)
		}
		out.Funcs[n] = cf
		for _, r := range cf.Regions {
			out.Resolve[r.ID] = Target{Func: n, Entry: r.Entry}
		}
	}
	return out, nil
}
