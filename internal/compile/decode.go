// Pre-decoding: the final compile pass flattens an instrumented ir.Func
// into one linear instruction array that internal/vm executes as
// threaded code. The tree-walking costs the decoder removes:
//
//   - block/index bookkeeping: jump targets become flat-stream offsets
//     and fall-through edges vanish (blocks are laid out in order, so a
//     block without a terminator simply continues into the next);
//   - operand classification: each operand is pre-tagged immediate or
//     register, so the interpreter reads a field instead of calling a
//     closure and branching on ir.Value.IsImm;
//   - recovery-pc packing: every instruction carries its pre-packed
//     JUSTDO recovery pc (PackPC), hoisting the per-definition encode
//     out of the execution loop.
//
// Decoding is one-to-one: instruction k of the stream is instruction k
// of the blocks in layout order, so the VM's crash-budget tick count,
// device event counts, and recovery pcs are provably identical to the
// tree-walking interpreter's — the stream changes how instructions are
// fetched, never which instructions execute.
package compile

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/ir"
)

// DOp is the dispatch index of a decoded instruction. The values are
// dense so the interpreter's switch compiles to a jump table.
type DOp uint8

// Decoded opcodes. DConst..DGe mirror ir.OpConst..ir.OpGe in order.
const (
	DConst DOp = iota
	DMov
	DAdd
	DSub
	DMul
	DDiv
	DMod
	DAnd
	DOr
	DXor
	DShl
	DShr
	DEq
	DNe
	DLt
	DLe
	DGt
	DGe
	DLoad
	DStore
	DBr
	DJmp
	DRet
	DAlloc
	DSAlloc
	DNewLock
	DLock
	DUnlock
	DBeginDur
	DEndDur
	DBoundary
	DPrint
)

// DInstr is one pre-decoded instruction. A and B hold either an
// immediate value (AImm/BImm set) or a register index; T0/T1 are
// resolved flat-stream jump targets; PC is the instruction's pre-packed
// JUSTDO recovery pc.
type DInstr struct {
	Op   DOp
	AImm bool
	BImm bool
	Dest int32 // destination register, -1 when none

	T0, T1 int32 // flat jump targets (br: then/else; jmp: T0)

	A, B uint64 // operands: immediate value or register index
	Imm  uint64 // const value, load/store offset, boundary region ID
	PC   uint64 // PackPC(fn, block, idx) of this instruction

	Regs []ir.Reg   // boundary: registers to (re)log
	Vals []ir.Value // ret: result operands
}

// DecodedFunc is the flat executable form of one function.
type DecodedFunc struct {
	Name      string
	FnIdx     int // the program-wide function index packed into PCs
	NumParams int
	NumRegs   int
	Code      []DInstr

	blockStart []int32
}

// FlatIndex maps an (block, index) instruction location to its offset in
// Code. Decoding emits exactly one DInstr per ir instruction with blocks
// laid out in order, so the mapping is blockStart[block]+index; an index
// one past a fall-through block's last instruction lands on the next
// block's first instruction, which is where execution continues.
func (d *DecodedFunc) FlatIndex(block, idx int) int {
	return int(d.blockStart[block]) + idx
}

// JUSTDO recovery-pc packing: fn(22 bits) | block(20) | idx(20), with
// bit 62 marking validity so location (0,0,0) is distinguishable from
// the idle pc 0. The packed word is what the VM's JUSTDO mode persists
// before every logged mutation.
const (
	pcValid    = 1 << 62
	pcFnBits   = 22
	pcLocBits  = 20
	maxPCFn    = 1<<pcFnBits - 1
	maxPCBlock = 1<<pcLocBits - 1
	maxPCIdx   = 1<<pcLocBits - 1
)

// PackPC packs an instruction location into a JUSTDO recovery pc word.
func PackPC(fn, block, idx int) uint64 {
	return pcValid | uint64(fn)<<40 | uint64(block)<<20 | uint64(idx)
}

// UnpackPC inverts PackPC.
func UnpackPC(pc uint64) (fn, block, idx int) {
	return int(pc >> 40 & maxPCFn), int(pc >> 20 & maxPCBlock), int(pc & maxPCIdx)
}

var dopOf = map[ir.Op]DOp{
	ir.OpLoad: DLoad, ir.OpStore: DStore, ir.OpBr: DBr, ir.OpJmp: DJmp,
	ir.OpRet: DRet, ir.OpAlloc: DAlloc, ir.OpSAlloc: DSAlloc,
	ir.OpNewLock: DNewLock, ir.OpLock: DLock, ir.OpUnlock: DUnlock,
	ir.OpBeginDur: DBeginDur, ir.OpEndDur: DEndDur,
	ir.OpBoundary: DBoundary, ir.OpPrint: DPrint,
}

// DecodeFunc flattens f into threaded code, resolving jump targets and
// pre-classifying operands. fnIdx is the program-wide function number
// packed into recovery pcs (the VM assigns the same numbers to the same
// sorted function-name order).
func DecodeFunc(f *ir.Func, fnIdx int) (*DecodedFunc, error) {
	if fnIdx < 0 || fnIdx > maxPCFn {
		return nil, fmt.Errorf("decode: %s: function index %d exceeds %d bits", f.Name, fnIdx, pcFnBits)
	}
	if len(f.Blocks) > maxPCBlock {
		return nil, fmt.Errorf("decode: %s: %d blocks exceed the pc field", f.Name, len(f.Blocks))
	}
	d := &DecodedFunc{
		Name: f.Name, FnIdx: fnIdx,
		NumParams: f.NumParams, NumRegs: f.NumRegs,
		blockStart: make([]int32, len(f.Blocks)),
	}
	n := 0
	for bi, b := range f.Blocks {
		d.blockStart[bi] = int32(n)
		n += len(b.Instrs)
		if len(b.Instrs) > maxPCIdx {
			return nil, fmt.Errorf("decode: %s: block %s exceeds the pc index field", f.Name, b.Name)
		}
		if len(b.Instrs) == 0 || !b.Instrs[len(b.Instrs)-1].Op.IsTerminator() {
			// Fall-through block: layout order must carry execution into
			// the next block, since no instruction is emitted for the edge.
			if len(b.Succs) != 1 || b.Succs[0] != bi+1 {
				return nil, fmt.Errorf("decode: %s: block %s falls through to a non-adjacent block", f.Name, b.Name)
			}
		}
	}
	d.Code = make([]DInstr, 0, n)
	for bi, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			di := DInstr{Dest: int32(in.Dest), Imm: in.Imm, PC: PackPC(fnIdx, bi, i), T0: -1, T1: -1}
			setA := func(v ir.Value) {
				if v.IsImm {
					di.AImm, di.A = true, v.Imm
				} else {
					di.A = uint64(v.Reg)
				}
			}
			setB := func(v ir.Value) {
				if v.IsImm {
					di.BImm, di.B = true, v.Imm
				} else {
					di.B = uint64(v.Reg)
				}
			}
			switch {
			case in.Op == ir.OpConst:
				di.Op = DConst
			case in.Op == ir.OpMov:
				di.Op = DMov
				setA(in.Args[0])
			case in.Op.IsArith(): // binary: OpAdd..OpGe
				di.Op = DConst + DOp(in.Op-ir.OpConst) // same relative order
				setA(in.Args[0])
				setB(in.Args[1])
			default:
				op, ok := dopOf[in.Op]
				if !ok {
					return nil, fmt.Errorf("decode: %s: unhandled op %v at %s.%d", f.Name, in.Op, b.Name, i)
				}
				di.Op = op
				switch op {
				case DLoad:
					if in.Args[0].IsImm {
						return nil, fmt.Errorf("decode: %s: load base must be a register at %s.%d", f.Name, b.Name, i)
					}
					di.A = uint64(in.Args[0].Reg)
				case DStore:
					if in.Args[0].IsImm {
						return nil, fmt.Errorf("decode: %s: store base must be a register at %s.%d", f.Name, b.Name, i)
					}
					di.A = uint64(in.Args[0].Reg)
					setB(in.Args[1])
				case DAlloc, DSAlloc, DLock, DUnlock, DPrint:
					setA(in.Args[0])
				case DBr:
					setA(in.Args[0])
					di.T0 = d.blockStart[in.Targets[0]]
					di.T1 = d.blockStart[in.Targets[1]]
				case DJmp:
					di.T0 = d.blockStart[in.Targets[0]]
				case DRet:
					di.Vals = append([]ir.Value(nil), in.Args...)
				case DBoundary:
					regs := make([]ir.Reg, len(in.Args))
					for j, a := range in.Args {
						if a.IsImm {
							return nil, fmt.Errorf("decode: %s: boundary logs an immediate at %s.%d", f.Name, b.Name, i)
						}
						regs[j] = a.Reg
					}
					di.Regs = regs
				}
			}
			d.Code = append(d.Code, di)
		}
	}
	return d, nil
}
