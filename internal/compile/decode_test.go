package compile

import (
	"testing"

	"github.com/ido-nvm/ido/internal/ir"
)

// A function exercising every decoded shape: immediates and registers in
// both operand positions, load/store offsets, branches across blocks, a
// fall-through edge, and a multi-value ret.
const decodeSrc = `
func shapes 2 {
entry:
  a = const 7
  b = add a 3
  c = add 3 a
  v = load r0 8
  store r0 16 v
  store r0 24 5
  cond = lt b r1
  br cond then else
then:
  d = mov b
  jmp join
else:
  d = mov 0
  jmp join
join:
  e = add d 1
fall:
  ret e d
}
`

func TestDecodeFunc(t *testing.T) {
	f, err := ir.ParseFunc(decodeSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeFunc(f, 3)
	if err != nil {
		t.Fatal(err)
	}

	// One DInstr per ir instruction, blocks in order, no fall-through op.
	want := 0
	for _, b := range f.Blocks {
		want += len(b.Instrs)
	}
	if len(d.Code) != want {
		t.Fatalf("decoded %d instructions, want %d", len(d.Code), want)
	}
	flat := 0
	for bi, b := range f.Blocks {
		for i := range b.Instrs {
			if got := d.FlatIndex(bi, i); got != flat {
				t.Fatalf("FlatIndex(%d,%d) = %d, want %d", bi, i, got, flat)
			}
			if d.Code[flat].PC != PackPC(3, bi, i) {
				t.Fatalf("instr %d: PC %#x, want PackPC(3,%d,%d)", flat, d.Code[flat].PC, bi, i)
			}
			flat++
		}
	}

	// Operand classification: add a 3 has reg A / imm B; add 3 a the
	// reverse; store r0 24 5 has an immediate value operand.
	code := d.Code
	if in := code[1]; in.Op != DAdd || in.AImm || !in.BImm || in.B != 3 {
		t.Fatalf("add a 3 decoded %+v", in)
	}
	if in := code[2]; in.Op != DAdd || !in.AImm || in.A != 3 || in.BImm {
		t.Fatalf("add 3 a decoded %+v", in)
	}
	if in := code[3]; in.Op != DLoad || in.A != 0 || in.Imm != 8 {
		t.Fatalf("load decoded %+v", in)
	}
	if in := code[5]; in.Op != DStore || !in.BImm || in.B != 5 || in.Imm != 24 {
		t.Fatalf("store imm decoded %+v", in)
	}

	// Branch targets resolve to the flat start of the target block.
	br := code[7]
	if br.Op != DBr || int(br.T0) != d.FlatIndex(1, 0) || int(br.T1) != d.FlatIndex(2, 0) {
		t.Fatalf("br decoded %+v", br)
	}
	// join falls through into fall: the decoded stream is simply adjacent.
	joinEnd := d.FlatIndex(3, 1)
	if ret := code[joinEnd]; ret.Op != DRet || len(ret.Vals) != 2 {
		t.Fatalf("instr after fall-through = %+v, want 2-value ret", code[joinEnd])
	}
}

func TestDecodePCRoundTrip(t *testing.T) {
	for _, c := range [][3]int{{0, 0, 0}, {3, 7, 11}, {maxPCFn, maxPCBlock, maxPCIdx}} {
		pc := PackPC(c[0], c[1], c[2])
		if pc&pcValid == 0 {
			t.Fatalf("PackPC%v missing validity bit", c)
		}
		fn, blk, idx := UnpackPC(pc)
		if fn != c[0] || blk != c[1] || idx != c[2] {
			t.Fatalf("UnpackPC(PackPC%v) = (%d,%d,%d)", c, fn, blk, idx)
		}
	}
}

func TestDecodeRejectsBadFnIdx(t *testing.T) {
	f, err := ir.ParseFunc("func f 0 {\nentry:\n  ret\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFunc(f, maxPCFn+1); err == nil {
		t.Fatal("DecodeFunc accepted an out-of-range function index")
	}
}

// TestProgramAttachesCode checks Program pre-decodes every function with
// the index the VM will assign (sorted name order).
func TestProgramAttachesCode(t *testing.T) {
	prog, err := ir.Parse(`
func b 0 {
entry:
  ret
}

func a 0 {
entry:
  ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Program(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Funcs["a"].Code == nil || c.Funcs["a"].Index != 0 || c.Funcs["a"].Code.FnIdx != 0 {
		t.Fatalf("a: Index=%d Code=%v", c.Funcs["a"].Index, c.Funcs["a"].Code)
	}
	if c.Funcs["b"].Code == nil || c.Funcs["b"].Index != 1 || c.Funcs["b"].Code.FnIdx != 1 {
		t.Fatalf("b: Index=%d Code=%v", c.Funcs["b"].Index, c.Funcs["b"].Code)
	}
}
