package compile

import (
	"testing"

	"github.com/ido-nvm/ido/internal/fase"
	"github.com/ido-nvm/ido/internal/idem"
	"github.com/ido-nvm/ido/internal/ir"
)

// A stack push: lock, read top, link node, publish, unlock.
const pushSrc = `
func push 2 {
entry:
  lock r0
  top = load r0 8
  node = alloc 16
  store node 0 r1
  store node 8 top
  store r0 8 node
  unlock r0
  ret
}
`

func compileOne(t *testing.T, src string, cfg Config) *CompiledFunc {
	t.Helper()
	f, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := Func(f, 0x1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

func boundaries(cf *CompiledFunc) []ir.Instr {
	var out []ir.Instr
	for _, b := range cf.F.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBoundary {
				out = append(out, in)
			}
		}
	}
	return out
}

func TestPushBoundaries(t *testing.T) {
	cf := compileOne(t, pushSrc, Config{})
	bs := boundaries(cf)
	// One after the lock, one before the unlock, and one cutting the
	// genuine antidependence: `top = load r0 8` is later overwritten by
	// `store r0 8 node`.
	if len(bs) != 3 {
		t.Fatalf("boundaries = %d, want 3:\n%s", len(bs), cf.F)
	}
	// The post-lock boundary must come immediately after the lock.
	entry := cf.F.Entry().Instrs
	if entry[0].Op != ir.OpLock || entry[1].Op != ir.OpBoundary {
		t.Fatalf("prologue:\n%s", cf.F)
	}
	seen := map[uint64]bool{}
	for _, r := range cf.Regions {
		if seen[r.ID] {
			t.Fatalf("duplicate region ID %#x", r.ID)
		}
		seen[r.ID] = true
	}
	for _, r := range cf.Regions {
		if cf.F.Blocks[r.Entry.Block].Instrs[r.Entry.Index].Op != ir.OpBoundary {
			t.Fatalf("region %x entry does not point at a boundary", r.ID)
		}
	}
}

func TestFASEEntryLogsAllLiveIns(t *testing.T) {
	cf := compileOne(t, pushSrc, Config{})
	// The first region's live-ins include r0 (stack) and r1 (value).
	log := cf.Regions[0].Log
	has := map[ir.Reg]bool{}
	for _, r := range log {
		has[r] = true
	}
	if !has[0] || !has[1] {
		t.Fatalf("FASE-entry log set %v misses parameters", log)
	}
}

func TestAntidependenceForcesCut(t *testing.T) {
	// load x, then store to the same location: a textbook antidependence
	// inside one FASE. A boundary must separate them.
	src := `
func inc 1 {
entry:
  lock r0
  v = load r0 0
  w = add v 1
  store r0 0 w
  unlock r0
  ret
}
`
	cf := compileOne(t, src, Config{})
	bs := boundaries(cf)
	if len(bs) != 3 {
		t.Fatalf("boundaries = %d, want 3 (post-lock, antidep, pre-unlock):\n%s", len(bs), cf.F)
	}
	// The antidependence boundary must log v or w (the live value the
	// re-executed store needs).
	mid := bs[1]
	if len(mid.Args) == 0 {
		t.Fatalf("antidep boundary logs nothing:\n%s", cf.F)
	}
}

func TestPureLoopStaysUncut(t *testing.T) {
	// A pure-read traversal loop inside a FASE needs no loop-header cut
	// (re-executing the whole loop is idempotent); the only extra cut is
	// at the store that may alias the loop's loads.
	src := `
func walk 1 {
entry:
  lock r0
  cur = load r0 0
  jmp loop
loop:
  c = ne cur 0
  br c body done
body:
  cur = load cur 8
  jmp loop
done:
  store r0 8 cur
  unlock r0
  ret
}
`
	cf := compileOne(t, src, Config{})
	loopBlock := cf.F.Blocks[1]
	if loopBlock.Instrs[0].Op == ir.OpBoundary {
		t.Fatalf("pure loop got a header boundary:\n%s", cf.F)
	}
	// The store in `done` reads via an unknown pointer chain earlier
	// (load cur 8 may alias r0+8), so a cut must precede it, logging cur.
	done := cf.F.Blocks[3]
	if done.Instrs[0].Op != ir.OpBoundary {
		t.Fatalf("no antidependence cut before the store:\n%s", cf.F)
	}
	found := false
	for _, a := range done.Instrs[0].Args {
		if cf.F.RegNames[a.Reg] == "cur" {
			found = true
		}
	}
	if !found {
		t.Fatalf("antidep boundary does not log cur: %v\n%s", done.Instrs[0].Args, cf.F)
	}
}

func TestLoopCarriedAntidependenceStillCut(t *testing.T) {
	// A loop that loads and then stores the same location across
	// iterations carries an antidependence around the back edge; the
	// violation analysis must cut it even without unconditional
	// loop-header cuts.
	src := `
func bump 1 {
entry:
  lock r0
  i = const 0
  jmp loop
loop:
  v = load r0 0
  w = add v 1
  store r0 0 w
  i = add i 1
  c = lt i 10
  br c loop done
done:
  unlock r0
  ret
}
`
	cf := compileOne(t, src, Config{})
	// Some cut must separate the load from the store within the loop.
	loop := cf.F.Blocks[1]
	sawBoundaryBeforeStore := false
	for _, in := range loop.Instrs {
		if in.Op == ir.OpBoundary {
			sawBoundaryBeforeStore = true
		}
		if in.Op == ir.OpStore {
			break
		}
	}
	if !sawBoundaryBeforeStore {
		t.Fatalf("loop-carried antidependence not cut:\n%s", cf.F)
	}
}

func TestNoFASEsNoInstrumentation(t *testing.T) {
	src := `
func pure 2 {
entry:
  x = add r0 r1
  ret x
}
`
	cf := compileOne(t, src, Config{})
	if cf.HasFASEs || len(boundaries(cf)) != 0 {
		t.Fatal("pure function was instrumented")
	}
}

func TestMaxStoresAblation(t *testing.T) {
	src := `
func multi 1 {
entry:
  lock r0
  store r0 0 1
  store r0 8 2
  store r0 16 3
  store r0 24 4
  unlock r0
  ret
}
`
	normal := compileOne(t, src, Config{})
	perStore := compileOne(t, src, Config{Idem: idem.Config{MaxStoresPerRegion: 1}})
	if len(boundaries(perStore)) <= len(boundaries(normal)) {
		t.Fatalf("per-store ablation did not add cuts: %d vs %d",
			len(boundaries(perStore)), len(boundaries(normal)))
	}
}

func TestAlreadyInstrumentedRejected(t *testing.T) {
	src := `
func f 1 {
entry:
  lock r0
  boundary 0x5
  unlock r0
  ret
}
`
	f, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Func(f, 0, Config{}); err == nil {
		t.Fatal("double instrumentation accepted")
	}
}

func TestHandOverHandCompiles(t *testing.T) {
	src := `
func hoh 2 {
entry:
  lock r0
  x = load r0 0
  lock r1
  unlock r0
  store r1 0 x
  unlock r1
  ret
}
`
	cf := compileOne(t, src, Config{})
	if len(boundaries(cf)) < 3 {
		t.Fatalf("hand-over-hand boundaries = %d:\n%s", len(boundaries(cf)), cf.F)
	}
}

func TestProgramAssignsDisjointIDs(t *testing.T) {
	prog, err := ir.Parse(pushSrc + `
func pop 1 {
entry:
  lock r0
  top = load r0 8
  c = ne top 0
  br c take out
take:
  nxt = load top 8
  store r0 8 nxt
  jmp out
out:
  unlock r0
  ret top
}
`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Program(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for id := range c.Resolve {
		if seen[id] {
			t.Fatalf("duplicate region id %#x", id)
		}
		seen[id] = true
	}
	if len(c.Resolve) < 4 {
		t.Fatalf("too few regions across program: %d", len(c.Resolve))
	}
}

func TestDurableRegionCompiles(t *testing.T) {
	src := `
func dur 1 {
entry:
  begin_durable
  v = load r0 0
  store r0 0 8
  store r0 8 v
  end_durable
  ret
}
`
	cf := compileOne(t, src, Config{})
	bs := boundaries(cf)
	if len(bs) < 2 {
		t.Fatalf("durable boundaries = %d:\n%s", len(bs), cf.F)
	}
}

// TestFASEInferenceDepths sanity-checks the fase package directly.
func TestFASEInferenceDepths(t *testing.T) {
	f, err := ir.ParseFunc(pushSrc)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := fase.Infer(f)
	if err != nil {
		t.Fatal(err)
	}
	if fi.InFASE(ir.Loc{Block: 0, Index: 0}) {
		t.Fatal("lock itself reported in-FASE")
	}
	if !fi.InFASE(ir.Loc{Block: 0, Index: 1}) {
		t.Fatal("post-lock instruction not in FASE")
	}
	if fi.InFASE(ir.Loc{Block: 0, Index: 7}) {
		t.Fatal("post-unlock instruction in FASE")
	}
	if !fi.HasFASEs() {
		t.Fatal("HasFASEs = false")
	}
}
