// Package memcache implements a Memcached-1.2.4-like key-value cache on
// persistent memory, the Fig. 5 application of the iDO paper: a chained
// hash table plus an LRU list, protected by one coarse cache lock (the
// locking structure that made 1.2.4 notorious for scaling to only a few
// threads, §V-A). Keys are 16 bytes (two words), values 8 bytes, matching
// the paper's memaslap configuration.
//
// Every operation is one lock-inferred FASE, annotated with iDO region
// boundaries exactly where the compiler's hitting-set pass would cut
// (§IV-A): after the acquire, and at each memory antidependence —
// publishing a chain head after reading it, publishing the LRU head after
// reading it, bumping counters after reading them. The pure-read chain
// scans carry no cuts at all (a resumed region simply re-runs its scan),
// and no boundary precedes the FASE's final release: the final-unlock
// protocol fences the region's data and clears recovery_pc before the
// mutex is handed over, so resumption only ever re-executes while the
// lock is still privately held.
//
// Like real memcached, every operation also maintains stats counters
// (cmd_get/cmd_set/get_hits) and GET touches the item's access time.
// These read-modify-writes are antidependences, but the hitting-set
// partition folds ALL of them into existing cuts: the counters are read
// in the entry region and written in the already-required exit region, so
// iDO pays zero extra boundaries while per-store loggers pay a persist
// fence for each — a large part of the paper's Fig. 5 gap.
//
// Get does not move items in the LRU list, mirroring memcached's
// ITEM_UPDATE_INTERVAL batching of LRU reordering.
//
// Register-slot plan for cache FASEs:
//
//	r0 = table  r1..r2 = key words  r3 = value  r4 = item
//	r5 = unchain position (address of the pointer to the found item)
//	r6 = bucket head address  r7 = scratch (LRU head / count / cmd_get)
//	r9 = cmd_set or get-hits counter  r10 = get hit flag
package memcache

import (
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Table layout (bytes).
const (
	tLock    = 0  // lock holder
	tBuckets = 8  // bucket count (power of two)
	tLRUHead = 16 // most recently used
	tLRUTail = 24 // least recently used
	tCount   = 32
	tCmdGet  = 40 // stats: GET operations served
	tCmdSet  = 48 // stats: SET operations served
	tHits    = 56 // stats: GET hits
	tArray   = 64 // bucket pointers
)

// Item layout.
const (
	iK0    = 0
	iK1    = 8
	iVal   = 16
	iHNext = 24 // hash-chain link
	iLPrev = 32 // LRU neighbors (toward head)
	iLNext = 40 // (toward tail)
	iTime  = 48 // last-access logical time (memcached's it->time)
	iSize  = 56
)

// Region IDs (0x25 block).
const (
	ridBase     = 0x25 << 16
	ridSetEntry = ridBase + 1  // after lock: bucket, scan, found/miss work
	ridPush2    = ridBase + 3  // publish LRU head + cmd_set, release
	ridSetIns2  = ridBase + 4  // publish the chain head
	ridSetIns3  = ridBase + 5  // bump the count, read the LRU head
	ridGetEntry = ridBase + 7  // after lock: counters, bucket, scan
	ridGetRel   = ridBase + 8  // retire GET stats, touch item, release
	ridDelEntry = ridBase + 9  // after lock: bucket, scan
	ridDelChain = ridBase + 11 // unchain + LRU unlink + read count
	ridDelCnt   = ridBase + 12 // decrement the count, release
	ridEvEntry  = ridBase + 13 // eviction: read the LRU tail, scan
	ridIncrEnt  = ridBase + 14 // incr/decr: after lock, scan, read the value
	ridIncrUpd  = ridBase + 15 // incr/decr: publish the new value, release
	ridTouchEnt = ridBase + 16 // touch batch: after lock, read counters, scan
	ridTouchRel = ridBase + 17 // touch batch: retire counters + iTime, release
)

// Env bundles region and lock-manager access for the cache and its
// resume closures.
type Env struct {
	Reg *region.Region
	LM  *locks.Manager
}

// Cache is the persistent memcached-like store.
type Cache struct {
	env  *Env
	tbl  uint64
	lock *locks.Lock
}

// New creates a cache with nbuckets chains (rounded up to a power of 2).
// Size the table near the expected item count: memcached grows its hash
// power to keep chains around one item.
func New(env *Env, nbuckets int) (*Cache, uint64, error) {
	n := 1
	for n < nbuckets {
		n *= 2
	}
	l, err := env.LM.Create()
	if err != nil {
		return nil, 0, err
	}
	tbl, err := env.Reg.Alloc.Alloc(tArray + n*8)
	if err != nil {
		return nil, 0, err
	}
	dev := env.Reg.Dev
	dev.Store64(tbl+tLock, l.Holder())
	dev.Store64(tbl+tBuckets, uint64(n))
	dev.PersistRange(tbl, uint64(tArray+n*8))
	dev.Fence()
	return &Cache{env: env, tbl: tbl, lock: l}, tbl, nil
}

// Attach reopens a cache at its table address (the recovery path).
func Attach(env *Env, tbl uint64) *Cache {
	return &Cache{env: env, tbl: tbl, lock: env.LM.ByHolder(env.Reg.Dev.Load64(tbl + tLock))}
}

// hash mixes a 16-byte key into a bucket index.
func hash(k0, k1, n uint64) uint64 {
	h := k0*0x9E3779B97F4A7C15 ^ k1
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h & (n - 1)
}

func bucketAddr(t persist.Thread, tbl, k0, k1 uint64) uint64 {
	n := t.Load64(tbl + tBuckets)
	return tbl + tArray + hash(k0, k1, n)*8
}

// Set inserts or updates a key as one FASE under the cache lock.
func (c *Cache) Set(t persist.Thread, k0, k1, v uint64) {
	t.Lock(c.lock)
	t.Boundary(ridSetEntry, append(persist.Outs(t),
		persist.RV(0, c.tbl), persist.RV(1, k0), persist.RV(2, k1), persist.RV(3, v))...)
	setEntry(c.env, t, c.tbl, k0, k1, v)
}

// setEntry is region ridSetEntry: read the cmd_set counter, compute the
// bucket, scan the chain (pure reads: no cut needed), and perform the
// found/miss work up to the next antidependence.
func setEntry(env *Env, t persist.Thread, tbl, k0, k1, v uint64) {
	cs := t.Load64(tbl + tCmdSet) // stats counter, written at FASE exit
	ba := bucketAddr(t, tbl, k0, k1)
	hb := t.Load64(ba) // chain head, observed once
	setScanFrom(env, t, tbl, k0, k1, v, ba, ba, hb, hb, cs)
}

// setScanFrom walks the chain starting at *pp == cur, entirely within
// the caller's region.
func setScanFrom(env *Env, t persist.Thread, tbl, k0, k1, v, pp, ba, hb, cur, cs uint64) {
	for {
		if cur == 0 {
			// Miss: build the item in this region; publishing the chain
			// head is the next region (it antidepends on the scan's
			// bucket-word load).
			item, err := env.Reg.Alloc.Alloc(iSize)
			if err != nil {
				panic(err)
			}
			t.Store64(item+iK0, k0)
			t.Store64(item+iK1, k1)
			t.Store64(item+iVal, v)
			t.Store64(item+iHNext, hb)
			t.Boundary(ridSetIns2, append(persist.Outs(t),
				persist.RV(4, item), persist.RV(6, ba), persist.RV(9, cs))...)
			setInsert2(env, t, tbl, item, ba, cs)
			return
		}
		if t.Load64(cur+iK0) == k0 && t.Load64(cur+iK1) == k1 {
			// Found: overwrite the value, unlink from the LRU, and read
			// the LRU head — publishing it is the next region.
			t.Store64(cur+iVal, v)
			lruUnlinkStores(t, tbl, cur)
			h := t.Load64(tbl + tLRUHead)
			t.Boundary(ridPush2, append(persist.Outs(t),
				persist.RV(4, cur), persist.RV(7, h), persist.RV(9, cs))...)
			lruPush2(env, t, tbl, cur, h, cs)
			return
		}
		pp = cur + iHNext
		cur = t.Load64(pp)
	}
}

// lruUnlinkStores detaches item from the LRU list. It loads only the
// item's own link words (never written here) and, in the single-element
// case, the list head — which it may then overwrite; that re-execution
// short-circuits to the same final state, so the region stays idempotent
// (the conservative compiler would cut here; the effect is identical).
func lruUnlinkStores(t persist.Thread, tbl, item uint64) {
	p := t.Load64(item + iLPrev)
	nx := t.Load64(item + iLNext)
	inList := p != 0 || nx != 0 || t.Load64(tbl+tLRUHead) == item
	if !inList {
		return
	}
	if p == 0 {
		t.Store64(tbl+tLRUHead, nx)
	} else {
		t.Store64(p+iLNext, nx)
	}
	if nx == 0 {
		t.Store64(tbl+tLRUTail, p)
	} else {
		t.Store64(nx+iLPrev, p)
	}
}

// lruPush2 is region ridPush2: wire the item to the front, publish the
// LRU head read by the previous region, retire the cmd_set counter, and
// release. Store-only: trivially idempotent.
func lruPush2(env *Env, t persist.Thread, tbl, item, h, cs uint64) {
	t.Store64(item+iLPrev, 0)
	t.Store64(item+iLNext, h)
	if h != 0 {
		t.Store64(h+iLPrev, item)
	} else {
		t.Store64(tbl+tLRUTail, item)
	}
	t.Store64(tbl+tLRUHead, item)
	t.Store64(tbl+tCmdSet, cs+1)
	release(env, t, tbl)
}

// setInsert2 is region ridSetIns2: publish the chain head and read the
// count (bumping it antidepends, so it is the next region).
func setInsert2(env *Env, t persist.Thread, tbl, item, ba, cs uint64) {
	t.Store64(ba, item)
	cnt := t.Load64(tbl + tCount)
	t.Boundary(ridSetIns3, append(persist.Outs(t),
		persist.RV(7, cnt))...)
	setInsert3(env, t, tbl, item, cnt, cs)
}

// setInsert3 is region ridSetIns3: bump the count and read the LRU head.
func setInsert3(env *Env, t persist.Thread, tbl, item, cnt, cs uint64) {
	t.Store64(tbl+tCount, cnt+1)
	h := t.Load64(tbl + tLRUHead)
	t.Boundary(ridPush2, append(persist.Outs(t),
		persist.RV(7, h))...)
	lruPush2(env, t, tbl, item, h, cs)
}

// release performs the FASE's final unlock. No dedicated boundary
// precedes it: the final-unlock protocol fences the region's data and
// clears recovery_pc before the mutex is handed over.
func release(env *Env, t persist.Thread, tbl uint64) {
	t.Unlock(env.LM.ByHolder(env.Reg.Dev.Load64(tbl + tLock)))
}

// Get looks a key up, maintaining cmd_get/get_hits and the hit item's
// access time exactly as memcached does.
func (c *Cache) Get(t persist.Thread, k0, k1 uint64) (v uint64, ok bool) {
	t.Lock(c.lock)
	t.Boundary(ridGetEntry, append(persist.Outs(t),
		persist.RV(0, c.tbl), persist.RV(1, k0), persist.RV(2, k1))...)
	return getEntry(c.env, t, c.tbl, k0, k1)
}

func getEntry(env *Env, t persist.Thread, tbl, k0, k1 uint64) (uint64, bool) {
	cg := t.Load64(tbl + tCmdGet)
	hs := t.Load64(tbl + tHits)
	ba := bucketAddr(t, tbl, k0, k1)
	return getScanFrom(env, t, tbl, k0, k1, ba, t.Load64(ba), cg, hs)
}

func getScanFrom(env *Env, t persist.Thread, tbl, k0, k1, pp, cur, cg, hs uint64) (uint64, bool) {
	for {
		if cur == 0 {
			t.Boundary(ridGetRel, append(persist.Outs(t),
				persist.RV(7, cg), persist.RV(9, hs), persist.RV(10, 0))...)
			getRel(env, t, tbl, 0, cg, hs, 0)
			return 0, false
		}
		if t.Load64(cur+iK0) == k0 && t.Load64(cur+iK1) == k1 {
			v := t.Load64(cur + iVal)
			t.Boundary(ridGetRel, append(persist.Outs(t),
				persist.RV(4, cur),
				persist.RV(7, cg), persist.RV(9, hs), persist.RV(10, 1))...)
			getRel(env, t, tbl, cur, cg, hs, 1)
			return v, true
		}
		pp = cur + iHNext
		cur = t.Load64(pp)
	}
}

// getRel is region ridGetRel: retire the GET stats counters, touch the
// hit item's access time (memcached's it->time), and release. All the
// read-modify-write halves land here, absorbed by one cut.
func getRel(env *Env, t persist.Thread, tbl, item, cg, hs, hit uint64) {
	t.Store64(tbl+tCmdGet, cg+1)
	if hit != 0 {
		t.Store64(tbl+tHits, hs+1)
		t.Store64(item+iTime, cg)
	}
	release(env, t, tbl)
}

// Delete removes a key; it reports whether the key was present. The
// item's memory is released after the FASE completes (a crash in between
// leaks the block rather than risking a double free on re-execution).
func (c *Cache) Delete(t persist.Thread, k0, k1 uint64) bool {
	t.Lock(c.lock)
	t.Boundary(ridDelEntry, append(persist.Outs(t),
		persist.RV(0, c.tbl), persist.RV(1, k0), persist.RV(2, k1))...)
	item, found := delEntry(c.env, t, c.tbl, k0, k1)
	if found && item != 0 {
		c.env.Reg.Alloc.Free(item)
	}
	return found
}

func delEntry(env *Env, t persist.Thread, tbl, k0, k1 uint64) (uint64, bool) {
	ba := bucketAddr(t, tbl, k0, k1)
	return delScanFrom(env, t, tbl, k0, k1, ba, t.Load64(ba))
}

func delScanFrom(env *Env, t persist.Thread, tbl, k0, k1, pp, cur uint64) (uint64, bool) {
	for {
		if cur == 0 {
			release(env, t, tbl)
			return 0, false
		}
		if t.Load64(cur+iK0) == k0 && t.Load64(cur+iK1) == k1 {
			t.Boundary(ridDelChain, append(persist.Outs(t),
				persist.RV(4, cur), persist.RV(5, pp))...)
			delChain(env, t, tbl, cur, pp)
			return cur, true
		}
		pp = cur + iHNext
		cur = t.Load64(pp)
	}
}

// delChain is region ridDelChain: unchain the item (the cut severed the
// scan's load of pp), unlink it from the LRU, and read the count.
func delChain(env *Env, t persist.Thread, tbl, item, pp uint64) {
	nx := t.Load64(item + iHNext)
	t.Store64(pp, nx)
	lruUnlinkStores(t, tbl, item)
	cnt := t.Load64(tbl + tCount)
	t.Boundary(ridDelCnt, append(persist.Outs(t),
		persist.RV(7, cnt))...)
	delCnt(env, t, tbl, cnt)
}

// delCnt is region ridDelCnt: decrement the count and release.
func delCnt(env *Env, t persist.Thread, tbl, cnt uint64) {
	if cnt > 0 {
		t.Store64(tbl+tCount, cnt-1)
	}
	release(env, t, tbl)
}

// EvictOne removes the LRU tail item as one FASE; it reports whether a
// victim existed. Used by callers that bound the cache size.
func (c *Cache) EvictOne(t persist.Thread) bool {
	t.Lock(c.lock)
	t.Boundary(ridEvEntry, append(persist.Outs(t),
		persist.RV(0, c.tbl))...)
	return evEntry(c.env, t, c.tbl)
}

// evEntry is region ridEvEntry: read the tail victim, locate its chain,
// scan to its position, then reuse the delete regions.
func evEntry(env *Env, t persist.Thread, tbl uint64) bool {
	victim := t.Load64(tbl + tLRUTail)
	if victim == 0 {
		release(env, t, tbl)
		return false
	}
	k0 := t.Load64(victim + iK0)
	k1 := t.Load64(victim + iK1)
	ba := bucketAddr(t, tbl, k0, k1)
	evScanFrom(env, t, tbl, victim, ba, t.Load64(ba))
	return true
}

func evScanFrom(env *Env, t persist.Thread, tbl, victim, pp, cur uint64) {
	for {
		if cur == 0 || cur == victim {
			t.Boundary(ridDelChain, append(persist.Outs(t),
				persist.RV(4, victim), persist.RV(5, pp))...)
			delChain(env, t, tbl, victim, pp)
			return
		}
		pp = cur + iHNext
		cur = t.Load64(pp)
	}
}

// Incr adjusts an existing key's value by delta as one FASE: wrapping
// addition, or (dec) subtraction clamped at zero, exactly memcached's
// incr/decr semantics. A missing key is reported, not created.
func (c *Cache) Incr(t persist.Thread, k0, k1, delta uint64, dec bool) (uint64, bool) {
	var df uint64
	if dec {
		df = 1
	}
	t.Lock(c.lock)
	t.Boundary(ridIncrEnt, append(persist.Outs(t),
		persist.RV(0, c.tbl), persist.RV(1, k0), persist.RV(2, k1),
		persist.RV(3, delta), persist.RV(10, df))...)
	return incrEntry(c.env, t, c.tbl, k0, k1, delta, df)
}

// incrEntry is region ridIncrEnt: compute the bucket, scan the chain
// (pure reads), and on a hit read the old value and compute the new one
// — storing it antidepends on that load, so the store is the next
// region. A miss just releases.
func incrEntry(env *Env, t persist.Thread, tbl, k0, k1, delta, df uint64) (uint64, bool) {
	ba := bucketAddr(t, tbl, k0, k1)
	cur := t.Load64(ba)
	for {
		if cur == 0 {
			release(env, t, tbl)
			return 0, false
		}
		if t.Load64(cur+iK0) == k0 && t.Load64(cur+iK1) == k1 {
			old := t.Load64(cur + iVal)
			nv := old + delta
			if df != 0 {
				if old < delta {
					nv = 0
				} else {
					nv = old - delta
				}
			}
			t.Boundary(ridIncrUpd, append(persist.Outs(t),
				persist.RV(4, cur), persist.RV(3, nv))...)
			incrUpd(env, t, tbl, cur, nv)
			return nv, true
		}
		cur = t.Load64(cur + iHNext)
	}
}

// incrUpd is region ridIncrUpd: publish the new value and release.
// Store-only: trivially idempotent.
func incrUpd(env *Env, t persist.Thread, tbl, item, nv uint64) {
	t.Store64(item+iVal, nv)
	release(env, t, tbl)
}

// Touch retires a batch of sampled read stats as one FASE: cmd_get
// grows by gets, get_hits by hits, and if the key is still present its
// access time is refreshed. The server's read fast lane queues these
// off the read path (lossy sampling, like memcached's
// ITEM_UPDATE_INTERVAL) and the pipeline thread drains them here.
func (c *Cache) Touch(t persist.Thread, k0, k1, gets, hits uint64) {
	t.Lock(c.lock)
	t.Boundary(ridTouchEnt, append(persist.Outs(t),
		persist.RV(0, c.tbl), persist.RV(1, k0), persist.RV(2, k1),
		persist.RV(3, gets), persist.RV(5, hits))...)
	touchEntry(c.env, t, c.tbl, k0, k1, gets, hits)
}

// touchEntry is region ridTouchEnt: read both counters, scan for the
// item (pure reads), and compute the new counter values — retiring
// them antidepends on the loads, so the stores are the next region.
func touchEntry(env *Env, t persist.Thread, tbl, k0, k1, gets, hits uint64) {
	cg := t.Load64(tbl + tCmdGet)
	hs := t.Load64(tbl + tHits)
	ba := bucketAddr(t, tbl, k0, k1)
	cur := t.Load64(ba)
	for cur != 0 {
		if t.Load64(cur+iK0) == k0 && t.Load64(cur+iK1) == k1 {
			break
		}
		cur = t.Load64(cur + iHNext)
	}
	t.Boundary(ridTouchRel, append(persist.Outs(t),
		persist.RV(4, cur), persist.RV(7, cg+gets), persist.RV(9, hs+hits))...)
	touchRel(env, t, tbl, cur, cg+gets, hs+hits)
}

// touchRel is region ridTouchRel: retire the batched counters, refresh
// the item's access time, and release. Store-only: idempotent.
func touchRel(env *Env, t persist.Thread, tbl, item, ncg, nhs uint64) {
	t.Store64(tbl+tCmdGet, ncg)
	t.Store64(tbl+tHits, nhs)
	if item != 0 {
		t.Store64(item+iTime, ncg)
	}
	release(env, t, tbl)
}

// Count returns the item count (unsynchronized; tests and sizing only).
func (c *Cache) Count() uint64 { return c.env.Reg.Dev.Load64(c.tbl + tCount) }

// Register installs the cache's resume entries. The register slots carry
// every address a resumed region needs, so one registration serves all
// caches in the region.
func Register(rr *persist.ResumeRegistry, env *Env) {
	rr.Register(ridSetEntry, func(t persist.Thread, rf []uint64) {
		setEntry(env, t, rf[0], rf[1], rf[2], rf[3])
	})
	rr.Register(ridPush2, func(t persist.Thread, rf []uint64) {
		lruPush2(env, t, rf[0], rf[4], rf[7], rf[9])
	})
	rr.Register(ridSetIns2, func(t persist.Thread, rf []uint64) {
		setInsert2(env, t, rf[0], rf[4], rf[6], rf[9])
	})
	rr.Register(ridSetIns3, func(t persist.Thread, rf []uint64) {
		setInsert3(env, t, rf[0], rf[4], rf[7], rf[9])
	})
	rr.Register(ridGetEntry, func(t persist.Thread, rf []uint64) {
		getEntry(env, t, rf[0], rf[1], rf[2])
	})
	rr.Register(ridGetRel, func(t persist.Thread, rf []uint64) {
		getRel(env, t, rf[0], rf[4], rf[7], rf[9], rf[10])
	})
	rr.Register(ridDelEntry, func(t persist.Thread, rf []uint64) {
		delEntry(env, t, rf[0], rf[1], rf[2])
	})
	rr.Register(ridDelChain, func(t persist.Thread, rf []uint64) {
		delChain(env, t, rf[0], rf[4], rf[5])
	})
	rr.Register(ridDelCnt, func(t persist.Thread, rf []uint64) {
		delCnt(env, t, rf[0], rf[7])
	})
	rr.Register(ridEvEntry, func(t persist.Thread, rf []uint64) {
		evEntry(env, t, rf[0])
	})
	rr.Register(ridIncrEnt, func(t persist.Thread, rf []uint64) {
		incrEntry(env, t, rf[0], rf[1], rf[2], rf[3], rf[10])
	})
	rr.Register(ridIncrUpd, func(t persist.Thread, rf []uint64) {
		incrUpd(env, t, rf[0], rf[4], rf[3])
	})
	rr.Register(ridTouchEnt, func(t persist.Thread, rf []uint64) {
		touchEntry(env, t, rf[0], rf[1], rf[2], rf[3], rf[5])
	})
	rr.Register(ridTouchRel, func(t persist.Thread, rf []uint64) {
		touchRel(env, t, rf[0], rf[4], rf[7], rf[9])
	})
}
