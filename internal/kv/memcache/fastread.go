package memcache

// GetFast is the lock-free read fast lane: it walks the hash chain and
// reads the value directly off the device — no cache lock, no FASE, no
// boundary log, no fence. It is only sound under the caller's seqlock
// protocol: the caller snapshots the shard's write epoch before the
// call, re-checks it after, and discards the result on any change, so a
// successful fast read is equivalent to one that ran entirely between
// two write FASEs.
//
// Because the walk races concurrent Set/Delete/EvictOne FASEs — which
// free items back to the allocator — every pointer is defensively
// validated (alignment, bounds) and the walk is step-bounded before any
// load dereferences it. A walk that trips a check returns ok=false and
// the caller falls back; in-bounds stale garbage it cannot detect is
// exactly what the epoch re-check rejects. Returns (value, hit, ok):
// ok=false means "could not complete safely", not "miss".
func (c *Cache) GetFast(k0, k1 uint64) (v uint64, hit, ok bool) {
	dev := c.env.Reg.Dev
	limit := uint64(dev.Size())
	n := dev.Load64(c.tbl + tBuckets)
	if n == 0 || n&(n-1) != 0 {
		return 0, false, false
	}
	ba := c.tbl + tArray + hash(k0, k1, n)*8
	if ba+8 > limit {
		return 0, false, false
	}
	cur := dev.Load64(ba)
	for steps := 0; steps < 1024; steps++ {
		if cur == 0 {
			return 0, false, true
		}
		if cur&7 != 0 || cur+iSize > limit {
			return 0, false, false
		}
		if dev.Load64(cur+iK0) == k0 && dev.Load64(cur+iK1) == k1 {
			return dev.Load64(cur + iVal), true, true
		}
		cur = dev.Load64(cur + iHNext)
	}
	return 0, false, false
}
