package memcache

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/ido-nvm/ido/internal/baselines/atlas"
	"github.com/ido-nvm/ido/internal/baselines/justdo"
	"github.com/ido-nvm/ido/internal/baselines/mnemosyne"
	"github.com/ido-nvm/ido/internal/baselines/nvthreads"
	"github.com/ido-nvm/ido/internal/baselines/origin"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

func runtimes() map[string]func() persist.Runtime {
	return map[string]func() persist.Runtime{
		"ido":       func() persist.Runtime { return core.New(core.DefaultConfig()) },
		"justdo":    func() persist.Runtime { return justdo.New() },
		"atlas":     func() persist.Runtime { return atlas.New(atlas.Config{}) },
		"mnemosyne": func() persist.Runtime { return mnemosyne.New() },
		"nvthreads": func() persist.Runtime { return nvthreads.New() },
		"origin":    func() persist.Runtime { return origin.New() },
	}
}

func newEnv(t *testing.T, size int) *Env {
	t.Helper()
	reg := region.Create(size, nvm.Config{})
	return &Env{Reg: reg, LM: locks.NewManager(reg)}
}

func TestCacheSemanticsAllRuntimes(t *testing.T) {
	for name, mk := range runtimes() {
		t.Run(name, func(t *testing.T) {
			env := newEnv(t, 1<<23)
			rt := mk()
			if err := rt.Attach(env.Reg, env.LM); err != nil {
				t.Fatal(err)
			}
			c, _, err := New(env, 16)
			if err != nil {
				t.Fatal(err)
			}
			th, _ := rt.NewThread()
			for k := uint64(1); k <= 100; k++ {
				k := k
				th.Exec(func() { c.Set(th, k, k^0xABCD, k*3) })
			}
			th.Exec(func() { c.Set(th, 7, 7^0xABCD, 777) })
			for k := uint64(1); k <= 100; k++ {
				var v uint64
				var ok bool
				k := k
				th.Exec(func() { v, ok = c.Get(th, k, k^0xABCD) })
				want := k * 3
				if k == 7 {
					want = 777
				}
				if !ok || v != want {
					t.Fatalf("get(%d) = %d,%v want %d", k, v, ok, want)
				}
			}
			var ok bool
			th.Exec(func() { _, ok = c.Get(th, 999, 0) })
			if ok {
				t.Fatal("get(999) hit")
			}
			if c.Count() != 100 {
				t.Fatalf("count = %d", c.Count())
			}
			// Delete half.
			for k := uint64(1); k <= 50; k++ {
				var found bool
				k := k
				th.Exec(func() { found = c.Delete(th, k, k^0xABCD) })
				if !found {
					t.Fatalf("delete(%d) missed", k)
				}
			}
			if c.Count() != 50 {
				t.Fatalf("count after deletes = %d", c.Count())
			}
			// Evict remaining via LRU.
			evicted := 0
			for {
				var more bool
				th.Exec(func() { more = c.EvictOne(th) })
				if !more {
					break
				}
				evicted++
			}
			if evicted != 50 || c.Count() != 0 {
				t.Fatalf("evicted %d, count %d", evicted, c.Count())
			}
		})
	}
}

func TestLRUOrder(t *testing.T) {
	env := newEnv(t, 1<<22)
	rt := origin.New()
	if err := rt.Attach(env.Reg, env.LM); err != nil {
		t.Fatal(err)
	}
	c, _, _ := New(env, 8)
	th, _ := rt.NewThread()
	for k := uint64(1); k <= 5; k++ {
		c.Set(th, k, 0, k)
	}
	// Touch 1 via Set: it moves to the front; 2 becomes the LRU tail.
	c.Set(th, 1, 0, 11)
	if !c.EvictOne(th) {
		t.Fatal("evict failed")
	}
	if _, ok := c.Get(th, 2, 0); ok {
		t.Fatal("LRU victim should have been key 2")
	}
	if v, ok := c.Get(th, 1, 0); !ok || v != 11 {
		t.Fatal("recently touched key evicted")
	}
}

func TestConcurrentCache(t *testing.T) {
	env := newEnv(t, 1<<24)
	rt := core.New(core.DefaultConfig())
	if err := rt.Attach(env.Reg, env.LM); err != nil {
		t.Fatal(err)
	}
	c, _, _ := New(env, 64)
	const workers, each = 6, 80
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		th, _ := rt.NewThread()
		wg.Add(1)
		go func(g int, th persist.Thread) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				k := uint64(g*1000 + i + 1)
				c.Set(th, k, k, k+9)
			}
		}(g, th)
	}
	wg.Wait()
	th, _ := rt.NewThread()
	for g := 0; g < workers; g++ {
		for i := 0; i < each; i++ {
			k := uint64(g*1000 + i + 1)
			if v, ok := c.Get(th, k, k); !ok || v != k+9 {
				t.Fatalf("get(%d) = %d,%v", k, v, ok)
			}
		}
	}
	if c.Count() != workers*each {
		t.Fatalf("count = %d", c.Count())
	}
}

// validate walks the whole cache checking structural invariants and
// returns its contents.
func validate(t *testing.T, env *Env, tbl uint64) map[[2]uint64]uint64 {
	t.Helper()
	dev := env.Reg.Dev
	n := dev.Load64(tbl + tBuckets)
	out := map[[2]uint64]uint64{}
	items := map[uint64]bool{}
	for b := uint64(0); b < n; b++ {
		steps := 0
		for cur := dev.Load64(tbl + tArray + b*8); cur != 0; cur = dev.Load64(cur + iHNext) {
			if steps++; steps > 1<<16 {
				t.Fatal("chain cycle")
			}
			k := [2]uint64{dev.Load64(cur + iK0), dev.Load64(cur + iK1)}
			if _, dup := out[k]; dup {
				t.Fatalf("duplicate key %v", k)
			}
			if hash(k[0], k[1], n) != b {
				t.Fatalf("key %v in wrong bucket", k)
			}
			out[k] = dev.Load64(cur + iVal)
			items[cur] = true
		}
	}
	// LRU list: consistent forward/backward, covers exactly the items.
	seen := 0
	prev := uint64(0)
	steps := 0
	for cur := dev.Load64(tbl + tLRUHead); cur != 0; cur = dev.Load64(cur + iLNext) {
		if steps++; steps > 1<<16 {
			t.Fatal("LRU cycle")
		}
		if !items[cur] {
			t.Fatal("LRU lists an item not in any chain")
		}
		if got := dev.Load64(cur + iLPrev); got != prev {
			t.Fatalf("LRU back link broken: %#x != %#x", got, prev)
		}
		prev = cur
		seen++
	}
	if dev.Load64(tbl+tLRUTail) != prev {
		t.Fatal("LRU tail mismatch")
	}
	if seen != len(items) {
		t.Fatalf("LRU covers %d of %d items", seen, len(items))
	}
	if got := dev.Load64(tbl + tCount); got != uint64(len(items)) {
		t.Fatalf("count %d != items %d", got, len(items))
	}
	return out
}

func catchCrash(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nvm.CrashSignal); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	fn()
	return
}

// TestIDOCacheCrashRecoveryFuzz is the heavyweight validation: random
// crash points across mixed Set/Get/Delete traffic, full recovery, then
// structural invariants plus durability of every completed operation.
func TestIDOCacheCrashRecoveryFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		env := newEnv(t, 1<<23)
		rt := core.New(core.DefaultConfig())
		if err := rt.Attach(env.Reg, env.LM); err != nil {
			t.Fatal(err)
		}
		c, tbl, err := New(env, 8)
		if err != nil {
			t.Fatal(err)
		}
		env.Reg.SetRoot(1, tbl)
		th, _ := rt.NewThread()
		type op struct {
			kind int // 0 set, 1 delete
			k, v uint64
		}
		expect := map[[2]uint64]uint64{}
		var plan []op
		for i := 0; i < 30; i++ {
			k := uint64(rng.Intn(12) + 1)
			if rng.Intn(4) == 0 {
				plan = append(plan, op{kind: 1, k: k})
			} else {
				plan = append(plan, op{kind: 0, k: k, v: uint64(i + 100)})
			}
		}
		nvm.ArmCrash(int64(rng.Intn(3000)))
		done := 0
		catchCrash(func() {
			for _, o := range plan {
				if o.kind == 0 {
					c.Set(th, o.k, o.k^5, o.v)
					expect[[2]uint64{o.k, o.k ^ 5}] = o.v
				} else {
					c.Delete(th, o.k, o.k^5)
					delete(expect, [2]uint64{o.k, o.k ^ 5})
				}
				done++
			}
		})
		nvm.ArmCrash(-1)
		env.Reg.Dev.Crash(nvm.CrashMode(rng.Intn(3)), rng)
		reg2, err := region.Attach(env.Reg.Dev)
		if err != nil {
			t.Fatal(err)
		}
		env2 := &Env{Reg: reg2, LM: locks.NewManager(reg2)}
		rt2 := core.New(core.DefaultConfig())
		if err := rt2.Attach(reg2, env2.LM); err != nil {
			t.Fatal(err)
		}
		rr := persist.NewResumeRegistry()
		Register(rr, env2)
		if _, err := rt2.Recover(rr); err != nil {
			t.Fatalf("trial %d: recover: %v", trial, err)
		}
		got := validate(t, env2, reg2.Root(1))
		// Every COMPLETED op must be reflected except possibly the very
		// last (op done-th was in flight and resumed — it completed too,
		// so compare against the prefix expect map recomputed).
		prefix := map[[2]uint64]uint64{}
		for i := 0; i < done; i++ {
			o := plan[i]
			if o.kind == 0 {
				prefix[[2]uint64{o.k, o.k ^ 5}] = o.v
			} else {
				delete(prefix, [2]uint64{o.k, o.k ^ 5})
			}
		}
		// The in-flight op (index done) may or may not have taken effect.
		withNext := map[[2]uint64]uint64{}
		for k, v := range prefix {
			withNext[k] = v
		}
		if done < len(plan) {
			o := plan[done]
			if o.kind == 0 {
				withNext[[2]uint64{o.k, o.k ^ 5}] = o.v
			} else {
				delete(withNext, [2]uint64{o.k, o.k ^ 5})
			}
		}
		match := func(m map[[2]uint64]uint64) bool {
			if len(m) != len(got) {
				return false
			}
			for k, v := range m {
				if got[k] != v {
					return false
				}
			}
			return true
		}
		if !match(prefix) && !match(withNext) {
			t.Fatalf("trial %d (done=%d/%d): cache %v matches neither %v nor %v",
				trial, done, len(plan), got, prefix, withNext)
		}
	}
}

func TestIDORegionStatsOnCache(t *testing.T) {
	env := newEnv(t, 1<<23)
	rt := core.New(core.DefaultConfig())
	if err := rt.Attach(env.Reg, env.LM); err != nil {
		t.Fatal(err)
	}
	c, _, _ := New(env, 64)
	th, _ := rt.NewThread()
	for k := uint64(1); k <= 200; k++ {
		c.Set(th, k, k, k)
		c.Get(th, k, k)
	}
	s := rt.Stats()
	if s.FASEs != 400 {
		t.Fatalf("FASEs = %d", s.FASEs)
	}
	// The paper observes 30-50% of application regions carry multiple
	// stores; our Set path has several multi-store regions.
	multi := uint64(0)
	var all uint64
	for i, cnt := range s.StoresPerRegion {
		all += cnt
		if i >= 2 {
			multi += cnt
		}
	}
	if multi == 0 {
		t.Fatal("no multi-store regions on the Set path")
	}
	_ = all
}

// TestIDOEvictOneCrashFuzz crashes inside LRU evictions and verifies the
// cache's structural invariants plus eviction progress after recovery.
func TestIDOEvictOneCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		env := newEnv(t, 1<<22)
		rt := core.New(core.DefaultConfig())
		if err := rt.Attach(env.Reg, env.LM); err != nil {
			t.Fatal(err)
		}
		c, tbl, err := New(env, 8)
		if err != nil {
			t.Fatal(err)
		}
		env.Reg.SetRoot(1, tbl)
		th, _ := rt.NewThread()
		const N = 10
		for k := uint64(1); k <= N; k++ {
			c.Set(th, k, k^7, k)
		}
		nvm.ArmCrash(int64(rng.Intn(600)))
		evicted := 0
		catchCrash(func() {
			for i := 0; i < 5; i++ {
				if !c.EvictOne(th) {
					break
				}
				evicted++
			}
		})
		nvm.ArmCrash(-1)
		env.Reg.Dev.Crash(nvm.CrashMode(rng.Intn(3)), rng)
		reg2, err := region.Attach(env.Reg.Dev)
		if err != nil {
			t.Fatal(err)
		}
		env2 := &Env{Reg: reg2, LM: locks.NewManager(reg2)}
		rt2 := core.New(core.DefaultConfig())
		if err := rt2.Attach(reg2, env2.LM); err != nil {
			t.Fatal(err)
		}
		rr := persist.NewResumeRegistry()
		Register(rr, env2)
		if _, err := rt2.Recover(rr); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := validate(t, env2, reg2.Root(1))
		remaining := len(got)
		// Evictions completed must be reflected; the in-flight one may or
		// may not have landed.
		if remaining > N-evicted || remaining < N-evicted-1 {
			t.Fatalf("trial %d: %d items remain after %d completed evictions",
				trial, remaining, evicted)
		}
	}
}
