// Package redis implements a Redis-like single-threaded key-value store
// on persistent memory, the Fig. 6 application of the iDO paper. Redis is
// single threaded, so failure-atomic regions are programmer-delineated
// (BeginDurable/EndDurable) rather than lock-inferred (§V-A). The store
// is a chained dictionary; writes (SET, DEL) run inside durable FASEs
// annotated with iDO region boundaries, while reads (GET) run outside any
// FASE — the paper's explanation for iDO's shrinking overhead on larger
// databases is precisely that these read paths are idempotent and nearly
// instrumentation-free.
//
// Register-slot plan: r0 = table, r1 = key, r2 = value, r3 = entry,
// r4 = scan position (address of the pointer to the current entry),
// r5 = scratch (count), r7 = dirty counter.
//
// Like real Redis, every write bumps server.dirty. The counter is read in
// the entry region and written in the final region of the FASE, so the
// read-modify-write antidependence is absorbed by an existing cut.
package redis

import (
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Table layout.
const (
	tBuckets = 0
	tCount   = 8
	tDirty   = 16 // Redis's server.dirty: writes since the last snapshot
	tArray   = 64
)

// Entry layout.
const (
	eKey  = 0
	eVal  = 8
	eNext = 16
	eSize = 24
)

// Region IDs (0x26 block).
const (
	ridBase     = 0x26 << 16
	ridSetEntry = ridBase + 1
	ridSetUpd   = ridBase + 3 // overwrite value, retire dirty counter, end
	ridSetIns2  = ridBase + 5
	ridSetIns3  = ridBase + 6
	ridEnd      = ridBase + 7 // close the durable FASE
	ridDelEntry = ridBase + 8
	ridDelChain = ridBase + 10
	ridDelCnt   = ridBase + 11
	ridIncrEnt  = ridBase + 12 // INCR: scan, read the value, compute
)

// Env gives the store and its resume closures region access.
type Env struct {
	Reg *region.Region
}

// DB is the persistent dictionary.
type DB struct {
	env *Env
	tbl uint64

	// cursor is the next bucket an EvictOne probe starts at. Volatile
	// and unsynchronized: eviction runs only on the owning pipeline
	// thread, and a stale cursor after a crash merely restarts the
	// rotation.
	cursor uint64
}

// New creates a store with nbuckets chains (rounded to a power of two).
func New(env *Env, nbuckets int) (*DB, uint64, error) {
	n := 1
	for n < nbuckets {
		n *= 2
	}
	tbl, err := env.Reg.Alloc.Alloc(tArray + n*8)
	if err != nil {
		return nil, 0, err
	}
	dev := env.Reg.Dev
	dev.Store64(tbl+tBuckets, uint64(n))
	dev.PersistRange(tbl, uint64(tArray+n*8))
	dev.Fence()
	return &DB{env: env, tbl: tbl}, tbl, nil
}

// Attach reopens a store at its table address.
func Attach(env *Env, tbl uint64) *DB { return &DB{env: env, tbl: tbl} }

func hash(k, n uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	return k & (n - 1)
}

func bucketAddr(t persist.Thread, tbl, key uint64) uint64 {
	n := t.Load64(tbl + tBuckets)
	return tbl + tArray + hash(key, n)*8
}

// Set inserts or updates a key inside a programmer-delineated FASE.
func (d *DB) Set(t persist.Thread, key, val uint64) {
	t.BeginDurable()
	t.Boundary(ridSetEntry, append(persist.Outs(t),
		persist.RV(0, d.tbl), persist.RV(1, key), persist.RV(2, val))...)
	setEntry(d.env, t, d.tbl, key, val)
}

// setEntry is region ridSetEntry: compute the bucket, run the first scan
// iteration (later iterations are back-edge regions), and do the
// found/miss work up to the next antidependence.
func setEntry(env *Env, t persist.Thread, tbl, key, val uint64) {
	dr := t.Load64(tbl + tDirty)
	ba := bucketAddr(t, tbl, key)
	hb := t.Load64(ba)
	setScanFrom(env, t, tbl, key, val, ba, ba, hb, hb, dr)
}

// setScanFrom walks the chain; cur == *pp was loaded by the caller.
func setScanFrom(env *Env, t persist.Thread, tbl, key, val, pp, ba, hb, cur, dr uint64) {
	for {
		if cur == 0 {
			// Miss: build the entry here; publishing the bucket head is
			// the next region (it antidepends on this region's load).
			entry, err := env.Reg.Alloc.Alloc(eSize)
			if err != nil {
				panic(err)
			}
			t.Store64(entry+eKey, key)
			t.Store64(entry+eVal, val)
			t.Store64(entry+eNext, hb)
			t.Boundary(ridSetIns2, append(persist.Outs(t),
				persist.RV(3, entry), persist.RV(6, ba), persist.RV(7, dr))...)
			setInsert2(env, t, tbl, entry, ba, dr)
			return
		}
		if t.Load64(cur+eKey) == key {
			t.Boundary(ridSetUpd, append(persist.Outs(t),
				persist.RV(3, cur), persist.RV(7, dr))...)
			setUpdate(env, t, tbl, cur, val, dr)
			return
		}
		pp = cur + eNext
		cur = t.Load64(pp)
	}
}

// setUpdate is region ridSetUpd: the value overwrite and the dirty-
// counter retirement share the FASE's final region.
func setUpdate(env *Env, t persist.Thread, tbl, entry, val, dr uint64) {
	t.Store64(entry+eVal, val)
	t.Store64(tbl+tDirty, dr+1)
	end(env, t)
}

func setInsert2(env *Env, t persist.Thread, tbl, entry, ba, dr uint64) {
	t.Store64(ba, entry)
	cnt := t.Load64(tbl + tCount)
	t.Boundary(ridSetIns3, append(persist.Outs(t),
		persist.RV(5, cnt))...)
	setInsert3(env, t, tbl, cnt, dr)
}

func setInsert3(env *Env, t persist.Thread, tbl, cnt, dr uint64) {
	t.Store64(tbl+tCount, cnt+1)
	t.Store64(tbl+tDirty, dr+1)
	end(env, t)
}

func end(env *Env, t persist.Thread) { t.EndDurable() }

// Get reads a key outside any FASE (persistent reads are allowed outside
// FASEs, §II-B).
func (d *DB) Get(t persist.Thread, key uint64) (uint64, bool) {
	ba := bucketAddr(t, d.tbl, key)
	for cur := t.Load64(ba); cur != 0; cur = t.Load64(cur + eNext) {
		if t.Load64(cur+eKey) == key {
			return t.Load64(cur + eVal), true
		}
	}
	return 0, false
}

// Del removes a key inside a durable FASE; it reports presence. The
// entry's memory is released after the FASE completes.
func (d *DB) Del(t persist.Thread, key uint64) bool {
	t.BeginDurable()
	t.Boundary(ridDelEntry, append(persist.Outs(t),
		persist.RV(0, d.tbl), persist.RV(1, key))...)
	entry, found := delEntry(d.env, t, d.tbl, key)
	if found && entry != 0 {
		d.env.Reg.Alloc.Free(entry)
	}
	return found
}

func delEntry(env *Env, t persist.Thread, tbl, key uint64) (uint64, bool) {
	dr := t.Load64(tbl + tDirty)
	ba := bucketAddr(t, tbl, key)
	return delScanFrom(env, t, tbl, key, ba, t.Load64(ba), dr)
}

func delScanFrom(env *Env, t persist.Thread, tbl, key, pp, cur, dr uint64) (uint64, bool) {
	for {
		if cur == 0 {
			t.Boundary(ridEnd)
			end(env, t)
			return 0, false
		}
		if t.Load64(cur+eKey) == key {
			t.Boundary(ridDelChain, append(persist.Outs(t),
				persist.RV(3, cur), persist.RV(4, pp), persist.RV(7, dr))...)
			delChain(env, t, tbl, cur, pp, dr)
			return cur, true
		}
		pp = cur + eNext
		cur = t.Load64(pp)
	}
}

func delChain(env *Env, t persist.Thread, tbl, entry, pp, dr uint64) {
	t.Store64(pp, t.Load64(entry+eNext))
	cnt := t.Load64(tbl + tCount)
	t.Boundary(ridDelCnt, append(persist.Outs(t),
		persist.RV(5, cnt))...)
	delCnt(env, t, tbl, cnt, dr)
}

func delCnt(env *Env, t persist.Thread, tbl, cnt, dr uint64) {
	if cnt > 0 {
		t.Store64(tbl+tCount, cnt-1)
	}
	t.Store64(tbl+tDirty, dr+1)
	end(env, t)
}

// Incr adds delta to a key's value inside a durable FASE, treating an
// absent key as 0 (Redis INCR semantics, on this store's uint64
// values). Returns the new value.
func (d *DB) Incr(t persist.Thread, key, delta uint64) uint64 {
	t.BeginDurable()
	t.Boundary(ridIncrEnt, append(persist.Outs(t),
		persist.RV(0, d.tbl), persist.RV(1, key), persist.RV(2, delta))...)
	return incrEntry(d.env, t, d.tbl, key, delta)
}

// incrEntry is region ridIncrEnt: scan the chain (pure reads) and on a
// hit read the old value and compute the new one. The final store
// shares the ridSetUpd region — identical code (publish value, retire
// dirty, end), with the new value logged into the value slot so resume
// replays the computed result. A miss is an insert of delta and reuses
// the set insert regions the same way.
func incrEntry(env *Env, t persist.Thread, tbl, key, delta uint64) uint64 {
	dr := t.Load64(tbl + tDirty)
	ba := bucketAddr(t, tbl, key)
	hb := t.Load64(ba)
	for cur := hb; ; cur = t.Load64(cur + eNext) {
		if cur == 0 {
			entry, err := env.Reg.Alloc.Alloc(eSize)
			if err != nil {
				panic(err)
			}
			t.Store64(entry+eKey, key)
			t.Store64(entry+eVal, delta)
			t.Store64(entry+eNext, hb)
			t.Boundary(ridSetIns2, append(persist.Outs(t),
				persist.RV(3, entry), persist.RV(6, ba), persist.RV(7, dr))...)
			setInsert2(env, t, tbl, entry, ba, dr)
			return delta
		}
		if t.Load64(cur+eKey) == key {
			nv := t.Load64(cur+eVal) + delta
			t.Boundary(ridSetUpd, append(persist.Outs(t),
				persist.RV(3, cur), persist.RV(2, nv), persist.RV(7, dr))...)
			setUpdate(env, t, tbl, cur, nv, dr)
			return nv
		}
	}
}

// GetFast is the lock-free read fast lane: a device-direct chain walk
// with no FASE and no fence, sound only under the caller's seqlock
// protocol (snapshot the shard's write epoch before, re-check after,
// discard on change). Every pointer is validated before dereference and
// the walk is step-bounded, because the chain races Set/Del/Incr FASEs
// that free entries back to the allocator. Returns (value, hit, ok);
// ok=false means the walk could not complete safely, not a miss.
func (d *DB) GetFast(key uint64) (v uint64, hit, ok bool) {
	dev := d.env.Reg.Dev
	limit := uint64(dev.Size())
	n := dev.Load64(d.tbl + tBuckets)
	if n == 0 || n&(n-1) != 0 {
		return 0, false, false
	}
	ba := d.tbl + tArray + hash(key, n)*8
	if ba+8 > limit {
		return 0, false, false
	}
	cur := dev.Load64(ba)
	for steps := 0; steps < 1024; steps++ {
		if cur == 0 {
			return 0, false, true
		}
		if cur&7 != 0 || cur+eSize > limit {
			return 0, false, false
		}
		if dev.Load64(cur+eKey) == key {
			return dev.Load64(cur + eVal), true, true
		}
		cur = dev.Load64(cur + eNext)
	}
	return 0, false, false
}

// EvictOne removes one entry to bound the store's size: it rotates a
// volatile bucket cursor to find a victim (reads outside any FASE) and
// deletes it with the ordinary Del FASE. Reports whether a victim
// existed. Pipeline-thread only, like every write.
func (d *DB) EvictOne(t persist.Thread) bool {
	dev := d.env.Reg.Dev
	n := dev.Load64(d.tbl + tBuckets)
	if n == 0 {
		return false
	}
	for i := uint64(0); i < n; i++ {
		b := (d.cursor + i) & (n - 1)
		e := dev.Load64(d.tbl + tArray + b*8)
		if e != 0 {
			d.cursor = b + 1
			return d.Del(t, dev.Load64(e+eKey))
		}
	}
	return false
}

// Count returns the entry count (no synchronization: the store is
// single-threaded by design).
func (d *DB) Count() uint64 { return d.env.Reg.Dev.Load64(d.tbl + tCount) }

// Register installs the store's resume entries.
func Register(rr *persist.ResumeRegistry, env *Env) {
	rr.Register(ridSetEntry, func(t persist.Thread, rf []uint64) {
		setEntry(env, t, rf[0], rf[1], rf[2])
	})
	rr.Register(ridSetUpd, func(t persist.Thread, rf []uint64) {
		setUpdate(env, t, rf[0], rf[3], rf[2], rf[7])
	})
	rr.Register(ridSetIns2, func(t persist.Thread, rf []uint64) {
		setInsert2(env, t, rf[0], rf[3], rf[6], rf[7])
	})
	rr.Register(ridSetIns3, func(t persist.Thread, rf []uint64) {
		setInsert3(env, t, rf[0], rf[5], rf[7])
	})
	rr.Register(ridEnd, func(t persist.Thread, rf []uint64) {
		end(env, t)
	})
	rr.Register(ridDelEntry, func(t persist.Thread, rf []uint64) {
		delEntry(env, t, rf[0], rf[1])
	})
	rr.Register(ridDelChain, func(t persist.Thread, rf []uint64) {
		delChain(env, t, rf[0], rf[3], rf[4], rf[7])
	})
	rr.Register(ridDelCnt, func(t persist.Thread, rf []uint64) {
		delCnt(env, t, rf[0], rf[5], rf[7])
	})
	rr.Register(ridIncrEnt, func(t persist.Thread, rf []uint64) {
		incrEntry(env, t, rf[0], rf[1], rf[2])
	})
}
