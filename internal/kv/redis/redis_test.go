package redis

import (
	"math/rand"
	"testing"

	"github.com/ido-nvm/ido/internal/baselines/atlas"
	"github.com/ido-nvm/ido/internal/baselines/justdo"
	"github.com/ido-nvm/ido/internal/baselines/nvml"
	"github.com/ido-nvm/ido/internal/baselines/origin"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// The paper's Redis comparison runs iDO, JUSTDO, Atlas, and NVML (Fig. 6).
func runtimes() map[string]func() persist.Runtime {
	return map[string]func() persist.Runtime{
		"ido":    func() persist.Runtime { return core.New(core.DefaultConfig()) },
		"justdo": func() persist.Runtime { return justdo.New() },
		"atlas":  func() persist.Runtime { return atlas.New(atlas.Config{}) },
		"nvml":   func() persist.Runtime { return nvml.New() },
		"origin": func() persist.Runtime { return origin.New() },
	}
}

func newEnv(t *testing.T, size int) (*Env, *region.Region, *locks.Manager) {
	t.Helper()
	reg := region.Create(size, nvm.Config{})
	return &Env{Reg: reg}, reg, locks.NewManager(reg)
}

func TestDBSemanticsAllRuntimes(t *testing.T) {
	for name, mk := range runtimes() {
		t.Run(name, func(t *testing.T) {
			env, reg, lm := newEnv(t, 1<<23)
			rt := mk()
			if err := rt.Attach(reg, lm); err != nil {
				t.Fatal(err)
			}
			db, _, err := New(env, 32)
			if err != nil {
				t.Fatal(err)
			}
			th, _ := rt.NewThread()
			for k := uint64(1); k <= 200; k++ {
				k := k
				th.Exec(func() { db.Set(th, k, k*7) })
			}
			th.Exec(func() { db.Set(th, 42, 4242) })
			for k := uint64(1); k <= 200; k++ {
				v, ok := db.Get(th, k)
				want := k * 7
				if k == 42 {
					want = 4242
				}
				if !ok || v != want {
					t.Fatalf("get(%d) = %d,%v want %d", k, v, ok, want)
				}
			}
			if _, ok := db.Get(th, 999); ok {
				t.Fatal("get(999) hit")
			}
			for k := uint64(1); k <= 100; k++ {
				var found bool
				k := k
				th.Exec(func() { found = db.Del(th, k) })
				if !found {
					t.Fatalf("del(%d) missed", k)
				}
			}
			if db.Count() != 100 {
				t.Fatalf("count = %d", db.Count())
			}
		})
	}
}

func catchCrash(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nvm.CrashSignal); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	fn()
	return
}

// validate walks the dictionary checking invariants; returns contents.
func validate(t *testing.T, reg *region.Region, tbl uint64) map[uint64]uint64 {
	t.Helper()
	dev := reg.Dev
	n := dev.Load64(tbl + tBuckets)
	out := map[uint64]uint64{}
	for b := uint64(0); b < n; b++ {
		steps := 0
		for cur := dev.Load64(tbl + tArray + b*8); cur != 0; cur = dev.Load64(cur + eNext) {
			if steps++; steps > 1<<16 {
				t.Fatal("chain cycle")
			}
			k := dev.Load64(cur + eKey)
			if _, dup := out[k]; dup {
				t.Fatalf("duplicate key %d", k)
			}
			if hash(k, n) != b {
				t.Fatalf("key %d in wrong bucket", k)
			}
			out[k] = dev.Load64(cur + eVal)
		}
	}
	if got := dev.Load64(tbl + tCount); got != uint64(len(out)) {
		t.Fatalf("count %d != entries %d", got, len(out))
	}
	return out
}

// TestIDODBCrashRecoveryFuzz crashes mixed SET/DEL traffic at random
// points and verifies recovery restores a consistent prefix state.
func TestIDODBCrashRecoveryFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		env, reg, lm := newEnv(t, 1<<23)
		rt := core.New(core.DefaultConfig())
		if err := rt.Attach(reg, lm); err != nil {
			t.Fatal(err)
		}
		db, tbl, err := New(env, 8)
		if err != nil {
			t.Fatal(err)
		}
		reg.SetRoot(1, tbl)
		th, _ := rt.NewThread()
		type op struct {
			del  bool
			k, v uint64
		}
		var plan []op
		for i := 0; i < 30; i++ {
			k := uint64(rng.Intn(10) + 1)
			plan = append(plan, op{del: rng.Intn(4) == 0, k: k, v: uint64(i + 500)})
		}
		nvm.ArmCrash(int64(rng.Intn(2500)))
		done := 0
		catchCrash(func() {
			for _, o := range plan {
				if o.del {
					db.Del(th, o.k)
				} else {
					db.Set(th, o.k, o.v)
				}
				done++
			}
		})
		nvm.ArmCrash(-1)
		reg.Dev.Crash(nvm.CrashMode(rng.Intn(3)), rng)
		reg2, err := region.Attach(reg.Dev)
		if err != nil {
			t.Fatal(err)
		}
		env2 := &Env{Reg: reg2}
		rt2 := core.New(core.DefaultConfig())
		if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
			t.Fatal(err)
		}
		rr := persist.NewResumeRegistry()
		Register(rr, env2)
		if _, err := rt2.Recover(rr); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := validate(t, reg2, reg2.Root(1))
		apply := func(k int) map[uint64]uint64 {
			m := map[uint64]uint64{}
			for i := 0; i < k && i < len(plan); i++ {
				if plan[i].del {
					delete(m, plan[i].k)
				} else {
					m[plan[i].k] = plan[i].v
				}
			}
			return m
		}
		match := func(m map[uint64]uint64) bool {
			if len(m) != len(got) {
				return false
			}
			for k, v := range m {
				if got[k] != v {
					return false
				}
			}
			return true
		}
		if !match(apply(done)) && !match(apply(done+1)) {
			t.Fatalf("trial %d (done=%d): db %v matches neither prefix", trial, done, got)
		}
	}
}

// TestNVMLDBCrashRollback exercises the Fig. 6 NVML pairing: a crash
// mid-SET rolls the partial update back.
func TestNVMLDBCrashRollback(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		env, reg, lm := newEnv(t, 1<<22)
		rt := nvml.New()
		if err := rt.Attach(reg, lm); err != nil {
			t.Fatal(err)
		}
		db, tbl, _ := New(env, 8)
		reg.SetRoot(1, tbl)
		th, _ := rt.NewThread()
		for k := uint64(1); k <= 10; k++ {
			db.Set(th, k, k)
		}
		nvm.ArmCrash(int64(rng.Intn(300)))
		done := uint64(0)
		catchCrash(func() {
			for k := uint64(11); k <= 20; k++ {
				db.Set(th, k, k)
				done = k
			}
		})
		nvm.ArmCrash(-1)
		reg.Dev.Crash(nvm.CrashPersistAll, nil)
		reg2, err := region.Attach(reg.Dev)
		if err != nil {
			t.Fatal(err)
		}
		rt2 := nvml.New()
		if err := rt2.Attach(reg2, locks.NewManager(reg2)); err != nil {
			t.Fatal(err)
		}
		if _, err := rt2.Recover(nil); err != nil {
			t.Fatal(err)
		}
		got := validate(t, reg2, reg2.Root(1))
		last := done
		if last == 0 {
			last = 10 // none of the second batch completed
		}
		for k := uint64(1); k <= last; k++ {
			if got[k] != k {
				t.Fatalf("trial %d: completed set(%d) lost", trial, k)
			}
		}
		if uint64(len(got)) != last {
			t.Fatalf("trial %d: %d entries, want %d (partial FASE rolled back)", trial, len(got), last)
		}
	}
}
