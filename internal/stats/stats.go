// Package stats provides the aggregation and formatting used by the
// benchmark harness: throughput accounting, cumulative distributions for
// the Fig. 8 histograms, and fixed-width table rendering that mirrors the
// rows and series the paper reports.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Throughput converts an operation count and duration to Mops/s, the
// paper's throughput unit.
func Throughput(ops uint64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1e6
}

// CDF converts a histogram (bucket i = count of samples with value i;
// the last bucket aggregates the tail) into a cumulative distribution in
// [0, 1].
func CDF(hist []uint64) []float64 {
	var total uint64
	for _, c := range hist {
		total += c
	}
	out := make([]float64, len(hist))
	if total == 0 {
		return out
	}
	var run uint64
	for i, c := range hist {
		run += c
		out[i] = float64(run) / float64(total)
	}
	return out
}

// Percentile returns the smallest bucket index at which the CDF reaches
// p (0 < p <= 1).
func Percentile(hist []uint64, p float64) int {
	cdf := CDF(hist)
	for i, v := range cdf {
		if v >= p {
			return i
		}
	}
	return len(hist) - 1
}

// Mean returns the histogram's mean bucket value.
func Mean(hist []uint64) float64 {
	var total, weighted uint64
	for i, c := range hist {
		total += c
		weighted += uint64(i) * c
	}
	if total == 0 {
		return 0
	}
	return float64(weighted) / float64(total)
}

// Table renders aligned rows. The first row is the header.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddF appends a row formatting each value with the given verb.
func (t *Table) AddF(label string, verb string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf(verb, v))
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	widths := map[int]int{}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Series is a named sequence of (x, y) points, one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure collects the series of one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// Add appends a point to the named series, creating it on first use.
func (f *Figure) Add(name string, x, y float64) {
	for _, s := range f.Series {
		if s.Name == name {
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
			return
		}
	}
	f.Series = append(f.Series, &Series{Name: name, X: []float64{x}, Y: []float64{y}})
}

// Get returns the y value of the named series at x, and whether it exists.
func (f *Figure) Get(name string, x float64) (float64, bool) {
	for _, s := range f.Series {
		if s.Name != name {
			continue
		}
		for i, xv := range s.X {
			if xv == x {
				return s.Y[i], true
			}
		}
	}
	return 0, false
}

// String renders the figure as a table: one column per distinct x, one
// row per series.
func (f *Figure) String() string {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var t Table
	head := []string{f.Title + " (" + f.YLabel + ")"}
	for _, x := range sorted {
		head = append(head, trimFloat(x))
	}
	t.AddRow(head...)
	for _, s := range f.Series {
		row := []string{s.Name}
		for _, x := range sorted {
			if y, ok := f.Get(s.Name, x); ok {
				row = append(row, fmt.Sprintf("%.3f", y))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
