package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestThroughput(t *testing.T) {
	if got := Throughput(2_000_000, time.Second); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("Throughput = %f", got)
	}
	if Throughput(100, 0) != 0 {
		t.Fatal("zero duration should yield 0")
	}
}

func TestCDFProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		hist := make([]uint64, len(raw))
		var total uint64
		for i, v := range raw {
			hist[i] = uint64(v)
			total += uint64(v)
		}
		cdf := CDF(hist)
		if len(cdf) != len(hist) {
			return false
		}
		prev := 0.0
		for _, v := range cdf {
			if v < prev-1e-12 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		if total > 0 && math.Abs(cdf[len(cdf)-1]-1.0) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFEmpty(t *testing.T) {
	cdf := CDF([]uint64{0, 0, 0})
	for _, v := range cdf {
		if v != 0 {
			t.Fatal("empty histogram CDF nonzero")
		}
	}
}

func TestPercentileAndMean(t *testing.T) {
	hist := []uint64{10, 0, 0, 90} // 10 at 0, 90 at 3
	if p := Percentile(hist, 0.05); p != 0 {
		t.Fatalf("p5 = %d", p)
	}
	if p := Percentile(hist, 0.5); p != 3 {
		t.Fatalf("p50 = %d", p)
	}
	if m := Mean(hist); math.Abs(m-2.7) > 1e-9 {
		t.Fatalf("mean = %f", m)
	}
	if Mean([]uint64{0}) != 0 {
		t.Fatal("empty mean")
	}
}

func TestTableAlignment(t *testing.T) {
	var tb Table
	tb.AddRow("name", "value")
	tb.AddRow("longer-name", "x")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "longer-name") {
		t.Fatalf("row: %q", lines[1])
	}
	// Columns align: "value" starts at the same offset as "x".
	if strings.Index(lines[0], "value") != strings.Index(lines[1], "x") {
		t.Fatal("columns misaligned")
	}
	if (&Table{}).String() != "" {
		t.Fatal("empty table should render empty")
	}
}

func TestFigureSeriesAndLookup(t *testing.T) {
	f := &Figure{Title: "T", YLabel: "y"}
	f.Add("a", 1, 10)
	f.Add("a", 2, 20)
	f.Add("b", 1, 5)
	if v, ok := f.Get("a", 2); !ok || v != 20 {
		t.Fatalf("Get = %f,%v", v, ok)
	}
	if _, ok := f.Get("a", 3); ok {
		t.Fatal("missing point found")
	}
	if _, ok := f.Get("c", 1); ok {
		t.Fatal("missing series found")
	}
	out := f.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "20.000") {
		t.Fatalf("render:\n%s", out)
	}
	// b has no point at x=2: rendered as '-'.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing point not dashed:\n%s", out)
	}
}

func TestAddF(t *testing.T) {
	var tb Table
	tb.AddF("row", "%.1f", 1.25, 2.5)
	if !strings.Contains(tb.String(), "1.2") {
		t.Fatalf("AddF: %q", tb.String())
	}
}
