// Package irprog contains the benchmark kernels of §V-B written in the
// mini-IR: the locking Treiber-style stack, the two-lock Michael–Scott
// queue, the hand-over-hand ordered list, the hash map built from ordered
// lists, and simplified Memcached/Redis get/set paths. These are the
// programs the iDO compiler instruments and the VM executes to produce
// the Fig. 8 region statistics and the crash-recovery validation that the
// paper obtains with Pin on native binaries.
//
// Memory layouts (all offsets in bytes):
//
//	stack header:  [0]=lock holder [8]=top
//	stack node:    [0]=value       [8]=next
//	queue header:  [0]=headLock [8]=tailLock [16]=head [24]=tail
//	queue node:    [0]=value [8]=next
//	list node:     [0]=key [8]=value [16]=next [24]=lock holder
//	               (the list header is a sentinel node with key 0)
//	hashmap:       [0]=nbuckets, [8+i*8]=bucket list header (sentinel)
//	kv table:      [0]=lock holder [8]=nbuckets [16+i*8]=bucket head
//	kv node:       [0]=key [8]=value [16]=next
package irprog

import (
	"fmt"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/ir"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/region"
)

// Source is the complete IR program text.
const Source = stackSrc + queueSrc + listSrc + mapSrc + kvSrc

const stackSrc = `
func stack_push 2 {
entry:
  lk = load r0 0
  lock lk
  top = load r0 8
  node = alloc 16
  store node 0 r1
  store node 8 top
  store r0 8 node
  unlock lk
  ret
}

func stack_pop 1 {
entry:
  lk = load r0 0
  lock lk
  top = load r0 8
  c = ne top 0
  br c take out
take:
  nxt = load top 8
  store r0 8 nxt
  jmp out
out:
  unlock lk
  ret top
}
`

const queueSrc = `
func queue_enq 2 {
entry:
  tlk = load r0 8
  lock tlk
  node = alloc 16
  store node 0 r1
  store node 8 0
  tail = load r0 24
  store tail 8 node
  store r0 24 node
  unlock tlk
  ret
}

func queue_deq 1 {
entry:
  hlk = load r0 0
  lock hlk
  dummy = load r0 16
  first = load dummy 8
  c = ne first 0
  br c take empty
take:
  v = load first 0
  store r0 16 first
  unlock hlk
  ret 1 v
empty:
  unlock hlk
  ret 0 0
}
`

const listSrc = `
func list_insert 3 {
entry:
  plk = load r0 24
  lock plk
  prev = mov r0
  cur = load prev 16
  jmp scan
scan:
  c = eq cur 0
  br c append check
check:
  clk = load cur 24
  lock clk
  k = load cur 0
  g = ge k r1
  br g found advance
advance:
  unlock plk
  plk = mov clk
  prev = mov cur
  cur = load cur 16
  jmp scan
found:
  e = eq k r1
  br e update insert
update:
  store cur 8 r2
  unlock clk
  unlock plk
  ret
insert:
  node = alloc 32
  nlk = newlock
  store node 0 r1
  store node 8 r2
  store node 16 cur
  store node 24 nlk
  store prev 16 node
  unlock clk
  unlock plk
  ret
append:
  node = alloc 32
  nlk = newlock
  store node 0 r1
  store node 8 r2
  store node 16 0
  store node 24 nlk
  store prev 16 node
  unlock plk
  ret
}

func list_get 2 {
entry:
  plk = load r0 24
  lock plk
  prev = mov r0
  cur = load prev 16
  jmp scan
scan:
  c = eq cur 0
  br c miss check
check:
  clk = load cur 24
  lock clk
  k = load cur 0
  g = ge k r1
  br g found advance
advance:
  unlock plk
  plk = mov clk
  prev = mov cur
  cur = load cur 16
  jmp scan
found:
  e = eq k r1
  br e hit missboth
hit:
  v = load cur 8
  unlock clk
  unlock plk
  ret 1 v
missboth:
  unlock clk
  unlock plk
  ret 0 0
miss:
  unlock plk
  ret 0 0
}
`

const mapSrc = `
func map_put 3 {
entry:
  n = load r0 0
  h = mod r1 n
  o = mul h 8
  ha = add r0 8
  ba = add ha o
  bucket = load ba 0
  plk = load bucket 24
  lock plk
  prev = mov bucket
  cur = load prev 16
  jmp scan
scan:
  c = eq cur 0
  br c append check
check:
  clk = load cur 24
  lock clk
  k = load cur 0
  g = ge k r1
  br g found advance
advance:
  unlock plk
  plk = mov clk
  prev = mov cur
  cur = load cur 16
  jmp scan
found:
  e = eq k r1
  br e update insert
update:
  store cur 8 r2
  unlock clk
  unlock plk
  ret
insert:
  node = alloc 32
  nlk = newlock
  store node 0 r1
  store node 8 r2
  store node 16 cur
  store node 24 nlk
  store prev 16 node
  unlock clk
  unlock plk
  ret
append:
  node = alloc 32
  nlk = newlock
  store node 0 r1
  store node 8 r2
  store node 16 0
  store node 24 nlk
  store prev 16 node
  unlock plk
  ret
}

func map_get 2 {
entry:
  n = load r0 0
  h = mod r1 n
  o = mul h 8
  ha = add r0 8
  ba = add ha o
  bucket = load ba 0
  plk = load bucket 24
  lock plk
  prev = mov bucket
  cur = load prev 16
  jmp scan
scan:
  c = eq cur 0
  br c miss check
check:
  clk = load cur 24
  lock clk
  k = load cur 0
  g = ge k r1
  br g found advance
advance:
  unlock plk
  plk = mov clk
  prev = mov cur
  cur = load cur 16
  jmp scan
found:
  e = eq k r1
  br e hit missboth
hit:
  v = load cur 8
  unlock clk
  unlock plk
  ret 1 v
missboth:
  unlock clk
  unlock plk
  ret 0 0
miss:
  unlock plk
  ret 0 0
}
`

const kvSrc = `
func mc_set 3 {
entry:
  glk = load r0 0
  lock glk
  n = load r0 8
  h = mod r1 n
  o = mul h 8
  ha = add r0 16
  ba = add ha o
  cur = load ba 0
  jmp scan
scan:
  c = eq cur 0
  br c insert check
check:
  k = load cur 0
  e = eq k r1
  br e update next
next:
  cur = load cur 16
  jmp scan
update:
  store cur 8 r2
  unlock glk
  ret
insert:
  node = alloc 24
  head = load ba 0
  store node 0 r1
  store node 8 r2
  store node 16 head
  store ba 0 node
  unlock glk
  ret
}

func mc_get 2 {
entry:
  glk = load r0 0
  lock glk
  n = load r0 8
  h = mod r1 n
  o = mul h 8
  ha = add r0 16
  ba = add ha o
  cur = load ba 0
  jmp scan
scan:
  c = eq cur 0
  br c miss check
check:
  k = load cur 0
  e = eq k r1
  br e hit next
next:
  cur = load cur 16
  jmp scan
hit:
  v = load cur 8
  unlock glk
  ret 1 v
miss:
  unlock glk
  ret 0 0
}

func redis_set 3 {
entry:
  begin_durable
  n = load r0 8
  h = mod r1 n
  o = mul h 8
  ha = add r0 16
  ba = add ha o
  cur = load ba 0
  jmp scan
scan:
  c = eq cur 0
  br c insert check
check:
  k = load cur 0
  e = eq k r1
  br e update next
next:
  cur = load cur 16
  jmp scan
update:
  store cur 8 r2
  end_durable
  ret
insert:
  node = alloc 24
  head = load ba 0
  store node 0 r1
  store node 8 r2
  store node 16 head
  store ba 0 node
  end_durable
  ret
}

func redis_get 2 {
entry:
  n = load r0 8
  h = mod r1 n
  o = mul h 8
  ha = add r0 16
  ba = add ha o
  cur = load ba 0
  jmp scan
scan:
  c = eq cur 0
  br c miss check
check:
  k = load cur 0
  e = eq k r1
  br e hit next
next:
  cur = load cur 16
  jmp scan
hit:
  v = load cur 8
  ret 1 v
miss:
  ret 0 0
}
`

// Compile parses and compiles the whole kernel program.
func Compile(cfg compile.Config) (*compile.Compiled, error) {
	prog, err := ir.Parse(Source)
	if err != nil {
		return nil, fmt.Errorf("irprog: %w", err)
	}
	return compile.Program(prog, cfg)
}

// NewStack lays out a stack header in reg and returns its address.
func NewStack(reg *region.Region, lm *locks.Manager) (uint64, error) {
	l, err := lm.Create()
	if err != nil {
		return 0, err
	}
	hdr, err := reg.Alloc.Alloc(16)
	if err != nil {
		return 0, err
	}
	reg.Dev.Store64(hdr, l.Holder())
	reg.Dev.Store64(hdr+8, 0)
	reg.Dev.PersistRange(hdr, 16)
	reg.Dev.Fence()
	return hdr, nil
}

// NewQueue lays out a two-lock queue with its dummy node.
func NewQueue(reg *region.Region, lm *locks.Manager) (uint64, error) {
	hl, err := lm.Create()
	if err != nil {
		return 0, err
	}
	tl, err := lm.Create()
	if err != nil {
		return 0, err
	}
	hdr, err := reg.Alloc.Alloc(32)
	if err != nil {
		return 0, err
	}
	dummy, err := reg.Alloc.Alloc(16)
	if err != nil {
		return 0, err
	}
	dev := reg.Dev
	dev.Store64(dummy, 0)
	dev.Store64(dummy+8, 0)
	dev.Store64(hdr, hl.Holder())
	dev.Store64(hdr+8, tl.Holder())
	dev.Store64(hdr+16, dummy)
	dev.Store64(hdr+24, dummy)
	dev.PersistRange(dummy, 16)
	dev.PersistRange(hdr, 32)
	dev.Fence()
	return hdr, nil
}

// NewList lays out an ordered-list sentinel header node.
func NewList(reg *region.Region, lm *locks.Manager) (uint64, error) {
	l, err := lm.Create()
	if err != nil {
		return 0, err
	}
	hdr, err := reg.Alloc.Alloc(32)
	if err != nil {
		return 0, err
	}
	dev := reg.Dev
	dev.Store64(hdr, 0)
	dev.Store64(hdr+8, 0)
	dev.Store64(hdr+16, 0)
	dev.Store64(hdr+24, l.Holder())
	dev.PersistRange(hdr, 32)
	dev.Fence()
	return hdr, nil
}

// NewMap lays out a hash map of n ordered-list buckets.
func NewMap(reg *region.Region, lm *locks.Manager, n int) (uint64, error) {
	hdr, err := reg.Alloc.Alloc(8 + n*8)
	if err != nil {
		return 0, err
	}
	dev := reg.Dev
	dev.Store64(hdr, uint64(n))
	for i := 0; i < n; i++ {
		b, err := NewList(reg, lm)
		if err != nil {
			return 0, err
		}
		dev.Store64(hdr+8+uint64(i)*8, b)
	}
	dev.PersistRange(hdr, uint64(8+n*8))
	dev.Fence()
	return hdr, nil
}

// NewKVTable lays out a coarse-locked chained table (mc_*) with n
// buckets; pass withLock=false for the redis_* variant (single-threaded,
// durable regions).
func NewKVTable(reg *region.Region, lm *locks.Manager, n int, withLock bool) (uint64, error) {
	hdr, err := reg.Alloc.Alloc(16 + n*8)
	if err != nil {
		return 0, err
	}
	dev := reg.Dev
	holder := uint64(0)
	if withLock {
		l, err := lm.Create()
		if err != nil {
			return 0, err
		}
		holder = l.Holder()
	}
	dev.Store64(hdr, holder)
	dev.Store64(hdr+8, uint64(n))
	for i := 0; i < n; i++ {
		dev.Store64(hdr+16+uint64(i)*8, 0)
	}
	dev.PersistRange(hdr, uint64(16+n*8))
	dev.Fence()
	return hdr, nil
}
