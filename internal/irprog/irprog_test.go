package irprog

import (
	"math/rand"
	"testing"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/vm"
)

type world struct {
	reg  *region.Region
	lm   *locks.Manager
	m    *vm.Machine
	prog *compile.Compiled
}

func build(t *testing.T, mode vm.Mode) *world {
	t.Helper()
	prog, err := Compile(compile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := region.Create(1<<23, nvm.Config{})
	lm := locks.NewManager(reg)
	return &world{reg: reg, lm: lm, m: vm.New(reg, lm, prog, mode), prog: prog}
}

func (w *world) reopen(t *testing.T, cm nvm.CrashMode, rng *rand.Rand, mode vm.Mode) *world {
	t.Helper()
	reg2, err := w.reg.Crash(cm, rng)
	if err != nil {
		t.Fatal(err)
	}
	lm2 := locks.NewManager(reg2)
	return &world{reg: reg2, lm: lm2, m: vm.New(reg2, lm2, w.prog, mode), prog: w.prog}
}

func call(t *testing.T, th *vm.Thread, fn string, args ...uint64) []uint64 {
	t.Helper()
	rets, err := th.Call(fn, args...)
	if err != nil {
		t.Fatalf("%s: %v", fn, err)
	}
	return rets
}

func TestAllKernelsCompile(t *testing.T) {
	c, err := Compile(compile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"stack_push", "stack_pop", "queue_enq", "queue_deq",
		"list_insert", "list_get", "map_put", "map_get",
		"mc_set", "mc_get", "redis_set", "redis_get"} {
		cf, ok := c.Funcs[fn]
		if !ok {
			t.Fatalf("missing kernel %s", fn)
		}
		if fn != "redis_get" && !cf.HasFASEs {
			t.Fatalf("%s has no FASEs", fn)
		}
	}
	if len(c.Resolve) < 30 {
		t.Fatalf("suspiciously few regions: %d", len(c.Resolve))
	}
}

func TestStackSemantics(t *testing.T) {
	w := build(t, vm.ModeIDO)
	stk, err := NewStack(w.reg, w.lm)
	if err != nil {
		t.Fatal(err)
	}
	th, _ := w.m.NewThread()
	for i := 1; i <= 5; i++ {
		call(t, th, "stack_push", stk, uint64(i))
	}
	for i := 5; i >= 1; i-- {
		top := call(t, th, "stack_pop", stk)[0]
		if v := w.reg.Dev.Load64(top); v != uint64(i) {
			t.Fatalf("pop got %d, want %d", v, i)
		}
	}
	if top := call(t, th, "stack_pop", stk)[0]; top != 0 {
		t.Fatalf("pop from empty = %#x", top)
	}
}

func TestQueueSemantics(t *testing.T) {
	w := build(t, vm.ModeIDO)
	q, err := NewQueue(w.reg, w.lm)
	if err != nil {
		t.Fatal(err)
	}
	th, _ := w.m.NewThread()
	for i := 1; i <= 5; i++ {
		call(t, th, "queue_enq", q, uint64(i*10))
	}
	for i := 1; i <= 5; i++ {
		r := call(t, th, "queue_deq", q)
		if r[0] != 1 || r[1] != uint64(i*10) {
			t.Fatalf("deq = %v, want [1 %d]", r, i*10)
		}
	}
	if r := call(t, th, "queue_deq", q); r[0] != 0 {
		t.Fatalf("deq from empty = %v", r)
	}
}

func TestListSemantics(t *testing.T) {
	w := build(t, vm.ModeIDO)
	lst, err := NewList(w.reg, w.lm)
	if err != nil {
		t.Fatal(err)
	}
	th, _ := w.m.NewThread()
	keys := []uint64{30, 10, 20, 40, 10}
	for i, k := range keys {
		call(t, th, "list_insert", lst, k, uint64(i+100))
	}
	// 10 was updated to 104.
	for _, c := range []struct{ k, ok, v uint64 }{
		{10, 1, 104}, {20, 1, 102}, {30, 1, 100}, {40, 1, 103}, {25, 0, 0},
	} {
		r := call(t, th, "list_get", lst, c.k)
		if r[0] != c.ok || r[1] != c.v {
			t.Fatalf("get(%d) = %v, want [%d %d]", c.k, r, c.ok, c.v)
		}
	}
	// Verify sortedness by walking.
	prev := uint64(0)
	for cur := w.reg.Dev.Load64(lst + 16); cur != 0; cur = w.reg.Dev.Load64(cur + 16) {
		k := w.reg.Dev.Load64(cur)
		if k <= prev {
			t.Fatalf("list not sorted: %d after %d", k, prev)
		}
		prev = k
	}
}

func TestMapSemantics(t *testing.T) {
	w := build(t, vm.ModeIDO)
	mp, err := NewMap(w.reg, w.lm, 4)
	if err != nil {
		t.Fatal(err)
	}
	th, _ := w.m.NewThread()
	for k := uint64(1); k <= 40; k++ {
		call(t, th, "map_put", mp, k, k*3)
	}
	for k := uint64(1); k <= 40; k++ {
		r := call(t, th, "map_get", mp, k)
		if r[0] != 1 || r[1] != k*3 {
			t.Fatalf("get(%d) = %v", k, r)
		}
	}
	if r := call(t, th, "map_get", mp, 999); r[0] != 0 {
		t.Fatalf("get(999) = %v", r)
	}
}

func TestKVSemantics(t *testing.T) {
	w := build(t, vm.ModeIDO)
	mc, err := NewKVTable(w.reg, w.lm, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewKVTable(w.reg, w.lm, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	th, _ := w.m.NewThread()
	for k := uint64(1); k <= 30; k++ {
		call(t, th, "mc_set", mc, k, k+1000)
		call(t, th, "redis_set", rd, k, k+2000)
	}
	call(t, th, "mc_set", mc, 7, 777)
	call(t, th, "redis_set", rd, 7, 7777)
	if r := call(t, th, "mc_get", mc, 7); r[0] != 1 || r[1] != 777 {
		t.Fatalf("mc_get(7) = %v", r)
	}
	if r := call(t, th, "redis_get", rd, 7); r[0] != 1 || r[1] != 7777 {
		t.Fatalf("redis_get(7) = %v", r)
	}
	if r := call(t, th, "mc_get", mc, 999); r[0] != 0 {
		t.Fatalf("mc_get(999) = %v", r)
	}
}

// checkList verifies list structure and returns the key->value contents.
func checkList(t *testing.T, reg *region.Region, lst uint64) map[uint64]uint64 {
	t.Helper()
	out := map[uint64]uint64{}
	prev := uint64(0)
	for cur := reg.Dev.Load64(lst + 16); cur != 0; cur = reg.Dev.Load64(cur + 16) {
		k := reg.Dev.Load64(cur)
		if k <= prev {
			t.Fatalf("list unsorted: %d after %d", k, prev)
		}
		prev = k
		out[k] = reg.Dev.Load64(cur + 8)
	}
	return out
}

// TestListCrashFuzz inserts keys with random crash injection and checks
// that, post recovery, the list is sorted and contains exactly the
// completed inserts (plus the resumed one).
func TestListCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		w := build(t, vm.ModeIDO)
		lst, err := NewList(w.reg, w.lm)
		if err != nil {
			t.Fatal(err)
		}
		w.reg.SetRoot(1, lst)
		th, _ := w.m.NewThread()
		keys := []uint64{50, 10, 30, 20, 40}
		w.m.SetCrashBudget(int64(rng.Intn(400)))
		done := map[uint64]bool{}
		crashed := false
		for _, k := range keys {
			if _, err := th.Call("list_insert", lst, k, k+1); err != nil {
				crashed = true
				break
			}
			done[k] = true
		}
		w.m.SetCrashBudget(-1)
		mode := nvm.CrashMode(rng.Intn(3))
		w2 := w.reopen(t, mode, rng, vm.ModeIDO)
		stats, err := w2.m.Recover()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := checkList(t, w2.reg, w2.reg.Root(1))
		for k := range done {
			if got[k] != k+1 {
				t.Fatalf("trial %d: completed insert %d lost (got %v)", trial, k, got)
			}
		}
		// At most one extra key (the resumed insert).
		if len(got) > len(done)+1 {
			t.Fatalf("trial %d: spurious keys: %v vs %d done", trial, got, len(done))
		}
		if !crashed && len(got) != len(done) {
			t.Fatalf("trial %d: clean run mismatch", trial)
		}
		_ = stats
	}
}

// TestQueueCrashFuzz enqueues with crash injection; after recovery the
// queue must contain a prefix (completed) possibly plus the resumed one,
// in FIFO order.
func TestQueueCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		w := build(t, vm.ModeIDO)
		q, err := NewQueue(w.reg, w.lm)
		if err != nil {
			t.Fatal(err)
		}
		w.reg.SetRoot(1, q)
		th, _ := w.m.NewThread()
		w.m.SetCrashBudget(int64(rng.Intn(250)))
		enq := 0
		for i := 1; i <= 5; i++ {
			if _, err := th.Call("queue_enq", q, uint64(i)); err != nil {
				break
			}
			enq = i
		}
		w.m.SetCrashBudget(-1)
		w2 := w.reopen(t, nvm.CrashRandom, rng, vm.ModeIDO)
		if _, err := w2.m.Recover(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Drain and verify FIFO 1..k with k >= enq.
		q2 := w2.reg.Root(1)
		th2, _ := w2.m.NewThread()
		want := uint64(1)
		for {
			r := call(t, th2, "queue_deq", q2)
			if r[0] == 0 {
				break
			}
			if r[1] != want {
				t.Fatalf("trial %d: FIFO broken: got %d, want %d", trial, r[1], want)
			}
			want++
		}
		if int(want-1) < enq {
			t.Fatalf("trial %d: completed enqueues lost: %d < %d", trial, want-1, enq)
		}
	}
}

// TestMapConcurrentCrashFuzz runs several VM threads on the hash map,
// crashes them all, recovers, and checks every completed put survived.
func TestMapConcurrentCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		w := build(t, vm.ModeIDO)
		mp, err := NewMap(w.reg, w.lm, 4)
		if err != nil {
			t.Fatal(err)
		}
		w.reg.SetRoot(1, mp)
		const workers = 4
		type result struct{ done []uint64 }
		results := make([]result, workers)
		w.m.SetCrashBudget(int64(200 + rng.Intn(1500)))
		doneCh := make(chan int, workers)
		for g := 0; g < workers; g++ {
			th, err := w.m.NewThread()
			if err != nil {
				t.Fatal(err)
			}
			go func(g int, th *vm.Thread) {
				defer func() { doneCh <- g }()
				for i := 0; i < 10; i++ {
					k := uint64(g*100 + i + 1)
					if _, err := th.Call("map_put", mp, k, k*2); err != nil {
						return
					}
					results[g].done = append(results[g].done, k)
				}
			}(g, th)
		}
		for g := 0; g < workers; g++ {
			<-doneCh
		}
		w.m.SetCrashBudget(-1)
		w2 := w.reopen(t, nvm.CrashRandom, rng, vm.ModeIDO)
		if _, err := w2.m.Recover(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mp2 := w2.reg.Root(1)
		th2, _ := w2.m.NewThread()
		for g := 0; g < workers; g++ {
			for _, k := range results[g].done {
				r := call(t, th2, "map_get", mp2, k)
				if r[0] != 1 || r[1] != k*2 {
					t.Fatalf("trial %d: completed put %d lost: %v", trial, k, r)
				}
			}
		}
	}
}

// TestRedisDurableCrashFuzz crashes redis_set mid-FASE and verifies the
// durable-region recovery completes or cleanly excludes the update.
func TestRedisDurableCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for budget := int64(0); budget < 120; budget += 3 {
		w := build(t, vm.ModeIDO)
		rd, err := NewKVTable(w.reg, w.lm, 4, false)
		if err != nil {
			t.Fatal(err)
		}
		w.reg.SetRoot(1, rd)
		th, _ := w.m.NewThread()
		call(t, th, "redis_set", rd, 5, 50)
		w.m.SetCrashBudget(budget)
		_, callErr := th.Call("redis_set", rd, 5, 51)
		w.m.SetCrashBudget(-1)
		w2 := w.reopen(t, nvm.CrashRandom, rng, vm.ModeIDO)
		stats, err := w2.m.Recover()
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		th2, _ := w2.m.NewThread()
		r := call(t, th2, "redis_get", w2.reg.Root(1), 5)
		if r[0] != 1 || (r[1] != 50 && r[1] != 51) {
			t.Fatalf("budget %d: get = %v", budget, r)
		}
		if (callErr == nil || stats.Resumed > 0) && r[1] != 51 {
			t.Fatalf("budget %d: update lost after completion/resumption", budget)
		}
	}
}

// TestFig8StatisticsShape validates the paper's Fig. 8 qualitative claims
// on the VM statistics: microbenchmark regions mostly have <= 1 store,
// and nearly all regions log fewer than 5 registers.
func TestFig8StatisticsShape(t *testing.T) {
	w := build(t, vm.ModeIDO)
	stk, _ := NewStack(w.reg, w.lm)
	lst, _ := NewList(w.reg, w.lm)
	th, _ := w.m.NewThread()
	for i := 1; i <= 200; i++ {
		call(t, th, "stack_push", stk, uint64(i))
		call(t, th, "list_insert", lst, uint64(i*7%97+1), uint64(i))
		if i%2 == 0 {
			call(t, th, "stack_pop", stk)
			call(t, th, "list_get", lst, uint64(i*5%97+1))
		}
	}
	s := w.m.Stats()
	if s.Regions == 0 {
		t.Fatal("no regions recorded")
	}
	zeroOrOne := s.StoresPerRegion[0] + s.StoresPerRegion[1]
	var all uint64
	for _, c := range s.StoresPerRegion {
		all += c
	}
	if zeroOrOne*10 < all*7 {
		t.Fatalf("microbenchmark regions with 0-1 stores = %d of %d (<70%%)", zeroOrOne, all)
	}
	var le4, total uint64
	for i, c := range s.OutputsPerRegion {
		total += c
		if i < 5 {
			le4 += c
		}
	}
	if le4*100 < total*90 {
		t.Fatalf("regions logging <5 registers = %d of %d (<90%%)", le4, total)
	}
}

// TestMCSetCrashFuzz validates the memcached kernel under crash
// injection: after recovery the table is well formed and every completed
// set is visible.
func TestMCSetCrashFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		w := build(t, vm.ModeIDO)
		tb, err := NewKVTable(w.reg, w.lm, 8, true)
		if err != nil {
			t.Fatal(err)
		}
		w.reg.SetRoot(1, tb)
		th, _ := w.m.NewThread()
		w.m.SetCrashBudget(int64(rng.Intn(800)))
		done := map[uint64]uint64{}
		for i := 0; i < 15; i++ {
			k := uint64(rng.Intn(8) + 1)
			v := uint64(i + 100)
			if _, err := th.Call("mc_set", tb, k, v); err != nil {
				break
			}
			done[k] = v
		}
		w.m.SetCrashBudget(-1)
		w2 := w.reopen(t, nvm.CrashMode(rng.Intn(3)), rng, vm.ModeIDO)
		if _, err := w2.m.Recover(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tb2 := w2.reg.Root(1)
		th2, _ := w2.m.NewThread()
		for k, v := range done {
			r := call(t, th2, "mc_get", tb2, k)
			if r[0] != 1 || (r[1] != v && done[k] == v) {
				// The in-flight set may have updated k after `done`
				// recorded it; accept any later value for that one key,
				// but a completed set must never be lost entirely.
				if r[0] != 1 {
					t.Fatalf("trial %d: completed set(%d) lost", trial, k)
				}
			}
		}
	}
}

// TestRedisSetCrashFuzzJUSTDO exercises the VM's JUSTDO recovery on the
// redis kernel under the persistent-cache crash model it assumes.
func TestRedisSetCrashFuzzJUSTDO(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 25; trial++ {
		w := build(t, vm.ModeJUSTDO)
		tb, err := NewKVTable(w.reg, w.lm, 8, false)
		if err != nil {
			t.Fatal(err)
		}
		w.reg.SetRoot(1, tb)
		th, _ := w.m.NewThread()
		w.m.SetCrashBudget(int64(rng.Intn(1500)))
		count := 0
		for i := 0; i < 12; i++ {
			k := uint64(i + 1)
			if _, err := th.Call("redis_set", tb, k, k*5); err != nil {
				break
			}
			count = i + 1
		}
		w.m.SetCrashBudget(-1)
		w2 := w.reopen(t, nvm.CrashPersistAll, nil, vm.ModeJUSTDO)
		if _, err := w2.m.Recover(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tb2 := w2.reg.Root(1)
		th2, _ := w2.m.NewThread()
		for k := uint64(1); k <= uint64(count); k++ {
			r := call(t, th2, "redis_get", tb2, k)
			if r[0] != 1 || r[1] != k*5 {
				t.Fatalf("trial %d: completed set(%d) = %v", trial, k, r)
			}
		}
	}
}

// TestRegionFormationGolden pins the exact region counts the compiler
// produces for the benchmark kernels, guarding against silent regressions
// in the cutting algorithm (numbers change only when the algorithm or
// the kernels deliberately change).
func TestRegionFormationGolden(t *testing.T) {
	c, err := Compile(compile.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"stack_push":  3, // post-acquire, antidep publish, pre-release
		"stack_pop":   3, // ditto (the empty path shares the release cut)
		"queue_enq":   4, // post-acquire is split across both br targets
		"queue_deq":   4,
		"list_insert": 11, // per-hop check/advance + four exit paths
		"list_get":    9,
		"map_put":     11,
		"map_get":     9,
		"mc_set":      5,
		"mc_get":      3,
		"redis_set":   5,
		"redis_get":   0, // no FASE: reads run uninstrumented
	}
	for fn, wantN := range want {
		cf := c.Funcs[fn]
		if cf == nil {
			t.Fatalf("missing %s", fn)
		}
		if got := len(cf.Regions); got != wantN {
			t.Errorf("%s: %d regions, want %d\n%s", fn, got, wantN, cf.F)
		}
	}
}
