package nvm

import (
	"math/rand"
	"sync"
	"testing"
)

// TestDeviceConcurrentHammer drives the per-line lock discipline from 16
// goroutines issuing every hot-path operation over a shared address range
// while a disruptor concurrently crashes, drains, and snapshots the
// device. It asserts no invariant breaks and that the device is still
// coherent afterwards; its real teeth are under `go test -race`, where the
// build swaps in wordops_race.go and the race detector checks that every
// word and counter access is ordered by a line lock or is genuinely
// lock-free by design.
func TestDeviceConcurrentHammer(t *testing.T) {
	const (
		workers = 16
		iters   = 2000
		size    = 1 << 18 // 4096 lines, enough for real line conflicts
	)
	d := New(Config{Size: size, EvictionRate: 64})
	limit := uint64(size)

	stop := make(chan struct{})
	var workersWG, disruptorWG sync.WaitGroup

	// Disruptor: whole-device operations racing against the workers.
	disruptorWG.Add(1)
	go func() {
		defer disruptorWG.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 5 {
			case 0:
				d.Crash(CrashRandom, rng)
			case 1:
				d.Crash(CrashDiscard, nil)
			case 2:
				d.DrainCache()
			case 3:
				img := d.SnapshotPersistent()
				d.RestorePersistent(img)
			case 4:
				_ = d.Stats()
			}
		}
	}()

	for g := 0; g < workers; g++ {
		workersWG.Add(1)
		go func(seed int64) {
			defer workersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]uint64, 4*wordsPerLine)
			for i := 0; i < iters; i++ {
				addr := (rng.Uint64() % (limit - uint64(len(buf))*WordSize)) &^ (WordSize - 1)
				switch i % 8 {
				case 0:
					d.Store64(addr, rng.Uint64())
				case 1:
					_ = d.Load64(addr)
				case 2:
					d.CLWB(addr)
					d.Fence()
				case 3:
					d.ReadWords(addr, buf)
				case 4:
					d.WriteWords(addr, buf)
				case 5:
					d.WriteWordsNT(addr, buf[:wordsPerLine])
				case 6:
					d.StoreNT(addr, rng.Uint64())
				case 7:
					d.PersistRange(addr, 2*LineSize)
				}
			}
		}(int64(g + 1))
	}

	workersWG.Wait()
	close(stop)
	disruptorWG.Wait()

	// Post-mortem coherence: every line's state word must be unlocked and
	// honor dirty ⊆ valid.
	for li := range d.state {
		st := d.state[li].Load()
		if st&lineLock != 0 {
			t.Fatalf("line %d left locked: state %#x", li, st)
		}
		valid := st >> validShift & laneMask
		dirty := st >> dirtyShift & laneMask
		if dirty&^valid != 0 {
			t.Fatalf("line %d dirty bits outside valid: state %#x", li, st)
		}
	}

	// The device must still work: a store/flush/fence/crash round trip
	// persists exactly as in the single-threaded contract.
	d.Store64(512, 0xDEADBEEF)
	d.CLWB(512)
	d.Fence()
	d.Crash(CrashDiscard, nil)
	if got := d.Load64(512); got != 0xDEADBEEF {
		t.Fatalf("flushed store lost after hammer: got %#x", got)
	}
}

// TestDeviceConcurrentDisjoint checks value integrity, not just memory
// safety: 16 goroutines each own a disjoint window, store tagged values,
// persist them, and read them back while neighbors hammer their own
// windows. Per-line locking must never let one goroutine's traffic bleed
// into another's lines.
func TestDeviceConcurrentDisjoint(t *testing.T) {
	const (
		workers     = 16
		linesPerG   = 64
		windowBytes = linesPerG * LineSize
	)
	d := New(Config{Size: workers * windowBytes})

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g uint64) {
			defer wg.Done()
			base := g * windowBytes
			for i := uint64(0); i < windowBytes/WordSize; i++ {
				a := base + i*WordSize
				d.Store64(a, g<<32|i)
			}
			d.PersistRange(base, windowBytes)
			d.Fence()
			for i := uint64(0); i < windowBytes/WordSize; i++ {
				a := base + i*WordSize
				if got, want := d.Load64(a), g<<32|i; got != want {
					t.Errorf("goroutine %d: word %d = %#x, want %#x", g, i, got, want)
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Everything was persisted before the fence, so a discard crash must
	// lose nothing.
	d.Crash(CrashDiscard, nil)
	for g := uint64(0); g < workers; g++ {
		for i := uint64(0); i < windowBytes/WordSize; i++ {
			a := g*windowBytes + i*WordSize
			if got, want := d.Load64(a), g<<32|i; got != want {
				t.Fatalf("after crash: goroutine %d word %d = %#x, want %#x", g, i, got, want)
			}
		}
	}
}
