// Package nvm simulates a byte-addressable nonvolatile memory device that
// sits behind a volatile CPU cache, following the system model of the iDO
// paper (MICRO 2018, §II-A): ordinary loads and stores hit a volatile cache
// whose lines are written back to the persistence domain in arbitrary order;
// programs enforce ordering with explicit write-back (CLWB) and persist
// fence (Fence) operations; writes are atomic at 8-byte granularity.
//
// A crash (Crash) discards all volatile state. Depending on the crash mode,
// dirty cache words may be lost, fully written back, or adversarially
// written back word-by-word at random — the strongest failure adversary
// consistent with 8-byte write atomicity.
//
// The device also implements the paper's NVM-latency sensitivity knob
// (§V-E): a configurable extra delay charged after each write-back and
// after each non-temporal store, emulated with a calibrated spin loop just
// as Mnemosyne and Atlas emulate it with nop loops.
//
// # Hot-path architecture
//
// The cache is a flat line table preallocated at New: three arrays indexed
// directly by word or line number — words (the persistence domain), cached
// (the volatile copies), and one state word per line packing the line's
// valid bitmask, dirty bitmask, and a spinlock bit. There are no maps, no
// allocation after New, and no locks shared between lines, so simulated
// memory traffic from different threads only meets where real cache lines
// would (see README.md in this directory for the locking discipline and
// the argument that crash semantics are unchanged).
//
// Loads are lock-free: one atomic read of the line state picks the cached
// or the persistent copy. Stores take only their own line's lock bit.
// Event counters are striped across padded per-goroutine-ish slots and
// summed lazily by Stats.
package nvm

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"unsafe"

	"github.com/ido-nvm/ido/internal/obs"
)

// LineSize is the cache line size in bytes.
const LineSize = 64

// WordSize is the atomic write granularity in bytes (§II-A).
const WordSize = 8

const (
	wordsPerLine = LineSize / WordSize
	lineShift    = 6 // log2(LineSize)
	wordShift    = 3 // log2(WordSize)
)

// Per-line state word layout. Bits 0–7 are the valid mask (word i of the
// line has a cached copy), bits 8–15 the dirty mask (cached copy not yet
// written back), bit 16 the line spinlock. dirty ⊆ valid always holds.
const (
	validShift = 0
	dirtyShift = 8
	laneMask   = 0xFF
	lineLock   = 1 << 16
)

// Config parameterizes a simulated device.
type Config struct {
	// Size is the device capacity in bytes. It is rounded up to a whole
	// number of cache lines. Must be > 0.
	Size int

	// Shards is obsolete: the cache is a flat per-line-locked table and
	// no longer shards. The field is retained so old configurations keep
	// compiling; its value is ignored.
	Shards int

	// FlushNS is the base cost, in nanoseconds, of one cache-line
	// write-back (clwb/clflush reaching the memory controller).
	FlushNS int

	// FenceNS is the base cost of one persist fence (sfence waiting for
	// outstanding write-backs).
	FenceNS int

	// NTStoreNS is the base cost of one non-temporal store.
	NTStoreNS int

	// ExtraNS is the additional NVM write latency charged after each
	// write-back and each non-temporal store. This is the knob swept in
	// the paper's Fig. 9 (20–2000 ns).
	ExtraNS int

	// EvictionRate, if nonzero, makes roughly one in EvictionRate stores
	// spontaneously write back a random dirty line, modeling capacity
	// evictions that persist data the program never flushed. Used by
	// correctness tests; leave zero for benchmarks.
	EvictionRate int

	// Tracer, if non-nil, is attached before the device services its
	// first operation, so every persistence event — including region
	// formatting — is traced and trace counts equal Stats exactly.
	// SetTracer can attach or swap one later, but operations performed
	// in the meantime are counted yet untraced.
	Tracer *obs.Tracer

	// GroupCommit configures the cross-thread flush/fence combiner
	// (see groupcommit.go). Disabled by default; when disabled,
	// PersistBatch and FenceBatch are exactly FlushLines+Fence and
	// Fence.
	GroupCommit GroupCommitConfig
}

// CrashMode selects what happens to dirty (unflushed) cache words when the
// device crashes.
type CrashMode int

const (
	// CrashDiscard drops every dirty word: nothing unflushed survives.
	CrashDiscard CrashMode = iota
	// CrashRandom independently persists or drops each dirty word with
	// probability 1/2 — arbitrary-order write-back at 8-byte atomicity.
	CrashRandom
	// CrashPersistAll writes every dirty word back before dying, as if
	// the whole cache were flushed by a residual-energy mechanism.
	CrashPersistAll
)

func (m CrashMode) String() string {
	switch m {
	case CrashDiscard:
		return "discard"
	case CrashRandom:
		return "random"
	case CrashPersistAll:
		return "persist-all"
	default:
		return fmt.Sprintf("CrashMode(%d)", int(m))
	}
}

// Stats reports cumulative event counts for a device.
type Stats struct {
	Loads     uint64 // Load64 calls
	Stores    uint64 // Store64 calls
	NTStores  uint64 // StoreNT calls
	Flushes   uint64 // CLWB calls
	Fences    uint64 // Fence calls
	Evictions uint64 // spontaneous write-backs
	Crashes   uint64 // Crash calls
}

// Counter indices within a statStripe.
const (
	statLoads = iota
	statStores
	statNTStores
	statFlushes
	statFences
	statEvictions
	statCrashes
	statEvents
)

// statStripe is one padded slot of the sharded event counters: seven
// counters plus padding so two stripes never share a cache line.
type statStripe struct {
	n [statEvents]uint64
	_ [64 - statEvents*8%64]byte
}

// nStripes is the number of counter/RNG stripes. Power of two.
const nStripes = 64

// evictStripe is one padded lock-free eviction-sampling RNG (xorshift64).
type evictStripe struct {
	x uint64
	_ [56]byte
}

// Device is a simulated NVM DIMM plus the volatile cache in front of it.
// All exported methods are safe for concurrent use.
type Device struct {
	cfg   Config
	limit uint64 // capacity in bytes

	// The flat line table: words is the persistence domain, cached the
	// volatile copies, state one lock/valid/dirty word per line. words
	// and cached are indexed by word number (addr/8), state by line
	// number (addr/64). All three are fully allocated at New.
	words  []uint64
	cached []uint64
	state  []atomic.Uint64

	stripes [nStripes]statStripe
	evict   [nStripes]evictStripe

	extraNS atomic.Int64 // runtime-adjustable copy of cfg.ExtraNS

	// trc is the attached persist-event tracer, nil when tracing is off.
	// Each persistence operation (write-back, fence, NT store, eviction,
	// crash) emits exactly one obs event alongside its stat count, so a
	// trace's per-kind event counts always equal Stats deltas. Loads and
	// stores are deliberately not traced: they are the simulation's
	// hottest path and the paper's argument is about persist events.
	trc atomic.Pointer[obs.Tracer]

	// fenceTok serializes persist fences device-wide: a fence holds the
	// token while its drain spin runs, modeling the memory controller
	// draining one write queue. Concurrent fences from different
	// threads therefore queue — the contention the group-commit
	// combiner (gc, nil when disabled) exists to amortize.
	fenceTok atomic.Uint32
	gc       *combiner

	// tick is the commit-ticket export (ticket.go): a fence-drain
	// sequence number plus waiter parking, used by lock-free readers to
	// wait for in-flight commits without fencing themselves.
	tick ticketing

	// linj is device-scoped crash injection (inject_local.go), checked
	// by every event hook after the global state.
	linj localInject
}

// SetTracer attaches (or, with nil, detaches) a persist-event tracer.
// Attach while the device is quiescent; the hot paths read the pointer
// with a single atomic load.
func (d *Device) SetTracer(tr *obs.Tracer) { d.trc.Store(tr) }

// Tracer returns the attached tracer, or nil. Runtimes use this to hang
// their own per-thread event rings off the same timeline.
func (d *Device) Tracer() *obs.Tracer { return d.trc.Load() }

// New creates a device. It panics if cfg.Size <= 0.
func New(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("nvm: Config.Size must be positive")
	}
	lines := (cfg.Size + LineSize - 1) / LineSize
	d := &Device{
		cfg:    cfg,
		limit:  uint64(lines) * LineSize,
		words:  make([]uint64, lines*wordsPerLine),
		cached: make([]uint64, lines*wordsPerLine),
		state:  make([]atomic.Uint64, lines),
	}
	seed := uint64(0x1D0)
	for i := range d.evict {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		z ^= z >> 31
		if z == 0 {
			z = 1 // xorshift state must be nonzero
		}
		d.evict[i].x = z
	}
	d.extraNS.Store(int64(cfg.ExtraNS))
	d.tick.init()
	d.trc.Store(cfg.Tracer)
	if cfg.GroupCommit.Enabled {
		d.gc = newCombiner(cfg.GroupCommit)
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int { return int(d.limit) }

// SetExtraLatency changes the added NVM write latency (ns) at run time.
// Used by the Fig. 9 sensitivity sweep.
func (d *Device) SetExtraLatency(ns int) { d.extraNS.Store(int64(ns)) }

// ExtraLatency returns the current added NVM write latency in ns.
func (d *Device) ExtraLatency() int { return int(d.extraNS.Load()) }

// checkAddr validates alignment and bounds with a single combined branch;
// the panics live in a cold, noinline function so the check inlines into
// every hot path.
func (d *Device) checkAddr(addr uint64) {
	if addr&(WordSize-1) != 0 || addr >= d.limit {
		d.addrFault(addr)
	}
}

//go:noinline
func (d *Device) addrFault(addr uint64) {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("nvm: misaligned address %#x", addr))
	}
	panic(fmt.Sprintf("nvm: address %#x out of range (size %#x)", addr, d.Size()))
}

// count adds n to one event counter on this goroutine's stripe. The
// stripe index is derived from the caller's stack pointer, which is
// stable enough to keep goroutines on distinct stripes without any
// registration. Totals are exact for single-threaded histories; see
// wordops.go for the concurrent-counting contract.
func (d *Device) count(ev int, n uint64) {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe))) * 0x9E3779B97F4A7C15
	addCounter(&d.stripes[h>>58].n[ev], n)
}

// lockLine acquires line li's spinlock via test-and-set and returns the
// observed state (lock bit set). Only the lock holder may mutate the
// line's cached words or its valid/dirty masks, so the holder releases
// by storing the complete new state word. The loop is crash-aware:
// waiters die once an injected crash has fired, mirroring the lock-spin
// behavior documented in inject.go.
//
// Acquisition is spelled Load+CompareAndSwap rather than the tidier
// s.Or(lineLock): go1.24.0/amd64 lowers value-returning atomic Or to a
// CMPXCHG loop whose scratch register is not modeled as clobbered, so
// the allocator may park a live pointer there — with d needed across
// the intrinsic for the crash check below, the spin then dereferenced
// a state word as d and segfaulted under lock contention.
func (d *Device) lockLine(li uint64) uint64 {
	s := &d.state[li]
	for i := 0; ; i++ {
		if st := s.Load(); st&lineLock == 0 && s.CompareAndSwap(st, st|lineLock) {
			return st | lineLock
		}
		// Spin on plain loads until the lock looks free; on a
		// single-P schedule the holder needs the processor to make
		// progress, so yield periodically.
		for s.Load()&lineLock != 0 {
			i++
			if i&63 == 0 {
				if d.anyCrashFired() {
					panic(CrashSignal{})
				}
				runtime.Gosched()
			}
		}
	}
}

// unlockLine publishes st (computed by the holder, lock bit clear) as the
// line's new state.
func (d *Device) unlockLine(li, st uint64) {
	d.state[li].Store(st &^ lineLock)
}

// Store64 writes an 8-byte word into the volatile cache.
func (d *Device) Store64(addr, val uint64) {
	d.crashTick()
	d.checkAddr(addr)
	d.count(statStores, 1)
	w := addr >> wordShift
	li := addr >> lineShift
	wi := w & (wordsPerLine - 1)
	st := d.lockLine(li)
	storeWord(&d.cached[w], val)
	d.unlockLine(li, st|1<<(validShift+wi)|1<<(dirtyShift+wi))
	if r := d.cfg.EvictionRate; r > 0 {
		d.maybeEvict(li, r)
	}
}

// Load64 reads an 8-byte word, observing the cache first. The read is
// lock-free: one atomic read of the line state selects the cached or the
// persistent copy, and a load racing a store to the same word returns
// either the old or the new value — exactly the guarantee 8-byte-atomic
// hardware gives two unsynchronized threads.
func (d *Device) Load64(addr uint64) uint64 {
	d.crashTick()
	d.checkAddr(addr)
	d.count(statLoads, 1)
	w := addr >> wordShift
	wi := w & (wordsPerLine - 1)
	if d.state[addr>>lineShift].Load()&(1<<(validShift+wi)) != 0 {
		return loadWord(&d.cached[w])
	}
	return loadWord(&d.words[w])
}

// StoreNT performs a non-temporal store: the word goes straight to the
// persistence domain, bypassing (and invalidating in) the cache. Ordering
// with respect to later stores still requires a Fence.
func (d *Device) StoreNT(addr, val uint64) {
	d.crashTick()
	d.checkAddr(addr)
	d.count(statNTStores, 1)
	tr := d.trc.Load()
	t0 := tr.Clock()
	w := addr >> wordShift
	li := addr >> lineShift
	wi := w & (wordsPerLine - 1)
	st := d.lockLine(li)
	storeWord(&d.words[w], val)
	d.unlockLine(li, st&^(1<<(validShift+wi)|1<<(dirtyShift+wi)))
	spin(d.cfg.NTStoreNS + int(d.extraNS.Load()))
	if tr != nil {
		tr.DevSpan(obs.KNTStore, addr, 0, t0)
	}
}

// writeBack copies line li's dirty cached words into the persistence
// domain and returns the state with the dirty mask cleared. The line lock
// must be held; st is the held state.
func (d *Device) writeBack(li, st uint64) uint64 {
	dirty := st >> dirtyShift & laneMask
	wbase := li * wordsPerLine
	for wi := uint64(0); dirty != 0; wi++ {
		if dirty&(1<<wi) != 0 {
			storeWord(&d.words[wbase+wi], loadWord(&d.cached[wbase+wi]))
			dirty &^= 1 << wi
		}
	}
	return st &^ (laneMask << dirtyShift)
}

// CLWB writes back the dirty words of the cache line containing addr to
// the persistence domain, leaving the line cached clean.
func (d *Device) CLWB(addr uint64) {
	d.crashTick()
	d.checkAddr(addr)
	d.count(statFlushes, 1)
	tr := d.trc.Load()
	t0 := tr.Clock()
	li := addr >> lineShift
	// Peek before locking: flushing an already-clean line is a no-op.
	if d.state[li].Load()&(laneMask<<dirtyShift) != 0 {
		st := d.lockLine(li)
		d.unlockLine(li, d.writeBack(li, st))
	}
	spin(d.cfg.FlushNS + int(d.extraNS.Load()))
	if tr != nil {
		tr.DevSpan(obs.KFlush, addr, 0, t0)
	}
}

// PersistRange issues CLWB for every line overlapping [addr, addr+n).
// The caller must still Fence to order the write-backs.
func (d *Device) PersistRange(addr, n uint64) {
	if n == 0 {
		return
	}
	first := addr &^ (LineSize - 1)
	last := (addr + n - 1) &^ (LineSize - 1)
	for base := first; ; base += LineSize {
		d.CLWB(base)
		if base == last {
			break
		}
	}
}

// Fence is a persist fence: all preceding write-backs are guaranteed
// durable once it returns. Fences serialize at the device — the drain
// holds a device-global token, so N concurrent fences cost N
// back-to-back drains (the memory controller drains one write queue).
// That queueing is what group commit (PersistBatch/FenceBatch) exists
// to amortize.
func (d *Device) Fence() {
	d.crashTick()
	d.count(statFences, 1)
	tr := d.trc.Load()
	t0 := tr.Clock()
	// Acquire the fence token. The spin is crash-aware like lockLine:
	// the holder only ever spins (never panics) while holding it, so
	// the token cannot leak across an injected crash.
	for i := 0; !d.fenceTok.CompareAndSwap(0, 1); i++ {
		if i&63 == 63 {
			if d.anyCrashFired() {
				panic(CrashSignal{})
			}
			runtime.Gosched()
		}
	}
	spin(d.cfg.FenceNS)
	d.fenceTok.Store(0)
	d.tick.bump()
	if tr != nil {
		tr.DevSpan(obs.KFence, 0, 0, t0)
	}
}

// maybeEvict spontaneously writes back one pseudo-random dirty line with
// probability 1/rate, modeling capacity evictions. Sampling is lock-free:
// each stripe owns a padded xorshift64 state seeded at New, so the store
// path takes no global lock and the sequence is deterministic for a
// single-threaded history.
func (d *Device) maybeEvict(li uint64, rate int) {
	e := &d.evict[li*0x9E3779B97F4A7C15>>58]
	x := loadWord(&e.x)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	storeWord(&e.x, x)
	if x%uint64(rate) != 0 {
		return
	}
	// Probe a bounded window of lines from a pseudo-random start for a
	// dirty victim. The dirty peek is lock-free; only a hit locks.
	nl := uint64(len(d.state))
	start := (x >> 17) % nl
	probes := nl
	if probes > 256 {
		probes = 256
	}
	for i, lj := uint64(0), start; i < probes; i++ {
		if d.state[lj].Load()&(laneMask<<dirtyShift) != 0 {
			st := d.lockLine(lj)
			if st&(laneMask<<dirtyShift) != 0 {
				d.unlockLine(lj, d.writeBack(lj, st))
				d.count(statEvictions, 1)
				if tr := d.trc.Load(); tr != nil {
					tr.DevEmit(obs.KEvict, lj<<lineShift, 0)
				}
			} else {
				d.unlockLine(lj, st)
			}
			return
		}
		lj++
		if lj == nl {
			lj = 0
		}
	}
}

// Crash destroys all volatile state. Dirty words are handled per mode;
// rng drives CrashRandom and may be nil for the deterministic modes.
// After Crash the device contains only what had (or happened to have)
// reached the persistence domain, exactly like a machine losing power.
func (d *Device) Crash(mode CrashMode, rng *rand.Rand) {
	d.count(statCrashes, 1)
	// The local crash (if any) has now happened: the reopened device
	// starts with injection disarmed, like a rebooted machine. Global
	// injection stays armed until the harness disarms it, as before.
	d.ArmLocalCrash(-1)
	if tr := d.trc.Load(); tr != nil {
		tr.DevEmit(obs.KCrash, uint64(mode), 0)
	}
	if mode == CrashRandom && rng == nil {
		panic("nvm: CrashRandom requires a *rand.Rand")
	}
	for li := range d.state {
		st := d.lockLine(uint64(li))
		if dirty := st >> dirtyShift & laneMask; dirty != 0 {
			wbase := uint64(li) * wordsPerLine
			switch mode {
			case CrashPersistAll:
				d.writeBack(uint64(li), st)
			case CrashRandom:
				for wi := uint64(0); wi < wordsPerLine; wi++ {
					if dirty&(1<<wi) != 0 && rng.Intn(2) == 0 {
						storeWord(&d.words[wbase+wi], loadWord(&d.cached[wbase+wi]))
					}
				}
			case CrashDiscard:
				// dirty words are simply lost
			}
		}
		d.unlockLine(uint64(li), 0) // the whole line's cache state dies
	}
	// The fence token and the combiner are volatile CPU-side state:
	// whoever held them is dead, so the reopened device starts clean.
	// The ticket bump wakes readers parked on pre-crash commits — they
	// re-check their predicate, see the injected crash, and unwind.
	d.fenceTok.Store(0)
	d.gc.reset()
	d.tick.bump()
}

// DrainCache writes back every dirty line (a global flush). Used by
// region snapshotting, not by the runtimes.
func (d *Device) DrainCache() {
	for li := range d.state {
		if d.state[li].Load()&(laneMask<<dirtyShift) == 0 {
			continue
		}
		st := d.lockLine(uint64(li))
		d.unlockLine(uint64(li), d.writeBack(uint64(li), st))
	}
}

// Stats returns a snapshot of cumulative event counts, summed over the
// counter stripes.
func (d *Device) Stats() Stats {
	var n [statEvents]uint64
	for i := range d.stripes {
		for ev := 0; ev < statEvents; ev++ {
			n[ev] += readCounter(&d.stripes[i].n[ev])
		}
	}
	return Stats{
		Loads:     n[statLoads],
		Stores:    n[statStores],
		NTStores:  n[statNTStores],
		Flushes:   n[statFlushes],
		Fences:    n[statFences],
		Evictions: n[statEvictions],
		Crashes:   n[statCrashes],
	}
}

// ResetStats zeroes the event counters.
func (d *Device) ResetStats() {
	for i := range d.stripes {
		for ev := 0; ev < statEvents; ev++ {
			resetCounter(&d.stripes[i].n[ev])
		}
	}
}
