// Package nvm simulates a byte-addressable nonvolatile memory device that
// sits behind a volatile CPU cache, following the system model of the iDO
// paper (MICRO 2018, §II-A): ordinary loads and stores hit a volatile cache
// whose lines are written back to the persistence domain in arbitrary order;
// programs enforce ordering with explicit write-back (CLWB) and persist
// fence (Fence) operations; writes are atomic at 8-byte granularity.
//
// A crash (Crash) discards all volatile state. Depending on the crash mode,
// dirty cache words may be lost, fully written back, or adversarially
// written back word-by-word at random — the strongest failure adversary
// consistent with 8-byte write atomicity.
//
// The device also implements the paper's NVM-latency sensitivity knob
// (§V-E): a configurable extra delay charged after each write-back and
// after each non-temporal store, emulated with a calibrated spin loop just
// as Mnemosyne and Atlas emulate it with nop loops.
package nvm

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// LineSize is the cache line size in bytes.
const LineSize = 64

// WordSize is the atomic write granularity in bytes (§II-A).
const WordSize = 8

const wordsPerLine = LineSize / WordSize

// Config parameterizes a simulated device.
type Config struct {
	// Size is the device capacity in bytes. It is rounded up to a whole
	// number of cache lines. Must be > 0.
	Size int

	// Shards is the number of independently locked cache shards. Zero
	// selects a default sized for high thread counts.
	Shards int

	// FlushNS is the base cost, in nanoseconds, of one cache-line
	// write-back (clwb/clflush reaching the memory controller).
	FlushNS int

	// FenceNS is the base cost of one persist fence (sfence waiting for
	// outstanding write-backs).
	FenceNS int

	// NTStoreNS is the base cost of one non-temporal store.
	NTStoreNS int

	// ExtraNS is the additional NVM write latency charged after each
	// write-back and each non-temporal store. This is the knob swept in
	// the paper's Fig. 9 (20–2000 ns).
	ExtraNS int

	// EvictionRate, if nonzero, makes roughly one in EvictionRate stores
	// spontaneously write back a random dirty line, modeling capacity
	// evictions that persist data the program never flushed. Used by
	// correctness tests; leave zero for benchmarks.
	EvictionRate int
}

// CrashMode selects what happens to dirty (unflushed) cache words when the
// device crashes.
type CrashMode int

const (
	// CrashDiscard drops every dirty word: nothing unflushed survives.
	CrashDiscard CrashMode = iota
	// CrashRandom independently persists or drops each dirty word with
	// probability 1/2 — arbitrary-order write-back at 8-byte atomicity.
	CrashRandom
	// CrashPersistAll writes every dirty word back before dying, as if
	// the whole cache were flushed by a residual-energy mechanism.
	CrashPersistAll
)

func (m CrashMode) String() string {
	switch m {
	case CrashDiscard:
		return "discard"
	case CrashRandom:
		return "random"
	case CrashPersistAll:
		return "persist-all"
	default:
		return fmt.Sprintf("CrashMode(%d)", int(m))
	}
}

// Stats reports cumulative event counts for a device.
type Stats struct {
	Loads     uint64 // Load64 calls
	Stores    uint64 // Store64 calls
	NTStores  uint64 // StoreNT calls
	Flushes   uint64 // CLWB calls
	Fences    uint64 // Fence calls
	Evictions uint64 // spontaneous write-backs
	Crashes   uint64 // Crash calls
}

type cacheLine struct {
	words [wordsPerLine]uint64
	// dirty and valid are per-word bitmasks: bit i covers words[i].
	dirty uint8
	valid uint8
}

type cacheShard struct {
	mu    sync.Mutex
	lines map[uint64]*cacheLine // keyed by line base address
	_     [24]byte              // pad to reduce false sharing between shards
}

// Device is a simulated NVM DIMM plus the volatile cache in front of it.
// All exported methods are safe for concurrent use.
type Device struct {
	cfg    Config
	words  []uint64 // the persistence domain
	shards []cacheShard
	nshard uint64

	loads     atomic.Uint64
	stores    atomic.Uint64
	ntstores  atomic.Uint64
	flushes   atomic.Uint64
	fences    atomic.Uint64
	evictions atomic.Uint64
	crashes   atomic.Uint64

	extraNS atomic.Int64 // runtime-adjustable copy of cfg.ExtraNS

	evictMu  sync.Mutex
	evictRNG *rand.Rand
}

// New creates a device. It panics if cfg.Size <= 0.
func New(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("nvm: Config.Size must be positive")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 128
	}
	lines := (cfg.Size + LineSize - 1) / LineSize
	d := &Device{
		cfg:      cfg,
		words:    make([]uint64, lines*wordsPerLine),
		shards:   make([]cacheShard, cfg.Shards),
		nshard:   uint64(cfg.Shards),
		evictRNG: rand.New(rand.NewSource(0x1D0)),
	}
	for i := range d.shards {
		d.shards[i].lines = make(map[uint64]*cacheLine)
	}
	d.extraNS.Store(int64(cfg.ExtraNS))
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int { return len(d.words) * WordSize }

// SetExtraLatency changes the added NVM write latency (ns) at run time.
// Used by the Fig. 9 sensitivity sweep.
func (d *Device) SetExtraLatency(ns int) { d.extraNS.Store(int64(ns)) }

// ExtraLatency returns the current added NVM write latency in ns.
func (d *Device) ExtraLatency() int { return int(d.extraNS.Load()) }

func (d *Device) checkAddr(addr uint64) {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("nvm: misaligned address %#x", addr))
	}
	if addr >= uint64(len(d.words))*WordSize {
		panic(fmt.Sprintf("nvm: address %#x out of range (size %#x)", addr, d.Size()))
	}
}

func (d *Device) shard(lineBase uint64) *cacheShard {
	// Mix the line index so that adjacent lines land in different shards.
	h := lineBase / LineSize
	h ^= h >> 7
	h *= 0x9E3779B97F4A7C15
	return &d.shards[(h>>32)%d.nshard]
}

// Store64 writes an 8-byte word into the volatile cache.
func (d *Device) Store64(addr, val uint64) {
	tickCrash()
	d.checkAddr(addr)
	d.stores.Add(1)
	base := addr &^ (LineSize - 1)
	wi := (addr % LineSize) / WordSize
	s := d.shard(base)
	s.mu.Lock()
	ln := s.lines[base]
	if ln == nil {
		ln = &cacheLine{}
		s.lines[base] = ln
	}
	ln.words[wi] = val
	ln.valid |= 1 << wi
	ln.dirty |= 1 << wi
	s.mu.Unlock()
	if r := d.cfg.EvictionRate; r > 0 {
		d.maybeEvict(r)
	}
}

// Load64 reads an 8-byte word, observing the cache first.
func (d *Device) Load64(addr uint64) uint64 {
	tickCrash()
	d.checkAddr(addr)
	d.loads.Add(1)
	base := addr &^ (LineSize - 1)
	wi := (addr % LineSize) / WordSize
	s := d.shard(base)
	s.mu.Lock()
	if ln := s.lines[base]; ln != nil && ln.valid&(1<<wi) != 0 {
		v := ln.words[wi]
		s.mu.Unlock()
		return v
	}
	v := d.words[addr/WordSize]
	s.mu.Unlock()
	return v
}

// StoreNT performs a non-temporal store: the word goes straight to the
// persistence domain, bypassing (and invalidating in) the cache. Ordering
// with respect to later stores still requires a Fence.
func (d *Device) StoreNT(addr, val uint64) {
	tickCrash()
	d.checkAddr(addr)
	d.ntstores.Add(1)
	base := addr &^ (LineSize - 1)
	wi := (addr % LineSize) / WordSize
	s := d.shard(base)
	s.mu.Lock()
	d.words[addr/WordSize] = val
	if ln := s.lines[base]; ln != nil {
		ln.valid &^= 1 << wi
		ln.dirty &^= 1 << wi
	}
	s.mu.Unlock()
	spin(d.cfg.NTStoreNS + int(d.extraNS.Load()))
}

// CLWB writes back the dirty words of the cache line containing addr to
// the persistence domain, leaving the line cached clean.
func (d *Device) CLWB(addr uint64) {
	tickCrash()
	d.checkAddr(addr)
	d.flushes.Add(1)
	base := addr &^ (LineSize - 1)
	s := d.shard(base)
	s.mu.Lock()
	if ln := s.lines[base]; ln != nil && ln.dirty != 0 {
		d.writeBackLocked(base, ln)
	}
	s.mu.Unlock()
	spin(d.cfg.FlushNS + int(d.extraNS.Load()))
}

// PersistRange issues CLWB for every line overlapping [addr, addr+n).
// The caller must still Fence to order the write-backs.
func (d *Device) PersistRange(addr, n uint64) {
	if n == 0 {
		return
	}
	first := addr &^ (LineSize - 1)
	last := (addr + n - 1) &^ (LineSize - 1)
	for base := first; ; base += LineSize {
		d.CLWB(base)
		if base == last {
			break
		}
	}
}

// Fence is a persist fence: all preceding write-backs are guaranteed
// durable once it returns.
func (d *Device) Fence() {
	tickCrash()
	d.fences.Add(1)
	spin(d.cfg.FenceNS)
}

// writeBackLocked copies dirty words to the persistence domain. The
// shard lock must be held.
func (d *Device) writeBackLocked(base uint64, ln *cacheLine) {
	wbase := base / WordSize
	for i := 0; i < wordsPerLine; i++ {
		if ln.dirty&(1<<i) != 0 {
			d.words[wbase+uint64(i)] = ln.words[i]
		}
	}
	ln.dirty = 0
}

// maybeEvict spontaneously writes back one random dirty line with
// probability 1/rate, modeling capacity evictions.
func (d *Device) maybeEvict(rate int) {
	d.evictMu.Lock()
	if d.evictRNG.Intn(rate) != 0 {
		d.evictMu.Unlock()
		return
	}
	si := d.evictRNG.Intn(len(d.shards))
	d.evictMu.Unlock()
	s := &d.shards[si]
	s.mu.Lock()
	for base, ln := range s.lines {
		if ln.dirty != 0 {
			d.writeBackLocked(base, ln)
			d.evictions.Add(1)
			break
		}
	}
	s.mu.Unlock()
}

// Crash destroys all volatile state. Dirty words are handled per mode;
// rng drives CrashRandom and may be nil for the deterministic modes.
// After Crash the device contains only what had (or happened to have)
// reached the persistence domain, exactly like a machine losing power.
func (d *Device) Crash(mode CrashMode, rng *rand.Rand) {
	d.crashes.Add(1)
	if mode == CrashRandom && rng == nil {
		panic("nvm: CrashRandom requires a *rand.Rand")
	}
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for base, ln := range s.lines {
			switch mode {
			case CrashPersistAll:
				d.writeBackLocked(base, ln)
			case CrashRandom:
				wbase := base / WordSize
				for w := 0; w < wordsPerLine; w++ {
					if ln.dirty&(1<<w) != 0 && rng.Intn(2) == 0 {
						d.words[wbase+uint64(w)] = ln.words[w]
					}
				}
			case CrashDiscard:
				// dirty words are simply lost
			}
		}
		s.lines = make(map[uint64]*cacheLine)
		s.mu.Unlock()
	}
}

// DrainCache writes back every dirty line (a global flush). Used by
// region snapshotting, not by the runtimes.
func (d *Device) DrainCache() {
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for base, ln := range s.lines {
			if ln.dirty != 0 {
				d.writeBackLocked(base, ln)
			}
		}
		s.mu.Unlock()
	}
}

// Stats returns a snapshot of cumulative event counts.
func (d *Device) Stats() Stats {
	return Stats{
		Loads:     d.loads.Load(),
		Stores:    d.stores.Load(),
		NTStores:  d.ntstores.Load(),
		Flushes:   d.flushes.Load(),
		Fences:    d.fences.Load(),
		Evictions: d.evictions.Load(),
		Crashes:   d.crashes.Load(),
	}
}

// ResetStats zeroes the event counters.
func (d *Device) ResetStats() {
	d.loads.Store(0)
	d.stores.Store(0)
	d.ntstores.Store(0)
	d.flushes.Store(0)
	d.fences.Store(0)
	d.evictions.Store(0)
	d.crashes.Store(0)
}
