package nvm

import (
	"sync"
	"time"
)

// The latency model charges NVM costs by spinning, like the nop loops
// Mnemosyne and Atlas use for their sensitivity experiments (§V-E).
// Calibration measures how many loop iterations one nanosecond costs on
// this machine; it runs once, lazily.

var (
	calOnce    sync.Once
	loopsPerNS float64
)

//go:noinline
func spinLoop(n int) uint64 {
	var acc uint64
	for i := 0; i < n; i++ {
		acc += uint64(i) ^ (acc << 1)
	}
	return acc
}

var spinSink uint64

func calibrate() {
	const probe = 1 << 22
	best := time.Duration(1<<62 - 1)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		spinSink += spinLoop(probe)
		if el := time.Since(start); el < best {
			best = el
		}
	}
	if best <= 0 {
		best = time.Nanosecond
	}
	loopsPerNS = float64(probe) / float64(best.Nanoseconds())
	if loopsPerNS <= 0 {
		loopsPerNS = 1
	}
}

// spin busy-waits for approximately ns nanoseconds. spin(0) is free.
// The result is discarded: spinLoop is noinline, so the call cannot be
// optimized away, and accumulating into a shared sink here would be a
// data race between concurrently spinning threads (calibrate may still
// use the sink — it runs once, under calOnce).
func spin(ns int) {
	if ns <= 0 {
		return
	}
	calOnce.Do(calibrate)
	spinLoop(int(loopsPerNS * float64(ns)))
}

// SpinWait exposes the calibrated spin for other packages that model
// fixed-cost hardware events (e.g., the VM's instruction costs).
func SpinWait(ns int) { spin(ns) }
