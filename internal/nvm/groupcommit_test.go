package nvm

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/obs"
)

// TestGroupCommitLeaderCrashWakesParked: when an injected crash kills the
// serving leader, every waiter must terminate too — including one that
// already parked on the combiner's condvar before the crash fired. The
// slow flush/fence model (2 ms per event) holds the leader in its serve
// long enough for the other committer to park; the budget sweep lands the
// crash on each of the leader's serve events (first flush, second flush,
// merged fence) in turn. Before the deferred leader-release this
// deadlocked: the leader died holding the flag, no broadcast ever came,
// and the parked waiter slept through the crash.
func TestGroupCommitLeaderCrashWakesParked(t *testing.T) {
	for _, budget := range []int64{2, 3, 4} {
		t.Run(fmt.Sprintf("budget%d", budget), func(t *testing.T) {
			d := New(Config{Size: 1 << 20, FlushNS: 2_000_000, FenceNS: 2_000_000,
				GroupCommit: GroupCommitConfig{Enabled: true, ForceCombine: true}})
			lines := []uint64{0, 64}
			for _, ln := range lines {
				d.Store64(ln, 1)
			}
			ArmCrash(budget)
			defer ArmCrash(-1)
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(CrashSignal); !ok {
								panic(r)
							}
						}
					}()
					d.PersistBatch(lines[i : i+1])
				}(i)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(20 * time.Second):
				t.Fatal("a combiner waiter outlived the leader's crash (parked forever?)")
			}
			if !CrashFired() {
				t.Fatal("crash budget never fired: the sweep no longer covers the serve path")
			}
		})
	}
}

func gcDevice(t *testing.T, cfg GroupCommitConfig, tr *obs.Tracer) *Device {
	t.Helper()
	return New(Config{Size: 1 << 20, GroupCommit: cfg, Tracer: tr})
}

// TestGroupCommitDisabledIsDirect: with the combiner off, PersistBatch
// and FenceBatch produce exactly the direct path's event counts.
func TestGroupCommitDisabledIsDirect(t *testing.T) {
	d := New(Config{Size: 1 << 20})
	if d.GroupCommitEnabled() {
		t.Fatal("combiner unexpectedly enabled")
	}
	d.Store64(0, 1)
	d.Store64(64, 2)
	d.PersistBatch([]uint64{0, 64})
	d.FenceBatch()
	st := d.Stats()
	if st.Flushes != 2 || st.Fences != 2 {
		t.Fatalf("flushes=%d fences=%d, want 2/2", st.Flushes, st.Fences)
	}
	if d.Load64(0) != 1 || d.Load64(64) != 2 {
		t.Fatal("values lost")
	}
}

// TestGroupCommitSoloFallsThrough: a solo committer with ForceCombine
// off takes the direct path — same flush and fence counts, no
// batch-commit events.
func TestGroupCommitSoloFallsThrough(t *testing.T) {
	tr := obs.New(obs.Config{})
	d := gcDevice(t, GroupCommitConfig{Enabled: true}, tr)
	for i := 0; i < 10; i++ {
		addr := uint64(i) * 64
		d.Store64(addr, uint64(i))
		d.PersistBatch([]uint64{addr})
	}
	st := d.Stats()
	if st.Flushes != 10 || st.Fences != 10 {
		t.Fatalf("flushes=%d fences=%d, want 10/10", st.Flushes, st.Fences)
	}
	if n := tr.Count(obs.KBatchCommit); n != 0 {
		t.Fatalf("solo path emitted %d batch-commit events", n)
	}
	if d.Epoch() != 0 {
		t.Fatalf("epoch=%d, want 0 (no merged fences)", d.Epoch())
	}
}

// TestGroupCommitForcedSingleThread: ForceCombine pushes even a lone
// committer through the slot ring — it elects itself leader, performs
// its own merged fence, and the data is durable.
func TestGroupCommitForcedSingleThread(t *testing.T) {
	tr := obs.New(obs.Config{})
	d := gcDevice(t, GroupCommitConfig{Enabled: true, ForceCombine: true}, tr)
	const n = 8
	for i := 0; i < n; i++ {
		addr := uint64(i) * 64
		d.Store64(addr, uint64(i)+100)
		d.PersistBatch([]uint64{addr})
	}
	st := d.Stats()
	if st.Flushes != n || st.Fences != n {
		t.Fatalf("flushes=%d fences=%d, want %d/%d", st.Flushes, st.Fences, n, n)
	}
	if got := tr.Count(obs.KBatchCommit); got != n {
		t.Fatalf("batch-commit events=%d, want %d", got, n)
	}
	if d.Epoch() != n {
		t.Fatalf("epoch=%d, want %d", d.Epoch(), n)
	}
	h := tr.Hist(obs.HFASEsPerFence)
	if h.Count != n || h.Sum != n {
		t.Fatalf("fases/fence hist count=%d sum=%d, want %d/%d", h.Count, h.Sum, n, n)
	}
	for i := 0; i < n; i++ {
		if got := d.Load64(uint64(i) * 64); got != uint64(i)+100 {
			t.Fatalf("word %d = %d", i, got)
		}
	}
}

// TestGroupCommitHammer drives 16 goroutines through the combiner
// (forced, so every commit takes the slot path) and checks that every
// value is durable in the persistence domain, that fences were actually
// amortized, and that the combined/led accounting adds up. This is the
// CI race-mode hammer.
func TestGroupCommitHammer(t *testing.T) {
	tr := obs.New(obs.Config{})
	d := gcDevice(t, GroupCommitConfig{Enabled: true, ForceCombine: true}, tr)
	const (
		goroutines = 16
		rounds     = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				addr := uint64(g*rounds+r) * 64
				d.Store64(addr, uint64(g*rounds+r)+1)
				if r%3 == 2 {
					d.FenceBatch() // fence-only commits join batches too
				}
				d.PersistBatch([]uint64{addr})
			}
		}(g)
	}
	wg.Wait()

	for i := 0; i < goroutines*rounds; i++ {
		d.assertPersisted(t, uint64(i)*64, uint64(i)+1)
	}

	commits := uint64(goroutines * (rounds + rounds/3))
	st := d.Stats()
	if st.Fences > commits {
		t.Fatalf("fences=%d exceed %d commits", st.Fences, commits)
	}
	t.Logf("commits=%d fences=%d (%.2f FASEs/fence)", commits, st.Fences,
		float64(commits)/float64(st.Fences))
	led := tr.Count(obs.KBatchCommit)
	combined := tr.Count(obs.KFenceCombined)
	if led+combined != commits {
		t.Fatalf("led=%d + combined=%d != commits=%d", led, combined, commits)
	}
	if led != d.Epoch() {
		t.Fatalf("batch-commit events=%d != epoch=%d", led, d.Epoch())
	}
	h := tr.Hist(obs.HFASEsPerFence)
	if h.Count != led || h.Sum != commits {
		t.Fatalf("fases/fence hist count=%d sum=%d, want %d/%d", h.Count, h.Sum, led, commits)
	}
	if st.Flushes != uint64(goroutines*rounds) {
		t.Fatalf("flushes=%d, want %d (one per persisted line)", st.Flushes, goroutines*rounds)
	}
}

// assertPersisted checks the persistence domain directly (not through
// the cache) by crashing a throwaway view — here we just read words,
// which after PersistBatch must be durable, so verify via a discard
// crash on a copy is overkill; instead check the word is clean+correct.
func (d *Device) assertPersisted(t *testing.T, addr, want uint64) {
	t.Helper()
	w := addr >> wordShift
	if got := loadWord(&d.words[w]); got != want {
		t.Fatalf("addr %#x: persistence domain has %d, want %d", addr, got, want)
	}
}

// TestGroupCommitMergesConcurrent pins the amortization deterministically:
// the test holds the leader flag while two committers publish, then
// releases it — one committer leads a 2-FASE batch, the other's fence is
// combined, and the whole thing costs exactly one device fence.
func TestGroupCommitMergesConcurrent(t *testing.T) {
	tr := obs.New(obs.Config{})
	d := gcDevice(t, GroupCommitConfig{Enabled: true, ForceCombine: true}, tr)

	d.gc.leader.Store(1) // stand-in leader: publishers must wait
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addr := uint64(g) * 64
			d.Store64(addr, uint64(g)+11)
			d.PersistBatch([]uint64{addr})
		}(g)
	}
	// Wait until both slots are published, then let a real leader in.
	for {
		n := 0
		for i := range d.gc.slots {
			if d.gc.slots[i].state.Load() == gcPublished {
				n++
			}
		}
		if n == 2 {
			break
		}
		runtime.Gosched()
	}
	d.gc.leader.Store(0)
	wg.Wait()

	d.assertPersisted(t, 0, 11)
	d.assertPersisted(t, 64, 12)
	if st := d.Stats(); st.Fences != 1 || st.Flushes != 2 {
		t.Fatalf("fences=%d flushes=%d, want 1/2", st.Fences, st.Flushes)
	}
	if led := tr.Count(obs.KBatchCommit); led != 1 {
		t.Fatalf("batch-commit events=%d, want 1", led)
	}
	if combined := tr.Count(obs.KFenceCombined); combined != 1 {
		t.Fatalf("fence-combined events=%d, want 1", combined)
	}
	h := tr.Hist(obs.HFASEsPerFence)
	if h.Count != 1 || h.Sum != 2 {
		t.Fatalf("fases/fence hist count=%d sum=%d, want 1/2", h.Count, h.Sum)
	}
}

// TestGroupCommitCrashMidBatchResets: a crash fired while commits are in
// flight kills every waiter; Crash() then resets the combiner and the
// fence token so the reopened device is fully usable, and any line not
// covered by a completed merged fence obeys the crash mode.
func TestGroupCommitCrashMidBatchResets(t *testing.T) {
	d := gcDevice(t, GroupCommitConfig{Enabled: true, ForceCombine: true}, nil)

	// Durable prefix: commit one value through the combiner.
	d.Store64(0, 42)
	d.PersistBatch([]uint64{0})

	// In-flight suffix: arm a budget small enough to die inside the
	// next commit's combiner path, then observe CrashSignal.
	d.Store64(64, 7)
	ArmCrash(1) // publish tick + first flush tick > 1 → fires mid-commit
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected CrashSignal")
			} else if _, ok := r.(CrashSignal); !ok {
				panic(r)
			}
		}()
		d.PersistBatch([]uint64{64})
	}()
	ArmCrash(-1)

	d.Crash(CrashDiscard, nil)
	if got := d.Load64(0); got != 42 {
		t.Fatalf("durable word lost: %d", got)
	}
	if got := d.Load64(64); got != 0 {
		t.Fatalf("unfenced word survived discard: %d", got)
	}

	// The reopened device must work — combiner state was reset.
	d.Store64(128, 9)
	d.PersistBatch([]uint64{128})
	d.assertPersisted(t, 128, 9)
}

// TestGroupCommitWindowDwell: a positive batch window still commits
// correctly (the dwell only widens the epoch).
func TestGroupCommitWindowDwell(t *testing.T) {
	tr := obs.New(obs.Config{})
	d := gcDevice(t, GroupCommitConfig{Enabled: true, ForceCombine: true, WindowNS: 2000}, tr)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				addr := uint64(g*50+r) * 64
				d.Store64(addr, uint64(g*50+r)+1)
				d.PersistBatch([]uint64{addr})
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 200; i++ {
		d.assertPersisted(t, uint64(i)*64, uint64(i)+1)
	}
	if led := tr.Count(obs.KBatchCommit); led == 0 || led > 200 {
		t.Fatalf("batch-commit events=%d", led)
	}
}

// TestFenceSerializes: the device-global fence token makes concurrent
// fences queue, so N threads' fences take at least N drain times in
// total wall clock on any schedule. We can't assert wall clock
// portably; instead assert the token round-trips (uncontended fence
// still works) and that a fence inside an armed-fired crash panics
// instead of deadlocking on the token.
func TestFenceSerializes(t *testing.T) {
	d := New(Config{Size: 1 << 12, FenceNS: 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d.Fence()
			}
		}()
	}
	wg.Wait()
	if st := d.Stats(); st.Fences != 800 {
		t.Fatalf("fences=%d, want 800", st.Fences)
	}
	if d.fenceTok.Load() != 0 {
		t.Fatal("fence token leaked")
	}
}
