package nvm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func newDev(t testing.TB) *Device {
	t.Helper()
	return New(Config{Size: 1 << 16})
}

func TestStoreLoadRoundTrip(t *testing.T) {
	d := newDev(t)
	d.Store64(0, 42)
	d.Store64(8, 43)
	d.Store64(1<<16-8, 99)
	if got := d.Load64(0); got != 42 {
		t.Fatalf("Load64(0) = %d, want 42", got)
	}
	if got := d.Load64(8); got != 43 {
		t.Fatalf("Load64(8) = %d, want 43", got)
	}
	if got := d.Load64(1<<16 - 8); got != 99 {
		t.Fatalf("Load64(last) = %d, want 99", got)
	}
}

func TestMisalignedPanics(t *testing.T) {
	d := newDev(t)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned store did not panic")
		}
	}()
	d.Store64(4, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	d := newDev(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range store did not panic")
		}
	}()
	d.Store64(1<<16, 1)
}

func TestUnflushedStoreLostOnDiscardCrash(t *testing.T) {
	d := newDev(t)
	d.Store64(128, 7)
	d.Crash(CrashDiscard, nil)
	if got := d.Load64(128); got != 0 {
		t.Fatalf("unflushed store survived discard crash: %d", got)
	}
}

func TestFlushedStoreSurvivesCrash(t *testing.T) {
	d := newDev(t)
	d.Store64(128, 7)
	d.CLWB(128)
	d.Fence()
	d.Crash(CrashDiscard, nil)
	if got := d.Load64(128); got != 7 {
		t.Fatalf("flushed store lost: got %d, want 7", got)
	}
}

func TestNTStoreSurvivesCrashWithoutFlush(t *testing.T) {
	d := newDev(t)
	d.StoreNT(64, 11)
	d.Crash(CrashDiscard, nil)
	if got := d.Load64(64); got != 11 {
		t.Fatalf("NT store lost: got %d, want 11", got)
	}
}

func TestNTStoreInvalidatesCachedWord(t *testing.T) {
	d := newDev(t)
	d.Store64(64, 5) // cached, dirty
	d.StoreNT(64, 6) // bypasses, invalidates
	if got := d.Load64(64); got != 6 {
		t.Fatalf("Load64 after NT store = %d, want 6", got)
	}
	d.Crash(CrashDiscard, nil)
	if got := d.Load64(64); got != 6 {
		t.Fatalf("after crash = %d, want 6", got)
	}
}

func TestCrashPersistAllKeepsDirtyData(t *testing.T) {
	d := newDev(t)
	d.Store64(256, 123)
	d.Crash(CrashPersistAll, nil)
	if got := d.Load64(256); got != 123 {
		t.Fatalf("persist-all crash lost data: %d", got)
	}
}

func TestCrashRandomIsSubsetOfDirtyWords(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		d := newDev(t)
		// Two dirty words on the same line.
		d.Store64(0, 100)
		d.Store64(8, 200)
		d.Crash(CrashRandom, rng)
		a, b := d.Load64(0), d.Load64(8)
		if a != 0 && a != 100 {
			t.Fatalf("word 0 corrupted: %d", a)
		}
		if b != 0 && b != 200 {
			t.Fatalf("word 8 corrupted: %d", b)
		}
	}
}

func TestPersistRangeCoversAllLines(t *testing.T) {
	d := newDev(t)
	for a := uint64(0); a < 256; a += 8 {
		d.Store64(a, a+1)
	}
	d.PersistRange(0, 256)
	d.Fence()
	d.Crash(CrashDiscard, nil)
	for a := uint64(0); a < 256; a += 8 {
		if got := d.Load64(a); got != a+1 {
			t.Fatalf("addr %d: got %d, want %d", a, got, a+1)
		}
	}
}

func TestPersistRangeZeroLength(t *testing.T) {
	d := newDev(t)
	before := d.Stats().Flushes
	d.PersistRange(64, 0)
	if d.Stats().Flushes != before {
		t.Fatal("PersistRange(_, 0) issued flushes")
	}
}

func TestWriteReadBytesUnaligned(t *testing.T) {
	d := newDev(t)
	msg := []byte("hello, nonvolatile world")
	d.WriteBytes(3, msg)
	if got := d.ReadBytes(3, len(msg)); !bytes.Equal(got, msg) {
		t.Fatalf("ReadBytes = %q, want %q", got, msg)
	}
	// Neighbors untouched.
	if got := d.Load64(64); got != 0 {
		t.Fatalf("neighbor clobbered: %d", got)
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	d := New(Config{Size: 1 << 14})
	f := func(off uint16, data []byte) bool {
		if len(data) > 512 {
			data = data[:512]
		}
		addr := uint64(off) % (1<<14 - 1024)
		d.WriteBytes(addr, data)
		return bytes.Equal(d.ReadBytes(addr, len(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushedPrefixSurvivesAnyCrashProperty(t *testing.T) {
	// Property: whatever was stored then CLWB+Fence'd survives every
	// crash mode; unflushed data never corrupts *other* words.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, nFlushed, nDirty uint8) bool {
		d := New(Config{Size: 1 << 13})
		r := rand.New(rand.NewSource(seed))
		type w struct{ addr, val uint64 }
		flushed := make([]w, 0, nFlushed)
		for i := 0; i < int(nFlushed); i++ {
			a := uint64(r.Intn(1<<13/8)) * 8
			v := r.Uint64()
			d.Store64(a, v)
			d.CLWB(a)
			flushed = append(flushed, w{a, v})
		}
		d.Fence()
		seen := map[uint64]bool{}
		for _, x := range flushed {
			seen[x.addr] = true
		}
		for i := 0; i < int(nDirty); i++ {
			a := uint64(r.Intn(1<<13/8)) * 8
			if seen[a] {
				continue
			}
			d.Store64(a, r.Uint64())
		}
		mode := CrashMode(r.Intn(3))
		d.Crash(mode, rng)
		// Later flushed writes to the same addr win; walk backwards.
		want := map[uint64]uint64{}
		for _, x := range flushed {
			want[x.addr] = x.val
		}
		for a, v := range want {
			if got := d.Load64(a); got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotExcludesDirtyCache(t *testing.T) {
	d := newDev(t)
	d.Store64(0, 9)
	d.CLWB(0)
	d.Fence()
	d.Store64(8, 10) // dirty, unflushed
	img := d.SnapshotPersistent()
	d2 := New(Config{Size: 1 << 16})
	d2.RestorePersistent(img)
	if got := d2.Load64(0); got != 9 {
		t.Fatalf("persisted word missing from snapshot: %d", got)
	}
	if got := d2.Load64(8); got != 0 {
		t.Fatalf("dirty word leaked into snapshot: %d", got)
	}
}

func TestDrainCachePersistsEverything(t *testing.T) {
	d := newDev(t)
	for a := uint64(0); a < 1024; a += 8 {
		d.Store64(a, a^0xABCD)
	}
	d.DrainCache()
	d.Crash(CrashDiscard, nil)
	for a := uint64(0); a < 1024; a += 8 {
		if got := d.Load64(a); got != a^0xABCD {
			t.Fatalf("addr %d lost after drain: %d", a, got)
		}
	}
}

func TestConcurrentDisjointStores(t *testing.T) {
	d := New(Config{Size: 1 << 20})
	const goroutines = 8
	const per = 2048
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * per * 8
			for i := uint64(0); i < per; i++ {
				d.Store64(base+i*8, uint64(g)<<32|i)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		base := uint64(g) * per * 8
		for i := uint64(0); i < per; i++ {
			if got := d.Load64(base + i*8); got != uint64(g)<<32|i {
				t.Fatalf("g%d word %d: got %#x", g, i, got)
			}
		}
	}
}

func TestStatsCount(t *testing.T) {
	d := newDev(t)
	d.Store64(0, 1)
	d.Load64(0)
	d.CLWB(0)
	d.Fence()
	d.StoreNT(8, 2)
	s := d.Stats()
	if s.Stores != 1 || s.Loads != 1 || s.Flushes != 1 || s.Fences != 1 || s.NTStores != 1 {
		t.Fatalf("stats = %+v", s)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestEvictionEventuallyPersists(t *testing.T) {
	d := New(Config{Size: 1 << 12, EvictionRate: 2})
	for i := 0; i < 4096; i++ {
		d.Store64(uint64(i%64)*8, uint64(i))
	}
	if d.Stats().Evictions == 0 {
		t.Fatal("no spontaneous evictions with EvictionRate=2")
	}
}

func TestCrashModeString(t *testing.T) {
	if CrashDiscard.String() != "discard" || CrashRandom.String() != "random" ||
		CrashPersistAll.String() != "persist-all" {
		t.Fatal("CrashMode.String mismatch")
	}
	if CrashMode(9).String() == "" {
		t.Fatal("unknown mode should still stringify")
	}
}

func BenchmarkStore64(b *testing.B) {
	d := New(Config{Size: 1 << 20})
	for i := 0; i < b.N; i++ {
		d.Store64(uint64(i%(1<<17))*8, uint64(i))
	}
}

func BenchmarkCLWBFence(b *testing.B) {
	d := New(Config{Size: 1 << 20, FlushNS: 0, FenceNS: 0})
	d.Store64(0, 1)
	for i := 0; i < b.N; i++ {
		d.Store64(0, uint64(i))
		d.CLWB(0)
		d.Fence()
	}
}
