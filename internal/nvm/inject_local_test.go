package nvm

import "testing"

// TestLocalCrashScopedToDevice proves a local crash kills users of the
// armed device and leaves a second device in the same process untouched.
func TestLocalCrashScopedToDevice(t *testing.T) {
	a := New(Config{Size: 1 << 12})
	b := New(Config{Size: 1 << 12})

	a.ArmLocalCrash(1 << 60)
	a.TriggerLocalCrash()
	if !a.LocalCrashFired() {
		t.Fatal("local crash did not fire")
	}

	// b is unaffected: stores and fences proceed.
	b.Store64(0, 42)
	b.Fence()
	if got := b.Load64(0); got != 42 {
		t.Fatalf("device b load = %d, want 42", got)
	}

	// a panics CrashSignal at its next event.
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected CrashSignal from device a")
			} else if _, ok := r.(CrashSignal); !ok {
				t.Fatalf("unexpected panic payload %v", r)
			}
		}()
		a.Store64(0, 1)
	}()

	// Crash (reboot) disarms local injection; the reopened device works.
	a.Crash(CrashDiscard, nil)
	if a.LocalCrashArmed() || a.LocalCrashFired() {
		t.Fatal("Crash did not clear local injection")
	}
	a.Store64(8, 7)
	a.Fence()
	if got := a.Load64(8); got != 7 {
		t.Fatalf("device a load after reboot = %d, want 7", got)
	}
}

// TestLocalCrashBudget checks the budget burns down on the armed device
// only and fires on exhaustion.
func TestLocalCrashBudget(t *testing.T) {
	a := New(Config{Size: 1 << 12})
	b := New(Config{Size: 1 << 12})
	a.ArmLocalCrash(3)
	b.Store64(0, 1) // must not consume a's budget
	b.Store64(8, 2)
	fired := 0
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(CrashSignal); !ok {
					panic(r)
				}
				fired++
			}
		}()
		for i := 0; i < 10; i++ {
			a.Store64(uint64(i*8), uint64(i))
		}
	}()
	if fired != 1 {
		t.Fatalf("crash fired %d times, want 1", fired)
	}
	if !a.LocalCrashFired() {
		t.Fatal("local fired flag not set")
	}
	if b.LocalCrashFired() {
		t.Fatal("device b fired flag set")
	}
	a.ArmLocalCrash(-1)
}
