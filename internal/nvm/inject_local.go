package nvm

import "sync/atomic"

// Device-scoped crash injection. The global ArmCrash models power
// failure: one budget, every device user dies. A process that hosts
// *two* persistence domains — the replication tests run a primary and a
// hot-standby device in one binary — needs to kill only one machine's
// users while the other keeps serving, which a process-global flag
// cannot express. ArmLocalCrash scopes the same budget/fire/panic
// discipline to a single Device: every event hook checks the global
// state first (power failure still kills everyone) and then this
// device's local state.
//
// Local injection supports only the all-events scope; recovery-scoped
// budgets (ArmRecoveryCrash) stay global because the chaos harness that
// uses them is single-device.

type localInject struct {
	armed  atomic.Bool
	fired  atomic.Bool
	budget atomic.Int64
}

// ArmLocalCrash arms crash injection scoped to this device with a
// budget of n device events; a negative n disarms and clears the fired
// state. Goroutines touching other devices are unaffected.
func (d *Device) ArmLocalCrash(n int64) {
	if n < 0 {
		d.linj.armed.Store(false)
		d.linj.fired.Store(false)
		return
	}
	d.linj.fired.Store(false)
	d.linj.budget.Store(n)
	d.linj.armed.Store(true)
}

// TriggerLocalCrash fires this device's injected crash immediately
// (local injection must be armed). As with TriggerCrash, arm with a
// huge budget before launching workers so spin sites take the
// crash-aware path, then trigger at the kill time. Parked waiters
// (commit tickets, combiner slots) are woken so they observe the fired
// state and unwind with CrashSignal.
func (d *Device) TriggerLocalCrash() {
	if !d.linj.armed.Load() {
		panic("nvm: TriggerLocalCrash while disarmed")
	}
	d.linj.fired.Store(true)
	d.WakeTicketWaiters()
	if d.gc != nil {
		d.gc.mu.Lock()
		d.gc.wake.Broadcast()
		d.gc.mu.Unlock()
	}
}

// LocalCrashArmed reports whether device-local injection is armed.
func (d *Device) LocalCrashArmed() bool { return d.linj.armed.Load() }

// LocalCrashFired reports whether this device's local crash has gone
// off.
func (d *Device) LocalCrashFired() bool { return d.linj.fired.Load() }

// LocalCrashBudgetRemaining returns the local budget's remaining event
// count.
func (d *Device) LocalCrashBudgetRemaining() int64 { return d.linj.budget.Load() }

// crashTick is the per-event injection hook on every device operation:
// the global budget burns first (power failure kills every device),
// then this device's local budget.
func (d *Device) crashTick() {
	tickCrash()
	if !d.linj.armed.Load() {
		return
	}
	if d.linj.fired.Load() {
		panic(CrashSignal{})
	}
	if d.linj.budget.Add(-1) < 0 {
		d.linj.fired.Store(true)
		panic(CrashSignal{})
	}
}

// anyCrashFired reports whether a global or device-local injected crash
// has gone off — the predicate every crash-aware spin and park site on
// this device checks before waiting further.
func (d *Device) anyCrashFired() bool {
	return (injectArmed.Load() && injectFired.Load()) ||
		(d.linj.armed.Load() && d.linj.fired.Load())
}
