package nvm

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ido-nvm/ido/internal/obs"
)

// Group commit: cross-thread flush/fence combining for FASE commit
// epilogues.
//
// Every FASE commit pays at least one FlushLines+Fence (iDO §III-A
// step 1) and one more fence after publishing its recovery_pc. Because
// persist fences serialize at the memory controller (Fence holds the
// device-global fence token while it drains), N threads committing
// concurrently pay N back-to-back fence drains. The combiner amortizes
// them: committing threads publish their dirty-line batch to a
// fixed-size slot ring, one thread is elected leader for the epoch, and
// the leader performs every published batch's write-backs followed by a
// single merged Fence on behalf of all of them. Waiters spin briefly on
// their own slot's state word (crash-aware, exactly like the device's
// line-lock spin), then park on the combiner's condvar so an
// oversubscribed host spends its cycles on the leader and on committers
// still working toward their publish point, not on busy waiters.
//
// # Protocol
//
// A slot moves through free → claimed → published → done, and only its
// owner moves it out of done (back to free). The owner:
//
//  1. claims a free slot (CAS), writes its line batch into the slot,
//     ticks the crash-injection budget (the "combiner publish" crash
//     point), and publishes (store, release);
//  2. spins: if its slot is done, the batch is durable — reset the slot
//     and return; otherwise try to become leader (CAS on the leader
//     flag). A publisher that wins leadership with its slot still
//     pending serves the whole ring: it collects every published slot,
//     optionally dwells WindowNS to let stragglers join, issues the
//     collected write-backs (FlushLines per batch — identical per-line
//     events, ticks, and latency to the direct path), then one merged
//     Fence, advances the epoch, and marks every served slot done.
//
// Progress needs no third party: the set of threads that can be waiting
// on a batch is exactly the set that published into it, and one of them
// always either finds its slot done or wins the leader CAS, so the
// protocol is deadlock-free no matter what FASE locks the waiters hold
// (line locks are never held across a wait; the leader flag is only
// held while actively serving).
//
// # Crash consistency
//
// The combiner adds no persistent state — slots, the leader flag, and
// the epoch counter are volatile and die with the cache (Device.Crash
// resets them). A waiter returns from PersistBatch/FenceBatch only
// after the merged Fence covering its batch completed, so every
// caller-visible ordering guarantee of the direct FlushLines+Fence path
// is preserved; the merged fence is simply one fence ordering more
// write-backs. If the leader (or anyone) crashes mid-batch, every
// waiter dies too (the crash-aware spin panics once the injected crash
// fires), no waiter has published its "committed" NT store yet, and
// each FASE in the batch recovers via its own log — precisely the
// direct-path crash states. See DESIGN.md for the proof sketch.

// GroupCommitConfig enables the cross-thread fence combiner on a device.
type GroupCommitConfig struct {
	// Enabled turns the combiner on. When false, PersistBatch and
	// FenceBatch degrade to exactly FlushLines+Fence / Fence.
	Enabled bool

	// ForceCombine disables the solo fast path, forcing every
	// PersistBatch/FenceBatch through the slot ring even when the
	// caller is the only committer. The chaos harness sets it so
	// single-threaded crash schedules exercise the combiner
	// deterministically; benchmarks leave it false.
	ForceCombine bool

	// WindowNS, when positive, makes an elected leader dwell that many
	// nanoseconds after its first slot scan to let straggling
	// committers join the batch before the merged fence. Zero means
	// the leader serves whatever one extra scan finds — lowest
	// latency, combining only what is already concurrent.
	WindowNS int
}

// Slot states. Only the owner moves free→claimed→published and
// done→free; only the epoch leader moves published→done.
const (
	gcFree = iota
	gcClaimed
	gcPublished
	gcDone
)

// gcSlots is the slot-ring size; committers beyond it spin for a free
// slot (with far more slots than the machine has cores, that spin is
// all but unreachable).
const gcSlots = 64

// gcSlot is one publication slot, padded so two slots never share a
// cache line.
type gcSlot struct {
	state atomic.Uint32
	_     [4]byte
	lines []uint64 // owner-written while claimed, leader-read while published
	_     [32]byte
}

// gcSpinRounds is how long a publisher spins on its slot before parking
// on the combiner's condvar. Long enough to ride out a leader that is
// already fencing; short enough that an oversubscribed host isn't spent
// scheduling busy waiters instead of the leader and the stragglers it is
// dwelling for.
const gcSpinRounds = 64

// gcDwellSliceNS is the nominal slice of batch window consumed per dwell
// round: WindowNS/gcDwellSliceNS bounds how many times a dwelling leader
// yields for stragglers.
const gcDwellSliceNS = 100

// combiner is the per-device group-commit state. All fields are
// volatile: Crash zeroes them.
type combiner struct {
	cfg     GroupCommitConfig
	pending atomic.Int64  // committers currently inside persist()
	leader  atomic.Uint32 // epoch leader flag (0 free, 1 held)
	epoch   atomic.Uint64 // merged fences completed
	mu      sync.Mutex    // guards parking; see gcPersist
	wake    *sync.Cond    // broadcast on slot-done and leader-release
	slots   [gcSlots]gcSlot

	// Host-side observability counters. Unlike the protocol state above
	// they are not part of the simulated persistence domain, so reset()
	// leaves them alone: the admin plane reads them cumulatively across
	// crashes, the same contract as the device's striped stat counters.
	solo     atomic.Uint64 // commits taken on the solo fast path
	leads    atomic.Uint64 // leader elections that served a batch
	combined atomic.Uint64 // commits whose fence another thread's batch absorbed
	fases    atomic.Uint64 // total slots served across all merged fences
	dwell    atomic.Uint64 // dwell rounds leaders spent holding an epoch open
}

func newCombiner(cfg GroupCommitConfig) *combiner {
	c := &combiner{cfg: cfg}
	c.wake = sync.NewCond(&c.mu)
	return c
}

// reset clears all volatile combiner state after a crash. Callers are
// dead by protocol when the device crashes, so plain stores suffice.
func (c *combiner) reset() {
	if c == nil {
		return
	}
	c.pending.Store(0)
	c.leader.Store(0)
	c.mu.Lock()
	for i := range c.slots {
		c.slots[i].state.Store(gcFree)
		c.slots[i].lines = nil
	}
	// Liveness backstop: any waiter still parked (its leader died in the
	// crash) wakes, observes the fired injection, and dies too.
	c.wake.Broadcast()
	c.mu.Unlock()
}

// Epoch returns the number of merged group-commit fences completed.
func (d *Device) Epoch() uint64 {
	if d.gc == nil {
		return 0
	}
	return d.gc.epoch.Load()
}

// GroupCommitEnabled reports whether the fence combiner is active.
func (d *Device) GroupCommitEnabled() bool { return d.gc != nil }

// GCStats is a cumulative snapshot of combiner activity: how often the
// solo fast path fired, how many merged fences were led, how many
// commits rode another thread's fence, the total FASEs those merged
// fences served (Epochs>0 ⇒ FASEs/Epochs is the realized amortization
// factor), and how many dwell rounds leaders spent holding a batch
// window open. These are host-side observability counters — they
// survive Crash, unlike the combiner's protocol state.
type GCStats struct {
	Epochs      uint64 // merged group-commit fences completed
	Leads       uint64 // leader elections that served a batch (== Epochs)
	Solo        uint64 // commits taken on the solo fast path
	Combined    uint64 // commits absorbed into another thread's fence
	ServedFASEs uint64 // slots served across all merged fences
	DwellRounds uint64 // leader dwell yields while an epoch was held open
}

// GroupCommitStats reports cumulative combiner activity; all-zero when
// the combiner is disabled. Safe to call concurrently with commits.
func (d *Device) GroupCommitStats() GCStats {
	c := d.gc
	if c == nil {
		return GCStats{}
	}
	return GCStats{
		Epochs:      c.epoch.Load(),
		Leads:       c.leads.Load(),
		Solo:        c.solo.Load(),
		Combined:    c.combined.Load(),
		ServedFASEs: c.fases.Load(),
		DwellRounds: c.dwell.Load(),
	}
}

// PersistBatch makes the cache lines in lines durable: it write-backs
// every line and orders them with a persist fence before returning.
// With group commit disabled (or a solo committer) it is exactly
// FlushLines(lines) followed by Fence; with the combiner active the
// flushes and the fence may be performed by an elected leader on behalf
// of a batch of committers, amortizing the fence drain. lines must stay
// unmodified until PersistBatch returns.
func (d *Device) PersistBatch(lines []uint64) {
	if d.gc == nil {
		d.FlushLines(lines)
		d.Fence()
		return
	}
	d.gcPersist(lines)
}

// FenceBatch is a persist fence that may be combined with concurrent
// committers' fences. With group commit disabled (or a solo committer)
// it is exactly Fence.
func (d *Device) FenceBatch() {
	if d.gc == nil {
		d.Fence()
		return
	}
	d.gcPersist(nil)
}

// gcSpinCheck is the crash-aware backoff taken every 64 iterations of a
// combiner spin, mirroring lockLine: once an injected crash has fired
// every waiter dies, and on a single-P schedule the serving leader
// needs the processor to make progress.
func (d *Device) gcSpinCheck() {
	if d.anyCrashFired() {
		panic(CrashSignal{})
	}
	runtime.Gosched()
}

// gcPersist runs one commit's flush+fence through the combiner.
// lines == nil is a fence-only commit.
func (d *Device) gcPersist(lines []uint64) {
	c := d.gc
	n := c.pending.Add(1)
	defer c.pending.Add(-1)
	if n == 1 && !c.cfg.ForceCombine {
		// Solo fast path: no other committer is inside the combiner,
		// so there is nothing to amortize — take the direct path and
		// keep single-thread latency at parity (one atomic add/sub).
		c.solo.Add(1)
		d.FlushLines(lines)
		d.Fence()
		return
	}

	// Claim a free slot.
	var s *gcSlot
	for i := 0; ; i++ {
		if sl := &c.slots[i%gcSlots]; sl.state.Load() == gcFree &&
			sl.state.CompareAndSwap(gcFree, gcClaimed) {
			s = sl
			break
		}
		if i&63 == 63 {
			d.gcSpinCheck()
		}
	}
	s.lines = lines
	// The combiner-publish crash point: the batch is about to become
	// visible to a leader. A crash here (or any time before the merged
	// fence) leaves this FASE recoverable via its own log.
	d.crashTick()
	s.state.Store(gcPublished)

	// Wait for a leader to serve the slot, volunteering when no one is.
	// A publisher spins briefly, then parks: the leader performs every
	// slot-done and leader-release transition under mu with a broadcast,
	// so a parked waiter can miss neither its own completion nor the
	// leadership becoming free.
	ledSelf := false
	for i := 0; ; i++ {
		if s.state.Load() == gcDone {
			break
		}
		if c.leader.Load() == 0 && c.leader.CompareAndSwap(0, 1) {
			if s.state.Load() != gcDone {
				// If an injected crash kills the leader mid-serve, the
				// leader flag must not die held: a parked waiter's condvar
				// predicate (leader == 1, slot not done) would then never
				// change and no broadcast would ever come — the waiter
				// sleeps through the crash instead of dying with it. The
				// deferred release turns a leader death into a release +
				// broadcast, so woken waiters observe the fired injection
				// and propagate the CrashSignal themselves.
				abort := true
				func() {
					defer func() {
						if abort {
							c.mu.Lock()
							c.leader.Store(0)
							c.wake.Broadcast()
							c.mu.Unlock()
						}
					}()
					d.gcLead()
					abort = false
				}()
				ledSelf = true
			}
			c.mu.Lock()
			c.leader.Store(0)
			c.wake.Broadcast()
			c.mu.Unlock()
			if s.state.Load() != gcDone {
				// gcLead serves every published slot, ours included.
				panic("nvm: group-commit leader left own slot unserved")
			}
			break
		}
		if i < gcSpinRounds {
			if i&63 == 63 {
				d.gcSpinCheck()
			}
			continue
		}
		c.mu.Lock()
		for s.state.Load() != gcDone && c.leader.Load() == 1 &&
			!d.anyCrashFired() {
			c.wake.Wait()
		}
		c.mu.Unlock()
		if d.anyCrashFired() {
			panic(CrashSignal{})
		}
	}
	if !ledSelf {
		// This commit's fence was absorbed into another thread's
		// merged fence.
		c.combined.Add(1)
		if tr := d.trc.Load(); tr != nil {
			tr.DevEmit(obs.KFenceCombined, c.epoch.Load(), 0)
		}
	}
	s.lines = nil
	s.state.Store(gcFree)
}

// gcLead serves one epoch: collect every published slot, optionally
// dwell for stragglers, write back all collected batches, issue one
// merged fence, and mark the served slots done. Called with the leader
// flag held.
func (d *Device) gcLead() {
	c := d.gc
	var served uint64 // bitmap of slots in this batch
	collect := func() {
		for i := range c.slots {
			if served&(1<<uint(i)) == 0 && c.slots[i].state.Load() == gcPublished {
				served |= 1 << uint(i)
			}
		}
	}
	collect()
	if w := c.cfg.WindowNS; w > 0 {
		// Batch window: hold the epoch open so committers that arrive
		// within it amortize into this fence. The dwelling leader is
		// idle — on hardware its wait overlaps the other cores'
		// progress — so the simulator charges no leader spin here; the
		// stragglers' own modeled work is the cost, and each yield hands
		// them the processor to perform it (on a single-P host one yield
		// runs every runnable committer up to its publish point). The
		// dwell ends early when a whole round gathered nobody new and
		// no committer is still en route to publishing.
		for rounds := (w + gcDwellSliceNS - 1) / gcDwellSliceNS; rounds > 0; rounds-- {
			if d.anyCrashFired() {
				panic(CrashSignal{})
			}
			c.dwell.Add(1)
			before := bits.OnesCount64(served)
			runtime.Gosched()
			collect()
			if bits.OnesCount64(served) == before &&
				uint64(before) >= uint64(c.pending.Load()) {
				break
			}
		}
	}
	collect()

	// Write back every batch. FlushLines charges the same per-line
	// events, crash ticks, and latency as the direct path, so grouped
	// and direct mode differ only in fence count.
	var batches, nlines uint64
	for i := range c.slots {
		if served&(1<<uint(i)) != 0 {
			batches++
			if ln := c.slots[i].lines; len(ln) > 0 {
				nlines += uint64(len(ln))
				d.FlushLines(ln)
			}
		}
	}
	d.Fence() // the merged fence: one drain covers the whole batch
	c.epoch.Add(1)
	c.leads.Add(1)
	c.fases.Add(batches)
	if tr := d.trc.Load(); tr != nil {
		tr.DevEmit(obs.KBatchCommit, batches, nlines)
		tr.Observe(obs.HFASEsPerFence, batches)
	}
	c.mu.Lock()
	for i := range c.slots {
		if served&(1<<uint(i)) != 0 {
			c.slots[i].state.Store(gcDone)
		}
	}
	c.wake.Broadcast()
	c.mu.Unlock()
}
