package nvm

// Bulk word transfers. These observe and update the cache exactly like
// per-word Load64/Store64 but take the shard lock once per line, which is
// what lets page-granularity systems (NVThreads) copy 4 KB pages without
// paying 512 lock round trips.

// ReadWords fills dst with consecutive words starting at 8-aligned addr.
func (d *Device) ReadWords(addr uint64, dst []uint64) {
	if len(dst) == 0 {
		return
	}
	d.checkAddr(addr)
	d.checkAddr(addr + uint64(len(dst)-1)*WordSize)
	d.loads.Add(uint64(len(dst)))
	i := 0
	for i < len(dst) {
		a := addr + uint64(i)*WordSize
		base := a &^ (LineSize - 1)
		wi := int((a % LineSize) / WordSize)
		n := wordsPerLine - wi
		if n > len(dst)-i {
			n = len(dst) - i
		}
		s := d.shard(base)
		s.mu.Lock()
		ln := s.lines[base]
		for k := 0; k < n; k++ {
			if ln != nil && ln.valid&(1<<uint(wi+k)) != 0 {
				dst[i+k] = ln.words[wi+k]
			} else {
				dst[i+k] = d.words[a/WordSize+uint64(k)]
			}
		}
		s.mu.Unlock()
		i += n
	}
}

// WriteWords stores consecutive words starting at 8-aligned addr into the
// volatile cache (dirty, unflushed), like a sequence of Store64 calls.
func (d *Device) WriteWords(addr uint64, src []uint64) {
	if len(src) == 0 {
		return
	}
	d.checkAddr(addr)
	d.checkAddr(addr + uint64(len(src)-1)*WordSize)
	d.stores.Add(uint64(len(src)))
	i := 0
	for i < len(src) {
		a := addr + uint64(i)*WordSize
		base := a &^ (LineSize - 1)
		wi := int((a % LineSize) / WordSize)
		n := wordsPerLine - wi
		if n > len(src)-i {
			n = len(src) - i
		}
		s := d.shard(base)
		s.mu.Lock()
		ln := s.lines[base]
		if ln == nil {
			ln = &cacheLine{}
			s.lines[base] = ln
		}
		for k := 0; k < n; k++ {
			ln.words[wi+k] = src[i+k]
			ln.valid |= 1 << uint(wi+k)
			ln.dirty |= 1 << uint(wi+k)
		}
		s.mu.Unlock()
		i += n
	}
}

// WriteWordsNT stores consecutive words directly into the persistence
// domain (non-temporal), invalidating any cached copies. One latency
// charge covers each line rather than each word, modeling streaming
// stores. A Fence is still required to order against later writes.
func (d *Device) WriteWordsNT(addr uint64, src []uint64) {
	if len(src) == 0 {
		return
	}
	d.checkAddr(addr)
	d.checkAddr(addr + uint64(len(src)-1)*WordSize)
	d.ntstores.Add(uint64(len(src)))
	extra := int(d.extraNS.Load())
	i := 0
	for i < len(src) {
		a := addr + uint64(i)*WordSize
		base := a &^ (LineSize - 1)
		wi := int((a % LineSize) / WordSize)
		n := wordsPerLine - wi
		if n > len(src)-i {
			n = len(src) - i
		}
		s := d.shard(base)
		s.mu.Lock()
		ln := s.lines[base]
		for k := 0; k < n; k++ {
			d.words[a/WordSize+uint64(k)] = src[i+k]
			if ln != nil {
				ln.valid &^= 1 << uint(wi+k)
				ln.dirty &^= 1 << uint(wi+k)
			}
		}
		s.mu.Unlock()
		spin(d.cfg.NTStoreNS + extra)
		i += n
	}
}
