package nvm

import "github.com/ido-nvm/ido/internal/obs"

// Bulk word transfers. These observe and update the cache exactly like
// per-word Load64/Store64 but charge the per-call overhead (counter
// stripe, line lock) once per line, which is what lets page-granularity
// systems (NVThreads) copy 4 KB pages without paying 512 lock round
// trips, and lets runtimes write back a whole region's dirty set in one
// call (FlushLines).

// ReadWords fills dst with consecutive words starting at 8-aligned addr.
// Like Load64 it is lock-free: each word independently observes the
// cached or the persistent copy.
func (d *Device) ReadWords(addr uint64, dst []uint64) {
	if len(dst) == 0 {
		return
	}
	d.checkAddr(addr)
	d.checkAddr(addr + uint64(len(dst)-1)*WordSize)
	d.count(statLoads, uint64(len(dst)))
	i := 0
	for i < len(dst) {
		a := addr + uint64(i)*WordSize
		li := a >> lineShift
		wi := a >> wordShift & (wordsPerLine - 1)
		n := int(wordsPerLine - wi)
		if n > len(dst)-i {
			n = len(dst) - i
		}
		valid := d.state[li].Load() >> validShift & laneMask
		w := a >> wordShift
		for k := 0; k < n; k++ {
			if valid&(1<<(wi+uint64(k))) != 0 {
				dst[i+k] = loadWord(&d.cached[w+uint64(k)])
			} else {
				dst[i+k] = loadWord(&d.words[w+uint64(k)])
			}
		}
		i += n
	}
}

// WriteWords stores consecutive words starting at 8-aligned addr into the
// volatile cache (dirty, unflushed), like a sequence of Store64 calls.
func (d *Device) WriteWords(addr uint64, src []uint64) {
	if len(src) == 0 {
		return
	}
	d.checkAddr(addr)
	d.checkAddr(addr + uint64(len(src)-1)*WordSize)
	d.count(statStores, uint64(len(src)))
	i := 0
	for i < len(src) {
		a := addr + uint64(i)*WordSize
		li := a >> lineShift
		wi := a >> wordShift & (wordsPerLine - 1)
		n := int(wordsPerLine - wi)
		if n > len(src)-i {
			n = len(src) - i
		}
		var mask uint64
		w := a >> wordShift
		st := d.lockLine(li)
		for k := 0; k < n; k++ {
			storeWord(&d.cached[w+uint64(k)], src[i+k])
			mask |= 1 << (wi + uint64(k))
		}
		d.unlockLine(li, st|mask<<validShift|mask<<dirtyShift)
		i += n
	}
}

// WriteWordsNT stores consecutive words directly into the persistence
// domain (non-temporal), invalidating any cached copies. One latency
// charge covers each line rather than each word, modeling streaming
// stores. A Fence is still required to order against later writes.
func (d *Device) WriteWordsNT(addr uint64, src []uint64) {
	if len(src) == 0 {
		return
	}
	d.checkAddr(addr)
	d.checkAddr(addr + uint64(len(src)-1)*WordSize)
	d.count(statNTStores, uint64(len(src)))
	tr := d.trc.Load()
	extra := int(d.extraNS.Load())
	i := 0
	for i < len(src) {
		a := addr + uint64(i)*WordSize
		li := a >> lineShift
		wi := a >> wordShift & (wordsPerLine - 1)
		n := int(wordsPerLine - wi)
		if n > len(src)-i {
			n = len(src) - i
		}
		var mask uint64
		w := a >> wordShift
		st := d.lockLine(li)
		for k := 0; k < n; k++ {
			storeWord(&d.words[w+uint64(k)], src[i+k])
			mask |= 1 << (wi + uint64(k))
		}
		d.unlockLine(li, st&^(mask<<validShift|mask<<dirtyShift))
		spin(d.cfg.NTStoreNS + extra)
		if tr != nil {
			// One event per word, matching the per-word stat count.
			for k := 0; k < n; k++ {
				tr.DevEmit(obs.KNTStore, a+uint64(k)*WordSize, 0)
			}
		}
		i += n
	}
}

// FlushLines issues a CLWB for each line base address in lines: same
// event counts, crash-injection ticks, and latency charges as calling
// CLWB once per entry, with the per-call overhead paid once. Runtimes use
// it to write back a region's whole dirty set at a boundary (§III-A
// step 1).
func (d *Device) FlushLines(lines []uint64) {
	if len(lines) == 0 {
		return
	}
	cost := d.cfg.FlushNS + int(d.extraNS.Load())
	tr := d.trc.Load()
	for _, base := range lines {
		d.crashTick()
		d.checkAddr(base)
		d.count(statFlushes, 1)
		t0 := tr.Clock()
		li := base >> lineShift
		if d.state[li].Load()&(laneMask<<dirtyShift) != 0 {
			st := d.lockLine(li)
			d.unlockLine(li, d.writeBack(li, st))
		}
		spin(cost)
		if tr != nil {
			tr.DevSpan(obs.KFlush, base, 0, t0)
		}
	}
}
