package nvm

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Commit-ticket conformance: the fence sequence is monotonic, waiters
// (spinning or parked) are released by fences, cancel words, and
// crashes, and the no-waiter wake is free of lost-wakeup windows.

func TestCommitTicketAdvancesOnFence(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	t0 := d.CommitTicket()
	d.Store64(64, 7)
	d.CLWB(64)
	d.Fence()
	if got := d.CommitTicket(); got != t0+1 {
		t.Fatalf("ticket after one fence: %d, want %d", got, t0+1)
	}
	// An already-satisfied wait returns immediately.
	d.WaitTicket(t0+1, nil, 0)
	// Group-commit merged fences funnel through Fence too; a second
	// fence keeps the sequence strictly monotonic.
	d.Fence()
	if got := d.CommitTicket(); got != t0+2 {
		t.Fatalf("ticket after two fences: %d, want %d", got, t0+2)
	}
}

func TestWaitTicketParksUntilFence(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	target := d.CommitTicket() + 1
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.WaitTicket(target, nil, 0)
		}()
	}
	go func() { wg.Wait(); close(done) }()
	// Give the waiters time to pass the spin phase and park.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatalf("waiters returned before any fence")
	default:
	}
	d.Store64(128, 1)
	d.CLWB(128)
	d.Fence()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("fence did not release parked waiters")
	}
}

func TestWaitTicketCancelWord(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	var seq atomic.Uint64
	seq.Store(1) // "odd epoch" as the fast lane would observe it
	done := make(chan struct{})
	go func() {
		// Ticket far in the future: only the cancel word can release.
		d.WaitTicket(d.CommitTicket()+1<<40, &seq, 1)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatalf("waiter returned with cancel word unchanged")
	default:
	}
	seq.Store(2)
	d.WakeTicketWaiters()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("cancel word + wake did not release the waiter")
	}
	// Pre-cancelled waits return without parking.
	d.WaitTicket(d.CommitTicket()+1<<40, &seq, 7)
}

func TestWaitTicketUnwindsOnCrash(t *testing.T) {
	d := New(Config{Size: 1 << 16})
	ArmCrash(1 << 60)
	defer ArmCrash(-1)
	unwound := make(chan struct{})
	go func() {
		defer func() {
			if _, ok := recover().(CrashSignal); !ok {
				t.Errorf("parked waiter did not unwind with CrashSignal")
			}
			close(unwound)
		}()
		d.WaitTicket(d.CommitTicket()+1<<40, nil, 0)
	}()
	time.Sleep(20 * time.Millisecond)
	TriggerCrash()
	// Settling the device bumps the ticket so parked waiters re-check
	// the predicate, observe the fired injection, and unwind.
	d.Crash(CrashRandom, rand.New(rand.NewSource(1)))
	select {
	case <-unwound:
	case <-time.After(5 * time.Second):
		t.Fatalf("crash did not release the parked waiter")
	}
}
