package nvm

import (
	"sync/atomic"
	"testing"
)

// Device hot-path microbenchmarks. These are the numbers recorded in
// BENCH_nvm_hotpath.json and smoked by CI (-bench=Device -benchtime=100x);
// they exercise only the public API so the same file measures any cache
// implementation.

const benchDevBytes = 1 << 22

// BenchmarkDeviceStore64 is the single-threaded store path.
func BenchmarkDeviceStore64(b *testing.B) {
	d := New(Config{Size: benchDevBytes})
	mask := uint64(benchDevBytes/WordSize - 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Store64(uint64(i)&mask*WordSize, uint64(i))
	}
}

// BenchmarkDeviceLoad64 is the single-threaded load path over a warmed
// (partly cached, partly uncached) address range.
func BenchmarkDeviceLoad64(b *testing.B) {
	d := New(Config{Size: benchDevBytes})
	for a := uint64(0); a < benchDevBytes/2; a += 128 {
		d.Store64(a, a)
	}
	mask := uint64(benchDevBytes/WordSize - 1)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += d.Load64(uint64(i) & mask * WordSize)
	}
	benchSink.Store(sink)
}

// BenchmarkDeviceStore64Parallel stores from GOMAXPROCS goroutines into
// disjoint per-goroutine address windows — the uncontended sharding case
// the simulator must not serialize.
func BenchmarkDeviceStore64Parallel(b *testing.B) {
	d := New(Config{Size: benchDevBytes})
	var next atomic.Uint64
	const window = uint64(1 << 14) // bytes per goroutine
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		base := (next.Add(1) - 1) * window % (benchDevBytes / 2)
		i := uint64(0)
		for pb.Next() {
			d.Store64(base+(i&(window/WordSize-1))*WordSize, i)
			i++
		}
	})
}

// BenchmarkDeviceLoad64Parallel is the parallel read path.
func BenchmarkDeviceLoad64Parallel(b *testing.B) {
	d := New(Config{Size: benchDevBytes})
	for a := uint64(0); a < benchDevBytes; a += 64 {
		d.Store64(a, a)
	}
	var next atomic.Uint64
	const window = uint64(1 << 14)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		base := (next.Add(1) - 1) * window % (benchDevBytes / 2)
		i := uint64(0)
		var sink uint64
		for pb.Next() {
			sink += d.Load64(base + (i&(window/WordSize-1))*WordSize)
			i++
		}
		benchSink.Store(sink)
	})
}

// BenchmarkDeviceMixedParallel16 is the acceptance workload: 16
// goroutines, 2 loads per store, disjoint windows.
func BenchmarkDeviceMixedParallel16(b *testing.B) {
	d := New(Config{Size: benchDevBytes})
	var next atomic.Uint64
	const window = uint64(1 << 14)
	b.SetParallelism(16) // 16 goroutines per GOMAXPROCS
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		base := (next.Add(1) - 1) * window % (benchDevBytes / 2)
		i := uint64(0)
		var sink uint64
		for pb.Next() {
			a := base + (i&(window/WordSize-1))*WordSize
			d.Store64(a, i)
			sink += d.Load64(a)
			sink += d.Load64(a ^ 512)
			i++
		}
		benchSink.Store(sink)
	})
}

// BenchmarkDeviceCLWBFence is the persist-ordering path with zeroed
// latency model, isolating simulator bookkeeping.
func BenchmarkDeviceCLWBFence(b *testing.B) {
	d := New(Config{Size: benchDevBytes, FlushNS: 0, FenceNS: 0})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Store64(0, uint64(i))
		d.CLWB(0)
		d.Fence()
	}
}

// BenchmarkDeviceFASEPattern models one small FASE per iteration the way
// the iDO runtime drives the device: a few stores to two lines, a
// write-back of each dirty line, and two fences (§III-A boundary
// protocol), with the latency model zeroed so the measurement is
// simulator overhead, not the modeled hardware.
func BenchmarkDeviceFASEPattern(b *testing.B) {
	d := New(Config{Size: benchDevBytes})
	d.SetExtraLatency(0)
	mask := uint64(benchDevBytes/2 - 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := (uint64(i) * 192) & mask &^ (LineSize - 1)
		d.Store64(base, uint64(i))
		d.Store64(base+8, uint64(i)+1)
		d.Store64(base+LineSize, uint64(i)+2)
		d.CLWB(base)
		d.CLWB(base + LineSize)
		d.Fence()
		d.Store64(base+16, uint64(i)+3)
		d.CLWB(base + 16)
		d.Fence()
	}
}

// BenchmarkDeviceFASEPatternParallel16 runs the FASE pattern from 16
// goroutines over disjoint windows.
func BenchmarkDeviceFASEPatternParallel16(b *testing.B) {
	d := New(Config{Size: benchDevBytes})
	var next atomic.Uint64
	const window = uint64(1 << 14)
	b.SetParallelism(16)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		base := (next.Add(1) - 1) * window % (benchDevBytes / 2)
		i := uint64(0)
		for pb.Next() {
			a := base + (i*192)&(window-1)&^(LineSize-1)
			d.Store64(a, i)
			d.Store64(a+8, i+1)
			d.CLWB(a)
			d.Fence()
			i++
		}
	})
}

var benchSink atomic.Uint64
