//go:build race

package nvm

import "sync/atomic"

// Race-build twins of the wordops.go accessors: every data-word and
// counter access goes through sync/atomic so the race detector can verify
// that the per-line lock discipline is the only synchronization the
// device needs. See wordops.go for the full contract.

func loadWord(p *uint64) uint64     { return atomic.LoadUint64(p) }
func storeWord(p *uint64, v uint64) { atomic.StoreUint64(p, v) }

func addCounter(p *uint64, n uint64) { atomic.AddUint64(p, n) }
func readCounter(p *uint64) uint64   { return atomic.LoadUint64(p) }
func resetCounter(p *uint64)         { atomic.StoreUint64(p, 0) }
