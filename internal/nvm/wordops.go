//go:build !race

package nvm

// Hot-path word and counter accessors, non-race build.
//
// Data words (words/cached) are always written under the owning line's
// lock, but Load64/ReadWords read them without the lock, so a reader can
// race a writer on one 8-byte-aligned word. On every 64-bit platform Go
// supports, an aligned 8-byte load or store is a single untorn machine
// access and the line-state atomics around it order everything else —
// which is precisely the 8-byte-atomicity contract the simulated hardware
// provides (§II-A). The race build (wordops_race.go) routes these through
// sync/atomic so `go test -race` proves the locking discipline has no
// other races; this build uses plain memory ops to keep the simulator off
// the hot path it is supposed to measure.
//
// Counters: each goroutine lands on its own padded stripe with very high
// probability, so plain read-modify-write keeps totals exact for
// single-threaded histories (the property tests rely on) and at worst
// drops a negligible number of events when two goroutines share a stripe.
// The race build makes the increments atomic, which also makes totals
// exact under concurrency.

func loadWord(p *uint64) uint64     { return *p }
func storeWord(p *uint64, v uint64) { *p = v }

func addCounter(p *uint64, n uint64) { *p += n }
func readCounter(p *uint64) uint64   { return *p }
func resetCounter(p *uint64)         { *p = 0 }
