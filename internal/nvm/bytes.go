package nvm

import "encoding/binary"

// Byte-granularity helpers. Sub-word writes are implemented as
// read-modify-write of the containing word, mirroring what real hardware
// does inside an 8-byte atomic unit. Callers needing failure atomicity for
// multi-word data must log it through a runtime; these helpers only move
// bytes.

// WriteBytes copies b into the device starting at byte address addr.
// addr need not be aligned.
func (d *Device) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		wa := addr &^ (WordSize - 1)
		off := int(addr - wa)
		n := WordSize - off
		if n > len(b) {
			n = len(b)
		}
		var buf [WordSize]byte
		binary.LittleEndian.PutUint64(buf[:], d.Load64(wa))
		copy(buf[off:off+n], b[:n])
		d.Store64(wa, binary.LittleEndian.Uint64(buf[:]))
		addr += uint64(n)
		b = b[n:]
	}
}

// ReadBytes copies n bytes starting at byte address addr into a fresh
// slice. addr need not be aligned.
func (d *Device) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	d.ReadBytesInto(addr, out)
	return out
}

// ReadBytesInto fills dst with bytes starting at addr.
func (d *Device) ReadBytesInto(addr uint64, dst []byte) {
	for len(dst) > 0 {
		wa := addr &^ (WordSize - 1)
		off := int(addr - wa)
		n := WordSize - off
		if n > len(dst) {
			n = len(dst)
		}
		var buf [WordSize]byte
		binary.LittleEndian.PutUint64(buf[:], d.Load64(wa))
		copy(dst[:n], buf[off:off+n])
		addr += uint64(n)
		dst = dst[n:]
	}
}

// Memset64 stores val into count consecutive words starting at addr.
func (d *Device) Memset64(addr, val uint64, count int) {
	for i := 0; i < count; i++ {
		d.Store64(addr+uint64(i)*WordSize, val)
	}
}

// SnapshotPersistent returns a copy of the persistence domain only —
// the bytes that would survive an immediate CrashDiscard. Volatile cache
// contents are deliberately excluded.
func (d *Device) SnapshotPersistent() []byte {
	out := make([]byte, len(d.words)*WordSize)
	// Hold each line's lock while copying it so an in-flight write-back
	// is never observed torn within a line.
	for li := range d.state {
		st := d.lockLine(uint64(li))
		wbase := uint64(li) * (LineSize / WordSize)
		for wi := uint64(0); wi < LineSize/WordSize; wi++ {
			w := loadWord(&d.words[wbase+wi])
			binary.LittleEndian.PutUint64(out[(wbase+wi)*WordSize:], w)
		}
		d.unlockLine(uint64(li), st)
	}
	return out
}

// RestorePersistent overwrites the persistence domain from a snapshot and
// clears the cache, as when a recovery process maps a region file after a
// crash. The snapshot length must match the device size.
func (d *Device) RestorePersistent(img []byte) {
	if len(img) != d.Size() {
		panic("nvm: snapshot size mismatch")
	}
	for li := range d.state {
		st := d.lockLine(uint64(li))
		_ = st
		wbase := uint64(li) * (LineSize / WordSize)
		for wi := uint64(0); wi < LineSize/WordSize; wi++ {
			v := binary.LittleEndian.Uint64(img[(wbase+wi)*WordSize:])
			storeWord(&d.words[wbase+wi], v)
		}
		d.unlockLine(uint64(li), 0) // cached copies die with the old image
	}
}
