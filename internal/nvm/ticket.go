package nvm

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Commit tickets expose the device's fence timeline to readers that
// bypass the FASE machinery (the server's lock-free read fast lane).
//
// Every persist fence — whether issued directly by a thread's commit
// epilogue or as the single merged fence of a group-commit batch
// (gcLead funnels through Fence too) — bumps fenceSeq after its drain
// completes. A reader that snapshots CommitTicket *before* observing
// shard state therefore knows: once fenceSeq advances past that
// snapshot, at least one full fence has drained since the observation,
// so any data that was merely written (not yet fenced) at snapshot
// time is now either durable or the write's FASE has moved on.
//
// The fast lane uses this to preserve durability-before-ack without
// fencing on reads: a GET that raced an in-flight write FASE (seqlock
// validation failed) parks on WaitTicket instead of spinning, waking
// when the write's commit fence lands, when its cancel word changes
// (the shard's seqlock went even again), or when a crash fires.

// ticketing holds the waiter bookkeeping. It lives in its own struct so
// Device's hot-path fields stay on their existing cache lines.
type ticketing struct {
	// fenceSeq counts completed fence drains. Monotonic except across
	// Crash, which bumps it once more so pre-crash waiters never miss
	// a wake (tickets are liveness hints, not durability proofs across
	// a crash — recovery re-establishes durable state).
	fenceSeq atomic.Uint64

	// waiters counts goroutines parked (or about to park) in
	// WaitTicket. Fence only takes the mutex to broadcast when this is
	// nonzero, keeping the uncontended fence path lock-free.
	waiters atomic.Int32

	mu   sync.Mutex
	cond *sync.Cond
}

func (tk *ticketing) init() { tk.cond = sync.NewCond(&tk.mu) }

// bump advances the fence sequence and wakes any parked waiters. Called
// by Fence after its drain, and by Crash so parked readers die with the
// crash instead of hanging.
func (tk *ticketing) bump() {
	tk.fenceSeq.Add(1)
	if tk.waiters.Load() > 0 {
		tk.mu.Lock()
		tk.cond.Broadcast()
		tk.mu.Unlock()
	}
}

// CommitTicket returns the current fence sequence number. A later
// WaitTicket(t+1, ...) blocks until at least one full fence has drained
// after this call.
func (d *Device) CommitTicket() uint64 { return d.tick.fenceSeq.Load() }

// WaitTicket blocks until the fence sequence reaches t, until cancel
// (if non-nil) no longer holds was, or until an injected crash fires —
// in which case it panics CrashSignal like every other device
// operation, so a parked reader unwinds through the same recovery path
// as an executing one.
//
// The wait spins briefly first (fences are short) and then parks on a
// condvar that Fence broadcasts. cancel lets a waiter whose wake
// condition is not a future fence — e.g. a seqlock that goes even in
// the window between a FASE's final fence and its epoch bump — bail
// out; the canceller must call WakeTicketWaiters after changing the
// word.
func (d *Device) WaitTicket(t uint64, cancel *atomic.Uint64, was uint64) {
	tk := &d.tick
	done := func() bool {
		return tk.fenceSeq.Load() >= t ||
			(cancel != nil && cancel.Load() != was) ||
			d.anyCrashFired()
	}
	for i := 0; i < 256; i++ {
		if done() {
			goto out
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
	tk.waiters.Add(1)
	tk.mu.Lock()
	for !done() {
		tk.cond.Wait()
	}
	tk.mu.Unlock()
	tk.waiters.Add(-1)
out:
	if d.anyCrashFired() {
		panic(CrashSignal{})
	}
}

// WakeTicketWaiters wakes every goroutine parked in WaitTicket so it
// can re-check its predicate. Cheap when nobody is parked (one atomic
// load). Callers that change a WaitTicket cancel word, and shutdown
// paths that need parked readers to notice closed state, must call
// this.
func (d *Device) WakeTicketWaiters() {
	tk := &d.tick
	if tk.waiters.Load() > 0 {
		tk.mu.Lock()
		tk.cond.Broadcast()
		tk.mu.Unlock()
	}
}
