package nvm

import "sync/atomic"

// Crash injection for native (non-VM) code: the device counts memory
// events and, when an armed budget is exhausted, panics with CrashSignal
// in whichever goroutine issued the event — and in every other goroutine
// at its next device access. This is the simulation's SIGKILL: all
// threads die, volatile state is abandoned, and the test then calls
// Crash() to settle the persistence domain and reattaches.

// CrashSignal is the panic payload of an injected crash. Harness code
// recovers it and treats the goroutine as dead.
type CrashSignal struct{}

var (
	injectArmed  atomic.Bool
	injectFired  atomic.Bool
	injectBudget atomic.Int64
)

// ArmCrash arms global crash injection with a budget of n device events;
// a negative n disarms and clears the fired state. Injection state is
// process-global (a crash kills every device user), which mirrors power
// failure and keeps the hot paths to a single atomic load.
func ArmCrash(n int64) {
	if n < 0 {
		injectArmed.Store(false)
		injectFired.Store(false)
		return
	}
	injectFired.Store(false)
	injectBudget.Store(n)
	injectArmed.Store(true)
}

// CrashArmed reports whether injection is armed.
func CrashArmed() bool { return injectArmed.Load() }

// TriggerCrash fires the injected crash immediately (injection must be
// armed). Use this for timed kills: arm with a huge budget BEFORE
// launching workers — so lock waiters take the crash-aware spin path —
// then trigger at the kill time. Every goroutine dies at its next device
// access or lock-spin check.
func TriggerCrash() {
	if !injectArmed.Load() {
		panic("nvm: TriggerCrash while disarmed")
	}
	injectFired.Store(true)
}

// CrashFired reports whether the injected crash has gone off.
func CrashFired() bool { return injectFired.Load() }

// tickCrash consumes one event and panics when the budget is spent.
func tickCrash() {
	if !injectArmed.Load() {
		return
	}
	if injectFired.Load() || injectBudget.Add(-1) < 0 {
		injectFired.Store(true)
		panic(CrashSignal{})
	}
}

// TickCrash exposes the event hook for components that model work
// without touching the device (e.g., lock spin loops).
func TickCrash() { tickCrash() }
