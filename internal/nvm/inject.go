package nvm

import "sync/atomic"

// Crash injection for native (non-VM) code: the device counts memory
// events and, when an armed budget is exhausted, panics with CrashSignal
// in whichever goroutine issued the event — and in every other goroutine
// at its next device access. This is the simulation's SIGKILL: all
// threads die, volatile state is abandoned, and the test then calls
// Crash() to settle the persistence domain and reattaches.

// CrashSignal is the panic payload of an injected crash. Harness code
// recovers it and treats the goroutine as dead.
type CrashSignal struct{}

// Budget scopes: an all-events budget burns down on every device event;
// a recovery-scoped budget burns down only while at least one Recover
// pass is live (between EnterRecovery and ExitRecovery), so the chaos
// harness can target "the Nth persist event of the recovery path"
// without counting the forward events that precede it.
const (
	scopeAll      = 0
	scopeRecovery = 1
)

var (
	injectArmed  atomic.Bool
	injectFired  atomic.Bool
	injectBudget atomic.Int64
	injectScope  atomic.Int32
	// recoveryDepth counts live Recover passes; recoveryPasses counts
	// EnterRecovery calls since the last reset (the chaos "attempt"
	// index, reported per nesting level in RecoveryAudit).
	recoveryDepth  atomic.Int64
	recoveryPasses atomic.Int64
)

// ArmCrash arms global crash injection with a budget of n device events;
// a negative n disarms and clears the fired state. Injection state is
// process-global (a crash kills every device user), which mirrors power
// failure and keeps the hot paths to a single atomic load.
func ArmCrash(n int64) {
	if n < 0 {
		injectArmed.Store(false)
		injectFired.Store(false)
		injectScope.Store(scopeAll)
		return
	}
	injectFired.Store(false)
	injectScope.Store(scopeAll)
	injectBudget.Store(n)
	injectArmed.Store(true)
}

// ArmRecoveryCrash arms a recovery-scoped budget: the crash fires at the
// n-th device event issued while a Recover pass is live. Events outside
// recovery do not consume the budget. A negative n disarms (same as
// ArmCrash(-1)).
func ArmRecoveryCrash(n int64) {
	if n < 0 {
		ArmCrash(-1)
		return
	}
	injectFired.Store(false)
	injectScope.Store(scopeRecovery)
	injectBudget.Store(n)
	injectArmed.Store(true)
}

// RecoveryCrashArmed reports whether a live recovery-scoped budget is
// armed. Recover implementations consult this to switch to their
// deterministic serial restore path, so the n-th recovery event is the
// same event on every replay.
func RecoveryCrashArmed() bool {
	return injectArmed.Load() && !injectFired.Load() && injectScope.Load() == scopeRecovery
}

// EnterRecovery marks the calling goroutine's Recover pass live and
// returns its attempt index (0 for the first pass since the last
// ResetRecoveryPasses). Every Recover implementation brackets itself
// with EnterRecovery/ExitRecovery so recovery-scoped budgets count its
// events.
func EnterRecovery() int {
	recoveryDepth.Add(1)
	return int(recoveryPasses.Add(1)) - 1
}

// ExitRecovery unmarks a live Recover pass. Call via defer so a
// mid-recovery CrashSignal still restores the depth.
func ExitRecovery() { recoveryDepth.Add(-1) }

// InRecovery reports whether any Recover pass is currently live.
func InRecovery() bool { return recoveryDepth.Load() > 0 }

// ResetRecoveryPasses zeroes the attempt counter (between chaos
// schedules).
func ResetRecoveryPasses() { recoveryPasses.Store(0) }

// RecoveryPasses returns the number of Recover passes begun since the
// last reset.
func RecoveryPasses() int { return int(recoveryPasses.Load()) }

// CrashBudgetRemaining returns the armed budget's remaining event count.
// The chaos sweep probes a path's event total by arming a huge budget,
// running the path, and reading total - remaining.
func CrashBudgetRemaining() int64 { return injectBudget.Load() }

// CrashArmed reports whether injection is armed.
func CrashArmed() bool { return injectArmed.Load() }

// TriggerCrash fires the injected crash immediately (injection must be
// armed). Use this for timed kills: arm with a huge budget BEFORE
// launching workers — so lock waiters take the crash-aware spin path —
// then trigger at the kill time. Every goroutine dies at its next device
// access or lock-spin check.
func TriggerCrash() {
	if !injectArmed.Load() {
		panic("nvm: TriggerCrash while disarmed")
	}
	injectFired.Store(true)
}

// CrashFired reports whether the injected crash has gone off.
func CrashFired() bool { return injectFired.Load() }

// tickCrash consumes one event and panics when the budget is spent. A
// fired crash kills every goroutine at its next event regardless of
// scope; an unfired recovery-scoped budget only burns down while a
// Recover pass is live.
func tickCrash() {
	if !injectArmed.Load() {
		return
	}
	if injectFired.Load() {
		panic(CrashSignal{})
	}
	if injectScope.Load() == scopeRecovery && recoveryDepth.Load() == 0 {
		return
	}
	if injectBudget.Add(-1) < 0 {
		injectFired.Store(true)
		panic(CrashSignal{})
	}
}

// TickCrash exposes the event hook for components that model work
// without touching the device (e.g., lock spin loops).
func TickCrash() { tickCrash() }
