package server

import (
	"bytes"
	"strconv"
)

// RESP (REdis Serialization Protocol) front end for the kv/redis runtime:
// GET/SET/DEL/PING/QUIT over both framings real clients use —
//
//	array frames:  *2\r\n$3\r\nGET\r\n$2\r\nk1\r\n
//	inline frames: GET k1\r\n
//
// Keys are 1..8 printable bytes (one kv/redis key word), values ASCII
// decimal uint64s. Same zero-copy discipline as the memcache parser:
// offsets into the caller's buffer, no allocation, malformed input turns
// into -ERR reply frames (fatal ones for framing-level corruption, since
// resynchronizing a broken RESP stream is guesswork).

const (
	respMaxArgs = 64 // arrays beyond this are refused (MGET takes up to 63 keys)
	respMaxKeys = respMaxArgs - 1
	respMaxBulk = 512 // single bulk-string bound; keeps frames buffer-sized
)

const (
	respReplyOK       = "+OK\r\n"
	respReplyPong     = "+PONG\r\n"
	respReplyProtoErr = "-ERR Protocol error\r\n"
	respReplyBadKey   = "-ERR key must be 1..8 printable bytes\r\n"
	respReplyBadInt   = "-ERR value is not an integer or out of range\r\n"
	respReplyArity    = "-ERR wrong number of arguments\r\n"
	respReplyUnknown  = "-ERR unknown command\r\n"
)

// respFrame is one parsed RESP command; key is a [start,end) offset pair
// into the buffer passed to parseRESP. GET and MGET carry their keys in
// keys[:nkeys]; mget marks a reply that needs the *N array header even
// for a single key.
type respFrame struct {
	op    uint8
	key   [2]int
	nkeys int
	keys  [respMaxKeys][2]int
	mget  bool
	val   uint64
	reply string
	fatal bool
}

func respReply(reply string, n int, fatal bool) (respFrame, int, error) {
	return respFrame{op: opReply, reply: reply, fatal: fatal}, n, nil
}

// parseRESP parses one command frame from the head of buf, with the same
// contract as parseMemcache: errNeedMore on a frame prefix, an opReply
// frame (never a panic, never n == 0) on malformed input.
func parseRESP(buf []byte) (respFrame, int, error) {
	if len(buf) == 0 {
		return respFrame{}, 0, errNeedMore
	}
	if buf[0] == '*' {
		return parseRESPArray(buf)
	}
	return parseRESPInline(buf)
}

// respLine finds the CRLF-terminated line starting at i, returning the
// offset just past it. ok=false distinguishes "need more" (err == nil is
// impossible here; the caller maps !ok && within bounds to errNeedMore)
// from a framing violation (bad == true: LF without CR, or line too long).
func respLine(buf []byte, i int) (end int, ok, bad bool) {
	window := buf[i:]
	if len(window) > maxLineLen {
		window = window[:maxLineLen]
	}
	nl := bytes.IndexByte(window, '\n')
	if nl < 0 {
		return 0, false, len(buf)-i >= maxLineLen
	}
	if nl == 0 || window[nl-1] != '\r' {
		return 0, false, true
	}
	return i + nl + 1, true, false
}

// respInt parses the ASCII integer body of a length/count line
// buf[s:e-2] (e is just past the CRLF).
func respInt(buf []byte, s, e int) (uint64, bool) {
	return parseUint(buf[s : e-2])
}

func parseRESPArray(buf []byte) (respFrame, int, error) {
	end, ok, bad := respLine(buf, 0)
	if !ok {
		if bad {
			return respReply(respReplyProtoErr, len(buf), true)
		}
		return respFrame{}, 0, errNeedMore
	}
	nargs, okN := respInt(buf, 1, end)
	if !okN || nargs == 0 || nargs > respMaxArgs {
		return respReply(respReplyProtoErr, len(buf), true)
	}
	var args [respMaxArgs][2]int
	pos := end
	for i := uint64(0); i < nargs; i++ {
		if pos >= len(buf) {
			return respFrame{}, 0, errNeedMore
		}
		if buf[pos] != '$' {
			return respReply(respReplyProtoErr, len(buf), true)
		}
		hend, ok, bad := respLine(buf, pos)
		if !ok {
			if bad {
				return respReply(respReplyProtoErr, len(buf), true)
			}
			return respFrame{}, 0, errNeedMore
		}
		blen, okL := respInt(buf, pos+1, hend)
		if !okL || blen > respMaxBulk {
			return respReply(respReplyProtoErr, len(buf), true)
		}
		bend := hend + int(blen) + 2
		if len(buf) < bend {
			return respFrame{}, 0, errNeedMore
		}
		if buf[bend-2] != '\r' || buf[bend-1] != '\n' {
			return respReply(respReplyProtoErr, len(buf), true)
		}
		args[i] = [2]int{hend, hend + int(blen)}
		pos = bend
	}
	f, fatal := respCommand(buf, args[:nargs])
	if fatal {
		return respReply(f.reply, len(buf), true)
	}
	return f, pos, nil
}

func parseRESPInline(buf []byte) (respFrame, int, error) {
	end, ok, bad := respLine(buf, 0)
	if !ok {
		if bad {
			return respReply(respReplyProtoErr, len(buf), true)
		}
		return respFrame{}, 0, errNeedMore
	}
	line := buf[:end-2]
	var args [respMaxArgs][2]int
	nargs := 0
	for i := 0; ; {
		s, e := nextTok(line, i)
		if s == e {
			break
		}
		if nargs == respMaxArgs {
			return respReply(respReplyProtoErr, len(buf), true)
		}
		args[nargs] = [2]int{s, e}
		nargs++
		i = e
	}
	if nargs == 0 {
		// Blank inline line: consume and ignore, like redis does.
		return respFrame{op: opNone}, end, nil
	}
	f, fatal := respCommand(buf, args[:nargs])
	if fatal {
		return respReply(f.reply, len(buf), true)
	}
	return f, end, nil
}

// eqFold compares a token to an uppercase ASCII literal case-insensitively
// without allocating.
func eqFold(b []byte, upper string) bool {
	if len(b) != len(upper) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// respCommand interprets a parsed argument vector. fatal=true means the
// caller should convert the frame's reply into a hang-up (QUIT, which is
// not an error, also travels this way via f.fatal on the frame itself).
func respCommand(buf []byte, args [][2]int) (respFrame, bool) {
	cmd := buf[args[0][0]:args[0][1]]
	switch {
	case eqFold(cmd, "GET"):
		if len(args) != 2 {
			return respFrame{op: opReply, reply: respReplyArity}, false
		}
		if !validKey(buf[args[1][0]:args[1][1]], respKeyLen) {
			return respFrame{op: opReply, reply: respReplyBadKey}, false
		}
		f := respFrame{op: opGet, nkeys: 1}
		f.keys[0] = args[1]
		return f, false
	case eqFold(cmd, "MGET"):
		if len(args) < 2 {
			return respFrame{op: opReply, reply: respReplyArity}, false
		}
		f := respFrame{op: opGet, mget: true, nkeys: len(args) - 1}
		for i, a := range args[1:] {
			if !validKey(buf[a[0]:a[1]], respKeyLen) {
				return respFrame{op: opReply, reply: respReplyBadKey}, false
			}
			f.keys[i] = a
		}
		return f, false
	case eqFold(cmd, "INCR") || eqFold(cmd, "INCRBY"):
		// INCR <key> adds 1; INCRBY <key> <delta> adds delta. A missing
		// key counts from zero, Redis-style (on this store's uint64s).
		delta := uint64(1)
		if eqFold(cmd, "INCRBY") {
			if len(args) != 3 {
				return respFrame{op: opReply, reply: respReplyArity}, false
			}
			d, ok := parseUint(buf[args[2][0]:args[2][1]])
			if !ok {
				return respFrame{op: opReply, reply: respReplyBadInt}, false
			}
			delta = d
		} else if len(args) != 2 {
			return respFrame{op: opReply, reply: respReplyArity}, false
		}
		if !validKey(buf[args[1][0]:args[1][1]], respKeyLen) {
			return respFrame{op: opReply, reply: respReplyBadKey}, false
		}
		return respFrame{op: opIncr, key: args[1], val: delta}, false
	case eqFold(cmd, "SET"):
		if len(args) != 3 {
			return respFrame{op: opReply, reply: respReplyArity}, false
		}
		if !validKey(buf[args[1][0]:args[1][1]], respKeyLen) {
			return respFrame{op: opReply, reply: respReplyBadKey}, false
		}
		val, ok := parseUint(buf[args[2][0]:args[2][1]])
		if !ok {
			return respFrame{op: opReply, reply: respReplyBadInt}, false
		}
		return respFrame{op: opSet, key: args[1], val: val}, false
	case eqFold(cmd, "DEL"):
		if len(args) != 2 {
			return respFrame{op: opReply, reply: respReplyArity}, false
		}
		if !validKey(buf[args[1][0]:args[1][1]], respKeyLen) {
			return respFrame{op: opReply, reply: respReplyBadKey}, false
		}
		return respFrame{op: opDel, key: args[1]}, false
	case eqFold(cmd, "INFO"):
		// INFO or INFO <section>; the section argument is accepted but
		// the full body is always returned, keeping the response
		// single-sourced from the snapshot layer.
		if len(args) > 2 {
			return respFrame{op: opReply, reply: respReplyArity}, false
		}
		return respFrame{op: opStats}, false
	case eqFold(cmd, "PING"):
		if len(args) != 1 {
			return respFrame{op: opReply, reply: respReplyArity}, false
		}
		return respFrame{op: opReply, reply: respReplyPong}, false
	case eqFold(cmd, "QUIT"):
		return respFrame{op: opReply, reply: respReplyOK, fatal: true}, false
	default:
		return respFrame{op: opReply, reply: respReplyUnknown}, false
	}
}

// encodeRespReply formats s's response into s.resp after the shard
// executed the operation; allocation-free like its memcache twin.
func encodeRespReply(s *slot) {
	b := s.resp[:0]
	switch s.op {
	case opGet:
		if s.mhdr > 0 {
			// First slot of an MGET: the array header rides the first
			// element's response so the reply stays one slot per key.
			b = append(b, '*')
			b = strconv.AppendUint(b, uint64(s.mhdr), 10)
			b = append(b, '\r', '\n')
		}
		if s.okOut {
			var dig [maxDataLen]byte
			d := strconv.AppendUint(dig[:0], s.vOut, 10)
			b = append(b, '$')
			b = strconv.AppendUint(b, uint64(len(d)), 10)
			b = append(b, '\r', '\n')
			b = append(b, d...)
			b = append(b, '\r', '\n')
		} else {
			b = append(b, "$-1\r\n"...)
		}
	case opSet:
		b = append(b, "+OK\r\n"...)
	case opDel:
		if s.okOut {
			b = append(b, ":1\r\n"...)
		} else {
			b = append(b, ":0\r\n"...)
		}
	case opIncr:
		if s.okOut {
			b = append(b, ':')
			b = strconv.AppendUint(b, s.vOut, 10)
			b = append(b, '\r', '\n')
		} else {
			b = append(b, respReplyBadInt...)
		}
	}
	s.rlen = int32(len(b))
}
