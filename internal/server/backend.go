package server

import (
	"encoding/binary"
	"fmt"

	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/kv/redis"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// A Store is a sharded persistent key-value backend. Each shard is an
// independent FASE domain: the server binds shard i to exactly one
// persist.Thread, and only that thread's pipeline goroutine ever executes
// operations on it, so shards commit concurrently without contending on
// store locks — their flushes and fences meet only in the device's
// group-commit combiner. Keys are pre-encoded into the two fixed words
// the parsers produce (RESP uses only k0).
type Store interface {
	NumShards() int
	// ShardOf maps encoded key words to a shard index; the reader
	// goroutines call it to route requests, so it must be pure.
	ShardOf(k0, k1 uint64) int
	Get(t persist.Thread, shard int, k0, k1 uint64) (uint64, bool)
	Set(t persist.Thread, shard int, k0, k1, val uint64)
	Del(t persist.Thread, shard int, k0, k1 uint64) bool
	// Incr adjusts a key read-modify-write as one FASE: wrapping add,
	// or (dec) subtract clamped at zero. Memcache semantics report a
	// miss; Redis semantics treat a missing key as zero and insert.
	Incr(t persist.Thread, shard int, k0, k1, delta uint64, dec bool) (uint64, bool)
	// GetFast is the lock-free device-direct read used by the server's
	// read fast lane. Safe to call from any goroutine concurrently with
	// the shard's pipeline thread; only sound under the caller's
	// seqlock validation. ok=false means the walk could not complete
	// safely (fall back to the slot path), distinct from a miss.
	GetFast(shard int, k0, k1 uint64) (v uint64, hit, ok bool)
	// Touch retires sampled read stats (and the item's access time) as
	// an ordinary FASE on the pipeline thread. May be a no-op for
	// stores without read-side stats.
	Touch(t persist.Thread, shard int, k0, k1, gets, hits uint64)
	// Count reports a shard's live item count (unsynchronized read).
	Count(shard int) uint64
	// EvictOne removes one item from a shard to bound its size,
	// reporting whether a victim existed. Pipeline-thread only.
	EvictOne(t persist.Thread, shard int) bool
	// Device exposes the underlying NVM device; the fast lane uses its
	// commit tickets to park reads behind in-flight commits.
	Device() *nvm.Device
	// Register declares the store's resumable FASEs for recovery.
	Register(rr *persist.ResumeRegistry)
}

// Region root slots for the shard directories. The runtimes reserve the
// low slots and the chaos harness uses 20..25; the server claims the next
// two.
const (
	RootMemcacheDir = 26
	RootRespDir     = 27
)

// dirMagic tags a shard directory's header word: magic<<32 | nshards.
const dirMagic = 0x1D05E4 // "iDO serve"

// shardMix is the request-routing hash over the encoded key words
// (splitmix64-style finalizer; keys are short ASCII, so the multiply
// cascade matters).
func shardMix(k0, k1 uint64) uint64 {
	h := k0*0x9E3779B97F4A7C15 ^ k1
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

// padKeyWords encodes a validated wire key into the stores' fixed-width
// key words: zero-padded little-endian. Injective over legal keys (see
// validKey — no legal key byte is NUL).
func padKeyWords(kb []byte) (k0, k1 uint64) {
	var p [16]byte
	copy(p[:], kb)
	return binary.LittleEndian.Uint64(p[0:8]), binary.LittleEndian.Uint64(p[8:16])
}

// McKeyWords encodes a memcache wire key (1..16 printable bytes) into
// cache key words; exported so tests and the chaos smoke can predict
// where a key lands.
func McKeyWords(key []byte) (k0, k1 uint64, ok bool) {
	if !validKey(key, maxKeyLen) {
		return 0, 0, false
	}
	k0, k1 = padKeyWords(key)
	return k0, k1, true
}

// RespKeyWords encodes a RESP wire key (1..8 printable bytes) into the
// kv/redis key word.
func RespKeyWords(key []byte) (k uint64, ok bool) {
	if !validKey(key, respKeyLen) {
		return 0, false
	}
	k0, _ := padKeyWords(key)
	return k0, true
}

func roundShards(n int) (int, error) {
	if n <= 0 || n > 1024 {
		return 0, fmt.Errorf("server: shard count %d out of range", n)
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p, nil
}

// publishDir persists a shard directory — header word (dirMagic<<32 |
// nshards) then one table address per shard — and roots it, making the
// store reachable after a crash. The directory is immutable once
// published, so ordering is the usual create-then-root: persist the
// body, fence, then set the (itself durable) root.
func publishDir(reg *region.Region, root int, tbls []uint64) error {
	size := 8 * (1 + len(tbls))
	dir, err := reg.Alloc.Alloc(size)
	if err != nil {
		return fmt.Errorf("server: shard directory: %w", err)
	}
	dev := reg.Dev
	dev.Store64(dir, dirMagic<<32|uint64(len(tbls)))
	for i, tbl := range tbls {
		dev.Store64(dir+8+uint64(i)*8, tbl)
	}
	dev.PersistRange(dir, uint64(size))
	dev.Fence()
	reg.SetRoot(root, dir)
	return nil
}

// readDir reopens a published shard directory.
func readDir(reg *region.Region, root int) ([]uint64, error) {
	dir := reg.Root(root)
	if dir == 0 {
		return nil, fmt.Errorf("server: root slot %d holds no shard directory", root)
	}
	hdr := reg.Dev.Load64(dir)
	if hdr>>32 != dirMagic {
		return nil, fmt.Errorf("server: shard directory header %#x: bad magic", hdr)
	}
	n := int(hdr & 0xFFFFFFFF)
	if n == 0 || n > 1024 || n&(n-1) != 0 {
		return nil, fmt.Errorf("server: shard directory: implausible shard count %d", n)
	}
	tbls := make([]uint64, n)
	for i := range tbls {
		tbls[i] = reg.Dev.Load64(dir + 8 + uint64(i)*8)
	}
	return tbls, nil
}

// McStore is the memcache-protocol backend: one kv/memcache cache per
// shard, all inside env.Reg.
type McStore struct {
	env    *memcache.Env
	caches []*memcache.Cache
	tbls   []uint64
	mask   uint64
}

// NewMcStore creates shards caches (rounded up to a power of two) of
// bucketsPerShard buckets each and publishes the shard directory at
// RootMemcacheDir.
func NewMcStore(env *memcache.Env, shards, bucketsPerShard int) (*McStore, error) {
	n, err := roundShards(shards)
	if err != nil {
		return nil, err
	}
	st := &McStore{env: env, mask: uint64(n - 1)}
	for i := 0; i < n; i++ {
		cache, tbl, err := memcache.New(env, bucketsPerShard)
		if err != nil {
			return nil, err
		}
		st.caches = append(st.caches, cache)
		st.tbls = append(st.tbls, tbl)
	}
	if err := publishDir(env.Reg, RootMemcacheDir, st.tbls); err != nil {
		return nil, err
	}
	return st, nil
}

// AttachMcStore reopens the store published by NewMcStore after a
// restart or crash.
func AttachMcStore(env *memcache.Env) (*McStore, error) {
	tbls, err := readDir(env.Reg, RootMemcacheDir)
	if err != nil {
		return nil, err
	}
	st := &McStore{env: env, tbls: tbls, mask: uint64(len(tbls) - 1)}
	for _, tbl := range tbls {
		st.caches = append(st.caches, memcache.Attach(env, tbl))
	}
	return st, nil
}

func (st *McStore) NumShards() int            { return len(st.caches) }
func (st *McStore) ShardOf(k0, k1 uint64) int { return int(shardMix(k0, k1) & st.mask) }

// Tables exposes the per-shard table addresses for image verification.
func (st *McStore) Tables() []uint64 { return st.tbls }

func (st *McStore) Get(t persist.Thread, shard int, k0, k1 uint64) (uint64, bool) {
	return st.caches[shard].Get(t, k0, k1)
}
func (st *McStore) Set(t persist.Thread, shard int, k0, k1, val uint64) {
	st.caches[shard].Set(t, k0, k1, val)
}
func (st *McStore) Del(t persist.Thread, shard int, k0, k1 uint64) bool {
	return st.caches[shard].Delete(t, k0, k1)
}
func (st *McStore) Incr(t persist.Thread, shard int, k0, k1, delta uint64, dec bool) (uint64, bool) {
	return st.caches[shard].Incr(t, k0, k1, delta, dec)
}
func (st *McStore) GetFast(shard int, k0, k1 uint64) (uint64, bool, bool) {
	return st.caches[shard].GetFast(k0, k1)
}
func (st *McStore) Touch(t persist.Thread, shard int, k0, k1, gets, hits uint64) {
	st.caches[shard].Touch(t, k0, k1, gets, hits)
}
func (st *McStore) Count(shard int) uint64 { return st.caches[shard].Count() }
func (st *McStore) EvictOne(t persist.Thread, shard int) bool {
	return st.caches[shard].EvictOne(t)
}
func (st *McStore) Device() *nvm.Device { return st.env.Reg.Dev }
func (st *McStore) Register(rr *persist.ResumeRegistry) {
	// One registration covers every cache in the region.
	memcache.Register(rr, st.env)
}

// RespStore is the RESP backend: one kv/redis DB per shard. kv/redis
// keys are single words; k1 is ignored throughout.
type RespStore struct {
	env  *redis.Env
	dbs  []*redis.DB
	tbls []uint64
	mask uint64
}

// NewRespStore creates the sharded DBs and publishes the directory at
// RootRespDir.
func NewRespStore(env *redis.Env, shards, bucketsPerShard int) (*RespStore, error) {
	n, err := roundShards(shards)
	if err != nil {
		return nil, err
	}
	st := &RespStore{env: env, mask: uint64(n - 1)}
	for i := 0; i < n; i++ {
		db, tbl, err := redis.New(env, bucketsPerShard)
		if err != nil {
			return nil, err
		}
		st.dbs = append(st.dbs, db)
		st.tbls = append(st.tbls, tbl)
	}
	if err := publishDir(env.Reg, RootRespDir, st.tbls); err != nil {
		return nil, err
	}
	return st, nil
}

// AttachRespStore reopens the store published by NewRespStore.
func AttachRespStore(env *redis.Env) (*RespStore, error) {
	tbls, err := readDir(env.Reg, RootRespDir)
	if err != nil {
		return nil, err
	}
	st := &RespStore{env: env, tbls: tbls, mask: uint64(len(tbls) - 1)}
	for _, tbl := range tbls {
		st.dbs = append(st.dbs, redis.Attach(env, tbl))
	}
	return st, nil
}

func (st *RespStore) NumShards() int            { return len(st.dbs) }
func (st *RespStore) ShardOf(k0, k1 uint64) int { return int(shardMix(k0, k1) & st.mask) }

// Tables exposes the per-shard table addresses for image verification.
func (st *RespStore) Tables() []uint64 { return st.tbls }

func (st *RespStore) Get(t persist.Thread, shard int, k0, _ uint64) (uint64, bool) {
	return st.dbs[shard].Get(t, k0)
}
func (st *RespStore) Set(t persist.Thread, shard int, k0, _, val uint64) {
	st.dbs[shard].Set(t, k0, val)
}
func (st *RespStore) Del(t persist.Thread, shard int, k0, _ uint64) bool {
	return st.dbs[shard].Del(t, k0)
}
func (st *RespStore) Incr(t persist.Thread, shard int, k0, _, delta uint64, dec bool) (uint64, bool) {
	if dec {
		// RESP DECR is unimplemented at the protocol layer; keep the
		// store honest anyway by refusing rather than corrupting.
		return 0, false
	}
	return st.dbs[shard].Incr(t, k0, delta), true
}
func (st *RespStore) GetFast(shard int, k0, _ uint64) (uint64, bool, bool) {
	return st.dbs[shard].GetFast(k0)
}
func (st *RespStore) Touch(persist.Thread, int, uint64, uint64, uint64, uint64) {
	// kv/redis GETs maintain no read-side stats or access times.
}
func (st *RespStore) Count(shard int) uint64 { return st.dbs[shard].Count() }
func (st *RespStore) EvictOne(t persist.Thread, shard int) bool {
	return st.dbs[shard].EvictOne(t)
}
func (st *RespStore) Device() *nvm.Device { return st.env.Reg.Dev }
func (st *RespStore) Register(rr *persist.ResumeRegistry) {
	redis.Register(rr, st.env)
}
