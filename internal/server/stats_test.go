package server_test

import (
	"bytes"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/server"
)

// Golden wire conformance for the in-band introspection verbs: memcache
// `stats` and RESP `INFO`. Both render from the metrics snapshot layer;
// these tests pin the byte-level framing, the fixed field order, and the
// counter values after a deterministic op sequence on a quiesced
// connection (all prior replies read, so every prior slot completed).

// readUntil reads from c until the buffer ends with suffix, with a
// watchdog like readFull.
func readUntil(t *testing.T, c net.Conn, suffix string) []byte {
	t.Helper()
	done := make(chan []byte, 1)
	errc := make(chan error, 1)
	go func() {
		var buf []byte
		tmp := make([]byte, 4096)
		for {
			n, err := c.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if bytes.HasSuffix(buf, []byte(suffix)) {
				done <- buf
				return
			}
			if err != nil {
				errc <- err
				return
			}
		}
	}()
	select {
	case buf := <-done:
		return buf
	case err := <-errc:
		t.Fatalf("reading until %q: %v", suffix, err)
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out reading until %q", suffix)
	}
	return nil
}

// mcStatOrder is the fixed STAT line order AppendMemcacheStats emits.
// ido_fences_per_op only appears once the server has served a request.
var mcStatOrder = []string{
	"uptime", "curr_connections", "total_connections",
	"cmd_get", "cmd_set", "cmd_delete", "cmd_incr",
	"get_hits", "get_misses", "evictions",
	"bytes_read", "bytes_written", "protocol_errors",
	"rejected_connections", "idle_kicks",
	"ido_requests", "ido_shards",
	"ido_fast_gets", "ido_fast_retries", "ido_fast_parks",
	"ido_fast_fallbacks", "ido_touch_fases",
	"ido_fences", "ido_flushes", "ido_nt_stores", "ido_crashes",
	"ido_fences_per_op",
	"ido_gc_epochs", "ido_gc_combined",
	"ido_req_p50_ns", "ido_req_p99_ns",
	"ido_repl_role", "ido_repl_attached", "ido_repl_records",
	"ido_repl_bytes", "ido_repl_acked", "ido_repl_degraded",
	"ido_repl_lag_records", "ido_repl_lag_bytes", "ido_repl_lag_ns",
	"ido_repl_reconnects", "ido_repl_failovers",
}

// parseStats splits a memcache stats body into ordered name→value pairs
// and validates the line grammar.
func parseStats(t *testing.T, body []byte) (names []string, vals map[string]string) {
	t.Helper()
	vals = map[string]string{}
	lines := strings.Split(string(body), "\r\n")
	if lines[len(lines)-1] != "" || lines[len(lines)-2] != "END" {
		t.Fatalf("stats body not END-terminated: %q", body)
	}
	for _, ln := range lines[:len(lines)-2] {
		parts := strings.Split(ln, " ")
		if len(parts) != 3 || parts[0] != "STAT" || parts[1] == "" || parts[2] == "" {
			t.Fatalf("malformed STAT line %q", ln)
		}
		names = append(names, parts[1])
		vals[parts[1]] = parts[2]
	}
	return names, vals
}

func statU(t *testing.T, vals map[string]string, name string) uint64 {
	t.Helper()
	v, ok := vals[name]
	if !ok {
		t.Fatalf("stats missing %q", name)
	}
	u, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("stat %s=%q not a uint: %v", name, v, err)
	}
	return u
}

func TestMemcacheStatsWire(t *testing.T) {
	tr := obs.New(obs.DefaultConfig())
	w := newWorld(t, server.ProtoMemcache, 2, nvm.Config{Size: 1 << 22}, tr)
	c := w.dial(t)
	steps := []step{
		{"set foo 0 0 3\r\n123\r\n", "STORED\r\n"},
		{"get foo\r\n", "VALUE foo 0 3\r\n123\r\nEND\r\n"},
		{"get nope\r\n", "END\r\n"},
		{"delete foo\r\n", "DELETED\r\n"},
	}
	runSteps(t, c, steps)

	if _, err := c.Write([]byte("stats\r\n")); err != nil {
		t.Fatalf("stats: %v", err)
	}
	body := readUntil(t, c, "END\r\n")
	names, vals := parseStats(t, body)

	// Field order is part of the wire contract.
	want := mcStatOrder
	if len(names) != len(want) {
		t.Fatalf("got %d STAT lines %v, want %d", len(names), names, len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("STAT %d is %q, want %q (full order %v)", i, names[i], want[i], names)
		}
	}

	// Counter values after the deterministic sequence above.
	sent := 0
	for _, s := range steps {
		sent += len(s.send)
	}
	sent += len("stats\r\n")
	for name, wantV := range map[string]uint64{
		"curr_connections":   1,
		"total_connections":  1,
		"cmd_get":            2,
		"cmd_set":            1,
		"cmd_delete":         1,
		"cmd_incr":           0,
		"get_hits":           1,
		"get_misses":         1,
		"ido_fast_gets":      2,
		"ido_fast_fallbacks": 0,
		"protocol_errors":    0,
		"ido_requests":       4,
		"ido_shards":         2,
		"ido_crashes":        0,
		"bytes_read":         uint64(sent),
	} {
		if got := statU(t, vals, name); got != wantV {
			t.Errorf("stat %s = %d, want %d", name, got, wantV)
		}
	}
	if statU(t, vals, "ido_fences") == 0 {
		t.Errorf("ido_fences = 0 after persistent set+delete")
	}
	// The snapshot's device counters must agree with the tracer's exact
	// event counts — same invariant the obs conformance suite enforces,
	// now visible over the wire.
	if got, traced := statU(t, vals, "ido_fences"), tr.Count(obs.KFence); got != traced {
		t.Errorf("wire ido_fences %d != traced fences %d", got, traced)
	}
	if statU(t, vals, "ido_req_p99_ns") == 0 {
		t.Errorf("ido_req_p99_ns = 0 with a tracer attached")
	}

	// Arguments are refused (subcommand stats are not implemented).
	runSteps(t, c, []step{{"stats items\r\n", "ERROR\r\n"}})

	// A second stats read reflects the first: total requests grew.
	if _, err := c.Write([]byte("stats\r\n")); err != nil {
		t.Fatalf("stats: %v", err)
	}
	_, vals2 := parseStats(t, readUntil(t, c, "END\r\n"))
	if r1, r2 := statU(t, vals, "ido_requests"), statU(t, vals2, "ido_requests"); r2 <= r1 {
		t.Errorf("ido_requests did not advance across reads: %d then %d", r1, r2)
	}
}

// respInfoSections is the fixed section order AppendRESPInfo emits.
var respInfoSections = []string{"# Server", "# Clients", "# Stats", "# Persistence", "# Replication", "# Latency"}

// readLine reads one CRLF line byte-by-byte (the whole reply may land
// in a single Read, so readUntil would overshoot into the payload).
func readLine(t *testing.T, c net.Conn) []byte {
	t.Helper()
	var buf []byte
	for !bytes.HasSuffix(buf, []byte("\r\n")) {
		buf = append(buf, readFull(t, c, 1)...)
		if len(buf) > 64 {
			t.Fatalf("header line too long: %q", buf)
		}
	}
	return buf
}

// readBulk reads one RESP bulk string reply, validating its framing.
func readBulk(t *testing.T, c net.Conn) []byte {
	t.Helper()
	hdr := readLine(t, c)
	if len(hdr) < 4 || hdr[0] != '$' {
		t.Fatalf("not a bulk header: %q", hdr)
	}
	n, err := strconv.Atoi(string(hdr[1 : len(hdr)-2]))
	if err != nil || n < 0 {
		t.Fatalf("bad bulk length in %q: %v", hdr, err)
	}
	body := readFull(t, c, n+2)
	if string(body[n:]) != "\r\n" {
		t.Fatalf("bulk payload not CRLF-terminated: %q", body[n:])
	}
	return body[:n]
}

func TestRESPInfoWire(t *testing.T) {
	tr := obs.New(obs.DefaultConfig())
	w := newWorld(t, server.ProtoRESP, 2, nvm.Config{Size: 1 << 22}, tr)
	c := w.dial(t)
	runSteps(t, c, []step{
		{"*3\r\n$3\r\nSET\r\n$2\r\nk1\r\n$2\r\n42\r\n", "+OK\r\n"},
		{"GET k1\r\n", "$2\r\n42\r\n"},
		{"GET kx\r\n", "$-1\r\n"},
		{"*2\r\n$3\r\nDEL\r\n$2\r\nk1\r\n", ":1\r\n"},
	})

	if _, err := c.Write([]byte("INFO\r\n")); err != nil {
		t.Fatalf("INFO: %v", err)
	}
	payload := string(readBulk(t, c))

	// Sections appear in order; every non-section line is key:value.
	pos := -1
	for _, sec := range respInfoSections {
		at := strings.Index(payload, sec+"\r\n")
		if at < 0 {
			t.Fatalf("INFO missing section %q:\n%s", sec, payload)
		}
		if at < pos {
			t.Fatalf("INFO section %q out of order:\n%s", sec, payload)
		}
		pos = at
	}
	for _, ln := range strings.Split(strings.TrimSuffix(payload, "\r\n"), "\r\n") {
		if strings.HasPrefix(ln, "# ") {
			continue
		}
		if k, v, ok := strings.Cut(ln, ":"); !ok || k == "" || v == "" {
			t.Fatalf("malformed INFO line %q", ln)
		}
	}
	for _, wantLn := range []string{
		"connected_clients:1\r\n",
		"total_connections_received:1\r\n",
		"total_commands_processed:4\r\n",
		"total_reads_processed:2\r\n",
		"total_writes_processed:2\r\n",
		"fastlane_reads_processed:2\r\n",
		"keyspace_hits:1\r\n",
		"keyspace_misses:1\r\n",
		"protocol_errors:0\r\n",
		"ido_crashes:0\r\n",
		"role:none\r\n",
		"repl_lag_records:0\r\n",
	} {
		if !strings.Contains(payload, wantLn) {
			t.Errorf("INFO missing %q:\n%s", strings.TrimSuffix(wantLn, "\r\n"), payload)
		}
	}
	if !strings.Contains(payload, "ido_fences:") || strings.Contains(payload, "ido_fences:0\r\n") {
		t.Errorf("INFO ido_fences missing or zero after persistent ops:\n%s", payload)
	}

	// INFO <section> is accepted (full body), INFO a b is an arity error.
	if _, err := c.Write([]byte("*2\r\n$4\r\ninfo\r\n$6\r\nserver\r\n")); err != nil {
		t.Fatalf("INFO server: %v", err)
	}
	if p2 := readBulk(t, c); !bytes.Contains(p2, []byte("# Persistence")) {
		t.Errorf("INFO <section> did not return the full body")
	}
	runSteps(t, c, []step{{"INFO a b\r\n", "-ERR wrong number of arguments\r\n"}})
}
