package server

import (
	"testing"
)

// The fuzz targets drive each parser the way a connection reader does:
// repeatedly over the head of the stream, consuming what each frame
// claims. The invariants under arbitrary bytes: never panic, never
// consume zero or more than is buffered, errNeedMore only with n == 0,
// and every frame's key offsets must land inside the consumed bytes and
// satisfy the key validity rules the stores depend on.

func checkMcFrame(t *testing.T, buf []byte, f mcFrame, n int) {
	t.Helper()
	switch f.op {
	case opGet:
		if f.nkeys < 1 || f.nkeys > maxMultiGet {
			t.Fatalf("get frame with %d keys", f.nkeys)
		}
	case opSet, opDel, opIncr, opDecr:
		if f.nkeys != 1 {
			t.Fatalf("op %d with %d keys", f.op, f.nkeys)
		}
	case opReply:
		if f.reply == "" {
			t.Fatalf("reply frame with empty reply")
		}
		return
	case opQuit, opNone, opStats:
		return
	default:
		t.Fatalf("bad op %d", f.op)
	}
	for i := 0; i < f.nkeys; i++ {
		s, e := f.keys[i][0], f.keys[i][1]
		if s < 0 || s >= e || e > n {
			t.Fatalf("key %d offsets [%d,%d) outside consumed %d", i, s, e, n)
		}
		if !validKey(buf[s:e], maxKeyLen) {
			t.Fatalf("frame carries invalid key %q", buf[s:e])
		}
	}
}

func FuzzParseMemcache(f *testing.F) {
	f.Add([]byte("get foo\r\n"))
	f.Add([]byte("get a b c\r\n"))
	f.Add([]byte("gets foo\r\n"))
	f.Add([]byte("set foo 0 0 3\r\n123\r\n"))
	f.Add([]byte("set foo 0 0 3 noreply\r\n123\r\n"))
	f.Add([]byte("set foo 0 0 25\r\n1234567890123456789012345\r\n"))
	f.Add([]byte("delete foo noreply\r\n"))
	f.Add([]byte("incr foo 5\r\n"))
	f.Add([]byte("decr foo 1 noreply\r\n"))
	f.Add([]byte("incr foo abc\r\n"))
	f.Add([]byte("version\r\nquit\r\n"))
	f.Add([]byte("stats\r\n"))
	f.Add([]byte("stats items\r\n"))
	f.Add([]byte("set foo 0 0 9999\r\n"))
	f.Add([]byte("set k 0 0 abc\r\n"))
	f.Add([]byte("get \x00\x01\xff\r\n"))
	f.Add([]byte("\r\n"))
	f.Add([]byte("set a 18446744073709551616 0 1\r\nx\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := data
		for len(buf) > 0 {
			fr, n, err := parseMemcache(buf)
			if err != nil {
				if err != errNeedMore {
					t.Fatalf("unexpected error %v", err)
				}
				if n != 0 {
					t.Fatalf("errNeedMore with n=%d", n)
				}
				return
			}
			if n <= 0 || n > len(buf) {
				t.Fatalf("consumed %d of %d buffered", n, len(buf))
			}
			checkMcFrame(t, buf, fr, n)
			if fr.fatal || fr.op == opQuit {
				return
			}
			buf = buf[n:]
		}
	})
}

func checkRespFrame(t *testing.T, buf []byte, f respFrame, n int) {
	t.Helper()
	switch f.op {
	case opGet:
		if f.nkeys < 1 || f.nkeys > respMaxKeys {
			t.Fatalf("get frame with %d keys", f.nkeys)
		}
		for i := 0; i < f.nkeys; i++ {
			s, e := f.keys[i][0], f.keys[i][1]
			if s < 0 || s >= e || e > n {
				t.Fatalf("key %d offsets [%d,%d) outside consumed %d", i, s, e, n)
			}
			if !validKey(buf[s:e], respKeyLen) {
				t.Fatalf("frame carries invalid key %q", buf[s:e])
			}
		}
	case opSet, opDel, opIncr:
		s, e := f.key[0], f.key[1]
		if s < 0 || s >= e || e > n {
			t.Fatalf("key offsets [%d,%d) outside consumed %d", s, e, n)
		}
		if !validKey(buf[s:e], respKeyLen) {
			t.Fatalf("frame carries invalid key %q", buf[s:e])
		}
	case opReply:
		if f.reply == "" {
			t.Fatalf("reply frame with empty reply")
		}
	case opNone, opStats:
	default:
		t.Fatalf("bad op %d", f.op)
	}
}

func FuzzParseRESP(f *testing.F) {
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$2\r\nk1\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$2\r\nk1\r\n$2\r\n42\r\n"))
	f.Add([]byte("*2\r\n$3\r\nDEL\r\n$2\r\nk1\r\nPING\r\n"))
	f.Add([]byte("GET k1\r\nSET k1 5\r\n"))
	f.Add([]byte("*1\r\n$4\r\nPING\r\n"))
	f.Add([]byte("*3\r\n$4\r\nMGET\r\n$2\r\nk1\r\n$2\r\nk2\r\n"))
	f.Add([]byte("MGET k1 k2 k3\r\n"))
	f.Add([]byte("INCR k1\r\n"))
	f.Add([]byte("*3\r\n$6\r\nINCRBY\r\n$2\r\nk1\r\n$1\r\n5\r\n"))
	f.Add([]byte("QUIT\r\n"))
	f.Add([]byte("INFO\r\n"))
	f.Add([]byte("*1\r\n$4\r\nINFO\r\n"))
	f.Add([]byte("*2\r\n$4\r\nINFO\r\n$5\r\nstats\r\n"))
	f.Add([]byte("*9999\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$bad\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$600\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("*1\r\n$0\r\n\r\n"))
	f.Add([]byte("\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		buf := data
		for len(buf) > 0 {
			fr, n, err := parseRESP(buf)
			if err != nil {
				if err != errNeedMore {
					t.Fatalf("unexpected error %v", err)
				}
				if n != 0 {
					t.Fatalf("errNeedMore with n=%d", n)
				}
				return
			}
			if n <= 0 || n > len(buf) {
				t.Fatalf("consumed %d of %d buffered", n, len(buf))
			}
			checkRespFrame(t, buf, fr, n)
			if fr.fatal {
				return
			}
			buf = buf[n:]
		}
	})
}
