package server_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/kv/redis"
	"github.com/ido-nvm/ido/internal/loadgen"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/server"
)

// world is one in-process server universe: region, runtime, sharded
// store, server.
type world struct {
	reg   *region.Region
	lm    *locks.Manager
	rt    persist.Runtime
	store server.Store
	srv   *server.Server
}

func newWorld(t testing.TB, proto server.Proto, shards int, devcfg nvm.Config, tr *obs.Tracer) *world {
	t.Helper()
	return newWorldCfg(t, proto, shards, devcfg, tr, nil)
}

// newWorldCfg is newWorld with a server.Config hook (watermarks,
// disabling the read fast lane, ...) applied before the server starts.
func newWorldCfg(t testing.TB, proto server.Proto, shards int, devcfg nvm.Config, tr *obs.Tracer, mut func(*server.Config)) *world {
	t.Helper()
	w := &world{}
	devcfg.Tracer = tr
	w.reg = region.Create(1<<22, devcfg)
	w.lm = locks.NewManager(w.reg)
	w.rt = core.New(core.DefaultConfig())
	if err := w.rt.Attach(w.reg, w.lm); err != nil {
		t.Fatalf("attach: %v", err)
	}
	var err error
	if proto == server.ProtoMemcache {
		w.store, err = server.NewMcStore(&memcache.Env{Reg: w.reg, LM: w.lm}, shards, 64)
	} else {
		w.store, err = server.NewRespStore(&redis.Env{Reg: w.reg}, shards, 64)
	}
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	// Wire the collector the way cmd/idoserve does, so in-band stats see
	// device counters too.
	cfg := server.Config{Proto: proto, Metrics: metrics.NewCollector(tr, w.reg.Dev)}
	if mut != nil {
		mut(&cfg)
	}
	w.srv, err = server.New(w.rt, w.store, cfg, tr)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	t.Cleanup(func() { w.srv.Close() })
	return w
}

// dial connects one client to the server over an in-memory pipe.
func (w *world) dial(t testing.TB) net.Conn {
	t.Helper()
	client, srvEnd := loadgen.MemPipe(64 << 10)
	if err := w.srv.ServeConn(srvEnd); err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	return client
}

// readFull reads exactly n bytes with a watchdog (MemPipe has no
// deadlines; a short read here should fail the test, not hang it).
func readFull(t *testing.T, c net.Conn, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(c, buf)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("read %d bytes: %v (got %q)", n, err, buf)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out reading %d bytes", n)
	}
	return buf
}

// step is one golden exchange: write send, expect exactly want back.
type step struct {
	send string
	want string
}

func runSteps(t *testing.T, c net.Conn, steps []step) {
	t.Helper()
	for i, s := range steps {
		if _, err := c.Write([]byte(s.send)); err != nil {
			t.Fatalf("step %d: write: %v", i, err)
		}
		if s.want == "" {
			continue
		}
		got := readFull(t, c, len(s.want))
		if string(got) != s.want {
			t.Fatalf("step %d (%q): got %q, want %q", i, s.send, got, s.want)
		}
	}
}

// expectEOF asserts the server closed the connection.
func expectEOF(t *testing.T, c net.Conn) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		var b [1]byte
		_, err := c.Read(b[:])
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("expected connection close, got more bytes")
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for connection close")
	}
}

func TestServerMemcacheGolden(t *testing.T) {
	w := newWorld(t, server.ProtoMemcache, 4, nvm.Config{Size: 1 << 22}, nil)
	c := w.dial(t)
	runSteps(t, c, []step{
		{"set foo 0 0 3\r\n123\r\n", "STORED\r\n"},
		{"get foo\r\n", "VALUE foo 0 3\r\n123\r\nEND\r\n"},
		{"get foo missing\r\n", "VALUE foo 0 3\r\n123\r\nEND\r\n"},
		{"set bar 1 7200 2 noreply\r\n77\r\n", ""},
		{"get bar foo\r\n", "VALUE bar 0 2\r\n77\r\nVALUE foo 0 3\r\n123\r\nEND\r\n"},
		{"gets foo\r\n", "VALUE foo 0 3\r\n123\r\nEND\r\n"},
		{"delete foo\r\n", "DELETED\r\n"},
		{"delete foo\r\n", "NOT_FOUND\r\n"},
		{"delete bar noreply\r\n", ""},
		{"get foo\r\n", "END\r\n"},
		{"version\r\n", "VERSION ido/1.0\r\n"},
		// Error vocabulary.
		{"bogus\r\n", "ERROR\r\n"},
		{"get\r\n", "ERROR\r\n"},
		{"get this-key-is-way-too-long-to-store\r\n", "CLIENT_ERROR bad key\r\n"},
		{"set k 0 0 abc\r\n", "CLIENT_ERROR bad command line format\r\n"},
		{"set k 0 0 3\r\nxyz\r\n", "CLIENT_ERROR bad data chunk\r\n"},
		{"set k 0 0 25\r\n1234567890123456789012345\r\n", "SERVER_ERROR object too large for cache\r\n"},
		{"set k 0 0 1 what\r\n", "ERROR\r\n"},
	})
	if _, err := c.Write([]byte("quit\r\n")); err != nil {
		t.Fatalf("quit: %v", err)
	}
	expectEOF(t, c)
}

func TestServerMemcachePipelined(t *testing.T) {
	w := newWorld(t, server.ProtoMemcache, 4, nvm.Config{Size: 1 << 22}, nil)
	c := w.dial(t)
	// One write carrying a whole pipelined burst; responses must come
	// back in order, whatever shards the keys landed on.
	// Values are canonical uint64 decimals (10..73) so the read-back
	// bytes match the stored bytes exactly.
	var req, want bytes.Buffer
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&req, "set key%02d 0 0 2\r\n%d\r\n", i, i+10)
		want.WriteString("STORED\r\n")
	}
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&req, "get key%02d\r\n", i)
		fmt.Fprintf(&want, "VALUE key%02d 0 2\r\n%d\r\nEND\r\n", i, i+10)
	}
	runSteps(t, c, []step{{req.String(), want.String()}})
}

func TestServerMemcacheFragmented(t *testing.T) {
	w := newWorld(t, server.ProtoMemcache, 2, nvm.Config{Size: 1 << 22}, nil)
	c := w.dial(t)
	// The same frames, torn at every awkward boundary: mid-token,
	// between the command line and its data, mid-CRLF.
	frags := []string{
		"se", "t frag 0 0 4", "\r", "\n", "12", "34", "\r\n",
		"get ", "fr", "ag\r\n",
		"delete fra", "g\r\n",
	}
	for _, f := range frags {
		if _, err := c.Write([]byte(f)); err != nil {
			t.Fatalf("write %q: %v", f, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	want := "STORED\r\nVALUE frag 0 4\r\n1234\r\nEND\r\nDELETED\r\n"
	got := readFull(t, c, len(want))
	if string(got) != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestServerRESPGolden(t *testing.T) {
	w := newWorld(t, server.ProtoRESP, 4, nvm.Config{Size: 1 << 22}, nil)
	c := w.dial(t)
	runSteps(t, c, []step{
		{"*3\r\n$3\r\nSET\r\n$2\r\nk1\r\n$2\r\n42\r\n", "+OK\r\n"},
		{"*2\r\n$3\r\nGET\r\n$2\r\nk1\r\n", "$2\r\n42\r\n"},
		{"GET k1\r\n", "$2\r\n42\r\n"}, // inline framing
		{"get k1\r\n", "$2\r\n42\r\n"}, // case-insensitive
		{"GET nope\r\n", "$-1\r\n"},    // miss
		{"SET k1 7\r\n", "+OK\r\n"},    // inline set
		{"GET k1\r\n", "$1\r\n7\r\n"},  // overwrite visible
		{"*2\r\n$3\r\nDEL\r\n$2\r\nk1\r\n", ":1\r\n"},
		{"DEL k1\r\n", ":0\r\n"},
		{"PING\r\n", "+PONG\r\n"},
		{"*1\r\n$4\r\nPING\r\n", "+PONG\r\n"},
		// Error vocabulary.
		{"SET k2\r\n", "-ERR wrong number of arguments\r\n"},
		{"SET k2 notanum\r\n", "-ERR value is not an integer or out of range\r\n"},
		{"FOO bar\r\n", "-ERR unknown command\r\n"},
		{"GET averylongkey\r\n", "-ERR key must be 1..8 printable bytes\r\n"},
	})
	if _, err := c.Write([]byte("QUIT\r\n")); err != nil {
		t.Fatalf("quit: %v", err)
	}
	got := readFull(t, c, len("+OK\r\n"))
	if string(got) != "+OK\r\n" {
		t.Fatalf("QUIT reply: got %q", got)
	}
	expectEOF(t, c)
}

func TestServerRESPFragmentedAndPipelined(t *testing.T) {
	w := newWorld(t, server.ProtoRESP, 4, nvm.Config{Size: 1 << 22}, nil)
	c := w.dial(t)
	// Array frame torn byte-by-byte across writes.
	frame := "*3\r\n$3\r\nSET\r\n$2\r\nkf\r\n$3\r\n999\r\n"
	for i := 0; i < len(frame); i++ {
		if _, err := c.Write([]byte{frame[i]}); err != nil {
			t.Fatalf("write byte %d: %v", i, err)
		}
	}
	got := readFull(t, c, len("+OK\r\n"))
	if string(got) != "+OK\r\n" {
		t.Fatalf("fragmented SET: got %q", got)
	}
	// Pipelined burst: two arrays and an inline command in one write.
	runSteps(t, c, []step{{
		"*2\r\n$3\r\nGET\r\n$2\r\nkf\r\n*2\r\n$3\r\nDEL\r\n$2\r\nkf\r\nPING\r\n",
		"$3\r\n999\r\n:1\r\n+PONG\r\n",
	}})
	// Framing corruption is fatal.
	if _, err := c.Write([]byte("*2\r\n$3\r\nGET\r\n$bad\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	got = readFull(t, c, len(respProtoErr))
	if string(got) != respProtoErr {
		t.Fatalf("protocol error: got %q", got)
	}
	expectEOF(t, c)
}

const respProtoErr = "-ERR Protocol error\r\n"

// TestServerHammer16 drives 16 connections of mixed pipelined ops
// through both protocols (this is the CI race-hammer target).
func TestServerHammer16(t *testing.T) {
	for _, proto := range []server.Proto{server.ProtoMemcache, server.ProtoRESP} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			tr := obs.New(obs.Config{})
			w := newWorld(t, proto, 8, nvm.Config{Size: 1 << 22, GroupCommit: nvm.GroupCommitConfig{Enabled: true, WindowNS: 2000}}, tr)
			lp := loadgen.ProtoMemcache
			if proto == server.ProtoRESP {
				lp = loadgen.ProtoRESP
			}
			res, err := loadgen.Run(loadgen.Config{
				Proto:    lp,
				Conns:    16,
				Pipeline: 8,
				Keys:     2048,
				SetPct:   40,
				DelPct:   20,
				Ops:      400,
				Seed:     1,
				Tracer:   tr,
			}, func() (net.Conn, error) {
				client, srvEnd := loadgen.MemPipe(64 << 10)
				if err := w.srv.ServeConn(srvEnd); err != nil {
					return nil, err
				}
				return client, nil
			})
			if err != nil {
				t.Fatalf("loadgen: %v", err)
			}
			if res.Errs != 0 {
				t.Fatalf("hammer: %d error responses (of %d ops)", res.Errs, res.Ops)
			}
			if want := uint64(16 * 400); res.Ops != want {
				t.Fatalf("hammer: %d ops acked, want %d", res.Ops, want)
			}
			if res.Hits == 0 || res.Misses == 0 {
				t.Fatalf("degenerate mix: hits=%d misses=%d", res.Hits, res.Misses)
			}
			if sum := tr.Hist(obs.HReqLatency); sum.Count == 0 {
				t.Fatalf("no HReqLatency observations")
			}
			st := w.srv.Stats()
			if st.Reqs < res.Ops || st.Batches == 0 || st.Batches > st.Reqs {
				t.Fatalf("stats look wrong: %+v vs %d client ops", st, res.Ops)
			}
			t.Logf("%s: %d ops, %d batches (%.1f reqs/batch), p50=%dns p99=%dns",
				proto, st.Reqs, st.Batches, float64(st.Reqs)/float64(st.Batches), res.P50, res.P99)
		})
	}
}

// TestServerConcurrentConnsSharedKeys has many conns racing on the same
// keys — exercising cross-connection ordering through shard pipelines —
// then verifies a quiesced read sees one of the written values.
func TestServerConcurrentConnsSharedKeys(t *testing.T) {
	w := newWorld(t, server.ProtoMemcache, 4, nvm.Config{Size: 1 << 22}, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := w.dial(t)
			defer c.Close()
			var req bytes.Buffer
			for j := 0; j < 50; j++ {
				fmt.Fprintf(&req, "set shared 0 0 1 noreply\r\n%d\r\n", id)
			}
			req.WriteString("get shared\r\n")
			if _, err := c.Write(req.Bytes()); err != nil {
				return
			}
			buf := make([]byte, 256)
			io.ReadAtLeast(c, buf, len("VALUE shared 0 1\r\n0\r\nEND\r\n"))
		}(i)
	}
	wg.Wait()
	c := w.dial(t)
	runSteps(t, c, []step{{"get shared\r\n", "VALUE shared 0 1\r\n"}})
	got := readFull(t, c, len("X\r\nEND\r\n"))
	if got[0] < '0' || got[0] > '7' || string(got[1:]) != "\r\nEND\r\n" {
		t.Fatalf("final value: got %q", got)
	}
}
