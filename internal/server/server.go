// Package server is the networked front end over the paper's Fig. 5
// key-value runtimes: a memcache-text-protocol server backed by
// kv/memcache and a RESP server backed by kv/redis, both riding the
// device's group-commit combiner.
//
// The shape is the whole point. Per-connection reader goroutines parse
// zero-copy frames and hash each request to one of N shard pipelines; a
// shard pipeline is a single goroutine owning one persist.Thread and one
// store shard, executing FASEs back-to-back. Under load every shard has
// a request in hand, so N commit streams hit PersistBatch/Fence
// concurrently — exactly the overlap the group-commit combiner turns
// into one shared fence per window. Responses complete out of order
// across shards but are emitted in arrival order per connection through
// a fixed slot ring, and a per-connection writer batches however many
// responses are ready into one socket write.
//
// Everything on the steady-state path is allocation-free: slots are
// fixed rings, free-slot tokens are a counting-semaphore channel,
// completions ring an edge-triggered doorbell, response bytes are built
// in place with append into array-backed slices.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
)

// Proto selects the wire protocol (and with it the backend flavor).
type Proto uint8

const (
	ProtoMemcache Proto = iota
	ProtoRESP
)

func (p Proto) String() string {
	if p == ProtoRESP {
		return "resp"
	}
	return "memcache"
}

// ErrServerClosed is returned by Serve and ServeConn after Close (or a
// device crash) has shut the server down.
var ErrServerClosed = errors.New("server: closed")

// Config sizes the per-connection and per-shard machinery.
type Config struct {
	Proto Proto
	// Ring is the per-connection pipeline depth: the number of in-flight
	// request slots (default 256). A reader that gets ahead of its shards
	// by this much blocks until responses drain.
	Ring int
	// ShardQueue is the per-shard request queue depth (default 256).
	ShardQueue int
	// ReadBuf is the per-connection read buffer (default 64 KiB; min 8 KiB,
	// which every parseable frame fits inside — see the parser bounds).
	ReadBuf int
	// WriteBuf is the per-connection response batch buffer (default 32 KiB);
	// the writer flushes when it fills or when no further response is ready.
	WriteBuf int
	// Metrics, when non-nil, is the collector the in-band introspection
	// verbs (memcache `stats`, RESP `INFO`) answer from. New attaches the
	// server as the collector's Source if none is set, so the same
	// collector drives the admin plane's /metrics. When nil the server
	// builds a private collector over its own gauges alone.
	Metrics *metrics.Collector
}

func (cfg *Config) fill() {
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	if cfg.ShardQueue <= 0 {
		cfg.ShardQueue = 256
	}
	if cfg.ReadBuf < 8<<10 {
		cfg.ReadBuf = 64 << 10
	}
	if cfg.WriteBuf < 4<<10 {
		cfg.WriteBuf = 32 << 10
	}
}

// respCap bounds one encoded response: the longest memcache VALUE line
// (6+16+3+2+2+20+2 bytes) plus END, and every canned error line, fit.
const respCap = 96

// slot is one in-flight request. The reader fills it, exactly one shard
// pipeline (or the reader itself, for local replies) completes it, and
// the connection writer emits and recycles it. done is the only
// cross-goroutine field: Store(true) after the fields are final
// publishes them to the writer's Load.
type slot struct {
	c       *conn
	op      uint8
	last    bool // final key of a multi-get: append END
	noreply bool
	fatal   bool // close the connection after emitting this response
	klen    uint8
	shard   int32
	key     [maxKeyLen]byte
	k0, k1  uint64
	val     uint64
	ts      int64 // tracer clock at dispatch (0 when tracing is off)
	vOut    uint64
	okOut   bool
	rlen    int32
	resp    [respCap]byte
	// big is the overflow response for replies that cannot fit resp
	// (stats/INFO bodies). Filled reader-side, consumed and nilled by the
	// writer; always nil on the GET/SET/DEL hot path, which stays
	// allocation-free.
	big  []byte
	done atomic.Bool
}

// conn is one client connection: a slot ring plus the two channels that
// sequence it. free is a counting semaphore holding a token per
// recyclable slot (reader consumes on claim, writer returns on emit).
// cmpl is an edge-triggered doorbell (capacity 1): complete() rings it
// with a non-blocking send after publishing done, and the writer drains
// every done slot per ring. Because each done.Store happens before its
// send attempt, and a failed send means the writer has a consume-then-
// rescan still ahead of it, no completion is ever missed — and a
// completer can never block, so shard pipelines cannot stall on a slow
// or dead connection.
type conn struct {
	srv   *Server
	nc    net.Conn
	ring  []slot
	free  chan struct{}
	cmpl  chan struct{}
	deadc chan struct{} // closed when the writer exits: unblocks the reader
	rseq  uint64        // next slot to claim (reader only)
	wseq  uint64        // next slot to emit (writer only)
	wbuf  []byte
}

// shard is one commit pipeline: a goroutine owning one persist.Thread
// and one store shard. fn is built once — the Exec closure reads cur, so
// the hot loop allocates nothing.
type shard struct {
	srv  *Server
	idx  int
	th   persist.Thread
	in   chan *slot
	cur  *slot
	fn   func()
	ring *obs.Ring

	// Pipeline gauges/counters, read by MetricsSnapshot. inflight is 1
	// while the shard thread is inside a FASE; queue depth is len(in).
	inflight atomic.Int32
	reqs     atomic.Uint64
	verbs    [3]atomic.Uint64 // gets, sets, dels (indexed op-opGet)
	hits     atomic.Uint64
	misses   atomic.Uint64
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Reqs     uint64 // responses emitted (including errors and canned replies)
	Batches  uint64 // socket writes (response flushes)
	BytesOut uint64
}

// Server multiplexes client connections over the shard pipelines.
type Server struct {
	cfg    Config
	store  Store
	tr     *obs.Tracer
	shards []*shard

	stopc     chan struct{} // closed on Close or crash: everything unwinds
	crashc    chan struct{} // closed only when a FASE hit an injected crash
	stopOnce  sync.Once
	crashOnce sync.Once
	wg        sync.WaitGroup

	mu     sync.Mutex
	conns  map[*conn]struct{}
	lns    []net.Listener
	closed bool

	coll *metrics.Collector

	reqs       atomic.Uint64
	batches    atomic.Uint64
	bytesOut   atomic.Uint64
	bytesIn    atomic.Uint64
	protoErrs  atomic.Uint64
	connsOpen  atomic.Int64
	connsTotal atomic.Uint64
	crashes    atomic.Uint64
}

// New builds a server over an attached store. One persist.Thread is
// created per store shard; rt must therefore have capacity for
// store.NumShards() more threads. tr may be nil (tracing off).
func New(rt persist.Runtime, store Store, cfg Config, tr *obs.Tracer) (*Server, error) {
	cfg.fill()
	srv := &Server{
		cfg:    cfg,
		store:  store,
		tr:     tr,
		stopc:  make(chan struct{}),
		crashc: make(chan struct{}),
		conns:  map[*conn]struct{}{},
	}
	for i := 0; i < store.NumShards(); i++ {
		th, err := rt.NewThread()
		if err != nil {
			// Unwind the shard goroutines already started before the
			// unreachable Server leaks them (and their persist threads).
			srv.shutdown()
			srv.wg.Wait()
			return nil, fmt.Errorf("server: shard %d thread: %w", i, err)
		}
		sh := &shard{
			srv:  srv,
			idx:  i,
			th:   th,
			in:   make(chan *slot, cfg.ShardQueue),
			ring: tr.ThreadRing(fmt.Sprintf("server/shard%d", i)),
		}
		sh.fn = func() { sh.exec(sh.cur) }
		srv.shards = append(srv.shards, sh)
		srv.wg.Add(1)
		go sh.run()
	}
	if cfg.Metrics != nil {
		srv.coll = cfg.Metrics
		if srv.coll.Src == nil {
			srv.coll.Src = srv
		}
	} else {
		srv.coll = metrics.NewCollector(tr, nil)
		srv.coll.Src = srv
	}
	return srv, nil
}

// Crashed is closed when a shard pipeline hit an injected device crash;
// the server then shuts down as a crashed process would — abruptly,
// leaving recovery to the next attach.
func (srv *Server) Crashed() <-chan struct{} { return srv.crashc }

// Stats snapshots the serve counters.
func (srv *Server) Stats() Stats {
	return Stats{
		Reqs:     srv.reqs.Load(),
		Batches:  srv.batches.Load(),
		BytesOut: srv.bytesOut.Load(),
	}
}

// MetricsSnapshot fills dst with the front end's gauges and counters —
// the metrics.Source contract. dst's shard slice is reused whenever its
// capacity suffices, so a caller that holds its Snapshot reads at
// 0 allocs/op in steady state.
func (srv *Server) MetricsSnapshot(dst *metrics.ServerStats) {
	dst.ConnsOpen = srv.connsOpen.Load()
	dst.ConnsTotal = srv.connsTotal.Load()
	dst.Reqs = srv.reqs.Load()
	dst.Batches = srv.batches.Load()
	dst.BytesIn = srv.bytesIn.Load()
	dst.BytesOut = srv.bytesOut.Load()
	dst.ProtoErrs = srv.protoErrs.Load()
	dst.Crashes = srv.crashes.Load()
	n := len(srv.shards)
	if cap(dst.Shards) < n {
		dst.Shards = make([]metrics.ShardStats, n)
	}
	dst.Shards = dst.Shards[:n]
	for i, sh := range srv.shards {
		d := &dst.Shards[i]
		d.QueueDepth = int64(len(sh.in))
		d.InFlight = int64(sh.inflight.Load())
		d.Reqs = sh.reqs.Load()
		d.Gets = sh.verbs[0].Load()
		d.Sets = sh.verbs[1].Load()
		d.Dels = sh.verbs[2].Load()
		d.Hits = sh.hits.Load()
		d.Misses = sh.misses.Load()
	}
}

// ServeConn adopts a connection: it starts the reader and writer
// goroutines and returns. The connection is closed when the client
// quits, errors, or the server stops.
func (srv *Server) ServeConn(nc net.Conn) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		nc.Close()
		return ErrServerClosed
	}
	c := &conn{
		srv:   srv,
		nc:    nc,
		ring:  make([]slot, srv.cfg.Ring),
		free:  make(chan struct{}, srv.cfg.Ring),
		cmpl:  make(chan struct{}, 1),
		deadc: make(chan struct{}),
		wbuf:  make([]byte, 0, srv.cfg.WriteBuf),
	}
	srv.conns[c] = struct{}{}
	srv.mu.Unlock()
	srv.connsTotal.Add(1)
	srv.connsOpen.Add(1)
	for i := 0; i < srv.cfg.Ring; i++ {
		c.free <- struct{}{}
	}
	srv.wg.Add(2)
	go c.readLoop()
	go c.writeLoop()
	return nil
}

// Serve accepts connections from l until the listener or server closes.
// It blocks; run it in its own goroutine to serve several listeners.
func (srv *Server) Serve(l net.Listener) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	srv.lns = append(srv.lns, l)
	srv.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			select {
			case <-srv.stopc:
				return ErrServerClosed
			default:
				return err
			}
		}
		srv.ServeConn(nc)
	}
}

// Close stops the server and waits for every goroutine to unwind. Safe
// after a crash (it then only joins).
func (srv *Server) Close() error {
	srv.shutdown()
	srv.wg.Wait()
	return nil
}

func (srv *Server) shutdown() {
	srv.stopOnce.Do(func() { close(srv.stopc) })
	srv.mu.Lock()
	srv.closed = true
	for c := range srv.conns {
		c.nc.Close()
	}
	for _, l := range srv.lns {
		l.Close()
	}
	srv.mu.Unlock()
}

// noteCrash records an injected-crash death. Called from a shard
// goroutine, so it must not wait on the WaitGroup it is part of.
func (srv *Server) noteCrash() {
	srv.crashOnce.Do(func() {
		srv.crashes.Add(1)
		close(srv.crashc)
	})
	srv.shutdown()
}

func (srv *Server) dropConn(c *conn) {
	srv.mu.Lock()
	delete(srv.conns, c)
	srv.mu.Unlock()
	srv.connsOpen.Add(-1)
	c.nc.Close()
}

// ---- shard pipeline ----

func (sh *shard) exec(s *slot) {
	switch s.op {
	case opGet:
		s.vOut, s.okOut = sh.srv.store.Get(sh.th, sh.idx, s.k0, s.k1)
	case opSet:
		sh.srv.store.Set(sh.th, sh.idx, s.k0, s.k1, s.val)
	case opDel:
		s.okOut = sh.srv.store.Del(sh.th, sh.idx, s.k0, s.k1)
	}
}

func (sh *shard) run() {
	defer sh.srv.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nvm.CrashSignal); ok {
				sh.srv.noteCrash()
				return
			}
			panic(r)
		}
	}()
	mc := sh.srv.cfg.Proto == ProtoMemcache
	for {
		select {
		case s := <-sh.in:
			sh.inflight.Store(1)
			sh.cur = s
			sh.th.Exec(sh.fn)
			sh.cur = nil
			sh.inflight.Store(0)
			sh.reqs.Add(1)
			sh.verbs[s.op-opGet].Add(1)
			if s.op == opGet {
				if s.okOut {
					sh.hits.Add(1)
				} else {
					sh.misses.Add(1)
				}
			}
			if mc {
				encodeMcReply(s)
			} else {
				encodeRespReply(s)
			}
			if sh.ring != nil {
				now := sh.ring.Clock()
				sh.ring.Span(obs.KNetReq, uint64(s.op), uint64(sh.idx), s.ts)
				sh.ring.Observe(obs.HReqLatency, uint64(now-s.ts))
			}
			complete(s)
		case <-sh.srv.stopc:
			return
		}
	}
}

// complete publishes a finished slot to its connection writer: the done
// store is the release edge for every other slot field, and the
// non-blocking doorbell send can never stall the completer. If the send
// finds the doorbell already rung, the writer still has that token to
// consume, and it rescans the ring after every consume — so this
// completion is picked up by that pass.
func complete(s *slot) {
	c := s.c
	s.done.Store(true)
	select {
	case c.cmpl <- struct{}{}:
	default:
	}
}

// ---- connection reader ----

// claim acquires the next ring slot, blocking until the writer recycles
// one; false means the server is stopping or the writer already died.
func (c *conn) claim() (*slot, bool) {
	select {
	case <-c.free:
	case <-c.srv.stopc:
		return nil, false
	case <-c.deadc:
		return nil, false
	}
	s := &c.ring[c.rseq%uint64(len(c.ring))]
	c.rseq++
	s.c = c
	return s, true
}

// dispatch hands a filled slot to its shard pipeline; false means the
// server is stopping.
func (c *conn) dispatch(s *slot) bool {
	sh := c.srv.shards[s.shard]
	select {
	case sh.in <- s:
		return true
	case <-c.srv.stopc:
		return false
	}
}

// local completes a canned reply on the reader side without touching a
// shard. Returns false (stop reading) for fatal replies.
func (c *conn) local(reply string, fatal bool) bool {
	if len(reply) > 0 {
		// Every canned reply that is not VERSION (memcache) or +OK/+PONG
		// (RESP) reports a protocol-level refusal; count it. First-byte
		// classification is exact over the canned vocabulary: errors
		// start 'E' (ERROR), 'C' (CLIENT_ERROR), 'S' (SERVER_ERROR),
		// or '-' (RESP -ERR).
		switch reply[0] {
		case 'E', 'C', 'S', '-':
			c.srv.protoErrs.Add(1)
		}
	}
	s, ok := c.claim()
	if !ok {
		return false
	}
	s.op = opReply
	s.last, s.noreply = false, false
	s.fatal = fatal
	s.rlen = int32(copy(s.resp[:], reply))
	complete(s)
	return !fatal
}

// localStats answers an introspection verb (memcache `stats`, RESP
// `INFO`) reader-side: the snapshot and its rendering happen on this
// connection's goroutine, never a shard pipeline, and the body rides
// the slot's overflow field since stats bodies outgrow resp. The only
// allocation a stats request performs is its own response.
func (c *conn) localStats() bool {
	s, ok := c.claim()
	if !ok {
		return false
	}
	s.op = opReply
	s.last, s.noreply, s.fatal = false, false, false
	s.rlen = 0
	var snap metrics.Snapshot
	c.srv.coll.Read(&snap)
	if c.srv.cfg.Proto == ProtoMemcache {
		s.big = metrics.AppendMemcacheStats(nil, &snap)
	} else {
		s.big = metrics.AppendRESPInfo(nil, &snap)
	}
	complete(s)
	return true
}

// fillKey copies and encodes a validated wire key into the slot.
func (s *slot) fillKey(kb []byte) {
	s.klen = uint8(len(kb))
	copy(s.key[:], kb)
	for i := len(kb); i < maxKeyLen; i++ {
		s.key[i] = 0
	}
	s.k0, s.k1 = padKeyWords(s.key[:s.klen])
	s.shard = int32(s.c.srv.store.ShardOf(s.k0, s.k1))
}

// sendOp claims, fills, and dispatches one store operation.
func (c *conn) sendOp(op uint8, kb []byte, val uint64, noreply, last bool, ts int64) bool {
	s, ok := c.claim()
	if !ok {
		return false
	}
	s.op = op
	s.last = last
	s.noreply = noreply
	s.fatal = false
	s.val = val
	s.ts = ts
	s.rlen = 0
	s.fillKey(kb)
	return c.dispatch(s)
}

func (c *conn) dispatchMc(f *mcFrame, raw []byte, ts int64) bool {
	switch f.op {
	case opNone:
		return true
	case opGet:
		for i := 0; i < f.nkeys; i++ {
			kb := raw[f.keys[i][0]:f.keys[i][1]]
			if !c.sendOp(opGet, kb, 0, false, i == f.nkeys-1, ts) {
				return false
			}
		}
		return true
	case opSet, opDel:
		kb := raw[f.keys[0][0]:f.keys[0][1]]
		return c.sendOp(f.op, kb, f.val, f.noreply, false, ts)
	case opReply:
		return c.local(f.reply, f.fatal)
	case opQuit:
		return c.local("", true)
	case opStats:
		return c.localStats()
	}
	return true
}

func (c *conn) dispatchResp(f *respFrame, raw []byte, ts int64) bool {
	switch f.op {
	case opNone:
		return true
	case opGet, opSet, opDel:
		kb := raw[f.key[0]:f.key[1]]
		return c.sendOp(f.op, kb, f.val, false, false, ts)
	case opReply:
		return c.local(f.reply, f.fatal)
	case opStats:
		return c.localStats()
	}
	return true
}

func (c *conn) readLoop() {
	defer c.srv.wg.Done()
	buf := make([]byte, c.srv.cfg.ReadBuf)
	mc := c.srv.cfg.Proto == ProtoMemcache
	start, end := 0, 0
	for {
		for start < end {
			ts := c.srv.tr.Clock()
			var n int
			var cont bool
			var err error
			if mc {
				var f mcFrame
				f, n, err = parseMemcache(buf[start:end])
				if err == nil {
					cont = c.dispatchMc(&f, buf[start:start+n], ts)
				}
			} else {
				var f respFrame
				f, n, err = parseRESP(buf[start:end])
				if err == nil {
					cont = c.dispatchResp(&f, buf[start:start+n], ts)
				}
			}
			if err != nil {
				break // errNeedMore: refill
			}
			start += n
			if !cont {
				return
			}
		}
		if start > 0 {
			copy(buf, buf[start:end])
			end -= start
			start = 0
		}
		n, err := c.nc.Read(buf[end:])
		end += n
		c.srv.bytesIn.Add(uint64(n))
		if err != nil {
			// EOF or a torn connection: emit a zero-length fatal slot so
			// the writer flushes everything pending, then closes.
			c.local("", true)
			return
		}
	}
}

// ---- connection writer ----

func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	defer c.srv.dropConn(c)
	defer close(c.deadc)
	n := uint64(len(c.ring))
	inBatch := 0
	flush := func() bool {
		if len(c.wbuf) == 0 {
			return true
		}
		m, err := c.nc.Write(c.wbuf)
		if tr := c.srv.tr; tr != nil {
			tr.DevEmit(obs.KNetBatch, uint64(m), uint64(inBatch))
		}
		c.srv.batches.Add(1)
		c.srv.bytesOut.Add(uint64(m))
		c.wbuf = c.wbuf[:0]
		inBatch = 0
		return err == nil
	}
	for {
		select {
		case <-c.cmpl:
		case <-c.srv.stopc:
			flush()
			return
		}
		closing := false
		for {
			s := &c.ring[c.wseq%n]
			if !s.done.Load() {
				break
			}
			if s.big != nil {
				c.wbuf = append(c.wbuf, s.big...)
				s.big = nil
			} else {
				c.wbuf = append(c.wbuf, s.resp[:s.rlen]...)
			}
			inBatch++
			c.srv.reqs.Add(1)
			fatal := s.fatal
			s.done.Store(false)
			c.wseq++
			c.free <- struct{}{}
			if fatal {
				closing = true
				break
			}
			if len(c.wbuf) >= cap(c.wbuf)-respCap {
				if !flush() {
					return
				}
			}
		}
		if closing {
			flush()
			return
		}
		// Flush when the doorbell is quiet (no completion since this
		// pass began) — the adaptive batching rule: bytes pile up only
		// while the pipeline is actually producing.
		if len(c.cmpl) == 0 {
			if !flush() {
				return
			}
		}
	}
}
