// Package server is the networked front end over the paper's Fig. 5
// key-value runtimes: a memcache-text-protocol server backed by
// kv/memcache and a RESP server backed by kv/redis, both riding the
// device's group-commit combiner.
//
// The shape is the whole point. Per-connection reader goroutines parse
// zero-copy frames and hash each request to one of N shard pipelines; a
// shard pipeline is a single goroutine owning one persist.Thread and one
// store shard, executing FASEs back-to-back. Under load every shard has
// a request in hand, so N commit streams hit PersistBatch/Fence
// concurrently — exactly the overlap the group-commit combiner turns
// into one shared fence per window. Responses complete out of order
// across shards but are emitted in arrival order per connection through
// a fixed slot ring, and a per-connection writer batches however many
// responses are ready into one socket write.
//
// Everything on the steady-state path is allocation-free: slots are
// fixed rings, free-slot tokens are a counting-semaphore channel,
// completions ring an edge-triggered doorbell, response bytes are built
// in place with append into array-backed slices.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/replica"
)

// Proto selects the wire protocol (and with it the backend flavor).
type Proto uint8

const (
	ProtoMemcache Proto = iota
	ProtoRESP
)

func (p Proto) String() string {
	if p == ProtoRESP {
		return "resp"
	}
	return "memcache"
}

// ErrServerClosed is returned by Serve and ServeConn after Close (or a
// device crash) has shut the server down.
var ErrServerClosed = errors.New("server: closed")

// ErrServerBusy is returned by ServeConn when the MaxConns accept gate
// refuses a connection (after sending the canned busy reply).
var ErrServerBusy = errors.New("server: too many connections")

// Config sizes the per-connection and per-shard machinery.
type Config struct {
	Proto Proto
	// Ring is the per-connection pipeline depth: the number of in-flight
	// request slots (default 256). A reader that gets ahead of its shards
	// by this much blocks until responses drain.
	Ring int
	// ShardQueue is the per-shard request queue depth (default 256).
	ShardQueue int
	// ReadBuf is the per-connection read buffer (default 64 KiB; min 8 KiB,
	// which every parseable frame fits inside — see the parser bounds).
	ReadBuf int
	// WriteBuf is the per-connection response batch buffer (default 32 KiB);
	// the writer flushes when it fills or when no further response is ready.
	WriteBuf int
	// Metrics, when non-nil, is the collector the in-band introspection
	// verbs (memcache `stats`, RESP `INFO`) answer from. New attaches the
	// server as the collector's Source if none is set, so the same
	// collector drives the admin plane's /metrics. When nil the server
	// builds a private collector over its own gauges alone.
	Metrics *metrics.Collector
	// MaxItems, when > 0, is the per-shard live-item watermark: after
	// each mutating FASE the pipeline thread evicts (at most a couple
	// per request, so writes stay bounded) while the shard exceeds it.
	MaxItems int
	// DisableFastReads forces every GET through the slot path,
	// serializing reads behind writes on the shard pipelines as PR 7
	// did. Benchmark A/B knob; leave false to serve reads lock-free.
	DisableFastReads bool
	// Repl, when non-nil, is the hot-standby log shipper: every
	// state-changing FASE publishes a replication record after its
	// commit fence, and the client completion is deferred until the
	// standby's receipt ack (DESIGN.md §11). Must be built for the
	// store's shard count.
	Repl *replica.Shipper
	// MaxConns, when > 0, bounds concurrently served connections: an
	// accept beyond it gets a canned busy error and an immediate close
	// instead of a slot ring.
	MaxConns int
	// IdleTimeout, when > 0, is the per-connection read deadline: a
	// connection idle longer than this is closed (after flushing any
	// pending responses).
	IdleTimeout time.Duration
}

func (cfg *Config) fill() {
	if cfg.Ring <= 0 {
		cfg.Ring = 256
	}
	// The ring must exceed the largest multi-get (maxMultiGet keys, 63
	// for RESP MGET): scatter-gather claims every slot of a multi-get
	// before dispatching any of them, and claims can only unblock if
	// all older slots were dispatched or completed.
	if cfg.Ring < 64 {
		cfg.Ring = 64
	}
	if cfg.ShardQueue <= 0 {
		cfg.ShardQueue = 256
	}
	if cfg.ReadBuf < 8<<10 {
		cfg.ReadBuf = 64 << 10
	}
	if cfg.WriteBuf < 4<<10 {
		cfg.WriteBuf = 32 << 10
	}
}

// respCap bounds one encoded response: the longest memcache VALUE line
// (6+16+3+2+2+20+2 bytes) plus END, and every canned error line, fit.
const respCap = 96

// slot is one in-flight request. The reader fills it, exactly one shard
// pipeline (or the reader itself, for local replies) completes it, and
// the connection writer emits and recycles it. done is the only
// cross-goroutine field: Store(true) after the fields are final
// publishes them to the writer's Load.
type slot struct {
	c       *conn
	op      uint8
	last    bool // final key of a multi-get: append END
	noreply bool
	fatal   bool // close the connection after emitting this response
	klen    uint8
	shard   int32
	key     [maxKeyLen]byte
	k0, k1  uint64
	val     uint64
	ts      int64 // tracer clock at dispatch (0 when tracing is off)
	vOut    uint64
	okOut   bool
	rlen    int32
	mhdr    int32 // >0 on an MGET's first slot: prepend the *N array header
	resp    [respCap]byte
	// next chains this slot to the next fallback slot bound for the
	// same shard within one scatter-gather multi-get. Written by the
	// reader before the chain head is dispatched, consumed (and nilled)
	// by the shard pipeline; always nil outside a batched dispatch.
	next *slot
	// big is the overflow response for replies that cannot fit resp
	// (stats/INFO bodies). Filled reader-side, consumed and nilled by the
	// writer; always nil on the GET/SET/DEL hot path, which stays
	// allocation-free.
	big  []byte
	done atomic.Bool
}

// conn is one client connection: a slot ring plus the two channels that
// sequence it. free is a counting semaphore holding a token per
// recyclable slot (reader consumes on claim, writer returns on emit).
// cmpl is an edge-triggered doorbell (capacity 1): complete() rings it
// with a non-blocking send after publishing done, and the writer drains
// every done slot per ring. Because each done.Store happens before its
// send attempt, and a failed send means the writer has a consume-then-
// rescan still ahead of it, no completion is ever missed — and a
// completer can never block, so shard pipelines cannot stall on a slow
// or dead connection.
type conn struct {
	srv   *Server
	nc    net.Conn
	ring  []slot
	free  chan struct{}
	cmpl  chan struct{}
	deadc chan struct{} // closed when the writer exits: unblocks the reader
	rseq  uint64        // next slot to claim (reader only)
	wseq  uint64        // next slot to emit (writer only)
	wbuf  []byte

	// Scatter-gather scratch (reader only): per-shard chain head/tail
	// for the multi-get being dispatched, plus the list of shards the
	// current request actually touched. Sized once at accept.
	schHead []*slot
	schTail []*slot
	schIdx  []int32
	touchN  uint64 // fast-read hit counter driving LRU touch sampling

	// wpend[i] counts this connection's mutating slots dispatched to
	// shard i and not yet executed (reader increments at dispatch, shard
	// decrements after the FASE's even epoch bump). The fast lane is
	// gated on wpend == 0 so a pipelined get never overtakes this
	// connection's own earlier writes: memcache/RESP promise
	// read-your-writes per connection, and a device-direct read sees
	// only what has already committed.
	wpend []atomic.Int32
}

// shard is one commit pipeline: a goroutine owning one persist.Thread
// and one store shard. fn is built once — the Exec closure reads cur, so
// the hot loop allocates nothing.
type shard struct {
	srv  *Server
	idx  int
	th   persist.Thread
	dev  *nvm.Device
	in   chan *slot
	cur  *slot
	fn   func()
	ring *obs.Ring

	// seq is the shard's seqlock epoch: odd exactly while a mutating
	// FASE (set/del/incr/decr/evict) runs on the pipeline thread. Fast
	// readers snapshot it, walk the store device-direct, and re-check;
	// an even, unchanged epoch proves the observed data came from a
	// completed — hence fenced, hence durable — FASE. GETs on the slot
	// path and touch drains don't bump: they only write read-stat words
	// (cmd_get/hits/iTime) that fast readers never load.
	seq atomic.Uint64

	// touch is the sampled LRU-touch ring: fast-read hits enqueue keys
	// (lossy, non-blocking) and the pipeline thread drains each as one
	// ordinary FASE, retiring the batched read-stat counts alongside.
	touch    chan [2]uint64
	pendGets atomic.Uint64
	pendHits atomic.Uint64
	tkey     [2]uint64 // drain-in-progress args (pipeline thread only)
	tgets    uint64
	thits    uint64
	touchFn  func()
	evFn     func()
	evOK     bool

	// Pipeline gauges/counters, read by MetricsSnapshot. inflight is 1
	// while the shard thread is inside a FASE; queue depth is len(in).
	inflight atomic.Int32
	reqs     atomic.Uint64
	verbs    [3]atomic.Uint64 // gets, sets, dels (indexed op-opGet)
	incrs    atomic.Uint64    // incr + decr, which share the RMW path
	hits     atomic.Uint64
	misses   atomic.Uint64

	// Fast-lane counters: served lock-free, seqlock conflicts retried,
	// parks on in-flight commits, and falls back to the slot path.
	fastGets    atomic.Uint64
	fastRetries atomic.Uint64
	fastParks   atomic.Uint64
	fastFalls   atomic.Uint64
	touches     atomic.Uint64
	evictions   atomic.Uint64
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Reqs     uint64 // responses emitted (including errors and canned replies)
	Batches  uint64 // socket writes (response flushes)
	BytesOut uint64
}

// Server multiplexes client connections over the shard pipelines.
type Server struct {
	cfg    Config
	store  Store
	tr     *obs.Tracer
	shards []*shard

	stopc     chan struct{} // closed on Close or crash: everything unwinds
	crashc    chan struct{} // closed only when a FASE hit an injected crash
	stopOnce  sync.Once
	crashOnce sync.Once
	wg        sync.WaitGroup

	mu     sync.Mutex
	conns  map[*conn]struct{}
	lns    []net.Listener
	closed bool

	coll *metrics.Collector
	repl *replica.Shipper

	draining atomic.Bool

	reqs          atomic.Uint64
	batches       atomic.Uint64
	bytesOut      atomic.Uint64
	bytesIn       atomic.Uint64
	protoErrs     atomic.Uint64
	connsOpen     atomic.Int64
	connsTotal    atomic.Uint64
	connsRejected atomic.Uint64
	idleClosed    atomic.Uint64
	crashes       atomic.Uint64
}

// New builds a server over an attached store. One persist.Thread is
// created per store shard; rt must therefore have capacity for
// store.NumShards() more threads. tr may be nil (tracing off).
func New(rt persist.Runtime, store Store, cfg Config, tr *obs.Tracer) (*Server, error) {
	cfg.fill()
	srv := &Server{
		cfg:    cfg,
		store:  store,
		tr:     tr,
		stopc:  make(chan struct{}),
		crashc: make(chan struct{}),
		conns:  map[*conn]struct{}{},
	}
	if cfg.Repl != nil {
		if cfg.Repl.Shards() != store.NumShards() {
			return nil, fmt.Errorf("server: shipper built for %d shards, store has %d", cfg.Repl.Shards(), store.NumShards())
		}
		srv.repl = cfg.Repl
		srv.repl.SetComplete(func(tok any) { complete(tok.(*slot)) })
	}
	for i := 0; i < store.NumShards(); i++ {
		th, err := rt.NewThread()
		if err != nil {
			// Unwind the shard goroutines already started before the
			// unreachable Server leaks them (and their persist threads).
			srv.shutdown()
			srv.wg.Wait()
			return nil, fmt.Errorf("server: shard %d thread: %w", i, err)
		}
		sh := &shard{
			srv:   srv,
			idx:   i,
			th:    th,
			dev:   store.Device(),
			in:    make(chan *slot, cfg.ShardQueue),
			touch: make(chan [2]uint64, 64),
			ring:  tr.ThreadRing(fmt.Sprintf("server/shard%d", i)),
		}
		sh.fn = func() { sh.exec(sh.cur) }
		sh.touchFn = func() {
			sh.srv.store.Touch(sh.th, sh.idx, sh.tkey[0], sh.tkey[1], sh.tgets, sh.thits)
		}
		sh.evFn = func() { sh.evOK = sh.srv.store.EvictOne(sh.th, sh.idx) }
		srv.shards = append(srv.shards, sh)
		srv.wg.Add(1)
		go sh.run()
	}
	if cfg.Metrics != nil {
		srv.coll = cfg.Metrics
		if srv.coll.Src == nil {
			srv.coll.Src = srv
		}
	} else {
		srv.coll = metrics.NewCollector(tr, nil)
		srv.coll.Src = srv
	}
	return srv, nil
}

// Crashed is closed when a shard pipeline hit an injected device crash;
// the server then shuts down as a crashed process would — abruptly,
// leaving recovery to the next attach.
func (srv *Server) Crashed() <-chan struct{} { return srv.crashc }

// Stats snapshots the serve counters.
func (srv *Server) Stats() Stats {
	return Stats{
		Reqs:     srv.reqs.Load(),
		Batches:  srv.batches.Load(),
		BytesOut: srv.bytesOut.Load(),
	}
}

// MetricsSnapshot fills dst with the front end's gauges and counters —
// the metrics.Source contract. dst's shard slice is reused whenever its
// capacity suffices, so a caller that holds its Snapshot reads at
// 0 allocs/op in steady state.
func (srv *Server) MetricsSnapshot(dst *metrics.ServerStats) {
	dst.ConnsOpen = srv.connsOpen.Load()
	dst.ConnsTotal = srv.connsTotal.Load()
	dst.Reqs = srv.reqs.Load()
	dst.Batches = srv.batches.Load()
	dst.BytesIn = srv.bytesIn.Load()
	dst.BytesOut = srv.bytesOut.Load()
	dst.ProtoErrs = srv.protoErrs.Load()
	dst.ConnsRejected = srv.connsRejected.Load()
	dst.IdleClosed = srv.idleClosed.Load()
	dst.Crashes = srv.crashes.Load()
	n := len(srv.shards)
	if cap(dst.Shards) < n {
		dst.Shards = make([]metrics.ShardStats, n)
	}
	dst.Shards = dst.Shards[:n]
	for i, sh := range srv.shards {
		d := &dst.Shards[i]
		d.QueueDepth = int64(len(sh.in))
		d.InFlight = int64(sh.inflight.Load())
		d.Reqs = sh.reqs.Load()
		d.Gets = sh.verbs[0].Load()
		d.Sets = sh.verbs[1].Load()
		d.Dels = sh.verbs[2].Load()
		d.Incrs = sh.incrs.Load()
		d.Hits = sh.hits.Load()
		d.Misses = sh.misses.Load()
		d.FastGets = sh.fastGets.Load()
		d.FastRetries = sh.fastRetries.Load()
		d.FastParks = sh.fastParks.Load()
		d.FastFallbacks = sh.fastFalls.Load()
		d.Touches = sh.touches.Load()
		d.Evictions = sh.evictions.Load()
	}
}

// ServeConn adopts a connection: it starts the reader and writer
// goroutines and returns. The connection is closed when the client
// quits, errors, or the server stops.
func (srv *Server) ServeConn(nc net.Conn) error {
	if max := srv.cfg.MaxConns; max > 0 && srv.connsOpen.Load() >= int64(max) {
		// Ingress gate: refuse with a canned error the client's protocol
		// can parse, then close. No ring, no goroutines — a connection
		// storm costs the server one write per reject.
		srv.connsRejected.Add(1)
		if srv.cfg.Proto == ProtoMemcache {
			nc.Write([]byte("SERVER_ERROR busy\r\n"))
		} else {
			nc.Write([]byte("-ERR server busy\r\n"))
		}
		nc.Close()
		return ErrServerBusy
	}
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		nc.Close()
		return ErrServerClosed
	}
	nsh := len(srv.shards)
	c := &conn{
		srv:     srv,
		nc:      nc,
		ring:    make([]slot, srv.cfg.Ring),
		free:    make(chan struct{}, srv.cfg.Ring),
		cmpl:    make(chan struct{}, 1),
		deadc:   make(chan struct{}),
		wbuf:    make([]byte, 0, srv.cfg.WriteBuf),
		schHead: make([]*slot, nsh),
		schTail: make([]*slot, nsh),
		schIdx:  make([]int32, 0, nsh),
		wpend:   make([]atomic.Int32, nsh),
	}
	srv.conns[c] = struct{}{}
	srv.mu.Unlock()
	srv.connsTotal.Add(1)
	srv.connsOpen.Add(1)
	for i := 0; i < srv.cfg.Ring; i++ {
		c.free <- struct{}{}
	}
	srv.wg.Add(2)
	go c.readLoop()
	go c.writeLoop()
	return nil
}

// Serve accepts connections from l until the listener or server closes.
// It blocks; run it in its own goroutine to serve several listeners.
func (srv *Server) Serve(l net.Listener) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	srv.lns = append(srv.lns, l)
	srv.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			// Drain closes the listeners before stopc: either way the
			// accept failure is an ordered shutdown, not an error.
			if srv.draining.Load() {
				return ErrServerClosed
			}
			select {
			case <-srv.stopc:
				return ErrServerClosed
			default:
				return err
			}
		}
		srv.ServeConn(nc)
	}
}

// Close stops the server and waits for every goroutine to unwind. Safe
// after a crash (it then only joins).
func (srv *Server) Close() error {
	if srv.repl != nil {
		srv.repl.Close()
	}
	srv.shutdown()
	srv.wg.Wait()
	return nil
}

// Drain is the graceful shutdown path: stop accepting, nudge every
// connection's reader off its blocking Read, and wait (up to timeout)
// for in-flight FASEs to finish and their responses to flush before
// tearing the process down. The final fence publishes whatever the last
// group-commit epoch still held. Safe to call once; Close after Drain
// only joins.
func (srv *Server) Drain(timeout time.Duration) error {
	srv.draining.Store(true)
	srv.mu.Lock()
	for _, l := range srv.lns {
		l.Close()
	}
	conns := make([]*conn, 0, len(srv.conns))
	for c := range srv.conns {
		conns = append(conns, c)
	}
	srv.mu.Unlock()
	// Expire every reader's deadline: the Read returns, the reader
	// emits its zero-length fatal slot, and the writer flushes pending
	// responses before closing — exactly the torn-connection path, but
	// with all acked work preserved.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}
	deadline := time.Now().Add(timeout)
	for srv.connsOpen.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	left := srv.connsOpen.Load()
	if srv.repl != nil {
		srv.repl.Close()
	}
	srv.shutdown()
	srv.wg.Wait()
	// Flush the final group-commit epoch so the store image is durable
	// at exit.
	srv.store.Device().Fence()
	if left > 0 {
		return fmt.Errorf("server: drain timed out with %d connections open", left)
	}
	return nil
}

func (srv *Server) shutdown() {
	srv.stopOnce.Do(func() { close(srv.stopc) })
	// Belt-and-suspenders for readers parked on commit tickets: every
	// park is also cancelled by its shard's epoch bump, but waking here
	// costs one atomic load in the common no-waiter case.
	srv.store.Device().WakeTicketWaiters()
	srv.mu.Lock()
	srv.closed = true
	for c := range srv.conns {
		c.nc.Close()
	}
	for _, l := range srv.lns {
		l.Close()
	}
	srv.mu.Unlock()
}

// noteCrash records an injected-crash death. Called from a shard
// goroutine, so it must not wait on the WaitGroup it is part of.
func (srv *Server) noteCrash() {
	srv.crashOnce.Do(func() {
		srv.crashes.Add(1)
		close(srv.crashc)
	})
	if srv.repl != nil {
		// Process death: sever the replication stream without running
		// completions — the in-flight clients die unacked, which is the
		// invariant the failover tests lean on (unacked may be lost,
		// acked must survive on the standby).
		srv.repl.Kill()
	}
	srv.shutdown()
}

func (srv *Server) dropConn(c *conn) {
	srv.mu.Lock()
	delete(srv.conns, c)
	srv.mu.Unlock()
	srv.connsOpen.Add(-1)
	c.nc.Close()
}

// ---- shard pipeline ----

func (sh *shard) exec(s *slot) {
	switch s.op {
	case opGet:
		s.vOut, s.okOut = sh.srv.store.Get(sh.th, sh.idx, s.k0, s.k1)
	case opSet:
		sh.srv.store.Set(sh.th, sh.idx, s.k0, s.k1, s.val)
	case opDel:
		s.okOut = sh.srv.store.Del(sh.th, sh.idx, s.k0, s.k1)
	case opIncr, opDecr:
		s.vOut, s.okOut = sh.srv.store.Incr(sh.th, sh.idx, s.k0, s.k1, s.val, s.op == opDecr)
	}
}

func (sh *shard) run() {
	defer sh.srv.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nvm.CrashSignal); ok {
				sh.srv.noteCrash()
				return
			}
			panic(r)
		}
	}()
	mc := sh.srv.cfg.Proto == ProtoMemcache
	for {
		select {
		case s := <-sh.in:
			// A dispatch may carry a chain of sibling slots — the
			// fallbacks of one scatter-gather multi-get bound here.
			for s != nil {
				nxt := s.next
				s.next = nil
				sh.serve(s, mc)
				s = nxt
			}
		case k := <-sh.touch:
			sh.drainTouch(k)
		case <-sh.srv.stopc:
			return
		}
	}
}

// serve executes one slot's FASE and completes it. Mutating ops run
// inside the shard's seqlock write section: the odd bump before Exec
// tells fast readers a write is in flight, the even bump after — which
// happens only once Exec has returned, i.e. after the FASE's final
// fence — tells them the shard is quiescent again, and the ticket wake
// releases any reader that parked on this commit.
func (sh *shard) serve(s *slot, mc bool) {
	sh.inflight.Store(1)
	sh.cur = s
	wr := s.op != opGet
	if wr {
		sh.seq.Add(1)
	}
	sh.th.Exec(sh.fn)
	sh.cur = nil
	if wr {
		sh.seq.Add(1)
		sh.dev.WakeTicketWaiters()
		// The write is applied and the epoch even again: release the
		// owning connection's read-your-writes gate (before complete —
		// the writer may recycle s the moment it is published).
		s.c.wpend[sh.idx].Add(-1)
	}
	sh.inflight.Store(0)
	sh.reqs.Add(1)
	switch s.op {
	case opGet, opSet, opDel:
		sh.verbs[s.op-opGet].Add(1)
	case opIncr, opDecr:
		sh.incrs.Add(1)
	}
	if s.op == opGet {
		if s.okOut {
			sh.hits.Add(1)
		} else {
			sh.misses.Add(1)
		}
	}
	if mc {
		encodeMcReply(s)
	} else {
		encodeRespReply(s)
	}
	if sh.ring != nil {
		now := sh.ring.Clock()
		sh.ring.Span(obs.KNetReq, uint64(s.op), uint64(sh.idx), s.ts)
		sh.ring.Observe(obs.HReqLatency, uint64(now-s.ts))
	}
	// State-changing mutations ship to the standby; Publish defers the
	// client completion until the standby's receipt ack (the record is
	// already durable here — Exec returned past the commit fence). Ops
	// that changed nothing (missed DELETE, failed INCR) and reads
	// complete inline: there is nothing to replicate.
	if rp := sh.srv.repl; rp != nil {
		switch {
		case s.op == opSet:
			rp.Publish(sh.idx, replica.OpSet, s.k0, s.k1, s.val, s)
		case (s.op == opIncr || s.op == opDecr) && s.okOut:
			// State-based record: ship the arithmetic result as a set
			// so replay from any watermark converges.
			rp.Publish(sh.idx, replica.OpSet, s.k0, s.k1, s.vOut, s)
		case s.op == opDel && s.okOut:
			rp.Publish(sh.idx, replica.OpDel, s.k0, s.k1, 0, s)
		default:
			complete(s)
		}
	} else {
		complete(s)
	}
	if wr {
		sh.maybeEvict()
	}
}

// maybeEvict enforces the size watermark after a mutating FASE: while
// the shard holds more than MaxItems live items, evict — bounded per
// request so one write never stalls behind a long eviction storm.
// Evictions are writes, so they run inside their own seqlock sections.
func (sh *shard) maybeEvict() {
	max := sh.srv.cfg.MaxItems
	if max <= 0 {
		return
	}
	for i := 0; i < 2 && sh.srv.store.Count(sh.idx) > uint64(max); i++ {
		sh.seq.Add(1)
		sh.th.Exec(sh.evFn)
		sh.seq.Add(1)
		sh.dev.WakeTicketWaiters()
		if !sh.evOK {
			return
		}
		sh.evictions.Add(1)
	}
}

// drainTouch retires one sampled LRU touch plus every batched read-stat
// count as a single ordinary FASE. No seqlock bump: the touch FASE
// writes only stat words (cmd_get/hits/iTime) that fast readers never
// load, so it cannot invalidate a concurrent fast read.
func (sh *shard) drainTouch(k [2]uint64) {
	sh.tkey = k
	sh.tgets = sh.pendGets.Swap(0)
	sh.thits = sh.pendHits.Swap(0)
	sh.inflight.Store(1)
	sh.th.Exec(sh.touchFn)
	sh.inflight.Store(0)
	sh.touches.Add(1)
}

// complete publishes a finished slot to its connection writer: the done
// store is the release edge for every other slot field, and the
// non-blocking doorbell send can never stall the completer. If the send
// finds the doorbell already rung, the writer still has that token to
// consume, and it rescans the ring after every consume — so this
// completion is picked up by that pass.
func complete(s *slot) {
	c := s.c
	s.done.Store(true)
	select {
	case c.cmpl <- struct{}{}:
	default:
	}
}

// ---- connection reader ----

// claim acquires the next ring slot, blocking until the writer recycles
// one; false means the server is stopping or the writer already died.
func (c *conn) claim() (*slot, bool) {
	select {
	case <-c.free:
	case <-c.srv.stopc:
		return nil, false
	case <-c.deadc:
		return nil, false
	}
	s := &c.ring[c.rseq%uint64(len(c.ring))]
	c.rseq++
	s.c = c
	return s, true
}

// dispatch hands a filled slot to its shard pipeline; false means the
// server is stopping.
func (c *conn) dispatch(s *slot) bool {
	sh := c.srv.shards[s.shard]
	select {
	case sh.in <- s:
		return true
	case <-c.srv.stopc:
		return false
	}
}

// local completes a canned reply on the reader side without touching a
// shard. Returns false (stop reading) for fatal replies.
func (c *conn) local(reply string, fatal bool) bool {
	if len(reply) > 0 {
		// Every canned reply that is not VERSION (memcache) or +OK/+PONG
		// (RESP) reports a protocol-level refusal; count it. First-byte
		// classification is exact over the canned vocabulary: errors
		// start 'E' (ERROR), 'C' (CLIENT_ERROR), 'S' (SERVER_ERROR),
		// or '-' (RESP -ERR).
		switch reply[0] {
		case 'E', 'C', 'S', '-':
			c.srv.protoErrs.Add(1)
		}
	}
	s, ok := c.claim()
	if !ok {
		return false
	}
	s.op = opReply
	s.last, s.noreply = false, false
	s.fatal = fatal
	s.rlen = int32(copy(s.resp[:], reply))
	complete(s)
	return !fatal
}

// localStats answers an introspection verb (memcache `stats`, RESP
// `INFO`) reader-side: the snapshot and its rendering happen on this
// connection's goroutine, never a shard pipeline, and the body rides
// the slot's overflow field since stats bodies outgrow resp. The only
// allocation a stats request performs is its own response.
func (c *conn) localStats() bool {
	s, ok := c.claim()
	if !ok {
		return false
	}
	s.op = opReply
	s.last, s.noreply, s.fatal = false, false, false
	s.rlen = 0
	var snap metrics.Snapshot
	c.srv.coll.Read(&snap)
	if c.srv.cfg.Proto == ProtoMemcache {
		s.big = metrics.AppendMemcacheStats(nil, &snap)
	} else {
		s.big = metrics.AppendRESPInfo(nil, &snap)
	}
	complete(s)
	return true
}

// fillKey copies and encodes a validated wire key into the slot.
func (s *slot) fillKey(kb []byte) {
	s.klen = uint8(len(kb))
	copy(s.key[:], kb)
	for i := len(kb); i < maxKeyLen; i++ {
		s.key[i] = 0
	}
	s.k0, s.k1 = padKeyWords(s.key[:s.klen])
	s.shard = int32(s.c.srv.store.ShardOf(s.k0, s.k1))
}

// sendOp claims, fills, and dispatches one store operation.
func (c *conn) sendOp(op uint8, kb []byte, val uint64, noreply, last bool, ts int64) bool {
	s, ok := c.claim()
	if !ok {
		return false
	}
	s.op = op
	s.last = last
	s.noreply = noreply
	s.fatal = false
	s.val = val
	s.ts = ts
	s.rlen = 0
	s.mhdr = 0
	s.next = nil
	s.fillKey(kb)
	if op != opGet {
		c.wpend[s.shard].Add(1)
	}
	return c.dispatch(s)
}

// fastGet runs the optimistic lock-free read protocol against one
// shard: snapshot the seqlock epoch, walk the store device-direct, and
// re-validate the epoch. An odd epoch means a mutating FASE is in
// flight — instead of re-walking hot, the reader parks on the device's
// next commit ticket, cancelled by the epoch itself in case the FASE's
// fence already landed before the even bump. Bounded attempts; ok=false
// tells the caller to fall back to the slot path. A successful return
// was validated under an even, unchanged epoch, so the data it reports
// was produced by a completed FASE, whose Exec return implies its final
// persist fence: acked ⇒ durable holds with zero fences on this path.
func (c *conn) fastGet(sh *shard, k0, k1 uint64) (v uint64, hit, ok bool) {
	for attempt := 0; attempt < 4; attempt++ {
		s1 := sh.seq.Load()
		if s1&1 != 0 {
			sh.fastParks.Add(1)
			sh.dev.WaitTicket(sh.dev.CommitTicket()+1, &sh.seq, s1)
			continue
		}
		v, hit, wok := sh.srv.store.GetFast(sh.idx, k0, k1)
		if wok && sh.seq.Load() == s1 {
			return v, hit, true
		}
		sh.fastRetries.Add(1)
	}
	sh.fastFalls.Add(1)
	return 0, false, false
}

// sendGets serves a (multi-)get. Slots are claimed in key order — ring
// order is emission order, so the gather side comes for free: the
// writer already emits in claim order regardless of which side
// completed each slot. Every key first tries the fast lane and, on
// success, completes immediately on this goroutine with no dispatch at
// all. Fallbacks are chained per shard through slot.next and handed
// over as one batched dispatch per shard (the scatter), so an N-key
// multi-get costs at most min(N, shards) queue sends instead of N.
func (c *conn) sendGets(raw []byte, keys [][2]int, mget bool, ts int64) bool {
	mc := c.srv.cfg.Proto == ProtoMemcache
	fast := !c.srv.cfg.DisableFastReads
	tr := c.srv.tr
	for i := range keys {
		s, ok := c.claim()
		if !ok {
			return false
		}
		s.op = opGet
		s.last = mc && i == len(keys)-1
		s.noreply = false
		s.fatal = false
		s.val = 0
		s.ts = ts
		s.rlen = 0
		s.next = nil
		s.mhdr = 0
		if mget && i == 0 {
			s.mhdr = int32(len(keys))
		}
		s.fillKey(raw[keys[i][0]:keys[i][1]])
		sh := c.srv.shards[s.shard]
		if fast && c.wpend[s.shard].Load() == 0 {
			if v, hit, fok := c.fastGet(sh, s.k0, s.k1); fok {
				s.vOut, s.okOut = v, hit
				sh.reqs.Add(1)
				sh.verbs[0].Add(1)
				sh.fastGets.Add(1)
				if hit {
					sh.hits.Add(1)
				} else {
					sh.misses.Add(1)
				}
				if mc {
					// Batch the durable read stats; sample 1 in 16 hits
					// for an LRU touch, dropped when the ring is full.
					sh.pendGets.Add(1)
					if hit {
						sh.pendHits.Add(1)
						c.touchN++
						if c.touchN&15 == 0 {
							select {
							case sh.touch <- [2]uint64{s.k0, s.k1}:
							default:
							}
						}
					}
					encodeMcReply(s)
				} else {
					encodeRespReply(s)
				}
				if tr != nil {
					tr.DevEmit(obs.KNetFastGet, s.k0, uint64(s.shard))
				}
				complete(s)
				continue
			}
		}
		if c.schHead[s.shard] == nil {
			c.schHead[s.shard] = s
			c.schIdx = append(c.schIdx, s.shard)
		} else {
			c.schTail[s.shard].next = s
		}
		c.schTail[s.shard] = s
	}
	ok := true
	for _, si := range c.schIdx {
		head := c.schHead[si]
		c.schHead[si], c.schTail[si] = nil, nil
		if ok {
			ok = c.dispatch(head)
		}
	}
	c.schIdx = c.schIdx[:0]
	return ok
}

func (c *conn) dispatchMc(f *mcFrame, raw []byte, ts int64) bool {
	switch f.op {
	case opNone:
		return true
	case opGet:
		return c.sendGets(raw, f.keys[:f.nkeys], false, ts)
	case opSet, opDel, opIncr, opDecr:
		kb := raw[f.keys[0][0]:f.keys[0][1]]
		return c.sendOp(f.op, kb, f.val, f.noreply, false, ts)
	case opReply:
		return c.local(f.reply, f.fatal)
	case opQuit:
		return c.local("", true)
	case opStats:
		return c.localStats()
	}
	return true
}

func (c *conn) dispatchResp(f *respFrame, raw []byte, ts int64) bool {
	switch f.op {
	case opNone:
		return true
	case opGet:
		return c.sendGets(raw, f.keys[:f.nkeys], f.mget, ts)
	case opSet, opDel, opIncr, opDecr:
		kb := raw[f.key[0]:f.key[1]]
		return c.sendOp(f.op, kb, f.val, false, false, ts)
	case opReply:
		return c.local(f.reply, f.fatal)
	case opStats:
		return c.localStats()
	}
	return true
}

func (c *conn) readLoop() {
	defer c.srv.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nvm.CrashSignal); ok {
				// A fast read hit the injected crash — a device load or
				// ticket park on this goroutine touched the device the
				// moment it died. Fall like a shard pipeline does.
				c.srv.noteCrash()
				return
			}
			panic(r)
		}
	}()
	buf := make([]byte, c.srv.cfg.ReadBuf)
	mc := c.srv.cfg.Proto == ProtoMemcache
	start, end := 0, 0
	for {
		for start < end {
			ts := c.srv.tr.Clock()
			var n int
			var cont bool
			var err error
			if mc {
				var f mcFrame
				f, n, err = parseMemcache(buf[start:end])
				if err == nil {
					cont = c.dispatchMc(&f, buf[start:start+n], ts)
				}
			} else {
				var f respFrame
				f, n, err = parseRESP(buf[start:end])
				if err == nil {
					cont = c.dispatchResp(&f, buf[start:start+n], ts)
				}
			}
			if err != nil {
				break // errNeedMore: refill
			}
			start += n
			if !cont {
				return
			}
		}
		if start > 0 {
			copy(buf, buf[start:end])
			end -= start
			start = 0
		}
		if it := c.srv.cfg.IdleTimeout; it > 0 && !c.srv.draining.Load() {
			c.nc.SetReadDeadline(time.Now().Add(it))
		}
		n, err := c.nc.Read(buf[end:])
		end += n
		c.srv.bytesIn.Add(uint64(n))
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				c.srv.idleClosed.Add(1)
			}
			// EOF, idle timeout, or a torn connection: emit a zero-length
			// fatal slot so the writer flushes everything pending, then
			// closes.
			c.local("", true)
			return
		}
	}
}

// ---- connection writer ----

func (c *conn) writeLoop() {
	defer c.srv.wg.Done()
	defer c.srv.dropConn(c)
	defer close(c.deadc)
	n := uint64(len(c.ring))
	inBatch := 0
	flush := func() bool {
		if len(c.wbuf) == 0 {
			return true
		}
		m, err := c.nc.Write(c.wbuf)
		if tr := c.srv.tr; tr != nil {
			tr.DevEmit(obs.KNetBatch, uint64(m), uint64(inBatch))
		}
		c.srv.batches.Add(1)
		c.srv.bytesOut.Add(uint64(m))
		c.wbuf = c.wbuf[:0]
		inBatch = 0
		return err == nil
	}
	for {
		select {
		case <-c.cmpl:
		case <-c.srv.stopc:
			flush()
			return
		}
		closing := false
		for {
			s := &c.ring[c.wseq%n]
			if !s.done.Load() {
				break
			}
			if s.big != nil {
				c.wbuf = append(c.wbuf, s.big...)
				s.big = nil
			} else {
				c.wbuf = append(c.wbuf, s.resp[:s.rlen]...)
			}
			inBatch++
			c.srv.reqs.Add(1)
			fatal := s.fatal
			s.done.Store(false)
			c.wseq++
			c.free <- struct{}{}
			if fatal {
				closing = true
				break
			}
			if len(c.wbuf) >= cap(c.wbuf)-respCap {
				if !flush() {
					return
				}
			}
		}
		if closing {
			flush()
			return
		}
		// Flush when the doorbell is quiet (no completion since this
		// pass began) — the adaptive batching rule: bytes pile up only
		// while the pipeline is actually producing.
		if len(c.cmpl) == 0 {
			if !flush() {
				return
			}
		}
	}
}
