package server

import (
	"bytes"
	"errors"
	"strconv"
)

// The memcache text protocol (the subset the Fig. 5 workload speaks):
//
//	get <key>*\r\n
//	set <key> <flags> <exptime> <bytes> [noreply]\r\n<data>\r\n
//	delete <key> [noreply]\r\n
//	version\r\n
//	quit\r\n
//
// Values are ASCII-decimal uint64s (the stores hold one word per key, the
// paper's memaslap configuration), keys are 1..16 printable bytes, and
// flags/exptime are parsed but not stored (VALUE lines echo flags 0).
// Parsing is zero-copy: a frame holds byte offsets into the caller's
// buffer, never slices of it, and never allocates — the fuzz targets and
// the steady-state allocation gate both hold the parsers to that.

// errNeedMore reports an incomplete frame: the caller must read more
// bytes and re-parse. It is the parsers' only non-nil error; every
// malformed input becomes an error-reply frame instead, because the
// connection must answer (or deliberately hang up), not stall.
var errNeedMore = errors.New("server: incomplete frame")

// Request opcodes, shared by both protocols.
const (
	opNone  uint8 = iota // consumed bytes only (blank line); nothing to do
	opGet                // lookup; okOut/vOut carry the result
	opSet                // store s.val
	opDel                // delete; okOut reports presence
	opReply              // locally-served canned response (errors, VERSION, PONG)
	opQuit               // client hangup: flush and close, no response
	opStats              // introspection (memcache `stats` / RESP `INFO`), served reader-side
	opIncr               // read-modify-write add; vOut/okOut carry the result
	opDecr               // read-modify-write subtract, clamped at zero (memcache only)
)

// Frame-size bounds. A command line and its inline data always fit well
// inside a connection's read buffer, so errNeedMore always resolves:
// anything larger is answered (or hung up on) instead of buffered.
const (
	maxKeyLen   = 16   // two key words, the kv/memcache geometry
	respKeyLen  = 8    // one key word, the kv/redis geometry
	maxLineLen  = 1024 // command line bound, memcached's own default
	maxDataLen  = 20   // longest ASCII uint64
	maxSwallow  = 4096 // oversized set data consumed-then-refused up to this
	maxMultiGet = 60   // keys per multi-get (each claims one pipeline slot)
)

// Canned reply lines. Error texts follow memcached's wire vocabulary.
const (
	mcReplyError     = "ERROR\r\n"
	mcReplyBadKey    = "CLIENT_ERROR bad key\r\n"
	mcReplyBadFormat = "CLIENT_ERROR bad command line format\r\n"
	mcReplyBadData   = "CLIENT_ERROR bad data chunk\r\n"
	mcReplyTooLong   = "CLIENT_ERROR line too long\r\n"
	mcReplyTooBig    = "SERVER_ERROR object too large for cache\r\n"
	mcReplyTooMany   = "SERVER_ERROR too many keys\r\n"
	mcReplyBadDelta  = "CLIENT_ERROR invalid numeric delta argument\r\n"
	mcReplyVersion   = "VERSION ido/1.0\r\n"
)

// mcFrame is one parsed memcache command. Key fields are [start,end)
// byte offsets into the buffer passed to parseMemcache.
type mcFrame struct {
	op      uint8
	nkeys   int
	keys    [maxMultiGet][2]int
	val     uint64
	noreply bool
	reply   string // canned response when op == opReply
	fatal   bool   // close the connection after replying
}

// nextTok returns the [start,end) of the next space-separated token of b
// at or after i (start == end means no token remains).
func nextTok(b []byte, i int) (int, int) {
	for i < len(b) && b[i] == ' ' {
		i++
	}
	s := i
	for i < len(b) && b[i] != ' ' {
		i++
	}
	return s, i
}

// parseUint parses an ASCII-decimal uint64 without allocating; ok is
// false on empty input, a non-digit, or overflow.
func parseUint(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > maxDataLen {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// validKey reports whether a wire key is storable: 1..max bytes, every
// byte printable non-space ASCII. The charset rule is memcached's, and it
// is what makes the stores' zero-padded fixed-width key words injective —
// no legal key contains NUL, so distinct keys never pad to the same words.
func validKey(b []byte, max int) bool {
	if len(b) == 0 || len(b) > max {
		return false
	}
	for _, c := range b {
		if c <= ' ' || c > '~' {
			return false
		}
	}
	return true
}

// token equality against a lowercase literal, without allocation.
func tokIs(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}

// reply builds an error/canned frame consuming n bytes.
func mcReply(reply string, n int, fatal bool) (mcFrame, int, error) {
	return mcFrame{op: opReply, reply: reply, fatal: fatal}, n, nil
}

// parseMemcache parses one command frame from the head of buf. It
// returns errNeedMore when buf holds only a prefix of a frame; otherwise
// it returns the frame and how many bytes it consumed (always > 0).
// Malformed input yields opReply frames — never a panic, never n == 0.
func parseMemcache(buf []byte) (mcFrame, int, error) {
	window := buf
	if len(window) > maxLineLen {
		window = window[:maxLineLen]
	}
	nl := bytes.IndexByte(window, '\n')
	if nl < 0 {
		if len(buf) >= maxLineLen {
			// No terminator within the protocol bound: refuse and hang up
			// (consuming everything buffered — the connection is done).
			return mcReply(mcReplyTooLong, len(buf), true)
		}
		return mcFrame{}, 0, errNeedMore
	}
	n := nl + 1
	line := buf[:nl]
	if nl > 0 && line[nl-1] == '\r' {
		line = line[:nl-1]
	}
	cs, ce := nextTok(line, 0)
	cmd := line[cs:ce]
	switch {
	case tokIs(cmd, "get") || tokIs(cmd, "gets"):
		var f mcFrame
		f.op = opGet
		for i := ce; ; {
			ks, ke := nextTok(line, i)
			if ks == ke {
				break
			}
			if !validKey(line[ks:ke], maxKeyLen) {
				return mcReply(mcReplyBadKey, n, false)
			}
			if f.nkeys == maxMultiGet {
				return mcReply(mcReplyTooMany, n, false)
			}
			f.keys[f.nkeys] = [2]int{ks, ke}
			f.nkeys++
			i = ke
		}
		if f.nkeys == 0 {
			return mcReply(mcReplyError, n, false)
		}
		return f, n, nil

	case tokIs(cmd, "set"):
		ks, ke := nextTok(line, ce)
		fs, fe := nextTok(line, ke)
		es, ee := nextTok(line, fe)
		bs, be := nextTok(line, ee)
		os, oe := nextTok(line, be)
		xs, xe := nextTok(line, oe)
		if ks == ke || fs == fe || es == ee || bs == be || xs != xe {
			return mcReply(mcReplyError, n, false)
		}
		noreply := false
		if os != oe {
			if !tokIs(line[os:oe], "noreply") {
				return mcReply(mcReplyError, n, false)
			}
			noreply = true
		}
		if _, ok := parseUint(line[fs:fe]); !ok {
			return mcReply(mcReplyBadFormat, n, false)
		}
		if _, ok := parseUint(line[es:ee]); !ok {
			return mcReply(mcReplyBadFormat, n, false)
		}
		nbytes, ok := parseUint(line[bs:be])
		if !ok {
			return mcReply(mcReplyBadFormat, n, false)
		}
		if nbytes > maxSwallow {
			// Too big to even swallow: refuse and hang up, since the rest
			// of the stream is unframed data.
			return mcReply(mcReplyTooBig, len(buf), true)
		}
		frameLen := n + int(nbytes) + 2
		if len(buf) < frameLen {
			return mcFrame{}, 0, errNeedMore
		}
		if nbytes > maxDataLen {
			// Values are single words here; consume the data, refuse the op.
			return mcReply(mcReplyTooBig, frameLen, false)
		}
		data := buf[n : n+int(nbytes)]
		if buf[frameLen-2] != '\r' || buf[frameLen-1] != '\n' {
			return mcReply(mcReplyBadData, frameLen, false)
		}
		if !validKey(line[ks:ke], maxKeyLen) {
			return mcReply(mcReplyBadKey, frameLen, false)
		}
		val, ok := parseUint(data)
		if !ok {
			return mcReply(mcReplyBadData, frameLen, false)
		}
		f := mcFrame{op: opSet, nkeys: 1, val: val, noreply: noreply}
		f.keys[0] = [2]int{ks, ke}
		return f, frameLen, nil

	case tokIs(cmd, "delete"):
		ks, ke := nextTok(line, ce)
		os, oe := nextTok(line, ke)
		xs, xe := nextTok(line, oe)
		if ks == ke || xs != xe {
			return mcReply(mcReplyError, n, false)
		}
		noreply := false
		if os != oe {
			if !tokIs(line[os:oe], "noreply") {
				return mcReply(mcReplyError, n, false)
			}
			noreply = true
		}
		if !validKey(line[ks:ke], maxKeyLen) {
			return mcReply(mcReplyBadKey, n, false)
		}
		f := mcFrame{op: opDel, nkeys: 1, noreply: noreply}
		f.keys[0] = [2]int{ks, ke}
		return f, n, nil

	case tokIs(cmd, "incr") || tokIs(cmd, "decr"):
		// incr/decr <key> <delta> [noreply]
		ks, ke := nextTok(line, ce)
		ds, de := nextTok(line, ke)
		os, oe := nextTok(line, de)
		xs, xe := nextTok(line, oe)
		if ks == ke || ds == de || xs != xe {
			return mcReply(mcReplyError, n, false)
		}
		noreply := false
		if os != oe {
			if !tokIs(line[os:oe], "noreply") {
				return mcReply(mcReplyError, n, false)
			}
			noreply = true
		}
		if !validKey(line[ks:ke], maxKeyLen) {
			return mcReply(mcReplyBadKey, n, false)
		}
		delta, ok := parseUint(line[ds:de])
		if !ok {
			return mcReply(mcReplyBadDelta, n, false)
		}
		op := opIncr
		if cmd[0] == 'd' {
			op = opDecr
		}
		f := mcFrame{op: op, nkeys: 1, val: delta, noreply: noreply}
		f.keys[0] = [2]int{ks, ke}
		return f, n, nil

	case tokIs(cmd, "stats"):
		// Bare `stats` only: the sub-commands (items, slabs, ...) describe
		// machinery this server does not have.
		if as, ae := nextTok(line, ce); as != ae {
			return mcReply(mcReplyError, n, false)
		}
		return mcFrame{op: opStats}, n, nil

	case tokIs(cmd, "version"):
		return mcReply(mcReplyVersion, n, false)

	case tokIs(cmd, "quit"):
		return mcFrame{op: opQuit}, n, nil

	default:
		return mcReply(mcReplyError, n, false)
	}
}

// encodeMcReply formats s's response into s.resp after the shard executed
// the operation. Allocation-free: every append stays within the slot's
// fixed response array.
func encodeMcReply(s *slot) {
	b := s.resp[:0]
	switch s.op {
	case opGet:
		if s.okOut {
			var dig [maxDataLen]byte
			d := strconv.AppendUint(dig[:0], s.vOut, 10)
			b = append(b, "VALUE "...)
			b = append(b, s.key[:s.klen]...)
			b = append(b, " 0 "...)
			b = strconv.AppendUint(b, uint64(len(d)), 10)
			b = append(b, '\r', '\n')
			b = append(b, d...)
			b = append(b, '\r', '\n')
		}
		if s.last {
			b = append(b, "END\r\n"...)
		}
	case opSet:
		if !s.noreply {
			b = append(b, "STORED\r\n"...)
		}
	case opDel:
		if !s.noreply {
			if s.okOut {
				b = append(b, "DELETED\r\n"...)
			} else {
				b = append(b, "NOT_FOUND\r\n"...)
			}
		}
	case opIncr, opDecr:
		if !s.noreply {
			if s.okOut {
				b = strconv.AppendUint(b, s.vOut, 10)
				b = append(b, '\r', '\n')
			} else {
				b = append(b, "NOT_FOUND\r\n"...)
			}
		}
	}
	s.rlen = int32(len(b))
}
