package server_test

import (
	"io"
	"testing"

	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/server"
)

// BenchmarkServeSteady measures the full serve path — parse, shard
// dispatch, FASE execution, response encode, batched write — over a
// deterministic 4-op cycle on one connection. The CI allocation gate
// holds this at 0 allocs/op: ReportAllocs counts mallocs process-wide,
// so a stray allocation anywhere on the server's hot path (reader,
// shard pipeline, writer) shows up here.
func BenchmarkServeSteady(b *testing.B) {
	benchServeSteady(b, server.ProtoMemcache,
		"set bk 0 0 2\r\n42\r\nget bk\r\ndelete bk\r\nget bk\r\n",
		len("STORED\r\n"+"VALUE bk 0 2\r\n42\r\nEND\r\n"+"DELETED\r\n"+"END\r\n"))
}

func BenchmarkServeSteadyRESP(b *testing.B) {
	benchServeSteady(b, server.ProtoRESP,
		"SET bk 42\r\nGET bk\r\nDEL bk\r\nGET bk\r\n",
		len("+OK\r\n"+"$2\r\n42\r\n"+":1\r\n"+"$-1\r\n"))
}

// BenchmarkServeSteadyReadHeavy measures the GET-only serve path —
// with the fast lane on, every measured get is served lock-free on the
// reader goroutine. Covered by the same CI 0-alloc gate as the mixed
// cycle; the slot-path twin quantifies what the fast lane saves.
func BenchmarkServeSteadyReadHeavy(b *testing.B) {
	benchServeReadHeavy(b, false)
}

func BenchmarkServeSteadyReadHeavySlotPath(b *testing.B) {
	benchServeReadHeavy(b, true)
}

func benchServeReadHeavy(b *testing.B, disableFast bool) {
	w := newWorldCfg(b, server.ProtoMemcache, 2, nvm.Config{Size: 1 << 22}, nil,
		func(c *server.Config) { c.DisableFastReads = disableFast })
	c := w.dial(b)
	// Populate outside the measured region; the replies drain the
	// connection's write pipeline so the fast lane is open.
	if _, err := c.Write([]byte("set bk 0 0 2\r\n42\r\nset bj 0 0 2\r\n43\r\n")); err != nil {
		b.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 2*len("STORED\r\n"))); err != nil {
		b.Fatal(err)
	}
	req := []byte("get bk\r\nget bj\r\nget bk bj\r\nget miss\r\n")
	resp := make([]byte, len("VALUE bk 0 2\r\n42\r\nEND\r\n"+"VALUE bj 0 2\r\n43\r\nEND\r\n"+
		"VALUE bk 0 2\r\n42\r\nVALUE bj 0 2\r\n43\r\nEND\r\n"+"END\r\n"))
	if _, err := c.Write(req); err != nil {
		b.Fatal(err)
	}
	if _, err := io.ReadFull(c, resp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(req); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(c, resp); err != nil {
			b.Fatal(err)
		}
	}
}

func benchServeSteady(b *testing.B, proto server.Proto, cycle string, respLen int) {
	w := newWorld(b, proto, 2, nvm.Config{Size: 1 << 22}, nil)
	c := w.dial(b)
	req := []byte(cycle)
	resp := make([]byte, respLen)
	// Warm once so lazy one-time allocations (goroutine stacks, bufio)
	// are paid before the measured region.
	if _, err := c.Write(req); err != nil {
		b.Fatal(err)
	}
	if _, err := io.ReadFull(c, resp); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(req); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(c, resp); err != nil {
			b.Fatal(err)
		}
	}
}
