package server_test

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/chaos"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/kv/redis"
	"github.com/ido-nvm/ido/internal/loadgen"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/server"
)

// TestServerCrashMidServe is the end-to-end crash smoke: kill the server
// while live connections have acknowledged and in-flight requests, then
// recover and hold the image to the three-way convergence argument (see
// loadgen.KeyHist): structural invariants intact, every tracked key's
// state explainable by its acked-or-later history prefix, and the store
// re-servable. Both protocol/runtime pairings take the same script.
func TestServerCrashMidServe(t *testing.T) {
	for _, proto := range []server.Proto{server.ProtoMemcache, server.ProtoRESP} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			runCrashMidServe(t, proto)
		})
	}
}

// TestServerCrashUnderFastReads is the fast-lane chaos schedule: a
// write-heavy stream keeps shards mutating while 16 read-only
// connections race the same keys through the lock-free fast lane, and
// the crash is a device-op *budget* rather than a timer — it fires ON
// a device access, which under this mix lands inside a mutating FASE's
// window: after the shard's store hit the device, before its even
// epoch bump. Readers racing that exact window must never have acked a
// torn value (every reader reply is parsed and validated before the
// crash), parked readers must unwind, and the image must recover and
// serve again. The budget is chosen to land mid-run; the test asserts
// it actually fired with acked traffic outstanding.
func TestServerCrashUnderFastReads(t *testing.T) {
	const shards = 4
	devcfg := nvm.Config{
		Size:        1 << 22,
		GroupCommit: nvm.GroupCommitConfig{Enabled: true, WindowNS: 2000},
	}
	nvm.ArmCrash(400_000)
	defer nvm.ArmCrash(-1)

	reg := region.Create(1<<22, devcfg)
	lm := locks.NewManager(reg)
	rt := core.New(core.DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatalf("attach: %v", err)
	}
	store, err := server.NewMcStore(&memcache.Env{Reg: reg, LM: lm}, shards, 64)
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	srv, err := server.New(rt, store, server.Config{Proto: server.ProtoMemcache}, nil)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	dialer := func() (net.Conn, error) {
		client, srvEnd := loadgen.MemPipe(64 << 10)
		if serr := srv.ServeConn(srvEnd); serr != nil {
			return nil, serr
		}
		return client, nil
	}

	// Writers mutate a small key set hard; readers are separate
	// connections with no writes in flight, so every get attempts the
	// fast lane against shards whose epochs are almost always churning.
	type out struct {
		res *loadgen.Result
		err error
	}
	wc, rc := make(chan out, 1), make(chan out, 1)
	go func() {
		res, lerr := loadgen.Run(loadgen.Config{
			Proto: loadgen.ProtoMemcache, Conns: 4, Pipeline: 4, Keys: 64,
			SetPct: 80, DelPct: 10, Duration: 30 * time.Second, Seed: 11, Track: true,
		}, dialer)
		wc <- out{res, lerr}
	}()
	go func() {
		res, lerr := loadgen.Run(loadgen.Config{
			Proto: loadgen.ProtoMemcache, Conns: 16, Pipeline: 4, Keys: 64,
			SetPct: 0, DelPct: 0, Duration: 30 * time.Second, Seed: 12,
		}, dialer)
		rc <- out{res, lerr}
	}()

	select {
	case <-srv.Crashed():
	case <-time.After(30 * time.Second):
		t.Fatalf("crash budget did not fire under load")
	}
	srv.Close()
	var wres, rres out
	select {
	case wres = <-wc:
	case <-time.After(30 * time.Second):
		t.Fatalf("writer loadgen did not unwind")
	}
	select {
	case rres = <-rc:
	case <-time.After(30 * time.Second):
		t.Fatalf("reader loadgen did not unwind (parked fast reader leaked?)")
	}
	if wres.err != nil || rres.err != nil {
		t.Fatalf("loadgen: writers=%v readers=%v", wres.err, rres.err)
	}
	if !nvm.CrashFired() {
		t.Fatalf("injected crash did not fire")
	}
	// Every reply either side acked before the crash parsed cleanly
	// (loadgen counts malformed replies as errors).
	if wres.res.Errs != 0 || rres.res.Errs != 0 {
		t.Fatalf("malformed replies before crash: writers=%d readers=%d",
			wres.res.Errs, rres.res.Errs)
	}
	if rres.res.Ops == 0 {
		t.Fatalf("no reader traffic acked before the crash; schedule proves nothing")
	}
	t.Logf("crash after %d writer + %d reader acked ops (%d hits)",
		wres.res.Ops, rres.res.Ops, rres.res.Hits)

	// Recover as a restarted process and hold the image to the same
	// structural and history invariants as the mid-serve smoke.
	nvm.ArmCrash(-1)
	rng := rand.New(rand.NewSource(3))
	reg2, err := reg.Crash(nvm.CrashRandom, rng)
	if err != nil {
		t.Fatalf("reattach: %v", err)
	}
	lm2 := locks.NewManager(reg2)
	rt2 := core.New(core.DefaultConfig())
	if err := rt2.Attach(reg2, lm2); err != nil {
		t.Fatalf("attach2: %v", err)
	}
	rr := persist.NewResumeRegistry()
	store2, err := server.AttachMcStore(&memcache.Env{Reg: reg2, LM: lm2})
	if err != nil {
		t.Fatalf("attach store: %v", err)
	}
	store2.Register(rr)
	if _, err := rt2.Recover(rr); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for i, tbl := range store2.Tables() {
		if err := chaos.CheckCacheImage(reg2.Dev, tbl); err != nil {
			t.Fatalf("shard %d image: %v", i, err)
		}
		if err := chaos.CheckCacheLockFree(reg2.Dev, lm2, tbl); err != nil {
			t.Fatalf("shard %d lock: %v", i, err)
		}
	}
	th, err := rt2.NewThread()
	if err != nil {
		t.Fatalf("verify thread: %v", err)
	}
	checked := 0
	for k, h := range wres.res.Tracked {
		if len(h.Ops) == 0 {
			continue
		}
		kb := loadgen.AppendKey(nil, k)
		k0, k1, okk := server.McKeyWords(kb)
		if !okk {
			t.Fatalf("generated key %q is not storable", kb)
		}
		shard := store2.ShardOf(k0, k1)
		val, present := store2.Get(th, shard, k0, k1)
		if !h.Explainable(present, val) {
			t.Fatalf("key %q (present=%v val=%d) unexplainable: acked=%d ops=%+v",
				kb, present, val, h.Acked, h.Ops)
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("no tracked keys to verify")
	}

	// Fast reads must work against the recovered image too.
	srv2, err := server.New(rt2, store2, server.Config{Proto: server.ProtoMemcache}, nil)
	if err != nil {
		t.Fatalf("re-serve: %v", err)
	}
	defer srv2.Close()
	res2, err := loadgen.Run(loadgen.Config{
		Proto: loadgen.ProtoMemcache, Conns: 2, Pipeline: 4, Keys: 64,
		SetPct: 0, DelPct: 0, Ops: 200, Seed: 13,
	}, dialer2(srv2))
	if err != nil {
		t.Fatalf("post-recovery loadgen: %v", err)
	}
	if res2.Errs != 0 || res2.Ops != 400 {
		t.Fatalf("post-recovery reads: %d ops, %d errors", res2.Ops, res2.Errs)
	}
	t.Logf("%d keys verified, %d post-recovery reads clean", checked, res2.Ops)
}

func dialer2(srv *server.Server) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		client, srvEnd := loadgen.MemPipe(64 << 10)
		if serr := srv.ServeConn(srvEnd); serr != nil {
			return nil, serr
		}
		return client, nil
	}
}

func runCrashMidServe(t *testing.T, proto server.Proto) {
	const shards = 4
	devcfg := nvm.Config{
		Size:        1 << 22,
		GroupCommit: nvm.GroupCommitConfig{Enabled: true, WindowNS: 2000},
	}
	// Arm before anything runs so every lock waiter takes the
	// crash-aware spin path; the budget is far beyond reach, the actual
	// kill is the timed TriggerCrash below.
	nvm.ArmCrash(1 << 60)
	defer nvm.ArmCrash(-1)

	reg := region.Create(1<<22, devcfg)
	lm := locks.NewManager(reg)
	rt := core.New(core.DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		t.Fatalf("attach: %v", err)
	}
	var store server.Store
	var err error
	if proto == server.ProtoMemcache {
		store, err = server.NewMcStore(&memcache.Env{Reg: reg, LM: lm}, shards, 64)
	} else {
		store, err = server.NewRespStore(&redis.Env{Reg: reg}, shards, 64)
	}
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	srv, err := server.New(rt, store, server.Config{Proto: proto}, nil)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}

	lp := loadgen.ProtoMemcache
	if proto == server.ProtoRESP {
		lp = loadgen.ProtoRESP
	}
	lcfg := loadgen.Config{
		Proto:    lp,
		Conns:    8,
		Pipeline: 4,
		Keys:     512,
		SetPct:   40,
		DelPct:   20,
		Duration: 30 * time.Second, // ended early by the crash
		Seed:     42,
		Track:    true,
	}
	resc := make(chan *loadgen.Result, 1)
	go func() {
		res, lerr := loadgen.Run(lcfg, func() (net.Conn, error) {
			client, srvEnd := loadgen.MemPipe(64 << 10)
			if serr := srv.ServeConn(srvEnd); serr != nil {
				return nil, serr
			}
			return client, nil
		})
		if lerr != nil {
			t.Errorf("loadgen: %v", lerr)
		}
		resc <- res
	}()

	// Let the mix run, then pull the plug mid-flight.
	time.Sleep(150 * time.Millisecond)
	nvm.TriggerCrash()
	select {
	case <-srv.Crashed():
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not observe the injected crash")
	}
	srv.Close()
	var res *loadgen.Result
	select {
	case res = <-resc:
	case <-time.After(30 * time.Second):
		t.Fatalf("load generator did not unwind after the crash")
	}
	if res == nil {
		t.Fatalf("no loadgen result")
	}
	if res.Ops == 0 {
		t.Fatalf("crash fired before any request was acknowledged; smoke proves nothing")
	}
	if !nvm.CrashFired() {
		t.Fatalf("injected crash did not fire")
	}
	t.Logf("%s: %d acked ops, %d tracked keys at crash", proto, res.Ops, len(res.Tracked))

	// Settle the persistence domain and recover, as a restarted process.
	nvm.ArmCrash(-1)
	rng := rand.New(rand.NewSource(7))
	reg2, err := reg.Crash(nvm.CrashRandom, rng)
	if err != nil {
		t.Fatalf("reattach: %v", err)
	}
	lm2 := locks.NewManager(reg2)
	rt2 := core.New(core.DefaultConfig())
	if err := rt2.Attach(reg2, lm2); err != nil {
		t.Fatalf("attach2: %v", err)
	}
	var store2 server.Store
	rr := persist.NewResumeRegistry()
	if proto == server.ProtoMemcache {
		env2 := &memcache.Env{Reg: reg2, LM: lm2}
		store2, err = server.AttachMcStore(env2)
		if err != nil {
			t.Fatalf("attach store: %v", err)
		}
		store2.Register(rr)
	} else {
		env2 := &redis.Env{Reg: reg2}
		store2, err = server.AttachRespStore(env2)
		if err != nil {
			t.Fatalf("attach store: %v", err)
		}
		store2.Register(rr)
	}
	if _, err := rt2.Recover(rr); err != nil {
		t.Fatalf("recover: %v", err)
	}

	// Structural invariants over every recovered shard image.
	if mc, ok := store2.(*server.McStore); ok {
		for i, tbl := range mc.Tables() {
			if err := chaos.CheckCacheImage(reg2.Dev, tbl); err != nil {
				t.Fatalf("shard %d image: %v", i, err)
			}
			if err := chaos.CheckCacheLockFree(reg2.Dev, lm2, tbl); err != nil {
				t.Fatalf("shard %d lock: %v", i, err)
			}
		}
	} else {
		for i, tbl := range store2.(*server.RespStore).Tables() {
			if err := chaos.CheckRedisImage(reg2.Dev, tbl); err != nil {
				t.Fatalf("shard %d image: %v", i, err)
			}
		}
	}

	// Every tracked key's recovered state must be explainable by an
	// acked-or-later prefix of its mutation history.
	th, err := rt2.NewThread()
	if err != nil {
		t.Fatalf("verify thread: %v", err)
	}
	checked := 0
	for k, h := range res.Tracked {
		if len(h.Ops) == 0 {
			continue
		}
		kb := loadgen.AppendKey(nil, k)
		var k0, k1 uint64
		var okk bool
		if proto == server.ProtoMemcache {
			k0, k1, okk = server.McKeyWords(kb)
		} else {
			k0, okk = server.RespKeyWords(kb)
		}
		if !okk {
			t.Fatalf("generated key %q is not storable", kb)
		}
		shard := store2.ShardOf(k0, k1)
		val, present := store2.Get(th, shard, k0, k1)
		if !h.Explainable(present, val) {
			t.Fatalf("key %q (present=%v val=%d) unexplainable: acked=%d ops=%+v",
				kb, present, val, h.Acked, h.Ops)
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("no tracked keys to verify")
	}
	t.Logf("%s: %d keys verified against histories", proto, checked)

	// The recovered store must serve again.
	srv2, err := server.New(rt2, store2, server.Config{Proto: proto}, nil)
	if err != nil {
		t.Fatalf("re-serve: %v", err)
	}
	defer srv2.Close()
	res2, err := loadgen.Run(loadgen.Config{
		Proto: lp, Conns: 2, Pipeline: 4, Keys: 512,
		SetPct: 40, DelPct: 20, Ops: 200, Seed: 43,
	}, func() (net.Conn, error) {
		client, srvEnd := loadgen.MemPipe(64 << 10)
		if serr := srv2.ServeConn(srvEnd); serr != nil {
			return nil, serr
		}
		return client, nil
	})
	if err != nil {
		t.Fatalf("post-recovery loadgen: %v", err)
	}
	if res2.Errs != 0 || res2.Ops != 400 {
		t.Fatalf("post-recovery serve: %d ops, %d errors", res2.Ops, res2.Errs)
	}
}
