package server_test

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/server"
)

// Conformance for the lock-free read fast lane and the cross-shard
// multi-get scatter-gather: golden response ordering under both the
// fast lane and the forced slot path (the wire contract must not
// depend on which path served a key), incr/decr verb goldens, the
// per-shard eviction watermark, and the 16-reader/4-writer seqlock
// hammer with exact value invariants.

// fastModes runs a subtest twice: with the fast lane enabled (default)
// and with reads forced onto the slot path. Multi-get responses must
// be byte-identical either way.
func fastModes(t *testing.T, f func(t *testing.T, disable bool)) {
	for _, m := range []struct {
		name    string
		disable bool
	}{{"fast", false}, {"slot", true}} {
		t.Run(m.name, func(t *testing.T) { f(t, m.disable) })
	}
}

func TestServerMultiGetOrderingMemcache(t *testing.T) {
	fastModes(t, func(t *testing.T, disable bool) {
		w := newWorldCfg(t, server.ProtoMemcache, 4, nvm.Config{Size: 1 << 22}, nil,
			func(c *server.Config) { c.DisableFastReads = disable })
		c := w.dial(t)
		// Keys spread over 4 shards; misses interleaved at the front,
		// middle, and back. Responses come in request order with misses
		// elided — regardless of which shard, or which path, served each.
		runSteps(t, c, []step{
			{"set a 0 0 1\r\n1\r\n", "STORED\r\n"},
			{"set b 0 0 1\r\n2\r\n", "STORED\r\n"},
			{"set c 0 0 1\r\n3\r\n", "STORED\r\n"},
			{"set d 0 0 1\r\n4\r\n", "STORED\r\n"},
			{"get m0 a b m1 c d m2\r\n",
				"VALUE a 0 1\r\n1\r\nVALUE b 0 1\r\n2\r\nVALUE c 0 1\r\n3\r\nVALUE d 0 1\r\n4\r\nEND\r\n"},
			{"get d c b a\r\n",
				"VALUE d 0 1\r\n4\r\nVALUE c 0 1\r\n3\r\nVALUE b 0 1\r\n2\r\nVALUE a 0 1\r\n1\r\nEND\r\n"},
			{"get a a a\r\n",
				"VALUE a 0 1\r\n1\r\nVALUE a 0 1\r\n1\r\nVALUE a 0 1\r\n1\r\nEND\r\n"},
			{"get m0 m1 m2\r\n", "END\r\n"},
		})
	})
}

func TestServerMultiGetOrderingRESP(t *testing.T) {
	fastModes(t, func(t *testing.T, disable bool) {
		w := newWorldCfg(t, server.ProtoRESP, 4, nvm.Config{Size: 1 << 22}, nil,
			func(c *server.Config) { c.DisableFastReads = disable })
		c := w.dial(t)
		runSteps(t, c, []step{
			{"SET k1 11\r\n", "+OK\r\n"},
			{"SET k3 33\r\n", "+OK\r\n"},
			// Array header + one reply per key, misses as null bulks, in
			// request order across shards.
			{"MGET k1 kx k3\r\n", "*3\r\n$2\r\n11\r\n$-1\r\n$2\r\n33\r\n"},
			{"MGET kx ky\r\n", "*2\r\n$-1\r\n$-1\r\n"},
			{"*3\r\n$4\r\nMGET\r\n$2\r\nk3\r\n$2\r\nk1\r\n", "*2\r\n$2\r\n33\r\n$2\r\n11\r\n"},
			// Single-key MGET still carries the array header; plain GET
			// never does.
			{"MGET k1\r\n", "*1\r\n$2\r\n11\r\n"},
			{"GET k1\r\n", "$2\r\n11\r\n"},
			{"MGET\r\n", "-ERR wrong number of arguments\r\n"},
		})
	})
}

func TestServerIncrDecrMemcache(t *testing.T) {
	w := newWorld(t, server.ProtoMemcache, 2, nvm.Config{Size: 1 << 22}, nil)
	c := w.dial(t)
	runSteps(t, c, []step{
		{"set n 0 0 1\r\n5\r\n", "STORED\r\n"},
		{"incr n 3\r\n", "8\r\n"},
		{"decr n 2\r\n", "6\r\n"},
		// memcache semantics: decr clamps at zero, incr wraps.
		{"decr n 100\r\n", "0\r\n"},
		{"set w 0 0 20\r\n18446744073709551615\r\n", "STORED\r\n"},
		{"incr w 2\r\n", "1\r\n"},
		// Misses are reported, never auto-created.
		{"incr nope 1\r\n", "NOT_FOUND\r\n"},
		{"decr nope 1\r\n", "NOT_FOUND\r\n"},
		{"get nope\r\n", "END\r\n"},
		{"incr n abc\r\n", "CLIENT_ERROR invalid numeric delta argument\r\n"},
		{"incr n\r\n", "ERROR\r\n"},
		{"incr n 1 noreply\r\n", ""},
		{"get n\r\n", "VALUE n 0 1\r\n1\r\nEND\r\n"},
	})
}

func TestServerIncrRESP(t *testing.T) {
	w := newWorld(t, server.ProtoRESP, 2, nvm.Config{Size: 1 << 22}, nil)
	c := w.dial(t)
	runSteps(t, c, []step{
		// Redis semantics: a missing key counts from zero.
		{"INCR c\r\n", ":1\r\n"},
		{"INCRBY c 41\r\n", ":42\r\n"},
		{"GET c\r\n", "$2\r\n42\r\n"},
		{"SET k 5\r\n", "+OK\r\n"},
		{"*2\r\n$4\r\nINCR\r\n$1\r\nk\r\n", ":6\r\n"},
		{"INCRBY k xyz\r\n", "-ERR value is not an integer or out of range\r\n"},
		{"INCR\r\n", "-ERR wrong number of arguments\r\n"},
		{"INCRBY k\r\n", "-ERR wrong number of arguments\r\n"},
	})
}

// TestServerEvictionWatermark holds a 1-shard store at MaxItems: every
// write past the watermark triggers pipeline-thread evictions, and a
// full sweep afterwards finds at most MaxItems survivors.
func TestServerEvictionWatermark(t *testing.T) {
	const maxItems, writes = 8, 40
	for _, proto := range []server.Proto{server.ProtoMemcache, server.ProtoRESP} {
		t.Run(proto.String(), func(t *testing.T) {
			w := newWorldCfg(t, proto, 1, nvm.Config{Size: 1 << 22}, nil,
				func(c *server.Config) { c.MaxItems = maxItems })
			c := w.dial(t)
			for i := 0; i < writes; i++ {
				if proto == server.ProtoMemcache {
					runSteps(t, c, []step{{fmt.Sprintf("set key%02d 0 0 2\r\n%02d\r\n", i, i), "STORED\r\n"}})
				} else {
					runSteps(t, c, []step{{fmt.Sprintf("SET key%02d %d\r\n", i, i), "+OK\r\n"}})
				}
			}
			live := 0
			br := bufio.NewReader(c)
			for i := 0; i < writes; i++ {
				if proto == server.ProtoMemcache {
					fmt.Fprintf(c, "get key%02d\r\n", i)
					line, err := br.ReadString('\n')
					if err != nil {
						t.Fatalf("get: %v", err)
					}
					if strings.HasPrefix(line, "VALUE ") {
						live++
						br.ReadString('\n') // value payload
						br.ReadString('\n') // END
					}
				} else {
					fmt.Fprintf(c, "GET key%02d\r\n", i)
					line, err := br.ReadString('\n')
					if err != nil {
						t.Fatalf("get: %v", err)
					}
					if line != "$-1\r\n" {
						live++
						br.ReadString('\n') // bulk payload
					}
				}
			}
			if live > maxItems {
				t.Fatalf("%d keys live, watermark is %d", live, maxItems)
			}
			var st metrics.ServerStats
			w.srv.MetricsSnapshot(&st)
			var ev uint64
			for i := range st.Shards {
				ev += st.Shards[i].Evictions
			}
			if want := uint64(writes - maxItems); ev < want {
				t.Fatalf("%d evictions recorded, want >= %d", ev, want)
			}
			t.Logf("%s: %d live keys, %d evictions", proto, live, ev)
		})
	}
}

// TestFastReadHammer races 16 read-only connections against 4 writer
// connections over a small shared key set, with the race detector in
// CI. Writers publish values tagged key*2^32+round with round strictly
// increasing, so every reader can check the exact-value invariant: a
// hit must decode to (its key, a round some completed write produced)
// — a torn or half-visible FASE fails the check. Readers never write,
// so their connections' read-your-writes gates stay open and every get
// attempts the fast lane.
func TestFastReadHammer(t *testing.T) {
	const (
		writers = 4
		readers = 16
		keys    = 8
		rounds  = 400
		gets    = 600
	)
	w := newWorld(t, server.ProtoMemcache, 4, nvm.Config{Size: 1 << 22}, nil)

	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			c := w.dial(t)
			defer c.Close()
			bw := bufio.NewWriter(c)
			for r := 0; r < rounds; r++ {
				k := (wi*rounds + r) % keys
				v := strconv.FormatUint(uint64(k)<<32|uint64(r), 10)
				fmt.Fprintf(bw, "set hk%d 0 0 %d noreply\r\n%s\r\n", k, len(v), v)
				if r%32 == 31 {
					if err := bw.Flush(); err != nil {
						return
					}
				}
			}
			bw.Flush()
			// One replied op drains the pipeline before close.
			fmt.Fprintf(c, "get hk0\r\n")
			readUntil(t, c, "END\r\n")
		}(wi)
	}
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			c := w.dial(t)
			defer c.Close()
			br := bufio.NewReader(c)
			for g := 0; g < gets; g++ {
				k := (ri + g) % keys
				fmt.Fprintf(c, "get hk%d\r\n", k)
				line, err := br.ReadString('\n')
				if err != nil {
					t.Errorf("reader %d: %v", ri, err)
					return
				}
				if line == "END\r\n" {
					continue // not yet written
				}
				if !strings.HasPrefix(line, fmt.Sprintf("VALUE hk%d 0 ", k)) {
					t.Errorf("reader %d: unexpected reply line %q", ri, line)
					return
				}
				vline, err := br.ReadString('\n')
				if err != nil {
					t.Errorf("reader %d: %v", ri, err)
					return
				}
				v, perr := strconv.ParseUint(strings.TrimSuffix(vline, "\r\n"), 10, 64)
				if perr != nil {
					t.Errorf("reader %d: unparsable value %q", ri, vline)
					return
				}
				// Exact value invariant: tag matches the key, round is one
				// a writer could have completed.
				if int(v>>32) != k || uint32(v) >= rounds {
					t.Errorf("reader %d: key hk%d read torn/foreign value %d (tag %d round %d)",
						ri, k, v, v>>32, uint32(v))
					return
				}
				if end, err := br.ReadString('\n'); err != nil || end != "END\r\n" {
					t.Errorf("reader %d: bad END %q: %v", ri, end, err)
					return
				}
			}
		}(ri)
	}
	wg.Wait()

	var st metrics.ServerStats
	w.srv.MetricsSnapshot(&st)
	var fast, falls, getsN, hits, misses uint64
	for i := range st.Shards {
		fast += st.Shards[i].FastGets
		falls += st.Shards[i].FastFallbacks
		getsN += st.Shards[i].Gets
		hits += st.Shards[i].Hits
		misses += st.Shards[i].Misses
	}
	if fast == 0 {
		t.Fatalf("no gets took the fast lane (%d gets, %d fallbacks)", getsN, falls)
	}
	if hits+misses != getsN {
		t.Fatalf("hit/miss accounting broken: %d+%d != %d gets", hits, misses, getsN)
	}
	t.Logf("%d gets: %d fast, %d fell back to slot path, %d hits", getsN, fast, falls, hits)
}
